/**
 * @file
 * Load a model description file and a hardware configuration file and
 * run full-model inference — the fully file-driven flow, no recompiles:
 *
 *   ./load_model [model.model] [stonne_hw.cfg]
 *
 * Defaults to models/fire_mini.model on configs/maeri_256.cfg when run
 * from the repository root.
 */

#include <cstdio>

#include "frontend/model_loader.hpp"
#include "frontend/runner.hpp"
#include "multicore/multicore_runner.hpp"

using namespace stonne;

int
main(int argc, char **argv)
{
    const std::string model_path =
        argc > 1 ? argv[1] : "models/fire_mini.model";
    const std::string cfg_path =
        argc > 2 ? argv[2] : "configs/maeri_256.cfg";

    const DnnModel model = loadModelFromFile(model_path);
    const HardwareConfig cfg = HardwareConfig::parseFile(cfg_path);

    std::printf("model  : %s (%lld layers, %lld dense MACs, %.0f %% "
                "weight sparsity)\n",
                model.name.c_str(),
                static_cast<long long>(model.layers.size()),
                static_cast<long long>(model.totalMacs()),
                100.0 * model.measuredWeightSparsity());
    std::printf("config : %s (%s DN, %s RN, %lld MS, bw %lld)\n\n",
                cfg.name.c_str(), dnTypeName(cfg.dn_type),
                rnTypeName(cfg.rn_type),
                static_cast<long long>(cfg.ms_size),
                static_cast<long long>(cfg.dn_bandwidth));

    // Build an input matching the model's first layer.
    const DnnLayer &first = model.layers.front();
    Rng rng(11);
    Tensor input;
    if (first.op == OpType::Conv2d) {
        const Conv2dShape &c = first.spec.conv;
        input = Tensor({c.N, c.C, c.X, c.Y});
    } else {
        const GemmDims g = first.spec.gemm;
        input = Tensor({g.n, g.k});
    }
    input.fillUniform(rng, 0.0f, 1.0f);

    // A cores > 1 configuration runs the multi-core composition:
    // N accelerators behind the shared DRAM, with per-core stall
    // counters from the bandwidth arbiter.
    if (cfg.cores > 1) {
        MulticoreRunner runner(model, cfg);
        const Tensor out = runner.run(input);
        const SimulationResult total = runner.total();
        std::printf("%-10s %12s %14s %10s %12s %12s\n", "core", "cycles",
                    "dram stalls", "grants", "bytes", "state");
        for (index_t c = 0; c < runner.coreCount(); ++c)
            std::printf("%-10lld %12llu %14llu %10llu %12llu %12s\n",
                        static_cast<long long>(c),
                        static_cast<unsigned long long>(
                            runner.core(c).totalCycles()),
                        static_cast<unsigned long long>(
                            runner.arbiter().stallCycles(c)),
                        static_cast<unsigned long long>(
                            runner.arbiter().grantCount(c)),
                        static_cast<unsigned long long>(
                            runner.arbiter().bytesRequested(c)),
                        runner.isQuarantined(c) ? "QUARANTINED"
                                                : "healthy");
        std::printf("\n%s over %lld cores: makespan %llu cycles, sum "
                    "%llu cycles, %.2f uJ, functional match: %s\n",
                    partitionStrategyName(cfg.partition),
                    static_cast<long long>(cfg.cores),
                    static_cast<unsigned long long>(
                        runner.makespanCycles()),
                    static_cast<unsigned long long>(total.cycles),
                    total.energy.total(),
                    out.equals(runner.runNative(input)) ? "exact" : "NO");
        if (runner.migrations() > 0)
            std::printf("fault tolerance: %llu migration(s), %zu core(s) "
                        "quarantined, resumed at cycle %llu\n",
                        static_cast<unsigned long long>(
                            runner.migrations()),
                        runner.quarantinedCores().size(),
                        static_cast<unsigned long long>(
                            runner.resumeCycle()));
        return 0;
    }

    ModelRunner runner(model, cfg);
    const Tensor out = runner.run(input);
    const SimulationResult total = runner.total();

    std::printf("%-14s %-10s %12s %10s\n", "layer", "where", "cycles",
                "util %");
    for (const LayerRunRecord &r : runner.records()) {
        if (r.offloaded)
            std::printf("%-14s %-10s %12llu %10.1f\n", r.name.c_str(),
                        "offloaded",
                        static_cast<unsigned long long>(r.sim.cycles),
                        100.0 * r.sim.ms_utilization);
        else
            std::printf("%-14s %-10s %12s %10s\n", r.name.c_str(),
                        "native", "-", "-");
    }
    std::printf("\ntotal: %llu cycles (%.3f ms @ %g GHz), %.2f uJ, "
                "functional match: %s\n",
                static_cast<unsigned long long>(total.cycles),
                total.time_ms, cfg.clock_ghz, total.energy.total(),
                out.equals(runner.runNative(input)) ? "exact" : "NO");
    return 0;
}
