/**
 * @file
 * Use case 2 in miniature: the SNAPEA back-end extension. Runs one
 * ReLU-gated convolution on the SNAPEA composition with and without
 * the early negative cut-off and shows where the savings come from.
 */

#include <cstdio>

#include "engine/stonne_api.hpp"
#include "frontend/snapea_pass.hpp"
#include "tensor/prune.hpp"
#include "tensor/reference.hpp"

using namespace stonne;

int
main()
{
    // A mid-network CNN layer with realistic statistics: pruned
    // weights, non-negative (post-ReLU) inputs, negative-leaning bias.
    Conv2dShape shape;
    shape.R = 3;
    shape.S = 3;
    shape.C = 32;
    shape.K = 32;
    shape.X = 14;
    shape.Y = 14;
    shape.padding = 1;
    const LayerSpec layer = LayerSpec::convolution("conv", shape);

    Rng rng(9);
    Tensor input({1, 32, 14, 14});
    input.fillUniform(rng, 0.0f, 1.0f);
    Tensor weights({32, 32, 3, 3});
    weights.fillNormal(rng, 0.0f, 0.08f);
    pruneFiltersWithJitter(weights, 0.7, 0.15, rng);
    Tensor bias({32});
    bias.fillUniform(rng, -0.45f, 0.05f);

    // The front-end pass: reorder table + static savings estimate.
    const SnapeaReorderTable table = SnapeaReorderTable::build(weights);
    const SnapeaLayerEstimate est =
        estimateCutSavings(layer, input, weights, bias, table);
    std::printf("static estimate: %.1f %% of the non-zero MACs are "
                "skippable in exact mode\n\n",
                100.0 * est.cutFraction());

    auto run = [&](bool early_exit) {
        Stonne st(HardwareConfig::snapeaLike(64, 64));
        st.setSnapeaEarlyExit(early_exit);
        st.configureConv(layer);
        st.configureData(input, weights, bias);
        return st.runOperation();
    };
    const SimulationResult base = run(false);
    const SimulationResult snap = run(true);

    std::printf("%-12s %10s %12s %12s %12s\n", "variant", "cycles",
                "MACs", "skipped", "mem acc");
    std::printf("%-12s %10llu %12llu %12llu %12llu\n", "baseline",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(base.macs),
                static_cast<unsigned long long>(base.skipped_macs),
                static_cast<unsigned long long>(base.mem_accesses));
    std::printf("%-12s %10llu %12llu %12llu %12llu\n", "SNAPEA",
                static_cast<unsigned long long>(snap.cycles),
                static_cast<unsigned long long>(snap.macs),
                static_cast<unsigned long long>(snap.skipped_macs),
                static_cast<unsigned long long>(snap.mem_accesses));
    std::printf("\nspeedup %.2fx, ops %.2fx, memory accesses %.2fx\n",
                static_cast<double>(base.cycles) /
                    static_cast<double>(snap.cycles),
                static_cast<double>(snap.macs) /
                    static_cast<double>(base.macs),
                static_cast<double>(snap.mem_accesses) /
                    static_cast<double>(base.mem_accesses));

    // Exact mode: post-ReLU outputs match the CPU reference.
    Stonne st(HardwareConfig::snapeaLike(64, 64));
    st.configureConv(layer);
    st.configureData(input, weights, bias);
    st.runOperation();
    const Tensor expect =
        ref::relu(ref::conv2d(input, weights, bias, shape));
    const double diff = ref::relu(st.output()).maxAbsDiff(expect);
    std::printf("post-ReLU max deviation vs CPU reference: %.2e\n", diff);
    return 0;
}
