/**
 * @file
 * Use case 3 in miniature: static filter scheduling on a sparse
 * accelerator. Shows the round packing of NS / RDM / LFF on a pruned
 * layer and the resulting runtime/utilization difference — the
 * front-end extension of the paper's Figure 8/9.
 */

#include <cstdio>

#include "controller/scheduler.hpp"
#include "engine/stonne_api.hpp"
#include "tensor/prune.hpp"
#include "tensor/sparse.hpp"

using namespace stonne;

int
main()
{
    // A pruned layer's filter matrix: 48 filters over a 96-long dot
    // product at ~80 % sparsity, with realistic per-filter spread.
    const index_t m = 48, k = 96, n = 64;
    Rng rng(5);
    Tensor a({m, k});
    a.fillUniform(rng);
    pruneFiltersWithJitter(a, 0.8, 0.25, rng);
    Tensor b({k, n});
    b.fillUniform(rng);

    const auto sizes = rowNnzSizes(CsrMatrix::fromDense(a));
    std::printf("filter sizes (nnz): ");
    for (const index_t s : sizes)
        std::printf("%lld ", static_cast<long long>(s));
    std::printf("\n\n");

    std::printf("%-6s %8s %12s %10s %14s\n", "policy", "rounds",
                "cycles", "util %", "avg filters/rd");
    for (const auto policy :
         {SchedulingPolicy::None, SchedulingPolicy::Random,
          SchedulingPolicy::LargestFirst}) {
        const auto rounds = packRounds(sizes, 64, policy, 3);

        Stonne st(HardwareConfig::sigmaLike(64, 32));
        st.setSchedulingPolicy(policy, 3);
        st.configureSpmm(LayerSpec::sparseGemm("spmm", m, n, k));
        st.configureData(b, a);
        const SimulationResult r = st.runOperation();

        std::printf("%-6s %8zu %12llu %10.1f %14.1f\n",
                    schedulingPolicyName(policy), rounds.size(),
                    static_cast<unsigned long long>(r.cycles),
                    100.0 * r.ms_utilization,
                    averageFiltersPerRound(rounds));
    }

    std::printf("\nExpected shape (paper, Fig 9): LFF packs tighter and "
                "runs faster; RDM buys nothing.\n");
    return 0;
}
