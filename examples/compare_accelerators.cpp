/**
 * @file
 * Use-case-1 style comparison: run complete DNN inference (SqueezeNet
 * at Bench scale) on the three Table IV accelerator compositions and
 * compare performance, energy and area — a compact version of
 * bench_fig5.
 */

#include <cstdio>

#include "frontend/model_zoo.hpp"
#include "frontend/runner.hpp"

using namespace stonne;

int
main()
{
    const ModelId id = ModelId::SqueezeNet;
    const DnnModel model = buildModel(id, ModelScale::Bench);
    const Tensor input = makeModelInput(id, ModelScale::Bench);

    std::printf("%s: %lld layers, %lld dense MACs, %.0f %% weight "
                "sparsity\n\n",
                modelName(id),
                static_cast<long long>(model.layers.size()),
                static_cast<long long>(model.totalMacs()),
                100.0 * model.measuredWeightSparsity());

    const HardwareConfig configs[3] = {
        HardwareConfig::tpuLike(256),
        HardwareConfig::maeriLike(256, 128),
        HardwareConfig::sigmaLike(256, 128),
    };

    std::printf("%-8s %12s %10s %12s %12s %10s\n", "arch", "cycles",
                "util %", "energy uJ", "area mm^2", "match");
    for (const HardwareConfig &cfg : configs) {
        ModelRunner runner(model, cfg);
        const Tensor out = runner.run(input);
        const Tensor native = runner.runNative(input);
        const SimulationResult t = runner.total();
        std::printf("%-8s %12llu %10.1f %12.2f %12.2f %10s\n",
                    cfg.name.c_str(),
                    static_cast<unsigned long long>(t.cycles),
                    100.0 * t.ms_utilization, t.energy.total(),
                    t.area.total() / 1e6,
                    out.equals(native) ? "exact" : "DIFFERS");
    }

    std::printf("\nExpected shape (paper, Fig 5): MAERI outperforms the "
                "TPU; SIGMA outperforms MAERI\nthanks to sparsity "
                "support; area is GB-dominated with TPU < SIGMA < "
                "MAERI.\n");
    return 0;
}
