/**
 * @file
 * The STONNE User Interface (Section III): a prompt with well-defined
 * commands to load layer and tile parameters onto a selected simulator
 * instance and run it with random tensors — faster than wiring up the
 * full DL front-end, for rapid prototyping and debugging.
 *
 * Works interactively or scripted:
 *   echo "create maeri 128 64
 *         conv 3 3 16 32 1 1 16 16 1 1
 *         run" | ./stonne_cli
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "checkpoint/checkpoint.hpp"
#include "common/logging.hpp"
#include "common/watchdog.hpp"
#include "dse/tuner.hpp"
#include "explore/explorer.hpp"
#include "engine/output_module.hpp"
#include "engine/stonne_api.hpp"
#include "engine/workload.hpp"
#include "service/daemon.hpp"

using namespace stonne;

namespace {

struct CliState {
    std::unique_ptr<Stonne> stonne;
    LayerSpec layer;
    bool layer_set = false;
    std::optional<Tile> tile;
    double sparsity = 0.0;
    SchedulingPolicy policy = SchedulingPolicy::None;
    std::uint64_t seed = 42;
    FaultConfig faults;          // applied at the next create/load
    index_t watchdog_cycles = 0; // 0 keeps the config's default
    std::optional<bool> fast_forward; // applied at the next create/load
    std::optional<bool> trace;   // applied at the next create/load
    std::string trace_file;
    index_t trace_sample = 0;    // 0 keeps the config's default
};

/** Overlay the CLI-set fault/watchdog/trace knobs onto a config. */
HardwareConfig
applyHardening(HardwareConfig cfg, const CliState &st)
{
    if (st.faults.enabled)
        cfg.faults = st.faults;
    if (st.watchdog_cycles > 0)
        cfg.watchdog_cycles = st.watchdog_cycles;
    if (st.fast_forward)
        cfg.fast_forward = *st.fast_forward;
    if (st.trace) {
        cfg.trace = *st.trace;
        if (!st.trace_file.empty())
            cfg.trace_file = st.trace_file;
        if (st.trace_sample > 0)
            cfg.trace_sample_cycles = st.trace_sample;
    }
    return cfg;
}

void
printHelp()
{
    std::printf(
        "commands:\n"
        "  create <tpu|maeri|sigma|snapea> [ms] [bw]  new instance\n"
        "  load <path>                     instance from stonne_hw.cfg\n"
        "  conv R S C K G N X Y stride pad configure a convolution\n"
        "  gemm M N K                      configure a dense GEMM\n"
        "  spmm M N K                      configure a sparse GEMM\n"
        "  linear N IN OUT                 configure a linear layer\n"
        "  tile TR TS TC TG TK TN TX TY    explicit tile (else auto)\n"
        "  tune [top_k]                    search the configured layer's\n"
        "                                  tile space (analytical pre-\n"
        "                                  filter + cycle-level top-K);\n"
        "                                  the winner becomes the tile\n"
        "  explore [top_k]                 co-search hardware x mapping\n"
        "                                  (explore_axes): analytical\n"
        "                                  Pareto prune, cycle-simulate\n"
        "                                  the predicted frontier, print\n"
        "                                  the exact one; writes\n"
        "                                  stonne_explore.json\n"
        "  sparsity <ratio>                prune weights to the ratio\n"
        "  policy <NS|RDM|LFF>             sparse filter scheduling\n"
        "  seed <n>                        RNG seed for random tensors\n"
        "  faults <seed> <stuck> <drop> <corrupt> <bitflip>\n"
        "                                  fault rates for next create/load\n"
        "  watchdog <cycles>               stall budget for next create/load\n"
        "  fastforward <on|off>            steady-state skipping at next\n"
        "                                  create/load (default on)\n"
        "  trace <file> [sample_cycles]    cycle-level trace at next\n"
        "  trace off                       create/load (Perfetto JSON)\n"
        "  run                             simulate the configured op\n"
        "  checkpoint <file>               snapshot the instance state\n"
        "  resume <file>                   recreate an instance from a\n"
        "                                  snapshot and restore its state\n"
        "  config                          show the hardware config\n"
        "  counters                        dump the activity counters\n"
        "  help / quit\n");
}

void
runOp(CliState &st)
{
    if (!st.stonne) {
        std::printf("error: no instance; use 'create' first\n");
        return;
    }
    if (!st.layer_set) {
        std::printf("error: no layer configured\n");
        return;
    }

    if (st.layer.kind == LayerKind::MaxPool) {
        std::printf("error: use the model runner for pooling\n");
        return;
    }

    // One construction path with the benchmarks and the service daemon:
    // the same (layer, seed, sparsity) always yields bit-identical
    // operands, so a CLI run reproduces a service job exactly.
    const LayerData data = makeLayerData(st.layer, st.sparsity, st.seed);
    st.stonne->setSchedulingPolicy(st.policy, st.seed);
    const SimulationResult r =
        runLayer(*st.stonne, st.layer, data, st.tile);
    std::printf("%s\n",
                OutputModule::summary(st.stonne->config(), r)
                    .dump().c_str());
    std::printf("simulated %llu cycles in %.3f s wall (%.0f cycles/s)\n",
                static_cast<unsigned long long>(r.cycles), r.wall_seconds,
                r.sim_cycles_per_second);
    if (!r.trace_path.empty())
        std::printf("trace written to %s (open in ui.perfetto.dev or "
                    "chrome://tracing)\n", r.trace_path.c_str());
    if (!r.checkpoint_path.empty())
        std::printf("checkpoint written to %s\n",
                    r.checkpoint_path.c_str());
    if (r.restored_from_cycle > 0)
        std::printf("resumed from cycle %llu\n",
                    static_cast<unsigned long long>(
                        r.restored_from_cycle));
}

bool
handle(CliState &st, const std::string &line)
{
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#')
        return true;

    try {
        if (cmd == "quit" || cmd == "exit") {
            return false;
        } else if (cmd == "help") {
            printHelp();
        } else if (cmd == "create") {
            std::string kind;
            index_t ms = 256, bw = 128;
            in >> kind;
            if (!(in >> ms))
                ms = 256;
            if (!(in >> bw))
                bw = kind == "tpu" ? ms : 128;
            HardwareConfig cfg;
            if (kind == "tpu")
                cfg = HardwareConfig::tpuLike(ms);
            else if (kind == "maeri")
                cfg = HardwareConfig::maeriLike(ms, bw);
            else if (kind == "sigma")
                cfg = HardwareConfig::sigmaLike(ms, bw);
            else if (kind == "snapea")
                cfg = HardwareConfig::snapeaLike(ms, bw);
            else
                fatal("unknown preset '", kind, "'");
            st.stonne = std::make_unique<Stonne>(applyHardening(cfg, st));
            std::printf("created %s: %lld MS, bw %lld\n",
                        cfg.name.c_str(), static_cast<long long>(ms),
                        static_cast<long long>(cfg.dn_bandwidth));
        } else if (cmd == "load") {
            std::string path;
            in >> path;
            st.stonne = std::make_unique<Stonne>(applyHardening(
                HardwareConfig::parseFile(path), st));
            std::printf("loaded %s\n", path.c_str());
        } else if (cmd == "conv") {
            Conv2dShape c;
            in >> c.R >> c.S >> c.C >> c.K >> c.G >> c.N >> c.X >> c.Y >>
                c.stride >> c.padding;
            st.layer = LayerSpec::convolution("cli_conv", c);
            st.layer_set = true;
            std::printf("conv configured: %lld MACs\n",
                        static_cast<long long>(st.layer.macs()));
        } else if (cmd == "gemm" || cmd == "spmm") {
            index_t m, n, k;
            in >> m >> n >> k;
            st.layer = cmd == "gemm"
                ? LayerSpec::gemmLayer("cli_gemm", m, n, k)
                : LayerSpec::sparseGemm("cli_spmm", m, n, k);
            st.layer_set = true;
        } else if (cmd == "linear") {
            index_t n, c, k;
            in >> n >> c >> k;
            st.layer = LayerSpec::linear("cli_linear", n, c, k);
            st.layer_set = true;
        } else if (cmd == "tile") {
            Tile t;
            in >> t.t_r >> t.t_s >> t.t_c >> t.t_g >> t.t_k >> t.t_n >>
                t.t_x >> t.t_y;
            st.tile = t;
            std::printf("%s\n", t.toString().c_str());
        } else if (cmd == "sparsity") {
            in >> st.sparsity;
        } else if (cmd == "policy") {
            std::string p;
            in >> p;
            st.policy = p == "LFF" ? SchedulingPolicy::LargestFirst
                      : p == "RDM" ? SchedulingPolicy::Random
                                   : SchedulingPolicy::None;
        } else if (cmd == "seed") {
            in >> st.seed;
        } else if (cmd == "faults") {
            FaultConfig f;
            f.enabled = true;
            in >> f.seed >> f.stuck_multiplier_rate >> f.flit_drop_rate >>
                f.flit_corrupt_rate >> f.dram_bitflip_rate;
            f.validate();
            st.faults = f;
            std::printf("faults armed (takes effect at create/load):\n%s",
                        f.toConfigText().c_str());
        } else if (cmd == "watchdog") {
            in >> st.watchdog_cycles;
            fatalIf(st.watchdog_cycles <= 0,
                    "watchdog stall budget must be positive");
            std::printf("watchdog_cycles = %lld at the next create/load\n",
                        static_cast<long long>(st.watchdog_cycles));
        } else if (cmd == "fastforward") {
            std::string v;
            in >> v;
            if (v == "on" || v == "ON")
                st.fast_forward = true;
            else if (v == "off" || v == "OFF")
                st.fast_forward = false;
            else
                fatal("fastforward expects on|off, got '", v, "'");
            std::printf("fast_forward = %s at the next create/load\n",
                        *st.fast_forward ? "ON" : "OFF");
        } else if (cmd == "trace") {
            std::string file;
            in >> file;
            if (file == "off" || file == "OFF") {
                st.trace = false;
                st.trace_file.clear();
                st.trace_sample = 0;
                std::printf("trace = OFF at the next create/load\n");
            } else {
                fatalIf(file.empty(), "trace expects a file path or off");
                st.trace = true;
                st.trace_file = file;
                index_t sample = 0;
                if (in >> sample) {
                    fatalIf(sample <= 0,
                            "trace sample_cycles must be positive");
                    st.trace_sample = sample;
                }
                std::printf("trace -> %s at the next create/load\n",
                            file.c_str());
            }
        } else if (cmd == "checkpoint") {
            std::string path;
            in >> path;
            if (path.empty()) {
                std::printf("error: checkpoint expects a file path\n");
            } else if (!st.stonne) {
                std::printf("error: no instance; use 'create' first\n");
            } else {
                st.stonne->saveCheckpoint(path);
                std::printf(
                    "checkpoint written to %s (cycle %llu)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(
                        st.stonne->totalCycles()));
            }
        } else if (cmd == "resume") {
            std::string path;
            in >> path;
            if (path.empty()) {
                std::printf("error: resume expects a file path\n");
            } else {
                // The snapshot embeds its configuration, so the
                // instance is rebuilt from it before the restore.
                const HardwareConfig cfg = HardwareConfig::parse(
                    checkpointConfigText(path), path);
                st.stonne = std::make_unique<Stonne>(cfg);
                st.stonne->loadCheckpoint(path);
                std::printf(
                    "resumed %s from %s at cycle %llu\n",
                    cfg.name.c_str(), path.c_str(),
                    static_cast<unsigned long long>(
                        st.stonne->totalCycles()));
            }
        } else if (cmd == "tune") {
            if (!st.stonne) {
                std::printf("error: no instance; use 'create' first\n");
            } else if (!st.layer_set) {
                std::printf("error: no layer configured\n");
            } else {
                const HardwareConfig &cfg = st.stonne->config();
                dse::TuneOptions opts;
                opts.top_k = cfg.dse_top_k;
                opts.cache_file = cfg.dse_cache_file;
                opts.sparsity = st.sparsity;
                opts.seed = st.seed;
                index_t k = 0;
                if (in >> k) {
                    fatalIf(k <= 0, "tune top_k must be positive");
                    opts.top_k = k;
                }
                dse::AutoTuner tuner(cfg, opts);
                const dse::TuneReport rep = tuner.tuneLayer(st.layer);
                std::printf("%-22s %12s %12s  %s\n", "tile",
                            "analytical", "simulated", "source");
                for (const dse::EvaluatedTile &et : rep.ranked)
                    std::printf(
                        "%-22s %12llu %12llu  %s\n",
                        et.tile.canonical().c_str(),
                        static_cast<unsigned long long>(
                            et.analytical_cycles),
                        static_cast<unsigned long long>(
                            et.simulated_cycles),
                        et.from_cache ? "cache" : "simulated");
                std::printf(
                    "tune: space %llu evaluated %zu cache_hits %llu "
                    "simulations %llu\n",
                    static_cast<unsigned long long>(rep.space_size),
                    rep.ranked.size(),
                    static_cast<unsigned long long>(rep.cache_hits),
                    static_cast<unsigned long long>(rep.simulations_run));
                std::printf("tune: rank_correlation %.3f\n",
                            rep.rank_correlation);
                std::printf(
                    "tune: greedy %s -> %llu cycles\n",
                    rep.greedy_tile.canonical().c_str(),
                    static_cast<unsigned long long>(rep.greedy_cycles));
                std::printf(
                    "tune: chosen %s -> %llu cycles (saved %lld vs "
                    "greedy)\n",
                    rep.best.canonical().c_str(),
                    static_cast<unsigned long long>(rep.best_cycles),
                    static_cast<long long>(
                        static_cast<std::int64_t>(rep.greedy_cycles) -
                        static_cast<std::int64_t>(rep.best_cycles)));
                st.tile = rep.best;
                std::printf("tile set to the chosen mapping; 'run' uses "
                            "it\n");
            }
        } else if (cmd == "explore") {
            if (!st.stonne) {
                std::printf("error: no instance; use 'create' first\n");
            } else if (!st.layer_set) {
                std::printf("error: no layer configured\n");
            } else {
                const HardwareConfig &cfg = st.stonne->config();
                explore::ExploreOptions opts;
                opts.top_k = cfg.explore_top_k;
                opts.axes = cfg.explore_axes;
                opts.cache_file = cfg.dse_cache_file;
                opts.sparsity = st.sparsity;
                opts.seed = st.seed;
                index_t k = 0;
                if (in >> k) {
                    fatalIf(k <= 0, "explore top_k must be positive");
                    opts.top_k = k;
                }
                explore::Explorer explorer(cfg, opts);
                const explore::ExploreReport rep =
                    explorer.exploreLayer(st.layer);
                std::printf("%-44s %12s %12s %14s  %s\n", "variant",
                            "cycles", "energy_uj", "area_um2", "source");
                for (const std::size_t i : rep.frontier) {
                    const explore::ExplorePoint &p = rep.points[i];
                    std::printf(
                        "%-44s %12llu %12.3f %14.0f  %s\n",
                        p.label.c_str(),
                        static_cast<unsigned long long>(
                            p.simulated_cycles),
                        p.energy_uj, p.area_um2,
                        p.from_cache ? "cache" : "simulated");
                }
                std::printf(
                    "explore: variants %zu space %zu evaluated %zu "
                    "cache_hits %zu simulations %zu frontier %zu\n",
                    rep.variants, rep.space_size, rep.points.size(),
                    rep.cache_hits, rep.simulations_run,
                    rep.frontier.size());
                OutputModule::writeFile("stonne_explore.json",
                                        rep.json().dump() + "\n");
                std::printf("frontier written to stonne_explore.json "
                            "(each point carries a runnable "
                            "config_text)\n");
            }
        } else if (cmd == "counters") {
            if (st.stonne)
                std::printf("%s",
                            OutputModule::counterFile(st.stonne->stats())
                                .c_str());
            else
                std::printf("no instance\n");
        } else if (cmd == "run") {
            runOp(st);
        } else if (cmd == "config") {
            if (st.stonne)
                std::printf("%s",
                            st.stonne->config().toConfigText().c_str());
            else
                std::printf("no instance\n");
        } else {
            std::printf("unknown command '%s' (try 'help')\n",
                        cmd.c_str());
        }
    } catch (const DeadlockError &e) {
        std::printf("error: %s\n%s", e.what(), e.report().c_str());
    } catch (const std::exception &e) {
        std::printf("error: %s\n", e.what());
    }
    return true;
}

/** Set by the signal handlers; observed by the daemon's read loop. */
volatile std::sig_atomic_t g_stop = 0;

extern "C" void
onStopSignal(int)
{
    g_stop = 1;
}

/**
 * `stonne_cli serve [stonne_hw.cfg]`: the simulation service. SIGINT
 * and SIGTERM trigger a graceful shutdown — installed without
 * SA_RESTART so the blocking getline breaks on EINTR, after which the
 * daemon drains queued and running jobs, persists the result cache,
 * and exits 0.
 */
int
serveMain(int argc, char **argv)
{
    service::ServiceOptions opts;
    if (argc > 2)
        opts.base = HardwareConfig::parseFile(argv[2]);
    opts.cache_file = opts.base.dse_cache_file;

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: getline must return on EINTR
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    service::ServiceDaemon daemon(opts, std::cout);
    return daemon.serve(std::cin, &g_stop);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "serve") {
        try {
            return serveMain(argc, argv);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "serve: %s\n", e.what());
            return 1;
        }
    }
    if (argc > 1) {
        std::fprintf(stderr,
                     "usage: %s            interactive prompt\n"
                     "       %s serve [stonne_hw.cfg]\n",
                     argv[0], argv[0]);
        return 2;
    }

    std::printf("STONNE user interface — 'help' for commands\n");
    CliState st;
    std::string line;
    while (true) {
        std::printf("stonne> ");
        std::fflush(stdout);
        if (!std::getline(std::cin, line))
            break;
        if (!handle(st, line))
            break;
    }
    return 0;
}
