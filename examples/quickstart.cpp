/**
 * @file
 * Quickstart: create a simulated accelerator, run one convolution
 * through the STONNE API, and read the statistics — the minimal
 * end-to-end flow of Figure 2.
 */

#include <cstdio>

#include "engine/output_module.hpp"
#include "engine/stonne_api.hpp"
#include "tensor/reference.hpp"

using namespace stonne;

int
main()
{
    // 1. CreateInstance: a MAERI-like flexible accelerator with 128
    //    multiplier switches and 64 elements/cycle of GB bandwidth.
    //    (Alternatively: Stonne st("stonne_hw.cfg");)
    Stonne st(HardwareConfig::maeriLike(128, 64));

    // 2. Describe the layer: a 3x3 convolution, 16 -> 32 channels over
    //    a 16x16 feature map (Layer(R,S,C,K,G,N,X,Y) of the paper).
    Conv2dShape shape;
    shape.R = 3;
    shape.S = 3;
    shape.C = 16;
    shape.K = 32;
    shape.X = 16;
    shape.Y = 16;
    shape.padding = 1;
    const LayerSpec layer = LayerSpec::convolution("conv1", shape);

    // 3. Bind synthetic operands (ConfigureData).
    Rng rng(42);
    Tensor input({1, 16, 16, 16});
    Tensor weights({32, 16, 3, 3});
    Tensor bias({32});
    input.fillUniform(rng, 0.0f, 1.0f);
    weights.fillNormal(rng, 0.0f, 0.1f);
    bias.fillUniform(rng, -0.1f, 0.1f);

    // 4. ConfigureCONV + RunOperation: the mapper auto-generates a
    //    tile; pass an explicit Tile to override.
    st.configureConv(layer);
    st.configureData(input, weights, bias);
    const SimulationResult r = st.runOperation();

    // 5. Read the results.
    std::printf("layer           : %s\n", r.layer_name.c_str());
    std::printf("cycles          : %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("time @1GHz      : %.3f ms\n", r.time_ms);
    std::printf("MACs            : %llu\n",
                static_cast<unsigned long long>(r.macs));
    std::printf("MS utilization  : %.1f %%\n", 100.0 * r.ms_utilization);
    std::printf("energy          : %.2f uJ (RN %.2f, GB %.2f, DN %.2f, "
                "MN %.2f)\n",
                r.energy.total(), r.energy.rn_uj, r.energy.gb_uj,
                r.energy.dn_uj, r.energy.mn_uj);
    std::printf("area            : %.2f mm^2\n",
                r.area.total() / 1e6);

    // 6. Functional validation: the simulator output bit-matches the
    //    CPU reference.
    const Tensor expect = ref::conv2d(input, weights, bias, shape);
    std::printf("matches CPU ref : %s\n",
                st.output().equals(expect) ? "yes" : "NO");

    // 7. The Output Module's JSON summary.
    std::printf("\n%s\n",
                OutputModule::summary(st.config(), r).dump().c_str());
    return 0;
}
