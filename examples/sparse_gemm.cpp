/**
 * @file
 * Sparse matrix multiplication on the SIGMA-like composition: CSR and
 * bitmap front doors, data-dependent timing, and the effect of the
 * zero distribution at equal aggregate sparsity.
 */

#include <cstdio>

#include "engine/stonne_api.hpp"
#include "tensor/prune.hpp"
#include "tensor/reference.hpp"

using namespace stonne;

namespace {

SimulationResult
runSpmm(const Tensor &a, const Tensor &b, SparseFormat fmt)
{
    HardwareConfig cfg = HardwareConfig::sigmaLike(128, 64);
    cfg.sparse_format = fmt;
    Stonne st(cfg);
    st.configureSpmm(LayerSpec::sparseGemm("spmm", a.dim(0), b.dim(1),
                                           a.dim(1)));
    st.configureData(b, a);
    return st.runOperation();
}

} // namespace

int
main()
{
    const index_t m = 64, k = 128, n = 32;
    Rng rng(7);
    Tensor b({k, n});
    b.fillUniform(rng);

    std::printf("SpMM C(%lld x %lld) = A(%lld x %lld, sparse) * B on a "
                "SIGMA-like accelerator\n\n",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(m), static_cast<long long>(k));

    std::printf("%-22s %10s %12s %10s\n", "stationary operand", "nnz",
                "cycles", "util %");
    for (const double sparsity : {0.0, 0.5, 0.8, 0.95}) {
        Tensor a({m, k});
        a.fillUniform(rng);
        if (sparsity > 0)
            pruneFiltersWithJitter(a, sparsity, 0.15, rng);
        const SimulationResult r = runSpmm(a, b, SparseFormat::Csr);
        char tag[32];
        std::snprintf(tag, sizeof(tag), "%.0f%% sparse", 100 * sparsity);
        std::printf("%-22s %10lld %12llu %10.1f\n", tag,
                    static_cast<long long>(a.nnz()),
                    static_cast<unsigned long long>(r.cycles),
                    100.0 * r.ms_utilization);
    }

    // Same aggregate nnz, different distributions: the data dependence
    // analytical models cannot capture (Fig 1c).
    Tensor uniform({m, k}), skewed({m, k});
    for (index_t r = 0; r < m; ++r) {
        for (index_t j = 0; j < 32; ++j)
            uniform.at(r, (r * 7 + j * 3) % k) = 1.0f;
        const index_t nnz = r < m / 2 ? 56 : 8;
        for (index_t j = 0; j < nnz; ++j)
            skewed.at(r, (r * 5 + j * 2) % k) = 1.0f;
    }
    const SimulationResult ru = runSpmm(uniform, b, SparseFormat::Csr);
    const SimulationResult rs = runSpmm(skewed, b, SparseFormat::Csr);
    std::printf("\nsame nnz (%lld), uniform rows : %llu cycles\n",
                static_cast<long long>(uniform.nnz()),
                static_cast<unsigned long long>(ru.cycles));
    std::printf("same nnz (%lld), skewed rows  : %llu cycles\n",
                static_cast<long long>(skewed.nnz()),
                static_cast<unsigned long long>(rs.cycles));

    // Bitmap format front door produces identical results and timing.
    Tensor a({m, k});
    a.fillUniform(rng);
    pruneFiltersWithJitter(a, 0.7, 0.15, rng);
    const SimulationResult rc = runSpmm(a, b, SparseFormat::Csr);
    const SimulationResult rb = runSpmm(a, b, SparseFormat::Bitmap);
    std::printf("\nCSR vs bitmap front door: %llu vs %llu cycles\n",
                static_cast<unsigned long long>(rc.cycles),
                static_cast<unsigned long long>(rb.cycles));
    return 0;
}
