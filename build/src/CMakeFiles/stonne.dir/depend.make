# Empty dependencies file for stonne.
# This may be replaced when dependencies are built.
