
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytical/maeri_model.cpp" "src/CMakeFiles/stonne.dir/analytical/maeri_model.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/analytical/maeri_model.cpp.o.d"
  "/root/repo/src/analytical/scalesim_model.cpp" "src/CMakeFiles/stonne.dir/analytical/scalesim_model.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/analytical/scalesim_model.cpp.o.d"
  "/root/repo/src/analytical/sigma_model.cpp" "src/CMakeFiles/stonne.dir/analytical/sigma_model.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/analytical/sigma_model.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/stonne.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/common/config.cpp.o.d"
  "/root/repo/src/common/json_writer.cpp" "src/CMakeFiles/stonne.dir/common/json_writer.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/common/json_writer.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/stonne.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/stonne.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/common/stats.cpp.o.d"
  "/root/repo/src/controller/dense_controller.cpp" "src/CMakeFiles/stonne.dir/controller/dense_controller.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/controller/dense_controller.cpp.o.d"
  "/root/repo/src/controller/layer.cpp" "src/CMakeFiles/stonne.dir/controller/layer.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/controller/layer.cpp.o.d"
  "/root/repo/src/controller/mapper.cpp" "src/CMakeFiles/stonne.dir/controller/mapper.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/controller/mapper.cpp.o.d"
  "/root/repo/src/controller/scheduler.cpp" "src/CMakeFiles/stonne.dir/controller/scheduler.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/controller/scheduler.cpp.o.d"
  "/root/repo/src/controller/snapea_controller.cpp" "src/CMakeFiles/stonne.dir/controller/snapea_controller.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/controller/snapea_controller.cpp.o.d"
  "/root/repo/src/controller/sparse_controller.cpp" "src/CMakeFiles/stonne.dir/controller/sparse_controller.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/controller/sparse_controller.cpp.o.d"
  "/root/repo/src/controller/tile.cpp" "src/CMakeFiles/stonne.dir/controller/tile.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/controller/tile.cpp.o.d"
  "/root/repo/src/energy/area_model.cpp" "src/CMakeFiles/stonne.dir/energy/area_model.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/energy/area_model.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "src/CMakeFiles/stonne.dir/energy/energy_model.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/energy/energy_model.cpp.o.d"
  "/root/repo/src/engine/accelerator.cpp" "src/CMakeFiles/stonne.dir/engine/accelerator.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/engine/accelerator.cpp.o.d"
  "/root/repo/src/engine/output_module.cpp" "src/CMakeFiles/stonne.dir/engine/output_module.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/engine/output_module.cpp.o.d"
  "/root/repo/src/engine/stonne_api.cpp" "src/CMakeFiles/stonne.dir/engine/stonne_api.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/engine/stonne_api.cpp.o.d"
  "/root/repo/src/frontend/dnn_layer.cpp" "src/CMakeFiles/stonne.dir/frontend/dnn_layer.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/frontend/dnn_layer.cpp.o.d"
  "/root/repo/src/frontend/model_builder.cpp" "src/CMakeFiles/stonne.dir/frontend/model_builder.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/frontend/model_builder.cpp.o.d"
  "/root/repo/src/frontend/model_loader.cpp" "src/CMakeFiles/stonne.dir/frontend/model_loader.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/frontend/model_loader.cpp.o.d"
  "/root/repo/src/frontend/model_zoo.cpp" "src/CMakeFiles/stonne.dir/frontend/model_zoo.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/frontend/model_zoo.cpp.o.d"
  "/root/repo/src/frontend/runner.cpp" "src/CMakeFiles/stonne.dir/frontend/runner.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/frontend/runner.cpp.o.d"
  "/root/repo/src/frontend/snapea_pass.cpp" "src/CMakeFiles/stonne.dir/frontend/snapea_pass.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/frontend/snapea_pass.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/stonne.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/global_buffer.cpp" "src/CMakeFiles/stonne.dir/mem/global_buffer.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/mem/global_buffer.cpp.o.d"
  "/root/repo/src/network/dn_benes.cpp" "src/CMakeFiles/stonne.dir/network/dn_benes.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/network/dn_benes.cpp.o.d"
  "/root/repo/src/network/dn_popn.cpp" "src/CMakeFiles/stonne.dir/network/dn_popn.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/network/dn_popn.cpp.o.d"
  "/root/repo/src/network/dn_tree.cpp" "src/CMakeFiles/stonne.dir/network/dn_tree.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/network/dn_tree.cpp.o.d"
  "/root/repo/src/network/mn_array.cpp" "src/CMakeFiles/stonne.dir/network/mn_array.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/network/mn_array.cpp.o.d"
  "/root/repo/src/network/rn_fan.cpp" "src/CMakeFiles/stonne.dir/network/rn_fan.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/network/rn_fan.cpp.o.d"
  "/root/repo/src/network/rn_linear.cpp" "src/CMakeFiles/stonne.dir/network/rn_linear.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/network/rn_linear.cpp.o.d"
  "/root/repo/src/network/rn_tree.cpp" "src/CMakeFiles/stonne.dir/network/rn_tree.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/network/rn_tree.cpp.o.d"
  "/root/repo/src/network/systolic.cpp" "src/CMakeFiles/stonne.dir/network/systolic.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/network/systolic.cpp.o.d"
  "/root/repo/src/tensor/im2col.cpp" "src/CMakeFiles/stonne.dir/tensor/im2col.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/tensor/im2col.cpp.o.d"
  "/root/repo/src/tensor/prune.cpp" "src/CMakeFiles/stonne.dir/tensor/prune.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/tensor/prune.cpp.o.d"
  "/root/repo/src/tensor/reference.cpp" "src/CMakeFiles/stonne.dir/tensor/reference.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/tensor/reference.cpp.o.d"
  "/root/repo/src/tensor/sparse.cpp" "src/CMakeFiles/stonne.dir/tensor/sparse.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/tensor/sparse.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/stonne.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/stonne.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
