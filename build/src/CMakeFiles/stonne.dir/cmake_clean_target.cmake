file(REMOVE_RECURSE
  "libstonne.a"
)
