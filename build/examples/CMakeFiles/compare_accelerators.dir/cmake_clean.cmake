file(REMOVE_RECURSE
  "CMakeFiles/compare_accelerators.dir/compare_accelerators.cpp.o"
  "CMakeFiles/compare_accelerators.dir/compare_accelerators.cpp.o.d"
  "compare_accelerators"
  "compare_accelerators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_accelerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
