# Empty dependencies file for compare_accelerators.
# This may be replaced when dependencies are built.
