file(REMOVE_RECURSE
  "CMakeFiles/stonne_cli.dir/stonne_cli.cpp.o"
  "CMakeFiles/stonne_cli.dir/stonne_cli.cpp.o.d"
  "stonne_cli"
  "stonne_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stonne_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
