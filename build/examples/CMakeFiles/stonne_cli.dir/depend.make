# Empty dependencies file for stonne_cli.
# This may be replaced when dependencies are built.
