# Empty dependencies file for filter_scheduling.
# This may be replaced when dependencies are built.
