file(REMOVE_RECURSE
  "CMakeFiles/filter_scheduling.dir/filter_scheduling.cpp.o"
  "CMakeFiles/filter_scheduling.dir/filter_scheduling.cpp.o.d"
  "filter_scheduling"
  "filter_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
