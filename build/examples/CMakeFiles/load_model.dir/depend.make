# Empty dependencies file for load_model.
# This may be replaced when dependencies are built.
