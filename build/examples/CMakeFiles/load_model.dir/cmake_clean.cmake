file(REMOVE_RECURSE
  "CMakeFiles/load_model.dir/load_model.cpp.o"
  "CMakeFiles/load_model.dir/load_model.cpp.o.d"
  "load_model"
  "load_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
