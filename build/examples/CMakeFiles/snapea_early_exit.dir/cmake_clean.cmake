file(REMOVE_RECURSE
  "CMakeFiles/snapea_early_exit.dir/snapea_early_exit.cpp.o"
  "CMakeFiles/snapea_early_exit.dir/snapea_early_exit.cpp.o.d"
  "snapea_early_exit"
  "snapea_early_exit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapea_early_exit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
