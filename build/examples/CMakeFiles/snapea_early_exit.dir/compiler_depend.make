# Empty compiler generated dependencies file for snapea_early_exit.
# This may be replaced when dependencies are built.
