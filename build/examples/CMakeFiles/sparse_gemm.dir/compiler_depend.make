# Empty compiler generated dependencies file for sparse_gemm.
# This may be replaced when dependencies are built.
