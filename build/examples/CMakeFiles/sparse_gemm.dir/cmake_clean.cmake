file(REMOVE_RECURSE
  "CMakeFiles/sparse_gemm.dir/sparse_gemm.cpp.o"
  "CMakeFiles/sparse_gemm.dir/sparse_gemm.cpp.o.d"
  "sparse_gemm"
  "sparse_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
