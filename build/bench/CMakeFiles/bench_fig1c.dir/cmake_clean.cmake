file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1c.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig1c.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig1c.dir/bench_fig1c.cpp.o"
  "CMakeFiles/bench_fig1c.dir/bench_fig1c.cpp.o.d"
  "bench_fig1c"
  "bench_fig1c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
