# Empty compiler generated dependencies file for bench_fig1c.
# This may be replaced when dependencies are built.
