file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1b.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig1b.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig1b.dir/bench_fig1b.cpp.o"
  "CMakeFiles/bench_fig1b.dir/bench_fig1b.cpp.o.d"
  "bench_fig1b"
  "bench_fig1b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
