file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1a.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig1a.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig1a.dir/bench_fig1a.cpp.o"
  "CMakeFiles/bench_fig1a.dir/bench_fig1a.cpp.o.d"
  "bench_fig1a"
  "bench_fig1a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
