file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_controller.dir/test_sparse_controller.cpp.o"
  "CMakeFiles/test_sparse_controller.dir/test_sparse_controller.cpp.o.d"
  "test_sparse_controller"
  "test_sparse_controller.pdb"
  "test_sparse_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
