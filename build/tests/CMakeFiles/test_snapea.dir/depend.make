# Empty dependencies file for test_snapea.
# This may be replaced when dependencies are built.
