file(REMOVE_RECURSE
  "CMakeFiles/test_snapea.dir/test_snapea.cpp.o"
  "CMakeFiles/test_snapea.dir/test_snapea.cpp.o.d"
  "test_snapea"
  "test_snapea.pdb"
  "test_snapea[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snapea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
