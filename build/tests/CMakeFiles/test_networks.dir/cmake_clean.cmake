file(REMOVE_RECURSE
  "CMakeFiles/test_networks.dir/test_networks.cpp.o"
  "CMakeFiles/test_networks.dir/test_networks.cpp.o.d"
  "test_networks"
  "test_networks.pdb"
  "test_networks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
