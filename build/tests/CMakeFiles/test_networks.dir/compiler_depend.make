# Empty compiler generated dependencies file for test_networks.
# This may be replaced when dependencies are built.
