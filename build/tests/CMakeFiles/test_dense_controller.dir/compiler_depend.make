# Empty compiler generated dependencies file for test_dense_controller.
# This may be replaced when dependencies are built.
