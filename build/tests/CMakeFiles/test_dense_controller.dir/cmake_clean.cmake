file(REMOVE_RECURSE
  "CMakeFiles/test_dense_controller.dir/test_dense_controller.cpp.o"
  "CMakeFiles/test_dense_controller.dir/test_dense_controller.cpp.o.d"
  "test_dense_controller"
  "test_dense_controller.pdb"
  "test_dense_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
