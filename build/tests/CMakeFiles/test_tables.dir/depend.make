# Empty dependencies file for test_tables.
# This may be replaced when dependencies are built.
