file(REMOVE_RECURSE
  "CMakeFiles/test_tables.dir/test_tables.cpp.o"
  "CMakeFiles/test_tables.dir/test_tables.cpp.o.d"
  "test_tables"
  "test_tables.pdb"
  "test_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
