file(REMOVE_RECURSE
  "CMakeFiles/test_dataflow.dir/test_dataflow.cpp.o"
  "CMakeFiles/test_dataflow.dir/test_dataflow.cpp.o.d"
  "test_dataflow"
  "test_dataflow.pdb"
  "test_dataflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
