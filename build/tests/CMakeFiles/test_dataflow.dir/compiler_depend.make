# Empty compiler generated dependencies file for test_dataflow.
# This may be replaced when dependencies are built.
