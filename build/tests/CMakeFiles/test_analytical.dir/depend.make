# Empty dependencies file for test_analytical.
# This may be replaced when dependencies are built.
