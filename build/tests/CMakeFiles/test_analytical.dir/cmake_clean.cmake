file(REMOVE_RECURSE
  "CMakeFiles/test_analytical.dir/test_analytical.cpp.o"
  "CMakeFiles/test_analytical.dir/test_analytical.cpp.o.d"
  "test_analytical"
  "test_analytical.pdb"
  "test_analytical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
