file(REMOVE_RECURSE
  "CMakeFiles/test_model_loader.dir/test_model_loader.cpp.o"
  "CMakeFiles/test_model_loader.dir/test_model_loader.cpp.o.d"
  "test_model_loader"
  "test_model_loader.pdb"
  "test_model_loader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
