# Empty dependencies file for test_model_loader.
# This may be replaced when dependencies are built.
