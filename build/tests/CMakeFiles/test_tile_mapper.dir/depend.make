# Empty dependencies file for test_tile_mapper.
# This may be replaced when dependencies are built.
