file(REMOVE_RECURSE
  "CMakeFiles/test_tile_mapper.dir/test_tile_mapper.cpp.o"
  "CMakeFiles/test_tile_mapper.dir/test_tile_mapper.cpp.o.d"
  "test_tile_mapper"
  "test_tile_mapper.pdb"
  "test_tile_mapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
