# Empty compiler generated dependencies file for test_systolic.
# This may be replaced when dependencies are built.
