file(REMOVE_RECURSE
  "CMakeFiles/test_systolic.dir/test_systolic.cpp.o"
  "CMakeFiles/test_systolic.dir/test_systolic.cpp.o.d"
  "test_systolic"
  "test_systolic.pdb"
  "test_systolic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
