# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_networks[1]_include.cmake")
include("/root/repo/build/tests/test_systolic[1]_include.cmake")
include("/root/repo/build/tests/test_tile_mapper[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_dense_controller[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_controller[1]_include.cmake")
include("/root/repo/build/tests/test_snapea[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_analytical[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_model_loader[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_tables[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
