/**
 * @file
 * Table V: timing validation of the three engine compositions against
 * the published RTL cycle counts (MAERI BSV, SIGMA Verilog, and the
 * OS-dataflow TPU array used to validate SCALE-Sim).
 *
 * Substitution note (DESIGN.md): the RTL implementations are not
 * available here, so the golden references are the cycle counts the
 * paper publishes in Table V (both the RTL column and STONNE's own
 * column). The bench runs the same micro-layers and reports our error
 * against both.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

struct ValidationRow {
    std::string design;
    std::string layer;
    index_t m, n, k;
    cycle_t rtl;          //!< published RTL cycles
    cycle_t paper_stonne; //!< published STONNE cycles
    cycle_t ours = 0;     //!< this reproduction
};

std::vector<ValidationRow> g_rows = {
    {"MAERI", "MAERI-1", 6, 25, 54, 1338, 1381, 0},
    {"MAERI", "MAERI-2", 20, 25, 180, 16120, 16081, 0},
    {"MAERI", "MAERI-3", 6, 400, 54, 26178, 26581, 0},
    {"SIGMA", "SIGMA-1", 64, 128, 32, 2321, 2304, 0},
    {"SIGMA", "SIGMA-2", 256, 64, 64, 8594, 8448, 0},
    {"SIGMA", "SIGMA-3", 256, 128, 64, 17192, 16896, 0},
    {"SIGMA", "SIGMA-4", 128, 1, 64, 139, 138, 0},
    {"TPU", "TPU-1", 16, 16, 32, 66, 67, 0},
    {"TPU", "TPU-2", 16, 16, 16, 50, 51, 0},
    {"TPU", "TPU-3", 32, 32, 16, 200, 204, 0},
    {"TPU", "TPU-4", 64, 64, 32, 1056, 1072, 0},
};

void
runMaeri(benchmark::State &state, ValidationRow &row)
{
    // The MAERI BSV microbenchmarks are convolutions with the tile
    // Tile(T_R=3, T_S=3, T_C=1, T_G=1, T_K=1, T_N=1, T_X'=3, T_Y'=1):
    // M filters of a 3x3x(K/9)-channel window over N output positions.
    const index_t channels = row.k / 9;
    const index_t out_dim = static_cast<index_t>(
        std::llround(std::sqrt(static_cast<double>(row.n))));
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.C = channels;
    s.K = row.m;
    s.X = out_dim + 2;
    s.Y = out_dim + 2;
    const LayerSpec layer = LayerSpec::convolution(row.layer, s);

    Tile tile;
    tile.t_r = 3;
    tile.t_s = 3;
    tile.t_c = 1;
    tile.t_x = 3;

    for (auto _ : state) {
        const HardwareConfig cfg = HardwareConfig::maeriLike(32, 4);
        Stonne st(cfg);
        const LayerData data = makeLayerData(layer, 0.0, 42);
        st.configureConv(layer, tile);
        st.configureData(data.input, data.weights, data.bias);
        const SimulationResult r = st.runOperation();
        row.ours = r.cycles;
        (void)cfg;
    }
    state.counters["cycles"] = static_cast<double>(row.ours);
}

void
runSigma(benchmark::State &state, ValidationRow &row)
{
    const LayerSpec layer =
        LayerSpec::sparseGemm(row.layer, row.m, row.n, row.k);
    for (auto _ : state) {
        const HardwareConfig cfg = HardwareConfig::sigmaLike(128, 128);
        Stonne st(cfg);
        const LayerData data = makeLayerData(layer, 0.0, 42);
        st.configureSpmm(layer);
        st.configureData(data.input, data.weights);
        const SimulationResult r = st.runOperation();
        row.ours = r.cycles;
        (void)cfg;
    }
    state.counters["cycles"] = static_cast<double>(row.ours);
}

void
runTpu(benchmark::State &state, ValidationRow &row)
{
    const LayerSpec layer =
        LayerSpec::gemmLayer(row.layer, row.m, row.n, row.k);
    for (auto _ : state) {
        const HardwareConfig cfg = HardwareConfig::tpuLike(256);
        Stonne st(cfg);
        const LayerData data = makeLayerData(layer, 0.0, 42);
        st.configureDmm(layer);
        st.configureData(data.input, data.weights);
        const SimulationResult r = st.runOperation();
        row.ours = r.cycles;
        (void)cfg;
    }
    state.counters["cycles"] = static_cast<double>(row.ours);
}

void
printTable()
{
    banner("Table V — timing validation vs published RTL / STONNE "
           "cycle counts");
    TablePrinter t({"design", "layer", "M", "N", "K", "RTL", "paper-ST",
                    "ours", "err vs RTL %", "err vs ST %"});
    double sum_err = 0.0;
    for (const auto &r : g_rows) {
        const double err_rtl = 100.0 *
            std::abs(static_cast<double>(r.ours) -
                     static_cast<double>(r.rtl)) /
            static_cast<double>(r.rtl);
        const double err_st = 100.0 *
            std::abs(static_cast<double>(r.ours) -
                     static_cast<double>(r.paper_stonne)) /
            static_cast<double>(r.paper_stonne);
        sum_err += err_rtl;
        t.addRow({r.design, r.layer, TablePrinter::num(count_t(r.m)),
                  TablePrinter::num(count_t(r.n)),
                  TablePrinter::num(count_t(r.k)),
                  TablePrinter::num(r.rtl),
                  TablePrinter::num(r.paper_stonne),
                  TablePrinter::num(r.ours),
                  TablePrinter::num(err_rtl),
                  TablePrinter::num(err_st)});
    }
    t.addRow({"avg", "", "", "", "", "", "", "",
              TablePrinter::num(sum_err /
                                static_cast<double>(g_rows.size())),
              ""});
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    for (auto &row : g_rows) {
        auto *fn = row.design == "MAERI" ? runMaeri
                 : row.design == "SIGMA" ? runSigma
                                         : runTpu;
        benchmark::RegisterBenchmark(
            ("table5/" + row.layer).c_str(),
            [fn, &row](benchmark::State &s) { fn(s, row); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
