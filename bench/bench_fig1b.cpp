/**
 * @file
 * Figure 1b: cycle-level STONNE vs MAERI's analytical model for a
 * 128-multiplier flexible dense accelerator as the Global Buffer
 * bandwidth drops from 128 to 64 to 32 elements/cycle.
 *
 * Expected shape (paper): near-perfect agreement at full bandwidth
 * (avg 1.03 % difference), growing divergence as bandwidth drops — up
 * to ~400 % at 32 elements/cycle (M-FC), because the analytical model
 * cannot see the serialization stalls in the distribution and
 * reduction networks.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "analytical/maeri_model.hpp"
#include "bench_common.hpp"
#include "controller/mapper.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

constexpr index_t kMs = 128;

struct Row {
    cycle_t st = 0;
    cycle_t am = 0;
};

std::map<std::pair<index_t, std::string>, Row> g_rows;

void
runConfig(benchmark::State &state, const Fig1Layer &layer, index_t bw)
{
    Row row;
    for (auto _ : state) {
        const HardwareConfig cfg = HardwareConfig::maeriLike(kMs, bw);
        Stonne st(cfg);
        const LayerData data = makeLayerData(layer.spec, 0.0, 42);
        const SimulationResult r = runLayer(st, layer.spec, data);
        row.st = r.cycles;
        const Tile tile = Mapper(kMs).generateTile(layer.spec);
        row.am = analytical::maeriCycles(layer.spec, tile, cfg);
    }
    state.counters["st_cycles"] = static_cast<double>(row.st);
    state.counters["am_cycles"] = static_cast<double>(row.am);
    g_rows[{bw, layer.tag}] = row;
}

void
printFigure()
{
    for (const index_t bw : {128, 64, 32}) {
        banner("Figure 1b — MAERI-like 128 MS, bandwidth " +
               std::to_string(bw) + " elems/cycle (ST vs AM cycles)");
        TablePrinter t({"layer", "ST cycles", "AM cycles", "ST/AM"});
        double sum_ratio = 0.0;
        for (const auto &layer : fig1Layers()) {
            const Row &r = g_rows[{bw, layer.tag}];
            const double ratio = static_cast<double>(r.st) /
                static_cast<double>(r.am);
            sum_ratio += ratio;
            t.addRow({layer.tag, TablePrinter::num(r.st),
                      TablePrinter::num(r.am),
                      TablePrinter::num(ratio)});
        }
        t.addRow({"avg", "", "",
                  TablePrinter::num(sum_ratio /
                                    static_cast<double>(
                                        fig1Layers().size()))});
        t.print();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const index_t bw : {128, 64, 32}) {
        for (const auto &layer : stonne::bench::fig1Layers()) {
            benchmark::RegisterBenchmark(
                ("fig1b/bw" + std::to_string(bw) + "/" + layer.tag)
                    .c_str(),
                [layer, bw](benchmark::State &s) {
                    runConfig(s, layer, bw);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    return 0;
}
