/**
 * @file
 * Use case 1 (Figures 5a/5b/5c): full-model inference of the seven
 * Table I DNN models on TPU-like, MAERI-like and SIGMA-like
 * accelerators with 256 processing elements.
 *
 * Expected shape (paper): MAERI outperforms the TPU on average (largest
 * win on Mobilenets, smallest on Resnets-50); SIGMA beats MAERI thanks
 * to sparsity support; energy is dominated by the reduction network
 * (TPU > MAERI > SIGMA share); area is dominated by the Global Buffer,
 * with TPU < SIGMA < MAERI totals.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

const char *kArchNames[3] = {"TPU", "MAERI", "SIGMA"};

HardwareConfig
archConfig(int arch)
{
    switch (arch) {
      case 0: return HardwareConfig::tpuLike(256);
      case 1: return HardwareConfig::maeriLike(256, 128);
      default: return HardwareConfig::sigmaLike(256, 128);
    }
}

std::map<std::pair<int, ModelId>, SimulationResult> g_results;

void
runConfig(benchmark::State &state, ModelId id, int arch)
{
    SimulationResult total;
    for (auto _ : state)
        total = runModel(id, archConfig(arch)).total;
    state.counters["cycles"] = static_cast<double>(total.cycles);
    state.counters["energy_uJ"] = total.energy.total();
    g_results[{arch, id}] = total;
}

void
printFigures()
{
    banner("Figure 5a — inference cycles (7 models x 3 architectures)");
    {
        TablePrinter t({"model", "TPU", "MAERI", "SIGMA",
                        "TPU/MAERI", "MAERI/SIGMA"});
        double sum_tpu_maeri = 0.0, sum_maeri_sigma = 0.0;
        for (const ModelId id : allModels()) {
            const auto &tpu = g_results[{0, id}];
            const auto &maeri = g_results[{1, id}];
            const auto &sigma = g_results[{2, id}];
            const double tm = static_cast<double>(tpu.cycles) /
                static_cast<double>(maeri.cycles);
            const double ms = static_cast<double>(maeri.cycles) /
                static_cast<double>(sigma.cycles);
            sum_tpu_maeri += tm;
            sum_maeri_sigma += ms;
            t.addRow({modelShortName(id),
                      TablePrinter::num(tpu.cycles),
                      TablePrinter::num(maeri.cycles),
                      TablePrinter::num(sigma.cycles),
                      TablePrinter::num(tm), TablePrinter::num(ms)});
        }
        t.addRow({"avg", "", "", "",
                  TablePrinter::num(sum_tpu_maeri / 7.0),
                  TablePrinter::num(sum_maeri_sigma / 7.0)});
        t.print();
    }

    banner("Figure 5b — energy (uJ) breakdown GB / DN / MN / RN");
    {
        TablePrinter t({"model", "arch", "GB", "DN", "MN", "RN",
                        "static", "total", "RN share %"});
        for (const ModelId id : allModels()) {
            for (int arch = 0; arch < 3; ++arch) {
                const EnergyBreakdown &e = g_results[{arch, id}].energy;
                const double on_chip =
                    e.gb_uj + e.dn_uj + e.mn_uj + e.rn_uj;
                t.addRow({modelShortName(id), kArchNames[arch],
                          TablePrinter::num(e.gb_uj),
                          TablePrinter::num(e.dn_uj),
                          TablePrinter::num(e.mn_uj),
                          TablePrinter::num(e.rn_uj),
                          TablePrinter::num(e.static_uj),
                          TablePrinter::num(e.total()),
                          TablePrinter::num(100.0 * e.rn_uj / on_chip,
                                            1)});
            }
        }
        t.print();
        // Cross-model averages the paper quotes.
        double totals[3] = {0, 0, 0}, rn_share[3] = {0, 0, 0};
        for (const ModelId id : allModels()) {
            for (int arch = 0; arch < 3; ++arch) {
                const EnergyBreakdown &e = g_results[{arch, id}].energy;
                totals[arch] += e.total();
                rn_share[arch] += e.rn_uj /
                    (e.gb_uj + e.dn_uj + e.mn_uj + e.rn_uj);
            }
        }
        std::printf("\navg RN share: TPU %.0f%%  MAERI %.0f%%  "
                    "SIGMA %.0f%%\n",
                    100.0 * rn_share[0] / 7.0, 100.0 * rn_share[1] / 7.0,
                    100.0 * rn_share[2] / 7.0);
        std::printf("total energy: SIGMA/MAERI %.2f  SIGMA/TPU %.2f  "
                    "(paper: SIGMA uses ~0.30x MAERI, ~0.46x TPU)\n",
                    totals[2] / totals[1], totals[2] / totals[0]);
    }

    banner("Figure 5c — area (um^2) breakdown");
    {
        TablePrinter t({"arch", "GB", "DN", "MN", "RN", "total",
                        "GB share %"});
        double totals[3];
        for (int arch = 0; arch < 3; ++arch) {
            const AreaBreakdown a =
                g_results[{arch, allModels()[0]}].area;
            totals[arch] = a.total();
            t.addRow({kArchNames[arch], TablePrinter::num(a.gb_um2, 0),
                      TablePrinter::num(a.dn_um2, 0),
                      TablePrinter::num(a.mn_um2, 0),
                      TablePrinter::num(a.rn_um2, 0),
                      TablePrinter::num(a.total(), 0),
                      TablePrinter::num(100.0 * a.gb_um2 / a.total(),
                                        1)});
        }
        t.print();
        std::printf("\narea ratios: SIGMA/MAERI %.2f  TPU/MAERI %.2f  "
                    "TPU/SIGMA %.2f\n",
                    totals[2] / totals[1], totals[0] / totals[1],
                    totals[0] / totals[2]);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (int arch = 0; arch < 3; ++arch) {
        for (const ModelId id : allModels()) {
            benchmark::RegisterBenchmark(
                (std::string("fig5/") + kArchNames[arch] + "/" +
                 modelShortName(id))
                    .c_str(),
                [id, arch](benchmark::State &s) {
                    runConfig(s, id, arch);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFigures();
    return 0;
}
