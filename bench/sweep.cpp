#include "sweep.hpp"

#include <algorithm>
#include <cctype>
#include <exception>
#include <filesystem>
#include <thread>

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"
#include "common/watchdog.hpp"

namespace stonne::bench {

namespace {

/** Per-point snapshot file name derived from the point label. */
std::string
snapshotPath(const std::string &name)
{
    std::string s = "sweep_";
    for (const char c : name)
        s += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
    return s + ".ckpt";
}

} // namespace

RecoveringSweepRunner::RecoveringSweepRunner(
    std::size_t threads, int max_attempts,
    std::chrono::milliseconds backoff_base)
    : pool_(threads), max_attempts_(max_attempts),
      backoff_base_(backoff_base)
{
    fatalIf(max_attempts_ < 1,
            "a recovering sweep needs at least one attempt per point");
}

std::vector<PointOutcome>
RecoveringSweepRunner::run(const std::vector<Point> &points) const
{
    std::vector<PointOutcome> outcomes(points.size());

    std::vector<std::function<void()>> jobs;
    jobs.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        jobs.push_back([this, &points, &outcomes, i]() {
            const Point &p = points[i];
            PointOutcome &out = outcomes[i];
            out.name = p.name;
            const std::string ckpt = p.cfg.checkpoint_file != "stonne.ckpt"
                                         ? p.cfg.checkpoint_file
                                         : snapshotPath(p.name);

            for (int attempt = 1; attempt <= max_attempts_; ++attempt) {
                out.attempts = attempt;
                SweepAttempt a;
                a.attempt = attempt;
                a.degraded = max_attempts_ > 1 &&
                             attempt == max_attempts_;
                if (std::filesystem::exists(ckpt))
                    a.resume_from = ckpt;

                HardwareConfig cfg = p.cfg;
                cfg.checkpoint = true;
                cfg.checkpoint_file = ckpt;
                if (a.degraded) {
                    // The execution-policy knobs are not structural, so
                    // the restore below still accepts the snapshot.
                    cfg.fast_forward = false;
                    cfg.watchdog_cycles *= 4;
                }

                try {
                    p.fn(cfg, a);
                    out.completed = true;
                    out.degraded = a.degraded;
                    std::error_code ec;
                    std::filesystem::remove(ckpt, ec);
                    return;
                } catch (const DeadlockError &e) {
                    out.failures.push_back({attempt,
                                            "deadlock: " +
                                                std::string(e.what())});
                } catch (const CheckpointError &e) {
                    // A corrupt/mismatched snapshot must not wedge the
                    // point into resuming it forever: restart fresh.
                    out.failures.push_back({attempt, e.what()});
                    std::error_code ec;
                    std::filesystem::remove(ckpt, ec);
                } catch (const std::exception &e) {
                    out.failures.push_back({attempt, e.what()});
                }

                if (attempt < max_attempts_ &&
                    backoff_base_.count() > 0) {
                    const auto delay = std::min(
                        backoff_base_ * (1 << (attempt - 1)),
                        std::chrono::milliseconds(2000));
                    std::this_thread::sleep_for(delay);
                }
            }
        });
    }
    pool_.run(jobs);
    return outcomes;
}

JsonValue
RecoveringSweepRunner::summary(const std::vector<PointOutcome> &outcomes)
{
    JsonValue j = JsonValue::makeObject();
    std::size_t completed = 0, retried = 0, degraded = 0;
    JsonValue arr = JsonValue::makeArray();
    for (const PointOutcome &o : outcomes) {
        completed += o.completed ? 1 : 0;
        retried += o.attempts > 1 ? 1 : 0;
        degraded += o.degraded ? 1 : 0;
        JsonValue p = JsonValue::makeObject();
        p.set("name", o.name);
        p.set("attempts", static_cast<std::int64_t>(o.attempts));
        p.set("completed", o.completed);
        p.set("degraded", o.degraded);
        JsonValue fails = JsonValue::makeArray();
        for (const SweepFailure &f : o.failures) {
            JsonValue fv = JsonValue::makeObject();
            fv.set("attempt", static_cast<std::int64_t>(f.attempt));
            fv.set("cause", f.cause);
            fails.append(std::move(fv));
        }
        p["failures"] = fails;
        arr.append(std::move(p));
    }
    j.set("points_total", static_cast<std::uint64_t>(outcomes.size()));
    j.set("points_completed", static_cast<std::uint64_t>(completed));
    j.set("points_retried", static_cast<std::uint64_t>(retried));
    j.set("points_degraded", static_cast<std::uint64_t>(degraded));
    j["points"] = arr;
    return j;
}

} // namespace stonne::bench
