/**
 * @file
 * Shared infrastructure for the per-figure benchmark binaries.
 *
 * Each binary in bench/ regenerates one table or figure of the paper
 * (see DESIGN.md section 4): it runs the relevant simulations through
 * google-benchmark (one iteration per configuration — the metric is the
 * simulated cycle count, not wall time) and then prints the
 * paper-formatted rows/series.
 *
 * The eight Figure 1 layers (S-SC, S-EC, M-FC, M-L, R-C, R-L, B-TR,
 * B-L) are the representative layer types of Squeezenet, Mobilenets,
 * Resnets-50 and BERT, at the Bench scale of the model zoo.
 */

#ifndef STONNE_BENCH_BENCH_COMMON_HPP
#define STONNE_BENCH_BENCH_COMMON_HPP

#include <string>
#include <vector>

#include "controller/layer.hpp"
#include "engine/stonne_api.hpp"
#include "tensor/tensor.hpp"

namespace stonne::bench {

/** One of the eight representative DNN layers of Figure 1. */
struct Fig1Layer {
    std::string tag;  //!< paper notation, e.g. "S-SC"
    LayerSpec spec;
};

/** The eight Figure 1 layers at Bench scale. */
std::vector<Fig1Layer> fig1Layers();

/** Operand bundle for one layer. */
struct LayerData {
    Tensor input;
    Tensor weights;
    Tensor bias;
};

/**
 * Deterministic synthetic operands for a layer, with the weights
 * magnitude-pruned to `sparsity` (0 keeps them dense). `jitter` spreads
 * the per-filter density as real pruned networks do (Fig 7b).
 */
LayerData makeLayerData(const LayerSpec &layer, double sparsity,
                        std::uint64_t seed, double jitter = 0.15);

/**
 * Run one layer on an accelerator instance via the STONNE API,
 * dispatching on the layer kind.
 */
SimulationResult runLayer(Stonne &st, const LayerSpec &layer,
                          const LayerData &data);

/** Simple fixed-width table printer for the paper-style output. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print() const;

    static std::string num(double v, int precision = 2);
    static std::string num(count_t v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner. */
void banner(const std::string &title);

} // namespace stonne::bench

#endif // STONNE_BENCH_BENCH_COMMON_HPP
