/**
 * @file
 * Shared infrastructure for the per-figure benchmark binaries.
 *
 * Each binary in bench/ regenerates one table or figure of the paper
 * (see DESIGN.md section 4): it runs the relevant simulations through
 * google-benchmark (one iteration per configuration — the metric is the
 * simulated cycle count, not wall time) and then prints the
 * paper-formatted rows/series.
 *
 * Workload construction (the Figure 1 layer set, synthetic operands,
 * one-call layer execution) lives in the library (src/engine/workload)
 * so the design-space tuner evaluates candidates through exactly the
 * construction path the benchmarks time; this header re-exports it and
 * adds the bench-only pieces: a one-call full-model runner and the
 * paper-style table printer.
 */

#ifndef STONNE_BENCH_BENCH_COMMON_HPP
#define STONNE_BENCH_BENCH_COMMON_HPP

#include <optional>
#include <string>
#include <vector>

#include "controller/layer.hpp"
#include "controller/scheduler.hpp"
#include "engine/stonne_api.hpp"
#include "engine/workload.hpp"
#include "frontend/model_zoo.hpp"
#include "frontend/runner.hpp"
#include "tensor/tensor.hpp"

namespace stonne::bench {

/** One of the eight representative DNN layers of Figure 1. */
using Fig1Layer = stonne::NamedLayer;

using stonne::LayerData;
using stonne::fig1Layers;
using stonne::makeLayerData;
using stonne::runLayer;

/** Per-run knobs of runModel() beyond the hardware configuration. */
struct ModelRunOptions {
    /** Sparse-controller filter scheduling (use case 3). */
    std::optional<SchedulingPolicy> policy;
    std::uint64_t policy_seed = 1;
    /** SNAPEA early negative cut-off (use case 2). */
    std::optional<bool> snapea_early_exit;
};

/** Everything a figure needs from one full-model inference. */
struct ModelRunOutput {
    SimulationResult total;
    std::vector<LayerRunRecord> records;
};

/**
 * Build a zoo model at Bench scale, run one inference on a fresh
 * accelerator instance and return the aggregated result plus the
 * per-layer records — the construction boilerplate every full-model
 * figure (5, 6, 9) repeats.
 */
ModelRunOutput runModel(ModelId id, const HardwareConfig &cfg,
                        const ModelRunOptions &opts = {});

/** Simple fixed-width table printer for the paper-style output. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print() const;

    static std::string num(double v, int precision = 2);
    static std::string num(count_t v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner. */
void banner(const std::string &title);

} // namespace stonne::bench

#endif // STONNE_BENCH_BENCH_COMMON_HPP
