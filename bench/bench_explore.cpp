/**
 * @file
 * Co-search benchmark: the two-fidelity hardware x mapping explorer
 * over a representative dense layer.
 *
 * Runs one cold exploration (analytical ranking of the whole space,
 * cycle-level simulation of the predicted frontier) and one warm
 * repeat against the same result cache, and reports:
 *
 *   - the design-space size and the fraction pruned analytically
 *     (candidates that never earn a cycle-level simulation),
 *   - simulations executed cold vs. warm (warm must be zero),
 *   - cold vs. warm wall time (the memoization speedup),
 *   - the exact Pareto frontier.
 *
 * Results go to stdout and to BENCH_explore.json.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "common/json_writer.hpp"
#include "engine/output_module.hpp"
#include "explore/explorer.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

constexpr const char *kCacheFile = "BENCH_explore.cache";

explore::ExploreOptions
options()
{
    explore::ExploreOptions o;
    o.top_k = 4;
    o.axes = "ms_size,dn_bandwidth,rn_bandwidth,accumulator_size,fabric";
    o.cache_file = kCacheFile;
    o.seed = 42;
    return o;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // namespace

int
main()
{
    // Fresh cache: the cold leg must really simulate.
    std::filesystem::remove(kCacheFile);

    const HardwareConfig base = HardwareConfig::maeriLike(64, 32);
    // The S-EC shape of Figure 1, shrunk to keep the frontier sweep in
    // benchmark time while exercising every axis.
    Conv2dShape c;
    c.R = 3;
    c.S = 3;
    c.C = 8;
    c.K = 16;
    c.X = 8;
    c.Y = 8;
    c.stride = 1;
    c.padding = 1;
    const LayerSpec layer = LayerSpec::convolution("bench_sec", c);

    const auto t_cold = std::chrono::steady_clock::now();
    explore::Explorer cold(base, options());
    const explore::ExploreReport cold_rep = cold.exploreLayer(layer);
    const double cold_s = secondsSince(t_cold);

    const auto t_warm = std::chrono::steady_clock::now();
    explore::Explorer warm(base, options());
    const explore::ExploreReport warm_rep = warm.exploreLayer(layer);
    const double warm_s = secondsSince(t_warm);

    const double pruned =
        cold_rep.variants > 0
            ? 1.0 - static_cast<double>(cold_rep.points.size()) /
                        static_cast<double>(cold_rep.variants)
            : 0.0;

    banner("Hardware x mapping co-search (" +
           std::to_string(cold_rep.variants) + " variants, " +
           std::to_string(cold_rep.space_size) + " mapping points)");
    TablePrinter t({"metric", "cold", "warm"});
    t.addRow({"candidates simulated",
              TablePrinter::num(static_cast<count_t>(
                  cold_rep.simulations_run)),
              TablePrinter::num(static_cast<count_t>(
                  warm_rep.simulations_run))});
    t.addRow({"cache hits",
              TablePrinter::num(static_cast<count_t>(cold_rep.cache_hits)),
              TablePrinter::num(static_cast<count_t>(
                  warm_rep.cache_hits))});
    t.addRow({"wall [s]", TablePrinter::num(cold_s, 3),
              TablePrinter::num(warm_s, 3)});
    t.addRow({"frontier size",
              TablePrinter::num(static_cast<count_t>(
                  cold_rep.frontier.size())),
              TablePrinter::num(static_cast<count_t>(
                  warm_rep.frontier.size()))});
    t.print();

    banner("Exact Pareto frontier (cycles / energy / area)");
    TablePrinter f({"variant", "cycles", "energy [uJ]", "area [um^2]"});
    for (const std::size_t i : cold_rep.frontier) {
        const explore::ExplorePoint &p = cold_rep.points[i];
        f.addRow({p.label,
                  TablePrinter::num(static_cast<count_t>(
                      p.simulated_cycles)),
                  TablePrinter::num(p.energy_uj, 3),
                  TablePrinter::num(p.area_um2, 0)});
    }
    f.print();

    JsonValue j = JsonValue::makeObject();
    j.set("benchmark", std::string("explore"));
    j.set("variants", static_cast<std::uint64_t>(cold_rep.variants));
    j.set("space_size", static_cast<std::uint64_t>(cold_rep.space_size));
    j.set("candidates_simulated",
          static_cast<std::uint64_t>(cold_rep.points.size()));
    j.set("analytically_pruned_fraction", pruned);
    j.set("cold_simulations",
          static_cast<std::uint64_t>(cold_rep.simulations_run));
    j.set("warm_simulations",
          static_cast<std::uint64_t>(warm_rep.simulations_run));
    j.set("cold_wall_seconds", cold_s);
    j.set("warm_wall_seconds", warm_s);
    j.set("frontier_size",
          static_cast<std::uint64_t>(cold_rep.frontier.size()));
    JsonValue frontier = JsonValue::makeArray();
    for (const std::size_t i : cold_rep.frontier) {
        const explore::ExplorePoint &p = cold_rep.points[i];
        JsonValue e = JsonValue::makeObject();
        e.set("label", p.label);
        e.set("cycles", static_cast<std::uint64_t>(p.simulated_cycles));
        e.set("energy_uj", p.energy_uj);
        e.set("area_um2", p.area_um2);
        frontier.append(std::move(e));
    }
    j["frontier"] = std::move(frontier);
    OutputModule::writeFile("BENCH_explore.json", j.dump() + "\n");
    std::printf("wrote BENCH_explore.json\n");
    return 0;
}
