/**
 * @file
 * Service throughput benchmark: the simulation-as-a-service daemon
 * under a synthetic client storm.
 *
 * A load generator submits a large NDJSON batch (kJobs run requests,
 * a mix of cold points, cache-warm resubmissions and a sprinkle of
 * budget-limited jobs that time out terminally) into an in-process
 * ServiceDaemon, then drains it and reports:
 *
 *   - end-to-end throughput (completed jobs per second of wall time),
 *   - per-job latency percentiles (p50 / p99 of queue wait + run wall,
 *     as reported in each job's own `service` block),
 *   - the admission/outcome counter snapshot.
 *
 * Results go to stdout and to BENCH_service.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/json_writer.hpp"
#include "common/logging.hpp"
#include "engine/output_module.hpp"
#include "service/daemon.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

/** Submitted run jobs (≥ 1000: a real queue storm, not a smoke test). */
constexpr int kJobs = 1200;

/** Distinct layer shapes; jobs cycle through them. */
constexpr int kShapes = 16;

/** Distinct data seeds per shape (shapes x seeds = cold cache keys). */
constexpr int kSeeds = 4;

/** Every Nth job runs under a hopeless cycle budget (timeout path). */
constexpr int kTimeoutStride = 97;

std::string
layerJson(int shape)
{
    std::ostringstream os;
    if (shape % 4 == 3) {
        // Small transformer-style GEMMs.
        const int m = 16 + 8 * (shape / 4);
        os << R"({"kind":"gemm","name":"bench_g)" << shape
           << R"(","M":)" << m << R"(,"N":)" << m << R"(,"K":32})";
    } else {
        // Small convs with varying channel/filter counts.
        const int c = 4 + 4 * (shape % 4);
        const int k = 8 + 4 * (shape / 4);
        os << R"({"kind":"conv","name":"bench_c)" << shape
           << R"(","R":3,"S":3,"C":)" << c << R"(,"K":)" << k
           << R"(,"X":8,"Y":8,"pad":1})";
    }
    return os.str();
}

std::string
requestJson(int job)
{
    const int shape = job % kShapes;
    const std::uint64_t seed = 42 + (job / kShapes) % kSeeds;
    std::ostringstream os;
    os << R"({"type":"run","id":"bench-)" << job << R"(","seed":)" << seed
       << R"(,"layer":)" << layerJson(shape);
    if (job % kTimeoutStride == 0)
        os << R"(,"budget_cycles":8)";
    os << "}";
    return os.str();
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

int
main()
{
    std::ostringstream out;
    service::ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_queue_depth = kJobs; // admit the whole storm
    service::ServiceDaemon daemon(opts, out);

    const auto t0 = std::chrono::steady_clock::now();
    for (int job = 0; job < kJobs; ++job)
        daemon.handleLine(requestJson(job));
    const auto t_submitted = std::chrono::steady_clock::now();
    daemon.finish();
    const auto t_drained = std::chrono::steady_clock::now();

    const double submit_s =
        std::chrono::duration<double>(t_submitted - t0).count();
    const double total_s =
        std::chrono::duration<double>(t_drained - t0).count();

    // Harvest per-job latencies from the daemon's own response stream.
    std::vector<double> latencies_ms;
    std::uint64_t cache_hits = 0;
    {
        std::istringstream lines(out.str());
        std::string line;
        while (std::getline(lines, line)) {
            if (line.empty())
                continue;
            const JsonValue r = JsonValue::parse(line);
            const JsonValue *type = r.find("type");
            if (!type || type->asString() != "result")
                continue;
            const JsonValue *svc = r.find("service");
            if (!svc)
                continue;
            latencies_ms.push_back(svc->find("queue_wait_ms")->asDouble() +
                                   svc->find("wall_ms")->asDouble());
            if (svc->find("cache_hit")->asBool())
                ++cache_hits;
        }
    }
    std::sort(latencies_ms.begin(), latencies_ms.end());

    const service::ServiceCounters c = daemon.counters();
    const std::uint64_t completed = c.done + c.failed + c.timeout;
    fatalIf(completed + c.rejected !=
                static_cast<std::uint64_t>(kJobs),
            "lost jobs: ", completed, " completed + ", c.rejected,
            " rejected != ", kJobs, " submitted");

    const double jobs_per_s =
        total_s > 0.0 ? static_cast<double>(completed) / total_s : 0.0;
    const double p50 = percentile(latencies_ms, 0.50);
    const double p99 = percentile(latencies_ms, 0.99);

    banner("Simulation service under a " + std::to_string(kJobs) +
           "-job storm (" + std::to_string(daemon.workerCount()) +
           " workers)");
    TablePrinter t({"metric", "value"});
    t.addRow({"jobs submitted", TablePrinter::num(count_t{kJobs})});
    t.addRow({"done", TablePrinter::num(static_cast<count_t>(c.done))});
    t.addRow({"timeout (budget)",
              TablePrinter::num(static_cast<count_t>(c.timeout))});
    t.addRow({"failed", TablePrinter::num(static_cast<count_t>(c.failed))});
    t.addRow({"rejected",
              TablePrinter::num(static_cast<count_t>(c.rejected))});
    t.addRow({"cache hits",
              TablePrinter::num(static_cast<count_t>(c.cache_hits))});
    t.addRow({"submit wall [s]", TablePrinter::num(submit_s, 3)});
    t.addRow({"total wall [s]", TablePrinter::num(total_s, 3)});
    t.addRow({"throughput [jobs/s]", TablePrinter::num(jobs_per_s, 0)});
    t.addRow({"latency p50 [ms]", TablePrinter::num(p50, 3)});
    t.addRow({"latency p99 [ms]", TablePrinter::num(p99, 3)});
    t.print();

    JsonValue j = JsonValue::makeObject();
    j.set("benchmark", std::string("service"));
    j.set("jobs", static_cast<std::int64_t>(kJobs));
    j.set("distinct_shapes", static_cast<std::int64_t>(kShapes));
    j.set("distinct_seeds", static_cast<std::int64_t>(kSeeds));
    j.set("workers", static_cast<std::uint64_t>(daemon.workerCount()));
    j.set("queue_depth", static_cast<std::uint64_t>(daemon.queueDepth()));
    j.set("submit_wall_seconds", submit_s);
    j.set("total_wall_seconds", total_s);
    j.set("jobs_per_second", jobs_per_s);
    j.set("latency_p50_ms", p50);
    j.set("latency_p99_ms", p99);
    j.set("done", c.done);
    j.set("timeout", c.timeout);
    j.set("failed", c.failed);
    j.set("rejected", c.rejected);
    j.set("cache_hits", c.cache_hits);
    j.set("retries", c.retries);
    OutputModule::writeFile("BENCH_service.json", j.dump() + "\n");
    std::printf("wrote BENCH_service.json\n");
    return 0;
}
