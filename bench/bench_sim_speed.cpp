/**
 * @file
 * Simulator-speed benchmark: tick vs. event engine, exact vs.
 * fast-forward.
 *
 * Unlike the bench_fig* binaries (whose metric is the simulated cycle
 * count), this harness measures the *simulator's own* wall-clock
 * throughput. Every Figure 1 workload below runs three times on the
 * same operands:
 *
 *  - `engine = TICK`, `fast_forward = OFF`: the original
 *    tick-everything exact loop (the pre-event-engine reference),
 *  - `engine = EVENT`, `fast_forward = OFF`: exact mode on the wakeup
 *    scheduler (steady idle spans skipped in closed form),
 *  - `engine = EVENT`, `fast_forward = ON`: the fast-forward engine.
 *
 * The harness panics unless all three modes produce bit-identical
 * results: same cycle count, same activity-counter snapshot, same
 * output tensor. The wall times, speedups and cycles/second go to
 * stdout and to BENCH_sim_speed.json; the CI perf-smoke job gates on
 * the exact-mode S-EC throughput.
 *
 * The workload points run concurrently over the SweepRunner thread
 * pool (each point owns its Stonne instances).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/json_writer.hpp"
#include "common/logging.hpp"
#include "engine/output_module.hpp"
#include "frontend/model_zoo.hpp"
#include "frontend/runner.hpp"
#include "multicore/multicore_runner.hpp"
#include "sweep.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

/** Wall times are min-of-N to shed scheduler noise. */
constexpr int kReps = 3;

struct Workload {
    std::string name;   //!< point label, e.g. "S-EC @ maeri-128/bw8"
    std::string tag;    //!< Figure 1 layer tag
    HardwareConfig cfg; //!< base config; fast_forward overridden per run
    double sparsity;
};

/**
 * Low-bandwidth points maximize the steady-state fraction of the
 * run — exactly the regime where per-cycle simulation wastes the most
 * host time and the closed forms pay off.
 */
std::vector<Workload>
workloads()
{
    std::vector<Workload> w;
    auto add = [&](const std::string &tag, HardwareConfig cfg,
                   double sparsity) {
        char name[96];
        std::snprintf(name, sizeof(name), "%s @ %s/bw%lld", tag.c_str(),
                      cfg.name.c_str(),
                      static_cast<long long>(cfg.dn_bandwidth));
        w.push_back({name, tag, std::move(cfg), sparsity});
    };
    add("S-SC", HardwareConfig::maeriLike(128, 1), 0.0);
    add("S-EC", HardwareConfig::maeriLike(128, 1), 0.0);
    add("R-L", HardwareConfig::sigmaLike(256, 1), 0.9);
    add("M-L", HardwareConfig::sigmaLike(128, 1), 0.9);
    add("B-TR", HardwareConfig::sigmaLike(128, 1), 0.0);
    add("B-L", HardwareConfig::sigmaLike(128, 1), 0.3);
    return w;
}

struct ModeResult {
    SimulationResult sim;
    std::deque<StatCounter> counters;
    Tensor output;
    double best_wall = 0.0; //!< min over kReps runs
};

struct PointResult {
    ModeResult tick;  //!< TICK engine, exact (pre-event-engine ref)
    ModeResult exact; //!< EVENT engine, exact
    ModeResult fast;  //!< EVENT engine, fast-forward
    double exact_speedup = 0.0; //!< tick exact / event exact
    double ff_speedup = 0.0;    //!< tick exact / event fast-forward
};

const LayerSpec &
layerByTag(const std::string &tag)
{
    static const std::vector<Fig1Layer> layers = fig1Layers();
    for (const Fig1Layer &l : layers)
        if (l.tag == tag)
            return l.spec;
    fatal("no Figure 1 layer tagged '", tag, "'");
}

ModeResult
runMode(const Workload &w, const LayerData &data, EngineType engine,
        bool fast_forward)
{
    ModeResult m;
    for (int rep = 0; rep < kReps; ++rep) {
        HardwareConfig cfg = w.cfg;
        cfg.engine_type = engine;
        cfg.fast_forward = fast_forward;
        Stonne st(cfg);
        const SimulationResult r = runLayer(st, layerByTag(w.tag), data);
        if (rep == 0) {
            m.sim = r;
            m.counters = st.stats().counters();
            m.output = st.output();
            m.best_wall = r.wall_seconds;
        } else {
            m.best_wall = std::min(m.best_wall, r.wall_seconds);
        }
    }
    return m;
}

/** Panic unless the two modes were bit-identical on this point. */
void
checkParity(const Workload &w, const ModeResult &ref, const ModeResult &fast)
{
    panicIf(ref.sim.cycles != fast.sim.cycles, "'", w.name,
            "': cycle mismatch (reference ", ref.sim.cycles,
            ", compared mode ", fast.sim.cycles, ")");
    panicIf(ref.counters.size() != fast.counters.size(), "'", w.name,
            "': counter set size mismatch");
    for (std::size_t i = 0; i < ref.counters.size(); ++i) {
        panicIf(ref.counters[i].name != fast.counters[i].name, "'", w.name,
                "': counter order mismatch at '", ref.counters[i].name,
                "'");
        panicIf(ref.counters[i].value != fast.counters[i].value, "'",
                w.name, "': counter '", ref.counters[i].name,
                "' mismatch (reference ", ref.counters[i].value, ", fast ",
                fast.counters[i].value, ")");
    }
    panicIf(ref.output.shape() != fast.output.shape(), "'", w.name,
            "': output shape mismatch");
    panicIf(ref.output.size() > 0 &&
                std::memcmp(ref.output.data(), fast.output.data(),
                            static_cast<std::size_t>(ref.output.size()) *
                                sizeof(float)) != 0,
            "'", w.name, "': output tensor mismatch");
}

/** One full-model throughput point (the multi-core/batch regimes the
 *  per-layer sweep above cannot reach). */
struct ModelPoint {
    std::string name;
    cycle_t cycles = 0;       //!< composed makespan (or total cycles)
    double best_wall = 0.0;   //!< min-of-kReps simulator wall seconds
    count_t dram_stalls = 0;  //!< summed shared-DRAM stall cycles
};

/** 2-core pipeline of SqueezeNet-tiny behind one shared DRAM channel. */
ModelPoint
runMulticorePoint()
{
    const DnnModel model =
        buildModel(ModelId::SqueezeNet, ModelScale::Tiny, 7, 1);
    const Tensor input =
        makeModelInput(ModelId::SqueezeNet, ModelScale::Tiny, 11, 1);
    HardwareConfig cfg = HardwareConfig::maeriLike(128, 64);
    cfg.cores = 2;
    cfg.dram_channels = 1;
    cfg.partition = PartitionStrategy::Pipeline;

    ModelPoint p{"squeezenet-tiny x2 pipeline"};
    for (int rep = 0; rep < kReps; ++rep) {
        MulticoreRunner runner(model, cfg);
        const Tensor out = runner.run(input);
        panicIf(!out.equals(runner.runNative(input)),
                "multicore bench point diverged from the native path");
        const double wall = runner.total().wall_seconds;
        if (rep == 0) {
            p.cycles = runner.makespanCycles();
            p.best_wall = wall;
            for (index_t c = 0; c < cfg.cores; ++c)
                p.dram_stalls += runner.arbiter().stallCycles(c);
        } else {
            p.best_wall = std::min(p.best_wall, wall);
        }
    }
    return p;
}

/** Batched inference (N = 4) through the single-accelerator runner. */
ModelPoint
runBatchPoint()
{
    const DnnModel model =
        buildModel(ModelId::SqueezeNet, ModelScale::Tiny, 7, 4);
    const Tensor input =
        makeModelInput(ModelId::SqueezeNet, ModelScale::Tiny, 11, 4);
    const HardwareConfig cfg = HardwareConfig::maeriLike(128, 64);

    ModelPoint p{"squeezenet-tiny batch4"};
    for (int rep = 0; rep < kReps; ++rep) {
        ModelRunner runner(model, cfg);
        const Tensor out = runner.run(input);
        panicIf(!out.equals(runner.runNative(input)),
                "batch bench point diverged from the native path");
        const SimulationResult total = runner.total();
        if (rep == 0) {
            p.cycles = total.cycles;
            p.best_wall = total.wall_seconds;
        } else {
            p.best_wall = std::min(p.best_wall, total.wall_seconds);
        }
    }
    return p;
}

} // namespace

int
main()
{
    const std::vector<Workload> points = workloads();
    std::vector<PointResult> results(points.size());

    // The recovering runner retries a failing point from its last
    // snapshot instead of aborting the sweep; a healthy run completes
    // every point on attempt 1 and the recovery summary records that.
    RecoveringSweepRunner runner;
    std::vector<RecoveringSweepRunner::Point> sweep;
    sweep.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        sweep.push_back(
            {points[i].name, points[i].cfg,
             [&, i](const HardwareConfig &cfg, const SweepAttempt &) {
                 Workload w = points[i];
                 w.cfg = cfg;
                 const LayerData data =
                     makeLayerData(layerByTag(w.tag), w.sparsity, 42);
                 PointResult &p = results[i];
                 p.tick = runMode(w, data, EngineType::Tick,
                                  /*fast_forward=*/false);
                 p.exact = runMode(w, data, EngineType::Event,
                                   /*fast_forward=*/false);
                 p.fast = runMode(w, data, EngineType::Event,
                                  /*fast_forward=*/true);
                 checkParity(w, p.tick, p.exact);
                 checkParity(w, p.tick, p.fast);
                 p.exact_speedup = p.exact.best_wall > 0.0
                     ? p.tick.best_wall / p.exact.best_wall
                     : 0.0;
                 p.ff_speedup = p.fast.best_wall > 0.0
                     ? p.tick.best_wall / p.fast.best_wall
                     : 0.0;
             }});
    }
    const std::vector<PointOutcome> outcomes = runner.run(sweep);
    for (const PointOutcome &o : outcomes)
        fatalIf(!o.completed, "sweep point '", o.name, "' failed all ",
                o.attempts, " attempts; last cause: ",
                o.failures.empty() ? "unknown"
                                   : o.failures.back().cause.c_str());

    banner("Simulator speed — tick vs. event engine (" +
           std::to_string(runner.threadCount()) + " sweep threads)");
    TablePrinter t({"workload", "cycles", "tick wall [s]",
                    "event wall [s]", "exact speedup", "ff wall [s]",
                    "exact cycles/s"});
    double max_exact_speedup = 0.0;
    double max_ff_speedup = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointResult &p = results[i];
        max_exact_speedup = std::max(max_exact_speedup, p.exact_speedup);
        max_ff_speedup = std::max(max_ff_speedup, p.ff_speedup);
        t.addRow({points[i].name,
                  TablePrinter::num(static_cast<count_t>(p.tick.sim.cycles)),
                  TablePrinter::num(p.tick.best_wall, 4),
                  TablePrinter::num(p.exact.best_wall, 4),
                  TablePrinter::num(p.exact_speedup, 2),
                  TablePrinter::num(p.fast.best_wall, 4),
                  TablePrinter::num(p.exact.best_wall > 0.0
                                        ? static_cast<double>(
                                              p.exact.sim.cycles) /
                                            p.exact.best_wall
                                        : 0.0,
                                    0)});
    }
    t.print();
    std::printf("\nmax exact speedup: %.2fx, max fast-forward speedup: "
                "%.2fx (parity held on all %zu points)\n",
                max_exact_speedup, max_ff_speedup, points.size());

    JsonValue j = JsonValue::makeObject();
    j.set("benchmark", std::string("sim_speed"));
    j.set("reps", static_cast<std::int64_t>(kReps));
    j.set("sweep_threads",
          static_cast<std::uint64_t>(runner.threadCount()));
    JsonValue arr = JsonValue::makeArray();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointResult &p = results[i];
        JsonValue o = JsonValue::makeObject();
        o.set("workload", points[i].name);
        o.set("layer", points[i].tag);
        o.set("config", points[i].cfg.name);
        o.set("dn_bandwidth", points[i].cfg.dn_bandwidth);
        o.set("sparsity", points[i].sparsity);
        o.set("cycles", static_cast<std::uint64_t>(p.tick.sim.cycles));
        o.set("tick_exact_wall_seconds", p.tick.best_wall);
        o.set("event_exact_wall_seconds", p.exact.best_wall);
        o.set("fast_forward_wall_seconds", p.fast.best_wall);
        o.set("exact_speedup", p.exact_speedup);
        o.set("fast_forward_speedup", p.ff_speedup);
        o.set("exact_cycles_per_second",
              p.exact.best_wall > 0.0
                  ? static_cast<double>(p.exact.sim.cycles) /
                        p.exact.best_wall
                  : 0.0);
        o.set("fast_forward_cycles_per_second",
              p.fast.best_wall > 0.0
                  ? static_cast<double>(p.fast.sim.cycles) / p.fast.best_wall
                  : 0.0);
        o.set("parity", true);
        arr.append(std::move(o));
    }
    j["points"] = arr;
    j.set("max_exact_speedup", max_exact_speedup);
    j.set("max_fast_forward_speedup", max_ff_speedup);

    // Full-model points: the multi-core and batched regimes.
    const std::vector<ModelPoint> model_points = {runMulticorePoint(),
                                                  runBatchPoint()};
    TablePrinter mt({"model point", "cycles", "wall [s]", "cycles/s",
                     "dram stalls"});
    JsonValue marr = JsonValue::makeArray();
    for (const ModelPoint &p : model_points) {
        mt.addRow({p.name, TablePrinter::num(static_cast<count_t>(p.cycles)),
                   TablePrinter::num(p.best_wall, 4),
                   TablePrinter::num(p.best_wall > 0.0
                                         ? static_cast<double>(p.cycles) /
                                               p.best_wall
                                         : 0.0,
                                     0),
                   TablePrinter::num(p.dram_stalls)});
        JsonValue o = JsonValue::makeObject();
        o.set("workload", p.name);
        o.set("cycles", static_cast<std::uint64_t>(p.cycles));
        o.set("wall_seconds", p.best_wall);
        o.set("dram_stall_cycles", static_cast<std::uint64_t>(p.dram_stalls));
        o.set("parity", true);
        marr.append(std::move(o));
    }
    std::printf("\n");
    mt.print();
    j["model_points"] = marr;

    j["recovery"] = RecoveringSweepRunner::summary(outcomes);
    OutputModule::writeFile("BENCH_sim_speed.json", j.dump() + "\n");
    std::printf("wrote BENCH_sim_speed.json\n");
    return 0;
}
