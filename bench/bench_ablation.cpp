/**
 * @file
 * Ablations over the design choices DESIGN.md calls out — the kind of
 * rapid design-space exploration STONNE exists for:
 *
 *  A. Dataflow (OS / WS / IS): traffic-vs-psum trade-offs at a fixed
 *     substrate.
 *  B. Reduction network variant (ART+ACC vs plain ART+DIST vs FAN-style
 *     accumulation): the cost of dropping the accumulation buffer.
 *  C. Accumulator size sweep: how much buffer the OS dataflow needs.
 *  D. Distribution network (Tree vs Benes) on the same dense pipeline:
 *     same cycles, different energy/area.
 *  E. Mapper cluster-size search vs the naive full-window tile.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

LayerSpec
deepConv()
{
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.C = 64;
    s.K = 64;
    s.X = 10;
    s.Y = 10;
    s.padding = 1;
    return LayerSpec::convolution("deep_conv", s);
}

struct AblationRow {
    std::string knob;
    std::string value;
    cycle_t cycles = 0;
    count_t gb_reads = 0;
    count_t gb_writes = 0;
    double energy_uj = 0.0;
    double area_mm2 = 0.0;
};

std::vector<AblationRow> g_rows;

AblationRow
runOne(const std::string &knob, const std::string &value,
       HardwareConfig cfg, const LayerSpec &layer,
       std::optional<Tile> tile = std::nullopt)
{
    Stonne st(cfg);
    const LayerData data = makeLayerData(layer, 0.0, 42);
    st.configureConv(layer, tile);
    st.configureData(data.input, data.weights, data.bias);
    const SimulationResult r = st.runOperation();

    AblationRow row;
    row.knob = knob;
    row.value = value;
    row.cycles = r.cycles;
    row.gb_reads = st.stats().value("gb.reads");
    row.gb_writes = st.stats().value("gb.writes");
    row.energy_uj = r.energy.total();
    row.area_mm2 = r.area.total() / 1e6;
    return row;
}

void
runAll(benchmark::State &state)
{
    for (auto _ : state) {
        g_rows.clear();
        const LayerSpec layer = deepConv();

        // A. Dataflows.
        for (const auto &[df, name] :
             {std::pair{Dataflow::OutputStationary, "OS"},
              std::pair{Dataflow::WeightStationary, "WS"},
              std::pair{Dataflow::InputStationary, "IS"}}) {
            HardwareConfig cfg = HardwareConfig::maeriLike(128, 64);
            cfg.dataflow = df;
            cfg.accumulator_size = 64;
            g_rows.push_back(runOne("dataflow", name, cfg, layer));
        }

        // B. Reduction network variant.
        for (const auto &[rn, name] :
             {std::pair{RnType::ArtAcc, "ART+ACC"},
              std::pair{RnType::Art, "ART+DIST"},
              std::pair{RnType::Fan, "FAN"}}) {
            HardwareConfig cfg = HardwareConfig::maeriLike(128, 64);
            cfg.rn_type = rn;
            g_rows.push_back(runOne("rn_type", name, cfg, layer));
        }

        // C. Accumulator size (OS dataflow).
        for (const index_t acc : {16, 64, 256, 1024}) {
            HardwareConfig cfg = HardwareConfig::maeriLike(128, 64);
            cfg.accumulator_size = acc;
            g_rows.push_back(runOne("accumulator", std::to_string(acc),
                                    cfg, layer));
        }

        // D. Distribution network on the same dense pipeline.
        for (const auto &[dn, name] : {std::pair{DnType::Tree, "Tree"},
                                       std::pair{DnType::Benes, "Benes"}}) {
            HardwareConfig cfg = HardwareConfig::maeriLike(128, 64);
            cfg.dn_type = dn;
            g_rows.push_back(runOne("dn_type", name, cfg, layer));
        }

        // E. Mapper search vs the naive full-window tile. On a 256-MS
        // array the 576-element window quantizes badly (252-wide
        // cluster, 3 folds at 76 % average occupancy) — the search
        // finds a better fold/parallelism split.
        {
            const HardwareConfig cfg =
                HardwareConfig::maeriLike(256, 128);
            g_rows.push_back(
                runOne("mapper", "search", cfg, layer));
            Tile naive;
            naive.t_r = 3;
            naive.t_s = 3;
            naive.t_c = 256 / 9; // largest cluster that fits
            g_rows.push_back(
                runOne("mapper", "full-window", cfg, layer, naive));
        }
    }
    state.counters["configs"] = static_cast<double>(g_rows.size());
}

void
printTable()
{
    banner("Design-choice ablations (3x3x64 conv, K=16, 14x14, "
           "MAERI-like 128 MS, bw 64)");
    TablePrinter t({"knob", "value", "cycles", "GB reads", "GB writes",
                    "energy uJ", "area mm^2"});
    for (const AblationRow &r : g_rows)
        t.addRow({r.knob, r.value, TablePrinter::num(r.cycles),
                  TablePrinter::num(r.gb_reads),
                  TablePrinter::num(r.gb_writes),
                  TablePrinter::num(r.energy_uj),
                  TablePrinter::num(r.area_mm2)});
    t.print();
    std::printf(
        "\nreadings: WS trades psum spills (writes) for weight re-reads;"
        "\nIS cuts activation reads; ART+DIST pays GB round-trips for"
        "\ndropping the accumulation buffer; the Benes fabric changes"
        "\nenergy/area, not cycles; the mapper search beats the naive"
        "\nfull-window tile on folded layers.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::RegisterBenchmark("ablation/all", runAll)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
