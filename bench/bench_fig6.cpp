/**
 * @file
 * Use case 2 (Figures 6a-6d): SNAPEA vs the baseline (same pipeline
 * without the negative-detection logic) on the four purely
 * convolutional models, 64 multipliers, 64 elements/cycle.
 *
 * Expected shape (paper): ~35 % average speedup, ~21 % energy saving,
 * ~30 % fewer operations and ~16 % fewer memory accesses; Squeezenet
 * shows the largest reductions.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

std::map<std::pair<ModelId, bool>, SimulationResult> g_results;

void
runConfig(benchmark::State &state, ModelId id, bool early_exit)
{
    SimulationResult total;
    ModelRunOptions opts;
    opts.snapea_early_exit = early_exit;
    for (auto _ : state)
        total = runModel(id, HardwareConfig::snapeaLike(64, 64),
                         opts).total;
    state.counters["cycles"] = static_cast<double>(total.cycles);
    state.counters["ops"] = static_cast<double>(total.macs);
    g_results[{id, early_exit}] = total;
}

void
printFigures()
{
    banner("Figures 6a-6d — SNAPEA vs baseline (A, S, V, R)");
    TablePrinter t({"model", "speedup (6a)", "norm energy (6b)",
                    "ops ratio (6c)", "mem ratio (6d)",
                    "skipped MACs"});
    double sum_speedup = 0.0, sum_energy = 0.0, sum_ops = 0.0,
        sum_mem = 0.0;
    const auto models = cnnModels();
    for (const ModelId id : models) {
        const SimulationResult &base = g_results[{id, false}];
        const SimulationResult &snap = g_results[{id, true}];
        const double speedup = static_cast<double>(base.cycles) /
            static_cast<double>(snap.cycles);
        const double energy = snap.energy.total() / base.energy.total();
        const double ops = static_cast<double>(snap.macs) /
            static_cast<double>(base.macs);
        const double mem = static_cast<double>(snap.mem_accesses) /
            static_cast<double>(base.mem_accesses);
        sum_speedup += speedup;
        sum_energy += energy;
        sum_ops += ops;
        sum_mem += mem;
        t.addRow({modelShortName(id), TablePrinter::num(speedup),
                  TablePrinter::num(energy), TablePrinter::num(ops),
                  TablePrinter::num(mem),
                  TablePrinter::num(snap.skipped_macs)});
    }
    const auto n = static_cast<double>(models.size());
    t.addRow({"avg", TablePrinter::num(sum_speedup / n),
              TablePrinter::num(sum_energy / n),
              TablePrinter::num(sum_ops / n),
              TablePrinter::num(sum_mem / n), ""});
    t.print();
    std::printf("\npaper: ~1.35x speedup, ~0.79x energy, ~0.70x ops, "
                "~0.84x memory accesses on average\n");
}

} // namespace

int
main(int argc, char **argv)
{
    for (const ModelId id : stonne::cnnModels()) {
        for (const bool early : {false, true}) {
            benchmark::RegisterBenchmark(
                (std::string("fig6/") + modelShortName(id) + "/" +
                 (early ? "snapea" : "baseline"))
                    .c_str(),
                [id, early](benchmark::State &s) {
                    runConfig(s, id, early);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFigures();
    return 0;
}
