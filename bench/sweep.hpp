/**
 * @file
 * Thread-pooled sweep runner for independent benchmark points.
 *
 * Design-space sweeps are embarrassingly parallel: every point owns its
 * Stonne instance (and therefore its StatsRegistry, watchdog and RNG
 * streams), the SimContext error scopes are thread-local, and logging
 * keeps no mutable global state — so points can run concurrently with
 * no sharing at all. The runner executes a list of closures over a
 * fixed pool, preserves submission order in the results, and rethrows
 * the first failure after the pool drains.
 */

#ifndef STONNE_BENCH_SWEEP_HPP
#define STONNE_BENCH_SWEEP_HPP

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/json_writer.hpp"

namespace stonne::bench {

/** Fixed-size thread pool running independent simulation points. */
class SweepRunner
{
  public:
    /**
     * @param threads pool size; 0 picks the hardware concurrency
     *        (at least 1).
     */
    explicit SweepRunner(std::size_t threads = 0);

    std::size_t threadCount() const { return threads_; }

    /**
     * Run every job over the pool and block until all complete. Jobs
     * are claimed in submission order; a job that throws does not stop
     * the others, and the first exception (lowest job index) is
     * rethrown once the pool has drained.
     */
    void run(const std::vector<std::function<void()>> &jobs) const;

  private:
    std::size_t threads_;
};

/** One execution attempt handed to a recovering-sweep point function. */
struct SweepAttempt {
    int attempt = 1;         //!< 1-based attempt number
    bool degraded = false;   //!< final attempt: exact engine, wide watchdog
    /** Snapshot left by the previous attempt ("" = start fresh). */
    std::string resume_from;
};

/** Record of one failed attempt of one point. */
struct SweepFailure {
    int attempt = 0;
    std::string cause;
};

/** Final outcome of one point after all retries. */
struct PointOutcome {
    std::string name;
    int attempts = 0;        //!< attempts consumed (>= 1)
    bool completed = false;
    bool degraded = false;   //!< completed only on the degraded attempt
    std::vector<SweepFailure> failures;
};

/**
 * Crash-recovering sweep: runs every point over the thread pool, and
 * instead of letting one pathological point (a deadlock, a
 * fault-induced failure) abort the whole sweep, retries it with
 * bounded exponential backoff from its last checkpoint. Each point's
 * configuration is handed back with `checkpoint = ON` and a per-point
 * snapshot file, so a failed attempt resumes from the last layer/
 * operation boundary rather than from scratch; the final attempt runs
 * degraded — `fast_forward = OFF` and a 4x watchdog budget — to rule
 * out the execution-policy knobs as the failure cause (checkpoint
 * restore accepts that, policy keys are not structural). Per-point
 * attempt counts and failure causes land in the JSON summary.
 */
class RecoveringSweepRunner
{
  public:
    /**
     * Point body: run the simulation described by `cfg` (the point's
     * configuration with the runner's checkpoint/degradation overlay
     * applied). When `attempt.resume_from` is non-empty, a snapshot of
     * a previous attempt exists at that path and should be resumed.
     * Throwing signals failure and triggers the retry path.
     */
    using PointFn =
        std::function<void(const HardwareConfig &cfg,
                           const SweepAttempt &attempt)>;

    /** One sweep point: a label, its configuration, and its body. */
    struct Point {
        std::string name;
        HardwareConfig cfg;
        PointFn fn;
    };

    /**
     * @param threads pool size; 0 picks the hardware concurrency
     * @param max_attempts attempts per point (>= 1); the last one runs
     *        degraded when max_attempts > 1
     * @param backoff_base first retry delay, doubled per attempt and
     *        capped at 2 s; zero disables sleeping (tests)
     */
    explicit RecoveringSweepRunner(
        std::size_t threads = 0, int max_attempts = 3,
        std::chrono::milliseconds backoff_base =
            std::chrono::milliseconds(100));

    std::size_t threadCount() const { return pool_.threadCount(); }

    /**
     * Run all points; never throws for point failures — a point that
     * exhausts its attempts is reported as not completed. Results keep
     * submission order.
     */
    std::vector<PointOutcome> run(const std::vector<Point> &points) const;

    /** JSON summary: per-point attempts, causes, and sweep totals. */
    static JsonValue summary(const std::vector<PointOutcome> &outcomes);

  private:
    SweepRunner pool_;
    int max_attempts_;
    std::chrono::milliseconds backoff_base_;
};

} // namespace stonne::bench

#endif // STONNE_BENCH_SWEEP_HPP
