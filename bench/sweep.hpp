/**
 * @file
 * Crash-recovering sweep harness for independent benchmark points.
 *
 * The underlying thread pool (stonne::SweepRunner) lives in the
 * library (src/common/sweep_pool) so the design-space explorer can
 * share it; this header re-exports it into the bench namespace and
 * adds the checkpointed retry orchestration benchmarks use.
 */

#ifndef STONNE_BENCH_SWEEP_HPP
#define STONNE_BENCH_SWEEP_HPP

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/json_writer.hpp"
#include "common/sweep_pool.hpp"

namespace stonne::bench {

using stonne::SweepRunner;

/** One execution attempt handed to a recovering-sweep point function. */
struct SweepAttempt {
    int attempt = 1;         //!< 1-based attempt number
    bool degraded = false;   //!< final attempt: exact engine, wide watchdog
    /** Snapshot left by the previous attempt ("" = start fresh). */
    std::string resume_from;
};

/** Record of one failed attempt of one point. */
struct SweepFailure {
    int attempt = 0;
    std::string cause;
};

/** Final outcome of one point after all retries. */
struct PointOutcome {
    std::string name;
    int attempts = 0;        //!< attempts consumed (>= 1)
    bool completed = false;
    bool degraded = false;   //!< completed only on the degraded attempt
    std::vector<SweepFailure> failures;
};

/**
 * Crash-recovering sweep: runs every point over the thread pool, and
 * instead of letting one pathological point (a deadlock, a
 * fault-induced failure) abort the whole sweep, retries it with
 * bounded exponential backoff from its last checkpoint. Each point's
 * configuration is handed back with `checkpoint = ON` and a per-point
 * snapshot file, so a failed attempt resumes from the last layer/
 * operation boundary rather than from scratch; the final attempt runs
 * degraded — `fast_forward = OFF` and a 4x watchdog budget — to rule
 * out the execution-policy knobs as the failure cause (checkpoint
 * restore accepts that, policy keys are not structural). Per-point
 * attempt counts and failure causes land in the JSON summary.
 */
class RecoveringSweepRunner
{
  public:
    /**
     * Point body: run the simulation described by `cfg` (the point's
     * configuration with the runner's checkpoint/degradation overlay
     * applied). When `attempt.resume_from` is non-empty, a snapshot of
     * a previous attempt exists at that path and should be resumed.
     * Throwing signals failure and triggers the retry path.
     */
    using PointFn =
        std::function<void(const HardwareConfig &cfg,
                           const SweepAttempt &attempt)>;

    /** One sweep point: a label, its configuration, and its body. */
    struct Point {
        std::string name;
        HardwareConfig cfg;
        PointFn fn;
    };

    /**
     * @param threads pool size; 0 picks the hardware concurrency
     * @param max_attempts attempts per point (>= 1); the last one runs
     *        degraded when max_attempts > 1
     * @param backoff_base first retry delay, doubled per attempt and
     *        capped at 2 s; zero disables sleeping (tests)
     */
    explicit RecoveringSweepRunner(
        std::size_t threads = 0, int max_attempts = 3,
        std::chrono::milliseconds backoff_base =
            std::chrono::milliseconds(100));

    std::size_t threadCount() const { return pool_.threadCount(); }

    /**
     * Run all points; never throws for point failures — a point that
     * exhausts its attempts is reported as not completed. Results keep
     * submission order.
     */
    std::vector<PointOutcome> run(const std::vector<Point> &points) const;

    /** JSON summary: per-point attempts, causes, and sweep totals. */
    static JsonValue summary(const std::vector<PointOutcome> &outcomes);

  private:
    SweepRunner pool_;
    int max_attempts_;
    std::chrono::milliseconds backoff_base_;
};

} // namespace stonne::bench

#endif // STONNE_BENCH_SWEEP_HPP
