/**
 * @file
 * Figures 7a/7b: scheduling opportunity analysis for sparse filters on
 * a 256-MS flexible architecture.
 *
 * 7a — average number of *entire* filters that can be mapped
 *      simultaneously per mapping round, per DNN model.
 * 7b — filter-size (nnz) distribution of each model's first layer.
 *
 * Expected shape (paper): 4-8 filters fit simultaneously for most
 * models; Alexnet and BERT fit fewer because their filters are larger
 * by design; first-layer filter sizes vary wildly.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "controller/scheduler.hpp"
#include "frontend/model_zoo.hpp"
#include "tensor/sparse.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

constexpr index_t kMs = 256;

/** Per-filter nnz sizes of every offloadable weight matrix. */
std::vector<std::vector<index_t>>
modelFilterSizes(const DnnModel &model)
{
    std::vector<std::vector<index_t>> per_layer;
    auto add_matrix = [&](const Tensor &w, index_t filters) {
        const index_t per_filter = w.size() / filters;
        std::vector<index_t> sizes;
        sizes.reserve(static_cast<std::size_t>(filters));
        for (index_t f = 0; f < filters; ++f) {
            index_t nnz = 0;
            for (index_t i = 0; i < per_filter; ++i)
                if (w.data()[f * per_filter + i] != 0.0f)
                    ++nnz;
            sizes.push_back(nnz);
        }
        per_layer.push_back(std::move(sizes));
    };
    for (const DnnLayer &l : model.layers) {
        if (l.op == OpType::Conv2d || l.op == OpType::Linear)
            add_matrix(l.weights, l.weights.dim(0));
        else if (l.op == OpType::SelfAttention) {
            add_matrix(l.weights, l.weights.dim(0));
            for (const Tensor &w : l.extra_weights)
                add_matrix(w, w.dim(0));
        }
    }
    return per_layer;
}

struct ModelStats {
    double avg_filters_per_round = 0.0;
    std::vector<index_t> first_layer_sizes;
};

std::map<ModelId, ModelStats> g_stats;

void
runConfig(benchmark::State &state, ModelId id)
{
    ModelStats stats;
    for (auto _ : state) {
        const DnnModel model = buildModel(id, ModelScale::Bench);
        const auto layers = modelFilterSizes(model);
        double sum = 0.0;
        for (const auto &sizes : layers) {
            const auto rounds =
                packRounds(sizes, kMs, SchedulingPolicy::None);
            sum += averageFiltersPerRound(rounds);
        }
        stats.avg_filters_per_round =
            sum / static_cast<double>(layers.size());
        stats.first_layer_sizes = layers.front();
        // The mapping size is capped by the array (folded filters count
        // as 256-wide chunks), as in the paper's Figure 7b.
        for (auto &s : stats.first_layer_sizes)
            s = std::min(s, kMs);
    }
    state.counters["avg_filters"] = stats.avg_filters_per_round;
    g_stats[id] = stats;
}

void
printFigures()
{
    banner("Figure 7a — avg whole filters mapped simultaneously "
           "(256 MS)");
    {
        TablePrinter t({"model", "avg filters/round"});
        for (const ModelId id : allModels())
            t.addRow({modelShortName(id),
                      TablePrinter::num(
                          g_stats[id].avg_filters_per_round, 1)});
        t.print();
    }

    banner("Figure 7b — first-layer mapped filter sizes (nnz, capped "
           "at 256)");
    {
        TablePrinter t({"model", "filters", "min", "median", "max",
                        "mean"});
        for (const ModelId id : allModels()) {
            std::vector<index_t> sizes = g_stats[id].first_layer_sizes;
            std::sort(sizes.begin(), sizes.end());
            double mean = 0.0;
            for (const index_t s : sizes)
                mean += static_cast<double>(s);
            mean /= static_cast<double>(sizes.size());
            t.addRow({modelShortName(id),
                      TablePrinter::num(count_t(sizes.size())),
                      TablePrinter::num(count_t(sizes.front())),
                      TablePrinter::num(
                          count_t(sizes[sizes.size() / 2])),
                      TablePrinter::num(count_t(sizes.back())),
                      TablePrinter::num(mean, 1)});
        }
        t.print();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const ModelId id : stonne::allModels()) {
        benchmark::RegisterBenchmark(
            (std::string("fig7/") + modelShortName(id)).c_str(),
            [id](benchmark::State &s) { runConfig(s, id); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFigures();
    return 0;
}
