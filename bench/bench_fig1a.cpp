/**
 * @file
 * Figure 1a: cycle-level STONNE (ST) vs the SCALE-Sim-style analytical
 * model (AM) for an output-stationary systolic array, over the eight
 * representative DNN layers and PE arrays of 16x16, 32x32 and 64x64.
 *
 * Expected shape (paper): the two agree almost exactly for rigid
 * arrays — analytical models are fine until flexibility or irregular
 * computation appears (Figs 1b / 1c).
 */

#include <benchmark/benchmark.h>

#include <map>

#include "analytical/scalesim_model.hpp"
#include "bench_common.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

struct Row {
    cycle_t st = 0;
    cycle_t am = 0;
};

std::map<std::pair<index_t, std::string>, Row> g_rows;

void
runConfig(benchmark::State &state, const Fig1Layer &layer, index_t dim)
{
    Row row;
    for (auto _ : state) {
        Stonne st(HardwareConfig::tpuLike(dim * dim));
        const LayerData data = makeLayerData(layer.spec, 0.0, 42);
        const SimulationResult r = runLayer(st, layer.spec, data);
        row.st = r.cycles;
        row.am = analytical::scaleSimOsCycles(layer.spec, dim, dim);
    }
    state.counters["st_cycles"] = static_cast<double>(row.st);
    state.counters["am_cycles"] = static_cast<double>(row.am);
    g_rows[{dim, layer.tag}] = row;
}

void
printFigure()
{
    for (const index_t dim : {16, 32, 64}) {
        banner("Figure 1a — OS systolic " + std::to_string(dim) + "x" +
               std::to_string(dim) + " (ST vs AM cycles)");
        TablePrinter t({"layer", "ST cycles", "AM cycles", "ST/AM"});
        for (const auto &layer : fig1Layers()) {
            const Row &r = g_rows[{dim, layer.tag}];
            t.addRow({layer.tag, TablePrinter::num(r.st),
                      TablePrinter::num(r.am),
                      TablePrinter::num(static_cast<double>(r.st) /
                                        static_cast<double>(r.am))});
        }
        t.print();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const index_t dim : {16, 32, 64}) {
        for (const auto &layer : stonne::bench::fig1Layers()) {
            benchmark::RegisterBenchmark(
                ("fig1a/" + std::to_string(dim) + "x" +
                 std::to_string(dim) + "/" + layer.tag)
                    .c_str(),
                [layer, dim](benchmark::State &s) {
                    runConfig(s, layer, dim);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    return 0;
}
