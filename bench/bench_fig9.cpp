/**
 * @file
 * Use case 3 (Figures 9a/9b/9c): static filter scheduling (NS, RDM,
 * LFF) on a 256-MS SIGMA-like sparse accelerator.
 *
 * Expected shape (paper): RDM buys nothing; LFF improves runtime ~7 %
 * on average (up to ~11 % for the most sensitive models, ~1 % for
 * BERT) with small energy gains (~4 %); individual Resnets-50 layers
 * split into low/medium/high sensitivity classes.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

const SchedulingPolicy kPolicies[3] = {
    SchedulingPolicy::None, SchedulingPolicy::Random,
    SchedulingPolicy::LargestFirst};

struct ModelRun {
    SimulationResult total;
    std::vector<LayerRunRecord> records;
};

std::map<std::pair<ModelId, SchedulingPolicy>, ModelRun> g_runs;

void
runConfig(benchmark::State &state, ModelId id, SchedulingPolicy policy)
{
    ModelRun run;
    ModelRunOptions opts;
    opts.policy = policy;
    opts.policy_seed = 21;
    for (auto _ : state) {
        ModelRunOutput out =
            runModel(id, HardwareConfig::sigmaLike(256, 128), opts);
        run.total = out.total;
        run.records = std::move(out.records);
    }
    state.counters["cycles"] = static_cast<double>(run.total.cycles);
    state.counters["utilization"] = run.total.ms_utilization;
    g_runs[{id, policy}] = run;
}

void
printFigures()
{
    banner("Figures 9a/9b — normalized runtime and energy vs NS");
    {
        TablePrinter t({"model", "RDM runtime", "LFF runtime",
                        "RDM energy", "LFF energy", "NS util",
                        "LFF util"});
        double sum_lff_rt = 0.0, sum_lff_e = 0.0;
        for (const ModelId id : allModels()) {
            const ModelRun &ns = g_runs[{id, SchedulingPolicy::None}];
            const ModelRun &rdm = g_runs[{id, SchedulingPolicy::Random}];
            const ModelRun &lff =
                g_runs[{id, SchedulingPolicy::LargestFirst}];
            const double rdm_rt = static_cast<double>(rdm.total.cycles) /
                static_cast<double>(ns.total.cycles);
            const double lff_rt = static_cast<double>(lff.total.cycles) /
                static_cast<double>(ns.total.cycles);
            const double rdm_e =
                rdm.total.energy.total() / ns.total.energy.total();
            const double lff_e =
                lff.total.energy.total() / ns.total.energy.total();
            sum_lff_rt += lff_rt;
            sum_lff_e += lff_e;
            t.addRow({modelShortName(id), TablePrinter::num(rdm_rt),
                      TablePrinter::num(lff_rt),
                      TablePrinter::num(rdm_e),
                      TablePrinter::num(lff_e),
                      TablePrinter::num(ns.total.ms_utilization, 3),
                      TablePrinter::num(lff.total.ms_utilization, 3)});
        }
        t.addRow({"avg", "", TablePrinter::num(sum_lff_rt / 7.0), "",
                  TablePrinter::num(sum_lff_e / 7.0), "", ""});
        t.print();
        std::printf("\npaper: LFF ~0.93x runtime and ~0.96x energy on "
                    "average; RDM ~1.0x\n");
    }

    banner("Figure 9c — per-layer LFF sensitivity, 14 Resnets-50 "
           "layers");
    {
        const ModelRun &ns =
            g_runs[{ModelId::ResNet50, SchedulingPolicy::None}];
        const ModelRun &lff =
            g_runs[{ModelId::ResNet50, SchedulingPolicy::LargestFirst}];

        struct LayerGain {
            std::string name;
            double runtime;
            double energy;
        };
        std::vector<LayerGain> gains;
        for (std::size_t i = 0; i < ns.records.size() &&
             i < lff.records.size(); ++i) {
            const LayerRunRecord &a = ns.records[i];
            const LayerRunRecord &b = lff.records[i];
            if (!a.offloaded || a.op != OpType::Conv2d ||
                a.sim.cycles == 0)
                continue;
            gains.push_back({a.name,
                             static_cast<double>(b.sim.cycles) /
                                 static_cast<double>(a.sim.cycles),
                             b.sim.energy.total() /
                                 a.sim.energy.total()});
        }
        // Representative selection: sort by runtime gain and show the
        // extremes and the middle, as the paper's sensitivity classes.
        std::sort(gains.begin(), gains.end(),
                  [](const LayerGain &a, const LayerGain &b) {
                      return a.runtime < b.runtime;
                  });
        std::vector<LayerGain> chosen;
        const std::size_t n = gains.size();
        for (std::size_t i = 0; i < 5 && i < n; ++i)
            chosen.push_back(gains[i]); // high-sensitivity
        for (std::size_t i = 0; i < 4 && n > 9; ++i)
            chosen.push_back(gains[n / 2 - 2 + i]); // medium
        for (std::size_t i = 0; i < 5 && i < n; ++i)
            chosen.push_back(gains[n - 5 + i]); // low

        TablePrinter t({"layer", "LFF runtime", "LFF energy", "class"});
        for (std::size_t i = 0; i < chosen.size(); ++i) {
            const char *cls = i < 5 ? "high" : i < 9 ? "medium" : "low";
            t.addRow({chosen[i].name,
                      TablePrinter::num(chosen[i].runtime),
                      TablePrinter::num(chosen[i].energy), cls});
        }
        t.print();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const ModelId id : stonne::allModels()) {
        for (const SchedulingPolicy policy : kPolicies) {
            benchmark::RegisterBenchmark(
                (std::string("fig9/") + modelShortName(id) + "/" +
                 schedulingPolicyName(policy))
                    .c_str(),
                [id, policy](benchmark::State &s) {
                    runConfig(s, id, policy);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFigures();
    return 0;
}
