#include "bench_common.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hpp"
#include "tensor/prune.hpp"

namespace stonne::bench {

std::vector<Fig1Layer>
fig1Layers()
{
    std::vector<Fig1Layer> layers;

    auto conv = [](index_t r, index_t c, index_t k, index_t xy,
                   index_t g, index_t pad) {
        Conv2dShape s;
        s.R = r;
        s.S = r;
        s.C = c;
        s.K = k;
        s.G = g;
        s.X = xy;
        s.Y = xy;
        s.padding = pad;
        return s;
    };

    // Squeezenet: squeeze (1x1 bottleneck) and expand (3x3) convs.
    layers.push_back({"S-SC", LayerSpec::convolution(
        "squeeze", conv(1, 64, 16, 13, 1, 0))});
    layers.push_back({"S-EC", LayerSpec::convolution(
        "expand", conv(3, 16, 64, 13, 1, 1))});
    // Mobilenets: factorized (depthwise) conv and the classifier.
    layers.push_back({"M-FC", LayerSpec::convolution(
        "factorized", conv(3, 128, 128, 14, 128, 1))});
    layers.push_back({"M-L", LayerSpec::linear("m_fc", 1, 512, 100)});
    // Resnets-50: regular 3x3 conv and the classifier.
    layers.push_back({"R-C", LayerSpec::convolution(
        "res_conv", conv(3, 64, 64, 14, 1, 1))});
    layers.push_back({"R-L", LayerSpec::linear("r_fc", 1, 1024, 100)});
    // BERT: a transformer score GEMM and a feed-forward linear.
    layers.push_back({"B-TR", LayerSpec::gemmLayer("attn", 48, 48, 128)});
    layers.push_back({"B-L", LayerSpec::linear("b_ff", 48, 128, 256)});
    return layers;
}

LayerData
makeLayerData(const LayerSpec &layer, double sparsity, std::uint64_t seed,
              double jitter)
{
    Rng rng(seed);
    LayerData d;
    switch (layer.kind) {
      case LayerKind::Convolution: {
        const Conv2dShape &c = layer.conv;
        d.input = Tensor({c.N, c.C, c.X, c.Y});
        d.weights = Tensor({c.K, c.cPerGroup(), c.R, c.S});
        d.bias = Tensor({c.K});
        break;
      }
      case LayerKind::Linear: {
        const GemmDims g = layer.gemm;
        d.input = Tensor({g.n, g.k});
        d.weights = Tensor({g.m, g.k});
        d.bias = Tensor({g.m});
        break;
      }
      case LayerKind::Gemm:
      case LayerKind::SparseGemm: {
        const GemmDims g = layer.gemm;
        d.input = Tensor({g.k, g.n});   // B operand
        d.weights = Tensor({g.m, g.k}); // A operand
        break;
      }
      case LayerKind::MaxPool: {
        const Conv2dShape &c = layer.conv;
        d.input = Tensor({c.N, c.C, c.X, c.Y});
        break;
      }
    }
    d.input.fillUniform(rng, 0.0f, 1.0f);
    if (!d.weights.empty()) {
        d.weights.fillNormal(rng, 0.0f, 0.2f);
        if (sparsity > 0.0)
            pruneFiltersWithJitter(d.weights, sparsity, jitter, rng);
    }
    if (!d.bias.empty())
        d.bias.fillUniform(rng, -0.05f, 0.05f);
    return d;
}

SimulationResult
runLayer(Stonne &st, const LayerSpec &layer, const LayerData &data)
{
    switch (layer.kind) {
      case LayerKind::Convolution:
        st.configureConv(layer);
        break;
      case LayerKind::Linear:
        st.configureLinear(layer);
        break;
      case LayerKind::Gemm:
        st.configureDmm(layer);
        break;
      case LayerKind::SparseGemm:
        st.configureSpmm(layer);
        break;
      case LayerKind::MaxPool:
        st.configureMaxPool(layer);
        break;
    }
    st.configureData(data.input, data.weights, data.bias);
    return st.runOperation();
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != headers_.size(),
            "table row width mismatch");
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto &row : rows_)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto line = [&](const std::vector<std::string> &cells) {
        std::printf("| ");
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::printf("%-*s | ", static_cast<int>(widths[c]),
                        cells[c].c_str());
        std::printf("\n");
    };
    line(headers_);
    std::size_t total = 1;
    for (const auto w : widths)
        total += w + 3;
    std::string sep(total, '-');
    std::printf("%s\n", sep.c_str());
    for (const auto &row : rows_)
        line(row);
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::num(count_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace stonne::bench
