#include "bench_common.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hpp"

namespace stonne::bench {

ModelRunOutput
runModel(ModelId id, const HardwareConfig &cfg, const ModelRunOptions &opts)
{
    const DnnModel model = buildModel(id, ModelScale::Bench);
    const Tensor input = makeModelInput(id, ModelScale::Bench);
    ModelRunner runner(model, cfg);
    if (opts.policy)
        runner.setSchedulingPolicy(*opts.policy, opts.policy_seed);
    if (opts.snapea_early_exit)
        runner.setSnapeaEarlyExit(*opts.snapea_early_exit);
    runner.run(input);
    ModelRunOutput out;
    out.total = runner.total();
    out.records = runner.records();
    return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != headers_.size(),
            "table row width mismatch");
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto &row : rows_)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto line = [&](const std::vector<std::string> &cells) {
        std::printf("| ");
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::printf("%-*s | ", static_cast<int>(widths[c]),
                        cells[c].c_str());
        std::printf("\n");
    };
    line(headers_);
    std::size_t total = 1;
    for (const auto w : widths)
        total += w + 3;
    std::string sep(total, '-');
    std::printf("%s\n", sep.c_str());
    for (const auto &row : rows_)
        line(row);
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::num(count_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace stonne::bench
