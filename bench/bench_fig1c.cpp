/**
 * @file
 * Figure 1c: cycle-level STONNE vs SIGMA's analytical model for a
 * sparse flexible accelerator at full bandwidth, sweeping the weight
 * sparsity ratio from 0 % to 90 %.
 *
 * Expected shape (paper): perfect match at 0 % sparsity, diverging as
 * sparsity grows (up to 92 % at 90 %) because the actual distribution
 * of zeros — which sets the dynamic cluster sizes — cannot be captured
 * by an average-based formula.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "analytical/sigma_model.hpp"
#include "bench_common.hpp"
#include "tensor/sparse.hpp"

namespace {

using namespace stonne;
using namespace stonne::bench;

constexpr index_t kMs = 128;

struct Row {
    cycle_t st = 0;
    cycle_t am = 0;
};

std::map<std::pair<int, std::string>, Row> g_rows;

void
runConfig(benchmark::State &state, const Fig1Layer &layer, int sparsity_pct)
{
    Row row;
    for (auto _ : state) {
        const HardwareConfig cfg = HardwareConfig::sigmaLike(kMs, kMs);
        Stonne st(cfg);
        const double sparsity = sparsity_pct / 100.0;
        // Strong per-filter density spread, as in real pruned models.
        const LayerData data =
            makeLayerData(layer.spec, sparsity, 42, 0.3);
        const SimulationResult r = runLayer(st, layer.spec, data);
        row.st = r.cycles;
        // The analytical model only knows the *nominal* pruning ratio —
        // it cannot see how the zeros actually distribute across
        // filters, which is exactly why the paper argues full-model
        // evaluation with real weight values is needed.
        // Grouped convolutions lower to one block-diagonal SpMM: M is
        // the total filter count, K spans all groups, and each row
        // holds one group's window of non-zeros.
        const GemmDims g = layer.spec.gemmView();
        const index_t groups = layer.spec.kind == LayerKind::Convolution
            ? layer.spec.conv.G : 1;
        const index_t m_total = g.m * groups;
        const auto nominal_nnz = std::max<index_t>(
            1, static_cast<index_t>(static_cast<double>(m_total * g.k) *
                                    (1.0 - sparsity)));
        row.am = analytical::sigmaCycles(m_total, g.n, g.k * groups,
                                         nominal_nnz, cfg);
    }
    state.counters["st_cycles"] = static_cast<double>(row.st);
    state.counters["am_cycles"] = static_cast<double>(row.am);
    g_rows[{sparsity_pct, layer.tag}] = row;
}

void
printFigure()
{
    for (const int sp : {0, 30, 60, 90}) {
        banner("Figure 1c — SIGMA-like 128 MS, full bandwidth, " +
               std::to_string(sp) + " % weight sparsity (ST vs AM)");
        TablePrinter t({"layer", "ST cycles", "AM cycles", "ST/AM"});
        double sum_ratio = 0.0;
        for (const auto &layer : fig1Layers()) {
            const Row &r = g_rows[{sp, layer.tag}];
            const double ratio = static_cast<double>(r.st) /
                static_cast<double>(r.am);
            sum_ratio += ratio;
            t.addRow({layer.tag, TablePrinter::num(r.st),
                      TablePrinter::num(r.am),
                      TablePrinter::num(ratio)});
        }
        t.addRow({"avg", "", "",
                  TablePrinter::num(sum_ratio /
                                    static_cast<double>(
                                        fig1Layers().size()))});
        t.print();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const int sp : {0, 30, 60, 90}) {
        for (const auto &layer : stonne::bench::fig1Layers()) {
            benchmark::RegisterBenchmark(
                ("fig1c/sparsity" + std::to_string(sp) + "/" +
                 layer.tag)
                    .c_str(),
                [layer, sp](benchmark::State &s) {
                    runConfig(s, layer, sp);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    return 0;
}
