/**
 * @file
 * Tests for the hardware x mapping co-search (src/explore): Pareto
 * dominance semantics, the explore_axes grammar and its file:line
 * diagnostics, design-space enumeration, the two-fidelity explorer's
 * acceptance claims (deterministic frontier, every frontier cycle
 * count from real simulation, warm cache answers with zero
 * simulations, frontier config texts directly re-runnable) and the
 * service's explore request type.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/logging.hpp"
#include "engine/workload.hpp"
#include "explore/axes.hpp"
#include "explore/design_space.hpp"
#include "explore/explorer.hpp"
#include "explore/pareto.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"

namespace stonne {
namespace {

using explore::AxisSpec;
using explore::DesignPoint;
using explore::DesignSpace;
using explore::dominates;
using explore::ExploreOptions;
using explore::Explorer;
using explore::ExploreReport;
using explore::Objectives;
using explore::paretoFront;
using explore::parseAxesSpec;

/** Self-deleting cache file (covers the .tmp sibling too). */
struct TempFile {
    std::string path;

    explicit TempFile(std::string p) : path(std::move(p))
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::filesystem::remove(path + ".tmp", ec);
    }

    ~TempFile()
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::filesystem::remove(path + ".tmp", ec);
    }
};

/** what() of the FatalError thrown by fn, "" if it does not throw. */
template <typename Fn>
std::string
fatalMessage(Fn fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

// ---------------------------------------------------------------- Pareto

TEST(Pareto, DominanceIsStrict)
{
    EXPECT_TRUE(dominates({1, 1, 1}, {2, 2, 2}));
    EXPECT_TRUE(dominates({1, 2, 2}, {2, 2, 2}));
    EXPECT_FALSE(dominates({2, 2, 2}, {1, 1, 1}));
    // Equal points do not dominate each other (in either direction).
    EXPECT_FALSE(dominates({3, 3, 3}, {3, 3, 3}));
    // Trade-offs dominate in neither direction.
    EXPECT_FALSE(dominates({1, 5, 1}, {2, 2, 2}));
    EXPECT_FALSE(dominates({2, 2, 2}, {1, 5, 1}));
}

TEST(Pareto, FrontKeepsOnlyNonDominated)
{
    const std::vector<Objectives> pts = {
        {10, 10, 10}, // dominated by everything below
        {1, 9, 9},    // frontier (best cycles)
        {9, 1, 9},    // frontier (best energy)
        {9, 9, 1},    // frontier (best area)
        {2, 9, 9},    // dominated by {1,9,9}
    };
    EXPECT_EQ(paretoFront(pts), (std::vector<std::size_t>{1, 2, 3}));
}

TEST(Pareto, TiesSurviveDuplicatesCollapse)
{
    // Two distinct trade-off points tied on one objective both stay;
    // an exact duplicate collapses to its first occurrence.
    const std::vector<Objectives> pts = {
        {1, 5, 5},
        {5, 1, 5},
        {1, 5, 5}, // duplicate of index 0
    };
    EXPECT_EQ(paretoFront(pts), (std::vector<std::size_t>{0, 1}));
}

TEST(Pareto, SingleObjectiveCollapse)
{
    // Equal on two objectives: the frontier degenerates to the single
    // minimum of the third, exactly like a one-objective search.
    const std::vector<Objectives> pts = {
        {4, 7, 7}, {2, 7, 7}, {9, 7, 7}, {3, 7, 7}};
    EXPECT_EQ(paretoFront(pts), (std::vector<std::size_t>{1}));
}

TEST(Pareto, EmptyAndSingleton)
{
    EXPECT_TRUE(paretoFront({}).empty());
    EXPECT_EQ(paretoFront({{1, 2, 3}}), (std::vector<std::size_t>{0}));
}

TEST(Pareto, FrontIsSortedByCyclesThenEnergy)
{
    const std::vector<Objectives> pts = {
        {9, 1, 5}, {1, 9, 5}, {5, 5, 1}};
    EXPECT_EQ(paretoFront(pts), (std::vector<std::size_t>{1, 2, 0}));
}

// ------------------------------------------------------------------ axes

TEST(ExploreAxes, ParsesNamesAndRanges)
{
    const std::vector<AxisSpec> axes =
        parseAxesSpec("ms_size, dn_bandwidth=16:64 ,fabric");
    ASSERT_EQ(axes.size(), 3u);
    EXPECT_EQ(axes[0].name, "ms_size");
    EXPECT_FALSE(axes[0].has_range);
    EXPECT_EQ(axes[1].name, "dn_bandwidth");
    EXPECT_TRUE(axes[1].has_range);
    EXPECT_EQ(axes[1].lo, 16);
    EXPECT_EQ(axes[1].hi, 64);
    EXPECT_EQ(axes[2].name, "fabric");
}

TEST(ExploreAxes, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseAxesSpec(""), FatalError);
    EXPECT_THROW(parseAxesSpec("ms_size,,fabric"), FatalError);
    EXPECT_THROW(parseAxesSpec("warp_drive"), FatalError);
    EXPECT_THROW(parseAxesSpec("ms_size,ms_size"), FatalError);
    EXPECT_THROW(parseAxesSpec("fabric=2:4"), FatalError);
    EXPECT_THROW(parseAxesSpec("ms_size=64"), FatalError);      // no ':'
    EXPECT_THROW(parseAxesSpec("ms_size=a:64"), FatalError);    // NaN
    EXPECT_THROW(parseAxesSpec("ms_size=3:64"), FatalError);    // not pow2
    EXPECT_THROW(parseAxesSpec("ms_size=64:16"), FatalError);   // lo > hi
}

TEST(ExploreAxes, DiagnosticsCarryOriginAndLine)
{
    const std::string msg = fatalMessage(
        [] { parseAxesSpec("ms_size=64:16", "hw.cfg", 12); });
    EXPECT_NE(msg.find("hw.cfg:12:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lo > hi"), std::string::npos) << msg;

    // lineno 0 is the programmatic-config form: origin only.
    const std::string plain =
        fatalMessage([] { parseAxesSpec("bogus", "config 'X'", 0); });
    EXPECT_NE(plain.find("config 'X': "), std::string::npos) << plain;
    EXPECT_NE(plain.find("unknown axis 'bogus'"), std::string::npos)
        << plain;
}

// ---------------------------------------------------------- config keys

TEST(ExploreConfig, KeysParseAndRoundTrip)
{
    HardwareConfig cfg = HardwareConfig::parse(
        "explore = ON\n"
        "explore_axes = ms_size,fabric\n"
        "explore_top_k = 3\n",
        "<test>");
    EXPECT_TRUE(cfg.explore);
    EXPECT_EQ(cfg.explore_axes, "ms_size,fabric");
    EXPECT_EQ(cfg.explore_top_k, 3);

    // The emitted text re-parses to the same knobs.
    const HardwareConfig back =
        HardwareConfig::parse(cfg.toConfigText(), "<roundtrip>");
    EXPECT_TRUE(back.explore);
    EXPECT_EQ(back.explore_axes, cfg.explore_axes);
    EXPECT_EQ(back.explore_top_k, cfg.explore_top_k);
}

TEST(ExploreConfig, BadAxesKeyFailsAtItsFileLine)
{
    const std::string msg = fatalMessage([] {
        HardwareConfig::parse("ms_size = 64\n"
                              "explore_axes = nonsense\n",
                              "bad.cfg");
    });
    EXPECT_NE(msg.find("bad.cfg:2"), std::string::npos) << msg;
}

TEST(ExploreConfig, CrossKeyValidation)
{
    HardwareConfig sparse = HardwareConfig::sigmaLike(64, 16);
    sparse.explore = true;
    EXPECT_THROW(sparse.validate(), FatalError);

    HardwareConfig multi = HardwareConfig::maeriLike(64, 16);
    multi.explore = true;
    multi.cores = 2;
    multi.dram_channels = 1;
    EXPECT_THROW(multi.validate(), FatalError);

    HardwareConfig bad_k = HardwareConfig::maeriLike(64, 16);
    bad_k.explore_top_k = 0;
    EXPECT_THROW(bad_k.validate(), FatalError);

    HardwareConfig ok = HardwareConfig::maeriLike(64, 16);
    ok.explore = true;
    EXPECT_NO_THROW(ok.validate());
}

TEST(ExploreConfig, KnobsAreNormalizedOutOfStructuralText)
{
    // The explore knobs are pure search policy: turning them on must
    // not split result-cache keys or checkpoint config matches.
    const HardwareConfig plain = HardwareConfig::maeriLike(64, 16);
    HardwareConfig searched = plain;
    searched.explore = true;
    searched.explore_axes = "ms_size";
    searched.explore_top_k = 11;
    EXPECT_EQ(plain.structuralText(), searched.structuralText());
    // But they do show up in the full config text (divergence-only).
    EXPECT_EQ(plain.toConfigText().find("explore"), std::string::npos);
    EXPECT_NE(searched.toConfigText().find("explore = ON"),
              std::string::npos);
}

// ----------------------------------------------------------- DesignSpace

TEST(DesignSpaceTest, SingleAxisSweepsAroundTheBase)
{
    const HardwareConfig base = HardwareConfig::maeriLike(16, 8);
    const std::vector<DesignPoint> pts =
        DesignSpace::enumerate(base, "dn_bandwidth");
    ASSERT_EQ(pts.size(), 3u); // 2, 4, 8
    EXPECT_EQ(pts[0].cfg.dn_bandwidth, 2);
    EXPECT_EQ(pts[1].cfg.dn_bandwidth, 4);
    EXPECT_EQ(pts[2].cfg.dn_bandwidth, 8);
    for (const DesignPoint &p : pts) {
        EXPECT_EQ(p.cfg.ms_size, base.ms_size);     // unlisted: pinned
        EXPECT_EQ(p.cfg.rn_bandwidth, base.rn_bandwidth);
        EXPECT_FALSE(p.cfg.explore); // variants are plain instances
        EXPECT_FALSE(p.cfg.autotune);
        EXPECT_NO_THROW(p.cfg.validate());
    }
}

TEST(DesignSpaceTest, BandwidthNeverExceedsMsSize)
{
    const HardwareConfig base = HardwareConfig::maeriLike(16, 16);
    const std::vector<DesignPoint> pts =
        DesignSpace::enumerate(base, "ms_size=16:32,dn_bandwidth=16:32");
    // ms=16 admits only dn=16; ms=32 admits dn=16 and dn=32.
    ASSERT_EQ(pts.size(), 3u);
    for (const DesignPoint &p : pts)
        EXPECT_LE(p.cfg.dn_bandwidth, p.cfg.ms_size);
}

TEST(DesignSpaceTest, FabricAxisDerivesTheSparseSubstrate)
{
    const HardwareConfig base = HardwareConfig::maeriLike(16, 8);
    const std::vector<DesignPoint> pts =
        DesignSpace::enumerate(base, "fabric");
    ASSERT_EQ(pts.size(), 2u);
    // Dense first, structurally the base.
    EXPECT_EQ(pts[0].cfg.controller_type, ControllerType::Dense);
    EXPECT_EQ(pts[0].cfg.dn_type, DnType::Tree);
    // The sparse variant swaps the whole substrate, SIGMA-style.
    EXPECT_EQ(pts[1].cfg.controller_type, ControllerType::Sparse);
    EXPECT_EQ(pts[1].cfg.dn_type, DnType::Benes);
    EXPECT_EQ(pts[1].cfg.mn_type, MnType::Disabled);
    EXPECT_EQ(pts[1].cfg.rn_type, RnType::Fan);
    EXPECT_NE(pts[0].label, pts[1].label);
}

TEST(DesignSpaceTest, EnumerationIsDeterministic)
{
    const HardwareConfig base = HardwareConfig::maeriLike(32, 16);
    const std::string axes = "dn_bandwidth,rn_bandwidth,fabric";
    const std::vector<DesignPoint> a = DesignSpace::enumerate(base, axes);
    const std::vector<DesignPoint> b = DesignSpace::enumerate(base, axes);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label, b[i].label);
        EXPECT_EQ(a[i].cfg.toConfigText(), b[i].cfg.toConfigText());
    }
}

// -------------------------------------------------------------- Explorer

ExploreOptions
smallOptions(std::string cache_file = "")
{
    ExploreOptions o;
    o.top_k = 2;
    o.threads = 1;
    o.axes = "dn_bandwidth,rn_bandwidth";
    o.seed = 7;
    o.cache_file = std::move(cache_file);
    return o;
}

TEST(ExplorerTest, FrontierIsDeterministicAndNonDominated)
{
    const HardwareConfig base = HardwareConfig::maeriLike(16, 8);
    const LayerSpec layer = LayerSpec::gemmLayer("g", 8, 8, 8);

    Explorer e1(base, smallOptions());
    const ExploreReport r1 = e1.exploreLayer(layer);
    Explorer e2(base, smallOptions());
    const ExploreReport r2 = e2.exploreLayer(layer);

    ASSERT_FALSE(r1.frontier.empty());
    ASSERT_EQ(r1.frontier.size(), r2.frontier.size());
    for (std::size_t i = 0; i < r1.frontier.size(); ++i) {
        const explore::ExplorePoint &a = r1.points[r1.frontier[i]];
        const explore::ExplorePoint &b = r2.points[r2.frontier[i]];
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.simulated_cycles, b.simulated_cycles);
        EXPECT_EQ(a.energy_uj, b.energy_uj);
        EXPECT_EQ(a.area_um2, b.area_um2);
    }

    // Mutually non-dominated, and every cycle count came from a real
    // simulation (a cold in-memory cache cannot serve hits).
    EXPECT_EQ(r1.cache_hits, 0u);
    EXPECT_EQ(r1.simulations_run, r1.points.size());
    for (const std::size_t i : r1.frontier) {
        EXPECT_GT(r1.points[i].simulated_cycles, 0u);
        for (const std::size_t j : r1.frontier) {
            if (i == j)
                continue;
            const explore::ExplorePoint &a = r1.points[i];
            const explore::ExplorePoint &b = r1.points[j];
            EXPECT_FALSE(dominates(
                {static_cast<double>(a.simulated_cycles), a.energy_uj,
                 a.area_um2},
                {static_cast<double>(b.simulated_cycles), b.energy_uj,
                 b.area_um2}))
                << a.label << " dominates " << b.label;
        }
    }
}

TEST(ExplorerTest, WarmCacheAnswersWithZeroSimulations)
{
    const TempFile cache("test_explore_warm.cache");
    const HardwareConfig base = HardwareConfig::maeriLike(16, 8);
    const LayerSpec layer = LayerSpec::gemmLayer("g", 8, 8, 8);

    Explorer cold(base, smallOptions(cache.path));
    const ExploreReport r1 = cold.exploreLayer(layer);
    EXPECT_GT(cold.totalSimulations(), 0u);

    Explorer warm(base, smallOptions(cache.path));
    const ExploreReport r2 = warm.exploreLayer(layer);
    EXPECT_EQ(warm.totalSimulations(), 0u);
    EXPECT_EQ(r2.simulations_run, 0u);
    EXPECT_EQ(r2.cache_hits, r2.points.size());

    ASSERT_EQ(r1.frontier.size(), r2.frontier.size());
    for (std::size_t i = 0; i < r1.frontier.size(); ++i)
        EXPECT_EQ(r1.points[r1.frontier[i]].label,
                  r2.points[r2.frontier[i]].label);
}

TEST(ExplorerTest, FrontierConfigTextsReRunToTheSameCycles)
{
    const HardwareConfig base = HardwareConfig::maeriLike(16, 8);
    const LayerSpec layer = LayerSpec::gemmLayer("g", 8, 8, 8);
    ExploreOptions opts = smallOptions();
    Explorer explorer(base, opts);
    const ExploreReport rep = explorer.exploreLayer(layer);

    ASSERT_FALSE(rep.frontier.empty());
    const explore::ExplorePoint &p = rep.points[rep.frontier.front()];
    const HardwareConfig cfg =
        HardwareConfig::parse(p.config_text, "<frontier>");
    // A frontier config is a plain runnable instance.
    EXPECT_FALSE(cfg.explore);
    Stonne st(cfg);
    const LayerData data = makeLayerData(layer, opts.sparsity, opts.seed);
    const SimulationResult r = runLayer(st, layer, data, p.tile);
    EXPECT_EQ(r.cycles, p.simulated_cycles);
    EXPECT_DOUBLE_EQ(r.energy.total(), p.energy_uj);
    EXPECT_DOUBLE_EQ(r.area.total(), p.area_um2);
}

TEST(ExplorerTest, FabricAxisPutsSparseVariantsInTheRace)
{
    const HardwareConfig base = HardwareConfig::maeriLike(16, 8);
    const LayerSpec layer = LayerSpec::gemmLayer("g", 8, 8, 8);
    ExploreOptions opts = smallOptions();
    opts.axes = "fabric";
    Explorer explorer(base, opts);
    const ExploreReport rep = explorer.exploreLayer(layer);
    EXPECT_EQ(rep.variants, 2u);
    bool saw_sparse = false;
    for (const explore::ExplorePoint &p : rep.points)
        if (p.label.find("fabric=sparse") != std::string::npos)
            saw_sparse = true;
    EXPECT_TRUE(saw_sparse);
}

TEST(ExplorerTest, RejectsNonDenseBaseAndWrongLayerKinds)
{
    EXPECT_THROW(
        Explorer(HardwareConfig::sigmaLike(16, 8), smallOptions())
            .exploreLayer(LayerSpec::gemmLayer("g", 8, 8, 8)),
        FatalError);
    Explorer e(HardwareConfig::maeriLike(16, 8), smallOptions());
    EXPECT_THROW(e.exploreLayer(LayerSpec::sparseGemm("s", 8, 8, 8)),
                 FatalError);
}

// --------------------------------------------------------------- service

std::vector<JsonValue>
parseLines(const std::string &text)
{
    std::vector<JsonValue> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            out.push_back(JsonValue::parse(line));
    return out;
}

TEST(ExploreProtocol, ParsesAndRejectsStrictly)
{
    const service::JobRequest req = service::parseRequest(
        R"({"type":"explore","id":"e1","layer":)"
        R"({"kind":"gemm","M":8,"N":8,"K":8},)"
        R"("top_k":3,"axes":"dn_bandwidth"})");
    EXPECT_EQ(req.type, service::RequestType::Explore);
    ASSERT_TRUE(req.top_k.has_value());
    EXPECT_EQ(*req.top_k, 3);
    EXPECT_EQ(req.axes, "dn_bandwidth");

    // axes is explore-only; spmm layers have no tile space to cross.
    EXPECT_THROW(service::parseRequest(
                     R"({"type":"tune","id":"t","layer":)"
                     R"({"kind":"gemm","M":8,"N":8,"K":8},"axes":"x"})"),
                 service::ProtocolError);
    EXPECT_THROW(service::parseRequest(
                     R"({"type":"explore","id":"e","layer":)"
                     R"({"kind":"spmm","M":8,"N":8,"K":8}})"),
                 service::ProtocolError);
}

TEST(ExploreService, ServesExploreJobsThroughTheEnvelope)
{
    std::ostringstream out;
    service::ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(16, 8);
    opts.base.service_workers = 1;
    opts.backoff_base = std::chrono::milliseconds(0);
    service::ServiceDaemon daemon(opts, out);

    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"explore","id":"e1","layer":)"
        R"({"kind":"gemm","M":8,"N":8,"K":8},)"
        R"("top_k":2,"axes":"dn_bandwidth,rn_bandwidth","seed":7})"));
    daemon.drain();
    // A warm repeat under a fresh id is served from the shared cache.
    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"explore","id":"e2","layer":)"
        R"({"kind":"gemm","M":8,"N":8,"K":8},)"
        R"("top_k":2,"axes":"dn_bandwidth,rn_bandwidth","seed":7})"));
    daemon.finish();

    const JsonValue *first = nullptr;
    const JsonValue *second = nullptr;
    const std::vector<JsonValue> responses = parseLines(out.str());
    std::vector<JsonValue> results;
    for (const JsonValue &r : responses)
        if (r.find("type")->asString() == "result")
            results.push_back(r);
    ASSERT_EQ(results.size(), 2u);
    first = &results[0];
    second = &results[1];

    EXPECT_EQ(first->find("status")->asString(), "done");
    const JsonValue &s1 = *first->find("summary");
    EXPECT_GT(s1.find("simulations")->asUint64(), 0u);
    EXPECT_GT(s1.find("frontier_size")->asUint64(), 0u);
    // Every frontier entry carries a runnable config text.
    for (const JsonValue &p : s1.find("frontier")->items())
        EXPECT_NO_THROW(HardwareConfig::parse(
            p.find("config_text")->asString(), "<svc>"));

    EXPECT_EQ(second->find("status")->asString(), "done");
    const JsonValue &s2 = *second->find("summary");
    EXPECT_EQ(s2.find("simulations")->asUint64(), 0u);
    EXPECT_EQ(s2.find("cache_hits")->asUint64(),
              s2.find("candidates")->asUint64());
    EXPECT_EQ(s1.find("frontier_size")->asUint64(),
              s2.find("frontier_size")->asUint64());
}

} // namespace
} // namespace stonne
