/**
 * @file
 * End-to-end integration tests: the Figure 2 walk-through (a model
 * driven layer by layer through the STONNE API with native fallbacks),
 * fully file-driven simulation (hardware .cfg + .model descriptions
 * from disk), multi-operation instances, and cross-cutting invariants.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "engine/output_module.hpp"
#include "engine/stonne_api.hpp"
#include "frontend/model_loader.hpp"
#include "frontend/model_zoo.hpp"
#include "frontend/runner.hpp"
#include "tensor/reference.hpp"

namespace stonne {
namespace {

/**
 * The paper's Figure 2 walk-through: Conv2d -> MaxPool -> Linear ->
 * log_softmax, with the compute-intensive operations offloaded and the
 * softmax run natively, chaining real data through the accelerator.
 */
TEST(Integration, Figure2WalkThrough)
{
    Stonne st(HardwareConfig::maeriLike(128, 64));
    Rng rng(5);

    // nn.Conv2d(3, 8, kernel=3, padding=1) on a 12x12 image.
    Conv2dShape conv;
    conv.R = 3;
    conv.S = 3;
    conv.C = 3;
    conv.K = 8;
    conv.X = 12;
    conv.Y = 12;
    conv.padding = 1;
    Tensor image({1, 3, 12, 12}), w1({8, 3, 3, 3}), b1({8});
    image.fillUniform(rng, 0.0f, 1.0f);
    w1.fillNormal(rng, 0.0f, 0.2f);
    b1.fillUniform(rng, -0.1f, 0.1f);
    st.configureConv(LayerSpec::convolution("conv", conv));
    st.configureData(image, w1, b1);
    const SimulationResult conv_res = st.runOperation();
    const Tensor conv_out = st.output();
    EXPECT_TRUE(conv_out.equals(ref::conv2d(image, w1, b1, conv)));

    // nn.MaxPool(2, 2), also on the accelerator.
    Conv2dShape pool_in;
    pool_in.C = 8;
    pool_in.X = 12;
    pool_in.Y = 12;
    st.configureMaxPool(LayerSpec::maxPool("pool", pool_in, 2, 2));
    st.configureData(conv_out, Tensor());
    st.runOperation();
    const Tensor pool_out = st.output();
    EXPECT_TRUE(pool_out.equals(ref::maxPool2d(conv_out, 2, 2)));

    // nn.Linear(8*6*6 -> 10).
    const Tensor flat = pool_out.reshaped({1, 8 * 6 * 6});
    Tensor w2({10, 8 * 6 * 6}), b2({10});
    w2.fillNormal(rng, 0.0f, 0.1f);
    b2.fillUniform(rng, -0.1f, 0.1f);
    st.configureLinear(LayerSpec::linear("fc", 1, 8 * 6 * 6, 10));
    st.configureData(flat, w2, b2);
    const SimulationResult fc_res = st.runOperation();

    // F.log_softmax runs natively on the "CPU".
    const Tensor scores = ref::logSoftmax(st.output());
    const Tensor expect = ref::logSoftmax(
        ref::linear(flat, w2, b2));
    EXPECT_TRUE(scores.equals(expect));

    // The instance accumulated all three operations.
    EXPECT_GT(st.totalCycles(), conv_res.cycles + fc_res.cycles);
}

TEST(Integration, FullyFileDrivenSimulation)
{
    // Hardware from configs/, model from models/ — no code describes
    // either.
    const DnnModel model = loadModelFromFile("models/fire_mini.model");
    Rng rng(7);
    Tensor input({1, 3, 32, 32});
    input.fillUniform(rng, 0.0f, 1.0f);

    for (const char *cfg_path :
         {"configs/maeri_256.cfg", "configs/sigma_256.cfg",
          "configs/tpu_256.cfg"}) {
        ModelRunner runner(model, HardwareConfig::parseFile(cfg_path));
        const Tensor out = runner.run(input);
        EXPECT_TRUE(out.equals(runner.runNative(input))) << cfg_path;
        EXPECT_GT(runner.total().cycles, 0u) << cfg_path;
    }
}

TEST(Integration, ShippedResnetBlockRunsEverywhere)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    Rng rng(9);
    Tensor input({1, 16, 8, 8});
    input.fillUniform(rng, 0.0f, 1.0f);
    for (const HardwareConfig &cfg :
         {HardwareConfig::maeriLike(64, 32),
          HardwareConfig::sigmaLike(64, 32)}) {
        ModelRunner runner(model, cfg);
        EXPECT_TRUE(runner.run(input).equals(runner.runNative(input)))
            << cfg.name;
    }
}

TEST(Integration, CountersAccumulateMonotonically)
{
    Stonne st(HardwareConfig::sigmaLike(64, 32));
    Rng rng(11);
    Tensor a({8, 16}), b({16, 4});
    a.fillUniform(rng);
    b.fillUniform(rng);

    count_t prev_reads = 0;
    for (int i = 0; i < 3; ++i) {
        st.configureSpmm(LayerSpec::sparseGemm("s", 8, 4, 16));
        st.configureData(b, a);
        st.runOperation();
        const count_t reads = st.stats().value("gb.reads");
        EXPECT_GT(reads, prev_reads);
        prev_reads = reads;
    }
}

TEST(Integration, MoreWorkMoreEnergy)
{
    auto energy_for = [](index_t k) {
        Stonne st(HardwareConfig::maeriLike(64, 32));
        Rng rng(13);
        Tensor a({16, k}), b({k, 16});
        a.fillUniform(rng);
        b.fillUniform(rng);
        st.configureDmm(LayerSpec::gemmLayer("g", 16, 16, k));
        st.configureData(b, a);
        return st.runOperation().energy.total();
    };
    EXPECT_LT(energy_for(16), energy_for(64));
    EXPECT_LT(energy_for(64), energy_for(256));
}

TEST(Integration, JsonSummaryIsSelfConsistent)
{
    Stonne st(HardwareConfig::maeriLike(64, 16));
    Rng rng(15);
    Tensor in({4, 32}), w({8, 32});
    in.fillUniform(rng);
    w.fillUniform(rng);
    st.configureLinear(LayerSpec::linear("fc", 4, 32, 8));
    st.configureData(in, w);
    const SimulationResult r = st.runOperation();

    const std::string json =
        OutputModule::summary(st.config(), r).dump();
    EXPECT_NE(json.find("\"cycles\": " +
                        std::to_string(r.cycles)),
              std::string::npos);
    EXPECT_NE(json.find("\"accelerator\": \"MAERI\""),
              std::string::npos);
}

TEST(Integration, MultiSampleFunctionalValidation)
{
    // Section V's functional validation runs a test set of samples and
    // compares each inference against the native CPU run.
    const DnnModel model =
        buildModel(ModelId::MobileNetV1, ModelScale::Tiny);
    ModelRunner runner(model, HardwareConfig::sigmaLike(64, 32));
    for (int sample = 0; sample < 3; ++sample) {
        const Tensor input = makeModelInput(
            ModelId::MobileNetV1, ModelScale::Tiny,
            100 + static_cast<std::uint64_t>(sample));
        EXPECT_TRUE(runner.run(input).equals(runner.runNative(input)))
            << "sample " << sample;
    }
}

TEST(Integration, WriteReportsEmitsBothArtifacts)
{
    Stonne st(HardwareConfig::maeriLike(64, 16));
    Rng rng(19);
    Tensor in({2, 16}), w({4, 16});
    in.fillUniform(rng);
    w.fillUniform(rng);
    st.configureLinear(LayerSpec::linear("fc", 2, 16, 4));
    st.configureData(in, w);
    st.runOperation();
    st.writeReports("/tmp/stonne_report");

    std::ifstream json("/tmp/stonne_report.json");
    std::string j((std::istreambuf_iterator<char>(json)),
                  std::istreambuf_iterator<char>());
    EXPECT_NE(j.find("\"layer\": \"fc\""), std::string::npos);
    EXPECT_NE(j.find("\"cycles\""), std::string::npos);

    std::ifstream counters("/tmp/stonne_report.counters");
    std::string c((std::istreambuf_iterator<char>(counters)),
                  std::istreambuf_iterator<char>());
    EXPECT_NE(c.find("mn.mult_ops"), std::string::npos);
    EXPECT_NE(c.find("gb.reads"), std::string::npos);
}

// Every composition x dataflow combination stays functionally exact on
// a small end-to-end model.
class CompositionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CompositionSweep, LoadedModelStaysExact)
{
    const int arch = std::get<0>(GetParam());
    const int df = std::get<1>(GetParam());
    HardwareConfig cfg = arch == 0 ? HardwareConfig::maeriLike(64, 16)
                                   : HardwareConfig::sigmaLike(64, 32);
    cfg.dataflow = df == 0 ? Dataflow::OutputStationary
                 : df == 1 ? Dataflow::WeightStationary
                           : Dataflow::InputStationary;
    if (cfg.controller_type == ControllerType::Sparse &&
        cfg.dataflow == Dataflow::InputStationary)
        GTEST_SKIP() << "sparse controller is stationary-weight only";

    const DnnModel model = loadModelFromText(R"(
model sweep
sparsity 0.6
input 4 10 10
conv name=c1 out=8 kernel=3 pad=1
relu save=skip
conv name=c2 out=8 kernel=3 pad=1
add with=skip
relu
gap
flatten
linear name=fc out=5
logsoftmax
)");
    Rng rng(17);
    Tensor input({1, 4, 10, 10});
    input.fillUniform(rng, 0.0f, 1.0f);
    ModelRunner runner(model, cfg);
    EXPECT_TRUE(runner.run(input).equals(runner.runNative(input)));
}

INSTANTIATE_TEST_SUITE_P(
    ArchTimesDataflow, CompositionSweep,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0, 1, 2)),
    [](const auto &info) {
        const char *arch =
            std::get<0>(info.param) == 0 ? "MAERI" : "SIGMA";
        const char *df = std::get<1>(info.param) == 0 ? "OS"
                       : std::get<1>(info.param) == 1 ? "WS" : "IS";
        return std::string(arch) + "_" + df;
    });

} // namespace
} // namespace stonne
