/**
 * @file
 * Checkpoint/restore tests: the archive framing (magic, version, CRC,
 * sections) must reject every corruption mode with a named error, each
 * stateful unit must round-trip through saveState()/loadState(), and —
 * the core invariant — a run checkpointed at cycle N and restored into
 * a fresh instance must complete bit-identically (cycles, activity
 * counters, trace samples, output tensors) to the uninterrupted run, on
 * every shipped config file, in exact and fast-forward modes alike.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "checkpoint/archive.hpp"
#include "checkpoint/checkpoint.hpp"
#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/watchdog.hpp"
#include "engine/stonne_api.hpp"
#include "faults/fault_injector.hpp"
#include "frontend/model_loader.hpp"
#include "frontend/runner.hpp"
#include "mem/fifo.hpp"
#include "tensor/prune.hpp"

namespace stonne {
namespace {

/** Self-deleting snapshot file (covers the .tmp sibling too). */
struct TempFile {
    std::string path;

    explicit TempFile(std::string p) : path(std::move(p))
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::filesystem::remove(path + ".tmp", ec);
    }

    ~TempFile()
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::filesystem::remove(path + ".tmp", ec);
    }
};

std::vector<std::uint8_t>
slurpBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(is)) << path;
    return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(is)),
                                     std::istreambuf_iterator<char>());
}

void
spitBytes(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

std::string
slurpText(const std::string &path)
{
    const std::vector<std::uint8_t> b = slurpBytes(path);
    return std::string(b.begin(), b.end());
}

void
expectThrowsWith(const std::function<void()> &fn, const std::string &sub)
{
    try {
        fn();
        FAIL() << "expected CheckpointError containing '" << sub << "'";
    } catch (const CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find(sub), std::string::npos)
            << e.what();
    }
}

// --- archive framing ---------------------------------------------------

TEST(Archive, RoundTripsEveryPrimitiveThroughAFile)
{
    TempFile f("test_ckpt_archive.ckpt");
    ArchiveWriter w;
    w.beginSection("outer");
    w.putU8(7);
    w.putU32(0xCAFEBABEu);
    w.putU64(0x1122334455667788ull);
    w.putI64(-42);
    w.putBool(true);
    w.putBool(false);
    w.putDouble(3.25);
    w.putFloat(-0.5f);
    w.putString("hello\0world"); // embedded NUL survives
    w.beginSection("inner");
    w.putCounts({1, 2, 3});
    w.putIndices({-1, 0, 9});
    w.putFloats({0.25f, -8.0f});
    w.endSection();
    w.endSection();
    w.writeFile(f.path);

    // The atomic publish leaves no temporary behind.
    EXPECT_TRUE(std::filesystem::exists(f.path));
    EXPECT_FALSE(std::filesystem::exists(f.path + ".tmp"));

    ArchiveReader r(f.path);
    r.enterSection("outer");
    EXPECT_EQ(r.getU8(), 7);
    EXPECT_EQ(r.getU32(), 0xCAFEBABEu);
    EXPECT_EQ(r.getU64(), 0x1122334455667788ull);
    EXPECT_EQ(r.getI64(), -42);
    EXPECT_TRUE(r.getBool());
    EXPECT_FALSE(r.getBool());
    EXPECT_EQ(r.getDouble(), 3.25);
    EXPECT_EQ(r.getFloat(), -0.5f);
    EXPECT_EQ(r.getString(), "hello"); // string literal stops at NUL
    r.enterSection("inner");
    EXPECT_EQ(r.getCounts(), (std::vector<count_t>{1, 2, 3}));
    EXPECT_EQ(r.getIndices(), (std::vector<index_t>{-1, 0, 9}));
    EXPECT_EQ(r.getFloats(), (std::vector<float>{0.25f, -8.0f}));
    r.leaveSection();
    r.leaveSection();
    EXPECT_TRUE(r.atEnd());
}

TEST(Archive, RejectsEveryCorruptionModeByName)
{
    TempFile f("test_ckpt_corrupt.ckpt");
    ArchiveWriter w;
    w.beginSection("s");
    w.putU64(123);
    w.putString("payload");
    w.endSection();
    w.writeFile(f.path);
    const std::vector<std::uint8_t> good = slurpBytes(f.path);
    // Frame layout: magic[8] | u32 version | u64 size | payload | u32 crc.
    ASSERT_GT(good.size(), 24u);

    expectThrowsWith([] { ArchiveReader r("no_such_file.ckpt"); },
                     "cannot open");

    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xFF;
    spitBytes(f.path, bad);
    expectThrowsWith([&] { ArchiveReader r(f.path); }, "bad magic");

    bad = good;
    bad[8] += 1; // version field
    spitBytes(f.path, bad);
    expectThrowsWith([&] { ArchiveReader r(f.path); }, "format version");

    bad = good;
    bad.pop_back(); // truncated
    spitBytes(f.path, bad);
    expectThrowsWith([&] { ArchiveReader r(f.path); },
                     "truncated or padded");

    bad = good;
    bad.push_back(0); // trailing garbage
    spitBytes(f.path, bad);
    expectThrowsWith([&] { ArchiveReader r(f.path); },
                     "truncated or padded");

    bad = good;
    bad[21] ^= 0x01; // a payload byte
    spitBytes(f.path, bad);
    expectThrowsWith([&] { ArchiveReader r(f.path); }, "CRC mismatch");

    spitBytes(f.path, {'S', 'T'}); // smaller than any frame
    expectThrowsWith([&] { ArchiveReader r(f.path); },
                     "smaller than the minimal frame");
}

TEST(Archive, EnforcesSectionDiscipline)
{
    ArchiveWriter w;
    w.beginSection("alpha");
    w.putU64(1);
    w.putU64(2);
    w.endSection();
    EXPECT_THROW(w.endSection(), CheckpointError);

    ArchiveReader wrong(w.payload(), "<mem>");
    expectThrowsWith([&] { wrong.enterSection("beta"); },
                     "expected section 'beta', found 'alpha'");

    ArchiveReader under(w.payload(), "<mem>");
    under.enterSection("alpha");
    under.getU64(); // one of two values consumed
    expectThrowsWith([&] { under.leaveSection(); }, "bytes unread");

    ArchiveReader past(w.payload(), "<mem>");
    past.enterSection("alpha");
    past.getU64();
    past.getU64();
    expectThrowsWith([&] { past.getU64(); }, "payload ends mid-");

    // An unclosed section must never publish a file.
    TempFile f("test_ckpt_unclosed.ckpt");
    ArchiveWriter open;
    open.beginSection("dangling");
    expectThrowsWith([&] { open.writeFile(f.path); }, "unclosed section");
    EXPECT_FALSE(std::filesystem::exists(f.path));
    EXPECT_FALSE(std::filesystem::exists(f.path + ".tmp"));
}

TEST(Archive, AbandonSectionSkipsDamageAndKeepsTheRestReadable)
{
    // A payload of three sections, the middle one nested two deep —
    // the shape a multi-core snapshot's per-core engine blocks have.
    ArchiveWriter w;
    w.beginSection("head");
    w.putU64(7);
    w.endSection();
    w.beginSection("sick");
    w.putU64(11);
    w.beginSection("inner");
    w.putString("payload");
    w.endSection();
    w.endSection();
    w.beginSection("tail");
    w.putU64(9);
    w.endSection();

    // A reader that gave up mid-way through the nested section (the
    // restore-fallback path) unwinds to the recorded depth and finds
    // the following section exactly where the framing promised it.
    ArchiveReader r(w.payload(), "<mem>");
    r.enterSection("head");
    r.getU64();
    r.leaveSection();
    r.enterSection("sick");
    const std::size_t depth = r.sectionDepth();
    EXPECT_EQ(depth, 1u);
    r.getU64();
    r.enterSection("inner"); // damage discovered somewhere below here
    EXPECT_EQ(r.sectionDepth(), 2u);
    while (r.sectionDepth() >= depth)
        r.abandonSection();
    EXPECT_EQ(r.sectionDepth(), 0u);
    r.enterSection("tail");
    EXPECT_EQ(r.getU64(), 9u);
    r.leaveSection();

    // Unlike leaveSection, abandoning never complains about unread
    // bytes — but with nothing open it is still a framing error.
    ArchiveReader empty(w.payload(), "<mem>");
    expectThrowsWith([&] { empty.abandonSection(); },
                     "abandonSection() with no open section");
}

// --- per-unit state round trips ----------------------------------------

TEST(UnitState, StatsRegistryRestoresValuesAndOrder)
{
    StatsRegistry a;
    a.counter("gb.reads", StatGroup::GlobalBuffer).value = 11;
    a.counter("mn.mult_ops", StatGroup::MultiplierNetwork).value = 22;
    a.counter("occ.dn", StatGroup::DistributionNetwork,
              StatKind::Occupancy)
        .value = 33;
    ArchiveWriter w;
    a.saveState(w);

    // A fresh registry re-registers everything in archive order.
    StatsRegistry b;
    ArchiveReader r1(w.payload(), "<mem>");
    b.loadState(r1);
    ASSERT_EQ(b.counters().size(), 3u);
    EXPECT_EQ(b.counters()[0].name, "gb.reads");
    EXPECT_EQ(b.counters()[0].value, 11u);
    EXPECT_EQ(b.counters()[2].kind, StatKind::Occupancy);
    EXPECT_EQ(b.value("mn.mult_ops"), 22u);

    // A registry whose registration order diverged must refuse.
    StatsRegistry c;
    c.counter("mn.mult_ops", StatGroup::MultiplierNetwork);
    ArchiveReader r2(w.payload(), "<mem>");
    expectThrowsWith([&] { c.loadState(r2); },
                     "the registration orders diverged");
}

TEST(UnitState, WatchdogRestoresTheStallWindowButNotTheLimit)
{
    Watchdog a(100);
    a.tick(5);
    a.tick(0);
    a.tick(0);
    ArchiveWriter w;
    a.saveState(w);

    // The configured limit wins over the snapshot's: a degraded retry
    // restores the same window under a 4x budget and keeps running.
    Watchdog b(400);
    ArchiveReader r(w.payload(), "<mem>");
    b.loadState(r);
    EXPECT_EQ(b.cyclesObserved(), 3u);
    EXPECT_EQ(b.stallCycles(), 2u);
}

TEST(UnitState, FifoRestoresElementsCountersAndOccupancy)
{
    Fifo<float> a(8, "unit_fifo");
    a.push(1.5f);
    a.push(-2.0f);
    a.push(3.0f);
    a.pop();
    ArchiveWriter w;
    a.saveState(w);

    Fifo<float> b(8, "unit_fifo");
    ArchiveReader r1(w.payload(), "<mem>");
    b.loadState(r1);
    EXPECT_EQ(b.size(), 2);
    EXPECT_EQ(b.pushes(), 3u);
    EXPECT_EQ(b.pops(), 1u);
    EXPECT_EQ(b.highWater(), 3);
    EXPECT_EQ(b.pop(), -2.0f);
    EXPECT_EQ(b.pop(), 3.0f);

    // A snapshot that doesn't fit the target fifo is a config mismatch.
    Fifo<float> tiny(1, "unit_fifo");
    ArchiveReader r2(w.payload(), "<mem>");
    expectThrowsWith([&] { tiny.loadState(r2); }, "exceeds capacity");
}

TEST(UnitState, FaultInjectorResumesItsRngStreamExactly)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = 99;
    fc.flit_drop_rate = 0.3;
    fc.stuck_multiplier_rate = 0.25;

    StatsRegistry s1;
    FaultInjector a(fc, 64, s1);
    for (int i = 0; i < 5; ++i)
        a.dropFlits(16); // advance the stream
    ArchiveWriter w;
    a.saveState(w);

    StatsRegistry s2;
    FaultInjector b(fc, 64, s2);
    ArchiveReader r1(w.payload(), "<mem>");
    b.loadState(r1);
    EXPECT_EQ(b.stuckMultiplierCount(), a.stuckMultiplierCount());
    for (index_t ms = 0; ms < 64; ++ms)
        EXPECT_EQ(b.multiplierStuck(ms), a.multiplierStuck(ms));
    // The restored stream must draw exactly what the original draws.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(b.dropFlits(16), a.dropFlits(16)) << "draw " << i;

    // Mismatched hardware: a different multiplier count must refuse.
    StatsRegistry s3;
    FaultInjector c(fc, 32, s3);
    ArchiveReader r2(w.payload(), "<mem>");
    expectThrowsWith([&] { c.loadState(r2); }, "stuck-multiplier map");
}

// --- configuration surface ---------------------------------------------

TEST(CheckpointConfig, KeysParseValidateAndRoundTrip)
{
    EXPECT_FALSE(HardwareConfig().checkpoint);
    EXPECT_EQ(HardwareConfig().checkpoint_file, "stonne.ckpt");

    const HardwareConfig on = HardwareConfig::parse(
        "checkpoint = ON\ncheckpoint_file = snap.ckpt\n"
        "checkpoint_interval_cycles = 5000");
    EXPECT_TRUE(on.checkpoint);
    EXPECT_EQ(on.checkpoint_file, "snap.ckpt");
    EXPECT_EQ(on.checkpoint_interval_cycles, 5000);

    const HardwareConfig round = HardwareConfig::parse(on.toConfigText());
    EXPECT_TRUE(round.checkpoint);
    EXPECT_EQ(round.checkpoint_file, "snap.ckpt");
    EXPECT_EQ(round.checkpoint_interval_cycles, 5000);

    // The keys are only emitted when the feature is on (like trace).
    EXPECT_EQ(HardwareConfig().toConfigText().find("checkpoint"),
              std::string::npos);

    HardwareConfig no_file;
    no_file.checkpoint = true;
    no_file.checkpoint_file.clear();
    EXPECT_THROW(no_file.validate(), FatalError);

    HardwareConfig bad_interval;
    bad_interval.checkpoint_interval_cycles = 0;
    EXPECT_THROW(bad_interval.validate(), FatalError);
}

// --- engine checkpoints ------------------------------------------------

/** Configure the same deterministic op runOnce() in the parity tests
 *  uses: sparse GEMM for sparse controllers, a small conv otherwise. */
void
configureParityOp(Stonne &st, const HardwareConfig &cfg)
{
    Rng rng(7);
    if (cfg.controller_type == ControllerType::Sparse) {
        const LayerSpec layer =
            LayerSpec::sparseGemm("parity_spmm", 32, 16, 64);
        Tensor b({64, 16});
        Tensor a({32, 64});
        b.fillUniform(rng, 0.0f, 1.0f);
        a.fillNormal(rng, 0.0f, 0.2f);
        pruneFiltersWithJitter(a, 0.5, 0.15, rng);
        st.configureSpmm(layer);
        st.configureData(std::move(b), std::move(a));
    } else {
        Conv2dShape c;
        c.R = 3;
        c.S = 3;
        c.C = 8;
        c.K = 8;
        c.X = 8;
        c.Y = 8;
        c.padding = 1;
        const LayerSpec layer = LayerSpec::convolution("parity_conv", c);
        Tensor input({c.N, c.C, c.X, c.Y});
        Tensor weights({c.K, c.cPerGroup(), c.R, c.S});
        Tensor bias({c.K});
        input.fillUniform(rng, 0.0f, 1.0f);
        weights.fillNormal(rng, 0.0f, 0.2f);
        bias.fillUniform(rng, -0.1f, 0.1f);
        st.configureConv(layer);
        st.configureData(std::move(input), std::move(weights),
                         std::move(bias));
    }
}

std::vector<std::string>
configFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator("configs"))
        if (entry.path().extension() == ".cfg")
            files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());
    return files;
}

void
expectIdenticalCounters(const StatsRegistry &a, const StatsRegistry &b)
{
    const auto &ca = a.counters();
    const auto &cb = b.counters();
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].name, cb[i].name);
        EXPECT_EQ(ca[i].value, cb[i].value) << "counter " << ca[i].name;
    }
}

void
expectIdenticalOutput(const Tensor &a, const Tensor &b)
{
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<std::size_t>(a.size()) *
                              sizeof(float)),
              0);
}

/**
 * THE core invariant: on every shipped config, in both engine modes,
 * `run op; checkpoint; (fresh process image) restore; run op` must be
 * bit-identical — cycles, every activity counter, the output tensor
 * and the cycle-level trace file — to running both ops uninterrupted.
 */
TEST(ResumeParity, EveryShippedConfigInBothEngineModes)
{
    const std::vector<std::string> files = configFiles();
    ASSERT_FALSE(files.empty());

    for (const std::string &path : files) {
        for (const bool fast_forward : {false, true}) {
            SCOPED_TRACE(path + (fast_forward ? " [fast-forward]"
                                              : " [exact]"));
            HardwareConfig cfg = HardwareConfig::parseFile(path);
            cfg.fast_forward = fast_forward;
            cfg.checkpoint = false; // snapshots are taken explicitly
            // Private trace path: other test binaries share the cwd.
            if (cfg.trace)
                cfg.trace_file = "test_ckpt_parity.trace.json";
            TempFile trace(cfg.trace ? cfg.trace_file : "");
            TempFile snap("test_ckpt_parity.ckpt");

            // Reference: two operations, uninterrupted.
            Stonne ref(cfg);
            configureParityOp(ref, cfg);
            ref.runOperation();
            configureParityOp(ref, cfg);
            ref.runOperation();
            const std::string ref_trace =
                cfg.trace ? slurpText(cfg.trace_file) : "";

            // Interrupted: one op, snapshot, restore into a fresh
            // instance, second op.
            Stonne first(cfg);
            configureParityOp(first, cfg);
            first.runOperation();
            first.saveCheckpoint(snap.path);
            EXPECT_FALSE(std::filesystem::exists(snap.path + ".tmp"));

            Stonne second(cfg);
            second.loadCheckpoint(snap.path);
            EXPECT_EQ(second.restoredFromCycle(), first.totalCycles());
            configureParityOp(second, cfg);
            const SimulationResult r2 = second.runOperation();
            EXPECT_EQ(r2.restored_from_cycle, second.restoredFromCycle());

            EXPECT_EQ(second.totalCycles(), ref.totalCycles());
            expectIdenticalCounters(ref.stats(), second.stats());
            expectIdenticalOutput(ref.output(), second.output());
            if (cfg.trace) {
                EXPECT_EQ(slurpText(cfg.trace_file), ref_trace)
                    << "trace samples diverged across the resume";
            }
        }
    }
}

TEST(ResumeParity, PolicyKnobsMayDifferAcrossTheResume)
{
    // The degraded sweep retry restores under fast_forward = OFF and a
    // widened watchdog: execution-policy keys are not structural, and
    // the result must still be bit-identical.
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    TempFile snap("test_ckpt_policy.ckpt");

    HardwareConfig ref_cfg = cfg;
    ref_cfg.fast_forward = false;
    Stonne ref(ref_cfg);
    configureParityOp(ref, ref_cfg);
    ref.runOperation();
    configureParityOp(ref, ref_cfg);
    ref.runOperation();

    HardwareConfig fast_cfg = cfg;
    fast_cfg.fast_forward = true;
    Stonne first(fast_cfg);
    configureParityOp(first, fast_cfg);
    first.runOperation();
    first.saveCheckpoint(snap.path);

    HardwareConfig degraded = cfg;
    degraded.fast_forward = false;
    degraded.watchdog_cycles *= 4;
    Stonne second(degraded);
    second.loadCheckpoint(snap.path);
    configureParityOp(second, degraded);
    second.runOperation();

    EXPECT_EQ(second.totalCycles(), ref.totalCycles());
    expectIdenticalCounters(ref.stats(), second.stats());
    expectIdenticalOutput(ref.output(), second.output());
}

TEST(ResumeParity, SnapshotRestoresAcrossTheEngineKnob)
{
    // `engine = EVENT|TICK` is an execution policy like fast_forward:
    // a snapshot taken under the wakeup scheduler must restore under
    // the tick-everything engine (and back) bit-identically. The
    // "engine" archive section advances identically in both modes, so
    // nothing in the snapshot pins the mode.
    const HardwareConfig base = HardwareConfig::maeriLike(64, 16);

    HardwareConfig ref_cfg = base;
    ref_cfg.engine_type = EngineType::Tick;
    Stonne ref(ref_cfg);
    configureParityOp(ref, ref_cfg);
    ref.runOperation();
    configureParityOp(ref, ref_cfg);
    ref.runOperation();

    for (const bool event_first : {true, false}) {
        SCOPED_TRACE(event_first ? "event -> tick" : "tick -> event");
        TempFile snap("test_ckpt_engine_knob.ckpt");

        HardwareConfig first_cfg = base;
        first_cfg.engine_type =
            event_first ? EngineType::Event : EngineType::Tick;
        Stonne first(first_cfg);
        configureParityOp(first, first_cfg);
        first.runOperation();
        first.saveCheckpoint(snap.path);

        HardwareConfig second_cfg = base;
        second_cfg.engine_type =
            event_first ? EngineType::Tick : EngineType::Event;
        Stonne second(second_cfg);
        second.loadCheckpoint(snap.path);
        configureParityOp(second, second_cfg);
        second.runOperation();

        EXPECT_EQ(second.totalCycles(), ref.totalCycles());
        expectIdenticalCounters(ref.stats(), second.stats());
        expectIdenticalOutput(ref.output(), second.output());
    }
}

TEST(EngineCheckpoint, WakeupBookkeepingRoundTrips)
{
    // The event engine's clock and per-stream last-active cycles live
    // in the version-2 "engine" archive section; a restored instance
    // must resume the wakeup records exactly.
    TempFile snap("test_ckpt_engine_state.ckpt");
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);

    Stonne st(cfg);
    configureParityOp(st, cfg);
    st.runOperation();
    const EventEngine &engine = st.accelerator().engine();
    const cycle_t now = engine.now();
    const cycle_t dl = engine.lastActive(EventEngine::Delivery);
    const cycle_t dr = engine.lastActive(EventEngine::Drain);
    EXPECT_GT(now, 0u);
    st.saveCheckpoint(snap.path);

    Stonne resumed(cfg);
    resumed.loadCheckpoint(snap.path);
    const EventEngine &rengine = resumed.accelerator().engine();
    EXPECT_EQ(rengine.now(), now);
    EXPECT_EQ(rengine.lastActive(EventEngine::Delivery), dl);
    EXPECT_EQ(rengine.lastActive(EventEngine::Drain), dr);
}

TEST(EngineCheckpoint, RejectsAStructurallyDifferentInstance)
{
    TempFile snap("test_ckpt_mismatch.ckpt");
    Stonne small(HardwareConfig::maeriLike(64, 16));
    small.saveCheckpoint(snap.path);

    Stonne big(HardwareConfig::maeriLike(128, 16));
    expectThrowsWith([&] { big.loadCheckpoint(snap.path); }, "differs");
}

TEST(EngineCheckpoint, EmbeddedConfigTextIsPeekable)
{
    TempFile snap("test_ckpt_meta.ckpt");
    const HardwareConfig cfg = HardwareConfig::sigmaLike(128, 4);
    Stonne st(cfg);
    st.saveCheckpoint(snap.path);

    // The CLI `resume` command rebuilds the instance from this text.
    EXPECT_EQ(checkpointConfigText(snap.path), st.config().toConfigText());
    EXPECT_FALSE(checkpointHasRunnerSection(snap.path));

    Stonne rebuilt(
        HardwareConfig::parse(checkpointConfigText(snap.path), snap.path));
    rebuilt.loadCheckpoint(snap.path); // structural match by definition
    EXPECT_EQ(rebuilt.restoredFromCycle(), st.totalCycles());
}

TEST(EngineCheckpoint, AutoCheckpointWritesOnTheConfiguredInterval)
{
    TempFile snap("test_ckpt_auto.ckpt");
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.checkpoint = true;
    cfg.checkpoint_file = snap.path;
    cfg.checkpoint_interval_cycles = 1; // every operation boundary

    Stonne st(cfg);
    configureParityOp(st, cfg);
    const SimulationResult r = st.runOperation();
    EXPECT_EQ(r.checkpoint_path, snap.path);
    EXPECT_EQ(r.restored_from_cycle, 0u);
    ASSERT_TRUE(std::filesystem::exists(snap.path));

    Stonne resumed(cfg);
    resumed.loadCheckpoint(snap.path);
    EXPECT_EQ(resumed.restoredFromCycle(), st.totalCycles());
}

// --- model-run checkpoints ---------------------------------------------

const char *const kCkptModel = R"(model ckpt_net
seed 11
input 3 8 8
conv name=c1 out=4 kernel=3 pad=1
relu save=s1
conv name=c2 out=4 kernel=3 pad=1
relu
add with=s1
gap
flatten
linear name=fc out=5
logsoftmax
)";

TEST(ModelRunCheckpoint, MidRunSnapshotResumesBitIdentically)
{
    const DnnModel model =
        loadModelFromText(kCkptModel, 7, "<ckpt_net>");
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    Tensor input({1, 3, 8, 8});
    Rng rng(21);
    input.fillUniform(rng, 0.0f, 1.0f);

    // Reference: the uninterrupted run.
    ModelRunner ref(model, cfg);
    const Tensor out_ref = ref.run(input);
    const cycle_t total_ref = ref.stonne().totalCycles();

    // Pick an interval that fires exactly once, at the boundary after
    // the second conv: larger than every other per-layer cycle count,
    // within the c1+c2 cumulative sum.
    cycle_t cyc_c1 = 0, cyc_c2 = 0, cyc_fc = 0;
    for (const LayerRunRecord &rec : ref.records()) {
        if (rec.name == "c1")
            cyc_c1 = rec.sim.cycles;
        else if (rec.name == "c2")
            cyc_c2 = rec.sim.cycles;
        else if (rec.name == "fc")
            cyc_fc = rec.sim.cycles;
    }
    ASSERT_GT(cyc_c1, 0u);
    ASSERT_GT(cyc_c2, 0u);
    ASSERT_GT(cyc_fc, 0u);
    const cycle_t interval = std::max(cyc_c1, cyc_fc) + 1;
    ASSERT_LE(interval, cyc_c1 + cyc_c2)
        << "the tiny model no longer supports a mid-run snapshot";

    TempFile snap("test_ckpt_model.ckpt");
    HardwareConfig ckpt_cfg = cfg;
    ckpt_cfg.checkpoint = true;
    ckpt_cfg.checkpoint_file = snap.path;
    ckpt_cfg.checkpoint_interval_cycles =
        static_cast<index_t>(interval);
    ModelRunner writer(model, ckpt_cfg);
    const Tensor out_mid = writer.run(input);
    expectIdenticalOutput(out_ref, out_mid); // snapshots don't perturb
    EXPECT_EQ(writer.lastCheckpointPath(), snap.path);
    EXPECT_EQ(writer.total().checkpoint_path, snap.path);
    ASSERT_TRUE(std::filesystem::exists(snap.path));
    EXPECT_TRUE(checkpointHasRunnerSection(snap.path));

    // Resume in a fresh runner — under the opposite execution policies
    // (fast-forward flipped, wakeup scheduler swapped for the
    // tick-everything engine), as a degraded sweep retry would — and
    // complete bit-identically.
    HardwareConfig resume_cfg = cfg;
    resume_cfg.fast_forward = !cfg.fast_forward;
    resume_cfg.engine_type = EngineType::Tick;
    ModelRunner resumer(model, resume_cfg);
    const Tensor out_res = resumer.resume(snap.path);

    expectIdenticalOutput(out_ref, out_res);
    EXPECT_EQ(resumer.stonne().totalCycles(), total_ref);
    expectIdenticalCounters(ref.stonne().stats(),
                            resumer.stonne().stats());
    EXPECT_GT(resumer.total().restored_from_cycle, 0u);
    EXPECT_LT(resumer.total().restored_from_cycle, total_ref);

    ASSERT_EQ(resumer.records().size(), ref.records().size());
    for (std::size_t i = 0; i < ref.records().size(); ++i) {
        EXPECT_EQ(resumer.records()[i].name, ref.records()[i].name);
        EXPECT_EQ(resumer.records()[i].offloaded,
                  ref.records()[i].offloaded);
        EXPECT_EQ(resumer.records()[i].sim.cycles,
                  ref.records()[i].sim.cycles)
            << "layer " << ref.records()[i].name;
    }
}

TEST(ModelRunCheckpoint, KindMismatchesAreNamedErrors)
{
    const DnnModel model =
        loadModelFromText(kCkptModel, 7, "<ckpt_net>");
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);

    // An engine-only snapshot cannot resume a model run...
    TempFile engine_snap("test_ckpt_engine_only.ckpt");
    Stonne st(cfg);
    st.saveCheckpoint(engine_snap.path);
    ModelRunner runner(model, cfg);
    expectThrowsWith([&] { runner.resume(engine_snap.path); },
                     "engine state only");

    // ...and a model-run snapshot cannot restore through the engine API.
    TempFile run_snap("test_ckpt_model_run.ckpt");
    HardwareConfig ckpt_cfg = cfg;
    ckpt_cfg.checkpoint = true;
    ckpt_cfg.checkpoint_file = run_snap.path;
    ckpt_cfg.checkpoint_interval_cycles = 1;
    ModelRunner writer(model, ckpt_cfg);
    Tensor input({1, 3, 8, 8});
    Rng rng(21);
    input.fillUniform(rng, 0.0f, 1.0f);
    writer.run(input);
    ASSERT_TRUE(std::filesystem::exists(run_snap.path));
    Stonne other(cfg);
    expectThrowsWith([&] { other.loadCheckpoint(run_snap.path); },
                     "ModelRunner");

    // A different model cannot claim the snapshot either.
    const DnnModel other_model = loadModelFromText(
        "model other_net\ninput 3 8 8\n"
        "conv name=c1 out=4 kernel=3 pad=1\n",
        7, "<other_net>");
    ModelRunner wrong(other_model, ckpt_cfg);
    EXPECT_THROW(wrong.resume(run_snap.path), CheckpointError);
}

} // namespace
} // namespace stonne
