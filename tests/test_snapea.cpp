/**
 * @file
 * Tests for the SNAPEA back-end extension (use case 2): exact-mode
 * correctness under a following ReLU, cut-off savings, and the
 * reorder-table invariants.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "engine/accelerator.hpp"
#include "frontend/snapea_pass.hpp"
#include "tensor/reference.hpp"

namespace stonne {
namespace {

LayerSpec
convLayer(index_t r, index_t c, index_t k, index_t xy, index_t pad = 1)
{
    Conv2dShape shape;
    shape.R = r;
    shape.S = r;
    shape.C = c;
    shape.K = k;
    shape.X = xy;
    shape.Y = xy;
    shape.padding = pad;
    return LayerSpec::convolution("conv", shape);
}

struct ConvData {
    Tensor input, weights, bias, output;
    /** Non-negative inputs (post-ReLU activations), mixed-sign weights. */
    explicit ConvData(const Conv2dShape &s, std::uint64_t seed)
        : input({s.N, s.C, s.X, s.Y}),
          weights({s.K, s.cPerGroup(), s.R, s.S}),
          bias({s.K}),
          output({s.N, s.K, s.outX(), s.outY()})
    {
        Rng rng(seed);
        input.fillUniform(rng, 0.0f, 1.0f);
        weights.fillNormal(rng, -0.05f, 0.3f); // negative lean -> cuts
        bias.fillUniform(rng, -0.1f, 0.1f);
    }
};

TEST(SnapeaTable, SortsDescendingWithNegativeBoundary)
{
    Tensor w({2, 1, 2, 2});
    const float vals[8] = {0.5f, -1.0f, 2.0f, 0.0f,
                           -0.1f, -0.2f, -0.3f, -0.4f};
    for (index_t i = 0; i < 8; ++i)
        w.at(i) = vals[i];
    const SnapeaReorderTable t = SnapeaReorderTable::build(w);
    ASSERT_EQ(t.order.size(), 2u);
    // Filter 0: pruned zero dropped, sorted 2.0, 0.5, -1.0 -> first
    // negative at 2.
    ASSERT_EQ(t.order[0].size(), 3u);
    EXPECT_EQ(t.order[0][0], 2);
    EXPECT_EQ(t.order[0][1], 0);
    EXPECT_EQ(t.order[0][2], 1);
    EXPECT_EQ(t.first_negative[0], 2);
    // Filter 1: all negative -> boundary at 0.
    EXPECT_EQ(t.first_negative[1], 0);
    EXPECT_EQ(t.maxLength(), 4);
}

TEST(SnapeaTable, AllPositiveFilterNeverCuts)
{
    Tensor w({1, 1, 2, 2});
    w.fill(1.0f);
    const SnapeaReorderTable t = SnapeaReorderTable::build(w);
    EXPECT_EQ(t.first_negative[0], 4); // == stream length: no cut point
}

TEST(SnapeaTable, PrunedWeightsAreDroppedFromTheStream)
{
    Tensor w({1, 1, 3, 3});
    w.at(static_cast<index_t>(1)) = 0.7f;
    w.at(static_cast<index_t>(5)) = -0.3f;
    const SnapeaReorderTable t = SnapeaReorderTable::build(w);
    ASSERT_EQ(t.order[0].size(), 2u);
    EXPECT_EQ(t.order[0][0], 1);
    EXPECT_EQ(t.order[0][1], 5);
    EXPECT_EQ(t.first_negative[0], 1);
}

TEST(Snapea, BaselineMatchesReferencePostRelu)
{
    Accelerator acc(HardwareConfig::snapeaLike(64, 64));
    const LayerSpec layer = convLayer(3, 4, 8, 8);
    ConvData d(layer.conv, 1);
    const SnapeaReorderTable table =
        SnapeaReorderTable::build(d.weights);
    acc.snapeaController().runConvolution(layer, d.input, d.weights,
                                          d.bias, table,
                                          /*early_exit=*/false, d.output);
    const Tensor expect = ref::relu(
        ref::conv2d(d.input, d.weights, d.bias, layer.conv));
    EXPECT_LT(ref::relu(d.output).maxAbsDiff(expect), 1e-4);
}

TEST(Snapea, EarlyExitIsExactUnderRelu)
{
    Accelerator acc(HardwareConfig::snapeaLike(64, 64));
    const LayerSpec layer = convLayer(3, 4, 8, 8);
    ConvData d(layer.conv, 2);
    const SnapeaReorderTable table =
        SnapeaReorderTable::build(d.weights);
    const ControllerResult r = acc.snapeaController().runConvolution(
        layer, d.input, d.weights, d.bias, table, true, d.output);
    const Tensor expect = ref::relu(
        ref::conv2d(d.input, d.weights, d.bias, layer.conv));
    EXPECT_LT(ref::relu(d.output).maxAbsDiff(expect), 1e-4);
    EXPECT_GT(r.skipped_macs, 0u);
}

TEST(Snapea, EarlyExitIsFasterAndDoesLessWork)
{
    const LayerSpec layer = convLayer(3, 8, 16, 10);
    ControllerResult base, cut;
    {
        Accelerator acc(HardwareConfig::snapeaLike(64, 64));
        ConvData d(layer.conv, 3);
        const SnapeaReorderTable table =
            SnapeaReorderTable::build(d.weights);
        base = acc.snapeaController().runConvolution(
            layer, d.input, d.weights, d.bias, table, false, d.output);
    }
    {
        Accelerator acc(HardwareConfig::snapeaLike(64, 64));
        ConvData d(layer.conv, 3);
        const SnapeaReorderTable table =
            SnapeaReorderTable::build(d.weights);
        cut = acc.snapeaController().runConvolution(
            layer, d.input, d.weights, d.bias, table, true, d.output);
    }
    EXPECT_EQ(base.skipped_macs, 0u);
    EXPECT_LT(cut.macs, base.macs);
    EXPECT_LE(cut.cycles, base.cycles);
    EXPECT_LE(cut.mem_accesses, base.mem_accesses);
    EXPECT_EQ(cut.macs + cut.skipped_macs, base.macs);
}

TEST(Snapea, AllPositiveWeightsNeverCut)
{
    Accelerator acc(HardwareConfig::snapeaLike(64, 64));
    const LayerSpec layer = convLayer(3, 2, 4, 6);
    ConvData d(layer.conv, 4);
    for (index_t i = 0; i < d.weights.size(); ++i)
        d.weights.at(i) = std::abs(d.weights.at(i)) + 0.01f;
    const SnapeaReorderTable table =
        SnapeaReorderTable::build(d.weights);
    const ControllerResult r = acc.snapeaController().runConvolution(
        layer, d.input, d.weights, d.bias, table, true, d.output);
    EXPECT_EQ(r.skipped_macs, 0u);
    EXPECT_TRUE(d.output.equals(d.output)); // sanity
}

TEST(Snapea, HeavilyNegativeWeightsCutAggressively)
{
    Accelerator acc(HardwareConfig::snapeaLike(64, 64));
    const LayerSpec layer = convLayer(3, 4, 8, 8);
    ConvData d(layer.conv, 5);
    for (index_t i = 0; i < d.weights.size(); ++i)
        d.weights.at(i) = -std::abs(d.weights.at(i)) - 0.01f;
    d.bias.fill(0.0f);
    const SnapeaReorderTable table =
        SnapeaReorderTable::build(d.weights);
    const ControllerResult r = acc.snapeaController().runConvolution(
        layer, d.input, d.weights, d.bias, table, true, d.output);
    // Everything is non-positive: each window cuts after its first fold.
    EXPECT_GT(r.skipped_macs, r.macs);
    for (index_t i = 0; i < d.output.size(); ++i)
        EXPECT_LE(d.output.at(i), 0.0f);
}

TEST(SnapeaPass, EstimateBoundsControllerSavings)
{
    // The per-element estimate is an upper bound on what the per-fold
    // controller can skip.
    const LayerSpec layer = convLayer(3, 8, 16, 10);
    ConvData d(layer.conv, 6);
    const SnapeaReorderTable table =
        SnapeaReorderTable::build(d.weights);
    const SnapeaLayerEstimate est = estimateCutSavings(
        layer, d.input, d.weights, d.bias, table);
    EXPECT_GT(est.cutFraction(), 0.0);

    Accelerator acc(HardwareConfig::snapeaLike(64, 64));
    const ControllerResult r = acc.snapeaController().runConvolution(
        layer, d.input, d.weights, d.bias, table, true, d.output);
    EXPECT_LE(r.skipped_macs, est.skippable_macs);
}

TEST(SnapeaPass, BuildsOneTablePerConvolution)
{
    DnnModel m;
    m.name = "toy";
    DnnLayer conv;
    conv.op = OpType::Conv2d;
    conv.weights = Tensor({2, 1, 3, 3});
    DnnLayer relu;
    relu.op = OpType::ReLU;
    m.layers = {conv, relu, conv};
    EXPECT_EQ(buildSnapeaTables(m).size(), 2u);
}

TEST(Snapea, TableSizeMismatchIsFatal)
{
    Accelerator acc(HardwareConfig::snapeaLike(64, 64));
    const LayerSpec layer = convLayer(3, 2, 4, 6);
    ConvData d(layer.conv, 7);
    Tensor other({8, 2, 3, 3});
    const SnapeaReorderTable table = SnapeaReorderTable::build(other);
    EXPECT_THROW(acc.snapeaController().runConvolution(
                     layer, d.input, d.weights, d.bias, table, true,
                     d.output),
                 FatalError);
}

} // namespace
} // namespace stonne
