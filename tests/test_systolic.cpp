/**
 * @file
 * Unit tests for the structural output-stationary systolic array:
 * functional exactness against the reference GEMM and the cycle model
 * the Table V TPU validation relies on.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "mem/global_buffer.hpp"
#include "network/systolic.hpp"
#include "tensor/reference.hpp"

namespace stonne {
namespace {

struct Rig {
    StatsRegistry stats;
    GlobalBuffer gb;
    PointToPointNetwork dn;
    MultiplierArray mn;
    LinearReductionNetwork rn;
    SystolicArray array;

    Rig(index_t rows, index_t cols)
        : gb(108, rows * cols, rows * cols, 1, stats),
          dn(rows * cols, rows * cols, stats),
          mn(rows * cols, MnType::Linear, stats),
          rn(rows * cols, stats),
          array(rows, cols, dn, mn, rn, gb)
    {
    }
};

TEST(Systolic, SingleTileGemmIsExact)
{
    Rig rig(4, 4);
    Rng rng(1);
    Tensor a({4, 6}), b({6, 4});
    a.fillUniform(rng);
    b.fillUniform(rng);
    Tensor c({4, 4});
    rig.array.run(a, b, c);
    EXPECT_TRUE(c.equals(ref::gemm(a, b)));
}

TEST(Systolic, MultiTileGemmIsExact)
{
    Rig rig(4, 4);
    Rng rng(2);
    Tensor a({10, 7}), b({7, 9});
    a.fillUniform(rng);
    b.fillUniform(rng);
    Tensor c({10, 9});
    const SystolicResult r = rig.array.run(a, b, c);
    EXPECT_TRUE(c.equals(ref::gemm(a, b)));
    EXPECT_EQ(r.macs, 10u * 7u * 9u);
    EXPECT_EQ(r.tiles, 3 * 3);
}

TEST(Systolic, TileCycleFormulaMatchesRtlValidation)
{
    // Table V TPU rows: per full tile the RTL costs K + ar + ac + 2.
    Rig rig(16, 16);
    Rng rng(3);

    auto run = [&](index_t m, index_t n, index_t k) {
        Tensor a({m, k}), b({k, n});
        a.fillUniform(rng);
        b.fillUniform(rng);
        Tensor c({m, n});
        return rig.array.run(a, b, c).cycles;
    };

    EXPECT_EQ(run(16, 16, 32), 66u);   // TPU-1: RTL 66
    EXPECT_EQ(run(16, 16, 16), 50u);   // TPU-2: RTL 50
    EXPECT_EQ(run(32, 32, 16), 200u);  // TPU-3: RTL 200
    EXPECT_EQ(run(64, 64, 32), 1056u); // TPU-4: RTL 1056
}

TEST(Systolic, PartialEdgeTilesCostLess)
{
    Rig rig(8, 8);
    Rng rng(4);
    Tensor a({3, 5}), b({5, 2});
    a.fillUniform(rng);
    b.fillUniform(rng);
    Tensor c({3, 2});
    const SystolicResult r = rig.array.run(a, b, c);
    // One partial tile: K + mt + nt - 2 + overhead = 5 + 3 + 2 - 2 + 4.
    EXPECT_EQ(r.cycles, 12u);
    EXPECT_TRUE(c.equals(ref::gemm(a, b)));
}

TEST(Systolic, ActivityCountersMatchWork)
{
    Rig rig(4, 4);
    Rng rng(5);
    Tensor a({4, 8}), b({8, 4});
    a.fillUniform(rng);
    b.fillUniform(rng);
    Tensor c({4, 4});
    rig.array.run(a, b, c);
    EXPECT_EQ(rig.mn.multOps(), 4u * 8u * 4u);
    // Every operand element is injected once per tile edge.
    EXPECT_EQ(rig.stats.value("dn.packages"), 2u * 4u * 8u);
    EXPECT_EQ(rig.stats.value("gb.writes"), 16u);
}

TEST(Systolic, MismatchedShapesAreFatal)
{
    Rig rig(4, 4);
    Tensor a({4, 5}), b({6, 4}), c({4, 4});
    EXPECT_THROW(rig.array.run(a, b, c), FatalError);
}

TEST(Systolic, ArraySizeMustMatchFabric)
{
    StatsRegistry stats;
    GlobalBuffer gb(108, 16, 16, 1, stats);
    PointToPointNetwork dn(16, 16, stats);
    MultiplierArray mn(16, MnType::Linear, stats);
    LinearReductionNetwork rn(16, stats);
    EXPECT_THROW(SystolicArray(8, 8, dn, mn, rn, gb), FatalError);
}

} // namespace
} // namespace stonne
