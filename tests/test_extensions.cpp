/**
 * @file
 * Tests for the remaining surface: the extra accelerator presets the
 * paper names (ShiDianNao, ART+DIST collection), the model report of
 * the output module, non-square systolic arrays, Full-scale model
 * construction, the Figure 8 scheduling example, and pooling-offload
 * control.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "controller/scheduler.hpp"
#include "engine/output_module.hpp"
#include "engine/stonne_api.hpp"
#include "frontend/model_zoo.hpp"
#include "frontend/runner.hpp"
#include "tensor/reference.hpp"

namespace stonne {
namespace {

TEST(Presets, ShiDianNaoIsAnOutputStationaryArray)
{
    const HardwareConfig c = HardwareConfig::shiDianNaoLike();
    EXPECT_EQ(c.ms_size, 64); // 8x8 MACs
    EXPECT_EQ(c.dn_type, DnType::PointToPoint);
    EXPECT_EQ(c.rn_type, RnType::Linear);
    EXPECT_EQ(c.dataflow, Dataflow::OutputStationary);
    EXPECT_NO_THROW(c.validate());

    // And it computes correctly.
    Stonne st(c);
    Rng rng(1);
    Tensor a({8, 12}), b({12, 8});
    a.fillUniform(rng);
    b.fillUniform(rng);
    st.configureDmm(LayerSpec::gemmLayer("g", 8, 8, 12));
    st.configureData(b, a);
    st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::gemm(a, b)));
}

TEST(Presets, ArtDistPresetRoundTripsPsums)
{
    const HardwareConfig c = HardwareConfig::flexibleArtDist(64, 16);
    EXPECT_EQ(c.rn_type, RnType::Art);
    Stonne st(c);
    Rng rng(2);
    // Deep dot product forces folding and thus psum round-trips.
    Tensor a({4, 256}), b({256, 4});
    a.fillUniform(rng);
    b.fillUniform(rng);
    st.configureDmm(LayerSpec::gemmLayer("g", 4, 4, 256));
    st.configureData(b, a);
    st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::gemm(a, b)));
    EXPECT_GT(st.stats().value("mn.psum_forwards"), 0u);
}

TEST(Systolic, NonSquareArrayFromNonSquarePowerOfTwo)
{
    // 128 PEs folds to a 16x8 array; GEMMs stay exact.
    Stonne st(HardwareConfig::tpuLike(128));
    Rng rng(3);
    Tensor a({20, 9}), b({9, 11});
    a.fillUniform(rng);
    b.fillUniform(rng);
    st.configureDmm(LayerSpec::gemmLayer("g", 20, 11, 9));
    st.configureData(b, a);
    st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::gemm(a, b)));
}

TEST(OutputModule, ModelReportListsEveryLayer)
{
    const DnnModel model =
        buildModel(ModelId::SqueezeNet, ModelScale::Tiny);
    const Tensor input =
        makeModelInput(ModelId::SqueezeNet, ModelScale::Tiny);
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    ModelRunner runner(model, cfg);
    runner.run(input);

    const JsonValue report = OutputModule::modelReport(
        model.name, cfg, runner.records(), runner.total());
    const std::string json = report.dump();
    EXPECT_NE(json.find("\"model\": \"Squeezenet\""),
              std::string::npos);
    EXPECT_NE(json.find("\"where\": \"accelerator\""),
              std::string::npos);
    EXPECT_NE(json.find("\"where\": \"native\""), std::string::npos);
    EXPECT_NE(json.find("fire2_s1"), std::string::npos);
    EXPECT_NE(json.find("\"total\""), std::string::npos);
}

TEST(ModelZoo, FullScaleShapesMatchThePublishedModels)
{
    // Constructing the full-resolution models is expensive for the big
    // ones; SqueezeNet is light enough to verify the Full preset.
    const DnnModel m =
        buildModel(ModelId::SqueezeNet, ModelScale::Full);
    const Conv2dShape &first = m.layers.front().spec.conv;
    EXPECT_EQ(first.X, 224);
    EXPECT_EQ(first.K, 64);
    // fire2 squeeze has its published 16 filters.
    bool found = false;
    for (const DnnLayer &l : m.layers) {
        if (l.name == "fire2_s1") {
            EXPECT_EQ(l.spec.conv.K, 16);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Scheduler, PaperFigure8Example)
{
    // The paper's Figure 8: four sparse filters of effective sizes
    // 4, 2, 4, 2 on an 8-MS array. Unscheduled mapping wastes switches;
    // LFF pairs the two 4s and the two 2s for perfect load balance.
    const std::vector<index_t> sizes = {4, 2, 4, 2};
    const auto ns = packRounds(sizes, 8, SchedulingPolicy::None);
    const auto lff =
        packRounds(sizes, 8, SchedulingPolicy::LargestFirst);
    ASSERT_EQ(ns.size(), 2u);
    ASSERT_EQ(lff.size(), 2u);
    // NS maps {4,2} then {4,2}: 6 of 8 switches busy each round.
    EXPECT_EQ(ns[0].nnz, 6);
    EXPECT_EQ(ns[1].nnz, 6);
    // LFF maps {4,4} then {2,2}: the first round is perfectly full.
    EXPECT_EQ(lff[0].nnz, 8);
    EXPECT_EQ(lff[1].nnz, 4);
}

TEST(Runner, PoolingOffloadIsControllable)
{
    const DnnModel model =
        buildModel(ModelId::AlexNet, ModelScale::Tiny);
    const Tensor input =
        makeModelInput(ModelId::AlexNet, ModelScale::Tiny);

    ModelRunner on(model, HardwareConfig::maeriLike(64, 16));
    on.run(input);
    ModelRunner off(model, HardwareConfig::maeriLike(64, 16));
    off.setOffloadPooling(false);
    const Tensor out = off.run(input);

    auto pooled_offloaded = [](const ModelRunner &r) {
        for (const LayerRunRecord &rec : r.records())
            if (rec.op == OpType::MaxPool2d && rec.offloaded)
                return true;
        return false;
    };
    EXPECT_TRUE(pooled_offloaded(on));
    EXPECT_FALSE(pooled_offloaded(off));
    EXPECT_TRUE(out.equals(off.runNative(input)));
}

TEST(Tile, ToStringListsEveryField)
{
    Tile t;
    t.t_r = 3;
    t.t_k = 4;
    const std::string s = t.toString();
    EXPECT_NE(s.find("T_R=3"), std::string::npos);
    EXPECT_NE(s.find("T_K=4"), std::string::npos);
    EXPECT_NE(s.find("T_Y'=1"), std::string::npos);
}

TEST(StonneApi, ConfigFileConstructor)
{
    Stonne st(std::string("configs/maeri_256.cfg"));
    EXPECT_EQ(st.config().ms_size, 256);
    EXPECT_EQ(st.config().dn_type, DnType::Tree);
    EXPECT_THROW(Stonne(std::string("/nope.cfg")), FatalError);
}

} // namespace
} // namespace stonne
