/**
 * @file
 * Tests for the analytical-model baselines and the Figure 1 claims:
 * the models track STONNE under ideal conditions and underestimate it
 * when bandwidth drops (MAERI) or sparsity grows (SIGMA).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analytical/maeri_model.hpp"
#include "common/logging.hpp"
#include "analytical/scalesim_model.hpp"
#include "analytical/sigma_model.hpp"
#include "controller/mapper.hpp"
#include "engine/accelerator.hpp"
#include "engine/workload.hpp"
#include "tensor/prune.hpp"

namespace stonne {
namespace {

TEST(ScaleSimAm, SingleTileFormula)
{
    EXPECT_EQ(analytical::scaleSimOsCycles(GemmDims{16, 16, 32}, 16, 16),
              32u + 16 + 16 + 2);
}

TEST(ScaleSimAm, TilesMultiply)
{
    EXPECT_EQ(analytical::scaleSimOsCycles(GemmDims{32, 32, 16}, 16, 16),
              4u * (16 + 16 + 16 + 2));
}

TEST(ScaleSimAm, MatchesCycleLevelSystolicWithinPercent)
{
    // Figure 1a: analytical ~= cycle-level for rigid systolic arrays.
    Rng rng(1);
    for (const index_t k : {16, 48, 96}) {
        Tensor a({64, k}), b({k, 64});
        a.fillUniform(rng);
        b.fillUniform(rng);
        Tensor c({64, 64});

        Accelerator acc(HardwareConfig::tpuLike(64));
        const LayerSpec layer = LayerSpec::gemmLayer("g", 64, 64, k);
        const cycle_t sim = acc.denseController()
            .runGemm(layer, Tile(), a, b, c).cycles;
        const cycle_t am = analytical::scaleSimOsCycles(
            GemmDims{64, 64, k}, 8, 8);
        // The simulator additionally charges the cold-start DRAM
        // staging, which amortizes over real layers (Figure 1a).
        EXPECT_GE(sim, am);
        EXPECT_LT(static_cast<double>(sim - am) /
                  static_cast<double>(am), 0.15)
            << "K=" << k;
    }
}

TEST(MaeriAm, MatchesStonneAtFullBandwidth)
{
    // Figure 1b: at full bandwidth the analytical model is within a few
    // percent of the cycle-level simulation.
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.C = 8;
    s.K = 8;
    s.X = 12;
    s.Y = 12;
    s.padding = 1;
    const LayerSpec layer = LayerSpec::convolution("c", s);

    Accelerator acc(HardwareConfig::maeriLike(128, 128));
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    Rng rng(2);
    Tensor in({1, 8, 12, 12}), w({8, 8, 3, 3});
    in.fillUniform(rng);
    w.fillUniform(rng);
    Tensor out({1, 8, 12, 12});
    const cycle_t sim = acc.denseController()
        .runConvolution(layer, tile, in, w, Tensor(), out).cycles;
    const cycle_t am = analytical::maeriCycles(
        layer, tile, HardwareConfig::maeriLike(128, 128));
    const double diff =
        std::abs(static_cast<double>(sim) - static_cast<double>(am)) /
        static_cast<double>(sim);
    EXPECT_LT(diff, 0.25) << "sim " << sim << " am " << am;
}

TEST(MaeriAm, UnderestimatesAtLowBandwidth)
{
    // Figure 1b: dropping the bandwidth makes the analytical model
    // underestimate badly (the paper reports up to 400 %). A 1x1
    // convolution has no sliding reuse, so the bandwidth stalls the
    // bandwidth-oblivious model cannot see dominate.
    Conv2dShape s;
    s.R = 1;
    s.S = 1;
    s.C = 64;
    s.K = 16;
    s.X = 12;
    s.Y = 12;
    const LayerSpec layer = LayerSpec::convolution("c", s);
    const HardwareConfig cfg = HardwareConfig::maeriLike(128, 8);

    Accelerator acc(cfg);
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    Rng rng(3);
    Tensor in({1, 64, 12, 12}), w({16, 64, 1, 1});
    in.fillUniform(rng);
    w.fillUniform(rng);
    Tensor out({1, 16, 12, 12});
    const cycle_t sim = acc.denseController()
        .runConvolution(layer, tile, in, w, Tensor(), out).cycles;
    const cycle_t am = analytical::maeriCycles(layer, tile, cfg);
    EXPECT_GT(static_cast<double>(sim), 1.5 * static_cast<double>(am));
}

TEST(SigmaAm, MatchesStonneOnDenseMatrices)
{
    // Figure 1c: perfect match at 0 % sparsity (large enough that the
    // cold-start DRAM staging amortizes, as in the paper's layers).
    const index_t m = 32, k = 64, n = 256;
    Rng rng(4);
    Tensor a({m, k}), b({k, n});
    a.fillUniform(rng);
    b.fillUniform(rng);
    Tensor c({m, n});

    const HardwareConfig cfg = HardwareConfig::sigmaLike(128, 128);
    Accelerator acc(cfg);
    const cycle_t sim =
        acc.sparseController().runSpMMDense(a, b, c).cycles;
    const cycle_t am = analytical::sigmaCycles(m, n, k, m * k, cfg);
    const double diff =
        std::abs(static_cast<double>(sim) - static_cast<double>(am)) /
        static_cast<double>(sim);
    EXPECT_LT(diff, 0.15) << "sim " << sim << " am " << am;
}

TEST(SigmaAm, DivergesAsSparsityGrows)
{
    // Figure 1c: the divergence grows with the sparsity ratio because
    // the model cannot see the distribution of the zeros. Row sizes
    // comparable to the array width let the variance fragment the
    // packing the average-based model assumes uniform.
    const index_t m = 64, k = 256, n = 128;
    Rng rng(5);
    Tensor b({k, n});
    b.fillUniform(rng);
    const HardwareConfig cfg = HardwareConfig::sigmaLike(128, 128);

    auto gap = [&](double sparsity) {
        Rng wr(6);
        Tensor a({m, k});
        a.fillUniform(wr);
        // Real pruned filters vary widely in density (Fig 7b); the
        // jitter reproduces that spread.
        if (sparsity > 0)
            pruneFiltersWithJitter(a, sparsity, 0.3, wr);
        Accelerator acc(cfg);
        Tensor c({m, n});
        const cycle_t sim =
            acc.sparseController().runSpMMDense(a, b, c).cycles;
        const cycle_t am =
            analytical::sigmaCycles(m, n, k, a.nnz(), cfg);
        return static_cast<double>(sim) / static_cast<double>(am);
    };

    const double at_zero = gap(0.0);
    const double at_ninety = gap(0.9);
    EXPECT_LT(std::abs(at_zero - 1.0), 0.15);
    EXPECT_GT(at_ninety, at_zero * 1.05);
}

TEST(SigmaAm, EmptyMatrixDegenerates)
{
    const HardwareConfig cfg = HardwareConfig::sigmaLike(128, 128);
    EXPECT_EQ(analytical::sigmaCycles(8, 8, 8, 0, cfg), 1u);
    EXPECT_THROW(analytical::sigmaCycles(8, 8, 8, 100, cfg), FatalError);
}

TEST(MaeriAm, WeightDistributionScalesWithBandwidth)
{
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.C = 16;
    s.K = 4;
    s.X = 8;
    s.Y = 8;
    const LayerSpec layer = LayerSpec::convolution("c", s);
    Mapper m(128);
    const Tile tile = m.generateTile(layer);
    const cycle_t fast = analytical::maeriCycles(
        layer, tile, HardwareConfig::maeriLike(128, 128));
    const cycle_t slow = analytical::maeriCycles(
        layer, tile, HardwareConfig::maeriLike(128, 8));
    EXPECT_GE(slow, fast);
}

// --- Monotonicity over the Figure 1 layer set ------------------------
//
// The analytical models feed the design-space explorer's pre-filter, so
// their qualitative shape matters beyond point accuracy: giving the
// accelerator strictly more of a resource must never *increase* the
// predicted cycles on the axis each model is sensitive to. Each test
// sweeps a resource axis over every Fig-1 layer.

TEST(MaeriAm, CyclesNonIncreasingAsBandwidthGrows)
{
    for (const NamedLayer &nl : fig1Layers()) {
        if (nl.spec.kind != LayerKind::Convolution &&
            nl.spec.kind != LayerKind::Linear &&
            nl.spec.kind != LayerKind::Gemm)
            continue;
        // The tile is held fixed so the axis isolates pure bandwidth.
        const Tile tile = Mapper(256).generateTile(nl.spec);
        cycle_t prev = 0;
        for (const index_t bw : {8, 16, 32, 64, 128, 256}) {
            const cycle_t c = analytical::maeriCycles(
                nl.spec, tile, HardwareConfig::maeriLike(256, bw));
            if (prev > 0)
                EXPECT_LE(c, prev)
                    << nl.tag << " regressed at bw=" << bw;
            prev = c;
        }
    }
}

TEST(ScaleSimAm, CyclesNonIncreasingAsArrayGrows)
{
    for (const NamedLayer &nl : fig1Layers()) {
        if (nl.spec.kind == LayerKind::SparseGemm ||
            nl.spec.kind == LayerKind::MaxPool)
            continue;
        cycle_t prev = 0;
        for (const index_t d : {4, 8, 16, 32, 64}) {
            const cycle_t c =
                analytical::scaleSimOsCycles(nl.spec, d, d);
            if (prev > 0)
                EXPECT_LE(c, prev)
                    << nl.tag << " regressed at " << d << "x" << d;
            prev = c;
        }
    }
}

TEST(SigmaAm, CyclesNonIncreasingAsBandwidthGrows)
{
    for (const NamedLayer &nl : fig1Layers()) {
        const GemmDims g = nl.spec.gemmView();
        const index_t nnz = g.m * g.k / 2; // half-dense stationary op
        cycle_t prev = 0;
        for (const index_t bw : {8, 16, 32, 64, 128, 256}) {
            const cycle_t c = analytical::sigmaCycles(
                g.m, g.n, g.k, nnz, HardwareConfig::sigmaLike(256, bw));
            if (prev > 0)
                EXPECT_LE(c, prev)
                    << nl.tag << " regressed at bw=" << bw;
            prev = c;
        }
    }
}

} // namespace
} // namespace stonne
