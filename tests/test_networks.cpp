/**
 * @file
 * Unit tests for the on-chip network fabrics: the three distribution
 * networks, the multiplier array and the four reduction networks.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "network/dn_benes.hpp"
#include "network/dn_popn.hpp"
#include "network/dn_tree.hpp"
#include "network/mn_array.hpp"
#include "network/rn_fan.hpp"
#include "network/rn_linear.hpp"
#include "network/rn_tree.hpp"

namespace stonne {
namespace {

DataPackage
pkg(index_t lo, index_t hi, PackageKind kind = PackageKind::Input)
{
    DataPackage p;
    p.dest_lo = lo;
    p.dest_hi = hi;
    p.kind = kind;
    return p;
}

// --- Tree DN ----------------------------------------------------------

TEST(TreeDn, BandwidthLimitsInjectionsPerCycle)
{
    StatsRegistry stats;
    TreeDistributionNetwork dn(16, 2, stats);
    EXPECT_TRUE(dn.inject(pkg(0, 1)));
    EXPECT_TRUE(dn.inject(pkg(1, 2)));
    EXPECT_FALSE(dn.inject(pkg(2, 3)));
    dn.cycle();
    EXPECT_TRUE(dn.inject(pkg(2, 3)));
}

TEST(TreeDn, OverlappingMulticastRangesConflict)
{
    StatsRegistry stats;
    TreeDistributionNetwork dn(16, 4, stats);
    EXPECT_TRUE(dn.inject(pkg(0, 8)));
    EXPECT_FALSE(dn.inject(pkg(4, 12))); // shares leaves 4-7
    EXPECT_TRUE(dn.inject(pkg(8, 16)));  // disjoint
    EXPECT_EQ(dn.stalls(), 1u);
}

TEST(TreeDn, BroadcastUsesWholeFabric)
{
    StatsRegistry stats;
    TreeDistributionNetwork dn(16, 4, stats);
    EXPECT_TRUE(dn.inject(pkg(0, 16)));
    EXPECT_FALSE(dn.inject(pkg(0, 1)));
    EXPECT_EQ(dn.packagesDelivered(), 1u);
}

TEST(TreeDn, TraversalCountsScaleWithFanout)
{
    StatsRegistry stats;
    TreeDistributionNetwork dn(64, 8, stats);
    EXPECT_EQ(dn.levels(), 6);
    EXPECT_EQ(dn.traversalSwitches(1), 6);
    EXPECT_EQ(dn.traversalSwitches(64), 6 + 63);
}

TEST(TreeDn, BulkInjectionRespectsBandwidth)
{
    StatsRegistry stats;
    TreeDistributionNetwork dn(64, 8, stats);
    EXPECT_EQ(dn.injectBulk(20, 4, PackageKind::Input), 8);
    EXPECT_EQ(dn.injectBulk(20, 4, PackageKind::Input), 0);
    dn.cycle();
    EXPECT_EQ(dn.injectBulk(3, 4, PackageKind::Input), 3);
    EXPECT_EQ(stats.value("dn.packages"), 11u);
}

TEST(TreeDn, RequiresPowerOfTwoLeaves)
{
    StatsRegistry stats;
    EXPECT_THROW(TreeDistributionNetwork(48, 4, stats), FatalError);
}

// --- Benes DN ---------------------------------------------------------

TEST(BenesDn, NonBlockingUpToBandwidth)
{
    StatsRegistry stats;
    BenesDistributionNetwork dn(16, 4, stats);
    // Overlapping ranges do NOT conflict: the fabric is non-blocking.
    EXPECT_TRUE(dn.inject(pkg(0, 8)));
    EXPECT_TRUE(dn.inject(pkg(4, 12)));
    EXPECT_TRUE(dn.inject(pkg(0, 16)));
    EXPECT_TRUE(dn.inject(pkg(3, 4)));
    EXPECT_FALSE(dn.inject(pkg(5, 6)));
}

TEST(BenesDn, LevelStructureMatchesPaper)
{
    StatsRegistry stats;
    BenesDistributionNetwork dn(128, 64, stats);
    // 2*log2(N) + 1 levels of N/2 tiny 2x2 switches.
    EXPECT_EQ(dn.levels(), 2 * 7 + 1);
    EXPECT_EQ(dn.switchCount(), 15 * 64);
}

TEST(BenesDn, HopAccountingCrossesAllLevels)
{
    StatsRegistry stats;
    BenesDistributionNetwork dn(16, 4, stats);
    dn.inject(pkg(3, 4));
    EXPECT_EQ(stats.value("dn.switch_hops"),
              static_cast<count_t>(dn.levels()));
}

// --- Point-to-point DN -------------------------------------------------

TEST(PopDn, RejectsMulticastStructurally)
{
    StatsRegistry stats;
    PointToPointNetwork dn(16, 16, stats);
    EXPECT_TRUE(dn.inject(pkg(3, 4)));
    EXPECT_THROW(dn.inject(pkg(0, 2)), FatalError);
    EXPECT_THROW(dn.injectBulk(4, 2, PackageKind::Input), FatalError);
}

TEST(PopDn, UnicastBandwidth)
{
    StatsRegistry stats;
    PointToPointNetwork dn(16, 4, stats);
    EXPECT_EQ(dn.injectBulk(10, 1, PackageKind::Input), 4);
    dn.cycle();
    EXPECT_EQ(dn.injectBulk(10, 1, PackageKind::Input), 4);
    EXPECT_EQ(stats.value("dn.stalls"), 2u);
}

// --- Multiplier array --------------------------------------------------

TEST(MnArray, CountsMultiplications)
{
    StatsRegistry stats;
    MultiplierArray mn(64, MnType::Linear, stats);
    mn.fireMultipliers(64);
    mn.fireMultipliers(10);
    EXPECT_EQ(mn.multOps(), 74u);
    EXPECT_THROW(mn.fireMultipliers(65), PanicError);
}

TEST(MnArray, ForwardingOnlyOnLinearTopology)
{
    StatsRegistry stats;
    MultiplierArray lmn(64, MnType::Linear, stats);
    EXPECT_TRUE(lmn.hasForwardingLinks());
    lmn.forwardOperands(3);
    EXPECT_EQ(lmn.forwardOps(), 3u);

    StatsRegistry stats2;
    MultiplierArray dmn(64, MnType::Disabled, stats2);
    EXPECT_FALSE(dmn.hasForwardingLinks());
    EXPECT_THROW(dmn.forwardOperands(1), PanicError);
}

// --- Reduction networks -------------------------------------------------

TEST(ArtRn, LatencyIsLogDepth)
{
    StatsRegistry stats;
    ArtReductionNetwork rn(64, true, 64, stats);
    EXPECT_EQ(rn.latency(1), 0);
    EXPECT_EQ(rn.latency(2), 1);
    EXPECT_EQ(rn.latency(9), 4);
    EXPECT_EQ(rn.latency(64), 6);
}

TEST(ArtRn, ThreeToOneAdderFiringCounts)
{
    StatsRegistry stats;
    ArtReductionNetwork rn(64, true, 64, stats);
    rn.reduceCluster(9); // 8 additions -> 4 fused 3:1 firings
    EXPECT_EQ(rn.adderOps(), 4u);
    rn.reduceCluster(1); // single product: no adders
    EXPECT_EQ(rn.adderOps(), 4u);
}

TEST(ArtRn, AccumulatorOnlyWithAccVariant)
{
    StatsRegistry stats;
    ArtReductionNetwork acc(64, true, 32, stats);
    EXPECT_TRUE(acc.supportsAccumulation());
    acc.accumulate(16);
    EXPECT_EQ(acc.accumulatorOps(), 16u);
    EXPECT_THROW(acc.accumulate(33), PanicError);

    StatsRegistry stats2;
    ArtReductionNetwork dist(64, false, 0, stats2);
    EXPECT_FALSE(dist.supportsAccumulation());
    EXPECT_THROW(dist.accumulate(1), PanicError);
}

TEST(FanRn, TwoToOneAdderFiringCounts)
{
    StatsRegistry stats;
    FanReductionNetwork rn(64, stats);
    rn.reduceCluster(9); // 8 two-input additions
    EXPECT_EQ(rn.adderOps(), 8u);
    EXPECT_TRUE(rn.supportsVariableClusters());
    EXPECT_TRUE(rn.supportsAccumulation());
}

TEST(FanRn, ClusterSizeBounds)
{
    StatsRegistry stats;
    FanReductionNetwork rn(64, stats);
    EXPECT_THROW(rn.reduceCluster(0), PanicError);
    EXPECT_THROW(rn.reduceCluster(65), PanicError);
}

TEST(LinearRn, SerialLatency)
{
    StatsRegistry stats;
    LinearReductionNetwork rn(64, stats);
    EXPECT_EQ(rn.latency(8), 7);
    EXPECT_FALSE(rn.supportsVariableClusters());
    rn.reduceCluster(8);
    EXPECT_EQ(rn.adderOps(), 7u);
}

// --- Occupancy telemetry ------------------------------------------------

TEST(TreeDn, InjectQueueOccIntegralIsClosedForm)
{
    StatsRegistry stats;
    TreeDistributionNetwork dn(16, 2, stats);
    // Streaming 5 elements at 2 accepted per cycle queues 5, 3 and 1
    // pending elements over the three cycles: integral 9.
    dn.accountBacklog(5, 2);
    EXPECT_EQ(stats.value("dn.inject_queue_occ"), 9u);
    // Empty deliveries leave the integral untouched; a single-cycle
    // delivery contributes exactly its element count.
    dn.accountBacklog(0, 2);
    EXPECT_EQ(stats.value("dn.inject_queue_occ"), 9u);
    dn.accountBacklog(2, 2);
    EXPECT_EQ(stats.value("dn.inject_queue_occ"), 11u);
}

TEST(MnArray, BusyCyclesCountFiringCyclesOnly)
{
    StatsRegistry stats;
    MultiplierArray mn(64, MnType::Linear, stats);
    mn.fireMultipliers(64);
    mn.fireMultipliers(10);
    mn.fireMultipliers(0);
    EXPECT_EQ(stats.value("mn.busy_cycles"), 2u);
    // A steady-state bulk region counts each skipped cycle as busy.
    mn.bulkAdvance(5, 50);
    EXPECT_EQ(stats.value("mn.busy_cycles"), 7u);
    mn.bulkAdvance(5, 0);
    EXPECT_EQ(stats.value("mn.busy_cycles"), 7u);
}

TEST(ArtRn, PipelineOccupancyFollowsClusterLatency)
{
    StatsRegistry stats;
    ArtReductionNetwork rn(16, true, 128, stats);
    rn.reduceCluster(8); // 3 pipeline stages
    EXPECT_EQ(stats.value("rn.pipeline_occ"), 3u);
    rn.reduceCluster(1); // single products bypass the adders
    EXPECT_EQ(stats.value("rn.pipeline_occ"), 3u);
    // bulkReduce matches reduceCluster called once per cluster.
    rn.bulkReduce(4, 8);
    EXPECT_EQ(stats.value("rn.pipeline_occ"), 15u);
}

TEST(LinearRn, PipelineOccupancyFollowsSerialLatency)
{
    StatsRegistry stats;
    LinearReductionNetwork rn(64, stats);
    rn.reduceCluster(4); // 3 serial adder hops
    rn.bulkReduce(2, 4);
    EXPECT_EQ(stats.value("rn.pipeline_occ"), 9u);
}

} // namespace
} // namespace stonne
