/**
 * @file
 * Integration tests for the dense memory controller on the flexible
 * (MAERI-like) and rigid (TPU-like) compositions: functional exactness
 * against the CPU reference, bandwidth sensitivity, folding and the
 * ART+DIST psum round-trip.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "engine/accelerator.hpp"
#include "tensor/reference.hpp"

namespace stonne {
namespace {

LayerSpec
convLayer(index_t r, index_t c, index_t k, index_t xy, index_t stride = 1,
          index_t pad = 0, index_t g = 1)
{
    Conv2dShape shape;
    shape.R = r;
    shape.S = r;
    shape.C = c;
    shape.K = k;
    shape.G = g;
    shape.X = xy;
    shape.Y = xy;
    shape.stride = stride;
    shape.padding = pad;
    return LayerSpec::convolution("conv", shape);
}

struct ConvData {
    Tensor input, weights, bias, output;
    explicit ConvData(const Conv2dShape &s, std::uint64_t seed = 1)
        : input({s.N, s.C, s.X, s.Y}),
          weights({s.K, s.cPerGroup(), s.R, s.S}),
          bias({s.K}),
          output({s.N, s.K, s.outX(), s.outY()})
    {
        Rng rng(seed);
        input.fillUniform(rng);
        weights.fillUniform(rng);
        bias.fillUniform(rng, -0.1f, 0.1f);
    }
};

TEST(DenseFlexible, ConvolutionBitMatchesReference)
{
    Accelerator acc(HardwareConfig::maeriLike(64, 16));
    const LayerSpec layer = convLayer(3, 4, 6, 8, 1, 1);
    ConvData d(layer.conv);
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    acc.denseController().runConvolution(layer, tile, d.input, d.weights,
                                         d.bias, d.output);
    const Tensor expect =
        ref::conv2d(d.input, d.weights, d.bias, layer.conv);
    EXPECT_TRUE(d.output.equals(expect));
}

TEST(DenseFlexible, FoldedConvolutionBitMatchesReference)
{
    // Window (3*3*32 = 288) exceeds the 64-MS array: folding required.
    Accelerator acc(HardwareConfig::maeriLike(64, 16));
    const LayerSpec layer = convLayer(3, 32, 4, 6, 1, 1);
    ConvData d(layer.conv, 2);
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    const ControllerResult r = acc.denseController().runConvolution(
        layer, tile, d.input, d.weights, d.bias, d.output);
    EXPECT_TRUE(d.output.equals(
        ref::conv2d(d.input, d.weights, d.bias, layer.conv)));
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.macs, static_cast<count_t>(layer.conv.macs()));
}

TEST(DenseFlexible, GroupedConvolutionBitMatchesReference)
{
    Accelerator acc(HardwareConfig::maeriLike(64, 16));
    const LayerSpec layer = convLayer(3, 8, 8, 6, 1, 1, /*g=*/4);
    ConvData d(layer.conv, 3);
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    acc.denseController().runConvolution(layer, tile, d.input, d.weights,
                                         d.bias, d.output);
    EXPECT_TRUE(d.output.equals(
        ref::conv2d(d.input, d.weights, d.bias, layer.conv)));
}

TEST(DenseFlexible, StridedConvolutionBitMatchesReference)
{
    Accelerator acc(HardwareConfig::maeriLike(128, 32));
    const LayerSpec layer = convLayer(5, 3, 4, 11, 2, 2);
    ConvData d(layer.conv, 4);
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    acc.denseController().runConvolution(layer, tile, d.input, d.weights,
                                         d.bias, d.output);
    EXPECT_TRUE(d.output.equals(
        ref::conv2d(d.input, d.weights, d.bias, layer.conv)));
}

TEST(DenseFlexible, LowerBandwidthCostsMoreCycles)
{
    // A 1x1 convolution has no sliding-window reuse, so every step
    // streams its full operand set: delivery bandwidth gates it.
    const LayerSpec layer = convLayer(1, 64, 16, 16, 1, 0);
    cycle_t cycles_full = 0, cycles_quarter = 0;
    {
        Accelerator acc(HardwareConfig::maeriLike(128, 128));
        ConvData d(layer.conv, 5);
        const Tile tile =
            acc.denseController().mapper().generateTile(layer);
        cycles_full = acc.denseController().runConvolution(
            layer, tile, d.input, d.weights, d.bias, d.output).cycles;
    }
    {
        Accelerator acc(HardwareConfig::maeriLike(128, 8));
        ConvData d(layer.conv, 5);
        const Tile tile =
            acc.denseController().mapper().generateTile(layer);
        cycles_quarter = acc.denseController().runConvolution(
            layer, tile, d.input, d.weights, d.bias, d.output).cycles;
    }
    EXPECT_GT(cycles_quarter, cycles_full * 2);
}

TEST(DenseFlexible, ForwardingLinksCutGbTraffic)
{
    // The LMN reuses the sliding-window overlap; forwarding activity
    // must show up and reduce GB reads versus the window volume.
    Accelerator acc(HardwareConfig::maeriLike(128, 32));
    const LayerSpec layer = convLayer(3, 2, 2, 16, 1, 1);
    ConvData d(layer.conv, 6);
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    acc.denseController().runConvolution(layer, tile, d.input, d.weights,
                                         d.bias, d.output);
    EXPECT_GT(acc.stats().value("mn.forward_ops"), 0u);
    EXPECT_LT(acc.stats().value("gb.reads"),
              static_cast<count_t>(layer.conv.macs()));
}

TEST(DenseFlexible, ArtDistRoundTripsPsums)
{
    // Plain ART (no accumulation buffer) with folding: psums must
    // travel back through the GB and the MN forwarders.
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.rn_type = RnType::Art;
    Accelerator acc(cfg);
    const LayerSpec layer = convLayer(3, 32, 2, 5, 1, 1);
    ConvData d(layer.conv, 7);
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    acc.denseController().runConvolution(layer, tile, d.input, d.weights,
                                         d.bias, d.output);
    EXPECT_TRUE(d.output.equals(
        ref::conv2d(d.input, d.weights, d.bias, layer.conv)));
    EXPECT_GT(acc.stats().value("mn.psum_forwards"), 0u);
    EXPECT_EQ(acc.stats().value("rn.accumulator_ops"), 0u);
}

TEST(DenseFlexible, GemmBitMatchesReference)
{
    Accelerator acc(HardwareConfig::maeriLike(64, 16));
    Rng rng(8);
    Tensor a({12, 20}), b({20, 15});
    a.fillUniform(rng);
    b.fillUniform(rng);
    Tensor c({12, 15});
    const LayerSpec layer = LayerSpec::gemmLayer("g", 12, 15, 20);
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    acc.denseController().runGemm(layer, tile, a, b, c);
    EXPECT_TRUE(c.equals(ref::gemm(a, b)));
}

TEST(DenseFlexible, LinearBitMatchesReference)
{
    Accelerator acc(HardwareConfig::maeriLike(64, 16));
    Rng rng(9);
    Tensor in({3, 24}), w({10, 24}), bias({10});
    in.fillUniform(rng);
    w.fillUniform(rng);
    bias.fillUniform(rng);
    Tensor out({3, 10});
    const LayerSpec layer = LayerSpec::linear("fc", 3, 24, 10);
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    acc.denseController().runLinear(layer, tile, in, w, bias, out);
    EXPECT_TRUE(out.equals(ref::linear(in, w, bias)));
}

TEST(DenseFlexible, MaxPoolMatchesReference)
{
    Accelerator acc(HardwareConfig::maeriLike(64, 16));
    Rng rng(10);
    Tensor in({1, 6, 8, 8});
    in.fillUniform(rng);
    Conv2dShape shape;
    shape.C = 6;
    shape.X = 8;
    shape.Y = 8;
    const LayerSpec layer = LayerSpec::maxPool("pool", shape, 2, 2);
    Tensor out({1, 6, 4, 4});
    const ControllerResult r =
        acc.denseController().runMaxPool(layer, in, out);
    EXPECT_TRUE(out.equals(ref::maxPool2d(in, 2, 2)));
    EXPECT_GT(r.cycles, 0u);
}

TEST(DenseSystolic, ConvolutionBitMatchesReference)
{
    Accelerator acc(HardwareConfig::tpuLike(64));
    const LayerSpec layer = convLayer(3, 4, 6, 8, 1, 1);
    ConvData d(layer.conv, 11);
    const Tile tile;
    acc.denseController().runConvolution(layer, tile, d.input, d.weights,
                                         d.bias, d.output);
    EXPECT_TRUE(d.output.equals(
        ref::conv2d(d.input, d.weights, d.bias, layer.conv)));
}

TEST(DenseSystolic, MaxPoolIsRejected)
{
    Accelerator acc(HardwareConfig::tpuLike(64));
    Conv2dShape shape;
    shape.C = 4;
    shape.X = 8;
    shape.Y = 8;
    const LayerSpec layer = LayerSpec::maxPool("pool", shape, 2, 2);
    Tensor in({1, 4, 8, 8}), out({1, 4, 4, 4});
    EXPECT_THROW(acc.denseController().runMaxPool(layer, in, out),
                 FatalError);
}

TEST(DenseController, UtilizationIsBounded)
{
    Accelerator acc(HardwareConfig::maeriLike(128, 32));
    const LayerSpec layer = convLayer(3, 8, 8, 10, 1, 1);
    ConvData d(layer.conv, 12);
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    const ControllerResult r = acc.denseController().runConvolution(
        layer, tile, d.input, d.weights, d.bias, d.output);
    EXPECT_GT(r.ms_utilization, 0.0);
    EXPECT_LE(r.ms_utilization, 1.0);
}

TEST(DenseController, RejectsWrongOutputShape)
{
    Accelerator acc(HardwareConfig::maeriLike(64, 16));
    const LayerSpec layer = convLayer(3, 4, 6, 8, 1, 1);
    ConvData d(layer.conv, 13);
    Tensor bad({1, 6, 3, 3});
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    EXPECT_THROW(acc.denseController().runConvolution(
                     layer, tile, d.input, d.weights, d.bias, bad),
                 FatalError);
}

} // namespace
} // namespace stonne
