/**
 * @file
 * Unit tests for the tensor substrate: dense tensors, im2col lowering,
 * sparse formats, pruning and the reference CPU kernels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "tensor/im2col.hpp"
#include "tensor/prune.hpp"
#include "tensor/reference.hpp"
#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"

namespace stonne {
namespace {

TEST(Tensor, ZeroInitialized)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.size(), 6);
    for (index_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, FourDimensionalIndexing)
{
    Tensor t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 9.0f;
    EXPECT_EQ(t.at(t.size() - 1), 9.0f);
    t.at(0, 0, 0, 0) = 1.0f;
    EXPECT_EQ(t.at(static_cast<index_t>(0)), 1.0f);
}

TEST(Tensor, OutOfRangePanics)
{
    Tensor t({2, 2});
    EXPECT_THROW(t.at(2, 0), PanicError);
    EXPECT_THROW(t.at(static_cast<index_t>(4)), PanicError);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 6});
    for (index_t i = 0; i < t.size(); ++i)
        t.at(i) = static_cast<float>(i);
    const Tensor r = t.reshaped({3, 4});
    for (index_t i = 0; i < r.size(); ++i)
        EXPECT_EQ(r.at(i), static_cast<float>(i));
    EXPECT_THROW(t.reshaped({5, 5}), FatalError);
}

TEST(Tensor, SparsityCountsExactZeros)
{
    Tensor t({4});
    t.at(static_cast<index_t>(1)) = 2.0f;
    EXPECT_EQ(t.nnz(), 1);
    EXPECT_DOUBLE_EQ(t.sparsity(), 0.75);
}

TEST(Im2col, IdentityOneByOneConv)
{
    // 1x1 convolution: im2col is just a channel-major reshuffle.
    Conv2dShape s;
    s.C = 2;
    s.K = 1;
    s.X = 2;
    s.Y = 2;
    Tensor in({1, 2, 2, 2});
    for (index_t i = 0; i < in.size(); ++i)
        in.at(i) = static_cast<float>(i + 1);
    const Tensor m = im2col(in, s, 0);
    ASSERT_EQ(m.dim(0), 2);
    ASSERT_EQ(m.dim(1), 4);
    EXPECT_EQ(m.at(0, 0), in.at(0, 0, 0, 0));
    EXPECT_EQ(m.at(1, 3), in.at(0, 1, 1, 1));
}

TEST(Im2col, GemmOnPatchesEqualsDirectConv)
{
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.C = 4;
    s.K = 5;
    s.N = 2;
    s.X = 7;
    s.Y = 6;
    s.stride = 2;
    s.padding = 1;
    Rng rng(3);
    Tensor in({s.N, s.C, s.X, s.Y});
    in.fillUniform(rng);
    Tensor w({s.K, s.C, s.R, s.S});
    w.fillUniform(rng);

    const Tensor direct = ref::conv2d(in, w, Tensor(), s);

    const Tensor a = filtersToMatrix(w, s, 0);
    const Tensor b = im2col(in, s, 0);
    const Tensor c = ref::gemm(a, b);
    Tensor out({s.N, s.K, s.outX(), s.outY()});
    col2im(c, s, 0, out);

    EXPECT_LT(direct.maxAbsDiff(out), 1e-5);
}

TEST(Im2col, GroupedConvolutionPerGroupLowering)
{
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.C = 4;
    s.K = 6;
    s.G = 2;
    s.X = 5;
    s.Y = 5;
    s.padding = 1;
    Rng rng(5);
    Tensor in({1, s.C, s.X, s.Y});
    in.fillUniform(rng);
    Tensor w({s.K, s.cPerGroup(), s.R, s.S});
    w.fillUniform(rng);

    const Tensor direct = ref::conv2d(in, w, Tensor(), s);
    Tensor out({1, s.K, s.outX(), s.outY()});
    for (index_t g = 0; g < s.G; ++g) {
        const Tensor a = filtersToMatrix(w, s, g);
        const Tensor b = im2col(in, s, g);
        col2im(ref::gemm(a, b), s, g, out);
    }
    EXPECT_LT(direct.maxAbsDiff(out), 1e-5);
}

TEST(Im2col, PaddingProducesZeroRows)
{
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.X = 3;
    s.Y = 3;
    s.padding = 1;
    Tensor in({1, 1, 3, 3});
    in.fill(5.0f);
    const Tensor m = im2col(in, s, 0);
    // The top-left output's first patch element is padding.
    EXPECT_EQ(m.at(0, 0), 0.0f);
    // The centre output sees no padding.
    EXPECT_EQ(m.at(0, 4), 5.0f);
}

TEST(Sparse, CsrRoundTrip)
{
    Rng rng(11);
    Tensor d({6, 9});
    d.fillUniform(rng);
    pruneRandom(d, 0.5, rng);
    const CsrMatrix m = CsrMatrix::fromDense(d);
    EXPECT_EQ(m.nnz(), d.nnz());
    EXPECT_TRUE(m.toDense().equals(d));
}

TEST(Sparse, BitmapRoundTrip)
{
    Rng rng(12);
    Tensor d({5, 7});
    d.fillUniform(rng);
    pruneRandom(d, 0.6, rng);
    const BitmapMatrix m = BitmapMatrix::fromDense(d);
    EXPECT_EQ(m.nnz(), d.nnz());
    EXPECT_TRUE(m.toDense().equals(d));
}

TEST(Sparse, RowNnzSizes)
{
    Tensor d({3, 4});
    d.at(0, 1) = 1.0f;
    d.at(2, 0) = 1.0f;
    d.at(2, 3) = 1.0f;
    const auto sizes = rowNnzSizes(CsrMatrix::fromDense(d));
    ASSERT_EQ(sizes.size(), 3u);
    EXPECT_EQ(sizes[0], 1);
    EXPECT_EQ(sizes[1], 0);
    EXPECT_EQ(sizes[2], 2);
}

TEST(Sparse, StorageFootprints)
{
    Tensor d({4, 8});
    d.at(0, 0) = 1.0f;
    d.at(3, 7) = 1.0f;
    const CsrMatrix csr = CsrMatrix::fromDense(d);
    const BitmapMatrix bm = BitmapMatrix::fromDense(d);
    // CSR: 2 values + 2 col indices + 5 row pointers (4B indices).
    EXPECT_EQ(csr.storageBytes(1), 2 * (1 + 4) + 5 * 4);
    // Bitmap: 2 values + 32 bits of presence.
    EXPECT_EQ(bm.storageBytes(1), 2 + 4);
}

TEST(Prune, HitsExactTargetRatio)
{
    Rng rng(13);
    Tensor t({1000});
    t.fillNormal(rng);
    pruneMagnitude(t, 0.7);
    EXPECT_EQ(t.nnz(), 300);
}

TEST(Prune, KeepsLargestMagnitudes)
{
    Tensor t({4});
    t.at(static_cast<index_t>(0)) = 0.1f;
    t.at(static_cast<index_t>(1)) = -5.0f;
    t.at(static_cast<index_t>(2)) = 0.2f;
    t.at(static_cast<index_t>(3)) = 3.0f;
    pruneMagnitude(t, 0.5);
    EXPECT_EQ(t.at(static_cast<index_t>(0)), 0.0f);
    EXPECT_EQ(t.at(static_cast<index_t>(1)), -5.0f);
    EXPECT_EQ(t.at(static_cast<index_t>(2)), 0.0f);
    EXPECT_EQ(t.at(static_cast<index_t>(3)), 3.0f);
}

TEST(Prune, JitterVariesPerFilterButAveragesToTarget)
{
    Rng rng(17);
    Tensor t({32, 64});
    t.fillNormal(rng);
    pruneFiltersWithJitter(t, 0.8, 0.15, rng);
    const double overall = t.sparsity();
    EXPECT_NEAR(overall, 0.8, 0.05);
    // Per-filter nnz must actually vary (the Fig 7b effect).
    index_t mn = 64, mx = 0;
    for (index_t k = 0; k < 32; ++k) {
        index_t nnz = 0;
        for (index_t j = 0; j < 64; ++j)
            if (t.at(k, j) != 0.0f)
                ++nnz;
        mn = std::min(mn, nnz);
        mx = std::max(mx, nnz);
    }
    EXPECT_GT(mx - mn, 4);
}

TEST(Prune, RejectsFullSparsity)
{
    Tensor t({10});
    t.fill(1.0f);
    EXPECT_THROW(pruneMagnitude(t, 1.0), FatalError);
}

TEST(Reference, GemmMatchesManual)
{
    Tensor a({2, 3}), b({3, 2});
    for (index_t i = 0; i < a.size(); ++i)
        a.at(i) = static_cast<float>(i + 1);
    for (index_t i = 0; i < b.size(); ++i)
        b.at(i) = static_cast<float>(i + 1);
    const Tensor c = ref::gemm(a, b);
    EXPECT_EQ(c.at(0, 0), 1 * 1 + 2 * 3 + 3 * 5);
    EXPECT_EQ(c.at(1, 1), 4 * 2 + 5 * 4 + 6 * 6);
}

TEST(Reference, SpmmEqualsDenseGemm)
{
    Rng rng(19);
    Tensor a({8, 12});
    a.fillUniform(rng);
    pruneRandom(a, 0.6, rng);
    Tensor b({12, 5});
    b.fillUniform(rng);
    const Tensor dense = ref::gemm(a, b);
    const Tensor sparse = ref::spmm(CsrMatrix::fromDense(a), b);
    EXPECT_LT(dense.maxAbsDiff(sparse), 1e-5);
}

TEST(Reference, MaxPoolPicksWindowMaxima)
{
    Tensor in({1, 1, 4, 4});
    for (index_t i = 0; i < 16; ++i)
        in.at(i) = static_cast<float>(i);
    const Tensor out = ref::maxPool2d(in, 2, 2);
    EXPECT_EQ(out.at(0, 0, 0, 0), 5.0f);
    EXPECT_EQ(out.at(0, 0, 1, 1), 15.0f);
}

TEST(Reference, ReluClampsNegatives)
{
    Tensor t({3});
    t.at(static_cast<index_t>(0)) = -1.0f;
    t.at(static_cast<index_t>(1)) = 0.0f;
    t.at(static_cast<index_t>(2)) = 2.0f;
    const Tensor r = ref::relu(t);
    EXPECT_EQ(r.at(static_cast<index_t>(0)), 0.0f);
    EXPECT_EQ(r.at(static_cast<index_t>(2)), 2.0f);
}

TEST(Reference, SoftmaxRowsSumToOne)
{
    Rng rng(23);
    Tensor t({4, 10});
    t.fillUniform(rng, -5.0f, 5.0f);
    const Tensor s = ref::softmax(t);
    for (index_t i = 0; i < 4; ++i) {
        float sum = 0.0f;
        for (index_t j = 0; j < 10; ++j) {
            sum += s.at(i, j);
            EXPECT_GE(s.at(i, j), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Reference, LayerNormZeroMeanUnitVar)
{
    Rng rng(29);
    Tensor t({3, 64});
    t.fillUniform(rng, -4.0f, 9.0f);
    const Tensor n = ref::layerNorm(t);
    for (index_t i = 0; i < 3; ++i) {
        float mean = 0.0f, var = 0.0f;
        for (index_t j = 0; j < 64; ++j)
            mean += n.at(i, j);
        mean /= 64.0f;
        for (index_t j = 0; j < 64; ++j)
            var += (n.at(i, j) - mean) * (n.at(i, j) - mean);
        var /= 64.0f;
        EXPECT_NEAR(mean, 0.0f, 1e-4f);
        EXPECT_NEAR(var, 1.0f, 1e-2f);
    }
}

TEST(Reference, GlobalAvgPoolAverages)
{
    Tensor in({1, 2, 2, 2});
    for (index_t i = 0; i < 8; ++i)
        in.at(i) = static_cast<float>(i);
    const Tensor out = ref::globalAvgPool(in);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1.5f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), 5.5f);
}

TEST(Reference, ConvStrideAndPaddingShapes)
{
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.X = 7;
    s.Y = 7;
    s.stride = 2;
    s.padding = 1;
    EXPECT_EQ(s.outX(), 4);
    EXPECT_EQ(s.outY(), 4);
    EXPECT_EQ(s.macs(), 4 * 4 * 9);
}

TEST(Reference, ConvRejectsOversizedFilter)
{
    Conv2dShape s;
    s.R = 5;
    s.S = 5;
    s.X = 3;
    s.Y = 3;
    EXPECT_THROW(s.validate(), FatalError);
}

} // namespace
} // namespace stonne
