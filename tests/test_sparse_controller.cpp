/**
 * @file
 * Integration tests for the sparse (SIGMA-like) memory controller:
 * functional exactness, data-dependent timing, format front doors and
 * scheduling interactions.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "engine/accelerator.hpp"
#include "tensor/prune.hpp"
#include "tensor/reference.hpp"

namespace stonne {
namespace {

Tensor
sparseMatrix(index_t rows, index_t cols, double sparsity,
             std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t({rows, cols});
    t.fillUniform(rng);
    if (sparsity > 0.0)
        pruneFiltersWithJitter(t, sparsity, 0.1, rng);
    return t;
}

TEST(SparseController, SpmmBitMatchesReference)
{
    Accelerator acc(HardwareConfig::sigmaLike(64, 32));
    const Tensor a = sparseMatrix(16, 32, 0.7, 1);
    Rng rng(2);
    Tensor b({32, 10});
    b.fillUniform(rng);
    Tensor c({16, 10});
    acc.sparseController().runSpMMDense(a, b, c);
    EXPECT_TRUE(c.equals(ref::gemm(a, b)));
}

TEST(SparseController, DenseInputStillWorks)
{
    Accelerator acc(HardwareConfig::sigmaLike(64, 64));
    const Tensor a = sparseMatrix(8, 16, 0.0, 3);
    Rng rng(4);
    Tensor b({16, 6});
    b.fillUniform(rng);
    Tensor c({8, 6});
    const ControllerResult r =
        acc.sparseController().runSpMMDense(a, b, c);
    EXPECT_TRUE(c.equals(ref::gemm(a, b)));
    EXPECT_EQ(r.macs, 8u * 16u * 6u);
}

TEST(SparseController, BitmapFrontDoorMatchesCsr)
{
    const Tensor a = sparseMatrix(12, 24, 0.6, 5);
    Rng rng(6);
    Tensor b({24, 8});
    b.fillUniform(rng);

    Tensor c_csr({12, 8}), c_bm({12, 8});
    cycle_t cycles_csr = 0, cycles_bm = 0;
    {
        Accelerator acc(HardwareConfig::sigmaLike(64, 32));
        cycles_csr = acc.sparseController()
            .runSpMM(CsrMatrix::fromDense(a), b, c_csr).cycles;
    }
    {
        Accelerator acc(HardwareConfig::sigmaLike(64, 32));
        cycles_bm = acc.sparseController()
            .runSpMM(BitmapMatrix::fromDense(a), b, c_bm).cycles;
    }
    EXPECT_TRUE(c_csr.equals(c_bm));
    EXPECT_EQ(cycles_csr, cycles_bm);
}

TEST(SparseController, SparserMatrixRunsFaster)
{
    Rng rng(7);
    Tensor b({64, 32});
    b.fillUniform(rng);

    auto run = [&](double sparsity) {
        Accelerator acc(HardwareConfig::sigmaLike(128, 64));
        const Tensor a = sparseMatrix(64, 64, sparsity, 8);
        Tensor c({64, 32});
        return acc.sparseController().runSpMMDense(a, b, c).cycles;
    };

    const cycle_t dense = run(0.0);
    const cycle_t half = run(0.5);
    const cycle_t ninety = run(0.9);
    EXPECT_GT(dense, half);
    EXPECT_GT(half, ninety);
}

TEST(SparseController, ZeroDistributionAffectsTiming)
{
    // Same aggregate nnz, different per-row distributions -> different
    // cycle counts: the data dependence Fig 1c says analytical models
    // cannot capture.
    const index_t m = 32, k = 64, n = 16;
    Rng rng(9);
    Tensor b({k, n});
    b.fillUniform(rng);

    // Uniform: every row 16 nnz. Skewed: the first half of the rows
    // hold 28, the second half 4 — the same aggregate nnz.
    Tensor uniform({m, k}), skewed({m, k});
    for (index_t r = 0; r < m; ++r) {
        for (index_t j = 0; j < 16; ++j)
            uniform.at(r, (r * 7 + j * 3) % k) = 1.0f + 0.01f *
                static_cast<float>(j);
        const index_t nnz = r < m / 2 ? 28 : 4;
        for (index_t j = 0; j < nnz; ++j)
            skewed.at(r, (r * 5 + j * 2) % k) = 1.0f;
    }
    ASSERT_EQ(uniform.nnz(), skewed.nnz());

    cycle_t cyc_uniform = 0, cyc_skewed = 0;
    {
        Accelerator acc(HardwareConfig::sigmaLike(64, 32));
        Tensor c({m, n});
        cyc_uniform =
            acc.sparseController().runSpMMDense(uniform, b, c).cycles;
    }
    {
        Accelerator acc(HardwareConfig::sigmaLike(64, 32));
        Tensor c({m, n});
        cyc_skewed =
            acc.sparseController().runSpMMDense(skewed, b, c).cycles;
    }
    EXPECT_NE(cyc_uniform, cyc_skewed);
}

TEST(SparseController, FullyPrunedRowsEmitZeros)
{
    Accelerator acc(HardwareConfig::sigmaLike(64, 32));
    Tensor a({4, 8});
    a.at(0, 1) = 2.0f;
    a.at(2, 3) = 3.0f; // rows 1 and 3 are all zero
    Rng rng(10);
    Tensor b({8, 5});
    b.fillUniform(rng);
    Tensor c({4, 5});
    acc.sparseController().runSpMMDense(a, b, c);
    for (index_t j = 0; j < 5; ++j) {
        EXPECT_EQ(c.at(1, j), 0.0f);
        EXPECT_EQ(c.at(3, j), 0.0f);
    }
    EXPECT_TRUE(c.equals(ref::gemm(a, b)));
}

TEST(SparseController, OversizedRowFoldsAcrossRounds)
{
    Accelerator acc(HardwareConfig::sigmaLike(64, 32));
    // One dense row of 128 nnz on a 64-MS array: two folded chunks.
    const Tensor a = sparseMatrix(1, 128, 0.0, 11);
    Rng rng(12);
    Tensor b({128, 4});
    b.fillUniform(rng);
    Tensor c({1, 4});
    acc.sparseController().runSpMMDense(a, b, c);
    EXPECT_TRUE(c.equals(ref::gemm(a, b)));
    EXPECT_GE(acc.sparseController().lastRounds().size(), 2u);
}

TEST(SparseController, SkipZeroActivationsSavesWork)
{
    const Tensor a = sparseMatrix(16, 32, 0.5, 13);
    Rng rng(14);
    Tensor b({32, 12});
    b.fillUniform(rng);
    pruneRandom(b, 0.5, rng);

    Accelerator acc(HardwareConfig::sigmaLike(64, 32));
    Tensor c({16, 12});
    const ControllerResult r = acc.sparseController().runSpMMDense(
        a, b, c, SchedulingPolicy::None, /*skip_zero=*/true);
    EXPECT_TRUE(c.equals(ref::gemm(a, b)));
    EXPECT_GT(r.skipped_macs, 0u);
}

TEST(SparseController, SchedulingPreservesFunctionalResults)
{
    const Tensor a = sparseMatrix(32, 48, 0.8, 15);
    Rng rng(16);
    Tensor b({48, 9});
    b.fillUniform(rng);
    const Tensor expect = ref::gemm(a, b);

    for (const auto policy :
         {SchedulingPolicy::None, SchedulingPolicy::Random,
          SchedulingPolicy::LargestFirst}) {
        Accelerator acc(HardwareConfig::sigmaLike(64, 32));
        Tensor c({32, 9});
        acc.sparseController().runSpMMDense(a, b, c, policy);
        EXPECT_TRUE(c.equals(expect))
            << "policy " << schedulingPolicyName(policy);
    }
}

TEST(SparseController, LffNeverSlowerThanNaturalOrder)
{
    const Tensor a = sparseMatrix(64, 64, 0.85, 17);
    Rng rng(18);
    Tensor b({64, 20});
    b.fillUniform(rng);

    auto run = [&](SchedulingPolicy p) {
        Accelerator acc(HardwareConfig::sigmaLike(64, 32));
        Tensor c({64, 20});
        return acc.sparseController().runSpMMDense(a, b, c, p).cycles;
    };
    EXPECT_LE(run(SchedulingPolicy::LargestFirst),
              run(SchedulingPolicy::None));
}

TEST(SparseController, MismatchedShapesAreFatal)
{
    Accelerator acc(HardwareConfig::sigmaLike(64, 32));
    const Tensor a = sparseMatrix(4, 8, 0.0, 19);
    Tensor b({9, 4});
    Tensor c({4, 4});
    EXPECT_THROW(acc.sparseController().runSpMMDense(a, b, c),
                 FatalError);
}

} // namespace
} // namespace stonne
