/**
 * @file
 * Tests for the front-end: model zoo construction, graph invariants,
 * and the paper's functional validation — full-model simulated
 * inference must match native CPU execution.
 */

#include <gtest/gtest.h>

#include "frontend/model_zoo.hpp"
#include "frontend/runner.hpp"

namespace stonne {
namespace {

TEST(ModelZoo, AllSevenModelsBuildAtTinyScale)
{
    for (const ModelId id : allModels()) {
        const DnnModel m = buildModel(id, ModelScale::Tiny);
        EXPECT_FALSE(m.layers.empty()) << modelName(id);
        EXPECT_GT(m.totalMacs(), 0) << modelName(id);
        EXPECT_GT(m.offloadableLayers(), 0) << modelName(id);
    }
}

TEST(ModelZoo, MeasuredSparsityNearTableITarget)
{
    for (const ModelId id : allModels()) {
        const DnnModel m = buildModel(id, ModelScale::Bench);
        EXPECT_NEAR(m.measuredWeightSparsity(), modelSparsity(id), 0.08)
            << modelName(id);
    }
}

TEST(ModelZoo, DeterministicAcrossBuilds)
{
    const DnnModel a = buildModel(ModelId::SqueezeNet, ModelScale::Tiny);
    const DnnModel b = buildModel(ModelId::SqueezeNet, ModelScale::Tiny);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t i = 0; i < a.layers.size(); ++i) {
        if (!a.layers[i].weights.empty()) {
            EXPECT_TRUE(a.layers[i].weights.equals(b.layers[i].weights));
        }
    }
}

TEST(ModelZoo, DominantLayerTypesMatchTableI)
{
    // MobileNets: factorized (grouped) convolutions dominate.
    const DnnModel m = buildModel(ModelId::MobileNetV1, ModelScale::Tiny);
    index_t depthwise = 0;
    for (const DnnLayer &l : m.layers)
        if (l.op == OpType::Conv2d && l.spec.conv.G > 1)
            ++depthwise;
    EXPECT_GE(depthwise, 10);

    // BERT: transformer blocks plus linear layers.
    const DnnModel b = buildModel(ModelId::Bert, ModelScale::Tiny);
    index_t attn = 0, lin = 0;
    for (const DnnLayer &l : b.layers) {
        attn += l.op == OpType::SelfAttention;
        lin += l.op == OpType::Linear;
    }
    EXPECT_GE(attn, 1);
    EXPECT_GE(lin, 3);

    // ResNet: residual additions present.
    const DnnModel r = buildModel(ModelId::ResNet50, ModelScale::Tiny);
    index_t adds = 0;
    for (const DnnLayer &l : r.layers)
        adds += l.op == OpType::AddResidual;
    EXPECT_GE(adds, 4);

    // SqueezeNet: fire-module concatenations present.
    const DnnModel s = buildModel(ModelId::SqueezeNet, ModelScale::Tiny);
    index_t concats = 0;
    for (const DnnLayer &l : s.layers)
        concats += l.op == OpType::Concat;
    EXPECT_GE(concats, 8);
}

TEST(ModelZoo, GraphRoutingReferencesAreSaved)
{
    for (const ModelId id : allModels()) {
        const DnnModel m = buildModel(id, ModelScale::Tiny);
        for (const DnnLayer &l : m.layers) {
            if (l.input_from >= 0) {
                EXPECT_TRUE(m.layers[static_cast<std::size_t>(
                    l.input_from)].save_output);
            }
            if (l.operand_from >= 0) {
                EXPECT_TRUE(m.layers[static_cast<std::size_t>(
                    l.operand_from)].save_output);
            }
        }
    }
}

TEST(ModelZoo, InputsMatchModelDomain)
{
    const Tensor img =
        makeModelInput(ModelId::AlexNet, ModelScale::Tiny);
    EXPECT_EQ(img.rank(), 4);
    EXPECT_EQ(img.dim(1), 3);
    // Vision inputs are non-negative (the SNAPEA requirement).
    for (index_t i = 0; i < img.size(); ++i)
        EXPECT_GE(img.at(i), 0.0f);

    const Tensor txt = makeModelInput(ModelId::Bert, ModelScale::Tiny);
    EXPECT_EQ(txt.rank(), 2);
}

// The paper's functional validation: simulated full-model inference
// must exactly match the native CPU run (Section V).
class FunctionalValidation
    : public ::testing::TestWithParam<std::tuple<ModelId, int>>
{
};

TEST_P(FunctionalValidation, SimulatedMatchesNative)
{
    const ModelId id = std::get<0>(GetParam());
    const int arch = std::get<1>(GetParam());
    const HardwareConfig cfg =
        arch == 0 ? HardwareConfig::maeriLike(64, 16)
        : arch == 1 ? HardwareConfig::sigmaLike(64, 32)
                    : HardwareConfig::tpuLike(64);

    const DnnModel model = buildModel(id, ModelScale::Tiny);
    const Tensor input = makeModelInput(id, ModelScale::Tiny);
    ModelRunner runner(model, cfg);
    const Tensor sim = runner.run(input);
    const Tensor native = runner.runNative(input);
    EXPECT_TRUE(sim.equals(native))
        << modelName(id) << " on " << cfg.name
        << " max diff " << sim.maxAbsDiff(native);
    EXPECT_GT(runner.total().cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllArchs, FunctionalValidation,
    ::testing::Combine(::testing::ValuesIn(allModels()),
                       ::testing::Values(0, 1, 2)),
    [](const auto &info) {
        const ModelId id = std::get<0>(info.param);
        const int arch = std::get<1>(info.param);
        std::string name = modelName(id);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name + (arch == 0 ? "_MAERI" : arch == 1 ? "_SIGMA"
                                                        : "_TPU");
    });

TEST(Runner, RecordsSeparateOffloadedFromNative)
{
    const DnnModel model =
        buildModel(ModelId::AlexNet, ModelScale::Tiny);
    const Tensor input = makeModelInput(ModelId::AlexNet,
                                        ModelScale::Tiny);
    ModelRunner runner(model, HardwareConfig::maeriLike(64, 16));
    runner.run(input);
    index_t offloaded = 0, native = 0;
    for (const LayerRunRecord &r : runner.records())
        (r.offloaded ? offloaded : native) += 1;
    EXPECT_GT(offloaded, 4);
    EXPECT_GT(native, 2); // ReLU / softmax ran natively
}

TEST(Runner, PoolingFallsBackToNativeOnSigma)
{
    const DnnModel model =
        buildModel(ModelId::AlexNet, ModelScale::Tiny);
    const Tensor input = makeModelInput(ModelId::AlexNet,
                                        ModelScale::Tiny);
    ModelRunner runner(model, HardwareConfig::sigmaLike(64, 32));
    runner.run(input);
    for (const LayerRunRecord &r : runner.records()) {
        if (r.op == OpType::MaxPool2d) {
            EXPECT_FALSE(r.offloaded);
        }
    }
}

TEST(Runner, SnapeaFullModelMatchesNativeWithinTolerance)
{
    // Sorted-order accumulation reorders float additions, so SNAPEA is
    // validated with a tolerance rather than bit-exactly.
    const DnnModel model =
        buildModel(ModelId::SqueezeNet, ModelScale::Tiny);
    const Tensor input = makeModelInput(ModelId::SqueezeNet,
                                        ModelScale::Tiny);
    ModelRunner runner(model, HardwareConfig::snapeaLike(64, 64));
    const Tensor sim = runner.run(input);
    const Tensor native = runner.runNative(input);
    EXPECT_LT(sim.maxAbsDiff(native), 1e-2)
        << "max diff " << sim.maxAbsDiff(native);
}

TEST(Runner, TotalAggregatesAllOffloads)
{
    const DnnModel model = buildModel(ModelId::Vgg16, ModelScale::Tiny);
    const Tensor input = makeModelInput(ModelId::Vgg16,
                                        ModelScale::Tiny);
    ModelRunner runner(model, HardwareConfig::maeriLike(64, 16));
    runner.run(input);
    cycle_t sum = 0;
    for (const LayerRunRecord &r : runner.records())
        if (r.offloaded)
            sum += r.sim.cycles;
    EXPECT_EQ(runner.total().cycles, sum);
}

} // namespace
} // namespace stonne
