/**
 * @file
 * Tests for the swappable energy/area tables, the per-datatype scaling,
 * the config-file disk round trip and the remaining memory-model
 * corners (DRAM streaming staging, output-module file writing).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/logging.hpp"
#include "engine/output_module.hpp"
#include "engine/stonne_api.hpp"
#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"
#include "mem/dram.hpp"

namespace stonne {
namespace {

TEST(EnergyTable, ParseOverridesOnlyGivenKeys)
{
    const EnergyTable t = EnergyTable::parse(
        "# comment\nmult_pj = 0.5\ngb_read_pj = 2.0\n");
    EXPECT_DOUBLE_EQ(t.mult_pj, 0.5);
    EXPECT_DOUBLE_EQ(t.gb_read_pj, 2.0);
    EXPECT_DOUBLE_EQ(t.adder3_pj, EnergyTable().adder3_pj);
}

TEST(EnergyTable, ParseRejectsGarbage)
{
    EXPECT_THROW(EnergyTable::parse("bogus_pj = 1\n"), FatalError);
    EXPECT_THROW(EnergyTable::parse("mult_pj 0.5\n"), FatalError);
    EXPECT_THROW(EnergyTable::parse("mult_pj = -1\n"), FatalError);
}

TEST(EnergyTable, ShippedTableMatchesDefaults)
{
    const EnergyTable shipped =
        EnergyTable::parseFile("configs/energy_28nm_fp8.table");
    const EnergyTable def;
    EXPECT_DOUBLE_EQ(shipped.mult_pj, def.mult_pj);
    EXPECT_DOUBLE_EQ(shipped.adder3_pj, def.adder3_pj);
    EXPECT_DOUBLE_EQ(shipped.gb_read_pj, def.gb_read_pj);
    EXPECT_DOUBLE_EQ(shipped.leak_pj_um2_cycle, def.leak_pj_um2_cycle);
}

TEST(EnergyTable, DataTypeScalingOrders)
{
    const EnergyTable fp8 = EnergyTable::forDataType(DataType::FP8);
    const EnergyTable fp16 = EnergyTable::forDataType(DataType::FP16);
    const EnergyTable int8 = EnergyTable::forDataType(DataType::INT8);
    EXPECT_LT(int8.mult_pj, fp8.mult_pj);
    EXPECT_LT(fp8.mult_pj, fp16.mult_pj);
}

TEST(EnergyModel, CustomTableChangesTheBill)
{
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    StatsRegistry stats;
    stats.counter("mn.mult_ops", StatGroup::MultiplierNetwork).value =
        1000000;
    EnergyTable expensive;
    expensive.mult_pj = 10.0;
    const double cheap =
        EnergyModel(cfg).compute(stats, 0).mn_uj;
    const double costly =
        EnergyModel(cfg, expensive).compute(stats, 0).mn_uj;
    EXPECT_GT(costly, cheap * 10);
}

TEST(AreaTable, ParseAndShippedFile)
{
    const AreaTable t =
        AreaTable::parse("mult_um2 = 111\ngb_um2_per_kib = 1000\n");
    EXPECT_DOUBLE_EQ(t.mult_um2, 111);
    EXPECT_DOUBLE_EQ(t.gb_um2_per_kib, 1000);
    EXPECT_THROW(AreaTable::parse("nope = 1\n"), FatalError);

    const AreaTable shipped =
        AreaTable::parseFile("configs/area_28nm_fp8.table");
    EXPECT_DOUBLE_EQ(shipped.mult_um2, AreaTable().mult_um2);
}

TEST(AreaModel, CustomTableScalesBreakdown)
{
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    AreaTable big;
    big.gb_um2_per_kib *= 10;
    const AreaBreakdown a = AreaModel(cfg, big).compute();
    const AreaBreakdown d = AreaModel(cfg).compute();
    EXPECT_DOUBLE_EQ(a.gb_um2, 10 * d.gb_um2);
    EXPECT_DOUBLE_EQ(a.mn_um2, d.mn_um2);
}

TEST(ConfigFile, ShippedPresetsParseAndMatchBuilders)
{
    const HardwareConfig maeri =
        HardwareConfig::parseFile("configs/maeri_256.cfg");
    EXPECT_EQ(maeri.dn_type, DnType::Tree);
    EXPECT_EQ(maeri.ms_size, 256);
    EXPECT_EQ(maeri.dn_bandwidth, 128);

    const HardwareConfig sigma =
        HardwareConfig::parseFile("configs/sigma_256.cfg");
    EXPECT_EQ(sigma.controller_type, ControllerType::Sparse);
    EXPECT_EQ(sigma.dataflow, Dataflow::WeightStationary);

    const HardwareConfig tpu =
        HardwareConfig::parseFile("configs/tpu_256.cfg");
    EXPECT_EQ(tpu.dn_type, DnType::PointToPoint);
    EXPECT_EQ(tpu.dn_bandwidth, 256);

    const HardwareConfig snapea =
        HardwareConfig::parseFile("configs/snapea_64.cfg");
    EXPECT_EQ(snapea.controller_type, ControllerType::Snapea);
}

TEST(ConfigFile, MissingFileIsFatal)
{
    EXPECT_THROW(HardwareConfig::parseFile("/nonexistent.cfg"),
                 FatalError);
}

TEST(ConfigFile, WriteParseRoundTripOnDisk)
{
    const std::string path = "/tmp/stonne_roundtrip.cfg";
    HardwareConfig orig = HardwareConfig::sigmaLike(128, 64);
    orig.gb_size_kib = 256;
    orig.data_type = DataType::INT8;
    {
        std::ofstream out(path);
        out << orig.toConfigText();
    }
    const HardwareConfig back = HardwareConfig::parseFile(path);
    EXPECT_EQ(back.ms_size, orig.ms_size);
    EXPECT_EQ(back.gb_size_kib, orig.gb_size_kib);
    EXPECT_EQ(back.data_type, orig.data_type);
    EXPECT_EQ(back.sparse_format, orig.sparse_format);
}

TEST(ConfigFile, CustomTablePathsFlowIntoTheApi)
{
    // An instance configured with a pricier energy table must report
    // more energy for the same operation.
    const std::string table_path = "/tmp/stonne_custom.table";
    {
        std::ofstream out(table_path);
        out << "mult_pj = 25.0\naccumulator_pj = 240.0\n";
    }
    HardwareConfig cheap = HardwareConfig::maeriLike(64, 16);
    HardwareConfig pricey = cheap;
    pricey.energy_table_path = table_path;

    auto run = [](const HardwareConfig &cfg) {
        Stonne st(cfg);
        Rng rng(1);
        Tensor in({2, 16}), w({8, 16});
        in.fillUniform(rng);
        w.fillUniform(rng);
        st.configureLinear(LayerSpec::linear("fc", 2, 16, 8));
        st.configureData(in, w);
        return st.runOperation().energy.total();
    };
    EXPECT_GT(run(pricey), 2.0 * run(cheap));

    // The path round-trips through the config text.
    const HardwareConfig back =
        HardwareConfig::parse(pricey.toConfigText());
    EXPECT_EQ(back.energy_table_path, table_path);
}

TEST(Dram, StreamingStallHidesLatency)
{
    StatsRegistry stats;
    Dram dram(512.0, 1.0, 100, stats); // 512 B/cycle, 100-cycle latency
    // 5120 bytes = 10 serialization cycles. Isolated staging exposes
    // latency + serialization; a prefetch stream only serialization.
    EXPECT_EQ(dram.stagingStall(5120, 0), 110u);
    EXPECT_EQ(dram.streamingStall(5120, 0), 10u);
    EXPECT_EQ(dram.streamingStall(5120, 10), 0u);
    EXPECT_EQ(dram.streamingStall(5120, 4), 6u);
    EXPECT_EQ(dram.streamingStall(0, 0), 0u);
}

TEST(OutputModule, WriteFileRoundTrip)
{
    const std::string path = "/tmp/stonne_counters.txt";
    StatsRegistry stats;
    stats.counter("mn.mult_ops", StatGroup::MultiplierNetwork).value =
        99;
    OutputModule::writeFile(path, OutputModule::counterFile(stats));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("MN mn.mult_ops 99"), std::string::npos);
    EXPECT_THROW(
        OutputModule::writeFile("/nonexistent/dir/file.txt", "x"),
        FatalError);
}

} // namespace
} // namespace stonne
