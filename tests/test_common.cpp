/**
 * @file
 * Unit tests for the common infrastructure: logging, stats registry,
 * JSON writer, hardware configuration, RNG determinism.
 */

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/json_writer.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace stonne {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug ", "here"), PanicError);
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "nope"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "nope"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(Logging, MessageCarriesFormattedArguments)
{
    try {
        fatal("value=", 7, " name=", "x");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: value=7 name=x");
    }
}

TEST(Stats, CountersAccumulate)
{
    StatsRegistry reg;
    StatCounter &c = reg.counter("mn.mult_ops",
                                 StatGroup::MultiplierNetwork);
    c.value += 5;
    c.value += 7;
    EXPECT_EQ(reg.value("mn.mult_ops"), 12u);
}

TEST(Stats, UnknownCounterReadsZero)
{
    StatsRegistry reg;
    EXPECT_EQ(reg.value("does.not.exist"), 0u);
}

TEST(Stats, CounterKindIsStickyAndPreservedByDelta)
{
    StatsRegistry reg;
    reg.counter("gb.reads", StatGroup::GlobalBuffer).value = 4;
    StatCounter &occ = reg.counter("gb.write_queue_occ",
                                   StatGroup::GlobalBuffer,
                                   StatKind::Occupancy);
    occ.value = 9;
    EXPECT_EQ(occ.kind, StatKind::Occupancy);
    // Re-registering with another kind is a modelling bug.
    EXPECT_THROW(reg.counter("gb.write_queue_occ",
                             StatGroup::GlobalBuffer,
                             StatKind::Activity),
                 PanicError);
    const StatsRegistry d = reg.delta(std::vector<count_t>{1, 2});
    EXPECT_EQ(d.value("gb.write_queue_occ"), 7u);
    for (const StatCounter &c : d.counters()) {
        if (c.name == "gb.write_queue_occ") {
            EXPECT_EQ(c.kind, StatKind::Occupancy);
        }
    }
}

TEST(Stats, GroupTotalsSumOnlyOwnGroup)
{
    StatsRegistry reg;
    reg.counter("a", StatGroup::GlobalBuffer).value = 3;
    reg.counter("b", StatGroup::GlobalBuffer).value = 4;
    reg.counter("c", StatGroup::ReductionNetwork).value = 100;
    EXPECT_EQ(reg.groupTotal(StatGroup::GlobalBuffer), 7u);
    EXPECT_EQ(reg.groupTotal(StatGroup::ReductionNetwork), 100u);
    EXPECT_EQ(reg.groupTotal(StatGroup::Dram), 0u);
}

TEST(Stats, ReRegisteringSameNameReturnsSameCounter)
{
    StatsRegistry reg;
    StatCounter &a = reg.counter("x", StatGroup::Other);
    StatCounter &b = reg.counter("x", StatGroup::Other);
    EXPECT_EQ(&a, &b);
}

TEST(Stats, ReRegisteringInDifferentGroupPanics)
{
    StatsRegistry reg;
    reg.counter("x", StatGroup::Other);
    EXPECT_THROW(reg.counter("x", StatGroup::GlobalBuffer), PanicError);
}

TEST(Stats, SnapshotDeltaIsolatesOneOperation)
{
    StatsRegistry reg;
    reg.counter("gb.reads", StatGroup::GlobalBuffer).value = 10;
    const auto before = reg.snapshot();
    reg.counter("gb.reads", StatGroup::GlobalBuffer).value += 25;
    reg.counter("gb.writes", StatGroup::GlobalBuffer).value = 3;
    const StatsRegistry d = reg.delta(before);
    EXPECT_EQ(d.value("gb.reads"), 25u);
    EXPECT_EQ(d.value("gb.writes"), 3u);
}

TEST(Stats, ResetZeroesButKeepsRegistrations)
{
    StatsRegistry reg;
    reg.counter("x", StatGroup::Other).value = 9;
    reg.reset();
    EXPECT_EQ(reg.value("x"), 0u);
    EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(Json, ScalarsRender)
{
    EXPECT_EQ(JsonValue::makeInt(-3).dump(), "-3");
    EXPECT_EQ(JsonValue::makeBool(true).dump(), "true");
    EXPECT_EQ(JsonValue::makeString("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue j = JsonValue::makeObject();
    j.set("zeta", std::int64_t{1});
    j.set("alpha", std::int64_t{2});
    const std::string s = j.dump();
    EXPECT_LT(s.find("zeta"), s.find("alpha"));
}

TEST(Json, StringsAreEscaped)
{
    JsonValue j = JsonValue::makeString("a\"b\\c\nd");
    EXPECT_EQ(j.dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ControlCharactersAreEscaped)
{
    // RFC 8259 requires every byte below 0x20 escaped; short forms for
    // the named controls, \u00XX for the rest.
    JsonValue j = JsonValue::makeString("a\rb\x01" "c\fd\be\x1f");
    EXPECT_EQ(j.dump(), "\"a\\rb\\u0001c\\fd\\be\\u001f\"");
}

TEST(Json, UnsignedValuesKeepTheFullRange)
{
    // Counters are uint64; a value above INT64_MAX must not wrap into
    // a negative number on its way through the writer.
    EXPECT_EQ(JsonValue::makeUint(18446744073709551615ull).dump(),
              "18446744073709551615");
    JsonValue obj = JsonValue::makeObject();
    obj.set("big", std::uint64_t{9223372036854775808ull});
    EXPECT_NE(obj.dump().find("\"big\": 9223372036854775808"),
              std::string::npos);
    EXPECT_EQ(obj.dump().find('-'), std::string::npos);
}

TEST(Json, NestedStructureRoundTrips)
{
    JsonValue j = JsonValue::makeObject();
    j["perf"].set("cycles", std::uint64_t{123});
    j["list"] = JsonValue::makeArray();
    j["list"].append(JsonValue::makeInt(1));
    j["list"].append(JsonValue::makeInt(2));
    const std::string s = j.dump();
    EXPECT_NE(s.find("\"cycles\": 123"), std::string::npos);
    EXPECT_NE(s.find('['), std::string::npos);
}

TEST(Config, PresetsMatchTableIV)
{
    const HardwareConfig tpu = HardwareConfig::tpuLike();
    EXPECT_EQ(tpu.dn_type, DnType::PointToPoint);
    EXPECT_EQ(tpu.mn_type, MnType::Linear);
    EXPECT_EQ(tpu.rn_type, RnType::Linear);
    EXPECT_EQ(tpu.controller_type, ControllerType::Dense);

    const HardwareConfig maeri = HardwareConfig::maeriLike();
    EXPECT_EQ(maeri.dn_type, DnType::Tree);
    EXPECT_EQ(maeri.mn_type, MnType::Linear);
    EXPECT_EQ(maeri.rn_type, RnType::ArtAcc);
    EXPECT_EQ(maeri.controller_type, ControllerType::Dense);

    const HardwareConfig sigma = HardwareConfig::sigmaLike();
    EXPECT_EQ(sigma.dn_type, DnType::Benes);
    EXPECT_EQ(sigma.mn_type, MnType::Disabled);
    EXPECT_EQ(sigma.rn_type, RnType::Fan);
    EXPECT_EQ(sigma.controller_type, ControllerType::Sparse);
}

TEST(Config, ParseRoundTrip)
{
    const HardwareConfig orig = HardwareConfig::sigmaLike(128, 64);
    const HardwareConfig parsed = HardwareConfig::parse(
        orig.toConfigText());
    EXPECT_EQ(parsed.dn_type, orig.dn_type);
    EXPECT_EQ(parsed.rn_type, orig.rn_type);
    EXPECT_EQ(parsed.controller_type, orig.controller_type);
    EXPECT_EQ(parsed.ms_size, orig.ms_size);
    EXPECT_EQ(parsed.dn_bandwidth, orig.dn_bandwidth);
}

TEST(Config, ParseAcceptsCommentsAndSections)
{
    const HardwareConfig c = HardwareConfig::parse(
        "# a comment\n[hardware]\nms_size = 64 # trailing\n"
        "dn_type = TREE\ndn_bandwidth=16\nrn_bandwidth = 16\n");
    EXPECT_EQ(c.ms_size, 64);
    EXPECT_EQ(c.dn_bandwidth, 16);
}

TEST(Config, RejectsUnknownKey)
{
    EXPECT_THROW(HardwareConfig::parse("bogus_key = 1\n"), FatalError);
}

TEST(Config, RejectsNonIntegerValue)
{
    EXPECT_THROW(HardwareConfig::parse("ms_size = lots\n"), FatalError);
}

TEST(Config, RejectsTrailingGarbageAfterNumbers)
{
    // stoll/stod stop at the first bad character, so without the
    // full-consumption check these silently parse as 8 and 1.5.
    try {
        HardwareConfig::parse("ms_size = 8x\n", "test.cfg");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("test.cfg:1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("trailing characters"), std::string::npos)
            << msg;
    }
    EXPECT_THROW(HardwareConfig::parse("dram_bandwidth_gbps = 1.5GB\n"),
                 FatalError);
    EXPECT_THROW(HardwareConfig::parse("clock_ghz = 1.0 1.0\n"),
                 FatalError);
}

TEST(Config, RejectsNonPowerOfTwoArray)
{
    HardwareConfig c = HardwareConfig::maeriLike();
    c.ms_size = 100;
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(Config, RejectsBandwidthAboveArraySize)
{
    HardwareConfig c = HardwareConfig::maeriLike(64, 64);
    c.dn_bandwidth = 128;
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(Config, RejectsIncompatibleSparseComposition)
{
    HardwareConfig c = HardwareConfig::sigmaLike();
    c.rn_type = RnType::Linear;
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(Config, RejectsSystolicWithClusterRn)
{
    HardwareConfig c = HardwareConfig::tpuLike();
    c.rn_type = RnType::Fan;
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, IntegerRangeIsInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.integer(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

} // namespace
} // namespace stonne
