/**
 * @file
 * Fast-forward engine tests: every bulkAdvance()/bulkReduce()/bulkTick()
 * primitive must be counter-identical to the per-cycle loop it replaces,
 * and whole simulations must be bit-identical (cycles, activity-counter
 * snapshot, output tensor) with fast_forward ON vs OFF on every shipped
 * configs/*.cfg — including maeri_64_faulty.cfg, whose attached fault
 * injector forces the exact per-cycle path in both modes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/watchdog.hpp"
#include "controller/delivery.hpp"
#include "engine/stonne_api.hpp"
#include "mem/dram.hpp"
#include "mem/global_buffer.hpp"
#include "network/dn_benes.hpp"
#include "network/dn_popn.hpp"
#include "network/dn_tree.hpp"
#include "network/mn_array.hpp"
#include "network/rn_fan.hpp"
#include "network/rn_linear.hpp"
#include "network/rn_tree.hpp"
#include "tensor/prune.hpp"

namespace stonne {
namespace {

/** Every counter in `a` must exist in `b` with the same value. */
void
expectSameCounters(const StatsRegistry &a, const StatsRegistry &b)
{
    const auto &ca = a.counters();
    const auto &cb = b.counters();
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].name, cb[i].name);
        EXPECT_EQ(ca[i].value, cb[i].value) << "counter " << ca[i].name;
    }
}

// --- bulk primitives vs. their per-cycle loops ------------------------

TEST(BulkAdvance, GlobalBufferMatchesLoop)
{
    StatsRegistry s1;
    GlobalBuffer loop(108, 8, 8, 1, s1);
    for (int c = 0; c < 5; ++c) {
        loop.nextCycle();
        EXPECT_EQ(loop.readBulk(8), 8);
        EXPECT_EQ(loop.writeBulk(3), 3);
    }

    StatsRegistry s2;
    GlobalBuffer bulk(108, 8, 8, 1, s2);
    bulk.bulkAdvance(5, 40, 15);
    expectSameCounters(s1, s2);
}

TEST(BulkAdvance, GlobalBufferRejectsOverAndUnderflow)
{
    StatsRegistry s;
    GlobalBuffer gb(108, 8, 4, 1, s);
    EXPECT_THROW(gb.bulkAdvance(2, 17, 0), PanicError); // > 2 * read bw
    EXPECT_THROW(gb.bulkAdvance(2, 0, 9), PanicError);  // > 2 * write bw
    EXPECT_THROW(gb.bulkAdvance(1, -1, 0), PanicError);
    EXPECT_THROW(gb.bulkAdvance(1, 0, -1), PanicError);
}

TEST(BulkAdvance, DramMatchesPerTransferAccounting)
{
    StatsRegistry s1;
    Dram loop(256.0, 1.0, 10, s1);
    loop.transferCycles(1000);
    loop.transferCycles(24);

    StatsRegistry s2;
    Dram bulk(256.0, 1.0, 10, s2);
    bulk.bulkAdvance(1024, 2);
    expectSameCounters(s1, s2);
    EXPECT_THROW(bulk.bulkAdvance(-1, 1), PanicError);
}

TEST(BulkAdvance, TreeDnMatchesInjectLoop)
{
    StatsRegistry s1;
    TreeDistributionNetwork loop(64, 8, s1);
    for (int c = 0; c < 5; ++c) {
        loop.cycle();
        EXPECT_EQ(loop.injectBulk(8, 4, PackageKind::Input), 8);
    }

    StatsRegistry s2;
    TreeDistributionNetwork bulk(64, 8, s2);
    bulk.bulkAdvance(5, 40, 4, PackageKind::Input);
    expectSameCounters(s1, s2);
}

TEST(BulkAdvance, BenesDnMatchesInjectLoop)
{
    StatsRegistry s1;
    BenesDistributionNetwork loop(64, 8, s1);
    for (int c = 0; c < 3; ++c) {
        loop.cycle();
        EXPECT_EQ(loop.injectBulk(8, 4, PackageKind::Weight), 8);
    }

    StatsRegistry s2;
    BenesDistributionNetwork bulk(64, 8, s2);
    bulk.bulkAdvance(3, 24, 4, PackageKind::Weight);
    expectSameCounters(s1, s2);
}

TEST(BulkAdvance, PointToPointDnMatchesInjectLoop)
{
    StatsRegistry s1;
    PointToPointNetwork loop(16, 4, s1);
    for (int c = 0; c < 4; ++c) {
        loop.cycle();
        EXPECT_EQ(loop.injectBulk(4, 1, PackageKind::Input), 4);
    }

    StatsRegistry s2;
    PointToPointNetwork bulk(16, 4, s2);
    bulk.bulkAdvance(4, 16, 1, PackageKind::Input);
    expectSameCounters(s1, s2);
}

TEST(BulkAdvance, DnRejectsInvalidArguments)
{
    StatsRegistry s;
    TreeDistributionNetwork tree(64, 8, s);
    EXPECT_THROW(tree.bulkAdvance(1, 9, 1, PackageKind::Input),
                 PanicError); // exceeds 1 cycle of bandwidth
    EXPECT_THROW(tree.bulkAdvance(1, -1, 1, PackageKind::Input),
                 PanicError);
    EXPECT_THROW(tree.bulkAdvance(1, 1, 0, PackageKind::Input),
                 PanicError);

    StatsRegistry s2;
    PointToPointNetwork pop(16, 4, s2);
    // Multicast is structurally impossible on the systolic links.
    EXPECT_THROW(pop.bulkAdvance(1, 1, 2, PackageKind::Input), FatalError);
}

TEST(BulkAdvance, MultiplierArrayMatchesFireLoop)
{
    StatsRegistry s1;
    MultiplierArray loop(64, MnType::Linear, s1);
    for (int c = 0; c < 3; ++c)
        loop.fireMultipliers(64);

    StatsRegistry s2;
    MultiplierArray bulk(64, MnType::Linear, s2);
    bulk.bulkAdvance(3, 192);
    expectSameCounters(s1, s2);
    EXPECT_THROW(bulk.bulkAdvance(2, 129), PanicError);
    EXPECT_THROW(bulk.bulkAdvance(1, -1), PanicError);
}

TEST(BulkReduce, ArtMatchesClusterLoop)
{
    // 9 is deliberately non-power-of-two: it exercises the horizontal
    // forwarding-link accounting as well as the 3:1 adder firings.
    StatsRegistry s1;
    ArtReductionNetwork loop(64, true, 64, s1);
    for (int c = 0; c < 7; ++c)
        loop.reduceCluster(9);

    StatsRegistry s2;
    ArtReductionNetwork bulk(64, true, 64, s2);
    bulk.bulkReduce(7, 9);
    expectSameCounters(s1, s2);
}

TEST(BulkReduce, FanMatchesClusterLoop)
{
    StatsRegistry s1;
    FanReductionNetwork loop(64, s1);
    for (int c = 0; c < 5; ++c)
        loop.reduceCluster(9);

    StatsRegistry s2;
    FanReductionNetwork bulk(64, s2);
    bulk.bulkReduce(5, 9);
    expectSameCounters(s1, s2);
}

TEST(BulkReduce, LinearMatchesClusterLoop)
{
    StatsRegistry s1;
    LinearReductionNetwork loop(64, s1);
    for (int c = 0; c < 3; ++c)
        loop.reduceCluster(8);

    StatsRegistry s2;
    LinearReductionNetwork bulk(64, s2);
    bulk.bulkReduce(3, 8);
    expectSameCounters(s1, s2);
}

TEST(BulkReduce, SingleElementClustersAreFree)
{
    StatsRegistry s;
    ArtReductionNetwork rn(64, true, 64, s);
    rn.bulkReduce(100, 1);
    EXPECT_EQ(rn.adderOps(), 0u);
}

TEST(BulkReduce, RejectsInvalidArguments)
{
    StatsRegistry s;
    FanReductionNetwork rn(64, s);
    EXPECT_THROW(rn.bulkReduce(-1, 4), PanicError);
    EXPECT_THROW(rn.bulkReduce(2, 0), PanicError);
    EXPECT_THROW(rn.bulkReduce(2, 65), PanicError);
}

TEST(BulkTick, WatchdogMatchesTickSemantics)
{
    Watchdog wd(10);
    wd.bulkTick(5, 2);
    EXPECT_EQ(wd.cyclesObserved(), 5u);
    EXPECT_EQ(wd.stallCycles(), 0u);
    wd.bulkTick(9, 0);
    EXPECT_EQ(wd.stallCycles(), 9u);
    wd.bulkTick(3, 1); // any progress clears the stall window
    EXPECT_EQ(wd.stallCycles(), 0u);
    EXPECT_EQ(wd.cyclesObserved(), 17u);
    EXPECT_THROW(wd.bulkTick(10, 0), DeadlockError);
}

// --- delivery / drain parity on bare units ----------------------------

TEST(FastForwardDelivery, CyclesAndCountersMatchExactLoop)
{
    // GB read bandwidth (4) below DN bandwidth (8) exercises the
    // min() in the steady-state grant.
    for (const index_t count : {1, 3, 4, 5, 37, 128}) {
        StatsRegistry s1;
        TreeDistributionNetwork dn1(64, 8, s1);
        GlobalBuffer gb1(108, 4, 4, 1, s1);
        Watchdog wd1(1000);
        const cycle_t exact =
            deliverElements(dn1, gb1, count, 2, PackageKind::Input, &wd1,
                            nullptr, /*fast_forward=*/false);

        StatsRegistry s2;
        TreeDistributionNetwork dn2(64, 8, s2);
        GlobalBuffer gb2(108, 4, 4, 1, s2);
        Watchdog wd2(1000);
        const cycle_t fast =
            deliverElements(dn2, gb2, count, 2, PackageKind::Input, &wd2,
                            nullptr, /*fast_forward=*/true);

        EXPECT_EQ(exact, fast) << "count " << count;
        EXPECT_EQ(wd1.cyclesObserved(), wd2.cyclesObserved());
        EXPECT_EQ(wd1.stallCycles(), wd2.stallCycles());
        expectSameCounters(s1, s2);
    }
}

TEST(FastForwardDelivery, DrainMatchesExactLoop)
{
    for (const index_t count : {1, 2, 3, 64, 129}) {
        StatsRegistry s1;
        GlobalBuffer gb1(108, 4, 3, 1, s1);
        Watchdog wd1(1000);
        const cycle_t exact =
            drainOutputs(gb1, count, &wd1, /*fast_forward=*/false);

        StatsRegistry s2;
        GlobalBuffer gb2(108, 4, 3, 1, s2);
        Watchdog wd2(1000);
        const cycle_t fast =
            drainOutputs(gb2, count, &wd2, /*fast_forward=*/true);

        EXPECT_EQ(exact, fast) << "count " << count;
        EXPECT_EQ(wd1.cyclesObserved(), wd2.cyclesObserved());
        expectSameCounters(s1, s2);
    }
}

// --- whole-simulation parity on every shipped config ------------------

std::vector<std::string>
configFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator("configs"))
        if (entry.path().extension() == ".cfg")
            files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());
    return files;
}

struct RunOutcome {
    SimulationResult sim;
    std::deque<StatCounter> counters;
    Tensor output;
};

/** Run a small layer appropriate for the config's controller. */
RunOutcome
runOnce(HardwareConfig cfg, bool fast_forward)
{
    cfg.fast_forward = fast_forward;
    Stonne st(cfg);
    Rng rng(7);

    if (cfg.controller_type == ControllerType::Sparse) {
        const LayerSpec layer =
            LayerSpec::sparseGemm("parity_spmm", 32, 16, 64);
        Tensor b({64, 16});
        Tensor a({32, 64});
        b.fillUniform(rng, 0.0f, 1.0f);
        a.fillNormal(rng, 0.0f, 0.2f);
        pruneFiltersWithJitter(a, 0.5, 0.15, rng);
        st.configureSpmm(layer);
        st.configureData(std::move(b), std::move(a));
    } else {
        Conv2dShape c;
        c.R = 3;
        c.S = 3;
        c.C = 8;
        c.K = 8;
        c.X = 8;
        c.Y = 8;
        c.padding = 1;
        const LayerSpec layer = LayerSpec::convolution("parity_conv", c);
        Tensor input({c.N, c.C, c.X, c.Y});
        Tensor weights({c.K, c.cPerGroup(), c.R, c.S});
        Tensor bias({c.K});
        input.fillUniform(rng, 0.0f, 1.0f);
        weights.fillNormal(rng, 0.0f, 0.2f);
        bias.fillUniform(rng, -0.1f, 0.1f);
        st.configureConv(layer);
        st.configureData(std::move(input), std::move(weights),
                         std::move(bias));
    }

    RunOutcome r;
    r.sim = st.runOperation();
    r.counters = st.stats().counters();
    r.output = st.output();
    return r;
}

TEST(FastForwardParity, AllShippedConfigsAreBitIdentical)
{
    const std::vector<std::string> files = configFiles();
    ASSERT_FALSE(files.empty());
    bool any_fast_path = false;

    for (const std::string &path : files) {
        SCOPED_TRACE(path);
        const HardwareConfig cfg = HardwareConfig::parseFile(path);
        any_fast_path |= !cfg.faults.enabled;

        const RunOutcome ref = runOnce(cfg, /*fast_forward=*/false);
        const RunOutcome fast = runOnce(cfg, /*fast_forward=*/true);

        EXPECT_EQ(ref.sim.cycles, fast.sim.cycles);
        EXPECT_EQ(ref.sim.macs, fast.sim.macs);
        EXPECT_EQ(ref.sim.skipped_macs, fast.sim.skipped_macs);
        EXPECT_EQ(ref.sim.mem_accesses, fast.sim.mem_accesses);
        EXPECT_DOUBLE_EQ(ref.sim.ms_utilization, fast.sim.ms_utilization);

        ASSERT_EQ(ref.counters.size(), fast.counters.size());
        for (std::size_t i = 0; i < ref.counters.size(); ++i) {
            EXPECT_EQ(ref.counters[i].name, fast.counters[i].name);
            EXPECT_EQ(ref.counters[i].value, fast.counters[i].value)
                << "counter " << ref.counters[i].name;
        }

        ASSERT_EQ(ref.output.shape(), fast.output.shape());
        EXPECT_EQ(std::memcmp(ref.output.data(), fast.output.data(),
                              static_cast<std::size_t>(ref.output.size()) *
                                  sizeof(float)),
                  0);
    }
    // The suite must cover at least one config where the fast path
    // actually engages (no faults attached).
    EXPECT_TRUE(any_fast_path);
}

TEST(FastForwardParity, FaultyConfigForcesExactPath)
{
    // maeri_64_faulty.cfg ships with the injector enabled: the fault
    // RNG streams must observe every cycle, so fast_forward = ON is a
    // no-op there and the parity above holds trivially by running the
    // same exact loop twice.
    const HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_64_faulty.cfg");
    EXPECT_TRUE(cfg.faults.enabled);
    EXPECT_TRUE(cfg.fast_forward); // the key defaults to ON even here
}

// --- configuration surface --------------------------------------------

TEST(FastForwardConfig, DefaultsOnAndRoundTrips)
{
    EXPECT_TRUE(HardwareConfig().fast_forward);

    const HardwareConfig off = HardwareConfig::parse("fast_forward = OFF");
    EXPECT_FALSE(off.fast_forward);
    EXPECT_NE(off.toConfigText().find("fast_forward = OFF"),
              std::string::npos);

    const HardwareConfig on = HardwareConfig::parse("fast_forward = 1");
    EXPECT_TRUE(on.fast_forward);
    EXPECT_NE(on.toConfigText().find("fast_forward = ON"),
              std::string::npos);

    const HardwareConfig round =
        HardwareConfig::parse(off.toConfigText());
    EXPECT_FALSE(round.fast_forward);

    EXPECT_THROW(HardwareConfig::parse("fast_forward = maybe"),
                 FatalError);
}

TEST(ConfigValidate, NamesBandwidthInDiagnostics)
{
    HardwareConfig c;
    c.dn_bandwidth = 0;
    try {
        c.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("dn_bandwidth"),
                  std::string::npos);
    }

    HardwareConfig r;
    r.rn_bandwidth = -2;
    try {
        r.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("rn_bandwidth"),
                  std::string::npos);
    }
}

} // namespace
} // namespace stonne
