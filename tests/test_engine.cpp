/**
 * @file
 * Tests for the engine layer: accelerator composition, the STONNE API
 * instruction flow (Table III), the output module and the energy/area
 * models.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "engine/output_module.hpp"
#include "engine/stonne_api.hpp"
#include "tensor/prune.hpp"
#include "tensor/reference.hpp"

namespace stonne {
namespace {

LayerSpec
smallConv()
{
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.C = 4;
    s.K = 8;
    s.X = 8;
    s.Y = 8;
    s.padding = 1;
    return LayerSpec::convolution("conv", s);
}

TEST(Accelerator, ComposesAllThreePresets)
{
    Accelerator maeri(HardwareConfig::maeriLike(64, 16));
    EXPECT_NO_THROW(maeri.denseController());
    EXPECT_THROW(maeri.sparseController(), FatalError);
    EXPECT_TRUE(maeri.supportsMaxPool());

    Accelerator sigma(HardwareConfig::sigmaLike(64, 32));
    EXPECT_NO_THROW(sigma.sparseController());
    EXPECT_THROW(sigma.denseController(), FatalError);
    EXPECT_FALSE(sigma.supportsMaxPool());

    Accelerator tpu(HardwareConfig::tpuLike(64));
    EXPECT_NO_THROW(tpu.denseController());
    EXPECT_FALSE(tpu.supportsMaxPool());

    Accelerator snapea(HardwareConfig::snapeaLike(64, 64));
    EXPECT_NO_THROW(snapea.snapeaController());
}

TEST(Accelerator, CycleAndResetAreSafe)
{
    Accelerator acc(HardwareConfig::maeriLike(64, 16));
    acc.cycle();
    acc.cycle();
    acc.reset();
    EXPECT_EQ(acc.stats().value("gb.reads"), 0u);
}

TEST(StonneApi, ConvFlowProducesValidatedOutput)
{
    Stonne st(HardwareConfig::maeriLike(64, 16));
    const LayerSpec layer = smallConv();
    Rng rng(1);
    Tensor in({1, 4, 8, 8}), w({8, 4, 3, 3}), bias({8});
    in.fillUniform(rng);
    w.fillUniform(rng);
    bias.fillUniform(rng);

    st.configureConv(layer);
    st.configureData(in, w, bias);
    const SimulationResult r = st.runOperation();

    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.macs, static_cast<count_t>(layer.conv.macs()));
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.area.total(), 0.0);
    EXPECT_TRUE(st.output().equals(
        ref::conv2d(in, w, bias, layer.conv)));
}

TEST(StonneApi, RunWithoutConfigureIsFatal)
{
    Stonne st(HardwareConfig::maeriLike(64, 16));
    EXPECT_THROW(st.runOperation(), FatalError);
}

TEST(StonneApi, RunWithoutDataIsFatal)
{
    Stonne st(HardwareConfig::maeriLike(64, 16));
    st.configureConv(smallConv());
    EXPECT_THROW(st.runOperation(), FatalError);
}

TEST(StonneApi, WrongKindToConfigureIsFatal)
{
    Stonne st(HardwareConfig::maeriLike(64, 16));
    EXPECT_THROW(st.configureLinear(smallConv()), FatalError);
    EXPECT_THROW(st.configureDmm(smallConv()), FatalError);
    EXPECT_THROW(
        st.configureSpmm(LayerSpec::sparseGemm("s", 4, 4, 4)),
        FatalError); // not a sparse composition
}

TEST(StonneApi, SparseConvLowersToSpmmAndMatches)
{
    Stonne st(HardwareConfig::sigmaLike(64, 32));
    const LayerSpec layer = smallConv();
    Rng rng(2);
    Tensor in({1, 4, 8, 8}), w({8, 4, 3, 3}), bias({8});
    in.fillUniform(rng);
    w.fillUniform(rng);
    pruneFiltersWithJitter(w, 0.6, 0.1, rng);
    bias.fillUniform(rng);

    st.configureConv(layer);
    st.configureData(in, w, bias);
    st.runOperation();
    EXPECT_TRUE(st.output().equals(
        ref::conv2d(in, w, bias, layer.conv)));
}

TEST(StonneApi, SpmmInstructionRunsSparseController)
{
    Stonne st(HardwareConfig::sigmaLike(64, 32));
    Rng rng(3);
    Tensor a({10, 16}), b({16, 6});
    a.fillUniform(rng);
    pruneRandom(a, 0.7, rng);
    b.fillUniform(rng);

    st.configureSpmm(LayerSpec::sparseGemm("spmm", 10, 6, 16));
    st.configureData(b, a);
    const SimulationResult r = st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::gemm(a, b)));
    EXPECT_LT(r.macs, 10u * 16u * 6u); // sparsity skipped work
}

TEST(StonneApi, DmmOnTpuUsesSystolicPath)
{
    Stonne st(HardwareConfig::tpuLike(64));
    Rng rng(4);
    Tensor a({16, 16}), b({16, 16});
    a.fillUniform(rng);
    b.fillUniform(rng);
    st.configureDmm(LayerSpec::gemmLayer("mm", 16, 16, 16));
    st.configureData(b, a);
    const SimulationResult r = st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::gemm(a, b)));
    // 8x8 array, four 8x8 tiles: 4 * (16 + 8 + 8 + 2) + DRAM staging.
    EXPECT_GE(r.cycles, 136u);
}

TEST(StonneApi, LinearOnAllCompositionsMatches)
{
    Rng rng(5);
    Tensor in({4, 24}), w({10, 24}), bias({10});
    in.fillUniform(rng);
    w.fillUniform(rng);
    pruneFiltersWithJitter(w, 0.5, 0.1, rng);
    bias.fillUniform(rng);
    const Tensor expect = ref::linear(in, w, bias);

    for (const HardwareConfig &cfg :
         {HardwareConfig::maeriLike(64, 16),
          HardwareConfig::sigmaLike(64, 32),
          HardwareConfig::tpuLike(64)}) {
        Stonne st(cfg);
        st.configureLinear(LayerSpec::linear("fc", 4, 24, 10));
        st.configureData(in, w, bias);
        st.runOperation();
        EXPECT_TRUE(st.output().equals(expect)) << cfg.name;
    }
}

TEST(StonneApi, MaxPoolOnFlexibleMatches)
{
    Stonne st(HardwareConfig::maeriLike(64, 16));
    Rng rng(6);
    Tensor in({1, 4, 8, 8});
    in.fillUniform(rng);
    Conv2dShape s;
    s.C = 4;
    s.X = 8;
    s.Y = 8;
    st.configureMaxPool(LayerSpec::maxPool("pool", s, 2, 2));
    st.configureData(in, Tensor());
    st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::maxPool2d(in, 2, 2)));
}

TEST(StonneApi, MaxPoolOnTpuIsRejected)
{
    Stonne st(HardwareConfig::tpuLike(64));
    Conv2dShape s;
    s.C = 4;
    s.X = 8;
    s.Y = 8;
    EXPECT_THROW(st.configureMaxPool(LayerSpec::maxPool("p", s, 2, 2)),
                 FatalError);
}

TEST(StonneApi, TotalCyclesAccumulateAcrossOperations)
{
    Stonne st(HardwareConfig::maeriLike(64, 16));
    Rng rng(7);
    Tensor in({2, 8}), w({4, 8});
    in.fillUniform(rng);
    w.fillUniform(rng);
    st.configureLinear(LayerSpec::linear("fc1", 2, 8, 4));
    st.configureData(in, w);
    const cycle_t c1 = st.runOperation().cycles;
    st.configureLinear(LayerSpec::linear("fc2", 2, 8, 4));
    st.configureData(in, w);
    const cycle_t c2 = st.runOperation().cycles;
    EXPECT_EQ(st.totalCycles(), c1 + c2);
}

TEST(OutputModule, JsonSummaryContainsAllSections)
{
    Stonne st(HardwareConfig::maeriLike(64, 16));
    Rng rng(8);
    Tensor in({2, 8}), w({4, 8});
    in.fillUniform(rng);
    w.fillUniform(rng);
    st.configureLinear(LayerSpec::linear("fc", 2, 8, 4));
    st.configureData(in, w);
    const SimulationResult r = st.runOperation();

    const std::string json =
        OutputModule::summaryWithCounters(st.config(), r, st.stats())
            .dump();
    for (const char *key :
         {"hardware", "performance", "energy", "area", "counters",
          "cycles", "mn.mult_ops"})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(OutputModule, CounterFileHasOneLinePerCounter)
{
    StatsRegistry stats;
    stats.counter("mn.mult_ops", StatGroup::MultiplierNetwork).value = 5;
    stats.counter("gb.reads", StatGroup::GlobalBuffer).value = 7;
    const std::string text = OutputModule::counterFile(stats);
    EXPECT_NE(text.find("MN mn.mult_ops 5"), std::string::npos);
    EXPECT_NE(text.find("GB gb.reads 7"), std::string::npos);
}

TEST(AreaModel, GbDominatesAllPresets)
{
    for (const HardwareConfig &cfg :
         {HardwareConfig::maeriLike(256, 128),
          HardwareConfig::sigmaLike(256, 128),
          HardwareConfig::tpuLike(256)}) {
        const AreaBreakdown a = AreaModel(cfg).compute();
        EXPECT_GT(a.gb_um2 / a.total(), 0.60) << cfg.name;
        EXPECT_LT(a.gb_um2 / a.total(), 0.90) << cfg.name;
    }
}

TEST(AreaModel, OrderingMatchesFigure5c)
{
    const double maeri =
        AreaModel(HardwareConfig::maeriLike(256, 128)).compute().total();
    const double sigma =
        AreaModel(HardwareConfig::sigmaLike(256, 128)).compute().total();
    const double tpu =
        AreaModel(HardwareConfig::tpuLike(256)).compute().total();
    EXPECT_LT(tpu, sigma);
    EXPECT_LT(sigma, maeri);
}

TEST(EnergyModel, CountersMapToGroups)
{
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    StatsRegistry stats;
    stats.counter("mn.mult_ops", StatGroup::MultiplierNetwork).value =
        1000;
    stats.counter("rn.adder_ops", StatGroup::ReductionNetwork).value =
        500;
    stats.counter("gb.reads", StatGroup::GlobalBuffer).value = 100;
    const EnergyBreakdown e = EnergyModel(cfg).compute(stats, 1000);
    EXPECT_GT(e.mn_uj, 0.0);
    EXPECT_GT(e.rn_uj, 0.0);
    EXPECT_GT(e.gb_uj, 0.0);
    EXPECT_GT(e.static_uj, 0.0);
    EXPECT_DOUBLE_EQ(e.dn_uj, 0.0);
}

TEST(EnergyModel, ArtAddersCostMoreThanFan)
{
    StatsRegistry stats;
    stats.counter("rn.adder_ops", StatGroup::ReductionNetwork).value =
        1000;
    const EnergyBreakdown art =
        EnergyModel(HardwareConfig::maeriLike(64, 16))
            .compute(stats, 0);
    const EnergyBreakdown fan =
        EnergyModel(HardwareConfig::sigmaLike(64, 16))
            .compute(stats, 0);
    EXPECT_GT(art.rn_uj, fan.rn_uj);
}

TEST(EnergyModel, StaticEnergyScalesWithRuntime)
{
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    StatsRegistry stats;
    const EnergyModel m(cfg);
    EXPECT_DOUBLE_EQ(m.compute(stats, 2000).static_uj,
                     2.0 * m.compute(stats, 1000).static_uj);
}

} // namespace
} // namespace stonne
