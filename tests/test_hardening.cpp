/**
 * @file
 * Tests for the simulation hardening layer: structured error context
 * (SimContext), the progress watchdog with deadlock diagnosis, named
 * FIFO/GlobalBuffer panics and the config parser diagnostics
 * (file/line, unknown and duplicate keys).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/sim_context.hpp"
#include "common/watchdog.hpp"
#include "controller/delivery.hpp"
#include "engine/stonne_api.hpp"
#include "mem/fifo.hpp"
#include "mem/global_buffer.hpp"

namespace stonne {
namespace {

/** Clear the thread-local context so tests cannot leak into each other. */
class HardeningTest : public ::testing::Test
{
  protected:
    void SetUp() override { SimContext::clear(); }
    void TearDown() override { SimContext::clear(); }
};

using SimContextTest = HardeningTest;
using WatchdogTest = HardeningTest;
using NamedPanicsTest = HardeningTest;
using ConfigDiagnosticsTest = HardeningTest;

TEST_F(SimContextTest, ScopesNestAndPopInOrder)
{
    EXPECT_EQ(SimContext::depth(), 0u);
    EXPECT_EQ(SimContext::describe(), "");
    EXPECT_EQ(SimContext::suffix(), "");
    {
        SimScope outer("layer", "conv1");
        EXPECT_EQ(SimContext::depth(), 1u);
        EXPECT_EQ(SimContext::describe(), "layer=conv1");
        {
            SimScope inner("unit", "dn_tree");
            EXPECT_EQ(SimContext::depth(), 2u);
            EXPECT_EQ(SimContext::describe(), "layer=conv1, unit=dn_tree");
            EXPECT_EQ(SimContext::suffix(),
                      " [layer=conv1, unit=dn_tree]");
        }
        EXPECT_EQ(SimContext::describe(), "layer=conv1");
    }
    EXPECT_EQ(SimContext::depth(), 0u);
}

TEST_F(SimContextTest, SetUpdatesInnermostMatchingFrame)
{
    SimScope scope("cycle", 1);
    SimContext::set("cycle", 42);
    EXPECT_EQ(SimContext::depth(), 1u);
    EXPECT_EQ(SimContext::describe(), "cycle=42");

    // An absent key pushes a new frame instead.
    SimContext::set("phase", "drain");
    EXPECT_EQ(SimContext::depth(), 2u);
    EXPECT_EQ(SimContext::describe(), "cycle=42, phase=drain");
    SimContext::pop();
}

TEST_F(SimContextTest, FatalAndPanicCarryTheContextSuffix)
{
    SimScope scope("layer", "fc2");
    try {
        fatal("bad tile");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("[layer=fc2]"),
                  std::string::npos)
            << e.what();
    }
    try {
        panic("broken invariant");
        FAIL() << "panic() must throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("[layer=fc2]"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(WatchdogTest, ProgressResetsTheStallWindow)
{
    Watchdog wd(3);
    wd.tick(0);
    wd.tick(0);
    EXPECT_EQ(wd.stallCycles(), 2u);
    wd.tick(5); // progress clears the window
    EXPECT_EQ(wd.stallCycles(), 0u);
    wd.tick(0);
    wd.tick(0);
    EXPECT_THROW(wd.tick(0), DeadlockError);
    EXPECT_EQ(wd.cyclesObserved(), 6u);
}

TEST_F(WatchdogTest, ZeroLimitIsRejected)
{
    EXPECT_THROW(Watchdog wd(0), FatalError);
}

TEST_F(WatchdogTest, ReportNamesEveryRegisteredSource)
{
    Watchdog wd(2);
    wd.addSource("fifo_bank", [](std::ostream &os) {
        os << "input_fifo: occupancy 4/4\n";
    });
    wd.addSource("controller", [](std::ostream &os) {
        os << "phase 'output drain'\n";
    });
    wd.tick(0);
    try {
        wd.tick(0);
        FAIL() << "watchdog must fire";
    } catch (const DeadlockError &e) {
        EXPECT_NE(std::string(e.what()).find("no forward progress"),
                  std::string::npos);
        EXPECT_NE(e.report().find("--- fifo_bank ---"), std::string::npos);
        EXPECT_NE(e.report().find("occupancy 4/4"), std::string::npos);
        EXPECT_NE(e.report().find("--- controller ---"),
                  std::string::npos);
        EXPECT_NE(e.report().find("output drain"), std::string::npos);
    }
}

/** A distribution network that never accepts anything: a wedged fabric. */
class WedgedNetwork : public DistributionNetwork
{
  public:
    WedgedNetwork(index_t ms, index_t bw)
        : DistributionNetwork(DnKind::Tree, ms, bw)
    {
    }
    bool inject(const DataPackage &) override { return false; }
    index_t
    injectBulk(index_t, index_t, PackageKind) override
    {
        return 0;
    }
    void
    bulkAdvance(cycle_t, index_t, index_t, PackageKind) override
    {
        panic("a wedged fabric cannot fast-forward");
    }
    void cycle() override {}
    void reset() override {}
    std::string name() const override { return "wedged_dn"; }
};

TEST_F(WatchdogTest, StalledDeliveryFiresWithFullAcceleratorSnapshot)
{
    // An intentionally wedged delivery loop, monitored by a real
    // Accelerator's watchdog: the DeadlockError must name the
    // controller phase and the state of every fabric unit.
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.watchdog_cycles = 32;
    Accelerator accel(cfg);
    WedgedNetwork wedged(64, 16);

    try {
        deliverElements(wedged, accel.gb(), 8, 1, PackageKind::Input,
                        &accel.watchdog());
        FAIL() << "a wedged delivery must raise DeadlockError";
    } catch (const DeadlockError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "no forward progress for 32 consecutive cycles"),
                  std::string::npos)
            << e.what();
        const std::string &rep = e.report();
        EXPECT_NE(rep.find("--- controller ---"), std::string::npos);
        EXPECT_NE(rep.find("phase 'idle'"), std::string::npos);
        EXPECT_NE(rep.find("--- global_buffer ---"), std::string::npos);
        EXPECT_NE(rep.find("global_buffer: capacity"), std::string::npos);
        EXPECT_NE(rep.find("--- distribution_network ---"),
                  std::string::npos);
        EXPECT_NE(rep.find("dn_tree:"), std::string::npos);
        EXPECT_NE(rep.find("--- multiplier_network ---"),
                  std::string::npos);
        EXPECT_NE(rep.find("mn_array:"), std::string::npos);
        EXPECT_NE(rep.find("--- reduction_network ---"),
                  std::string::npos);
    }
}

TEST_F(WatchdogTest, LegacyPathWithoutWatchdogStillPanics)
{
    StatsRegistry stats;
    GlobalBuffer gb(108, 16, 16, 1, stats);
    WedgedNetwork wedged(64, 16);
    EXPECT_THROW(deliverElements(wedged, gb, 8, 1, PackageKind::Input),
                 PanicError);
}

TEST_F(WatchdogTest, HealthyOperationsNeverTriggerTheWatchdog)
{
    // A tight (but sufficient) stall budget on a real conv: the
    // watchdog observes the whole run without firing.
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.watchdog_cycles = 64;
    Stonne st(cfg);

    Conv2dShape c;
    c.R = 3;
    c.S = 3;
    c.C = 4;
    c.K = 8;
    c.X = 8;
    c.Y = 8;
    c.padding = 1;
    Rng rng(1);
    Tensor in({1, 4, 8, 8}), w({8, 4, 3, 3});
    in.fillUniform(rng);
    w.fillUniform(rng);
    st.configureConv(LayerSpec::convolution("conv", c));
    st.configureData(in, w, Tensor());
    const SimulationResult r = st.runOperation();
    EXPECT_GT(r.cycles, 0u);
}

TEST_F(NamedPanicsTest, FifoViolationsNameTheUnitAndOccupancy)
{
    Fifo<int> f(2, "mn_input_fifo");
    f.push(1);
    f.push(2);
    try {
        f.push(3);
        FAIL() << "push on a full fifo must panic";
    } catch (const PanicError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("'mn_input_fifo'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("occupancy 2/2"), std::string::npos) << msg;
    }
    EXPECT_EQ(f.describe(),
              "mn_input_fifo: occupancy 2/2, pushes 2, pops 0, "
              "high-water 2");

    Fifo<int> empty(4, "rn_psum_fifo");
    try {
        empty.pop();
        FAIL() << "pop on an empty fifo must panic";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("'rn_psum_fifo'"),
                  std::string::npos);
    }
}

TEST_F(NamedPanicsTest, GlobalBufferViolationsNameTheUnitAndBandwidth)
{
    StatsRegistry stats;
    GlobalBuffer gb(108, 1, 1, 1, stats, "gb0");
    gb.nextCycle();
    gb.read();
    try {
        gb.read();
        FAIL() << "over-bandwidth read must panic";
    } catch (const PanicError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("'gb0'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("1 reads/cycle"), std::string::npos) << msg;
    }

    std::ostringstream os;
    gb.dumpState(os);
    EXPECT_NE(os.str().find("gb0: capacity"), std::string::npos);
    EXPECT_NE(os.str().find("read budget 0/1"), std::string::npos);
}

TEST_F(ConfigDiagnosticsTest, UnknownKeyReportsFileAndLine)
{
    const std::string text = "name = X\nms_size = 64\nbogus_key = 3\n";
    try {
        HardwareConfig::parse(text, "test.cfg");
        FAIL() << "unknown key must be rejected";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("test.cfg:3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("BOGUS_KEY"), std::string::npos) << msg;
    }
}

TEST_F(ConfigDiagnosticsTest, DuplicateKeyReportsBothLines)
{
    const std::string text = "ms_size = 64\nname = X\nms_size = 128\n";
    try {
        HardwareConfig::parse(text, "dup.cfg");
        FAIL() << "duplicate key must be rejected";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("dup.cfg:3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("duplicate config key"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("first set at line 1"), std::string::npos)
            << msg;
    }
}

TEST_F(ConfigDiagnosticsTest, AliasedKeysCountAsDuplicates)
{
    // NUM_MS is an alias of MS_SIZE: setting both is a double write.
    const std::string text = "ms_size = 64\nnum_ms = 128\n";
    EXPECT_THROW(HardwareConfig::parse(text, "alias.cfg"), FatalError);
}

TEST_F(ConfigDiagnosticsTest, MalformedLineReportsFileAndLine)
{
    const std::string text = "name = X\nthis is not a key value pair\n";
    try {
        HardwareConfig::parse(text, "bad.cfg");
        FAIL() << "malformed line must be rejected";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad.cfg:2"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(ConfigDiagnosticsTest, WatchdogCyclesKeyParsesAndValidates)
{
    HardwareConfig cfg = HardwareConfig::parse("watchdog_cycles = 500\n");
    EXPECT_EQ(cfg.watchdog_cycles, 500);

    // Default is sane and positive.
    EXPECT_GT(HardwareConfig{}.watchdog_cycles, 0);

    HardwareConfig bad = HardwareConfig::maeriLike(64, 16);
    bad.watchdog_cycles = 0;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST_F(ConfigDiagnosticsTest, ConfigTextRoundTripsThroughTheParser)
{
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.watchdog_cycles = 1234;
    const HardwareConfig back = HardwareConfig::parse(cfg.toConfigText());
    EXPECT_EQ(back.watchdog_cycles, 1234);
    EXPECT_EQ(back.ms_size, cfg.ms_size);
}

} // namespace
} // namespace stonne
