/**
 * @file
 * Multi-accelerator composition tests (src/multicore): the shared-DRAM
 * arbiter's fairness/determinism/self-exclusion properties, the model
 * partitioners, and — the core invariant — a cores = 1 MulticoreRunner
 * reproduces the legacy ModelRunner bit-identically (cycles, records,
 * outputs, trace bytes, zero stalls) on every shipped configs/*.cfg,
 * while a cores = 2 composition stays functionally exact against the
 * native reference, checkpoints/restores bit-identically mid-run, and
 * reports per-core DRAM stall counters in strict JSON.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "checkpoint/archive.hpp"
#include "common/config.hpp"
#include "common/json_writer.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "engine/output_module.hpp"
#include "frontend/model_loader.hpp"
#include "frontend/model_zoo.hpp"
#include "frontend/runner.hpp"
#include "multicore/multicore_runner.hpp"
#include "multicore/partition.hpp"
#include "multicore/shared_dram.hpp"

namespace stonne {
namespace {

/** Self-deleting scratch file (covers the .tmp sibling too). */
struct TempFile {
    std::string path;

    explicit TempFile(std::string p) : path(std::move(p)) { clean(); }
    ~TempFile() { clean(); }

    void clean()
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::filesystem::remove(path + ".tmp", ec);
        // Per-core raw traces written next to a merged trace file.
        for (int c = 0; c < 4; ++c)
            std::filesystem::remove(path + ".core" + std::to_string(c),
                                    ec);
    }
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(is)) << path;
    return std::string((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
}

std::vector<std::string>
configFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator("configs"))
        if (entry.path().extension() == ".cfg")
            files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());
    EXPECT_FALSE(files.empty());
    return files;
}

/** Deterministic input matching the model's first layer. */
Tensor
modelInput(const DnnModel &model, std::uint64_t seed = 11)
{
    const DnnLayer &first = model.layers.front();
    Rng rng(seed);
    Tensor input;
    if (first.op == OpType::Conv2d || first.op == OpType::MaxPool2d) {
        const Conv2dShape &c = first.spec.conv;
        input = Tensor({c.N, c.C, c.X, c.Y});
    } else {
        const GemmDims g = first.spec.gemm;
        input = Tensor({g.n, g.k});
    }
    input.fillUniform(rng, 0.0f, 1.0f);
    return input;
}

// --- shared-DRAM arbiter ----------------------------------------------

TEST(SharedDramArbiter, NominalCyclesCeilOfChannelShare)
{
    // 2 channels split 64 B/cycle into 32 B/cycle each.
    SharedDramArbiter a(2, 2, 64.0);
    EXPECT_EQ(a.nominalCycles(0), 0u);
    EXPECT_EQ(a.nominalCycles(1), 1u);
    EXPECT_EQ(a.nominalCycles(32), 1u);
    EXPECT_EQ(a.nominalCycles(33), 2u);
    EXPECT_EQ(a.nominalCycles(320), 10u);
}

TEST(SharedDramArbiter, SingleCoreSerialTrafficNeverStalls)
{
    SharedDramArbiter a(1, 1, 64.0);
    cycle_t t = 0;
    for (int i = 0; i < 50; ++i) {
        const count_t bytes = static_cast<count_t>(64 * (i + 1));
        const cycle_t nominal = a.nominalCycles(bytes);
        const SharedDramArbiter::Grant g = a.request(0, t, bytes, nominal);
        EXPECT_EQ(g.contention, 0u);
        EXPECT_EQ(g.completion, t + nominal);
        t = g.completion;
    }
    EXPECT_EQ(a.stallCycles(0), 0u);
    EXPECT_EQ(a.grantCount(0), 50u);
}

TEST(SharedDramArbiter, OwnCommittedTransfersAreExcluded)
{
    // Two requests by the same core at the same start cycle do not
    // contend with each other (a core's timeline is serial — overlap
    // can only be an artifact of charging order, never real).
    SharedDramArbiter a(2, 1, 64.0);
    const cycle_t n = a.nominalCycles(640);
    EXPECT_EQ(a.request(0, 100, 640, n).contention, 0u);
    EXPECT_EQ(a.request(0, 100, 640, n).contention, 0u);
    EXPECT_EQ(a.stallCycles(0), 0u);
}

TEST(SharedDramArbiter, OverlappingCoresShareTheChannelFairly)
{
    SharedDramArbiter a(2, 1, 64.0);
    const count_t bytes = 6400;
    const cycle_t n = a.nominalCycles(bytes); // 100 cycles alone
    ASSERT_EQ(n, 100u);

    const SharedDramArbiter::Grant g0 = a.request(0, 0, bytes, n);
    EXPECT_EQ(g0.completion, 100u); // empty ledger: nominal speed
    EXPECT_EQ(g0.contention, 0u);

    // Core 1 fully overlaps core 0's committed transfer: half
    // bandwidth for the first 100 cycles, full speed after.
    const SharedDramArbiter::Grant g1 = a.request(1, 0, bytes, n);
    EXPECT_EQ(g1.completion, 150u);
    EXPECT_EQ(g1.contention, 50u);
    EXPECT_EQ(a.stallCycles(1), 50u);

    // Determinism: an identical fresh arbiter replays identically.
    SharedDramArbiter b(2, 1, 64.0);
    EXPECT_EQ(b.request(0, 0, bytes, n).completion, g0.completion);
    EXPECT_EQ(b.request(1, 0, bytes, n).completion, g1.completion);
}

TEST(SharedDramArbiter, SeparateChannelsDoNotInterfere)
{
    // Cores stripe core % channels, so with 2 channels the two cores
    // own private channels and identical overlapping traffic is free.
    SharedDramArbiter a(2, 2, 128.0);
    const count_t bytes = 6400;
    const cycle_t n = a.nominalCycles(bytes);
    EXPECT_EQ(a.channelOf(0), 0);
    EXPECT_EQ(a.channelOf(1), 1);
    EXPECT_EQ(a.request(0, 0, bytes, n).contention, 0u);
    EXPECT_EQ(a.request(1, 0, bytes, n).contention, 0u);
    EXPECT_EQ(a.stallCycles(0), 0u);
    EXPECT_EQ(a.stallCycles(1), 0u);
}

TEST(SharedDramArbiter, StateRoundTripsThroughTheArchive)
{
    TempFile f("test_arbiter_state.ckpt");
    SharedDramArbiter a(2, 1, 64.0);
    a.request(0, 0, 6400, a.nominalCycles(6400));
    a.request(1, 30, 1280, a.nominalCycles(1280));

    ArchiveWriter w;
    w.beginSection("arbiter");
    a.saveState(w);
    w.endSection();
    w.writeFile(f.path);

    SharedDramArbiter b(2, 1, 64.0);
    ArchiveReader r(f.path);
    r.enterSection("arbiter");
    b.loadState(r);
    r.leaveSection();

    EXPECT_EQ(b.stallCycles(0), a.stallCycles(0));
    EXPECT_EQ(b.stallCycles(1), a.stallCycles(1));
    EXPECT_EQ(b.grantCount(0), a.grantCount(0));
    EXPECT_EQ(b.bytesRequested(1), a.bytesRequested(1));

    // The restored ledger arbitrates future requests identically.
    const SharedDramArbiter::Grant ga =
        a.request(0, 50, 3200, a.nominalCycles(3200));
    const SharedDramArbiter::Grant gb =
        b.request(0, 50, 3200, b.nominalCycles(3200));
    EXPECT_EQ(gb.completion, ga.completion);
    EXPECT_EQ(gb.contention, ga.contention);
}

// --- partitioners ------------------------------------------------------

TEST(Partition, SplitOutputChannelsCoversAndBalances)
{
    const auto shards = splitOutputChannels(10, 4);
    ASSERT_EQ(shards.size(), 4u);
    index_t covered = 0;
    for (std::size_t c = 0; c < shards.size(); ++c) {
        EXPECT_EQ(shards[c].first, covered);
        covered += shards[c].second;
    }
    EXPECT_EQ(covered, 10);
    // Remainder spreads over the leading shards: 3,3,2,2.
    EXPECT_EQ(shards[0].second, 3);
    EXPECT_EQ(shards[1].second, 3);
    EXPECT_EQ(shards[2].second, 2);
    EXPECT_EQ(shards[3].second, 2);

    // k < cores leaves trailing length-0 shards, never negative ones.
    const auto tiny = splitOutputChannels(2, 4);
    EXPECT_EQ(tiny[0].second, 1);
    EXPECT_EQ(tiny[1].second, 1);
    EXPECT_EQ(tiny[2].second, 0);
    EXPECT_EQ(tiny[3].second, 0);
}

TEST(Partition, PipelineStagesAreContiguousAndCoverTheModel)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    for (index_t cores : {1, 2, 3, 4}) {
        const PipelinePartition p = assignPipelineStages(model, cores);
        ASSERT_EQ(p.stage_of_layer.size(), model.layers.size());
        EXPECT_LE(p.stages(), cores);
        EXPECT_GE(p.stages(), 1);
        // Stage ids are non-decreasing and every stage non-empty.
        index_t prev = 0;
        for (const index_t s : p.stage_of_layer) {
            EXPECT_GE(s, prev);
            EXPECT_LE(s, prev + 1);
            prev = s;
        }
        std::size_t covered = 0;
        for (index_t s = 0; s < p.stages(); ++s) {
            const auto [first, last] =
                p.stage_bounds[static_cast<std::size_t>(s)];
            EXPECT_EQ(first, covered);
            EXPECT_LT(first, last);
            covered = last;
        }
        EXPECT_EQ(covered, model.layers.size());
    }
}

TEST(Partition, ShardabilityFollowsTheLayerKind)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    for (const DnnLayer &l : model.layers) {
        if (l.op == OpType::Conv2d || l.op == OpType::Linear)
            EXPECT_TRUE(kSplitShardable(l)) << l.name;
        if (l.op == OpType::ReLU || l.op == OpType::AddResidual)
            EXPECT_FALSE(kSplitShardable(l)) << l.name;
    }
}

// --- 1-core composition == legacy path, on every shipped config -------

TEST(MulticoreRunner, OneCoreIsBitIdenticalToModelRunnerOnEveryConfig)
{
    const DnnModel model = loadModelFromFile("models/fire_mini.model");
    const Tensor input = modelInput(model);

    for (const std::string &path : configFiles()) {
        SCOPED_TRACE(path);
        HardwareConfig cfg = HardwareConfig::parseFile(path);
        cfg.cores = 1;
        cfg.dram_channels = 1;
        // Collapsing to one core removes the core that fault_core
        // routed the injector to; its sickness (and the tight watchdog
        // calibrated against it) has no one-core analogue.
        if (cfg.faults.core > 0) {
            cfg.faults = FaultConfig{};
            cfg.watchdog_cycles = HardwareConfig{}.watchdog_cycles;
        }
        TempFile trace("test_multicore_parity_trace.json");
        TempFile ckpt("test_multicore_parity.ckpt");
        if (cfg.trace)
            cfg.trace_file = trace.path;
        if (cfg.checkpoint)
            cfg.checkpoint_file = ckpt.path;

        ModelRunner legacy(model, cfg);
        const Tensor ref_out = legacy.run(input);
        const SimulationResult ref_total = legacy.total();
        const std::string ref_trace = cfg.trace ? slurp(trace.path) : "";
        trace.clean();

        MulticoreRunner mc(model, cfg);
        const Tensor out = mc.run(input);
        const SimulationResult total = mc.total();

        EXPECT_TRUE(out.equals(ref_out));
        EXPECT_EQ(total.cycles, ref_total.cycles);
        EXPECT_EQ(total.macs, ref_total.macs);
        EXPECT_EQ(total.skipped_macs, ref_total.skipped_macs);
        EXPECT_EQ(total.mem_accesses, ref_total.mem_accesses);
        EXPECT_EQ(mc.core(0).totalCycles(),
                  legacy.stonne().totalCycles());

        // The composed timeline adds nothing with one core: the
        // arbiter never charges a stall.
        EXPECT_EQ(mc.arbiter().stallCycles(0), 0u);

        const auto &ref_recs = legacy.records();
        const auto &recs = mc.coreRecords(0);
        ASSERT_EQ(recs.size(), ref_recs.size());
        for (std::size_t i = 0; i < recs.size(); ++i) {
            EXPECT_EQ(recs[i].name, ref_recs[i].name);
            EXPECT_EQ(recs[i].offloaded, ref_recs[i].offloaded);
            EXPECT_EQ(recs[i].sim.cycles, ref_recs[i].sim.cycles);
        }

        if (cfg.trace)
            EXPECT_EQ(slurp(trace.path), ref_trace);
    }
}

// --- 2-core compositions ----------------------------------------------

TEST(MulticoreRunner, TwoCorePipelineRunsResnetBlockEndToEnd)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    const HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_128_x2.cfg");
    ASSERT_EQ(cfg.cores, 2);
    ASSERT_EQ(cfg.partition, PartitionStrategy::Pipeline);

    const Tensor input = modelInput(model);
    MulticoreRunner runner(model, cfg);
    const Tensor out = runner.run(input);
    EXPECT_TRUE(out.equals(runner.runNative(input)));

    // Both stages did real work and the composed makespan covers the
    // slowest core.
    EXPECT_EQ(runner.partition().stages(), 2);
    EXPECT_GT(runner.core(0).totalCycles(), 0u);
    EXPECT_GT(runner.core(1).totalCycles(), 0u);
    EXPECT_GE(runner.makespanCycles(),
              std::max(runner.core(0).totalCycles(),
                       runner.core(1).totalCycles()));

    // Cross-stage activations moved through the shared DRAM.
    EXPECT_GT(runner.arbiter().grantCount(0), 0u);
    EXPECT_GT(runner.arbiter().bytesRequested(1), 0u);
}

TEST(MulticoreRunner, KSplitMatchesTheNativeReference)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_128_x2.cfg");
    cfg.partition = PartitionStrategy::KSplit;

    const Tensor input = modelInput(model);
    MulticoreRunner runner(model, cfg);
    const Tensor out = runner.run(input);
    EXPECT_TRUE(out.equals(runner.runNative(input)));
    EXPECT_GT(runner.core(1).totalCycles(), 0u); // shards really ran
}

TEST(MulticoreRunner, SharedChannelContendsAndPrivateChannelsDoNot)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_128_x2.cfg");
    cfg.partition = PartitionStrategy::KSplit; // shards overlap fully
    const Tensor input = modelInput(model);

    cfg.dram_channels = 1;
    MulticoreRunner shared(model, cfg);
    shared.run(input);
    const count_t stalls_shared = shared.arbiter().stallCycles(0) +
                                  shared.arbiter().stallCycles(1);

    cfg.dram_channels = 2;
    MulticoreRunner split(model, cfg);
    split.run(input);
    const count_t stalls_split = split.arbiter().stallCycles(0) +
                                 split.arbiter().stallCycles(1);

    // One channel: concurrent shards time-share it, so interference
    // shows up as stalls. Two channels: each core owns one — none.
    EXPECT_GT(stalls_shared, 0u);
    EXPECT_EQ(stalls_split, 0u);
    EXPECT_GE(stalls_shared, stalls_split);
}

TEST(MulticoreRunner, MergedTraceCarriesOneTidGroupPerCore)
{
    TempFile trace("test_multicore_trace.json");
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_128_x2.cfg");
    cfg.trace = true;
    cfg.trace_file = trace.path;

    MulticoreRunner runner(model, cfg);
    runner.run(modelInput(model));

    const std::string text = slurp(trace.path);
    const JsonValue doc = JsonValue::parse(text); // strict: valid JSON
    EXPECT_TRUE(doc.isObject());
    EXPECT_NE(text.find("core0"), std::string::npos);
    EXPECT_NE(text.find("core1"), std::string::npos);
}

TEST(MulticoreRunner, ReportJsonIsStrictAndCarriesPerCoreCounters)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    const HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_128_x2.cfg");
    MulticoreRunner runner(model, cfg);
    runner.run(modelInput(model));

    const JsonValue report =
        JsonValue::parse(runner.reportJson().dump());
    ASSERT_NE(report.find("per_core"), nullptr);
    const auto &cores = report.find("per_core")->items();
    ASSERT_EQ(cores.size(), 2u);
    for (std::size_t c = 0; c < cores.size(); ++c) {
        const JsonValue &entry = cores[c];
        EXPECT_EQ(entry.find("core")->asUint64(), c);
        ASSERT_NE(entry.find("cycles"), nullptr);
        ASSERT_NE(entry.find("dram_channel"), nullptr);
        ASSERT_NE(entry.find("dram_stall_cycles"), nullptr);
        ASSERT_NE(entry.find("dram_grants"), nullptr);
        ASSERT_NE(entry.find("dram_bytes"), nullptr);
        EXPECT_GT(entry.find("cycles")->asUint64(), 0u);
    }
    EXPECT_EQ(report.find("cores")->asUint64(), 2u);
    EXPECT_EQ(report.find("partition")->asString(),
              std::string(partitionStrategyName(cfg.partition)));
    EXPECT_GT(report.find("makespan_cycles")->asUint64(), 0u);
}

TEST(MulticoreRunner, MidRunCheckpointRestoresBitIdentically)
{
    TempFile ckpt("test_multicore_resume.ckpt");
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_128_x2.cfg");
    std::vector<Tensor> inputs = {modelInput(model, 21),
                                  modelInput(model, 22)};

    // Probe the batch's total simulated work (checkpointing is
    // timing-neutral, so the probe run is the reference run too), then
    // pick an interval that fires exactly once, at a stage boundary
    // strictly inside the run: ~60% of the total crosses mid-batch and
    // the <= 40% left can never re-trigger, so the snapshot on disk is
    // guaranteed to be a mid-run one.
    MulticoreRunner straight(model, cfg);
    const std::vector<Tensor> ref_outs = straight.runBatch(inputs);
    const cycle_t sum =
        straight.core(0).totalCycles() + straight.core(1).totalCycles();
    ASSERT_GT(sum, 0u);

    cfg.checkpoint = true;
    cfg.checkpoint_file = ckpt.path;
    cfg.checkpoint_interval_cycles =
        static_cast<index_t>(sum * 6 / 10);
    MulticoreRunner snapped(model, cfg);
    const std::vector<Tensor> snap_outs = snapped.runBatch(inputs);
    ASSERT_FALSE(snapped.lastCheckpointPath().empty());
    ASSERT_TRUE(std::filesystem::exists(ckpt.path));
    ASSERT_EQ(snap_outs.size(), ref_outs.size());
    for (std::size_t b = 0; b < ref_outs.size(); ++b)
        EXPECT_TRUE(snap_outs[b].equals(ref_outs[b]));
    EXPECT_EQ(snapped.makespanCycles(), straight.makespanCycles());

    // Restore the mid-run snapshot into a fresh composition and
    // complete: outputs, per-core cycle counts, arbiter counters and
    // the composed makespan must all match the uninterrupted run.
    MulticoreRunner resumed(model, cfg);
    const std::vector<Tensor> outs = resumed.resumeBatch(ckpt.path);
    ASSERT_EQ(outs.size(), ref_outs.size());
    for (std::size_t b = 0; b < ref_outs.size(); ++b)
        EXPECT_TRUE(outs[b].equals(ref_outs[b]));
    EXPECT_EQ(resumed.makespanCycles(), straight.makespanCycles());
    for (index_t c = 0; c < 2; ++c) {
        EXPECT_EQ(resumed.core(c).totalCycles(),
                  straight.core(c).totalCycles());
        EXPECT_EQ(resumed.arbiter().stallCycles(c),
                  straight.arbiter().stallCycles(c));
        EXPECT_EQ(resumed.arbiter().grantCount(c),
                  straight.arbiter().grantCount(c));
        EXPECT_EQ(resumed.arbiter().bytesRequested(c),
                  straight.arbiter().bytesRequested(c));
    }
    const auto ref_recs = straight.allRecords();
    const auto recs = resumed.allRecords();
    ASSERT_EQ(recs.size(), ref_recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(recs[i].name, ref_recs[i].name);
        EXPECT_EQ(recs[i].sim.cycles, ref_recs[i].sim.cycles);
    }
}

TEST(MulticoreRunner, PipelinedBatchOverlapsStagesAndStaysExact)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    const HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_128_x2.cfg");
    MulticoreRunner runner(model, cfg);

    std::vector<Tensor> inputs;
    for (std::uint64_t s = 0; s < 4; ++s)
        inputs.push_back(modelInput(model, 100 + s));
    const std::vector<Tensor> outs = runner.runBatch(inputs);
    ASSERT_EQ(outs.size(), 4u);
    for (std::size_t b = 0; b < outs.size(); ++b)
        EXPECT_TRUE(outs[b].equals(runner.runNative(inputs[b])));

    // Pipelining overlaps samples: the batch makespan is shorter than
    // four serial makespans would be (each core ran 4 samples' worth
    // of its stage, and the composed timeline interleaves them).
    EXPECT_GE(runner.makespanCycles(),
              std::max(runner.core(0).totalCycles(),
                       runner.core(1).totalCycles()));
}

// --- fault tolerance: quarantine + checkpointed work migration --------

/**
 * The shipped faulty composition: core 1 carries a calibrated
 * timing-only fault load (single-flit links + seeded flit drops) that
 * trips the watchdog, core 0 stays injector-free via fault_core.
 */
HardwareConfig
faultyComposition()
{
    HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_128_x2_faulty.cfg");
    EXPECT_EQ(cfg.cores, 2);
    EXPECT_EQ(cfg.faults.core, 1);
    return cfg;
}

/** The same composition with the injector removed (the reference). */
HardwareConfig
healthyTwin(HardwareConfig cfg)
{
    cfg.faults = FaultConfig{};
    return cfg;
}

void
expectBitIdentical(const Tensor &a, const Tensor &b)
{
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<std::size_t>(a.size()) *
                              sizeof(float)),
              0);
}

TEST(PipelinePartition, HealthySubsetBindsStagesToSurvivors)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");

    // The full-set overload is the identity binding of the classic cut.
    const PipelinePartition full = assignPipelineStages(model, 2);
    const PipelinePartition both =
        assignPipelineStages(model, std::vector<index_t>{0, 1});
    ASSERT_EQ(both.stage_bounds, full.stage_bounds);
    ASSERT_EQ(both.stage_of_layer, full.stage_of_layer);
    ASSERT_EQ(both.core_of_stage, (std::vector<index_t>{0, 1}));

    // A survivor set binds every stage to the surviving core: one
    // stage spanning the whole model, owned by physical core 1.
    const PipelinePartition solo =
        assignPipelineStages(model, std::vector<index_t>{1});
    ASSERT_EQ(solo.stages(), 1);
    EXPECT_EQ(solo.stage_bounds.front().first, 0u);
    EXPECT_EQ(solo.stage_bounds.front().second, model.layers.size());
    EXPECT_EQ(solo.coreOf(0), 1);
}

TEST(MulticoreQuarantine, SickCoreIsBenchedAndOutputsStayBitIdentical)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    const Tensor input = modelInput(model);

    // The acceptance bar: in BOTH engine modes, the faulty run must
    // complete through quarantine + migration with outputs bitwise
    // equal to the fault-free composition (drops are retransmitted, so
    // the injector is timing-only).
    for (const bool fast_forward : {false, true}) {
        SCOPED_TRACE(fast_forward ? "fast-forward" : "exact");
        HardwareConfig cfg = faultyComposition();
        cfg.fast_forward = fast_forward;

        MulticoreRunner ref(model, healthyTwin(cfg));
        const Tensor ref_out = ref.run(input);
        EXPECT_EQ(ref.migrations(), 0u);
        EXPECT_TRUE(ref.quarantinedCores().empty());

        MulticoreRunner runner(model, cfg);
        const Tensor out = runner.run(input);
        expectBitIdentical(out, ref_out);
        EXPECT_TRUE(out.equals(runner.runNative(input)));

        EXPECT_EQ(runner.migrations(), 1u);
        EXPECT_TRUE(runner.isQuarantined(1));
        EXPECT_FALSE(runner.isQuarantined(0));
        ASSERT_EQ(runner.quarantinedCores(),
                  (std::vector<index_t>{1}));
        ASSERT_EQ(runner.healthyCores(), (std::vector<index_t>{0}));
        EXPECT_GT(runner.resumeCycle(), 0u);
        EXPECT_GT(runner.makespanCycles(), 0u);
    }
}

TEST(MulticoreQuarantine, KSplitReshardsTheFaultingLayerOverSurvivors)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    const Tensor input = modelInput(model);

    HardwareConfig cfg = faultyComposition();
    cfg.partition = PartitionStrategy::KSplit;

    MulticoreRunner ref(model, healthyTwin(cfg));
    const Tensor ref_out = ref.run(input);

    MulticoreRunner runner(model, cfg);
    const Tensor out = runner.run(input);
    expectBitIdentical(out, ref_out);
    EXPECT_EQ(runner.migrations(), 1u);
    ASSERT_EQ(runner.quarantinedCores(), (std::vector<index_t>{1}));
    // Core 1 faults on its very first shard, before any committed
    // work: resuming from cycle 0 is the correct answer here.
}

TEST(MulticoreQuarantine, QuarantineSnapshotResumesToTheSameOutputs)
{
    TempFile ckpt("test_multicore_quarantine.ckpt");
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    const Tensor input = modelInput(model);

    HardwareConfig cfg = faultyComposition();
    cfg.checkpoint = true;
    cfg.checkpoint_file = ckpt.path;
    // Periodic snapshots can never fire; the only snapshot on disk is
    // the one the quarantine itself writes at the migration point.
    cfg.checkpoint_interval_cycles = static_cast<index_t>(1) << 60;

    MulticoreRunner snapped(model, cfg);
    const Tensor full_out = snapped.run(input);
    ASSERT_EQ(snapped.migrations(), 1u);
    ASSERT_TRUE(std::filesystem::exists(ckpt.path));

    // A fresh composition resuming the mid-migration snapshot (the
    // SIGKILL-after-quarantine story) must land on the same outputs,
    // the same makespan, and remember the benched core.
    MulticoreRunner resumed(model, cfg);
    const std::vector<Tensor> outs = resumed.resumeBatch(ckpt.path);
    ASSERT_EQ(outs.size(), 1u);
    expectBitIdentical(outs.front(), full_out);
    EXPECT_EQ(resumed.makespanCycles(), snapped.makespanCycles());
    EXPECT_EQ(resumed.migrations(), 1u);
    EXPECT_TRUE(resumed.isQuarantined(1));
    ASSERT_EQ(resumed.healthyCores(), (std::vector<index_t>{0}));
}

TEST(MulticoreQuarantine, CorruptPerCoreSectionFallsBackToACleanCore)
{
    TempFile ckpt("test_multicore_fallback.ckpt");
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_128_x2.cfg");
    std::vector<Tensor> inputs = {modelInput(model, 21),
                                  modelInput(model, 22)};

    // Reference run + a guaranteed mid-run snapshot (the probe-then-
    // interval recipe of MidRunCheckpointRestoresBitIdentically).
    MulticoreRunner straight(model, cfg);
    const std::vector<Tensor> ref_outs = straight.runBatch(inputs);
    const cycle_t sum =
        straight.core(0).totalCycles() + straight.core(1).totalCycles();
    cfg.checkpoint = true;
    cfg.checkpoint_file = ckpt.path;
    cfg.checkpoint_interval_cycles = static_cast<index_t>(sum * 6 / 10);
    MulticoreRunner snapped(model, cfg);
    snapped.runBatch(inputs);
    ASSERT_TRUE(std::filesystem::exists(ckpt.path));

    // Corrupt core 1's engine section from the outside: flip the
    // first byte of the nested "meta" section name so the per-core
    // restore throws mid-section, then re-seal the file CRC so the
    // damage models a bad write, not a truncated download.
    std::string raw = slurp(ckpt.path);
    const std::string marker("\x05\x00\x00\x00\x00\x00\x00\x00"
                             "core1",
                             13);
    const std::size_t at = raw.find(marker);
    ASSERT_NE(at, std::string::npos);
    // [name]["core1" section len u64][live bool u8][strlen u64]"meta"
    const std::size_t target = at + marker.size() + 8 + 1 + 8;
    ASSERT_LT(target, raw.size());
    ASSERT_EQ(raw[target], 'm');
    raw[target] = 'Q';
    const std::size_t header = 8 + 4 + 8;
    std::uint64_t payload_size = 0;
    for (int i = 0; i < 8; ++i)
        payload_size |=
            static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(raw[8 + 4 + i]))
            << (8 * i);
    ASSERT_EQ(raw.size(), header + payload_size + 4);
    const std::uint32_t crc = crc32(
        reinterpret_cast<const std::uint8_t *>(raw.data()) + header,
        static_cast<std::size_t>(payload_size));
    for (int i = 0; i < 4; ++i)
        raw[header + static_cast<std::size_t>(payload_size) +
            static_cast<std::size_t>(i)] =
            static_cast<char>(crc >> (8 * i));
    {
        std::ofstream os(ckpt.path,
                         std::ios::binary | std::ios::trunc);
        os.write(raw.data(),
                 static_cast<std::streamsize>(raw.size()));
        ASSERT_TRUE(static_cast<bool>(os));
    }

    // The restore must shrug: skip the damaged section, rebuild core 1
    // fresh, finish the batch bit-identically (the composed timeline
    // only ever consumes per-operation deltas), and delete the
    // known-bad snapshot so nothing resumes from it again.
    MulticoreRunner resumed(model, cfg);
    const std::vector<Tensor> outs = resumed.resumeBatch(ckpt.path);
    EXPECT_EQ(resumed.restoreFallbacks(), 1u);
    EXPECT_FALSE(std::filesystem::exists(ckpt.path));
    ASSERT_EQ(outs.size(), ref_outs.size());
    for (std::size_t b = 0; b < ref_outs.size(); ++b)
        expectBitIdentical(outs[b], ref_outs[b]);
    EXPECT_EQ(resumed.makespanCycles(), straight.makespanCycles());
}

TEST(MulticoreQuarantine, ReportJsonRecordsTheDegradedRun)
{
    const DnnModel model =
        loadModelFromFile("models/resnet_block.model");
    MulticoreRunner runner(model, faultyComposition());
    runner.run(modelInput(model));

    const JsonValue report =
        JsonValue::parse(runner.reportJson().dump());
    EXPECT_EQ(report.find("migrations")->asUint64(), 1u);
    EXPECT_GT(report.find("resume_cycle")->asUint64(), 0u);
    EXPECT_EQ(report.find("restore_fallbacks")->asUint64(), 0u);
    const auto &degraded = report.find("degraded_cores")->items();
    ASSERT_EQ(degraded.size(), 1u);
    EXPECT_EQ(degraded.front().asInt64(), 1);
    const auto &cores = report.find("per_core")->items();
    ASSERT_EQ(cores.size(), 2u);
    EXPECT_FALSE(cores[0].find("quarantined")->asBool());
    EXPECT_TRUE(cores[1].find("quarantined")->asBool());
}

TEST(FaultCoreKey, ParsesValidatesAndRoundTrips)
{
    HardwareConfig cfg = faultyComposition();
    EXPECT_EQ(cfg.faults.core, 1);
    // toConfigText() must carry the key (snapshots embed that text).
    EXPECT_NE(cfg.toConfigText().find("fault_core = 1"),
              std::string::npos);
    const HardwareConfig reparsed =
        HardwareConfig::parse(cfg.toConfigText(), "<roundtrip>");
    EXPECT_EQ(reparsed.faults.core, 1);

    // fault_core must name an existing core.
    HardwareConfig bad = cfg;
    bad.faults.core = 2;
    EXPECT_THROW(bad.validate(), FatalError);
}

// --- batched inference through the zoo (the N > 1 loader fix) ---------

TEST(BatchInference, ZooModelWithBatchFourMatchesNative)
{
    const DnnModel model =
        buildModel(ModelId::SqueezeNet, ModelScale::Tiny, 7, 4);
    const Tensor input =
        makeModelInput(ModelId::SqueezeNet, ModelScale::Tiny, 11, 4);
    ASSERT_EQ(input.dim(0), 4);

    const HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_256.cfg");
    ModelRunner runner(model, cfg);
    const Tensor out = runner.run(input);
    EXPECT_TRUE(out.equals(runner.runNative(input)));
    EXPECT_EQ(out.dim(0), 4);
}

// --- wall-clock fields in the JSON summary (regression) ---------------

TEST(OutputJson, WallClockFieldsAreFiniteAndSurviveStrictParse)
{
    const DnnModel model = loadModelFromFile("models/fire_mini.model");
    const HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_256.cfg");
    ModelRunner runner(model, cfg);
    runner.run(modelInput(model));

    const JsonValue summary =
        OutputModule::summary(cfg, runner.total());
    // The dump must be valid RFC 8259 JSON (a NaN/Inf wall-clock rate
    // would not be) and the wall-clock fields finite and sane.
    const JsonValue parsed = JsonValue::parse(summary.dump());
    const JsonValue *perf = parsed.find("performance");
    ASSERT_NE(perf, nullptr);
    ASSERT_NE(perf->find("wall_seconds"), nullptr);
    ASSERT_NE(perf->find("sim_cycles_per_second"), nullptr);
    const double wall = perf->find("wall_seconds")->asDouble();
    const double rate =
        perf->find("sim_cycles_per_second")->asDouble();
    EXPECT_TRUE(std::isfinite(wall));
    EXPECT_GE(wall, 0.0);
    EXPECT_TRUE(std::isfinite(rate));
    EXPECT_GE(rate, 0.0);
}

} // namespace
} // namespace stonne
