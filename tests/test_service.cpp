/**
 * @file
 * Tests for the simulation service (src/service): strict protocol
 * parsing, admission control, the per-job robustness envelope (retry,
 * degraded final attempt, budgets, snapshot resume, warm cache), fault
 * isolation between jobs, and graceful shutdown.
 *
 * The deadlock staging reuses the deterministic recipe proven by
 * test_sweep_recovery: heavy seeded flit drops on a single-flit
 * distribution link make zero-progress streak lengths bit-reproducible
 * from the fault seed, so the exact completion threshold of a watchdog
 * budget can be probed once and any smaller budget deadlocks on every
 * run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "checkpoint/archive.hpp"
#include "common/config.hpp"
#include "common/json_writer.hpp"
#include "common/watchdog.hpp"
#include "engine/stonne_api.hpp"
#include "engine/workload.hpp"
#include "service/daemon.hpp"
#include "service/envelope.hpp"
#include "service/protocol.hpp"

namespace stonne::service {
namespace {

struct TempFile {
    std::string path;

    explicit TempFile(std::string p) : path(std::move(p)) { clean(); }
    ~TempFile() { clean(); }

    void clean()
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::filesystem::remove(path + ".tmp", ec);
    }
};

/** Parse every non-empty NDJSON line the daemon emitted. */
std::vector<JsonValue>
parseLines(const std::string &text)
{
    std::vector<JsonValue> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            out.push_back(JsonValue::parse(line));
    return out;
}

/** The result response of a job id (nullptr when absent). */
const JsonValue *
findResult(const std::vector<JsonValue> &responses, const std::string &id)
{
    for (const JsonValue &r : responses) {
        const JsonValue *type = r.find("type");
        const JsonValue *rid = r.find("id");
        if (type && type->asString() == "result" && rid &&
            rid->asString() == id)
            return &r;
    }
    return nullptr;
}

/** All status states streamed for a job id, in emission order. */
std::vector<std::string>
statusStates(const std::vector<JsonValue> &responses, const std::string &id)
{
    std::vector<std::string> states;
    for (const JsonValue &r : responses) {
        const JsonValue *type = r.find("type");
        const JsonValue *rid = r.find("id");
        if (type && type->asString() == "status" && rid &&
            rid->asString() == id)
            states.push_back(r.find("state")->asString());
    }
    return states;
}

/** ProtocolError code thrown by parseRequest ("" when it parses). */
std::string
protoCode(const std::string &line)
{
    try {
        parseRequest(line);
        return "";
    } catch (const ProtocolError &e) {
        return e.code();
    }
}

std::string
convJson()
{
    return R"({"kind":"conv","name":"svc","R":3,"S":3,"C":4,"K":8,)"
           R"("X":8,"Y":8,"pad":1})";
}

LayerSpec
convLayer()
{
    Conv2dShape c;
    c.R = 3;
    c.S = 3;
    c.C = 4;
    c.K = 8;
    c.X = 8;
    c.Y = 8;
    c.padding = 1;
    return LayerSpec::convolution("svc", c);
}

/** A watchdog budget no real stall streak of these tiny ops reaches. */
constexpr index_t kGenerousWatchdog = 1 << 22;

/** Whether `ops` back-to-back ops complete under a watchdog budget. */
bool
completesOps(HardwareConfig cfg, const LayerSpec &layer,
             const LayerData &data, index_t watchdog, bool fast_forward,
             int ops)
{
    cfg.watchdog_cycles = watchdog;
    cfg.fast_forward = fast_forward;
    Stonne st(cfg);
    try {
        for (int i = 0; i < ops; ++i)
            runLayer(st, layer, data);
        return true;
    } catch (const DeadlockError &) {
        return false;
    }
}

/**
 * Exact smallest watchdog budget for which `completes` holds. Budgets
 * only abort — they never perturb the simulation — so completion is
 * monotone in the budget and the threshold bisects exactly. Returns 0
 * when even the generous ceiling deadlocks.
 */
index_t
minCompletingBudget(const std::function<bool(index_t)> &completes)
{
    index_t hi = 2;
    while (!completes(hi)) {
        hi *= 2;
        if (hi > kGenerousWatchdog)
            return 0;
    }
    index_t lo = hi / 2; // observed failing, except when hi == 2
    if (hi == 2) {
        if (completes(1))
            return 1;
        lo = 1;
    }
    while (hi - lo > 1) {
        const index_t mid = lo + (hi - lo) / 2;
        if (completes(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

/**
 * The faulty world every deadlock test shares: the pinned
 * configs/maeri_64_faulty.cfg resilience config, patched through the
 * protocol's own override path onto a single-flit link with 75% drops,
 * plus the exact one-op completion thresholds of the normal and the
 * degraded (fast-forward OFF) engine. Probed once per test binary.
 */
struct FaultyWorld {
    HardwareConfig cfg;
    LayerSpec layer;
    LayerData data;
    index_t ok_norm = 0;
    index_t ok_deg = 0;
};

const std::vector<std::pair<std::string, std::string>> &
faultyOverrides()
{
    static const std::vector<std::pair<std::string, std::string>> kOv = {
        {"dn_bandwidth", "1"},
        {"rn_bandwidth", "1"},
        {"fault_seed", "17"},
        {"fault_flit_drop_rate", "0.75"},
    };
    return kOv;
}

const FaultyWorld &
faultyWorld()
{
    static const FaultyWorld *world = [] {
        auto *fw = new FaultyWorld;
        fw->cfg = applyOverrides(
            HardwareConfig::parseFile("configs/maeri_64_faulty.cfg"),
            faultyOverrides());
        fw->layer = convLayer();
        fw->data = makeLayerData(fw->layer, 0.0, 42);
        fw->ok_norm = minCompletingBudget([&](index_t w) {
            return completesOps(fw->cfg, fw->layer, fw->data, w, true, 1);
        });
        fw->ok_deg = minCompletingBudget([&](index_t w) {
            return completesOps(fw->cfg, fw->layer, fw->data, w, false, 1);
        });
        return fw;
    }();
    return *world;
}

/** The faulty job request: same overrides the probe ran under. */
std::string
faultyRunRequest(const std::string &id, index_t watchdog, index_t retries)
{
    std::ostringstream os;
    os << R"({"type":"run","id":")" << id
       << R"(","config":"configs/maeri_64_faulty.cfg","overrides":{)"
       << R"("dn_bandwidth":1,"rn_bandwidth":1,"fault_seed":17,)"
       << R"("fault_flit_drop_rate":0.75,"watchdog_cycles":)" << watchdog
       << R"(},"layer":)" << convJson() << R"(,"retries":)" << retries
       << "}";
    return os.str();
}

// --- strict protocol parsing ------------------------------------------

TEST(ServiceProtocol, GarbageIsRejectedWithStructuredCodes)
{
    EXPECT_EQ(protoCode(R"({"type":"run","id":"x)"), kErrBadJson);
    EXPECT_EQ(protoCode("not json at all"), kErrBadJson);
    EXPECT_EQ(protoCode(R"(["type","run"])"), kErrBadJson);
    EXPECT_EQ(protoCode(R"({"type":"ping","type":"ping"})"), kErrBadJson);
    EXPECT_EQ(protoCode(R"({"type":"frobnicate"})"), kErrUnknownType);
    EXPECT_EQ(protoCode(std::string(kMaxRequestBytes + 1, 'a')),
              kErrOversized);
    EXPECT_EQ(protoCode(""), kErrBadJson);
    EXPECT_EQ(protoCode(R"({"type":"ping"})"), "");
}

TEST(ServiceProtocol, StrictMemberAndValueChecks)
{
    // Unknown members are rejected everywhere, not ignored.
    EXPECT_EQ(protoCode(R"({"type":"ping","extra":1})"), kErrBadRequest);
    EXPECT_EQ(protoCode(R"({"type":"run","id":"a","layer":)" + convJson() +
                        R"(,"bogus":1})"),
              kErrBadRequest);
    // run/tune require a non-empty, bounded id and a layer.
    EXPECT_EQ(protoCode(R"({"type":"run","layer":)" + convJson() + "}"),
              kErrBadRequest);
    EXPECT_EQ(protoCode(R"({"type":"run","id":"","layer":)" + convJson() +
                        "}"),
              kErrBadRequest);
    EXPECT_EQ(protoCode(R"({"type":"run","id":")" +
                        std::string(kMaxIdBytes + 1, 'x') +
                        R"(","layer":)" + convJson() + "}"),
              kErrBadRequest);
    EXPECT_EQ(protoCode(R"({"type":"run","id":"a"})"), kErrBadRequest);
    // Value-level strictness.
    EXPECT_EQ(protoCode(R"({"type":"run","id":"a","layer":)" + convJson() +
                        R"(,"tile":[1,2,3]})"),
              kErrBadRequest);
    EXPECT_EQ(protoCode(R"({"type":"run","id":"a","layer":)" + convJson() +
                        R"(,"sparsity":1.5})"),
              kErrBadRequest);
    EXPECT_EQ(protoCode(R"({"type":"run","id":"a","layer":)" + convJson() +
                        R"(,"top_k":3})"),
              kErrBadRequest);
    EXPECT_EQ(protoCode(
                  R"({"type":"run","id":"a","layer":{"kind":"warp"}})"),
              kErrBadRequest);
    // A valid run request parses.
    EXPECT_EQ(protoCode(R"({"type":"run","id":"a","layer":)" + convJson() +
                        "}"),
              "");
}

TEST(ServiceProtocol, OverridesPatchAndUnknownKeysFail)
{
    const HardwareConfig base = HardwareConfig::maeriLike(64, 16);
    const HardwareConfig patched = applyOverrides(
        base, {{"dn_bandwidth", "8"}, {"watchdog_cycles", "1234"}});
    EXPECT_EQ(patched.dn_bandwidth, 8);
    EXPECT_EQ(patched.watchdog_cycles, 1234);
    EXPECT_EQ(patched.ms_size, base.ms_size);

    EXPECT_THROW(applyOverrides(base, {{"no_such_key", "1"}}),
                 ProtocolError);
    EXPECT_THROW(applyOverrides(base, {{"dn_bandwidth", "banana"}}),
                 ProtocolError);
    try {
        applyOverrides(base, {{"no_such_key", "1"}});
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError &e) {
        EXPECT_EQ(e.code(), kErrBadConfig);
    }
}

// --- daemon: protocol errors, duplicates, admission -------------------

TEST(ServiceDaemon, ProtocolGarbageGetsErrorResponsesAndDaemonSurvives)
{
    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 1;
    ServiceDaemon daemon(opts, out);

    EXPECT_TRUE(daemon.handleLine(R"({"type":"run","id":)"));
    EXPECT_TRUE(daemon.handleLine(R"({"type":"frobnicate"})"));
    EXPECT_TRUE(daemon.handleLine(std::string(kMaxRequestBytes + 1, 'x')));
    // A bad override rejects the job at admission, before any worker.
    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"run","id":"bad-ov","layer":)" + convJson() +
        R"(,"overrides":{"no_such_key":1}})"));
    // The daemon still serves after all that garbage.
    EXPECT_TRUE(daemon.handleLine(R"({"type":"run","id":"ok","layer":)" +
                                  convJson() + "}"));
    daemon.finish();

    const auto responses = parseLines(out.str());
    std::vector<std::string> error_codes;
    for (const JsonValue &r : responses)
        if (r.find("type")->asString() == "error")
            error_codes.push_back(r.find("code")->asString());
    EXPECT_EQ(error_codes,
              (std::vector<std::string>{kErrBadJson, kErrUnknownType,
                                        kErrOversized}));

    const JsonValue *bad = findResult(responses, "bad-ov");
    ASSERT_NE(bad, nullptr);
    EXPECT_EQ(bad->find("status")->asString(), "rejected");
    EXPECT_EQ(bad->find("code")->asString(), kErrBadConfig);

    const JsonValue *ok = findResult(responses, "ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(ok->find("status")->asString(), "done");

    const ServiceCounters c = daemon.counters();
    EXPECT_EQ(c.protocol_errors, 3u);
    EXPECT_EQ(c.rejected, 1u);
    EXPECT_EQ(c.done, 1u);
}

TEST(ServiceDaemon, BoundedQueueRejectsOverflowAndDuplicateIds)
{
    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_queue_depth = 2;
    opts.base.service_workers = 1;
    opts.start_workers = false; // jobs stay queued until finish()
    ServiceDaemon daemon(opts, out);
    EXPECT_EQ(daemon.queueDepth(), 2u);

    const std::string tail = R"(,"layer":)" + convJson() + "}";
    EXPECT_TRUE(daemon.handleLine(R"({"type":"run","id":"a")" + tail));
    EXPECT_TRUE(daemon.handleLine(R"({"type":"run","id":"a")" + tail));
    EXPECT_TRUE(daemon.handleLine(R"({"type":"run","id":"b")" + tail));
    EXPECT_TRUE(daemon.handleLine(R"({"type":"run","id":"c")" + tail));
    daemon.finish(); // paused pool spins up and drains a + b

    const auto responses = parseLines(out.str());
    const JsonValue *dup = findResult(responses, "a");
    ASSERT_NE(dup, nullptr); // first "a" result in emission order
    const JsonValue *c = findResult(responses, "c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->find("status")->asString(), "rejected");
    EXPECT_EQ(c->find("code")->asString(), kErrQueueFull);

    std::size_t rejected_dup = 0;
    for (const JsonValue &r : responses)
        if (r.find("type")->asString() == "result" &&
            r.find("id")->asString() == "a" &&
            r.find("status")->asString() == "rejected") {
            ++rejected_dup;
            EXPECT_EQ(r.find("code")->asString(), kErrDuplicateId);
        }
    EXPECT_EQ(rejected_dup, 1u);

    const ServiceCounters counters = daemon.counters();
    EXPECT_EQ(counters.admitted, 2u);
    EXPECT_EQ(counters.rejected, 2u);
    EXPECT_EQ(counters.done, 2u);

    const JsonValue *b = findResult(responses, "b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->find("status")->asString(), "done");
}

// --- the robustness envelope ------------------------------------------

TEST(ServiceEnvelope, CycleBudgetTimesOutTerminally)
{
    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 1;
    ServiceDaemon daemon(opts, out);

    // This conv needs a few hundred cycles; 32 cannot finish it.
    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"run","id":"tight","budget_cycles":32,"retries":3,)"
        R"("layer":)" +
        convJson() + "}"));
    daemon.finish();

    const auto responses = parseLines(out.str());
    const JsonValue *r = findResult(responses, "tight");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->find("status")->asString(), "timeout");
    const JsonValue &svc = *r->find("service");
    // Terminal on the first attempt: a budget is not a transient fault,
    // so the retry policy must not burn three more attempts on it.
    EXPECT_EQ(svc.find("attempts")->asInt64(), 1);
    EXPECT_EQ(svc.find("failures")->items().size(), 1u);
    EXPECT_EQ(daemon.counters().timeout, 1u);
    EXPECT_EQ(daemon.counters().retries, 0u);
}

TEST(ServiceEnvelope, DeadlockRetriesThenDegradedAttemptSucceeds)
{
    const FaultyWorld &fw = faultyWorld();
    ASSERT_GT(fw.ok_norm, 1) << "no deterministic deadlock window";
    ASSERT_GT(fw.ok_deg, 0) << "degraded engine never completes";
    // Normal attempts run one budget notch below their threshold (a
    // guaranteed deadlock); the degraded attempt's 4x widening must
    // clear the degraded engine's own threshold.
    const index_t w = fw.ok_norm - 1;
    ASSERT_GE(4 * w, fw.ok_deg)
        << "4x widening cannot rescue this fault seed";

    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 1;
    opts.backoff_base = std::chrono::milliseconds(0);
    ServiceDaemon daemon(opts, out);

    EXPECT_TRUE(daemon.handleLine(faultyRunRequest("recov", w, 2)));
    daemon.finish();

    const auto responses = parseLines(out.str());
    EXPECT_EQ(statusStates(responses, "recov"),
              (std::vector<std::string>{"queued", "admitted", "running",
                                        "retrying", "retrying"}));

    const JsonValue *r = findResult(responses, "recov");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->find("status")->asString(), "done");
    const JsonValue &svc = *r->find("service");
    EXPECT_EQ(svc.find("attempts")->asInt64(), 3);
    EXPECT_TRUE(svc.find("degraded")->asBool());
    ASSERT_EQ(svc.find("failures")->items().size(), 2u);
    for (const JsonValue &f : svc.find("failures")->items())
        EXPECT_FALSE(f.find("cause")->asString().empty());
    EXPECT_EQ(daemon.counters().retries, 2u);
    EXPECT_EQ(daemon.counters().done, 1u);
}

TEST(ServiceEnvelope, SnapshotResumeSkipsCompletedOperations)
{
    // Find a fault seed whose two-op threshold exceeds its one-op
    // threshold: operation 1 completes under some budget w while
    // operation 2 (its fault-RNG stream continues) deadlocks under w.
    const LayerSpec layer = convLayer();
    const LayerData data = makeLayerData(layer, 0.0, 42);
    const HardwareConfig base = faultyWorld().cfg;
    HardwareConfig cfg;
    index_t ok1 = 0, ok12 = 0;
    bool found = false;
    for (const char *seed : {"17", "7", "23", "41", "99", "3"}) {
        cfg = applyOverrides(base, {{"fault_seed", seed}});
        ok1 = minCompletingBudget([&](index_t w) {
            return completesOps(cfg, layer, data, w, true, 1);
        });
        ok12 = minCompletingBudget([&](index_t w) {
            return completesOps(cfg, layer, data, w, true, 2);
        });
        if (ok1 > 0 && ok12 > ok1) {
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "no fault seed stages an op-2-only deadlock";

    TempFile snap("test_service_resume.ckpt");
    EnvelopeOptions eo;
    eo.max_attempts = 1; // fail fast: the snapshot must survive failure
    eo.backoff_base = std::chrono::milliseconds(0);
    eo.snapshot_path = snap.path;

    // Attempt under w: op 1 completes and snapshots, op 2 deadlocks.
    HardwareConfig tight = cfg;
    tight.watchdog_cycles = ok12 - 1;
    const JobOutcome staged =
        runJobEnvelope(tight, layer, std::nullopt, 42, 0.0, 2, eo);
    EXPECT_EQ(staged.status, "failed");
    EXPECT_EQ(staged.attempts, 1);
    ASSERT_TRUE(std::filesystem::exists(snap.path))
        << "the failed job must leave its snapshot for a resubmission";

    // Resubmission resumes op 2 from the snapshot instead of redoing
    // op 1.
    HardwareConfig generous = cfg;
    generous.watchdog_cycles = kGenerousWatchdog;
    const JobOutcome resumed =
        runJobEnvelope(generous, layer, std::nullopt, 42, 0.0, 2, eo);
    EXPECT_EQ(resumed.status, "done");
    EXPECT_EQ(resumed.attempts, 1);
    EXPECT_EQ(resumed.ops_resumed, 1);
    EXPECT_FALSE(std::filesystem::exists(snap.path))
        << "a completed job must clean up its snapshot";

    // Bit-parity: the resumed job's output equals an uninterrupted
    // two-op run's.
    TempFile ref_snap("test_service_resume_ref.ckpt");
    EnvelopeOptions ref_eo = eo;
    ref_eo.snapshot_path = ref_snap.path;
    const JobOutcome reference =
        runJobEnvelope(generous, layer, std::nullopt, 42, 0.0, 2, ref_eo);
    ASSERT_EQ(reference.status, "done");
    EXPECT_EQ(reference.ops_resumed, 0);
    EXPECT_EQ(resumed.output_crc32, reference.output_crc32);
    EXPECT_EQ(resumed.result.cycles, reference.result.cycles);
}

TEST(ServiceEnvelope, SecondIdenticalRunIsServedWarmFromTheCache)
{
    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 1;
    ServiceDaemon daemon(opts, out);

    const std::string tail = R"(,"layer":)" + convJson() + "}";
    EXPECT_TRUE(daemon.handleLine(R"({"type":"run","id":"cold")" + tail));
    daemon.drain(); // the cache entry must exist before the resubmit
    EXPECT_TRUE(daemon.handleLine(R"({"type":"run","id":"warm")" + tail));
    daemon.finish();

    const auto responses = parseLines(out.str());
    const JsonValue *cold = findResult(responses, "cold");
    const JsonValue *warm = findResult(responses, "warm");
    ASSERT_NE(cold, nullptr);
    ASSERT_NE(warm, nullptr);
    EXPECT_EQ(cold->find("status")->asString(), "done");
    EXPECT_EQ(warm->find("status")->asString(), "done");
    EXPECT_FALSE(cold->find("service")->find("cache_hit")->asBool());
    EXPECT_TRUE(warm->find("service")->find("cache_hit")->asBool());

    const std::uint64_t cold_cycles = cold->find("summary")
                                          ->find("performance")
                                          ->find("cycles")
                                          ->asUint64();
    const std::uint64_t warm_cycles =
        warm->find("summary")->find("cycles")->asUint64();
    EXPECT_EQ(cold_cycles, warm_cycles);
    EXPECT_EQ(daemon.counters().cache_hits, 1u);
}

// --- fault isolation ---------------------------------------------------

TEST(ServiceDaemon, FaultyJobFailsAloneAndNeighborsStayBitIdentical)
{
    const FaultyWorld &fw = faultyWorld();
    ASSERT_GT(fw.ok_norm, 1);
    ASSERT_GT(fw.ok_deg, 4);
    // Even the degraded attempt's 4x widening must stay below the
    // degraded engine's completion threshold: the job is beyond help.
    const index_t w =
        std::min(fw.ok_norm - 1, (fw.ok_deg - 1) / 4);
    ASSERT_GE(w, 1) << "thresholds leave no all-attempts-fail window";

    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 2;
    opts.backoff_base = std::chrono::milliseconds(0);
    ServiceDaemon daemon(opts, out);

    const std::string tail = R"(,"layer":)" + convJson() + "}";
    EXPECT_TRUE(daemon.handleLine(R"({"type":"run","id":"h1")" + tail));
    EXPECT_TRUE(daemon.handleLine(faultyRunRequest("faulty", w, 2)));
    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"run","id":"h2","use_cache":false)" + tail));
    daemon.finish();

    const auto responses = parseLines(out.str());

    // The faulty job exhausted every attempt, degraded included, and
    // reported each cause — without taking the daemon down.
    const JsonValue *faulty = findResult(responses, "faulty");
    ASSERT_NE(faulty, nullptr);
    EXPECT_EQ(faulty->find("status")->asString(), "failed");
    const JsonValue &svc = *faulty->find("service");
    EXPECT_EQ(svc.find("attempts")->asInt64(), 3);
    EXPECT_TRUE(svc.find("degraded")->asBool());
    ASSERT_EQ(svc.find("failures")->items().size(), 3u);
    for (const JsonValue &f : svc.find("failures")->items())
        EXPECT_FALSE(f.find("cause")->asString().empty());

    // The healthy neighbors are bit-identical to standalone runs.
    Stonne standalone(opts.base);
    const LayerData data = makeLayerData(convLayer(), 0.0, 42);
    runLayer(standalone, convLayer(), data);
    const Tensor &ref = standalone.output();
    const std::uint32_t ref_crc =
        crc32(reinterpret_cast<const std::uint8_t *>(ref.data()),
              static_cast<std::size_t>(ref.size()) * sizeof(float));

    for (const char *id : {"h1", "h2"}) {
        const JsonValue *r = findResult(responses, id);
        ASSERT_NE(r, nullptr) << id;
        EXPECT_EQ(r->find("status")->asString(), "done") << id;
        EXPECT_EQ(r->find("service")->find("output_crc32")->asUint64(),
                  ref_crc)
            << id;
    }

    const ServiceCounters counters = daemon.counters();
    EXPECT_EQ(counters.done, 2u);
    EXPECT_EQ(counters.failed, 1u);
    EXPECT_EQ(counters.retries, 2u);
}

// --- graceful shutdown -------------------------------------------------

TEST(ServiceDaemon, ShutdownDrainsPersistsTheCacheAndLeavesNoDebris)
{
    TempFile cache_file("test_service_shutdown.cache");
    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 1;
    opts.cache_file = cache_file.path;
    ServiceDaemon daemon(opts, out);

    std::istringstream in(
        R"({"type":"run","id":"j1","layer":)" + convJson() + "}\n" +
        R"({"type":"shutdown"})" + "\n" +
        R"({"type":"run","id":"late","layer":)" + convJson() + "}\n");
    EXPECT_EQ(daemon.serve(in), 0);

    const auto responses = parseLines(out.str());
    const JsonValue *j1 = findResult(responses, "j1");
    ASSERT_NE(j1, nullptr);
    EXPECT_EQ(j1->find("status")->asString(), "done");
    // The line after shutdown was never read: no response for it.
    EXPECT_EQ(findResult(responses, "late"), nullptr);
    EXPECT_EQ(responses.back().find("type")->asString(), "bye");

    // The cache was persisted atomically: the file reloads, and no
    // half-written sibling is left behind.
    EXPECT_TRUE(std::filesystem::exists(cache_file.path));
    EXPECT_FALSE(std::filesystem::exists(cache_file.path + ".tmp"));
    dse::ResultCache reloaded(cache_file.path);
    EXPECT_EQ(reloaded.size(), 1u);
}

TEST(ServiceDaemon, StopFlagPreemptsTheServeLoop)
{
    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 1;
    ServiceDaemon daemon(opts, out);

    // The CLI's SIGINT/SIGTERM handler sets this flag; the loop must
    // drain and exit 0 without reading further input.
    volatile std::sig_atomic_t stop = 1;
    std::istringstream in(R"({"type":"run","id":"never","layer":)" +
                          convJson() + "}\n");
    EXPECT_EQ(daemon.serve(in, &stop), 0);

    const auto responses = parseLines(out.str());
    ASSERT_FALSE(responses.empty());
    EXPECT_EQ(responses.back().find("type")->asString(), "bye");
    EXPECT_EQ(findResult(responses, "never"), nullptr);
    EXPECT_TRUE(daemon.shutdownRequested());
}

// --- tune jobs share the cache ----------------------------------------

TEST(ServiceDaemon, TuneJobWarmsTheCacheForRunJobs)
{
    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 1;
    ServiceDaemon daemon(opts, out);

    const std::string layer = R"({"kind":"gemm","name":"g","M":16,)"
                              R"("N":16,"K":16})";
    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"tune","id":"t1","top_k":2,"layer":)" + layer + "}"));
    daemon.drain();
    const std::size_t cache_after_tune = daemon.cache().size();
    EXPECT_GE(cache_after_tune, 2u); // top-k candidates were simulated

    // A run job on the tuned mapping is served warm: tuner keys and
    // envelope keys are byte-compatible.
    const auto tuned = parseLines(out.str());
    const JsonValue *t1 = findResult(tuned, "t1");
    ASSERT_NE(t1, nullptr);
    ASSERT_EQ(t1->find("status")->asString(), "done");
    const std::string tile =
        t1->find("summary")->find("chosen_tile")->asString();

    // chosen_tile renders canonically as "TRxTSxTCxTGxTKxTNxTXxTY".
    std::string json_tile = "[" + tile + "]";
    for (char &c : json_tile)
        if (c == 'x')
            c = ',';

    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"run","id":"warm","tile":)" + json_tile +
        R"(,"layer":)" + layer + "}"));
    daemon.finish();

    const auto responses = parseLines(out.str());
    const JsonValue *warm = findResult(responses, "warm");
    ASSERT_NE(warm, nullptr);
    EXPECT_EQ(warm->find("status")->asString(), "done");
    EXPECT_TRUE(warm->find("service")->find("cache_hit")->asBool());
}

// --- shutdown vs. submit ordering -------------------------------------

TEST(ServiceDaemon, ShutdownBeatsConcurrentSubmitDeterministically)
{
    // The admission checks (shutdown, duplicate id, queue space) and
    // the pool hand-off sit under one lock, so a submission racing a
    // shutdown resolves to exactly one outcome: `shutting_down` — even
    // when the queue is also full, which used to win the race and
    // misreport `queue_full`.
    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_queue_depth = 1;
    opts.base.service_workers = 1;
    opts.start_workers = false; // "a" stays queued: the queue is full
    ServiceDaemon daemon(opts, out);

    const std::string tail = R"(,"layer":)" + convJson() + "}";
    EXPECT_TRUE(daemon.handleLine(R"({"type":"run","id":"a")" + tail));

    std::thread shutter([&daemon] { daemon.requestShutdown(); });
    shutter.join(); // deterministic interleaving: shutdown first
    EXPECT_TRUE(daemon.shutdownRequested());

    // handleLine signals the serve loop to stop (false), but the
    // submission itself still gets a structured rejection.
    EXPECT_FALSE(daemon.handleLine(R"({"type":"run","id":"b")" + tail));
    daemon.finish(); // the paused pool spins up and drains "a"

    const auto responses = parseLines(out.str());
    const JsonValue *a = findResult(responses, "a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->find("status")->asString(), "done");

    const JsonValue *b = findResult(responses, "b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->find("status")->asString(), "rejected");
    EXPECT_EQ(b->find("code")->asString(), kErrShuttingDown);
}

// --- run_model: full-model (multi-core) jobs --------------------------

TEST(ServiceProtocol, RunModelRequestsParseStrictly)
{
    const JobRequest req = parseRequest(
        R"({"type":"run_model","id":"m1",)"
        R"("config":"configs/maeri_128_x2.cfg",)"
        R"("model":"models/resnet_block.model","batch":3,"seed":9})");
    EXPECT_EQ(req.type, RequestType::RunModel);
    EXPECT_EQ(req.model_path, "models/resnet_block.model");
    EXPECT_EQ(req.batch, 3);
    EXPECT_EQ(req.seed, 9u);

    // `model` is required, `batch` must be >= 1, and run-only members
    // (layer, tile) are unknown in a run_model request.
    EXPECT_EQ(protoCode(R"({"type":"run_model","id":"m2"})"),
              kErrBadRequest);
    EXPECT_EQ(protoCode(R"({"type":"run_model","id":"m3",)"
                        R"("model":"m.model","batch":0})"),
              kErrBadRequest);
    EXPECT_EQ(protoCode(R"({"type":"run_model","id":"m4",)"
                        R"("model":"m.model","layer":)" +
                        convJson() + "}"),
              kErrBadRequest);
}

TEST(ServiceDaemon, RunModelJobReportsPerCoreDramCounters)
{
    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 1;
    ServiceDaemon daemon(opts, out);

    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"run_model","id":"mc",)"
        R"("config":"configs/maeri_128_x2.cfg",)"
        R"("model":"models/resnet_block.model","batch":2})"));
    daemon.finish();

    const auto responses = parseLines(out.str());
    const JsonValue *mc = findResult(responses, "mc");
    ASSERT_NE(mc, nullptr);
    ASSERT_EQ(mc->find("status")->asString(), "done");
    const JsonValue *summary = mc->find("summary");
    ASSERT_NE(summary, nullptr);
    ASSERT_NE(summary->find("per_core"), nullptr);
    const auto &cores = summary->find("per_core")->items();
    ASSERT_EQ(cores.size(), 2u);
    for (const JsonValue &core : cores) {
        ASSERT_NE(core.find("dram_stall_cycles"), nullptr);
        EXPECT_GT(core.find("cycles")->asUint64(), 0u);
    }
    EXPECT_EQ(mc->find("service")->find("batch")->asInt64(), 2);
}

TEST(ServiceDaemon, SingleAcceleratorJobsRejectMultiCoreConfigs)
{
    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 1;
    ServiceDaemon daemon(opts, out);

    // run and tune target exactly one accelerator; a cores > 1 config
    // must be turned away at admission, pointing at run_model.
    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"run","id":"r2",)"
        R"("config":"configs/maeri_128_x2.cfg","layer":)" +
        convJson() + "}"));
    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"tune","id":"t2",)"
        R"("config":"configs/maeri_128_x2.cfg","layer":)" +
        convJson() + "}"));
    daemon.finish();

    const auto responses = parseLines(out.str());
    for (const char *id : {"r2", "t2"}) {
        const JsonValue *r = findResult(responses, id);
        ASSERT_NE(r, nullptr) << id;
        EXPECT_EQ(r->find("status")->asString(), "rejected") << id;
        EXPECT_EQ(r->find("code")->asString(), kErrBadConfig) << id;
        // The rejection is actionable: it names the offending key and
        // the job type that does own multi-core compositions.
        const std::string msg = r->find("message")->asString();
        EXPECT_NE(msg.find("'cores'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("run_model"), std::string::npos) << msg;
    }
    EXPECT_EQ(daemon.counters().rejected, 2u);
}

TEST(ServiceDaemon, RunModelQuarantinesTheSickCoreAndMatchesHealthyCrc)
{
    // The healthy twin of the shipped faulty composition, written next
    // to it so the daemon resolves both through the same loader.
    TempFile healthy_cfg("test_service_healthy_x2.cfg");
    {
        std::ifstream is("configs/maeri_128_x2_faulty.cfg");
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        ASSERT_FALSE(text.empty());
        const std::size_t at = text.find("faults = ON");
        ASSERT_NE(at, std::string::npos);
        text.replace(at, std::strlen("faults = ON"), "faults = OFF");
        std::ofstream os(healthy_cfg.path, std::ios::trunc);
        os << text;
        ASSERT_TRUE(static_cast<bool>(os));
    }

    std::ostringstream out;
    ServiceOptions opts;
    opts.base = HardwareConfig::maeriLike(64, 16);
    opts.base.service_workers = 1;
    opts.backoff_base = std::chrono::milliseconds(0);
    ServiceDaemon daemon(opts, out);

    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"run_model","id":"fq",)"
        R"("config":"configs/maeri_128_x2_faulty.cfg",)"
        R"("model":"models/resnet_block.model"})"));
    EXPECT_TRUE(daemon.handleLine(
        R"({"type":"run_model","id":"fh",)"
        R"("config":")" + healthy_cfg.path + R"(",)"
        R"("model":"models/resnet_block.model"})"));
    EXPECT_TRUE(daemon.handleLine(R"({"type":"stats"})"));
    daemon.finish();

    const auto responses = parseLines(out.str());

    // The sick composition completes degraded: core 1 benched inside
    // the first attempt (no retry consumed), core 0 finishing alone.
    const JsonValue *fq = findResult(responses, "fq");
    ASSERT_NE(fq, nullptr);
    ASSERT_EQ(fq->find("status")->asString(), "done");
    const JsonValue *svc = fq->find("service");
    ASSERT_NE(svc, nullptr);
    EXPECT_EQ(svc->find("attempts")->asInt64(), 1);
    EXPECT_EQ(svc->find("migrations")->asUint64(), 1u);
    const auto &degraded = svc->find("degraded_cores")->items();
    ASSERT_EQ(degraded.size(), 1u);
    EXPECT_EQ(degraded.front().asInt64(), 1);
    const auto &finished = svc->find("cores_finished")->items();
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished.front().asInt64(), 0);

    // The quarantine streamed as its own status event.
    const auto states = statusStates(responses, "fq");
    EXPECT_NE(std::find(states.begin(), states.end(), "quarantined"),
              states.end());

    // Degraded-mode completion is not approximate completion: the
    // output CRC matches the fault-free twin bit for bit.
    const JsonValue *fh = findResult(responses, "fh");
    ASSERT_NE(fh, nullptr);
    ASSERT_EQ(fh->find("status")->asString(), "done");
    EXPECT_EQ(svc->find("output_crc32")->asUint64(),
              fh->find("service")->find("output_crc32")->asUint64());
    EXPECT_EQ(fh->find("service")->find("migrations")->asUint64(), 0u);

    // The lifetime counters saw the bench.
    EXPECT_GE(daemon.counters().quarantines, 1u);
    for (const JsonValue &r : responses)
        if (r.find("type") && r.find("type")->asString() == "stats")
            ASSERT_NE(r.find("quarantines"), nullptr);
}

} // namespace
} // namespace stonne::service
