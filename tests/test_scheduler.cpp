/**
 * @file
 * Unit tests for the filter scheduler (use case 3): round packing
 * semantics of NS / RDM / LFF and the Figure 7a metric.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "controller/scheduler.hpp"

namespace stonne {
namespace {

count_t
totalSegNnz(const std::vector<SparseRound> &rounds)
{
    count_t nnz = 0;
    for (const auto &r : rounds)
        for (const auto &s : r.segments)
            nnz += static_cast<count_t>(s.len);
    return nnz;
}

TEST(Scheduler, EveryNonZeroIsMappedExactlyOnce)
{
    const std::vector<index_t> nnz = {5, 17, 0, 9, 30, 2, 2, 64, 1};
    const index_t total =
        std::accumulate(nnz.begin(), nnz.end(), index_t{0});
    for (const auto policy :
         {SchedulingPolicy::None, SchedulingPolicy::Random,
          SchedulingPolicy::LargestFirst}) {
        const auto rounds = packRounds(nnz, 32, policy, 3);
        EXPECT_EQ(totalSegNnz(rounds), static_cast<count_t>(total))
            << schedulingPolicyName(policy);
        // Exactly one `last` segment per non-empty filter.
        std::vector<int> lasts(nnz.size(), 0);
        for (const auto &r : rounds)
            for (const auto &s : r.segments)
                if (s.last)
                    ++lasts[static_cast<std::size_t>(s.row)];
        for (std::size_t i = 0; i < nnz.size(); ++i)
            EXPECT_EQ(lasts[i], nnz[i] > 0 ? 1 : 0);
    }
}

TEST(Scheduler, RoundsNeverExceedArraySize)
{
    const std::vector<index_t> nnz = {31, 31, 31, 31, 3, 3, 3};
    for (const auto policy :
         {SchedulingPolicy::None, SchedulingPolicy::Random,
          SchedulingPolicy::LargestFirst}) {
        for (const auto &r : packRounds(nnz, 32, policy))
            EXPECT_LE(r.nnz, 32);
    }
}

TEST(Scheduler, NaturalOrderClosesAtFirstMisfit)
{
    // NS: 20 fits, 20 does not fit next to it -> 2 rounds even though
    // the 5 would have fit after the first 20.
    const std::vector<index_t> nnz = {20, 20, 5};
    const auto rounds = packRounds(nnz, 32, SchedulingPolicy::None);
    ASSERT_EQ(rounds.size(), 2u);
    EXPECT_EQ(rounds[0].segments.size(), 1u);
    EXPECT_EQ(rounds[1].segments.size(), 2u);
}

TEST(Scheduler, LffFillsGapsWithSmallerFilters)
{
    // LFF skips the misfitting second 20 and fills the leftover
    // capacity with both 5-wide filters (descending order).
    const std::vector<index_t> nnz = {20, 20, 5, 5};
    const auto rounds =
        packRounds(nnz, 32, SchedulingPolicy::LargestFirst);
    ASSERT_EQ(rounds.size(), 2u);
    EXPECT_EQ(rounds[0].nnz, 30);
    EXPECT_EQ(rounds[0].whole_filters, 3);
    EXPECT_EQ(rounds[1].nnz, 20);
}

TEST(Scheduler, LffPacksTighterThanNsOnAverage)
{
    Rng rng(5);
    std::size_t ns_total = 0, lff_total = 0;
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<index_t> nnz;
        for (int i = 0; i < 50; ++i)
            nnz.push_back(rng.integer(0, 40));
        ns_total += packRounds(nnz, 64, SchedulingPolicy::None).size();
        lff_total +=
            packRounds(nnz, 64, SchedulingPolicy::LargestFirst).size();
    }
    EXPECT_LT(lff_total, ns_total);
}

TEST(Scheduler, OversizedFilterFolds)
{
    const std::vector<index_t> nnz = {100};
    const auto rounds = packRounds(nnz, 32, SchedulingPolicy::None);
    ASSERT_EQ(rounds.size(), 4u); // 32+32+32+4
    EXPECT_FALSE(rounds[0].segments[0].last);
    EXPECT_TRUE(rounds[3].segments[0].last);
    EXPECT_EQ(rounds[3].segments[0].begin, 96);
    EXPECT_EQ(rounds[3].segments[0].len, 4);
}

TEST(Scheduler, PartialFoldTailSharesRound)
{
    // 100 = 3 full rounds + a 4-wide tail that can host the 20.
    const std::vector<index_t> nnz = {100, 20};
    const auto rounds = packRounds(nnz, 32, SchedulingPolicy::None);
    ASSERT_EQ(rounds.size(), 4u);
    EXPECT_EQ(rounds[3].segments.size(), 2u);
    EXPECT_EQ(rounds[3].nnz, 24);
}

TEST(Scheduler, RandomIsDeterministicPerSeed)
{
    std::vector<index_t> nnz;
    Rng rng(6);
    for (int i = 0; i < 30; ++i)
        nnz.push_back(rng.integer(1, 20));
    const auto a = packRounds(nnz, 64, SchedulingPolicy::Random, 42);
    const auto b = packRounds(nnz, 64, SchedulingPolicy::Random, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].nnz, b[i].nnz);
}

TEST(Scheduler, AverageFiltersPerRoundMetric)
{
    const std::vector<index_t> nnz = {8, 8, 8, 8, 8, 8, 8, 8};
    const auto rounds = packRounds(nnz, 32, SchedulingPolicy::None);
    ASSERT_EQ(rounds.size(), 2u);
    EXPECT_DOUBLE_EQ(averageFiltersPerRound(rounds), 4.0);
    EXPECT_DOUBLE_EQ(averageFiltersPerRound({}), 0.0);
}

TEST(Scheduler, ZeroFiltersProduceNoRounds)
{
    const std::vector<index_t> nnz = {0, 0, 0};
    EXPECT_TRUE(packRounds(nnz, 32, SchedulingPolicy::None).empty());
}

TEST(Scheduler, PolicyNames)
{
    EXPECT_STREQ(schedulingPolicyName(SchedulingPolicy::None), "NS");
    EXPECT_STREQ(schedulingPolicyName(SchedulingPolicy::Random), "RDM");
    EXPECT_STREQ(schedulingPolicyName(SchedulingPolicy::LargestFirst),
                 "LFF");
}

} // namespace
} // namespace stonne
