/**
 * @file
 * Tests for the design-space exploration subsystem: tile-space
 * enumeration, the content-addressed result cache, the auto-tuner's
 * search (including the acceptance claims: beats the greedy mapper on
 * shipped configurations; a warm cache serves a repeat run without a
 * single cycle-level simulation) and the autotune front-end wiring.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <thread>

#include "analytical/maeri_model.hpp"
#include "common/logging.hpp"
#include "controller/mapper.hpp"
#include "dse/cache.hpp"
#include "dse/tile_space.hpp"
#include "dse/tuner.hpp"
#include "engine/output_module.hpp"
#include "frontend/model_zoo.hpp"
#include "frontend/runner.hpp"

namespace stonne {
namespace {

using dse::AutoTuner;
using dse::CachedOutcome;
using dse::ResultCache;
using dse::TileSpace;
using dse::TuneOptions;
using dse::TuneReport;

/** Self-deleting cache file (covers the .tmp sibling too). */
struct TempFile {
    std::string path;

    explicit TempFile(std::string p) : path(std::move(p))
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::filesystem::remove(path + ".tmp", ec);
    }

    ~TempFile()
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::filesystem::remove(path + ".tmp", ec);
    }
};

LayerSpec
secLayer()
{
    // The S-EC layer of Figure 1 at Bench scale: 3x3x16 -> 64, 13x13.
    Conv2dShape c;
    c.R = 3;
    c.S = 3;
    c.C = 16;
    c.K = 64;
    c.X = 13;
    c.Y = 13;
    c.padding = 1;
    return LayerSpec::convolution("S-EC", c);
}

// --- TileSpace -------------------------------------------------------

TEST(TileSpace, DivisorsAscendingAndComplete)
{
    EXPECT_EQ(TileSpace::divisors(12),
              (std::vector<index_t>{1, 2, 3, 4, 6, 12}));
    EXPECT_EQ(TileSpace::divisors(13), (std::vector<index_t>{1, 13}));
    EXPECT_EQ(TileSpace::divisors(1), (std::vector<index_t>{1}));
    EXPECT_THROW(TileSpace::divisors(0), FatalError);
}

TEST(TileSpace, CandidatesAreLegalDivisorTilesPlusGreedy)
{
    const LayerSpec layer = secLayer();
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 64);
    const std::vector<Tile> space = TileSpace::enumerate(layer, cfg);
    ASSERT_FALSE(space.empty());

    const Tile greedy = Mapper(cfg.ms_size).generateTile(layer);
    bool greedy_found = false;
    for (const Tile &t : space) {
        EXPECT_NO_THROW(t.validate(layer, cfg.ms_size));
        EXPECT_LE(t.usedMs(), cfg.ms_size);
        if (t == greedy)
            greedy_found = true;
    }
    EXPECT_TRUE(greedy_found);

    // No duplicates survive the enumeration.
    for (std::size_t i = 0; i < space.size(); ++i)
        for (std::size_t j = i + 1; j < space.size(); ++j)
            EXPECT_FALSE(space[i] == space[j])
                << space[i].canonical() << " appears twice";
}

TEST(TileSpace, LargerArrayNeverShrinksTheSpace)
{
    const LayerSpec layer = secLayer();
    const std::size_t small =
        TileSpace::enumerate(layer, HardwareConfig::maeriLike(32, 32))
            .size();
    const std::size_t large =
        TileSpace::enumerate(layer, HardwareConfig::maeriLike(256, 128))
            .size();
    EXPECT_GT(small, 0u);
    EXPECT_GT(large, small);
}

TEST(TileSpace, GemmSpaceOnlyUsesGemmDims)
{
    const LayerSpec gemm = LayerSpec::gemmLayer("g", 48, 128, 48);
    const HardwareConfig cfg = HardwareConfig::maeriLike(128, 64);
    const std::vector<Tile> space = TileSpace::enumerate(gemm, cfg);
    ASSERT_FALSE(space.empty());
    for (const Tile &t : space) {
        EXPECT_EQ(t.t_r, 1);
        EXPECT_EQ(t.t_s, 1);
        EXPECT_EQ(t.t_g, 1);
        EXPECT_EQ(t.t_n, 1);
        EXPECT_EQ(t.t_x, 1);
    }
}

TEST(TileSpace, RejectsKindsWithoutATileSpace)
{
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 64);
    EXPECT_THROW(
        TileSpace::enumerate(LayerSpec::sparseGemm("s", 8, 8, 8), cfg),
        FatalError);
    Conv2dShape in;
    in.C = 4;
    in.X = 8;
    in.Y = 8;
    EXPECT_THROW(
        TileSpace::enumerate(LayerSpec::maxPool("p", in, 2, 2), cfg),
        FatalError);
}

// --- ResultCache -----------------------------------------------------

TEST(ResultCache, LookupDemandsExactKeyText)
{
    ResultCache cache; // in-memory
    cache.insert("key-a", CachedOutcome{123, 4.5, 9.0, 0.75});
    ASSERT_TRUE(cache.lookup("key-a").has_value());
    EXPECT_EQ(cache.lookup("key-a")->cycles, 123u);
    EXPECT_FALSE(cache.lookup("key-b").has_value());
    EXPECT_EQ(cache.size(), 1u);

    cache.insert("key-a", CachedOutcome{99, 1.0, 2.0, 0.5});
    EXPECT_EQ(cache.lookup("key-a")->cycles, 99u); // overwrite
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, RoundTripsThroughTheArchiveFile)
{
    TempFile f("test_dse_roundtrip.dse.cache");
    {
        ResultCache cache(f.path);
        EXPECT_EQ(cache.size(), 0u); // missing file starts empty
        cache.insert("point-1", CachedOutcome{1000, 2.0, 300.0, 0.5});
        cache.insert("point-2", CachedOutcome{2000, 4.0, 600.0, 0.25});
        cache.save();
    }
    ResultCache reloaded(f.path);
    EXPECT_FALSE(reloaded.loadFailed());
    ASSERT_EQ(reloaded.size(), 2u);
    ASSERT_TRUE(reloaded.lookup("point-1").has_value());
    EXPECT_EQ(reloaded.lookup("point-1")->cycles, 1000u);
    EXPECT_DOUBLE_EQ(reloaded.lookup("point-1")->energy_uj, 2.0);
    EXPECT_DOUBLE_EQ(reloaded.lookup("point-2")->ms_utilization, 0.25);
}

TEST(ResultCache, CorruptFileIsDiscardedNotFatal)
{
    TempFile f("test_dse_corrupt.dse.cache");
    {
        std::ofstream os(f.path, std::ios::binary);
        os << "this is not an archive";
    }
    ResultCache cache(f.path);
    EXPECT_TRUE(cache.loadFailed());
    EXPECT_EQ(cache.size(), 0u);

    // The next save replaces the damaged file with a valid one.
    cache.insert("fresh", CachedOutcome{7, 0.0, 0.0, 0.0});
    cache.save();
    ResultCache reloaded(f.path);
    EXPECT_FALSE(reloaded.loadFailed());
    EXPECT_EQ(reloaded.size(), 1u);
}

TEST(ResultCache, KeyTextSeparatesLayersTilesAndPolicies)
{
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 64);
    const LayerSpec layer = secLayer();
    const Tile tile = Mapper(cfg.ms_size).generateTile(layer);

    const std::string base =
        ResultCache::keyText(cfg, layer, tile, "seed=1 sparsity=0");

    // The layer *name* is cosmetic; the shape is what addresses.
    LayerSpec renamed = layer;
    renamed.name = "other-name";
    EXPECT_EQ(base,
              ResultCache::keyText(cfg, renamed, tile, "seed=1 sparsity=0"));

    LayerSpec reshaped = layer;
    reshaped.conv.K *= 2;
    EXPECT_NE(base, ResultCache::keyText(cfg, reshaped, tile,
                                         "seed=1 sparsity=0"));

    Tile other = tile;
    other.t_k = other.t_k > 1 ? 1 : 2;
    EXPECT_NE(base,
              ResultCache::keyText(cfg, layer, other, "seed=1 sparsity=0"));

    EXPECT_NE(base,
              ResultCache::keyText(cfg, layer, tile, "seed=2 sparsity=0"));

    // Policy-only knobs must not split the cache: the outcome of the
    // same structural hardware is the same.
    HardwareConfig knobs = cfg;
    knobs.fast_forward = !knobs.fast_forward;
    knobs.autotune = true;
    knobs.dse_top_k = 3;
    knobs.watchdog_cycles += 1;
    EXPECT_EQ(base,
              ResultCache::keyText(knobs, layer, tile, "seed=1 sparsity=0"));

    HardwareConfig smaller = cfg;
    smaller.dn_bandwidth /= 2;
    EXPECT_NE(base, ResultCache::keyText(smaller, layer, tile,
                                         "seed=1 sparsity=0"));
}

// --- Spearman --------------------------------------------------------

TEST(Spearman, AgreementDisagreementAndTies)
{
    EXPECT_DOUBLE_EQ(
        dse::spearmanCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
    EXPECT_DOUBLE_EQ(
        dse::spearmanCorrelation({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0);
    EXPECT_DOUBLE_EQ(dse::spearmanCorrelation({5}, {9}), 1.0);
    // A constant side carries no ordering information.
    EXPECT_DOUBLE_EQ(dse::spearmanCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
    const double mid =
        dse::spearmanCorrelation({1, 2, 3, 4}, {10, 20, 40, 30});
    EXPECT_GT(mid, 0.0);
    EXPECT_LT(mid, 1.0);
}

// --- AutoTuner -------------------------------------------------------

TEST(AutoTuner, BeatsGreedyMapperOnShippedConfigs)
{
    // Acceptance: on at least two shipped dense configurations the
    // search finds a tile with strictly fewer simulated cycles than
    // Mapper::generateTile's choice.
    for (const char *path :
         {"configs/maeri_256.cfg", "configs/maeri_128_traced.cfg"}) {
        const HardwareConfig cfg = HardwareConfig::parseFile(path);
        AutoTuner tuner(cfg, TuneOptions{}); // in-memory cache
        const TuneReport rep = tuner.tuneLayer(secLayer());
        EXPECT_LT(rep.best_cycles, rep.greedy_cycles) << path;
        EXPECT_GT(rep.space_size, rep.ranked.size()) << path;
    }
}

TEST(AutoTuner, ReportIsConsistentAndDeterministic)
{
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 32);
    TuneOptions opts;
    opts.top_k = 6;
    AutoTuner tuner(cfg, opts);
    const TuneReport rep = tuner.tuneLayer(secLayer());

    EXPECT_EQ(rep.ranked.size(), rep.cache_hits + rep.simulations_run);
    EXPECT_GE(rep.ranked.size(), 6u); // top-K plus maybe the greedy tile
    EXPECT_TRUE(std::is_sorted(
        rep.ranked.begin(), rep.ranked.end(),
        [](const dse::EvaluatedTile &a, const dse::EvaluatedTile &b) {
            return a.simulated_cycles < b.simulated_cycles;
        }));
    EXPECT_EQ(rep.best, rep.ranked.front().tile);
    EXPECT_EQ(rep.best_cycles, rep.ranked.front().simulated_cycles);
    EXPECT_LE(rep.best_cycles, rep.greedy_cycles); // greedy always in set
    EXPECT_GE(rep.rank_correlation, -1.0);
    EXPECT_LE(rep.rank_correlation, 1.0);

    // The greedy tile was evaluated cycle-level.
    const bool greedy_ranked = std::any_of(
        rep.ranked.begin(), rep.ranked.end(),
        [&](const dse::EvaluatedTile &et) {
            return et.tile == rep.greedy_tile;
        });
    EXPECT_TRUE(greedy_ranked);

    // Determinism: an independent tuner picks the identical tile.
    AutoTuner again(cfg, opts);
    const TuneReport rep2 = again.tuneLayer(secLayer());
    EXPECT_EQ(rep.best, rep2.best);
    EXPECT_EQ(rep.best_cycles, rep2.best_cycles);

    const DseSummary s = rep.summary();
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.space_size, rep.space_size);
    EXPECT_EQ(s.evaluated, rep.ranked.size());
    EXPECT_EQ(s.chosen_tile, rep.best.canonical());
    EXPECT_EQ(s.cycles_saved_vs_greedy,
              static_cast<std::int64_t>(rep.greedy_cycles) -
                  static_cast<std::int64_t>(rep.best_cycles));
}

TEST(AutoTuner, WarmCacheRunsZeroSimulations)
{
    // Acceptance: a re-run over a warm cache performs zero redundant
    // cycle-level simulations, proven by the invocation counter.
    TempFile f("test_dse_warm.dse.cache");
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 64);
    TuneOptions opts;
    opts.top_k = 5;
    opts.cache_file = f.path;

    Tile first_choice;
    {
        AutoTuner cold(cfg, opts);
        const TuneReport rep = cold.tuneLayer(secLayer());
        EXPECT_GT(rep.simulations_run, 0u);
        EXPECT_EQ(rep.cache_hits, 0u);
        EXPECT_EQ(cold.totalSimulations(), rep.simulations_run);
        first_choice = rep.best;
    }
    AutoTuner warm(cfg, opts);
    const TuneReport rep = warm.tuneLayer(secLayer());
    EXPECT_EQ(warm.totalSimulations(), 0u);
    EXPECT_EQ(rep.simulations_run, 0u);
    EXPECT_EQ(rep.cache_hits, rep.ranked.size());
    EXPECT_EQ(rep.best, first_choice);
    for (const dse::EvaluatedTile &et : rep.ranked)
        EXPECT_TRUE(et.from_cache) << et.tile.canonical();
}

TEST(AutoTuner, CacheOutcomesMatchFreshSimulation)
{
    // A cache hit must report exactly what a simulation would have: tune
    // twice in one tuner (second call all-hits) and compare reports.
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 32);
    TuneOptions opts;
    opts.top_k = 4;
    AutoTuner tuner(cfg, opts);
    const TuneReport cold = tuner.tuneLayer(secLayer());
    const TuneReport warm = tuner.tuneLayer(secLayer());
    EXPECT_EQ(warm.simulations_run, 0u);
    ASSERT_EQ(cold.ranked.size(), warm.ranked.size());
    for (std::size_t i = 0; i < cold.ranked.size(); ++i) {
        EXPECT_EQ(cold.ranked[i].tile, warm.ranked[i].tile);
        EXPECT_EQ(cold.ranked[i].simulated_cycles,
                  warm.ranked[i].simulated_cycles);
    }
}

// --- Front-end wiring ------------------------------------------------

TEST(Autotune, ModelRunnerStaysExactAndNeverSlower)
{
    HardwareConfig tuned = HardwareConfig::maeriLike(64, 64);
    tuned.autotune = true;
    tuned.dse_top_k = 4;
    tuned.dse_cache_file.clear(); // in-memory: tests must not litter

    const DnnModel model =
        buildModel(ModelId::SqueezeNet, ModelScale::Tiny);
    const Tensor input =
        makeModelInput(ModelId::SqueezeNet, ModelScale::Tiny);

    ModelRunner runner(model, tuned);
    const Tensor sim = runner.run(input);
    const Tensor native = runner.runNative(input);
    EXPECT_TRUE(sim.equals(native))
        << "max diff " << sim.maxAbsDiff(native);

    const SimulationResult total = runner.total();
    EXPECT_TRUE(total.dse.enabled);
    EXPECT_GT(total.dse.evaluated, 0u);
    EXPECT_GE(total.dse.cycles_saved_vs_greedy, 0);

    HardwareConfig untuned = tuned;
    untuned.autotune = false;
    ModelRunner baseline(model, untuned);
    baseline.run(input);
    EXPECT_FALSE(baseline.total().dse.enabled);
    EXPECT_LE(total.cycles, baseline.total().cycles);
}

TEST(Autotune, ConfigKeysParseValidateAndRoundTrip)
{
    const HardwareConfig cfg = HardwareConfig::parse(
        "controller = DENSE\nautotune = ON\ndse_top_k = 12\n"
        "dse_cache_file = layer.cache\n");
    EXPECT_TRUE(cfg.autotune);
    EXPECT_EQ(cfg.dse_top_k, 12);
    EXPECT_EQ(cfg.dse_cache_file, "layer.cache");

    const HardwareConfig round =
        HardwareConfig::parse(cfg.toConfigText());
    EXPECT_TRUE(round.autotune);
    EXPECT_EQ(round.dse_top_k, 12);
    EXPECT_EQ(round.dse_cache_file, "layer.cache");

    // Tuning targets the dense controller's explicit tiles.
    HardwareConfig sparse = HardwareConfig::sigmaLike(64, 64);
    sparse.autotune = true;
    EXPECT_THROW(sparse.validate(), FatalError);

    HardwareConfig bad = HardwareConfig::maeriLike(64, 64);
    bad.autotune = true;
    bad.dse_top_k = 0;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(Autotune, StructuralTextIgnoresTuningKnobs)
{
    const HardwareConfig a = HardwareConfig::maeriLike(64, 64);
    HardwareConfig b = a;
    b.autotune = true;
    b.dse_top_k = 3;
    b.dse_cache_file = "elsewhere.cache";
    EXPECT_EQ(a.structuralText(), b.structuralText());

    HardwareConfig c = a;
    c.ms_size = 128;
    EXPECT_NE(a.structuralText(), c.structuralText());
}

TEST(Autotune, SummaryJsonCarriesTheDseBlockOnlyWhenTuned)
{
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 64);
    SimulationResult r;
    r.layer_name = "layer";
    r.accelerator = cfg.name;
    r.cycles = 100;

    const std::string plain = OutputModule::summary(cfg, r).dump();
    EXPECT_EQ(plain.find("\"dse\""), std::string::npos);

    r.dse.enabled = true;
    r.dse.space_size = 42;
    r.dse.evaluated = 9;
    r.dse.cache_hits = 4;
    r.dse.simulations_run = 5;
    r.dse.rank_correlation = 0.75;
    r.dse.chosen_tile = "1x1x16x1x16x1x1x1";
    r.dse.chosen_cycles = 90;
    r.dse.greedy_cycles = 100;
    r.dse.cycles_saved_vs_greedy = 10;
    const std::string tuned = OutputModule::summary(cfg, r).dump();
    EXPECT_NE(tuned.find("\"dse\""), std::string::npos);
    EXPECT_NE(tuned.find("\"chosen_tile\""), std::string::npos);
    EXPECT_NE(tuned.find("1x1x16x1x16x1x1x1"), std::string::npos);
    EXPECT_NE(tuned.find("\"cache_hits\""), std::string::npos);
    EXPECT_NE(tuned.find("\"rank_correlation\""), std::string::npos);
}

TEST(Autotune, MergedSummariesAggregateAcrossLayers)
{
    DseSummary a;
    a.enabled = true;
    a.space_size = 10;
    a.evaluated = 4;
    a.cache_hits = 1;
    a.simulations_run = 3;
    a.rank_correlation = 1.0;
    a.chosen_cycles = 100;
    a.greedy_cycles = 120;
    a.cycles_saved_vs_greedy = 20;

    DseSummary b = a;
    b.evaluated = 4;
    b.rank_correlation = 0.5;

    DseSummary sum;
    sum.merge(a);
    sum.merge(b);
    sum.merge(DseSummary{}); // disabled: must be a no-op
    EXPECT_TRUE(sum.enabled);
    EXPECT_EQ(sum.space_size, 20u);
    EXPECT_EQ(sum.evaluated, 8u);
    EXPECT_EQ(sum.simulations_run, 6u);
    EXPECT_DOUBLE_EQ(sum.rank_correlation, 0.75);
    EXPECT_EQ(sum.cycles_saved_vs_greedy, 40);
}

TEST(ResultCacheTest, ConcurrentHammerStaysConsistent)
{
    TempFile tmp("test_dse_hammer.cache");
    ResultCache cache(tmp.path);

    // 8 threads insert/look up/save over 64 shared keys concurrently.
    // Under TSan/ASan this is the thread-safety regression for the
    // service's shared cache; functionally every key must end up
    // holding one of the values some thread wrote for it.
    constexpr int kThreads = 8;
    constexpr int kKeys = 64;
    constexpr int kIters = 400;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            for (int i = 0; i < kIters; ++i) {
                const int k = (t * 31 + i) % kKeys;
                const std::string key = "hammer-key-" + std::to_string(k);
                CachedOutcome out;
                out.cycles = static_cast<cycle_t>(1000 + k);
                out.energy_uj = static_cast<double>(k);
                out.ms_utilization = 0.5;
                cache.insert(key, out);
                const auto hit = cache.lookup(key);
                ASSERT_TRUE(hit.has_value());
                EXPECT_EQ(hit->cycles, static_cast<cycle_t>(1000 + k));
                if (i % 100 == 0)
                    cache.save();
            }
        });
    }
    for (std::thread &th : threads)
        th.join();

    EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
    cache.save();

    // The persisted file round-trips every entry.
    ResultCache reloaded(tmp.path);
    EXPECT_FALSE(reloaded.loadFailed());
    EXPECT_EQ(reloaded.size(), static_cast<std::size_t>(kKeys));
    for (int k = 0; k < kKeys; ++k) {
        const auto hit =
            reloaded.lookup("hammer-key-" + std::to_string(k));
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->cycles, static_cast<cycle_t>(1000 + k));
    }
}

TEST(ResultCacheTest, TunersShareAnExternalCache)
{
    const HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    TuneOptions opts;
    opts.top_k = 2;
    opts.threads = 1;

    ResultCache shared; // in-memory, externally owned
    TuneReport first;
    {
        AutoTuner tuner(cfg, opts, shared);
        first = tuner.tuneLayer(secLayer());
        EXPECT_GT(first.simulations_run, 0u);
    }
    EXPECT_GT(shared.size(), 0u);
    {
        // A second tuner over the same shared cache re-tunes the same
        // layer without a single new simulation.
        AutoTuner tuner(cfg, opts, shared);
        const TuneReport again = tuner.tuneLayer(secLayer());
        EXPECT_EQ(again.simulations_run, 0u);
        EXPECT_EQ(again.cache_hits, again.ranked.size());
        EXPECT_EQ(again.best.canonical(), first.best.canonical());
        EXPECT_EQ(again.best_cycles, first.best_cycles);
    }
}

} // namespace
} // namespace stonne
