/**
 * @file
 * Event-engine parity tests: the wakeup scheduler (`engine = EVENT`)
 * must be bit-identical to the original tick-everything loops
 * (`engine = TICK`) — cycles, every activity counter, output tensors,
 * watchdog accounting, budget aborts and the recorded trace event
 * stream — on bare units and on every shipped configs/*.cfg, in exact
 * and fast-forward execution, with and without a fault injector.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/watchdog.hpp"
#include "engine/event_engine.hpp"
#include "engine/stonne_api.hpp"
#include "faults/fault_injector.hpp"
#include "mem/global_buffer.hpp"
#include "network/dn_benes.hpp"
#include "network/dn_popn.hpp"
#include "network/dn_tree.hpp"
#include "network/mn_array.hpp"
#include "tensor/prune.hpp"
#include "trace/trace.hpp"

namespace stonne {
namespace {

/** Every counter in `a` must exist in `b` with the same value. */
void
expectSameCounters(const StatsRegistry &a, const StatsRegistry &b)
{
    const auto &ca = a.counters();
    const auto &cb = b.counters();
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].name, cb[i].name);
        EXPECT_EQ(ca[i].value, cb[i].value) << "counter " << ca[i].name;
    }
}

// --- configuration surface --------------------------------------------

TEST(EngineConfig, DefaultsEventAndRoundTrips)
{
    EXPECT_EQ(HardwareConfig().engine_type, EngineType::Event);
    // The default is not emitted, keeping pre-existing config text and
    // checkpoint bytes stable.
    EXPECT_EQ(HardwareConfig().toConfigText().find("engine ="),
              std::string::npos);

    const HardwareConfig tick = HardwareConfig::parse("engine = TICK");
    EXPECT_EQ(tick.engine_type, EngineType::Tick);
    EXPECT_NE(tick.toConfigText().find("engine = TICK"),
              std::string::npos);

    const HardwareConfig round = HardwareConfig::parse(tick.toConfigText());
    EXPECT_EQ(round.engine_type, EngineType::Tick);

    const HardwareConfig ev = HardwareConfig::parse("engine = EVENT");
    EXPECT_EQ(ev.engine_type, EngineType::Event);

    EXPECT_THROW(HardwareConfig::parse("engine = maybe"), FatalError);
}

TEST(EngineConfig, StructuralTextNormalizesTheEngineKnob)
{
    // The engine is an execution policy, not hardware: snapshots taken
    // under one engine must restore under the other.
    const HardwareConfig ev = HardwareConfig::maeriLike(64, 8);
    HardwareConfig tick = ev;
    tick.engine_type = EngineType::Tick;
    EXPECT_EQ(ev.structuralText(), tick.structuralText());
}

// --- wakeup reporting -------------------------------------------------

TEST(NextActiveCycle, DnReportsIdleWhenDrainedAndZeroWhenIssuing)
{
    StatsRegistry s;
    TreeDistributionNetwork dn(64, 8, s);
    EXPECT_EQ(dn.nextActiveCycle(), Unit::kIdle);

    dn.cycle();
    EXPECT_EQ(dn.injectBulk(4, 2, PackageKind::Input), 4);
    // Issued flits retire at the next clock edge.
    EXPECT_EQ(dn.nextActiveCycle(), 0u);
    dn.cycle();
    EXPECT_EQ(dn.nextActiveCycle(), Unit::kIdle);
}

TEST(NextActiveCycle, PureAccountingUnitsDefaultToIdle)
{
    StatsRegistry s;
    MultiplierArray mn(64, MnType::Linear, s);
    EXPECT_EQ(mn.nextActiveCycle(), Unit::kIdle);
}

// --- delivery / drain parity on bare units ----------------------------

TEST(EventEngineDelivery, CyclesAndCountersMatchTickLoop)
{
    // GB read bandwidth (4) below DN bandwidth (8) exercises the
    // min() in the steady-state grant; counts below/at/above one
    // grant exercise the tail handling.
    for (const bool ff : {false, true}) {
        for (const index_t count : {1, 3, 4, 5, 37, 128}) {
            StatsRegistry s1;
            TreeDistributionNetwork dn1(64, 8, s1);
            GlobalBuffer gb1(108, 4, 4, 1, s1);
            Watchdog wd1(1000);
            EventEngine tick(EngineType::Tick, &wd1);
            const cycle_t ref = tick.deliver(dn1, gb1, count, 2,
                                             PackageKind::Input, ff);

            StatsRegistry s2;
            TreeDistributionNetwork dn2(64, 8, s2);
            GlobalBuffer gb2(108, 4, 4, 1, s2);
            Watchdog wd2(1000);
            EventEngine ev(EngineType::Event, &wd2);
            const cycle_t got = ev.deliver(dn2, gb2, count, 2,
                                           PackageKind::Input, ff);

            EXPECT_EQ(ref, got) << "count " << count << " ff " << ff;
            EXPECT_EQ(wd1.cyclesObserved(), wd2.cyclesObserved());
            EXPECT_EQ(wd1.stallCycles(), wd2.stallCycles());
            EXPECT_EQ(tick.now(), ev.now());
            expectSameCounters(s1, s2);
        }
    }
}

TEST(EventEngineDelivery, EveryDnTopologyMatchesTickLoop)
{
    // One run per concrete DN class exercises each devirtualized
    // dispatch arm of the tail loop (fanout 1: the systolic links
    // cannot multicast).
    const auto run = [](EngineType mode, DnType type, StatsRegistry &s,
                        Watchdog &wd) {
        std::unique_ptr<DistributionNetwork> dn;
        switch (type) {
          case DnType::Tree:
            dn = std::make_unique<TreeDistributionNetwork>(64, 8, s);
            break;
          case DnType::Benes:
            dn = std::make_unique<BenesDistributionNetwork>(64, 8, s);
            break;
          case DnType::PointToPoint:
            dn = std::make_unique<PointToPointNetwork>(64, 8, s);
            break;
        }
        GlobalBuffer gb(108, 8, 8, 1, s);
        EventEngine engine(mode, &wd);
        return engine.deliver(*dn, gb, 77, 1, PackageKind::Weight,
                              /*fast_forward=*/false);
    };

    for (const DnType type :
         {DnType::Tree, DnType::Benes, DnType::PointToPoint}) {
        StatsRegistry s1, s2;
        Watchdog wd1(1000), wd2(1000);
        const cycle_t ref = run(EngineType::Tick, type, s1, wd1);
        const cycle_t got = run(EngineType::Event, type, s2, wd2);
        EXPECT_EQ(ref, got) << dnTypeName(type);
        EXPECT_EQ(wd1.cyclesObserved(), wd2.cyclesObserved());
        expectSameCounters(s1, s2);
    }
}

TEST(EventEngineDelivery, DrainMatchesTickLoop)
{
    for (const bool ff : {false, true}) {
        for (const index_t count : {1, 2, 3, 64, 129}) {
            StatsRegistry s1;
            GlobalBuffer gb1(108, 4, 3, 1, s1);
            Watchdog wd1(1000);
            EventEngine tick(EngineType::Tick, &wd1);
            const cycle_t ref = tick.drain(gb1, count, ff);

            StatsRegistry s2;
            GlobalBuffer gb2(108, 4, 3, 1, s2);
            Watchdog wd2(1000);
            EventEngine ev(EngineType::Event, &wd2);
            const cycle_t got = ev.drain(gb2, count, ff);

            EXPECT_EQ(ref, got) << "count " << count << " ff " << ff;
            EXPECT_EQ(wd1.cyclesObserved(), wd2.cyclesObserved());
            EXPECT_EQ(tick.now(), ev.now());
            expectSameCounters(s1, s2);
        }
    }
}

TEST(EventEngineDelivery, FaultInjectorPinsTheExactLoop)
{
    // A fault injector draws from its seeded RNG stream once per
    // delivery cycle; the engines must consume the stream identically,
    // which the *second* delivery verifies (any divergence in the
    // first leaves the streams at different positions).
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = 42;
    fc.flit_drop_rate = 0.05;

    const auto run = [&fc](EngineType mode, StatsRegistry &s,
                           Watchdog &wd) {
        TreeDistributionNetwork dn(64, 8, s);
        GlobalBuffer gb(108, 8, 8, 1, s);
        FaultInjector faults(fc, 64, s);
        EventEngine engine(mode, &wd, &faults);
        cycle_t cycles = engine.deliver(dn, gb, 200, 2,
                                        PackageKind::Input, true);
        cycles += engine.deliver(dn, gb, 150, 1, PackageKind::Weight,
                                 true);
        return cycles;
    };

    StatsRegistry s1, s2;
    Watchdog wd1(10000), wd2(10000);
    const cycle_t ref = run(EngineType::Tick, s1, wd1);
    const cycle_t got = run(EngineType::Event, s2, wd2);
    EXPECT_EQ(ref, got);
    EXPECT_EQ(wd1.cyclesObserved(), wd2.cyclesObserved());
    expectSameCounters(s1, s2);
}

// --- budget aborts ----------------------------------------------------

TEST(EventEngineBudget, AbortsOnTheSameCycleWithTheSameMessage)
{
    // The steady-state skip must be clamped so an armed
    // simulated-cycle budget aborts with the identical cycles-observed
    // figure the exact loop reports.
    const auto run = [](EngineType mode) {
        StatsRegistry s;
        TreeDistributionNetwork dn(64, 8, s);
        GlobalBuffer gb(108, 4, 4, 1, s);
        Watchdog wd(100000);
        wd.setCycleBudget(17);
        EventEngine engine(mode, &wd);
        std::string what;
        cycle_t observed = 0;
        try {
            (void)engine.deliver(dn, gb, 400, 2, PackageKind::Input,
                                 /*fast_forward=*/false);
            ADD_FAILURE() << "budget must abort the delivery";
        } catch (const BudgetExceededError &e) {
            what = e.what();
            observed = wd.cyclesObserved();
        }
        return std::make_pair(what, observed);
    };

    const auto [ref_what, ref_cycles] = run(EngineType::Tick);
    const auto [got_what, got_cycles] = run(EngineType::Event);
    EXPECT_EQ(ref_what, got_what);
    EXPECT_EQ(ref_cycles, got_cycles);
    EXPECT_NE(ref_what.find("cycles observed"), std::string::npos);
}

TEST(EventEngineBudget, BudgetAlreadySpentStillAborts)
{
    // A budget exhausted by earlier operations clamps the skip to
    // zero; the exact loop's first tick must still fire.
    const auto run = [](EngineType mode) {
        StatsRegistry s;
        TreeDistributionNetwork dn(64, 8, s);
        GlobalBuffer gb(108, 4, 4, 1, s);
        Watchdog wd(100000);
        wd.setCycleBudget(5);
        wd.bulkTick(5, 1); // earlier work consumed the whole budget
        EventEngine engine(mode, &wd);
        cycle_t observed = 0;
        try {
            (void)engine.deliver(dn, gb, 64, 1, PackageKind::Input,
                                 false);
            ADD_FAILURE() << "budget must abort the delivery";
        } catch (const BudgetExceededError &) {
            observed = wd.cyclesObserved();
        }
        return observed;
    };
    EXPECT_EQ(run(EngineType::Tick), run(EngineType::Event));
}

// --- whole-simulation parity on every shipped config ------------------

std::vector<std::string>
configFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator("configs"))
        if (entry.path().extension() == ".cfg")
            files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());
    return files;
}

struct RunOutcome {
    SimulationResult sim;
    std::deque<StatCounter> counters;
    Tensor output;
};

/** Run a small layer appropriate for the config's controller. */
RunOutcome
runOnce(HardwareConfig cfg, EngineType engine, bool fast_forward)
{
    cfg.engine_type = engine;
    cfg.fast_forward = fast_forward;
    Stonne st(cfg);
    Rng rng(7);

    if (cfg.controller_type == ControllerType::Sparse) {
        const LayerSpec layer =
            LayerSpec::sparseGemm("parity_spmm", 32, 16, 64);
        Tensor b({64, 16});
        Tensor a({32, 64});
        b.fillUniform(rng, 0.0f, 1.0f);
        a.fillNormal(rng, 0.0f, 0.2f);
        pruneFiltersWithJitter(a, 0.5, 0.15, rng);
        st.configureSpmm(layer);
        st.configureData(std::move(b), std::move(a));
    } else {
        Conv2dShape c;
        c.R = 3;
        c.S = 3;
        c.C = 8;
        c.K = 8;
        c.X = 8;
        c.Y = 8;
        c.padding = 1;
        const LayerSpec layer = LayerSpec::convolution("parity_conv", c);
        Tensor input({c.N, c.C, c.X, c.Y});
        Tensor weights({c.K, c.cPerGroup(), c.R, c.S});
        Tensor bias({c.K});
        input.fillUniform(rng, 0.0f, 1.0f);
        weights.fillNormal(rng, 0.0f, 0.2f);
        bias.fillUniform(rng, -0.1f, 0.1f);
        st.configureConv(layer);
        st.configureData(std::move(input), std::move(weights),
                         std::move(bias));
    }

    RunOutcome r;
    r.sim = st.runOperation();
    r.counters = st.stats().counters();
    r.output = st.output();
    return r;
}

TEST(EventEngineParity, AllShippedConfigsAreBitIdentical)
{
    const std::vector<std::string> files = configFiles();
    ASSERT_FALSE(files.empty());
    bool any_faulty = false;

    for (const std::string &path : files) {
        const HardwareConfig cfg = HardwareConfig::parseFile(path);
        any_faulty |= cfg.faults.enabled;
        for (const bool ff : {false, true}) {
            SCOPED_TRACE(path + (ff ? " [fast-forward]" : " [exact]"));

            const RunOutcome ref = runOnce(cfg, EngineType::Tick, ff);
            const RunOutcome got = runOnce(cfg, EngineType::Event, ff);

            EXPECT_EQ(ref.sim.cycles, got.sim.cycles);
            EXPECT_EQ(ref.sim.macs, got.sim.macs);
            EXPECT_EQ(ref.sim.skipped_macs, got.sim.skipped_macs);
            EXPECT_EQ(ref.sim.mem_accesses, got.sim.mem_accesses);
            EXPECT_DOUBLE_EQ(ref.sim.ms_utilization,
                             got.sim.ms_utilization);

            ASSERT_EQ(ref.counters.size(), got.counters.size());
            for (std::size_t i = 0; i < ref.counters.size(); ++i) {
                EXPECT_EQ(ref.counters[i].name, got.counters[i].name);
                EXPECT_EQ(ref.counters[i].value, got.counters[i].value)
                    << "counter " << ref.counters[i].name;
            }

            ASSERT_EQ(ref.output.shape(), got.output.shape());
            EXPECT_EQ(
                std::memcmp(ref.output.data(), got.output.data(),
                            static_cast<std::size_t>(ref.output.size()) *
                                sizeof(float)),
                0);
        }
    }
    // The sweep must cover a config whose fault injector pins the
    // delivery stream to the exact loop under both engines.
    EXPECT_TRUE(any_faulty);
}

// --- trace parity -----------------------------------------------------

std::vector<TraceEvent>
runTraced(EngineType engine, const std::string &file)
{
    HardwareConfig cfg = HardwareConfig::maeriLike(128, 8);
    cfg.engine_type = engine;
    cfg.fast_forward = false; // exact mode: no fast-forward track
    cfg.trace = true;
    cfg.trace_file = file;
    // A short window lands many sample boundaries inside skipped
    // spans, exercising the steady-state interpolation.
    cfg.trace_sample_cycles = 16;

    Stonne st(cfg);
    Rng rng(11);
    Conv2dShape c;
    c.R = 3;
    c.S = 3;
    c.C = 8;
    c.K = 8;
    c.X = 8;
    c.Y = 8;
    c.padding = 1;
    Tensor input({c.N, c.C, c.X, c.Y});
    Tensor weights({c.K, c.cPerGroup(), c.R, c.S});
    input.fillUniform(rng, 0.0f, 1.0f);
    weights.fillNormal(rng, 0.0f, 0.2f);
    st.configureConv(LayerSpec::convolution("traced_conv", c));
    st.configureData(std::move(input), std::move(weights), Tensor());
    (void)st.runOperation();

    const Tracer *tr = st.accelerator().tracer();
    EXPECT_NE(tr, nullptr);
    return tr->events();
}

TEST(EventEngineParity, TraceEventStreamIsIdentical)
{
    // Exact mode records no fast-forward spans under either engine, so
    // the full event streams — phases, counter samples, gauges,
    // instants, timestamps — must match event-for-event.
    const std::vector<TraceEvent> ref = runTraced(
        EngineType::Tick, "/tmp/stonne_event_parity_tick.trace.json");
    const std::vector<TraceEvent> got = runTraced(
        EngineType::Event, "/tmp/stonne_event_parity_event.trace.json");

    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE("event " + std::to_string(i) + " '" + ref[i].name +
                     "'");
        EXPECT_EQ(ref[i].kind, got[i].kind);
        EXPECT_EQ(ref[i].name, got[i].name);
        EXPECT_EQ(ref[i].ts, got[i].ts);
        EXPECT_EQ(ref[i].dur, got[i].dur);
        EXPECT_EQ(ref[i].track, got[i].track);
        EXPECT_EQ(ref[i].value, got[i].value);
        EXPECT_DOUBLE_EQ(ref[i].dvalue, got[i].dvalue);
        EXPECT_EQ(ref[i].args, got[i].args);
    }
    std::filesystem::remove("/tmp/stonne_event_parity_tick.trace.json");
    std::filesystem::remove("/tmp/stonne_event_parity_event.trace.json");
}

} // namespace
} // namespace stonne
