/**
 * @file
 * Unit tests for the tile abstraction and the mapper's tile generation
 * and signal derivation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <unordered_set>

#include "common/logging.hpp"
#include "controller/mapper.hpp"

namespace stonne {
namespace {

LayerSpec
convLayer(index_t r, index_t s, index_t c, index_t k, index_t x, index_t y,
          index_t g = 1, index_t stride = 1, index_t pad = 0)
{
    Conv2dShape shape;
    shape.R = r;
    shape.S = s;
    shape.C = c;
    shape.K = k;
    shape.G = g;
    shape.X = x;
    shape.Y = y;
    shape.stride = stride;
    shape.padding = pad;
    return LayerSpec::convolution("conv", shape);
}

TEST(Tile, DerivedQuantities)
{
    Tile t;
    t.t_r = 3;
    t.t_s = 3;
    t.t_c = 2;
    t.t_k = 4;
    t.t_y = 2;
    EXPECT_EQ(t.vnSize(), 18);
    EXPECT_EQ(t.numVns(), 8);
    EXPECT_EQ(t.usedMs(), 144);
    EXPECT_EQ(t.folds(18), 1);
    EXPECT_EQ(t.folds(54), 3);
    EXPECT_EQ(t.folds(19), 2);
}

TEST(Tile, ValidationAgainstLayerBounds)
{
    const LayerSpec layer = convLayer(3, 3, 8, 16, 10, 10);
    Tile t;
    t.t_r = 3;
    t.t_s = 3;
    t.t_c = 8;
    t.t_k = 2;
    EXPECT_NO_THROW(t.validate(layer, 256));

    Tile bad = t;
    bad.t_k = 32; // more filters than the layer has
    EXPECT_THROW(bad.validate(layer, 4096), FatalError);

    Tile big = t;
    big.t_k = 4; // 288 switches > 256
    EXPECT_THROW(big.validate(layer, 256), FatalError);
}

TEST(Tile, GemmTilesOnlyUseGemmDims)
{
    const LayerSpec gemm = LayerSpec::gemmLayer("g", 8, 16, 32);
    Tile t;
    t.t_c = 32;
    t.t_k = 2;
    t.t_y = 4;
    EXPECT_NO_THROW(t.validate(gemm, 256));
    Tile bad = t;
    bad.t_r = 2;
    EXPECT_THROW(bad.validate(gemm, 256), FatalError);
}

TEST(Tile, EqualityComparesEveryDimension)
{
    Tile a;
    a.t_r = 3;
    a.t_s = 3;
    a.t_c = 2;
    a.t_k = 4;
    Tile b = a;
    EXPECT_EQ(a, b);
    b.t_y = 2;
    EXPECT_NE(a, b);
    b = a;
    b.t_g = 2;
    EXPECT_NE(a, b);
}

TEST(Tile, CanonicalFormIsStableAndDistinct)
{
    Tile a;
    a.t_r = 3;
    a.t_s = 3;
    a.t_c = 2;
    a.t_k = 4;
    EXPECT_EQ(a.canonical(), "3x3x2x1x4x1x1x1");
    EXPECT_EQ(Tile{}.canonical(), "1x1x1x1x1x1x1x1");

    // Swapping values between dimensions must change the key: the
    // canonical form is positional, not a multiset of the dims.
    Tile b = a;
    std::swap(b.t_r, b.t_k);
    EXPECT_NE(a.canonical(), b.canonical());
}

TEST(Tile, HashMatchesEqualityAndSpreadsDistinctTiles)
{
    Tile a;
    a.t_r = 3;
    a.t_s = 3;
    a.t_c = 2;
    const Tile b = a;
    EXPECT_EQ(std::hash<Tile>{}(a), std::hash<Tile>{}(b));

    // Equal tiles collapse to one set entry; distinct tiles don't.
    std::unordered_set<Tile> set;
    set.insert(a);
    set.insert(b);
    EXPECT_EQ(set.size(), 1u);
    std::size_t distinct = 0;
    for (index_t c = 1; c <= 8; ++c)
        for (index_t k = 1; k <= 8; ++k) {
            Tile t;
            t.t_c = c;
            t.t_k = k;
            distinct += set.insert(t).second ? 1 : 0;
        }
    // All 64 (c, k) tiles differ from each other and from `a`.
    EXPECT_EQ(distinct, 64u);
    EXPECT_EQ(set.size(), 65u);
}

TEST(Mapper, SmallWindowFillsArrayWithClusters)
{
    Mapper m(256);
    const LayerSpec layer = convLayer(3, 3, 4, 32, 16, 16);
    const Tile t = m.generateTile(layer);
    // Whole 36-element window per cluster, several clusters mapped.
    EXPECT_EQ(t.vnSize(), 36);
    EXPECT_GT(t.numVns(), 1);
    EXPECT_LE(t.usedMs(), 256);
}

TEST(Mapper, HugeWindowFoldsSingleCluster)
{
    Mapper m(64);
    const LayerSpec layer = convLayer(3, 3, 512, 4, 8, 8);
    const Tile t = m.generateTile(layer);
    EXPECT_EQ(t.numVns(), 1);
    const MappingSignals s = m.signals(layer, t);
    EXPECT_TRUE(s.folding);
    EXPECT_GT(s.folds, 1);
}

TEST(Mapper, SignalsDeriveFoldingAndUtilization)
{
    Mapper m(256);
    const LayerSpec layer = convLayer(3, 3, 8, 16, 12, 12);
    const Tile t = m.generateTile(layer);
    const MappingSignals s = m.signals(layer, t);
    EXPECT_EQ(s.window, 72);
    EXPECT_EQ(s.vn_size, t.vnSize());
    EXPECT_EQ(s.num_vns, t.numVns());
    EXPECT_GT(s.ms_utilization, 0.25);
    EXPECT_LE(s.ms_utilization, 1.0);
}

TEST(Mapper, GemmTileCoversColumns)
{
    Mapper m(128);
    const LayerSpec gemm = LayerSpec::gemmLayer("g", 6, 400, 16);
    const Tile t = m.generateTile(gemm);
    // The search may slice the dot product, but it must map several
    // clusters and never beat the naive full-k tile on total steps.
    EXPECT_GE(t.numVns(), 2);
    EXPECT_LE(t.usedMs(), 128);
    const double steps = static_cast<double>(t.folds(16)) *
        std::ceil(6.0 / static_cast<double>(t.t_k)) *
        std::ceil(400.0 / static_cast<double>(t.t_y));
    EXPECT_LE(steps, 1.0 * 1 * 400); // naive: t_c=16, t_k=6, t_y=1
}

TEST(Mapper, DepthwiseConvolutionTiles)
{
    // Depthwise: groups == channels, 1 channel per group.
    Mapper m(64);
    const LayerSpec layer = convLayer(3, 3, 16, 16, 8, 8, /*g=*/16);
    const Tile t = m.generateTile(layer);
    EXPECT_EQ(t.t_c, 1);
    EXPECT_NO_THROW(t.validate(layer, 64));
}

TEST(Mapper, MaxPoolTileUsesWindowClusters)
{
    Conv2dShape in;
    in.C = 8;
    in.X = 8;
    in.Y = 8;
    const LayerSpec pool = LayerSpec::maxPool("p", in, 2, 2);
    Mapper m(64);
    const Tile t = m.generateTile(pool);
    EXPECT_EQ(t.t_c, 4); // 2x2 window
    EXPECT_LE(t.usedMs(), 64);
}

} // namespace
} // namespace stonne
