/**
 * @file
 * Tests for the cycle-level tracing subsystem: Tracer event recording
 * (samples, phase spans, instants, fast-forward regions), structural
 * validity of the emitted Chrome trace-event JSON, the telescoping
 * samples-sum-to-aggregate-counters invariant, exact-vs-fast-forward
 * trace parity, deadlock post-mortem traces and the trace config keys.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/watchdog.hpp"
#include "controller/delivery.hpp"
#include "engine/output_module.hpp"
#include "engine/stonne_api.hpp"
#include "mem/global_buffer.hpp"
#include "trace/trace.hpp"

namespace stonne {
namespace {

// --- a strict mini JSON parser ----------------------------------------
//
// Validating the trace *file* (not just the in-memory events) needs a
// reader on this side of the writer: any syntax error — unescaped
// control character, trailing comma, bad number — throws, so a test
// that parses the file proves a generic JSON consumer can too.

struct JNode {
    enum class T { Null, Bool, Num, Str, Arr, Obj };
    T t = T::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JNode> arr;
    std::vector<std::pair<std::string, JNode>> obj;

    const JNode *find(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : text_(std::move(text)) {}

    JNode parse()
    {
        const JNode root = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after the JSON value");
        return root;
    }

  private:
    [[noreturn]] void fail(const std::string &why) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + why);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    JNode value()
    {
        skipWs();
        const char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"') {
            JNode n;
            n.t = JNode::T::Str;
            n.str = string();
            return n;
        }
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            literal("null");
            return JNode{};
        }
        return number();
    }

    void literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("bad literal, expected '") + word + "'");
            ++pos_;
        }
    }

    JNode boolean()
    {
        JNode n;
        n.t = JNode::T::Bool;
        if (peek() == 't') {
            literal("true");
            n.b = true;
        } else {
            literal("false");
        }
        return n;
    }

    JNode number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        JNode n;
        n.t = JNode::T::Num;
        std::size_t used = 0;
        n.num = std::stod(text_.substr(start, pos_ - start), &used);
        if (used != pos_ - start)
            fail("malformed number");
        return n;
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_++]);
            if (c == '"')
                return out;
            if (c < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                continue;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
                break;
              }
              default:
                fail("unknown escape character");
            }
        }
    }

    JNode array()
    {
        expect('[');
        JNode n;
        n.t = JNode::T::Arr;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return n;
        }
        while (true) {
            n.arr.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return n;
        }
    }

    JNode object()
    {
        expect('{');
        JNode n;
        n.t = JNode::T::Obj;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return n;
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            n.obj.emplace_back(std::move(key), value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return n;
        }
    }

    std::string text_;
    std::size_t pos_ = 0;
};

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

JNode
parseTraceFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return JsonParser(ss.str()).parse();
}

double
numField(const JNode &obj, const std::string &key)
{
    const JNode *n = obj.find(key);
    EXPECT_NE(n, nullptr) << "missing field " << key;
    EXPECT_EQ(n->t, JNode::T::Num);
    return n->num;
}

std::string
strField(const JNode &obj, const std::string &key)
{
    const JNode *n = obj.find(key);
    EXPECT_NE(n, nullptr) << "missing field " << key;
    EXPECT_EQ(n->t, JNode::T::Str);
    return n->str;
}

// --- Tracer unit behaviour --------------------------------------------

TEST(TracerUnit, RejectsBadConstruction)
{
    StatsRegistry s;
    EXPECT_THROW(Tracer(s, 0, "t.json", "acc"), FatalError);
    EXPECT_THROW(Tracer(s, 8, "", "acc"), FatalError);
}

TEST(TracerUnit, TickSamplesOnTheGridWithWindowedDeltas)
{
    StatsRegistry s;
    StatCounter &reads = s.counter("gb.reads", StatGroup::GlobalBuffer);
    Tracer tr(s, 4, tmpPath("tick.trace.json"), "acc");

    // 3 reads per cycle for 8 cycles: samples at ts 4 and 8, each
    // carrying the 12-read window delta and a 3.0 utilization gauge.
    for (int c = 0; c < 8; ++c) {
        reads.value += 3;
        tr.tick();
    }
    EXPECT_EQ(tr.now(), 8u);

    std::vector<const TraceEvent *> counters, gauges;
    for (const TraceEvent &ev : tr.events()) {
        if (ev.kind == TraceEvent::Kind::Counter)
            counters.push_back(&ev);
        if (ev.kind == TraceEvent::Kind::Gauge)
            gauges.push_back(&ev);
    }
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0]->ts, 4u);
    EXPECT_EQ(counters[0]->value, 12u);
    EXPECT_EQ(counters[1]->ts, 8u);
    EXPECT_EQ(counters[1]->value, 12u);
    ASSERT_EQ(gauges.size(), 2u);
    EXPECT_EQ(gauges[0]->name, "util.GB");
    EXPECT_DOUBLE_EQ(gauges[0]->dvalue, 3.0);
}

TEST(TracerUnit, OccupancyCountersFeedTheOccGaugeNotUtilization)
{
    StatsRegistry s;
    StatCounter &reads = s.counter("gb.reads", StatGroup::GlobalBuffer);
    StatCounter &occ = s.counter("gb.write_queue_occ",
                                 StatGroup::GlobalBuffer,
                                 StatKind::Occupancy);
    Tracer tr(s, 4, tmpPath("occ.trace.json"), "acc");

    // 2 reads and 6 queued elements per cycle: the utilization gauge
    // must only see the activity counter and the occupancy gauge only
    // the occupancy integral — a deep backlog must not read as
    // compute.
    for (int c = 0; c < 4; ++c) {
        reads.value += 2;
        occ.value += 6;
        tr.tick();
    }

    const TraceEvent *util = nullptr, *occg = nullptr;
    for (const TraceEvent &ev : tr.events()) {
        if (ev.kind != TraceEvent::Kind::Gauge)
            continue;
        if (ev.name == "util.GB")
            util = &ev;
        if (ev.name == "occ.GB")
            occg = &ev;
    }
    ASSERT_NE(util, nullptr);
    EXPECT_DOUBLE_EQ(util->dvalue, 2.0);
    ASSERT_NE(occg, nullptr);
    EXPECT_DOUBLE_EQ(occg->dvalue, 6.0);
}

TEST(TracerUnit, BulkRegionSamplesMatchTheExactLoop)
{
    // The same steady-state activity (5 ops/cycle for 20 cycles) once
    // through the per-cycle loop and once as a closed-form bulk
    // region: every counter sample and gauge must be bit-identical —
    // the invariant the whole-run parity test leans on.
    StatsRegistry s1;
    StatCounter &c1 = s1.counter("mn.ops", StatGroup::MultiplierNetwork);
    Tracer exact(s1, 8, tmpPath("exact.trace.json"), "acc");
    for (int c = 0; c < 20; ++c) {
        c1.value += 5;
        exact.tick();
    }

    StatsRegistry s2;
    StatCounter &c2 = s2.counter("mn.ops", StatGroup::MultiplierNetwork);
    Tracer fast(s2, 8, tmpPath("fast.trace.json"), "acc");
    fast.bulkBegin();
    c2.value += 100;
    fast.bulkEnd(20, "ff.region");

    EXPECT_EQ(exact.now(), fast.now());

    auto filtered = [](const Tracer &t) {
        std::vector<TraceEvent> out;
        for (const TraceEvent &ev : t.events())
            if (!(ev.kind == TraceEvent::Kind::Span &&
                  ev.track == Tracer::kFastForwardTrack))
                out.push_back(ev);
        return out;
    };
    const std::vector<TraceEvent> a = filtered(exact);
    const std::vector<TraceEvent> b = filtered(fast);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].ts, b[i].ts);
        EXPECT_EQ(a[i].value, b[i].value);
        EXPECT_DOUBLE_EQ(a[i].dvalue, b[i].dvalue);
    }

    // The fast-forward span itself records the region's deltas.
    const TraceEvent &span = fast.events().front();
    ASSERT_EQ(span.kind, TraceEvent::Kind::Span);
    EXPECT_EQ(span.name, "ff.region");
    EXPECT_EQ(span.dur, 20u);
    ASSERT_EQ(span.args.size(), 1u);
    EXPECT_EQ(span.args[0].first, "mn.ops");
    EXPECT_EQ(span.args[0].second, 100u);
}

TEST(TracerUnit, PhaseSpansCloseOnChangeAndSkipIdle)
{
    StatsRegistry s;
    Tracer tr(s, 1000, tmpPath("phase.trace.json"), "acc");

    tr.setPhase("input streaming");
    tr.advance(10);
    tr.setPhase("output drain");
    tr.advance(4);
    tr.setPhase("idle");
    tr.advance(5);
    tr.setPhase("input streaming"); // zero-length: no span for it yet
    tr.setPhase("idle");

    std::vector<const TraceEvent *> spans;
    for (const TraceEvent &ev : tr.events())
        if (ev.kind == TraceEvent::Kind::Span)
            spans.push_back(&ev);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0]->name, "input streaming");
    EXPECT_EQ(spans[0]->ts, 0u);
    EXPECT_EQ(spans[0]->dur, 10u);
    EXPECT_EQ(spans[0]->track, Tracer::kPhaseTrack);
    EXPECT_EQ(spans[1]->name, "output drain");
    EXPECT_EQ(spans[1]->ts, 10u);
    EXPECT_EQ(spans[1]->dur, 4u);
}

TEST(TracerUnit, InstantEventsLandOnTheEventTrack)
{
    StatsRegistry s;
    Tracer tr(s, 1000, tmpPath("instant.trace.json"), "acc");
    tr.advance(7);
    tr.instant("flit_drop", 3);
    const TraceEvent &ev = tr.events().back();
    EXPECT_EQ(ev.kind, TraceEvent::Kind::Instant);
    EXPECT_EQ(ev.name, "flit_drop");
    EXPECT_EQ(ev.ts, 7u);
    EXPECT_EQ(ev.value, 3u);
    EXPECT_EQ(ev.track, Tracer::kEventTrack);
}

TEST(TracerUnit, NestedBulkRegionsPanic)
{
    StatsRegistry s;
    Tracer tr(s, 8, tmpPath("nested.trace.json"), "acc");
    tr.bulkBegin();
    EXPECT_THROW(tr.bulkBegin(), PanicError);
    tr.bulkEnd(1, "x");
    EXPECT_THROW(tr.bulkEnd(1, "x"), PanicError);
}

TEST(TracerUnit, FlushWritesParsableJsonWithTailSample)
{
    const std::string path = tmpPath("flush.trace.json");
    StatsRegistry s;
    StatCounter &reads = s.counter("gb.reads", StatGroup::GlobalBuffer);
    Tracer tr(s, 4, path, "unit-acc");

    tr.setPhase("input streaming");
    for (int c = 0; c < 6; ++c) { // 6 is off the 4-cycle grid
        reads.value += 2;
        tr.tick();
    }
    tr.flush();

    const JNode root = parseTraceFile(path);
    const JNode *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->t, JNode::T::Arr);

    // The tail sample at ts 6 closes the telescoping series: on-grid
    // window (8 reads) plus tail window (4 reads) = the counter value.
    double sum = 0.0;
    bool saw_process_name = false;
    for (const JNode &e : events->arr) {
        const std::string ph = strField(e, "ph");
        if (ph == "M") {
            if (strField(e, "name") == "process_name")
                saw_process_name = true;
            continue;
        }
        if (ph == "C" && strField(e, "name") == "gb.reads")
            sum += numField(*e.find("args"), "delta");
    }
    EXPECT_TRUE(saw_process_name);
    EXPECT_EQ(static_cast<count_t>(sum), reads.value);
    EXPECT_EQ(static_cast<count_t>(sum), 12u);

    const JNode *other = root.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(strField(*other, "clock_unit"), "cycle");
    EXPECT_EQ(numField(*other, "sample_cycles"), 4.0);
    std::remove(path.c_str());
}

// --- whole-simulation traces ------------------------------------------

/** Run a small conv on a maeri-like instance, returning the Stonne. */
std::unique_ptr<Stonne>
runTracedConv(HardwareConfig cfg, SimulationResult *out)
{
    auto st = std::make_unique<Stonne>(cfg);
    Conv2dShape c;
    c.R = 3;
    c.S = 3;
    c.C = 8;
    c.K = 8;
    c.X = 8;
    c.Y = 8;
    c.padding = 1;
    Rng rng(7);
    Tensor input({c.N, c.C, c.X, c.Y});
    Tensor weights({c.K, c.cPerGroup(), c.R, c.S});
    Tensor bias({c.K});
    input.fillUniform(rng, 0.0f, 1.0f);
    weights.fillNormal(rng, 0.0f, 0.2f);
    bias.fillUniform(rng, -0.1f, 0.1f);
    st->configureConv(LayerSpec::convolution("traced_conv", c));
    st->configureData(std::move(input), std::move(weights),
                      std::move(bias));
    *out = st->runOperation();
    return st;
}

TEST(TracedRun, ProducesLoadableJsonWhoseSamplesSumToTheCounters)
{
    const std::string path = tmpPath("conv.trace.json");
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.trace = true;
    cfg.trace_file = path;
    cfg.trace_sample_cycles = 64;

    SimulationResult r;
    std::unique_ptr<Stonne> st = runTracedConv(cfg, &r);
    EXPECT_EQ(r.trace_path, path);

    const JNode root = parseTraceFile(path);
    const JNode *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);

    // Structural validity plus the aggregate invariant: per counter,
    // the windowed deltas telescope to exactly the aggregate value.
    std::map<std::string, count_t> sums;
    bool saw_phase_span = false;
    for (const JNode &e : events->arr) {
        const std::string ph = strField(e, "ph");
        ASSERT_TRUE(ph == "M" || ph == "X" || ph == "C" || ph == "i")
            << "unexpected ph " << ph;
        if (ph == "X") {
            EXPECT_GE(numField(e, "dur"), 1.0);
            if (numField(e, "tid") == Tracer::kPhaseTrack)
                saw_phase_span = true;
        }
        if (ph == "C") {
            const JNode *args = e.find("args");
            ASSERT_NE(args, nullptr);
            if (const JNode *delta = args->find("delta"))
                sums[strField(e, "name")] +=
                    static_cast<count_t>(delta->num);
        }
    }
    EXPECT_TRUE(saw_phase_span);
    ASSERT_FALSE(sums.empty());
    for (const StatCounter &c : st->stats().counters()) {
        if (c.value == 0)
            continue;
        EXPECT_EQ(sums[c.name], c.value) << "counter " << c.name;
    }

    // The output module's summary points at the trace.
    const std::string summary =
        OutputModule::summary(cfg, r).dump();
    EXPECT_NE(summary.find("\"trace_path\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(TracedRun, ExactAndFastForwardTracesAreIdentical)
{
    auto run = [](bool ff, const std::string &path, SimulationResult *r) {
        HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
        cfg.fast_forward = ff;
        cfg.trace = true;
        cfg.trace_file = path;
        cfg.trace_sample_cycles = 32;
        return runTracedConv(cfg, r);
    };

    const std::string pe = tmpPath("parity_exact.trace.json");
    const std::string pf = tmpPath("parity_fast.trace.json");
    SimulationResult re, rf;
    std::unique_ptr<Stonne> exact = run(false, pe, &re);
    std::unique_ptr<Stonne> fast = run(true, pf, &rf);
    EXPECT_EQ(re.cycles, rf.cycles);

    // Only the fast-forward track may differ between the modes: drop
    // it and everything left — phase spans, counter samples, gauges,
    // instants — must match event for event.
    auto filtered = [](const Stonne &st) {
        std::vector<TraceEvent> out;
        for (const TraceEvent &ev :
             const_cast<Stonne &>(st).accelerator().tracer()->events())
            if (!(ev.kind == TraceEvent::Kind::Span &&
                  ev.track == Tracer::kFastForwardTrack))
                out.push_back(ev);
        return out;
    };
    const std::vector<TraceEvent> a = filtered(*exact);
    const std::vector<TraceEvent> b = filtered(*fast);
    ASSERT_EQ(a.size(), b.size());
    bool fast_spans_seen = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
        EXPECT_EQ(a[i].name, b[i].name) << "event " << i;
        EXPECT_EQ(a[i].ts, b[i].ts) << "event " << a[i].name;
        EXPECT_EQ(a[i].dur, b[i].dur) << "event " << a[i].name;
        EXPECT_EQ(a[i].track, b[i].track) << "event " << a[i].name;
        EXPECT_EQ(a[i].value, b[i].value) << "event " << a[i].name;
        EXPECT_DOUBLE_EQ(a[i].dvalue, b[i].dvalue)
            << "event " << a[i].name;
    }
    for (const TraceEvent &ev :
         fast->accelerator().tracer()->events())
        if (ev.kind == TraceEvent::Kind::Span &&
            ev.track == Tracer::kFastForwardTrack)
            fast_spans_seen = true;
    EXPECT_TRUE(fast_spans_seen)
        << "fast-forward mode must record at least one bulk region";
    std::remove(pe.c_str());
    std::remove(pf.c_str());
}

TEST(TracedRun, TraceOffLeavesNoPathAndNoFile)
{
    const std::string path = tmpPath("off.trace.json");
    std::remove(path.c_str());
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.trace_file = path; // set but inert: trace stays OFF

    SimulationResult r;
    std::unique_ptr<Stonne> st = runTracedConv(cfg, &r);
    EXPECT_TRUE(r.trace_path.empty());
    EXPECT_FALSE(std::filesystem::exists(path));
    const std::string summary = OutputModule::summary(cfg, r).dump();
    EXPECT_EQ(summary.find("trace_path"), std::string::npos);
}

// --- deadlock post-mortem ---------------------------------------------

/** A distribution network that never accepts a flit. */
class WedgedNetwork : public DistributionNetwork
{
  public:
    WedgedNetwork(index_t ms, index_t bw)
        : DistributionNetwork(DnKind::Tree, ms, bw)
    {
    }
    bool inject(const DataPackage &) override { return false; }
    index_t
    injectBulk(index_t, index_t, PackageKind) override
    {
        return 0;
    }
    void
    bulkAdvance(cycle_t, index_t, index_t, PackageKind) override
    {
        panic("a wedged fabric cannot fast-forward");
    }
    void cycle() override {}
    void reset() override {}
    std::string name() const override { return "wedged_dn"; }
};

TEST(TracedRun, DeadlockLeavesAPostMortemTrace)
{
    const std::string path = tmpPath("deadlock.trace.json");
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.watchdog_cycles = 32;
    cfg.trace = true;
    cfg.trace_file = path;
    cfg.trace_sample_cycles = 8;
    Accelerator accel(cfg);
    WedgedNetwork wedged(64, 16);

    try {
        deliverElements(wedged, accel.gb(), 8, 1, PackageKind::Input,
                        &accel.watchdog(), nullptr,
                        /*fast_forward=*/false, accel.tracer());
        FAIL() << "a wedged delivery must raise DeadlockError";
    } catch (const DeadlockError &) {
        // What Stonne::runOperation does on the same path.
        accel.tracer()->instant("deadlock", 0);
        accel.tracer()->flush();
    }

    // The clock ticked through every stalled cycle, so the instant
    // lands at the abort point and the file is complete and valid.
    EXPECT_EQ(accel.tracer()->now(), 32u);
    const JNode root = parseTraceFile(path);
    bool saw_deadlock = false;
    for (const JNode &e : root.find("traceEvents")->arr)
        if (strField(e, "ph") == "i" &&
            strField(e, "name") == "deadlock") {
            saw_deadlock = true;
            EXPECT_EQ(numField(e, "ts"), 32.0);
        }
    EXPECT_TRUE(saw_deadlock);
    std::remove(path.c_str());
}

// --- configuration surface --------------------------------------------

TEST(TraceConfig, DefaultsOffParsesAndRoundTrips)
{
    EXPECT_FALSE(HardwareConfig().trace);
    EXPECT_EQ(HardwareConfig().toConfigText().find("trace ="),
              std::string::npos);

    const HardwareConfig on = HardwareConfig::parse(
        "trace = ON\n"
        "trace_file = run.trace.json\n"
        "trace_sample_cycles = 32\n");
    EXPECT_TRUE(on.trace);
    EXPECT_EQ(on.trace_file, "run.trace.json");
    EXPECT_EQ(on.trace_sample_cycles, 32);

    const HardwareConfig round = HardwareConfig::parse(on.toConfigText());
    EXPECT_TRUE(round.trace);
    EXPECT_EQ(round.trace_file, "run.trace.json");
    EXPECT_EQ(round.trace_sample_cycles, 32);
}

TEST(TraceConfig, ValidateRejectsBadValues)
{
    HardwareConfig bad_sample;
    bad_sample.trace_sample_cycles = 0;
    EXPECT_THROW(bad_sample.validate(), FatalError);

    HardwareConfig no_file;
    no_file.trace = true;
    no_file.trace_file.clear();
    EXPECT_THROW(no_file.validate(), FatalError);

    EXPECT_THROW(HardwareConfig::parse("trace = maybe"), FatalError);
    EXPECT_THROW(HardwareConfig::parse("trace_sample_cycles = 8x"),
                 FatalError);
}

TEST(TraceConfig, ShippedTracedConfigLoads)
{
    const HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_128_traced.cfg");
    EXPECT_TRUE(cfg.trace);
    EXPECT_EQ(cfg.trace_file, "maeri_128_traced.trace.json");
    EXPECT_EQ(cfg.trace_sample_cycles, 64);
    cfg.validate();
}

} // namespace
} // namespace stonne
