/**
 * @file
 * Unit tests for the memory hierarchy: FIFOs, the Global Buffer's
 * per-cycle bandwidth accounting, and the DRAM staging model.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "mem/dram.hpp"
#include "mem/fifo.hpp"
#include "mem/global_buffer.hpp"

namespace stonne {
namespace {

TEST(Fifo, FifoOrder)
{
    Fifo<int> f(4);
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
}

TEST(Fifo, CapacityBoundsEnforced)
{
    Fifo<int> f(2);
    f.push(1);
    f.push(2);
    EXPECT_TRUE(f.full());
    EXPECT_THROW(f.push(3), PanicError);
    f.pop();
    EXPECT_FALSE(f.full());
}

TEST(Fifo, PopOnEmptyPanics)
{
    Fifo<int> f(2);
    EXPECT_THROW(f.pop(), PanicError);
    EXPECT_THROW(f.front(), PanicError);
}

TEST(Fifo, ActivityCountersTrack)
{
    Fifo<int> f(8);
    for (int i = 0; i < 5; ++i)
        f.push(i);
    f.pop();
    f.pop();
    EXPECT_EQ(f.pushes(), 5u);
    EXPECT_EQ(f.pops(), 2u);
    EXPECT_EQ(f.highWater(), 5);
}

TEST(Fifo, InvalidCapacityIsFatal)
{
    EXPECT_THROW(Fifo<int>(0), FatalError);
}

TEST(GlobalBuffer, BandwidthBudgetPerCycle)
{
    StatsRegistry stats;
    GlobalBuffer gb(108, 4, 2, 1, stats);
    gb.nextCycle();
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(gb.canRead());
        gb.read();
    }
    EXPECT_FALSE(gb.canRead());
    EXPECT_THROW(gb.read(), PanicError);
    gb.nextCycle();
    EXPECT_TRUE(gb.canRead());
}

TEST(GlobalBuffer, BulkGrantsAreClamped)
{
    StatsRegistry stats;
    GlobalBuffer gb(108, 8, 8, 1, stats);
    gb.nextCycle();
    EXPECT_EQ(gb.readBulk(20), 8);
    EXPECT_EQ(gb.readBulk(20), 0);
    EXPECT_EQ(gb.writeBulk(3), 3);
    EXPECT_EQ(gb.writeBulk(10), 5);
}

TEST(GlobalBuffer, AccessCountersFeedStats)
{
    StatsRegistry stats;
    GlobalBuffer gb(108, 8, 8, 1, stats);
    gb.nextCycle();
    gb.readBulk(5);
    gb.writeBulk(2);
    EXPECT_EQ(stats.value("gb.reads"), 5u);
    EXPECT_EQ(stats.value("gb.writes"), 2u);
    EXPECT_EQ(gb.totalReads(), 5u);
}

TEST(GlobalBuffer, CapacityInElementsTracksDataWidth)
{
    StatsRegistry stats;
    GlobalBuffer gb8(108, 1, 1, 1, stats);
    EXPECT_EQ(gb8.capacityElements(), 108 * 1024);
    StatsRegistry stats2;
    GlobalBuffer gb16(108, 1, 1, 2, stats2);
    EXPECT_EQ(gb16.capacityElements(), 108 * 1024 / 2);
}

TEST(Dram, TransferIsLatencyPlusSerialization)
{
    StatsRegistry stats;
    // 512 GB/s at 1 GHz = 512 bytes/cycle.
    Dram dram(512.0, 1.0, 100, stats);
    EXPECT_DOUBLE_EQ(dram.bytesPerCycle(), 512.0);
    EXPECT_EQ(dram.transferCycles(512), 101u);
    EXPECT_EQ(dram.transferCycles(1), 101u);
    EXPECT_EQ(dram.transferCycles(0), 0u);
    EXPECT_EQ(dram.transferCycles(5120), 110u);
}

TEST(Dram, DoubleBufferingHidesTransferBehindCompute)
{
    StatsRegistry stats;
    Dram dram(512.0, 1.0, 100, stats);
    // Transfer takes 101 cycles; a 200-cycle compute chunk hides it.
    EXPECT_EQ(dram.stagingStall(512, 200), 0u);
    // A 50-cycle chunk exposes 51 stall cycles.
    EXPECT_EQ(dram.stagingStall(512, 50), 51u);
}

TEST(Dram, TrafficCountersAccumulate)
{
    StatsRegistry stats;
    Dram dram(256.0, 1.0, 10, stats);
    dram.transferCycles(1000);
    dram.transferCycles(24);
    EXPECT_EQ(stats.value("dram.bytes"), 1024u);
    EXPECT_EQ(stats.value("dram.accesses"), 2u);
}

TEST(Dram, InvalidParametersAreFatal)
{
    StatsRegistry stats;
    EXPECT_THROW(Dram(0.0, 1.0, 10, stats), FatalError);
    EXPECT_THROW(Dram(256.0, 0.0, 10, stats), FatalError);
}

TEST(Dram, StagingStallCyclesAreCounted)
{
    StatsRegistry stats;
    Dram dram(512.0, 1.0, 100, stats);
    // A fully hidden transfer contributes no stall cycles.
    EXPECT_EQ(dram.stagingStall(512, 200), 0u);
    EXPECT_EQ(stats.value("dram.stall_cycles"), 0u);
    // An exposed transfer's stall lands in the counter.
    EXPECT_EQ(dram.stagingStall(512, 50), 51u);
    EXPECT_EQ(stats.value("dram.stall_cycles"), 51u);
    // Streaming staging pipelines the latency away: 512 bytes
    // serialize in 1 cycle, fully hidden behind any compute.
    EXPECT_EQ(dram.streamingStall(512, 50), 0u);
    EXPECT_EQ(dram.streamingStall(5120, 2), 8u);
    EXPECT_EQ(stats.value("dram.stall_cycles"), 59u);
    EXPECT_EQ(dram.stallCycles(), 59u);
}

TEST(GlobalBuffer, DrainBacklogIntegralIsClosedForm)
{
    StatsRegistry stats;
    GlobalBuffer gb(108, 4, 4, 1, stats);
    // Draining 10 outputs at 4/cycle queues 10, 6 and 2 pending
    // elements over the three cycles: integral 18.
    gb.accountDrainBacklog(10);
    EXPECT_EQ(stats.value("gb.write_queue_occ"), 18u);
    // An empty drain leaves the integral untouched.
    gb.accountDrainBacklog(0);
    EXPECT_EQ(stats.value("gb.write_queue_occ"), 18u);
    // A single-cycle drain contributes exactly its element count.
    gb.accountDrainBacklog(3);
    EXPECT_EQ(stats.value("gb.write_queue_occ"), 21u);
    EXPECT_THROW(gb.accountDrainBacklog(-1), PanicError);
}

} // namespace
} // namespace stonne
