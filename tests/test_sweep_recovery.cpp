/**
 * @file
 * Crash-recovering sweep runner tests. The headline scenario from the
 * checkpoint PR: a fault/watchdog-induced DeadlockError on attempt 1
 * must not kill the sweep — the point retries from its last snapshot,
 * degrades to the exact engine with a widened watchdog on the final
 * attempt, completes bit-identically to an uninterrupted run, and the
 * JSON summary records every attempt with its failure cause.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <deque>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "checkpoint/archive.hpp"
#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/sweep_pool.hpp"
#include "common/watchdog.hpp"
#include "engine/stonne_api.hpp"
#include "sweep.hpp"

namespace stonne {
namespace {

using bench::PointOutcome;
using bench::RecoveringSweepRunner;
using bench::SweepAttempt;

/** Self-deleting snapshot file. */
struct TempFile {
    std::string path;

    explicit TempFile(std::string p) : path(std::move(p))
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }

    ~TempFile()
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::filesystem::remove(path + ".tmp", ec);
    }
};

/** The small deterministic conv the parity tests use (fresh Rng(7)). */
void
runConvOp(Stonne &st)
{
    Rng rng(7);
    Conv2dShape c;
    c.R = 3;
    c.S = 3;
    c.C = 8;
    c.K = 8;
    c.X = 8;
    c.Y = 8;
    c.padding = 1;
    const LayerSpec layer = LayerSpec::convolution("sweep_conv", c);
    Tensor input({c.N, c.C, c.X, c.Y});
    Tensor weights({c.K, c.cPerGroup(), c.R, c.S});
    Tensor bias({c.K});
    input.fillUniform(rng, 0.0f, 1.0f);
    weights.fillNormal(rng, 0.0f, 0.2f);
    bias.fillUniform(rng, -0.1f, 0.1f);
    st.configureConv(layer);
    st.configureData(std::move(input), std::move(weights),
                     std::move(bias));
    st.runOperation();
}

/** A watchdog budget no real stall streak of these tiny ops reaches. */
constexpr index_t kGenerousWatchdog = 1 << 22;

TEST(SweepRecovery, DeadlockedPointResumesFromItsSnapshotAndDegrades)
{
    // Heavy seeded flit drops on a single-flit distribution link: every
    // fully-dropped cycle makes no forward progress, so the op has
    // zero-progress streaks whose lengths are reproducible bit-exactly
    // from the fault seed. A watchdog budget below the longest streak
    // deadlocks the run deterministically.
    HardwareConfig base = HardwareConfig::maeriLike(64, 1);
    base.faults.enabled = true;
    base.faults.seed = 17;
    base.faults.flit_drop_rate = 0.75;

    // Stage the snapshot the sweep attempts will resume: op 1 under a
    // generous budget.
    TempFile snap("test_sweep_recovery.ckpt");
    {
        HardwareConfig warm = base;
        warm.watchdog_cycles = kGenerousWatchdog;
        Stonne st(warm);
        runConvOp(st);
        st.saveCheckpoint(snap.path);
    }

    // Probe the resumed op's deadlock threshold: smallest power-of-two
    // budget that completes op 2 from the snapshot. Every smaller power
    // of two was observed to deadlock on the *identical* fault-RNG
    // stream, so `ok / 2` deadlocks deterministically and the degraded
    // 4x widening ((ok/2)*4 = 2*ok) provably completes.
    auto resumeCompletes = [&](index_t w) {
        HardwareConfig cfg = base;
        cfg.watchdog_cycles = w;
        Stonne st(cfg);
        st.loadCheckpoint(snap.path);
        try {
            runConvOp(st);
            return true;
        } catch (const DeadlockError &) {
            return false;
        }
    };
    index_t ok = 0;
    for (index_t w = 2; w <= kGenerousWatchdog; w *= 2) {
        if (resumeCompletes(w)) {
            ok = w;
            break;
        }
    }
    ASSERT_GE(ok, 4) << "the resumed op completes under any watchdog "
                        "budget; cannot stage a deterministic deadlock";

    // Uninterrupted two-op reference for the bit-parity check.
    HardwareConfig ref_cfg = base;
    ref_cfg.watchdog_cycles = kGenerousWatchdog;
    Stonne ref(ref_cfg);
    runConvOp(ref);
    runConvOp(ref);

    std::error_code ec;
    std::filesystem::remove(snap.path, ec); // attempt 1 stages its own
    base.watchdog_cycles = ok / 2; // deadlocks op2 on normal attempts
    base.checkpoint_file = snap.path;

    struct Probe {
        std::vector<std::string> resume_from;
        std::vector<bool> degraded;
        cycle_t final_cycles = 0;
        Tensor output;
        std::deque<StatCounter> counters;
    } probe;

    RecoveringSweepRunner runner(/*threads=*/1, /*max_attempts=*/2,
                                 std::chrono::milliseconds(0));
    const std::vector<PointOutcome> outcomes = runner.run(
        {{"deadlocked point", base,
          [&](const HardwareConfig &cfg, const SweepAttempt &a) {
              probe.resume_from.push_back(a.resume_from);
              probe.degraded.push_back(a.degraded);

              // Op 1 runs under a generous budget and snapshots; a
              // retry resumes the snapshot instead of repeating it.
              if (a.resume_from.empty()) {
                  HardwareConfig warm = cfg;
                  warm.watchdog_cycles = kGenerousWatchdog;
                  Stonne st1(warm);
                  runConvOp(st1);
                  st1.saveCheckpoint(cfg.checkpoint_file);
              }

              // Op 2 under the sweep-provided budget: deadlocks until
              // the degraded attempt widens the watchdog 4x.
              Stonne st2(cfg);
              st2.loadCheckpoint(cfg.checkpoint_file);
              runConvOp(st2);
              probe.final_cycles = st2.totalCycles();
              probe.output = st2.output();
              probe.counters = st2.stats().counters();
          }}});

    ASSERT_EQ(outcomes.size(), 1u);
    const PointOutcome &o = outcomes[0];
    EXPECT_TRUE(o.completed);
    EXPECT_EQ(o.attempts, 2);
    EXPECT_TRUE(o.degraded);
    ASSERT_EQ(o.failures.size(), 1u);
    EXPECT_EQ(o.failures[0].attempt, 1);
    EXPECT_EQ(o.failures[0].cause.rfind("deadlock: ", 0), 0u)
        << o.failures[0].cause;

    // The retry actually resumed: attempt 1 started fresh, attempt 2
    // found the snapshot and ran degraded.
    ASSERT_EQ(probe.resume_from.size(), 2u);
    EXPECT_TRUE(probe.resume_from[0].empty());
    EXPECT_EQ(probe.resume_from[1], snap.path);
    EXPECT_FALSE(probe.degraded[0]);
    EXPECT_TRUE(probe.degraded[1]);

    // ...bit-identically to the uninterrupted run, despite the resume
    // crossing engine modes (degraded forces fast_forward = OFF).
    EXPECT_EQ(probe.final_cycles, ref.totalCycles());
    const auto &rc = ref.stats().counters();
    ASSERT_EQ(probe.counters.size(), rc.size());
    for (std::size_t i = 0; i < rc.size(); ++i) {
        EXPECT_EQ(probe.counters[i].name, rc[i].name);
        EXPECT_EQ(probe.counters[i].value, rc[i].value)
            << "counter " << rc[i].name;
    }
    ASSERT_EQ(probe.output.shape(), ref.output().shape());
    EXPECT_EQ(std::memcmp(probe.output.data(), ref.output().data(),
                          static_cast<std::size_t>(probe.output.size()) *
                              sizeof(float)),
              0);

    // The per-point snapshot is cleaned up after success.
    EXPECT_FALSE(std::filesystem::exists(snap.path));

    // The JSON summary records both attempts and the cause.
    const std::string j = RecoveringSweepRunner::summary(outcomes).dump();
    EXPECT_NE(j.find("\"points_total\": 1"), std::string::npos) << j;
    EXPECT_NE(j.find("\"points_completed\": 1"), std::string::npos) << j;
    EXPECT_NE(j.find("\"points_retried\": 1"), std::string::npos) << j;
    EXPECT_NE(j.find("\"points_degraded\": 1"), std::string::npos) << j;
    EXPECT_NE(j.find("\"attempts\": 2"), std::string::npos) << j;
    EXPECT_NE(j.find("deadlock: "), std::string::npos) << j;
}

TEST(SweepRecovery, HealthyPointCompletesOnAttemptOne)
{
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.checkpoint_file = "test_sweep_healthy.ckpt";
    TempFile snap(cfg.checkpoint_file);

    int calls = 0;
    RecoveringSweepRunner runner(1, 3, std::chrono::milliseconds(0));
    const std::vector<PointOutcome> outcomes = runner.run(
        {{"healthy", cfg,
          [&](const HardwareConfig &c, const SweepAttempt &a) {
              ++calls;
              EXPECT_TRUE(a.resume_from.empty());
              EXPECT_FALSE(a.degraded);
              EXPECT_TRUE(c.checkpoint); // runner turns snapshots on
              Stonne st(c);
              runConvOp(st);
          }}});
    EXPECT_EQ(calls, 1);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].completed);
    EXPECT_EQ(outcomes[0].attempts, 1);
    EXPECT_FALSE(outcomes[0].degraded);
    EXPECT_TRUE(outcomes[0].failures.empty());
}

TEST(SweepRecovery, ExhaustedPointReportsEveryFailureWithoutThrowing)
{
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.checkpoint_file = "test_sweep_exhausted.ckpt";
    TempFile snap(cfg.checkpoint_file);

    RecoveringSweepRunner runner(1, 3, std::chrono::milliseconds(0));
    const std::vector<PointOutcome> outcomes = runner.run(
        {{"doomed", cfg,
          [&](const HardwareConfig &, const SweepAttempt &) {
              throw std::runtime_error("boom");
          }}});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].completed);
    EXPECT_EQ(outcomes[0].attempts, 3);
    ASSERT_EQ(outcomes[0].failures.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(outcomes[0].failures[static_cast<std::size_t>(i)].attempt,
                  i + 1);
        EXPECT_EQ(outcomes[0].failures[static_cast<std::size_t>(i)].cause,
                  "boom");
    }

    const std::string j = RecoveringSweepRunner::summary(outcomes).dump();
    EXPECT_NE(j.find("\"points_completed\": 0"), std::string::npos) << j;
}

TEST(SweepRecovery, CorruptSnapshotIsDiscardedSoThePointRestartsFresh)
{
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.checkpoint_file = "test_sweep_corrupt.ckpt";
    TempFile snap(cfg.checkpoint_file);

    RecoveringSweepRunner runner(1, 3, std::chrono::milliseconds(0));
    const std::vector<PointOutcome> outcomes = runner.run(
        {{"corrupt snapshot", cfg,
          [&](const HardwareConfig &c, const SweepAttempt &a) {
              if (a.attempt == 1) {
                  // Leave a garbage snapshot behind and fail on it, as
                  // a run killed mid-write (without the atomic rename)
                  // would have.
                  std::ofstream os(c.checkpoint_file);
                  os << "this is not a checkpoint file, just a run "
                        "killed mid-write without the atomic rename";
                  os.close();
                  ArchiveReader r(c.checkpoint_file); // throws
              }
              // The runner must have deleted the corrupt file: the
              // retry starts fresh instead of wedging on it forever.
              EXPECT_TRUE(a.resume_from.empty());
              EXPECT_FALSE(
                  std::filesystem::exists(c.checkpoint_file));
          }}});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].completed);
    EXPECT_EQ(outcomes[0].attempts, 2);
    ASSERT_EQ(outcomes[0].failures.size(), 1u);
    EXPECT_NE(outcomes[0].failures[0].cause.find("bad magic"),
              std::string::npos)
        << outcomes[0].failures[0].cause;
}

TEST(SweepRecovery, MixedSweepCompletesDespiteAFailingPoint)
{
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    HardwareConfig a = cfg, b = cfg;
    a.checkpoint_file = "test_sweep_mixed_a.ckpt";
    b.checkpoint_file = "test_sweep_mixed_b.ckpt";
    TempFile snap_a(a.checkpoint_file), snap_b(b.checkpoint_file);

    RecoveringSweepRunner runner(2, 2, std::chrono::milliseconds(0));
    const std::vector<PointOutcome> outcomes = runner.run(
        {{"good", a,
          [&](const HardwareConfig &c, const SweepAttempt &) {
              Stonne st(c);
              runConvOp(st);
          }},
         {"bad", b,
          [&](const HardwareConfig &, const SweepAttempt &) {
              throw std::runtime_error("always fails");
          }}});
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0].completed);
    EXPECT_FALSE(outcomes[1].completed);

    const std::string j = RecoveringSweepRunner::summary(outcomes).dump();
    EXPECT_NE(j.find("\"points_total\": 2"), std::string::npos) << j;
    EXPECT_NE(j.find("\"points_completed\": 1"), std::string::npos) << j;
}

TEST(SweepRecovery, RejectsAZeroAttemptBudget)
{
    EXPECT_THROW(
        RecoveringSweepRunner(1, 0, std::chrono::milliseconds(0)),
        FatalError);
}

// --- WorkerPool / SweepRunner exception-safety regressions ----------

TEST(WorkerPool, SurvivesThrowingTasksAndKeepsServing)
{
    WorkerPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&ran, i] {
            if (i % 2 == 0)
                ++ran;
            else if (i == 1)
                throw std::runtime_error("std failure");
            else
                throw 42; // non-std exceptions must not kill workers
        });
    }
    pool.drain();
    EXPECT_EQ(ran.load(), 4);
    EXPECT_EQ(pool.tasksRun(), 8u);
    EXPECT_EQ(pool.tasksFailed(), 4u);

    // The workers are still alive after every failure mode.
    std::atomic<bool> after{false};
    pool.submit([&after] { after = true; });
    pool.drain();
    EXPECT_TRUE(after.load());
    EXPECT_EQ(pool.tasksRun(), 9u);
    EXPECT_EQ(pool.tasksFailed(), 4u);
}

TEST(WorkerPool, PausedPoolQueuesUntilStarted)
{
    WorkerPool pool(2, /*start_workers=*/false);
    std::atomic<int> ran{0};
    for (int i = 0; i < 5; ++i)
        pool.submit([&ran] { ++ran; });
    EXPECT_EQ(pool.pending(), 5u);
    EXPECT_EQ(ran.load(), 0);

    pool.start();
    pool.drain();
    EXPECT_EQ(ran.load(), 5);
    EXPECT_EQ(pool.pending(), 0u);
}

TEST(WorkerPool, SubmitAfterShutdownIsRejected)
{
    WorkerPool pool(1);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(SweepRunnerPool, RethrowsFirstErrorAfterAllJobsRan)
{
    SweepRunner runner(4);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 12; ++i) {
        jobs.push_back([&ran, i] {
            ++ran;
            if (i == 3)
                throw std::runtime_error("job three");
            if (i == 7)
                throw std::runtime_error("job seven");
        });
    }
    try {
        runner.run(jobs);
        FAIL() << "expected the first job error to be rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job three");
    }
    // A failing job never stops its siblings.
    EXPECT_EQ(ran.load(), 12);
}

TEST(SweepRunnerPool, SingleThreadPathIsExceptionSafeToo)
{
    SweepRunner runner(1);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> jobs;
    jobs.push_back([] { throw 7; }); // non-std
    jobs.push_back([&ran] { ++ran; });
    EXPECT_THROW(runner.run(jobs), int);
    EXPECT_EQ(ran.load(), 1);
}

} // namespace
} // namespace stonne
