/**
 * @file
 * Tests for the text-format model loader (the Caffe-style second
 * front-end): parsing, label routing, error reporting, and end-to-end
 * functional validation of a loaded model on a simulated accelerator.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hpp"

#include "frontend/model_loader.hpp"
#include "frontend/runner.hpp"

namespace stonne {
namespace {

const char *kFireNet = R"(
# A SqueezeNet-style fire module plus classifier.
model fire_mini
sparsity 0.5
seed 13
input 3 16 16
conv name=c1 out=8 kernel=3 stride=2 pad=1
relu save=squeeze
conv name=e1 out=8 kernel=1
relu save=left
conv name=e3 out=8 kernel=3 pad=1 from=squeeze
relu
concat with=left
maxpool window=2 stride=2
gap
flatten
linear name=fc out=10
logsoftmax
)";

TEST(ModelLoader, ParsesAllStatementKinds)
{
    const DnnModel m = loadModelFromText(kFireNet);
    EXPECT_EQ(m.name, "fire_mini");
    EXPECT_NEAR(m.target_weight_sparsity, 0.5, 1e-9);
    EXPECT_EQ(m.layers.size(), 12u);
    EXPECT_EQ(m.layers[0].op, OpType::Conv2d);
    EXPECT_EQ(m.layers[6].op, OpType::Concat);
    EXPECT_EQ(m.layers.back().op, OpType::LogSoftmax);
    EXPECT_NEAR(m.measuredWeightSparsity(), 0.5, 0.1);
}

TEST(ModelLoader, LabelsRouteInputsCorrectly)
{
    const DnnModel m = loadModelFromText(kFireNet);
    // e3 reads the saved squeeze output (layer index 1, the relu).
    EXPECT_EQ(m.layers[4].input_from, 1);
    EXPECT_TRUE(m.layers[1].save_output);
    // concat's second operand is the saved e1-relu (index 3).
    EXPECT_EQ(m.layers[6].operand_from, 3);
    EXPECT_TRUE(m.layers[3].save_output);
}

TEST(ModelLoader, LoadedModelRunsAndValidates)
{
    const DnnModel m = loadModelFromText(kFireNet);
    Rng rng(1);
    Tensor input({1, 3, 16, 16});
    input.fillUniform(rng, 0.0f, 1.0f);
    ModelRunner runner(m, HardwareConfig::maeriLike(64, 16));
    const Tensor sim = runner.run(input);
    EXPECT_TRUE(sim.equals(runner.runNative(input)));
    EXPECT_GT(runner.total().cycles, 0u);
}

TEST(ModelLoader, TransformerStatements)
{
    const DnnModel m = loadModelFromText(R"(
model tiny_bert
sparsity 0.4
input2d 8 16
attention name=enc heads=2 save=a
add with=input
layernorm save=ln
linear name=ff1 out=32
relu
linear name=ff2 out=16
add with=ln
layernorm
linear name=cls out=4
logsoftmax
)");
    EXPECT_EQ(m.layers[0].op, OpType::SelfAttention);
    EXPECT_EQ(m.layers[1].operand_from, DnnLayer::kFromModelInput);

    Rng rng(2);
    Tensor input({8, 16});
    input.fillUniform(rng);
    ModelRunner runner(m, HardwareConfig::sigmaLike(64, 32));
    EXPECT_TRUE(runner.run(input).equals(runner.runNative(input)));
}

TEST(ModelLoader, DepthwiseGroups)
{
    const DnnModel m = loadModelFromText(R"(
model dw
input 4 8 8
conv name=dw out=4 kernel=3 pad=1 groups=4
relu
gap
flatten
linear name=fc out=2
)");
    EXPECT_EQ(m.layers[0].spec.conv.G, 4);
}

TEST(ModelLoader, ErrorsAreFatalWithLineNumbers)
{
    EXPECT_THROW(loadModelFromText("conv out=4 kernel=3\n"), FatalError);
    EXPECT_THROW(loadModelFromText("input 3 8 8\nwibble\n"), FatalError);
    EXPECT_THROW(
        loadModelFromText("input 3 8 8\nconv kernel=3\n"), FatalError);
    EXPECT_THROW(
        loadModelFromText("input 3 8 8\nconv out=4 kernel=3 from=nope\n"),
        FatalError);
    EXPECT_THROW(
        loadModelFromText("input 3 8 8\nadd with=\n"), FatalError);
    EXPECT_THROW(loadModelFromText("input 3 8 8\n"), FatalError);
    EXPECT_THROW(loadModelFromText("sparsity 1.5\ninput 3 8 8\n"),
                 FatalError);
    EXPECT_THROW(loadModelFromText(""), FatalError);
}

/** Expect a FatalError whose message contains every given fragment. */
void
expectLoadError(const std::string &text,
                const std::vector<std::string> &fragments)
{
    try {
        loadModelFromText(text);
        FAIL() << "expected FatalError for:\n" << text;
    } catch (const FatalError &e) {
        for (const std::string &frag : fragments)
            EXPECT_NE(std::string(e.what()).find(frag), std::string::npos)
                << "missing '" << frag << "' in: " << e.what();
    }
}

TEST(ModelLoader, MalformedStatementsFailLoudlyWithContext)
{
    // Trailing junk after a number must not silently truncate: before
    // the hardening, 'seed 5x' configured seed 5 and 'out=16x' built a
    // 16-channel conv.
    expectLoadError("seed 5x\ninput 3 8 8\nconv out=4 kernel=3\n",
                    {"<string>:1", "trailing characters"});
    expectLoadError("input 3 8 8\nconv out=16x kernel=3\n",
                    {"<string>:2", "out", "16x"});
    expectLoadError("input 3 8 8 junk\nconv out=4 kernel=3\n",
                    {"<string>:1", "trailing characters", "junk"});
    expectLoadError("sparsity 0.5abc\ninput 3 8 8\nconv out=4 kernel=3\n",
                    {"<string>:1", "trailing characters"});
    expectLoadError("input2d 8 16 9\nlinear out=4\n",
                    {"<string>:1", "trailing characters"});
    expectLoadError("model a b\ninput 3 8 8\nconv out=4 kernel=3\n",
                    {"<string>:1", "trailing characters"});

    // Truncated argument lists and malformed key=value tokens.
    expectLoadError("input 3 8\nconv out=4 kernel=3\n",
                    {"<string>:1", "input expects"});
    expectLoadError("model\n", {"<string>:1", "model expects a name"});
    expectLoadError("input 3 8 8\nconv out=4 kernel\n",
                    {"<string>:2", "key=value"});
    expectLoadError("input 3 8 8\nconv =4 kernel=3\n",
                    {"<string>:2", "key=value"});
    expectLoadError("input 3 8 8\nconv out=4 out=8 kernel=3\n",
                    {"<string>:2", "duplicate key 'out'"});
    expectLoadError("input 3 8 8\nconv out= kernel=3\n",
                    {"<string>:2", "integer"});

    // Nonsensical dimensions are rejected at the statement, not deep
    // inside the tensor code.
    expectLoadError("input -3 8 8\nconv out=4 kernel=3\n",
                    {"<string>:1", "must be positive"});
    expectLoadError("input2d 0 16\nlinear out=4\n",
                    {"<string>:1", "must be positive"});

    // Model-level diagnostics carry the origin too.
    expectLoadError("", {"<string>", "no input statement"});
    expectLoadError("input 3 8 8\n", {"<string>", "no layers"});
}

TEST(ModelLoader, FileErrorsNameThePath)
{
    const std::string path = "/tmp/stonne_test_model_bad.txt";
    {
        std::ofstream out(path);
        out << "input 3 8 8\nconv out=4x kernel=3\n";
    }
    try {
        loadModelFromFile(path);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(path + ":2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ModelLoader, FileRoundTrip)
{
    const std::string path = "/tmp/stonne_test_model.txt";
    {
        std::ofstream out(path);
        out << kFireNet;
    }
    const DnnModel from_file = loadModelFromFile(path);
    const DnnModel from_text = loadModelFromText(kFireNet);
    ASSERT_EQ(from_file.layers.size(), from_text.layers.size());
    for (std::size_t i = 0; i < from_file.layers.size(); ++i) {
        if (!from_file.layers[i].weights.empty()) {
            EXPECT_TRUE(from_file.layers[i].weights.equals(
                from_text.layers[i].weights));
        }
    }
    EXPECT_THROW(loadModelFromFile("/nonexistent/model.txt"),
                 FatalError);
}

} // namespace
} // namespace stonne
