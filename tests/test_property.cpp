/**
 * @file
 * Property-based sweeps (TEST_P): randomized GEMM/conv shapes across
 * all accelerator compositions must always bit-match the CPU reference,
 * conserve work (MAC counts), and respect timing monotonicity
 * invariants.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "controller/scheduler.hpp"
#include "engine/stonne_api.hpp"
#include "tensor/prune.hpp"
#include "tensor/reference.hpp"

namespace stonne {
namespace {

HardwareConfig
archConfig(int arch)
{
    switch (arch) {
      case 0: return HardwareConfig::maeriLike(64, 16);
      case 1: return HardwareConfig::sigmaLike(64, 32);
      default: return HardwareConfig::tpuLike(64);
    }
}

const char *
archName(int arch)
{
    return arch == 0 ? "MAERI" : arch == 1 ? "SIGMA" : "TPU";
}

// --- Random GEMM shapes across all compositions -----------------------

class GemmSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(GemmSweep, BitMatchesReferenceAndConservesWork)
{
    const int arch = std::get<0>(GetParam());
    const int trial = std::get<1>(GetParam());
    Rng rng(1000 + static_cast<std::uint64_t>(trial));
    const index_t m = rng.integer(1, 40);
    const index_t n = rng.integer(1, 40);
    const index_t k = rng.integer(1, 64);

    Tensor a({m, k}), b({k, n});
    a.fillUniform(rng);
    b.fillUniform(rng);

    Stonne st(archConfig(arch));
    st.configureDmm(LayerSpec::gemmLayer("g", m, n, k));
    st.configureData(b, a);
    const SimulationResult r = st.runOperation();

    EXPECT_TRUE(st.output().equals(ref::gemm(a, b)))
        << archName(arch) << " m=" << m << " n=" << n << " k=" << k;
    EXPECT_EQ(r.macs, static_cast<count_t>(m * n * k));
    EXPECT_GT(r.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RandomShapes, GemmSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Range(0, 8)),
    [](const auto &info) {
        return std::string(archName(std::get<0>(info.param))) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

// --- Random convolution shapes on the dense compositions --------------

class ConvSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ConvSweep, BitMatchesReference)
{
    const int arch = std::get<0>(GetParam());
    const int trial = std::get<1>(GetParam());
    Rng rng(2000 + static_cast<std::uint64_t>(trial));

    Conv2dShape s;
    s.R = rng.integer(1, 4);
    s.S = s.R;
    s.C = rng.integer(1, 8);
    s.K = rng.integer(1, 8);
    s.N = rng.integer(1, 2);
    s.X = rng.integer(s.R, s.R + 9);
    s.Y = rng.integer(s.S, s.S + 9);
    s.stride = rng.integer(1, 2);
    s.padding = rng.integer(0, 1);

    Tensor in({s.N, s.C, s.X, s.Y}), w({s.K, s.C, s.R, s.S}),
        bias({s.K});
    in.fillUniform(rng);
    w.fillUniform(rng);
    bias.fillUniform(rng);

    Stonne st(archConfig(arch));
    st.configureConv(LayerSpec::convolution("c", s));
    st.configureData(in, w, bias);
    st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::conv2d(in, w, bias, s)))
        << archName(arch) << " R=" << s.R << " C=" << s.C
        << " K=" << s.K << " X=" << s.X << " Y=" << s.Y
        << " stride=" << s.stride << " pad=" << s.padding;
}

INSTANTIATE_TEST_SUITE_P(
    RandomShapes, ConvSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Range(0, 10)),
    [](const auto &info) {
        return std::string(archName(std::get<0>(info.param))) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

// --- SpMM sparsity sweep ------------------------------------------------

class SparsitySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SparsitySweep, ExactAtEverySparsityAndMonotonicWork)
{
    const double sparsity = static_cast<double>(GetParam()) / 100.0;
    Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
    Tensor a({24, 48}), b({48, 12});
    a.fillUniform(rng);
    if (sparsity > 0)
        pruneFiltersWithJitter(a, sparsity, 0.1, rng);
    b.fillUniform(rng);

    Stonne st(HardwareConfig::sigmaLike(64, 32));
    st.configureSpmm(LayerSpec::sparseGemm("s", 24, 12, 48));
    st.configureData(b, a);
    const SimulationResult r = st.runOperation();

    EXPECT_TRUE(st.output().equals(ref::gemm(a, b)));
    // Work tracks the actual nnz exactly.
    EXPECT_EQ(r.macs, static_cast<count_t>(a.nnz() * 12));
}

INSTANTIATE_TEST_SUITE_P(ZeroToNinety, SparsitySweep,
                         ::testing::Values(0, 10, 30, 50, 70, 80, 90));

// --- Bandwidth monotonicity ---------------------------------------------

class BandwidthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BandwidthSweep, CyclesNeverImproveWithLessBandwidth)
{
    const index_t bw = GetParam();
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.C = 8;
    s.K = 8;
    s.X = 10;
    s.Y = 10;
    s.padding = 1;
    Rng rng(7);
    Tensor in({1, 8, 10, 10}), w({8, 8, 3, 3});
    in.fillUniform(rng);
    w.fillUniform(rng);

    auto cycles_at = [&](index_t bandwidth) {
        Stonne st(HardwareConfig::maeriLike(128, bandwidth));
        st.configureConv(LayerSpec::convolution("c", s));
        st.configureData(in, w, Tensor());
        return st.runOperation().cycles;
    };
    EXPECT_GE(cycles_at(bw), cycles_at(128));
    if (bw >= 2) {
        EXPECT_GE(cycles_at(bw / 2), cycles_at(bw));
    }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, BandwidthSweep,
                         ::testing::Values(8, 16, 32, 64, 128));

// --- Tile validity sweep --------------------------------------------------

class TileSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TileSweep, AnyValidTileIsFunctionallyCorrect)
{
    const int trial = GetParam();
    Rng rng(4000 + static_cast<std::uint64_t>(trial));
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.C = 4;
    s.K = 4;
    s.X = 8;
    s.Y = 8;
    const LayerSpec layer = LayerSpec::convolution("c", s);

    Tile t;
    t.t_r = rng.integer(1, 3);
    t.t_s = rng.integer(1, 3);
    t.t_c = rng.integer(1, 4);
    t.t_k = rng.integer(1, 4);
    t.t_y = rng.integer(1, 3);
    if (t.usedMs() > 64)
        t.t_k = 1;
    if (t.usedMs() > 64)
        t.t_y = 1;
    if (t.usedMs() > 64)
        t.t_c = 1;

    Tensor in({1, 4, 8, 8}), w({4, 4, 3, 3});
    in.fillUniform(rng);
    w.fillUniform(rng);

    Stonne st(HardwareConfig::maeriLike(64, 16));
    st.configureConv(layer, t);
    st.configureData(in, w, Tensor());
    st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::conv2d(in, w, Tensor(), s)))
        << t.toString();
}

INSTANTIATE_TEST_SUITE_P(RandomTiles, TileSweep, ::testing::Range(0, 12));

// --- Random linear layers across all compositions ----------------------

class LinearSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(LinearSweep, BitMatchesReference)
{
    const int arch = std::get<0>(GetParam());
    const int trial = std::get<1>(GetParam());
    Rng rng(5000 + static_cast<std::uint64_t>(trial));
    const index_t batch = rng.integer(1, 6);
    const index_t in = rng.integer(1, 96);
    const index_t out = rng.integer(1, 48);

    Tensor x({batch, in}), w({out, in}), bias({out});
    x.fillUniform(rng);
    w.fillUniform(rng);
    if (trial % 2 == 0)
        pruneRandom(w, 0.5, rng);
    bias.fillUniform(rng);

    Stonne st(archConfig(arch));
    st.configureLinear(LayerSpec::linear("fc", batch, in, out));
    st.configureData(x, w, bias);
    st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::linear(x, w, bias)))
        << archName(arch) << " batch=" << batch << " in=" << in
        << " out=" << out;
}

INSTANTIATE_TEST_SUITE_P(
    RandomShapes, LinearSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Range(0, 6)),
    [](const auto &info) {
        return std::string(archName(std::get<0>(info.param))) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

// --- Random max-pooling shapes on the flexible fabric ------------------

class PoolSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PoolSweep, MatchesReferenceIncludingOverlap)
{
    const int trial = GetParam();
    Rng rng(6000 + static_cast<std::uint64_t>(trial));
    const index_t c = rng.integer(1, 6);
    const index_t window = rng.integer(2, 3);
    const index_t stride = rng.integer(1, window);
    const index_t x = rng.integer(window + 1, window + 8);

    Tensor in({1, c, x, x});
    in.fillUniform(rng);
    Conv2dShape s;
    s.C = c;
    s.X = x;
    s.Y = x;

    Stonne st(HardwareConfig::maeriLike(64, 16));
    st.configureMaxPool(LayerSpec::maxPool("p", s, window, stride));
    st.configureData(in, Tensor());
    st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::maxPool2d(in, window, stride)))
        << "c=" << c << " w=" << window << " s=" << stride
        << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, PoolSweep,
                         ::testing::Range(0, 8));

// --- Dataflow x random conv sweep ---------------------------------------

class DataflowConvSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(DataflowConvSweep, EveryDataflowStaysExact)
{
    const int df = std::get<0>(GetParam());
    const int trial = std::get<1>(GetParam());
    Rng rng(7000 + static_cast<std::uint64_t>(trial));

    Conv2dShape s;
    s.R = rng.integer(1, 3);
    s.S = s.R;
    s.C = rng.integer(1, 12);
    s.K = rng.integer(1, 6);
    s.X = rng.integer(s.R, s.R + 7);
    s.Y = rng.integer(s.S, s.S + 7);
    s.padding = rng.integer(0, 1);

    Tensor in({1, s.C, s.X, s.Y}), w({s.K, s.C, s.R, s.S});
    in.fillUniform(rng);
    w.fillUniform(rng);

    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.dataflow = df == 0 ? Dataflow::OutputStationary
                 : df == 1 ? Dataflow::WeightStationary
                           : Dataflow::InputStationary;
    cfg.accumulator_size = 32; // small enough to stress WS spills
    Stonne st(cfg);
    st.configureConv(LayerSpec::convolution("c", s));
    st.configureData(in, w);
    st.runOperation();
    EXPECT_TRUE(st.output().equals(ref::conv2d(in, w, Tensor(), s)))
        << dataflowName(cfg.dataflow) << " R=" << s.R << " C=" << s.C
        << " K=" << s.K << " X=" << s.X << " Y=" << s.Y;
}

INSTANTIATE_TEST_SUITE_P(
    RandomShapes, DataflowConvSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Range(0, 6)),
    [](const auto &info) {
        const char *df = std::get<0>(info.param) == 0 ? "OS"
                       : std::get<0>(info.param) == 1 ? "WS" : "IS";
        return std::string(df) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

// --- Scheduler fuzz: packing invariants under random sizes --------------

class SchedulerFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(SchedulerFuzz, PackingInvariantsHoldForEveryPolicy)
{
    Rng rng(8000 + static_cast<std::uint64_t>(GetParam()));
    const index_t ms = 1 << rng.integer(3, 7);
    std::vector<index_t> sizes;
    const index_t rows = rng.integer(1, 60);
    for (index_t i = 0; i < rows; ++i)
        sizes.push_back(rng.integer(0, 2 * ms));

    for (const auto policy :
         {SchedulingPolicy::None, SchedulingPolicy::Random,
          SchedulingPolicy::LargestFirst}) {
        const auto rounds = packRounds(sizes, ms, policy, 5);
        std::vector<index_t> covered(sizes.size(), 0);
        for (const auto &r : rounds) {
            EXPECT_LE(r.nnz, ms);
            index_t seg_total = 0;
            for (const auto &seg : r.segments) {
                EXPECT_GT(seg.len, 0);
                covered[static_cast<std::size_t>(seg.row)] += seg.len;
                seg_total += seg.len;
            }
            EXPECT_EQ(seg_total, r.nnz);
        }
        for (std::size_t i = 0; i < sizes.size(); ++i)
            EXPECT_EQ(covered[i], sizes[i])
                << schedulingPolicyName(policy) << " row " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Random, SchedulerFuzz, ::testing::Range(0, 10));

} // namespace
} // namespace stonne
