/**
 * @file
 * Tests for the three dataflows of Section IV-B (output-, weight- and
 * input-stationary) on the flexible dense pipeline: functional results
 * are dataflow-invariant while the traffic patterns shift exactly as
 * each stationarity choice predicts.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "engine/accelerator.hpp"
#include "tensor/reference.hpp"

namespace stonne {
namespace {

LayerSpec
deepConv()
{
    // Window (3*3*64 = 576) far exceeds the 64-MS array: heavy folding,
    // so the dataflow choice matters.
    Conv2dShape s;
    s.R = 3;
    s.S = 3;
    s.C = 64;
    s.K = 8;
    s.X = 8;
    s.Y = 8;
    s.padding = 1;
    return LayerSpec::convolution("deep", s);
}

struct DfRun {
    Tensor output;
    ControllerResult result;
    count_t gb_reads = 0;
    count_t gb_writes = 0;
};

DfRun
runWith(Dataflow df, const LayerSpec &layer, std::uint64_t seed = 3)
{
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 32);
    cfg.dataflow = df;
    cfg.accumulator_size = 16; // small, to make WS spill psums
    Accelerator acc(cfg);

    const Conv2dShape &c = layer.conv;
    Rng rng(seed);
    Tensor input({c.N, c.C, c.X, c.Y});
    Tensor weights({c.K, c.cPerGroup(), c.R, c.S});
    input.fillUniform(rng);
    weights.fillUniform(rng);

    DfRun r;
    r.output = Tensor({c.N, c.K, c.outX(), c.outY()});
    const Tile tile =
        acc.denseController().mapper().generateTile(layer);
    r.result = acc.denseController().runConvolution(
        layer, tile, input, weights, Tensor(), r.output);
    r.gb_reads = acc.stats().value("gb.reads");
    r.gb_writes = acc.stats().value("gb.writes");
    return r;
}

TEST(Dataflow, AllThreeProduceIdenticalResults)
{
    const LayerSpec layer = deepConv();
    const DfRun os = runWith(Dataflow::OutputStationary, layer);
    const DfRun ws = runWith(Dataflow::WeightStationary, layer);
    const DfRun is = runWith(Dataflow::InputStationary, layer);
    EXPECT_TRUE(os.output.equals(ws.output));
    EXPECT_TRUE(os.output.equals(is.output));
    EXPECT_EQ(os.result.macs, ws.result.macs);
    EXPECT_EQ(os.result.macs, is.result.macs);
}

TEST(Dataflow, WeightStationaryFetchesWeightsOncePerFold)
{
    // With a small accumulator, OS processes positions in many chunks
    // and reloads the weight fold per chunk; WS streams each fold over
    // every position exactly once, trading psum round-trips for it.
    const LayerSpec layer = deepConv();
    const DfRun os = runWith(Dataflow::OutputStationary, layer);
    const DfRun ws = runWith(Dataflow::WeightStationary, layer);
    // WS spills psums: strictly more GB writes than OS.
    EXPECT_GT(ws.gb_writes, os.gb_writes);
    // OS re-reads the weight fold per chunk: more reads overall.
    EXPECT_LT(ws.gb_reads - ws.result.macs / 1000, os.gb_reads)
        << "ws reads " << ws.gb_reads << " os reads " << os.gb_reads;
}

TEST(Dataflow, InputStationaryCutsActivationTraffic)
{
    // Many filter blocks over few positions: IS pins the activations
    // after the first filter block.
    Conv2dShape s;
    s.R = 1;
    s.S = 1;
    s.C = 32;
    s.K = 64;
    s.X = 6;
    s.Y = 6;
    const LayerSpec layer = LayerSpec::convolution("is", s);
    const DfRun os = runWith(Dataflow::OutputStationary, layer);
    const DfRun is = runWith(Dataflow::InputStationary, layer);
    EXPECT_LT(is.gb_reads, os.gb_reads);
    EXPECT_TRUE(is.output.equals(os.output));
}

TEST(Dataflow, PresetsCarryTheirDataflow)
{
    EXPECT_EQ(HardwareConfig::tpuLike().dataflow,
              Dataflow::OutputStationary);
    EXPECT_EQ(HardwareConfig::sigmaLike().dataflow,
              Dataflow::WeightStationary);
}

TEST(Dataflow, ConfigParsesDataflowKeys)
{
    HardwareConfig c = HardwareConfig::parse(
        "ms_size = 64\ndn_bandwidth = 16\nrn_bandwidth = 16\n"
        "dataflow = WS\n");
    EXPECT_EQ(c.dataflow, Dataflow::WeightStationary);
    c = HardwareConfig::parse("dataflow = IS\n");
    EXPECT_EQ(c.dataflow, Dataflow::InputStationary);
    EXPECT_THROW(HardwareConfig::parse("dataflow = XS\n"), FatalError);
}

} // namespace
} // namespace stonne
