/**
 * @file
 * Tests for the fault-injection subsystem: configuration validation,
 * deterministic seeded injection (same seed => identical faults and
 * statistics), the three fault classes, and the end-to-end path through
 * the config file and the STONNE API.
 */

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "engine/output_module.hpp"
#include "engine/stonne_api.hpp"
#include "faults/fault_injector.hpp"

namespace stonne {
namespace {

FaultConfig
allFaults(std::uint64_t seed)
{
    FaultConfig f;
    f.enabled = true;
    f.seed = seed;
    f.stuck_multiplier_rate = 0.1;
    f.flit_drop_rate = 0.05;
    f.flit_corrupt_rate = 0.01;
    f.dram_bitflip_rate = 0.01;
    return f;
}

LayerSpec
smallConv()
{
    Conv2dShape c;
    c.R = 3;
    c.S = 3;
    c.C = 4;
    c.K = 8;
    c.X = 8;
    c.Y = 8;
    c.padding = 1;
    return LayerSpec::convolution("conv", c);
}

TEST(FaultConfig, ValidationRejectsOutOfRangeRates)
{
    FaultConfig f;
    f.enabled = true;
    f.stuck_multiplier_rate = 1.5;
    EXPECT_THROW(f.validate(), FatalError);

    f = FaultConfig{};
    f.enabled = true;
    f.flit_drop_rate = 1.0; // rate 1 would retransmit forever
    EXPECT_THROW(f.validate(), FatalError);

    f = FaultConfig{};
    f.enabled = true;
    f.dram_bitflip_rate = -0.1;
    EXPECT_THROW(f.validate(), FatalError);

    EXPECT_NO_THROW(allFaults(1).validate());
}

TEST(FaultConfig, ActiveNeedsBothEnableAndANonZeroRate)
{
    FaultConfig f;
    EXPECT_FALSE(f.active());
    f.enabled = true;
    EXPECT_FALSE(f.active()); // all rates zero
    f.flit_drop_rate = 0.1;
    EXPECT_TRUE(f.active());
    f.enabled = false;
    EXPECT_FALSE(f.active());
}

TEST(FaultInjector, StuckMapIsSeedDeterministic)
{
    StatsRegistry s1, s2, s3;
    const FaultConfig cfg = allFaults(99);
    FaultInjector a(cfg, 256, s1);
    FaultInjector b(cfg, 256, s2);

    EXPECT_EQ(a.stuckMultiplierCount(), b.stuckMultiplierCount());
    EXPECT_GT(a.stuckMultiplierCount(), 0);
    for (index_t i = 0; i < 256; ++i)
        EXPECT_EQ(a.multiplierStuck(i), b.multiplierStuck(i)) << i;

    // A different seed draws a different map (equality of all 256
    // positions at rate 0.1 is astronomically unlikely).
    FaultInjector c(allFaults(100), 256, s3);
    bool any_diff = false;
    for (index_t i = 0; i < 256; ++i)
        any_diff = any_diff || (a.multiplierStuck(i) != c.multiplierStuck(i));
    EXPECT_TRUE(any_diff);
}

TEST(FaultInjector, DropSequencesAreSeedDeterministic)
{
    StatsRegistry s1, s2;
    FaultInjector a(allFaults(7), 64, s1);
    FaultInjector b(allFaults(7), 64, s2);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.dropFlits(32), b.dropFlits(32)) << i;
    EXPECT_EQ(s1.value("faults.dropped_flits"),
              s2.value("faults.dropped_flits"));
    EXPECT_GT(s1.value("faults.dropped_flits"), 0u);
}

TEST(FaultInjector, CorruptTensorFlipsBitsAndCounts)
{
    StatsRegistry stats;
    FaultConfig cfg = allFaults(11);
    cfg.flit_corrupt_rate = 0.2;
    FaultInjector fi(cfg, 64, stats);

    Tensor t({64, 64});
    t.fill(1.0f);
    Tensor pristine = t;
    const count_t flips = fi.corruptTensor(t, FaultSite::FlitPayload);
    EXPECT_GT(flips, 0u);
    EXPECT_EQ(stats.value("faults.corrupted_flits"), flips);

    count_t changed = 0;
    for (index_t i = 0; i < t.size(); ++i)
        if (t.data()[i] != pristine.data()[i])
            ++changed;
    // Every flip changes exactly one element (one bit of its fp32).
    EXPECT_EQ(changed, flips);

    // The DRAM site feeds the other counter.
    const count_t dram = fi.corruptTensor(t, FaultSite::DramStaging);
    EXPECT_EQ(stats.value("faults.dram_bitflips"), dram);
}

TEST(FaultInjector, StuckMultipliersZeroTheMappedOutputs)
{
    StatsRegistry stats;
    FaultConfig cfg = allFaults(3);
    cfg.stuck_multiplier_rate = 0.25;
    FaultInjector fi(cfg, 16, stats);
    ASSERT_GT(fi.stuckMultiplierCount(), 0);

    Tensor out({4, 16});
    out.fill(2.0f);
    const count_t zeroed = fi.applyStuckMultipliers(out);
    EXPECT_EQ(zeroed,
              static_cast<count_t>(4 * fi.stuckMultiplierCount()));
    for (index_t i = 0; i < out.size(); ++i) {
        const bool stuck = fi.multiplierStuck(i % 16);
        EXPECT_EQ(out.data()[i], stuck ? 0.0f : 2.0f) << i;
    }
    EXPECT_EQ(stats.value("faults.stuck_outputs"), zeroed);
}

TEST(FaultInjector, InactiveConfigInjectsNothing)
{
    StatsRegistry stats;
    FaultConfig cfg; // disabled
    FaultInjector fi(cfg, 64, stats);
    EXPECT_FALSE(fi.active());
    EXPECT_EQ(fi.dropFlits(100), 0);
    Tensor t({8, 8});
    t.fill(1.0f);
    EXPECT_EQ(fi.corruptTensor(t, FaultSite::DramStaging), 0u);
    EXPECT_EQ(fi.applyStuckMultipliers(t), 0u);
    EXPECT_EQ(fi.totalInjected(), 0u);
}

/** Run the small conv on a fresh instance and return the full report. */
std::string
faultyConvReport(const HardwareConfig &cfg, Tensor *out = nullptr)
{
    Stonne st(cfg);
    Rng rng(5);
    Tensor in({1, 4, 8, 8}), w({8, 4, 3, 3}), bias({8});
    in.fillUniform(rng);
    w.fillNormal(rng, 0.0f, 0.2f);
    bias.fillUniform(rng, -0.1f, 0.1f);

    st.configureConv(smallConv());
    st.configureData(std::move(in), std::move(w), std::move(bias));
    SimulationResult r = st.runOperation();
    if (out != nullptr)
        *out = st.output();
    // Host wall-clock throughput is the one legitimately nondeterministic
    // part of the report; zero it so the dumps compare bit-identical.
    r.wall_seconds = 0.0;
    r.sim_cycles_per_second = 0.0;
    return OutputModule::summaryWithCounters(cfg, r, st.stats()).dump();
}

TEST(FaultInjector, EndToEndRunsAreBitIdenticalForAFixedSeed)
{
    HardwareConfig cfg = HardwareConfig::maeriLike(64, 16);
    cfg.faults = allFaults(21);

    Tensor out1, out2;
    const std::string rep1 = faultyConvReport(cfg, &out1);
    const std::string rep2 = faultyConvReport(cfg, &out2);
    EXPECT_EQ(rep1, rep2);
    EXPECT_TRUE(out1.equals(out2));
}

TEST(FaultInjector, FaultsActuallyPerturbTheSimulation)
{
    HardwareConfig clean = HardwareConfig::maeriLike(64, 16);
    HardwareConfig faulty = clean;
    faulty.faults = allFaults(21);

    Tensor out_clean, out_faulty;
    const std::string rep_clean = faultyConvReport(clean, &out_clean);
    const std::string rep_faulty = faultyConvReport(faulty, &out_faulty);

    // Corrupted operands and stuck multipliers change the output; the
    // counter census records the injections.
    EXPECT_FALSE(out_clean.equals(out_faulty));
    EXPECT_EQ(rep_clean.find("faults."), std::string::npos);
    EXPECT_NE(rep_faulty.find("faults.dropped_flits"), std::string::npos);
}

TEST(FaultInjector, DroppedFlitsStretchTheDelivery)
{
    HardwareConfig clean = HardwareConfig::maeriLike(64, 16);
    HardwareConfig faulty = clean;
    faulty.faults.enabled = true;
    faulty.faults.seed = 4;
    faulty.faults.flit_drop_rate = 0.3; // drops are timing-only

    Stonne a(clean), b(faulty);
    Rng rng(5);
    Tensor in({1, 4, 8, 8}), w({8, 4, 3, 3});
    in.fillUniform(rng);
    w.fillUniform(rng);

    a.configureConv(smallConv());
    a.configureData(in, w, Tensor());
    const SimulationResult ra = a.runOperation();

    b.configureConv(smallConv());
    b.configureData(in, w, Tensor());
    const SimulationResult rb = b.runOperation();

    EXPECT_GT(rb.cycles, ra.cycles);
    // Retransmission changes timing, never values.
    EXPECT_TRUE(a.output().equals(b.output()));
    EXPECT_GT(b.stats().value("faults.dropped_flits"), 0u);
}

TEST(FaultInjector, FaultyExampleConfigParsesAndRuns)
{
    const HardwareConfig cfg =
        HardwareConfig::parseFile("configs/maeri_64_faulty.cfg");
    EXPECT_TRUE(cfg.faults.enabled);
    EXPECT_EQ(cfg.faults.seed, 7u);
    EXPECT_DOUBLE_EQ(cfg.faults.stuck_multiplier_rate, 0.03);
    EXPECT_DOUBLE_EQ(cfg.faults.flit_drop_rate, 0.01);
    EXPECT_EQ(cfg.watchdog_cycles, 50000);

    // The fault block survives a round trip through toConfigText().
    const HardwareConfig back = HardwareConfig::parse(cfg.toConfigText());
    EXPECT_TRUE(back.faults.enabled);
    EXPECT_EQ(back.faults.seed, 7u);
    EXPECT_DOUBLE_EQ(back.faults.flit_corrupt_rate,
                     cfg.faults.flit_corrupt_rate);

    Tensor out;
    EXPECT_FALSE(faultyConvReport(cfg, &out).empty());
    EXPECT_EQ(out.size(), 1 * 8 * 8 * 8);
}

} // namespace
} // namespace stonne
