#!/usr/bin/env bash
# Simulator-speed benchmark: build bench_sim_speed and run it from the
# repo root, leaving BENCH_sim_speed.json there. The harness itself
# asserts fast-forward/reference parity on every point before timing.
#
#   scripts/bench.sh          # build + run
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target bench_sim_speed
./build/bench/bench_sim_speed
