#!/usr/bin/env bash
# Tier-1 verification: build and run the full test suite, normally and
# under ASan+UBSan (the `asan-ubsan` CMake preset / STONNE_SANITIZE).
#
#   scripts/check.sh          # plain build + ctest, then sanitized run
#   scripts/check.sh --plain  # skip the sanitized pass
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [[ "${1:-}" == "--plain" ]]; then
    exit 0
fi

echo "== ASan+UBSan build =="
cmake -B build-asan -S . -DSTONNE_SANITIZE=address+undefined >/dev/null
cmake --build build-asan -j "$jobs"
(cd build-asan && ctest --output-on-failure -j "$jobs")
