#include "multicore/partition.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace stonne {

count_t
layerMacCost(const DnnLayer &l)
{
    switch (l.op) {
      case OpType::Conv2d: {
        const Conv2dShape &s = l.spec.conv;
        return static_cast<count_t>(s.N) * s.K * s.outX() * s.outY() *
            s.cPerGroup() * s.R * s.S;
      }
      case OpType::Linear:
        // weights are (out, in); every output row is an in-length dot.
        return static_cast<count_t>(l.weights.dim(0)) * l.weights.dim(1);
      case OpType::SelfAttention: {
        const AttentionSpec &a = l.attention;
        const count_t seq = a.seq_len;
        const count_t d = a.d_model;
        // Four projections plus the two per-head score/context GEMMs.
        return 4 * seq * d * d + 2 * seq * seq * d;
      }
      case OpType::MaxPool2d: {
        const Conv2dShape &s = l.spec.conv;
        return static_cast<count_t>(s.N) * s.C * s.X * s.Y;
      }
      default:
        // Native host ops are free on the accelerator; a nominal cost
        // keeps stage cuts well-defined across runs of free layers.
        return 1;
    }
}

PipelinePartition
assignPipelineStages(const DnnModel &model, index_t cores)
{
    const std::size_t n = model.layers.size();
    fatalIf(n == 0, "cannot partition a model with no layers");
    fatalIf(cores <= 0, "pipeline partitioning needs at least one core");

    const auto stages =
        static_cast<std::size_t>(std::min<count_t>(cores,
                                                   static_cast<count_t>(n)));

    std::vector<count_t> cost(n);
    count_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        cost[i] = layerMacCost(model.layers[i]);
        total += cost[i];
    }

    PipelinePartition part;
    part.stage_of_layer.assign(n, 0);

    std::size_t first = 0;
    count_t remaining = total;
    for (std::size_t s = 0; s < stages; ++s) {
        const std::size_t stages_left = stages - s;
        // Proportional share of what is still unassigned; recomputing
        // per stage self-corrects when one heavy layer overshoots.
        const count_t target = remaining / static_cast<count_t>(stages_left);
        std::size_t last = first;
        count_t acc = 0;
        while (last < n) {
            // Leave at least one layer per remaining stage.
            if (n - (last + 1) < stages_left - 1)
                break;
            acc += cost[last];
            ++last;
            if (stages_left > 1 && acc >= target)
                break;
        }
        panicIf(last <= first, "empty pipeline stage");
        for (std::size_t i = first; i < last; ++i)
            part.stage_of_layer[i] = static_cast<index_t>(s);
        part.stage_bounds.emplace_back(first, last);
        remaining -= acc;
        first = last;
    }
    panicIf(first != n, "pipeline partition did not cover every layer");
    part.core_of_stage.resize(part.stage_bounds.size());
    for (std::size_t s = 0; s < part.core_of_stage.size(); ++s)
        part.core_of_stage[s] = static_cast<index_t>(s);
    return part;
}

PipelinePartition
assignPipelineStages(const DnnModel &model,
                     const std::vector<index_t> &cores)
{
    fatalIf(cores.empty(),
            "pipeline partitioning needs at least one healthy core");
    PipelinePartition part =
        assignPipelineStages(model, static_cast<index_t>(cores.size()));
    for (std::size_t s = 0; s < part.core_of_stage.size(); ++s)
        part.core_of_stage[s] = cores[s];
    return part;
}

std::vector<std::pair<index_t, index_t>>
splitOutputChannels(index_t k, index_t cores)
{
    fatalIf(k <= 0, "cannot shard a non-positive channel count");
    fatalIf(cores <= 0, "channel sharding needs at least one core");
    std::vector<std::pair<index_t, index_t>> shards;
    shards.reserve(static_cast<std::size_t>(cores));
    const index_t base = k / cores;
    const index_t rem = k % cores;
    index_t at = 0;
    for (index_t c = 0; c < cores; ++c) {
        const index_t len = base + (c < rem ? 1 : 0);
        shards.emplace_back(at, len);
        at += len;
    }
    return shards;
}

bool
kSplitShardable(const DnnLayer &l)
{
    // Grouped convolutions interleave input channels with output
    // channels, so a contiguous K shard would need a matching C shard;
    // they run whole on core 0 instead.
    if (l.op == OpType::Conv2d)
        return l.spec.conv.G == 1 && l.spec.conv.K > 1;
    if (l.op == OpType::Linear)
        return l.weights.dim(0) > 1;
    return false;
}

} // namespace stonne
