/**
 * @file
 * Model partitioning for multi-core compositions: MAC-balanced
 * contiguous layer stages (layer-pipeline parallelism) and output-
 * channel shard ranges (K/N-split tensor parallelism).
 *
 * Partitioning is pure arithmetic over the model description — no
 * simulator state — so both the scheduler and the tests can reason
 * about assignments independently of execution.
 */

#ifndef STONNE_MULTICORE_PARTITION_HPP
#define STONNE_MULTICORE_PARTITION_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "frontend/dnn_layer.hpp"

namespace stonne {

/** Contiguous layer-range assignment of a pipeline-parallel run. */
struct PipelinePartition {
    /** Stage index of every layer. */
    std::vector<index_t> stage_of_layer;
    /** [first, last) layer range of every stage; size() is the stage
     *  count, at most the core count and never more than the layer
     *  count. */
    std::vector<std::pair<std::size_t, std::size_t>> stage_bounds;
    /** Physical core running each stage. The identity mapping on a
     *  healthy composition; after a quarantine the surviving cores are
     *  renumbered onto the stages in ascending order. */
    std::vector<index_t> core_of_stage;

    index_t stages() const
    {
        return static_cast<index_t>(stage_bounds.size());
    }

    index_t coreOf(std::size_t stage) const
    {
        return core_of_stage[stage];
    }
};

/**
 * Estimated MAC cost of one layer (the balancing weight). Offloaded
 * operations count their arithmetic; native host ops count 1 so empty
 * stages cannot arise from runs of free layers.
 */
count_t layerMacCost(const DnnLayer &l);

/**
 * Assign contiguous, MAC-balanced layer stages to at most `cores`
 * cores: walk the layers accumulating cost and cut a stage whenever it
 * reaches its proportional share of the remaining work, keeping one
 * layer minimum per stage. Deterministic in the model and core count.
 */
PipelinePartition assignPipelineStages(const DnnModel &model,
                                       index_t cores);

/**
 * Pipeline stages over an explicit set of physical cores (the healthy
 * survivors after a quarantine): the same MAC-balanced cut over
 * `cores.size()` stages, with `core_of_stage` binding stage s to
 * cores[s]. The core list must be non-empty and sorted ascending.
 */
PipelinePartition assignPipelineStages(const DnnModel &model,
                                       const std::vector<index_t> &cores);

/**
 * Contiguous (first, length) shard ranges splitting `k` output
 * channels across `cores` cores, remainder spread over the leading
 * shards. Length-0 shards appear when k < cores; callers skip them.
 */
std::vector<std::pair<index_t, index_t>> splitOutputChannels(
    index_t k, index_t cores);

/** Whether KSPLIT can shard this layer across cores. */
bool kSplitShardable(const DnnLayer &l);

} // namespace stonne

#endif // STONNE_MULTICORE_PARTITION_HPP
