#include "multicore/shared_dram.hpp"

#include <algorithm>
#include <cmath>

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"

namespace stonne {

SharedDramArbiter::SharedDramArbiter(index_t cores, index_t channels,
                                     double total_bytes_per_cycle)
    : cores_(cores), channels_(channels),
      channel_bytes_per_cycle_(total_bytes_per_cycle /
                               static_cast<double>(channels)),
      ledger_(static_cast<std::size_t>(channels)),
      stalls_(static_cast<std::size_t>(cores), 0),
      grants_(static_cast<std::size_t>(cores), 0),
      bytes_(static_cast<std::size_t>(cores), 0)
{
    fatalIf(cores <= 0, "shared DRAM arbiter needs at least one core");
    fatalIf(channels <= 0 || channels > cores,
            "shared DRAM channels must lie in [1, cores]");
    fatalIf(total_bytes_per_cycle <= 0.0,
            "shared DRAM bandwidth must be positive");
}

cycle_t
SharedDramArbiter::nominalCycles(count_t bytes) const
{
    if (bytes == 0)
        return 0;
    return static_cast<cycle_t>(
        std::ceil(static_cast<double>(bytes) / channel_bytes_per_cycle_));
}

cycle_t
SharedDramArbiter::completionOn(index_t ch, index_t core, cycle_t start,
                                cycle_t work) const
{
    const auto &ledger = ledger_[static_cast<std::size_t>(ch)];

    // Boundaries where the committed-overlap count can change.
    std::vector<cycle_t> bounds;
    for (const Interval &iv : ledger) {
        if (iv.core == core || iv.e <= start)
            continue;
        bounds.push_back(std::max(iv.s, start));
        bounds.push_back(iv.e);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    auto overlap_at = [&](cycle_t t) {
        cycle_t k = 0;
        for (const Interval &iv : ledger)
            if (iv.core != core && iv.s <= t && t < iv.e)
                ++k;
        return k;
    };

    // Fair time-sharing: in a segment with k committed transfers this
    // one progresses at 1/(k+1) of channel bandwidth. The remaining
    // work is tracked in long double; the ledger holds integral
    // intervals so the walk is deterministic.
    long double remaining = static_cast<long double>(work);
    cycle_t t = start;
    for (cycle_t nb : bounds) {
        if (nb <= t)
            continue;
        if (remaining <= 0.0L)
            break;
        const cycle_t k = overlap_at(t);
        const long double capacity =
            static_cast<long double>(nb - t) /
            static_cast<long double>(k + 1);
        if (capacity >= remaining) {
            const long double span =
                remaining * static_cast<long double>(k + 1);
            return t + static_cast<cycle_t>(std::ceil(span));
        }
        remaining -= capacity;
        t = nb;
    }
    if (remaining <= 0.0L)
        return t;
    // Past the last boundary the channel is uncontended.
    return t + static_cast<cycle_t>(std::ceil(remaining));
}

SharedDramArbiter::Grant
SharedDramArbiter::request(index_t core, cycle_t start, count_t bytes,
                           cycle_t accounted)
{
    panicIf(core < 0 || core >= cores_,
            "shared DRAM request from an out-of-range core");
    Grant g;
    if (bytes == 0) {
        g.completion = start + accounted;
        return g;
    }

    const cycle_t work = nominalCycles(bytes);
    const index_t ch = channelOf(core);
    cycle_t completion = completionOn(ch, core, start, work);
    if (completion < start + accounted)
        completion = start + accounted;
    ledger_[static_cast<std::size_t>(ch)].push_back(
        Interval{start, completion, core});

    g.completion = completion;
    const cycle_t dur = completion - start;
    g.contention = dur > accounted ? dur - accounted : 0;

    const auto c = static_cast<std::size_t>(core);
    stalls_[c] += g.contention;
    grants_[c] += 1;
    bytes_[c] += bytes;
    return g;
}

void
SharedDramArbiter::retireCore(index_t core, cycle_t at)
{
    panicIf(core < 0 || core >= cores_,
            "cannot retire an out-of-range core");
    for (auto &channel : ledger_) {
        for (Interval &iv : channel)
            if (iv.core == core && iv.e > at)
                iv.e = std::max(iv.s, at);
        channel.erase(std::remove_if(channel.begin(), channel.end(),
                                     [](const Interval &iv) {
                                         return iv.s >= iv.e;
                                     }),
                      channel.end());
    }
}

void
SharedDramArbiter::saveState(ArchiveWriter &ar) const
{
    ar.putI64(cores_);
    ar.putI64(channels_);
    ar.putU64(ledger_.size());
    for (const auto &channel : ledger_) {
        ar.putU64(channel.size());
        for (const Interval &iv : channel) {
            ar.putU64(iv.s);
            ar.putU64(iv.e);
            ar.putI64(iv.core);
        }
    }
    ar.putCounts(stalls_);
    ar.putCounts(grants_);
    ar.putCounts(bytes_);
}

void
SharedDramArbiter::loadState(ArchiveReader &ar)
{
    const auto cores = static_cast<index_t>(ar.getI64());
    const auto channels = static_cast<index_t>(ar.getI64());
    if (cores != cores_ || channels != channels_)
        ar.fail("shared DRAM snapshot belongs to a different "
                "core/channel composition");
    const std::uint64_t n_ch = ar.getU64();
    if (n_ch != ledger_.size())
        ar.fail("shared DRAM snapshot channel-ledger count mismatch");
    for (auto &channel : ledger_) {
        channel.clear();
        const std::uint64_t n = ar.getU64();
        channel.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            Interval iv;
            iv.s = ar.getU64();
            iv.e = ar.getU64();
            iv.core = static_cast<index_t>(ar.getI64());
            channel.push_back(iv);
        }
    }
    stalls_ = ar.getCounts();
    grants_ = ar.getCounts();
    bytes_ = ar.getCounts();
    if (stalls_.size() != static_cast<std::size_t>(cores_) ||
        grants_.size() != static_cast<std::size_t>(cores_) ||
        bytes_.size() != static_cast<std::size_t>(cores_))
        ar.fail("shared DRAM snapshot per-core counter size mismatch");
}

} // namespace stonne
