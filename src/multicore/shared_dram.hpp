/**
 * @file
 * Shared-DRAM bandwidth arbiter for multi-accelerator compositions.
 *
 * Every core of a multi-core configuration keeps its own cycle-level
 * Dram model — the nominal cost of its transfers is already inside the
 * core's simulated cycles. What a private model cannot see is the
 * *other* cores: when several accelerators sit behind one memory
 * system, transfers overlapping on a channel time-share its bandwidth.
 * This arbiter composes the per-core timelines after the fact: each
 * off-chip transfer is requested against its core's channel with its
 * global start cycle, the arbiter replays it against the channel's
 * committed-transfer ledger at a fair 1/(k+1) share wherever k other
 * transfers overlap, and the difference between the replayed duration
 * and what the core already accounted for is the contention stall the
 * scheduler adds to the global timeline.
 *
 * Properties the tests rely on:
 *  - one core on one channel never overlaps itself (its timeline is
 *    serial), so every request completes at its nominal duration and
 *    the stall counters stay zero — the single-core composition is
 *    bit-identical to the legacy path by construction;
 *  - grants are deterministic: the ledger only depends on the request
 *    sequence, and the scheduler issues requests in its static
 *    schedule order.
 */

#ifndef STONNE_MULTICORE_SHARED_DRAM_HPP
#define STONNE_MULTICORE_SHARED_DRAM_HPP

#include <vector>

#include "common/types.hpp"

namespace stonne {

class ArchiveReader;
class ArchiveWriter;

/** Per-channel bandwidth arbiter with committed-transfer ledger. */
class SharedDramArbiter
{
  public:
    /**
     * @param cores accelerator cores behind the shared DRAM
     * @param channels independent channels; the aggregate bandwidth is
     *        split evenly and cores are striped over them
     * @param total_bytes_per_cycle aggregate DRAM bytes per cycle
     */
    SharedDramArbiter(index_t cores, index_t channels,
                      double total_bytes_per_cycle);

    /** Outcome of one arbitrated transfer. */
    struct Grant {
        cycle_t completion = 0; //!< global cycle the transfer finishes
        cycle_t contention = 0; //!< cycles beyond what the core accounted
    };

    /**
     * Arbitrate a transfer of `bytes` issued by `core` at global cycle
     * `start`. `accounted` is the part of the transfer's cost the
     * caller handles elsewhere — normally the nominal channel cycles
     * (for operation traffic they sit inside the core's own simulated
     * cycles; for an explicit activation push the scheduler advances
     * by the completion cycle directly) — so `contention` isolates
     * pure cross-core interference. The transfer is committed to the
     * channel ledger and the per-core stall/grant counters updated.
     */
    Grant request(index_t core, cycle_t start, count_t bytes,
                  cycle_t accounted);

    index_t cores() const { return cores_; }
    index_t channels() const { return channels_; }
    index_t channelOf(index_t core) const { return core % channels_; }

    /** Nominal channel-cycles a transfer of `bytes` serializes for. */
    cycle_t nominalCycles(count_t bytes) const;

    /** Contention cycles charged to `core` so far. */
    count_t stallCycles(index_t core) const { return stalls_[core]; }

    /** Transfers granted to `core` so far. */
    count_t grantCount(index_t core) const { return grants_[core]; }

    /** Bytes `core` moved through the shared DRAM so far. */
    count_t bytesRequested(index_t core) const { return bytes_[core]; }

    /**
     * Rebind the ledger after `core` is quarantined at global cycle
     * `at`: its committed transfers are truncated to `at` (a dead core
     * moves no more data), so surviving cores arbitrating at or past
     * the quarantine point no longer contend with its phantom traffic.
     * History before `at` is preserved — grants already handed out
     * stay exactly as they were replayed.
     */
    void retireCore(index_t core, cycle_t at);

    /** Serialize the ledger and counters (checkpoint section). */
    void saveState(ArchiveWriter &ar) const;
    void loadState(ArchiveReader &ar);

  private:
    struct Interval {
        cycle_t s = 0;
        cycle_t e = 0;
        index_t core = 0;
    };

    /**
     * Completion cycle of `work` channel-cycles issued by `core` at
     * `start` against the channel's committed ledger. A core's own
     * committed transfers are skipped — its timeline is serial, so
     * they never really overlap; only cross-core traffic contends.
     */
    cycle_t completionOn(index_t ch, index_t core, cycle_t start,
                         cycle_t work) const;

    index_t cores_;
    index_t channels_;
    double channel_bytes_per_cycle_;

    std::vector<std::vector<Interval>> ledger_; //!< per channel
    std::vector<count_t> stalls_;               //!< per core
    std::vector<count_t> grants_;               //!< per core
    std::vector<count_t> bytes_;                //!< per core
};

} // namespace stonne

#endif // STONNE_MULTICORE_SHARED_DRAM_HPP
