#include "multicore/multicore_runner.hpp"

#include <algorithm>
#include <filesystem>
#include <set>
#include <utility>

#include "checkpoint/checkpoint.hpp"
#include "common/logging.hpp"
#include "common/watchdog.hpp"
#include "engine/output_module.hpp"
#include "tensor/reference.hpp"

namespace stonne {

namespace {

const HardwareConfig &
validated(const HardwareConfig &cfg)
{
    cfg.validate();
    return cfg;
}

/** Dim-0 slice [at, at + len) of a tensor (outer rows, flat copy). */
Tensor
sliceOuterDim(const Tensor &t, index_t at, index_t len)
{
    std::vector<index_t> shape = t.shape();
    fatalIf(shape.empty() || at < 0 || len <= 0 || at + len > shape[0],
            "outer-dim slice out of range");
    const index_t inner = t.size() / shape[0];
    shape[0] = len;
    Tensor out(shape);
    std::copy_n(t.data() + at * inner, len * inner, out.data());
    return out;
}

/**
 * N-way concatenation along dim 1 (Conv K axis of (N, K, X', Y') shard
 * outputs, output-feature axis of (batch, out) linear shards). Bit-
 * exact reassembly: each output channel's reduction ran whole on one
 * core, so element values match the unsharded operation.
 */
Tensor
concatDim1(const std::vector<Tensor> &parts)
{
    panicIf(parts.empty(), "cannot concatenate zero shard outputs");
    const Tensor &f = parts.front();
    panicIf(f.rank() < 2, "shard outputs must have a dim-1 axis");
    std::vector<index_t> shape = f.shape();
    index_t d1 = 0;
    for (const Tensor &p : parts)
        d1 += p.dim(1);
    shape[1] = d1;
    Tensor out(shape);

    index_t inner = 1;
    for (index_t i = 2; i < f.rank(); ++i)
        inner *= f.dim(i);
    const index_t outer = f.dim(0);

    float *dst = out.data();
    for (index_t o = 0; o < outer; ++o)
        for (const Tensor &p : parts) {
            const index_t block = p.dim(1) * inner;
            std::copy_n(p.data() + o * block, block, dst);
            dst += block;
        }
    return out;
}

/**
 * Tensor-with-presence-flag archive field: samples not yet entered
 * into the pipeline (and output slots not yet produced) hold empty
 * tensors, which the plain tensor codec cannot represent.
 */
void
saveOptTensor(ArchiveWriter &ar, const Tensor &t)
{
    ar.putBool(!t.empty());
    if (!t.empty())
        saveTensor(ar, t);
}

Tensor
loadOptTensor(ArchiveReader &ar)
{
    if (!ar.getBool())
        return Tensor();
    return loadTensor(ar);
}

} // namespace

HardwareConfig
MulticoreRunner::makeCoreConfig(index_t c) const
{
    HardwareConfig cc = cfg_;
    cc.cores = 1;
    cc.dram_channels = 1;
    // A core's private DRAM model sees its channel's share of the
    // aggregate bandwidth, so its own simulated cycles already
    // carry the nominal transfer cost; the arbiter adds only the
    // interference of cores sharing a channel. With one core and
    // one channel this leaves the configuration untouched — the
    // composition is the legacy single-accelerator instance.
    cc.dram_bandwidth_gbps =
        cfg_.dram_bandwidth_gbps / static_cast<double>(cfg_.dram_channels);
    if (cfg_.cores > 1 && cfg_.trace)
        cc.trace_file = cfg_.trace_file + ".core" + std::to_string(c);
    // fault_core routing: a targeted injector arms only its core; the
    // siblings run fault-free (and keep fast-forward, faults disable
    // it per instance).
    if (cfg_.faults.enabled && cfg_.faults.core >= 0)
        cc.faults.enabled = cfg_.faults.core == static_cast<int>(c);
    cc.faults.core = -1;
    return cc;
}

MulticoreRunner::MulticoreRunner(const DnnModel &model,
                                 const HardwareConfig &cfg)
    : model_(model), cfg_(validated(cfg)),
      arbiter_(cfg_.cores, cfg_.dram_channels,
               cfg_.dram_bandwidth_gbps / cfg_.clock_ghz),
      part_(assignPipelineStages(model, cfg_.cores)),
      quarantined_(static_cast<std::size_t>(cfg_.cores), 0)
{
    for (index_t c = 0; c < cfg_.cores; ++c) {
        cores_.push_back(std::make_unique<Stonne>(makeCoreConfig(c)));
        // The runner writes its own composition-level snapshots; the
        // engine's per-operation auto-checkpoint would race them.
        cores_.back()->setAutoCheckpoint(false);
    }

    if (cfg_.autotune) {
        dse::TuneOptions opts;
        opts.top_k = cfg_.dse_top_k;
        opts.cache_file = cfg_.dse_cache_file;
        // Keyed on the original multi-core configuration: its
        // structural text carries cores/channels/partition, so cached
        // single-core outcomes can never answer a multi-core request.
        tuner_ = std::make_unique<dse::AutoTuner>(cfg_, opts);
    }

    if (cfg_.cores > 1) {
        contended_ = std::make_unique<bool[]>(
            static_cast<std::size_t>(cfg_.cores));
        for (index_t c = 0; c < cfg_.cores; ++c) {
            contended_[c] = false;
            cores_[static_cast<std::size_t>(c)]
                ->accelerator()
                .engine()
                .setSkipInhibit(&contended_[c]);
        }
    }
}

void
MulticoreRunner::rebuildCore(index_t c)
{
    const auto i = static_cast<std::size_t>(c);
    cores_[i] = std::make_unique<Stonne>(makeCoreConfig(c));
    cores_[i]->setAutoCheckpoint(false);
    if (contended_) {
        contended_[i] = false;
        cores_[i]->accelerator().engine().setSkipInhibit(&contended_[i]);
    }
    if (quarantined_[i])
        cores_[i]->accelerator().engine().quarantine();
    cores_[i]->accelerator().watchdog().setWallDeadline(wall_deadline_);
}

void
MulticoreRunner::setWallDeadline(
    std::optional<std::chrono::steady_clock::time_point> deadline)
{
    wall_deadline_ = deadline;
    for (const auto &core : cores_)
        core->accelerator().watchdog().setWallDeadline(deadline);
}

std::vector<index_t>
MulticoreRunner::quarantinedCores() const
{
    std::vector<index_t> q;
    for (index_t c = 0; c < coreCount(); ++c)
        if (quarantined_[static_cast<std::size_t>(c)])
            q.push_back(c);
    return q;
}

std::vector<index_t>
MulticoreRunner::healthyCores() const
{
    std::vector<index_t> h;
    for (index_t c = 0; c < coreCount(); ++c)
        if (!quarantined_[static_cast<std::size_t>(c)])
            h.push_back(c);
    return h;
}

bool
MulticoreRunner::canQuarantine() const
{
    return fault_tolerant_ &&
        healthyCores().size() >= 2;
}

Tensor
MulticoreRunner::run(const Tensor &input)
{
    std::vector<Tensor> in;
    in.push_back(input);
    return runBatch(std::move(in)).front();
}

std::vector<Tensor>
MulticoreRunner::runBatch(std::vector<Tensor> inputs)
{
    fatalIf(inputs.empty(), "multicore runBatch needs at least one sample");
    resetRunState(std::move(inputs));
    if (cfg_.partition == PartitionStrategy::Pipeline)
        runPipeline();
    else
        runKSplit();
    finishRun();
    return outputs_;
}

Tensor
MulticoreRunner::resume(const std::string &path)
{
    std::vector<Tensor> out = resumeBatch(path);
    fatalIf(out.size() != 1,
            "the snapshot carries a batch; use resumeBatch()");
    return out.front();
}

Tensor
MulticoreRunner::runNative(const Tensor &input) const
{
    LayerExecOptions opts;
    opts.simulate = false;
    LayerExecutor exec(model_, *cores_.front(), nullptr, opts, nullptr);
    Tensor cur = input;
    std::map<int, Tensor> saved;
    for (std::size_t i = 0; i < model_.layers.size(); ++i) {
        cur = exec.runLayer(i, cur, input, saved);
        if (model_.layers[i].save_output)
            saved[static_cast<int>(i)] = cur;
    }
    return cur;
}

void
MulticoreRunner::resetRunState(std::vector<Tensor> inputs)
{
    samples_.clear();
    samples_.reserve(inputs.size());
    for (Tensor &in : inputs) {
        SampleState st;
        st.input = in;
        st.cur = std::move(in);
        samples_.push_back(std::move(st));
    }
    outputs_.assign(samples_.size(), Tensor());
    core_records_.assign(static_cast<std::size_t>(cfg_.cores), {});
    next_b_ = 0;
    next_s_ = 0;
    next_layer_ = 0;
    layers_done_.assign(samples_.size(), 0);
    // Quarantine is sticky for the runner's lifetime (a benched core's
    // engine aborted mid-operation and must not be driven again), so
    // every run schedules over the current healthy set.
    part_ = assignPipelineStages(model_, healthyCores());
    stage_free_.assign(part_.stage_bounds.size(), 0);
    ready_.assign(samples_.size(), 0);
    ksplit_t_ = 0;
    makespan_ = 0;
    migrations_ = 0;
    resume_cycle_ = 0;
    arbiter_ = SharedDramArbiter(cfg_.cores, cfg_.dram_channels,
                                 cfg_.dram_bandwidth_gbps / cfg_.clock_ghz);

    cycle_t sum = 0;
    for (const auto &core : cores_)
        sum += core->totalCycles();
    last_ckpt_cycles_ = sum;
    last_checkpoint_path_.clear();
}

bool
MulticoreRunner::siblingBusyPast(std::size_t self, cycle_t at) const
{
    // Stages map one-to-one onto healthy cores, so "another stage is
    // busy" is "another (healthy) core is busy"; quarantined cores own
    // no stage and therefore never hold a sibling's gate closed.
    for (std::size_t s = 0; s < stage_free_.size(); ++s)
        if (s != self && stage_free_[s] > at)
            return true;
    return false;
}

count_t
MulticoreRunner::dramBytes(index_t core) const
{
    return cores_[static_cast<std::size_t>(core)]
        ->accelerator()
        .dram()
        .bytesTransferred();
}

cycle_t
MulticoreRunner::internalNominal(index_t core, count_t bytes) const
{
    (void)core;
    // Per-core DRAM bandwidth equals the arbiter's channel share (see
    // the constructor), so the arbiter's own nominal is exactly the
    // cost the core already carries — avoiding a second floating-point
    // path whose rounding could differ by one cycle.
    return arbiter_.nominalCycles(bytes);
}

const Tensor &
MulticoreRunner::resolveRef(const SampleState &st, int idx) const
{
    if (idx == -1)
        return st.cur;
    if (idx == DnnLayer::kFromModelInput)
        return st.input;
    return st.saved.at(idx);
}

void
MulticoreRunner::runPipeline()
{
    const std::size_t B = samples_.size();
    while (next_b_ < B) {
        try {
            runPipelineStage(next_b_, next_s_);
        } catch (const CoreFault &f) {
            quarantinePipeline(f);
            continue; // re-dispatch the in-flight sample's stage
        }
        ++next_s_;
        if (next_s_ == part_.stage_bounds.size()) {
            next_s_ = 0;
            ++next_b_;
        }
        maybeCheckpoint();
    }
}

void
MulticoreRunner::runPipelineStage(std::size_t b, std::size_t s)
{
    SampleState &st = samples_[b];
    const auto [first, last] = part_.stage_bounds[s];
    const index_t core_idx = part_.core_of_stage[s];
    Stonne &core = *cores_[static_cast<std::size_t>(core_idx)];
    const index_t bpe = bytesPerElement(cfg_.data_type);
    // After a migration the sample re-enters its new stage at the last
    // committed layer boundary; layers it already ran are not redone.
    const std::size_t first_l =
        std::max(first, static_cast<std::size_t>(layers_done_[b]));

    cycle_t t = std::max(stage_free_[s], ready_[b]);

    // Charge cross-stage skip-link reads up front: tensors this stage's
    // layers reference that were produced on another core (or the model
    // input, resident in DRAM, for any stage but the first) must be
    // fetched through the shared memory system before the stage runs.
    std::set<int> cross_refs;
    for (std::size_t i = first_l; i < last; ++i) {
        const DnnLayer &l = model_.layers[i];
        for (const int idx : {l.input_from, l.operand_from}) {
            if (idx == -1)
                continue;
            if (idx == DnnLayer::kFromModelInput && s != 0)
                cross_refs.insert(idx);
            if (idx >= 0 &&
                part_.stage_of_layer[static_cast<std::size_t>(idx)] !=
                    static_cast<index_t>(s))
                cross_refs.insert(idx);
        }
    }
    for (const int idx : cross_refs) {
        const Tensor &ref = resolveRef(st, idx);
        const count_t bytes = static_cast<count_t>(ref.size()) * bpe;
        const SharedDramArbiter::Grant g = arbiter_.request(
            core_idx, t, bytes, arbiter_.nominalCycles(bytes));
        t = g.completion;
    }

    if (contended_)
        contended_[core_idx] = siblingBusyPast(s, t);

    LayerExecOptions opts;
    opts.simulate = true;
    opts.snapea_early_exit = snapea_early_exit_;
    opts.offload_pooling = offload_pooling_;
    LayerExecutor exec(model_, core, tuner_.get(), opts,
                       &core_records_[static_cast<std::size_t>(core_idx)]);

    for (std::size_t i = first_l; i < last; ++i) {
        const cycle_t op_start = t;
        const cycle_t cyc0 = core.totalCycles();
        const count_t bytes0 = dramBytes(core_idx);

        try {
            st.cur = exec.runLayer(i, st.cur, st.input, st.saved);
        } catch (const DeadlockError &e) {
            if (canQuarantine())
                throw CoreFault{core_idx, i, e.what()};
            throw;
        } catch (const BudgetExceededError &e) {
            // A per-core cycle-budget blowout is a core fault; the
            // whole-job wall deadline stays terminal.
            if (e.budgetKind() == BudgetExceededError::Kind::Cycles &&
                canQuarantine())
                throw CoreFault{core_idx, i, e.what()};
            throw;
        }
        layers_done_[b] = i + 1;
        if (model_.layers[i].save_output)
            st.saved[static_cast<int>(i)] = st.cur;

        const cycle_t d = core.totalCycles() - cyc0;
        const count_t nb = dramBytes(core_idx) - bytes0;
        if (d == 0 && nb == 0)
            continue; // native host op: free on the global timeline
        const SharedDramArbiter::Grant g = arbiter_.request(
            core_idx, op_start, nb, internalNominal(core_idx, nb));
        t = op_start + d + g.contention;
    }

    stage_free_[s] = t;
    if (s + 1 < part_.stage_bounds.size()) {
        // Push the stage output to the next stage's core through the
        // shared DRAM; the consumer starts once the transfer lands.
        const count_t bytes = static_cast<count_t>(st.cur.size()) * bpe;
        const SharedDramArbiter::Grant g = arbiter_.request(
            core_idx, t, bytes, arbiter_.nominalCycles(bytes));
        ready_[b] = g.completion;
    } else {
        outputs_[b] = st.cur;
        makespan_ = std::max(makespan_, t);
    }
}

void
MulticoreRunner::applyQuarantine(const CoreFault &f)
{
    const auto i = static_cast<std::size_t>(f.core);
    panicIf(quarantined_[i] != 0, "core quarantined twice");
    quarantined_[i] = 1;
    ++migrations_;

    // The migration point on the global timeline: nothing the
    // survivors do next can start before the last committed event.
    cycle_t at = ksplit_t_;
    for (const cycle_t t : stage_free_)
        at = std::max(at, t);
    for (const cycle_t t : ready_)
        at = std::max(at, t);
    at = std::max(at, makespan_);
    resume_cycle_ = at;

    // Bench the core: its engine leaves the all-cores-busy check and
    // its phantom future DRAM traffic stops contending.
    cores_[i]->accelerator().engine().quarantine();
    if (contended_)
        contended_[i] = false;
    arbiter_.retireCore(f.core, at);

    // Re-run the MAC-balanced partitioner over the healthy survivors.
    // All new stages open at the migration point: a quarantine
    // serializes the pipeline once, then it refills.
    part_ = assignPipelineStages(model_, healthyCores());
    stage_free_.assign(part_.stage_bounds.size(), resume_cycle_);

    if (observer_)
        observer_(f.core, f.cause, migrations_, resume_cycle_);
}

void
MulticoreRunner::quarantinePipeline(const CoreFault &f)
{
    applyQuarantine(f);

    // The in-flight sample resumes at its last completed layer
    // boundary. Its activation was produced on the sick core, so the
    // stage's new owner first fetches it through the shared DRAM.
    SampleState &st = samples_[next_b_];
    const auto resume_layer = static_cast<std::size_t>(
        layers_done_[next_b_]);
    panicIf(resume_layer >= model_.layers.size(),
            "pipeline fault past the last layer");
    const auto s_new = static_cast<std::size_t>(
        part_.stage_of_layer[resume_layer]);
    const index_t owner = part_.core_of_stage[s_new];
    const count_t bytes = static_cast<count_t>(st.cur.size()) *
        bytesPerElement(cfg_.data_type);
    const SharedDramArbiter::Grant g = arbiter_.request(
        owner, resume_cycle_, bytes, arbiter_.nominalCycles(bytes));
    ready_[next_b_] = g.completion;
    next_s_ = s_new;

    quarantineSnapshot();
}

void
MulticoreRunner::quarantineKSplit(const CoreFault &f)
{
    applyQuarantine(f);
    // The faulting layer re-runs whole, re-sharded over the healthy
    // cores, from its input boundary (st.cur is only committed at
    // concatenation, so it still holds the previous layer's output).
    ksplit_t_ = resume_cycle_;
    quarantineSnapshot();
}

void
MulticoreRunner::quarantineSnapshot()
{
    if (!cfg_.checkpoint)
        return;
    // Unconditional (interval ignored): a crash between here and the
    // next periodic snapshot must resume with the quarantine state.
    writeSnapshot();
    last_checkpoint_path_ = cfg_.checkpoint_file;
    cycle_t sum = 0;
    for (const auto &core : cores_)
        sum += core->totalCycles();
    last_ckpt_cycles_ = sum;
}

void
MulticoreRunner::runKSplit()
{
    const std::size_t B = samples_.size();
    const std::size_t L = model_.layers.size();
    while (next_b_ < B) {
        try {
            runKSplitLayer(next_b_, next_layer_);
        } catch (const CoreFault &f) {
            quarantineKSplit(f);
            continue; // re-run the layer over the survivors
        }
        ++next_layer_;
        if (next_layer_ == L) {
            outputs_[next_b_] = samples_[next_b_].cur;
            makespan_ = std::max(makespan_, ksplit_t_);
            next_layer_ = 0;
            ++next_b_;
        }
        maybeCheckpoint();
    }
}

void
MulticoreRunner::runKSplitLayer(std::size_t b, std::size_t i)
{
    SampleState &st = samples_[b];
    const DnnLayer &l = model_.layers[i];
    const index_t bpe = bytesPerElement(cfg_.data_type);
    const std::vector<index_t> healthy = healthyCores();
    const auto n_healthy = static_cast<index_t>(healthy.size());

    const bool shard = n_healthy > 1 && kSplitShardable(l) &&
        (l.op == OpType::Conv2d || l.op == OpType::Linear);

    if (!shard) {
        // Whole layer on the first healthy core (grouped convs,
        // attention, pooling and every native host op), exactly as the
        // single-core path runs it.
        const index_t c0 = healthy.front();
        if (contended_)
            contended_[c0] = false;
        Stonne &core = *cores_[static_cast<std::size_t>(c0)];
        LayerExecOptions opts;
        opts.simulate = true;
        opts.snapea_early_exit = snapea_early_exit_;
        opts.offload_pooling = offload_pooling_;
        LayerExecutor exec(model_, core, tuner_.get(), opts,
                           &core_records_[static_cast<std::size_t>(c0)]);
        const cycle_t cyc0 = core.totalCycles();
        const count_t bytes0 = dramBytes(c0);
        try {
            st.cur = exec.runLayer(i, st.cur, st.input, st.saved);
        } catch (const DeadlockError &e) {
            if (canQuarantine())
                throw CoreFault{c0, i, e.what()};
            throw;
        } catch (const BudgetExceededError &e) {
            if (e.budgetKind() == BudgetExceededError::Kind::Cycles &&
                canQuarantine())
                throw CoreFault{c0, i, e.what()};
            throw;
        }
        const cycle_t d = core.totalCycles() - cyc0;
        const count_t nb = dramBytes(c0) - bytes0;
        if (d != 0 || nb != 0) {
            const SharedDramArbiter::Grant g = arbiter_.request(
                c0, ksplit_t_, nb, internalNominal(c0, nb));
            ksplit_t_ += d + g.contention;
        }
    } else {
        const Tensor &in = resolveRef(st, l.input_from);
        const bool relu_next = i + 1 < model_.layers.size() &&
            model_.layers[i + 1].op == OpType::ReLU;
        const index_t k_total = l.op == OpType::Conv2d
            ? l.spec.conv.K
            : l.weights.dim(0);
        const auto shards = splitOutputChannels(k_total, n_healthy);

        index_t active = 0;
        for (const auto &[k0, len] : shards)
            if (len > 0)
                ++active;
        if (contended_)
            for (index_t c = 0; c < coreCount(); ++c)
                contended_[c] = !isQuarantined(c) && active > 1;

        const cycle_t start = ksplit_t_;
        cycle_t finish_max = start;
        std::vector<Tensor> parts;
        for (index_t j = 0; j < n_healthy; ++j) {
            const auto [k0, len] = shards[static_cast<std::size_t>(j)];
            if (len == 0)
                continue;
            const index_t c = healthy[static_cast<std::size_t>(j)];
            Stonne &core = *cores_[static_cast<std::size_t>(c)];

            LayerSpec spec = l.spec;
            spec.name = l.name + ".k" + std::to_string(j);
            Tensor w = sliceOuterDim(l.weights, k0, len);
            Tensor bias = l.bias.empty()
                ? Tensor()
                : sliceOuterDim(l.bias, k0, len);
            if (l.op == OpType::Conv2d) {
                spec.conv.K = len;
            } else {
                spec = LayerSpec::linear(spec.name, in.dim(0), in.dim(1),
                                         len);
            }

            std::optional<Tile> tile;
            std::optional<DseSummary> dse;
            if (tuner_) {
                const dse::TuneReport rep = tuner_->tuneLayer(spec);
                tile = rep.best;
                dse = rep.summary();
            }

            const cycle_t cyc0 = core.totalCycles();
            const count_t bytes0 = dramBytes(c);
            SimulationResult sim;
            try {
                if (l.op == OpType::Conv2d) {
                    core.setSnapeaEarlyExit(snapea_early_exit_ &&
                                            relu_next);
                    core.configureConv(spec, tile);
                } else {
                    core.configureLinear(spec, tile);
                }
                core.configureData(in, std::move(w), std::move(bias));
                sim = core.runOperation();
            } catch (const DeadlockError &e) {
                if (canQuarantine())
                    throw CoreFault{c, i, e.what()};
                throw;
            } catch (const BudgetExceededError &e) {
                if (e.budgetKind() ==
                        BudgetExceededError::Kind::Cycles &&
                    canQuarantine())
                    throw CoreFault{c, i, e.what()};
                throw;
            }
            if (dse)
                sim.dse = *dse;

            LayerRunRecord r;
            r.name = spec.name;
            r.op = l.op;
            r.offloaded = true;
            r.sim = sim;
            core_records_[static_cast<std::size_t>(c)].push_back(
                std::move(r));

            const cycle_t d = core.totalCycles() - cyc0;
            const count_t nb = dramBytes(c) - bytes0;
            const SharedDramArbiter::Grant g = arbiter_.request(
                c, start, nb, internalNominal(c, nb));
            cycle_t finish = start + d + g.contention;

            // Gather: every shard's output channels go back through
            // the shared DRAM so the next layer can read the full
            // activation from any core.
            const count_t out_bytes =
                static_cast<count_t>(core.output().size()) * bpe;
            const SharedDramArbiter::Grant push = arbiter_.request(
                c, finish, out_bytes, arbiter_.nominalCycles(out_bytes));
            finish = push.completion;

            finish_max = std::max(finish_max, finish);
            parts.push_back(core.output());
        }
        if (contended_)
            for (index_t c = 0; c < coreCount(); ++c)
                contended_[c] = false;

        ksplit_t_ = finish_max;
        st.cur = concatDim1(parts);
    }

    if (l.save_output)
        st.saved[static_cast<int>(i)] = st.cur;
}

void
MulticoreRunner::finishRun()
{
    if (cfg_.trace) {
        std::vector<Tracer *> tracers;
        for (const auto &core : cores_)
            if (Tracer *t = core->accelerator().tracer())
                tracers.push_back(t);
        if (!tracers.empty())
            Tracer::writeMerged(tracers, cfg_.trace_file);
    }
    if (contended_)
        for (index_t c = 0; c < coreCount(); ++c)
            contended_[c] = false;
}

void
MulticoreRunner::maybeCheckpoint()
{
    if (!cfg_.checkpoint)
        return;
    cycle_t sum = 0;
    for (const auto &core : cores_)
        sum += core->totalCycles();
    if (sum - last_ckpt_cycles_ <
        static_cast<cycle_t>(cfg_.checkpoint_interval_cycles))
        return;
    writeSnapshot();
    last_ckpt_cycles_ = sum;
    last_checkpoint_path_ = cfg_.checkpoint_file;
}

void
MulticoreRunner::writeSnapshot()
{
    ArchiveWriter ar;
    ar.beginSection("meta");
    ar.putU32(kCheckpointKindMulticoreRun);
    ar.putString(cfg_.toConfigText());
    ar.endSection();

    ar.beginSection("multicore");
    ar.putString(model_.name);
    ar.putU32(static_cast<std::uint32_t>(cfg_.partition));
    ar.putU64(samples_.size());
    ar.putU64(next_b_);
    ar.putU64(next_s_);
    ar.putU64(next_layer_);
    ar.putU64(ksplit_t_);
    ar.putU64(makespan_);
    ar.putCounts(stage_free_);
    ar.putCounts(ready_);
    ar.putCounts(layers_done_);
    // Quarantine state: the resumed runner rebuilds the survivor
    // partition deterministically from the benched set.
    ar.putU64(migrations_);
    ar.putU64(resume_cycle_);
    ar.putCounts(std::vector<count_t>(quarantined_.begin(),
                                      quarantined_.end()));
    for (const SampleState &st : samples_) {
        saveOptTensor(ar, st.input);
        saveOptTensor(ar, st.cur);
        ar.putU64(st.saved.size());
        for (const auto &[idx, t] : st.saved) {
            ar.putI64(idx);
            saveTensor(ar, t);
        }
    }
    ar.putU64(outputs_.size());
    for (const Tensor &t : outputs_)
        saveOptTensor(ar, t);
    for (const auto &records : core_records_) {
        ar.putU64(records.size());
        for (const LayerRunRecord &r : records) {
            ar.putString(r.name);
            ar.putU32(static_cast<std::uint32_t>(r.op));
            ar.putBool(r.offloaded);
            saveSimulationResult(ar, r.sim);
        }
    }
    ar.endSection();

    for (index_t c = 0; c < coreCount(); ++c) {
        ar.beginSection("core" + std::to_string(c));
        // A quarantined core's engine aborted mid-operation: its state
        // is not at a serializable boundary, and it never runs again —
        // the section records only the liveness flag.
        const bool live = !isQuarantined(c);
        ar.putBool(live);
        if (live)
            cores_[static_cast<std::size_t>(c)]->saveCheckpointTo(
                ar, kCheckpointKindEngine);
        ar.endSection();
    }

    ar.beginSection("arbiter");
    arbiter_.saveState(ar);
    ar.endSection();

    ar.writeFile(cfg_.checkpoint_file);
}

std::vector<Tensor>
MulticoreRunner::resumeBatch(const std::string &path)
{
    ArchiveReader ar(path);
    ar.enterSection("meta");
    const std::uint32_t kind = ar.getU32();
    if (kind != kCheckpointKindMulticoreRun)
        ar.fail("the snapshot is not a multi-core run checkpoint");
    const std::string cfg_text = ar.getString();
    ar.leaveSection();
    const HardwareConfig snap_cfg =
        HardwareConfig::parse(cfg_text, "<checkpoint>");
    if (snap_cfg.structuralText() != cfg_.structuralText())
        ar.fail("the snapshot belongs to a structurally different "
                "multi-core composition");

    ar.enterSection("multicore");
    const std::string model_name = ar.getString();
    if (model_name != model_.name)
        ar.fail("the snapshot belongs to model '" + model_name +
                "', this runner wraps '" + model_.name + "'");
    const auto strategy =
        static_cast<PartitionStrategy>(ar.getU32());
    if (strategy != cfg_.partition)
        ar.fail("the snapshot was written under a different partition "
                "strategy");
    const std::uint64_t n_samples = ar.getU64();
    next_b_ = static_cast<std::size_t>(ar.getU64());
    next_s_ = static_cast<std::size_t>(ar.getU64());
    next_layer_ = static_cast<std::size_t>(ar.getU64());
    ksplit_t_ = ar.getU64();
    makespan_ = ar.getU64();
    stage_free_ = ar.getCounts();
    ready_ = ar.getCounts();
    layers_done_ = ar.getCounts();
    migrations_ = ar.getU64();
    resume_cycle_ = ar.getU64();
    const std::vector<count_t> benched = ar.getCounts();
    if (benched.size() != static_cast<std::size_t>(cfg_.cores))
        ar.fail("snapshot quarantine-flag count mismatch");
    for (std::size_t c = 0; c < benched.size(); ++c) {
        quarantined_[c] = benched[c] != 0;
        if (quarantined_[c]) {
            cores_[c]->accelerator().engine().quarantine();
            if (contended_)
                contended_[c] = false;
        }
    }
    // The survivor partition is a pure function of the benched set.
    part_ = assignPipelineStages(model_, healthyCores());
    if (stage_free_.size() != part_.stage_bounds.size())
        ar.fail("snapshot stage count does not match the partition");
    if (ready_.size() != n_samples || layers_done_.size() != n_samples)
        ar.fail("snapshot sample-cursor size mismatch");
    samples_.clear();
    samples_.reserve(static_cast<std::size_t>(n_samples));
    for (std::uint64_t i = 0; i < n_samples; ++i) {
        SampleState st;
        st.input = loadOptTensor(ar);
        st.cur = loadOptTensor(ar);
        const std::uint64_t n_saved = ar.getU64();
        for (std::uint64_t j = 0; j < n_saved; ++j) {
            const int idx = static_cast<int>(ar.getI64());
            st.saved.emplace(idx, loadTensor(ar));
        }
        samples_.push_back(std::move(st));
    }
    const std::uint64_t n_outputs = ar.getU64();
    if (n_outputs != n_samples)
        ar.fail("snapshot output-slot count mismatch");
    outputs_.clear();
    outputs_.reserve(static_cast<std::size_t>(n_outputs));
    for (std::uint64_t i = 0; i < n_outputs; ++i)
        outputs_.push_back(loadOptTensor(ar));
    core_records_.assign(static_cast<std::size_t>(cfg_.cores), {});
    for (auto &records : core_records_) {
        const std::uint64_t n_records = ar.getU64();
        records.reserve(static_cast<std::size_t>(n_records));
        for (std::uint64_t i = 0; i < n_records; ++i) {
            LayerRunRecord r;
            r.name = ar.getString();
            r.op = static_cast<OpType>(ar.getU32());
            r.offloaded = ar.getBool();
            r.sim = loadSimulationResult(ar);
            records.push_back(std::move(r));
        }
    }
    ar.leaveSection();

    bool damaged = false;
    for (index_t c = 0; c < coreCount(); ++c) {
        ar.enterSection("core" + std::to_string(c));
        const std::size_t depth = ar.sectionDepth();
        try {
            if (ar.getBool())
                cores_[static_cast<std::size_t>(c)]->loadCheckpointFrom(
                    ar);
            ar.leaveSection();
        } catch (const CheckpointError &) {
            // A truncated or corrupt per-core engine section must not
            // abort the whole restore: skip it (the section framing
            // bounds the damage), replace the half-restored core with
            // a fresh instance, and let it restart clean at its next
            // layer boundary. The timeline composition only ever uses
            // per-operation counter deltas, so the reset cumulative
            // counters do not perturb the schedule.
            while (ar.sectionDepth() >= depth)
                ar.abandonSection();
            rebuildCore(c);
            ++restore_fallbacks_;
            damaged = true;
        }
    }

    ar.enterSection("arbiter");
    arbiter_.loadState(ar);
    ar.leaveSection();

    if (damaged) {
        // The snapshot is known-bad; drop it so nothing resumes from
        // it again (the next periodic snapshot rewrites the file).
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }

    last_checkpoint_path_ = path;
    cycle_t sum = 0;
    for (const auto &core : cores_)
        sum += core->totalCycles();
    last_ckpt_cycles_ = sum;

    if (cfg_.partition == PartitionStrategy::Pipeline)
        runPipeline();
    else
        runKSplit();
    finishRun();
    return outputs_;
}

std::vector<LayerRunRecord>
MulticoreRunner::allRecords() const
{
    std::vector<LayerRunRecord> all;
    for (const auto &records : core_records_)
        all.insert(all.end(), records.begin(), records.end());
    return all;
}

SimulationResult
MulticoreRunner::total() const
{
    SimulationResult t;
    t.layer_name = model_.name;
    t.accelerator = cfg_.name;
    bool first = true;
    for (const auto &records : core_records_)
        for (const LayerRunRecord &r : records) {
            if (!r.offloaded)
                continue;
            if (first) {
                t = r.sim;
                t.layer_name = model_.name;
                first = false;
            } else {
                t.merge(r.sim);
            }
        }
    if (t.checkpoint_path.empty())
        t.checkpoint_path = last_checkpoint_path_;
    return t;
}

JsonValue
MulticoreRunner::reportJson() const
{
    JsonValue root =
        OutputModule::modelReport(model_.name, cfg_, allRecords(), total());
    root.set("cores", static_cast<std::int64_t>(coreCount()));
    root.set("dram_channels", static_cast<std::int64_t>(cfg_.dram_channels));
    root.set("partition", partitionStrategyName(cfg_.partition));
    root.set("makespan_cycles", static_cast<std::uint64_t>(makespan_));
    root.set("migrations", static_cast<std::uint64_t>(migrations_));
    root.set("resume_cycle", static_cast<std::uint64_t>(resume_cycle_));
    root.set("restore_fallbacks",
             static_cast<std::uint64_t>(restore_fallbacks_));
    JsonValue degraded = JsonValue::makeArray();
    for (const index_t c : quarantinedCores())
        degraded.append(JsonValue::makeInt(static_cast<std::int64_t>(c)));
    root["degraded_cores"] = std::move(degraded);
    JsonValue per_core = JsonValue::makeArray();
    for (index_t c = 0; c < coreCount(); ++c) {
        JsonValue entry = JsonValue::makeObject();
        entry.set("core", static_cast<std::int64_t>(c));
        entry.set("cycles", static_cast<std::uint64_t>(
                                cores_[static_cast<std::size_t>(c)]
                                    ->totalCycles()));
        entry.set("quarantined", isQuarantined(c));
        entry.set("dram_channel",
                  static_cast<std::int64_t>(arbiter_.channelOf(c)));
        entry.set("dram_stall_cycles",
                  static_cast<std::uint64_t>(arbiter_.stallCycles(c)));
        entry.set("dram_grants",
                  static_cast<std::uint64_t>(arbiter_.grantCount(c)));
        entry.set("dram_bytes",
                  static_cast<std::uint64_t>(arbiter_.bytesRequested(c)));
        per_core.append(std::move(entry));
    }
    root["per_core"] = std::move(per_core);
    return root;
}

} // namespace stonne
