/**
 * @file
 * Multi-accelerator model runner: composes N Accelerator instances
 * behind a shared DRAM and schedules a DNN inference across them.
 *
 * Each core is a complete cycle-level Stonne instance; operations run
 * on their core exactly as in the single-accelerator path (bit-exact —
 * the 1-core composition reproduces ModelRunner's cycles, counters,
 * outputs and trace). What multi-core adds is a global timeline
 * composed over the per-core ones:
 *
 *  - PIPELINE partition: contiguous MAC-balanced layer stages, one per
 *    core; sample b enters stage s when both the stage's core and the
 *    sample's previous-stage activations are ready, so batches overlap
 *    across cores like a hardware pipeline. Activations crossing a
 *    stage boundary (and skip-link tensors read from another stage)
 *    pay an explicit shared-DRAM transfer.
 *  - KSPLIT partition: every shardable layer's output channels (Conv K
 *    axis, Linear output features) split across all cores, which run
 *    their shards concurrently from the same input; the layer finishes
 *    when the slowest shard does. Requires the dense controller.
 *
 *  Off-chip traffic of concurrent operations contends through the
 *  SharedDramArbiter; its per-core stall counters quantify the
 *  interference. While any sibling core is busy past an operation's
 *  start cycle, the operation's core runs with the event engine's
 *  skip-inhibit gate closed, so idle stretches are only skipped when
 *  every core is in steady state (the gate is timing-neutral).
 *
 * Fault tolerance (core quarantine + work migration): when a core hits
 * a terminal fault mid-composition — a watchdog DeadlockError (e.g.
 * from an injected stuck unit) or a per-core cycle-budget blowout —
 * and at least one healthy sibling remains, the runner quarantines the
 * sick core instead of aborting the job: its event engine drops out of
 * the all-cores-busy check, its outstanding shared-DRAM ledger entries
 * are retired, the MAC-balanced partitioner re-runs over the healthy
 * survivors, and execution resumes from the last completed layer
 * boundary (the in-flight activation is re-fetched through the shared
 * DRAM by its new owner). Because layers are only ever committed at
 * their boundaries, the final outputs are bit-identical to a healthy
 * run whenever the injected faults are timing-only — the job completes
 * at degraded throughput rather than failing. With `checkpoint = ON` a
 * snapshot is written at the quarantine point, so a crash mid-
 * migration resumes with the quarantine state intact.
 */

#ifndef STONNE_MULTICORE_MULTICORE_RUNNER_HPP
#define STONNE_MULTICORE_MULTICORE_RUNNER_HPP

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json_writer.hpp"
#include "dse/tuner.hpp"
#include "engine/stonne_api.hpp"
#include "frontend/layer_exec.hpp"
#include "multicore/partition.hpp"
#include "multicore/shared_dram.hpp"

namespace stonne {

/** Runs a DnnModel across N accelerator cores behind a shared DRAM. */
class MulticoreRunner
{
  public:
    /**
     * Notification of one quarantine event: (sick core, fault cause,
     * cumulative migrations, global resume cycle). Called from inside
     * the run, before execution resumes on the survivors.
     */
    using QuarantineObserver = std::function<void(
        index_t, const std::string &, count_t, cycle_t)>;

    /**
     * @param model the network (must outlive the runner)
     * @param cfg hardware configuration; `cores`, `dram_channels` and
     *        `partition` select the composition (cores = 1 reproduces
     *        the single-accelerator path bit-identically)
     */
    MulticoreRunner(const DnnModel &model, const HardwareConfig &cfg);

    /** Simulated inference of one sample. */
    Tensor run(const Tensor &input);

    /**
     * Simulated inference of a batch of samples. Under PIPELINE the
     * samples stream through the stages concurrently; under KSPLIT
     * they run back to back with every layer sharded across cores.
     */
    std::vector<Tensor> runBatch(std::vector<Tensor> inputs);

    /**
     * Resume a batch from a MulticoreRunner snapshot (one archive
     * section per core plus the arbiter ledger and the schedule
     * cursor); completes bit-identically to the uninterrupted run.
     * A truncated or corrupt per-core engine section does not abort
     * the restore: the damaged core restarts clean at the next layer
     * boundary (functional outputs stay exact; only its cumulative
     * cycle counter resets) and the snapshot file is deleted.
     */
    std::vector<Tensor> resumeBatch(const std::string &path);

    /** resumeBatch() for single-sample runs. */
    Tensor resume(const std::string &path);

    /** Native CPU inference (the functional golden path). */
    Tensor runNative(const Tensor &input) const;

    index_t coreCount() const
    {
        return static_cast<index_t>(cores_.size());
    }
    Stonne &core(index_t c) { return *cores_[static_cast<std::size_t>(c)]; }
    const Stonne &core(index_t c) const
    {
        return *cores_[static_cast<std::size_t>(c)];
    }

    const SharedDramArbiter &arbiter() const { return arbiter_; }
    const HardwareConfig &config() const { return cfg_; }
    const PipelinePartition &partition() const { return part_; }

    /** Global makespan of the last runBatch (composed timeline). */
    cycle_t makespanCycles() const { return makespan_; }

    /** Per-core operation records of the last runBatch. */
    const std::vector<LayerRunRecord> &coreRecords(index_t c) const
    {
        return core_records_[static_cast<std::size_t>(c)];
    }

    /** All cores' records, core-major (core 0 first). */
    std::vector<LayerRunRecord> allRecords() const;

    /** Aggregated simulation result across all cores' operations. */
    SimulationResult total() const;

    /**
     * JSON report of the composition: the aggregate summary plus one
     * entry per core with its cycles and shared-DRAM stall/grant/byte
     * counters, the global makespan, and the quarantine state
     * (degraded_cores / migrations / resume_cycle).
     */
    JsonValue reportJson() const;

    /** Path of the last snapshot written ("" if none yet). */
    const std::string &lastCheckpointPath() const
    {
        return last_checkpoint_path_;
    }

    void setSnapeaEarlyExit(bool enabled) { snapea_early_exit_ = enabled; }
    void setOffloadPooling(bool enabled) { offload_pooling_ = enabled; }

    // --- fault tolerance ---------------------------------------------

    /**
     * Whether a terminal per-core fault quarantines the core and
     * migrates its work (the default) or propagates as on a single
     * accelerator. The service envelope disables this on its final
     * degraded attempt so a systematically sick composition still
     * surfaces its root cause.
     */
    void setFaultTolerant(bool enabled) { fault_tolerant_ = enabled; }
    bool faultTolerant() const { return fault_tolerant_; }

    void setQuarantineObserver(QuarantineObserver obs)
    {
        observer_ = std::move(obs);
    }

    /** Arm/disarm a host wall-clock deadline on every core's watchdog
     *  (the whole-job budget of the service envelope). */
    void setWallDeadline(
        std::optional<std::chrono::steady_clock::time_point> deadline);

    bool isQuarantined(index_t c) const
    {
        return quarantined_[static_cast<std::size_t>(c)] != 0;
    }

    /** Quarantined core ids, ascending ("degraded cores"). */
    std::vector<index_t> quarantinedCores() const;

    /** Healthy core ids, ascending (the cores that finish the job). */
    std::vector<index_t> healthyCores() const;

    /** Work-migration events performed (one per quarantined core). */
    count_t migrations() const { return migrations_; }

    /** Global cycle the last migration resumed at (0 = none). */
    cycle_t resumeCycle() const { return resume_cycle_; }

    /** Per-core engine sections dropped during resumeBatch() because
     *  they were truncated or corrupt (clean-start fallbacks). */
    index_t restoreFallbacks() const { return restore_fallbacks_; }

  private:
    /** Per-sample forward-pass state (pipeline keeps one per sample
     *  in flight; ksplit one at a time). */
    struct SampleState {
        Tensor input;
        Tensor cur;
        std::map<int, Tensor> saved;
    };

    /** Internal signal: a core died mid-layer and can be quarantined.
     *  Thrown by the stage/layer executors, caught by the run loops. */
    struct CoreFault {
        index_t core = 0;
        std::size_t layer = 0;
        std::string cause;
    };

    /** The per-core single-accelerator configuration (fault routing
     *  honours `fault_core`). Deterministic in (cfg_, c). */
    HardwareConfig makeCoreConfig(index_t c) const;

    /** Replace core c with a fresh instance (restore fallback),
     *  re-wiring auto-checkpoint, skip-inhibit, quarantine state and
     *  the wall deadline. */
    void rebuildCore(index_t c);

    /** Whether a fault on one more core can still be absorbed. */
    bool canQuarantine() const;

    void resetRunState(std::vector<Tensor> inputs);
    void runPipeline();
    void runPipelineStage(std::size_t b, std::size_t s);
    void runKSplit();
    void runKSplitLayer(std::size_t b, std::size_t i);
    void finishRun();

    /** Quarantine bookkeeping shared by both partitions: bench the
     *  core, retire its DRAM ledger, repartition the survivors. */
    void applyQuarantine(const CoreFault &f);
    void quarantinePipeline(const CoreFault &f);
    void quarantineKSplit(const CoreFault &f);
    /** Snapshot at the quarantine point (checkpoint = ON only). */
    void quarantineSnapshot();

    /** Whether any stage other than `self` is busy past `at`. */
    bool siblingBusyPast(std::size_t self, cycle_t at) const;

    count_t dramBytes(index_t core) const;
    /** Core-internal nominal cycles of `bytes` of its own traffic. */
    cycle_t internalNominal(index_t core, count_t bytes) const;

    const Tensor &resolveRef(const SampleState &st, int idx) const;

    void maybeCheckpoint();
    void writeSnapshot();

    const DnnModel &model_;
    HardwareConfig cfg_;
    mutable std::vector<std::unique_ptr<Stonne>> cores_;
    /** Mapping auto-tuner, present only with `autotune = ON`; shared by
     *  all cores (keyed on the multi-core structural text). */
    mutable std::unique_ptr<dse::AutoTuner> tuner_;
    SharedDramArbiter arbiter_;
    PipelinePartition part_;
    /** Skip-inhibit flags the cores' event engines watch (stable
     *  storage; only wired for cores > 1). */
    std::unique_ptr<bool[]> contended_;

    bool snapea_early_exit_ = true;
    bool offload_pooling_ = true;

    // --- fault-tolerance state (sticky across runs: a benched core
    // --- stays benched for the runner's lifetime) --------------------
    std::vector<char> quarantined_;
    bool fault_tolerant_ = true;
    count_t migrations_ = 0;
    cycle_t resume_cycle_ = 0;
    index_t restore_fallbacks_ = 0;
    QuarantineObserver observer_;
    std::optional<std::chrono::steady_clock::time_point> wall_deadline_;

    // --- last-run state (also the checkpoint cursor) -----------------
    std::vector<SampleState> samples_;
    std::vector<Tensor> outputs_;
    std::vector<std::vector<LayerRunRecord>> core_records_;
    std::size_t next_b_ = 0;
    std::size_t next_s_ = 0;     //!< pipeline stage cursor
    std::size_t next_layer_ = 0; //!< ksplit layer cursor
    /** Layers committed per sample; a migrated sample re-enters its
     *  new stage at max(stage first, layers_done_). */
    std::vector<count_t> layers_done_;
    std::vector<cycle_t> stage_free_;
    std::vector<cycle_t> ready_;
    cycle_t ksplit_t_ = 0;
    cycle_t makespan_ = 0;

    cycle_t last_ckpt_cycles_ = 0;
    std::string last_checkpoint_path_;
};

} // namespace stonne

#endif // STONNE_MULTICORE_MULTICORE_RUNNER_HPP
