/**
 * @file
 * Versioned, CRC-guarded binary archive for simulation checkpoints.
 *
 * A checkpoint file is a single framed payload:
 *
 *   magic "STNECKPT" (8 bytes)
 *   u32 format version
 *   u64 payload size in bytes
 *   payload
 *   u32 CRC-32 of the payload
 *
 * The payload is a flat sequence of little-endian primitives grouped
 * into named, length-prefixed *sections* (one per checkpointable unit),
 * so a reader can verify it is consuming exactly the state the writer
 * produced: a section-name mismatch, a section over/under-read, a
 * truncated file and a corrupted payload all fail with a CheckpointError
 * naming the file, offset and section instead of silently misparsing.
 *
 * Writers accumulate the payload in memory and publish it atomically:
 * writeFile() writes `<path>.tmp` and renames it over `path`, so a crash
 * mid-checkpoint never corrupts the last good snapshot.
 */

#ifndef STONNE_CHECKPOINT_ARCHIVE_HPP
#define STONNE_CHECKPOINT_ARCHIVE_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace stonne {

/** Thrown on any checkpoint save/load failure (I/O, format, mismatch). */
class CheckpointError : public std::runtime_error
{
  public:
    explicit CheckpointError(const std::string &msg)
        : std::runtime_error("checkpoint: " + msg)
    {
    }
};

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** Serializes typed primitives into a framed checkpoint payload. */
class ArchiveWriter
{
  public:
    /** Archive format version emitted by this writer. Version 2 added
     *  the accelerator's "engine" section (event-engine wakeup
     *  bookkeeping); version 3 added the multi-core run's quarantine
     *  cursor (layers_done / migrations / benched set) and the per-core
     *  section liveness flag. Older archives are rejected with a
     *  version diagnostic rather than misparsed. */
    static constexpr std::uint32_t kVersion = 3;

    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v);
    void putBool(bool v) { putU8(v ? 1 : 0); }
    void putDouble(double v);
    void putFloat(float v);

    /** Length-prefixed byte string (may contain embedded NULs). */
    void putString(const std::string &s);

    void putCounts(const std::vector<count_t> &v);
    void putIndices(const std::vector<index_t> &v);
    void putFloats(const std::vector<float> &v);
    void putFloats(const float *data, std::size_t n);

    /** Open a named, length-prefixed section. Sections may nest. */
    void beginSection(const std::string &name);

    /** Close the innermost open section, patching its length. */
    void endSection();

    /** Payload bytes accumulated so far. */
    const std::vector<std::uint8_t> &payload() const { return buf_; }

    /**
     * Frame the payload (magic, version, size, CRC) and publish it
     * atomically: the bytes go to `<path>.tmp`, which is renamed over
     * `path` only after a successful write. Throws CheckpointError on
     * I/O failure or an unclosed section.
     */
    void writeFile(const std::string &path) const;

  private:
    std::vector<std::uint8_t> buf_;
    std::vector<std::size_t> open_sections_; //!< length-field offsets
};

/** Validates and deserializes a checkpoint payload. */
class ArchiveReader
{
  public:
    /**
     * Load `path`, verifying magic, version, payload size and CRC.
     * Throws CheckpointError naming the file and the defect (missing,
     * truncated, bad magic, version mismatch, CRC mismatch).
     */
    explicit ArchiveReader(const std::string &path);

    /** Wrap an in-memory payload (tests; no framing checks). */
    ArchiveReader(std::vector<std::uint8_t> payload, std::string origin);

    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int64_t getI64();
    bool getBool() { return getU8() != 0; }
    double getDouble();
    float getFloat();
    std::string getString();
    std::vector<count_t> getCounts();
    std::vector<index_t> getIndices();
    std::vector<float> getFloats();

    /**
     * Enter the next section, which must be named `name`; a different
     * name means writer and reader disagree about the state layout.
     */
    void enterSection(const std::string &name);

    /**
     * Leave the innermost section, verifying every byte of it was
     * consumed (an under/over-read means a serialization bug, not
     * just garbage data — fail loudly).
     */
    void leaveSection();

    /**
     * Abandon the innermost section after a failed restore: skip the
     * read cursor to the section's end and pop it without the byte-
     * consumption check, so the caller can keep reading the sections
     * that follow. The section framing (name + length prefix) makes
     * this safe even when the abandoned payload is garbage.
     */
    void abandonSection();

    /** Number of sections currently open (see abandonSection: a
     *  failed nested restore leaves inner sections open; the caller
     *  unwinds to its own recorded depth). */
    std::size_t sectionDepth() const { return open_sections_.size(); }

    /** Whether the whole payload has been consumed. */
    bool atEnd() const { return pos_ >= buf_.size(); }

    /** Current read offset into the payload (error context). */
    std::size_t offset() const { return pos_; }

    /** The file path (or origin label) this archive came from. */
    const std::string &origin() const { return origin_; }

    /** Throw a CheckpointError carrying file/offset/section context. */
    [[noreturn]] void fail(const std::string &msg) const;

  private:
    void need(std::size_t n, const char *what);

    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::string origin_;
    //!< (name, end offset) of each open section, innermost last.
    std::vector<std::pair<std::string, std::size_t>> open_sections_;
};

/**
 * Per-element serialization used by Fifo<T>. The primary template
 * covers arithmetic payloads; structured payloads (e.g. DataPackage)
 * provide their own specialization next to the type's definition.
 */
template <typename T>
struct FifoElementIo {
    static_assert(std::is_arithmetic_v<T>,
                  "specialize FifoElementIo<T> for this payload type");

    static void
    save(ArchiveWriter &ar, const T &v)
    {
        if constexpr (std::is_same_v<T, float>)
            ar.putFloat(v);
        else if constexpr (std::is_floating_point_v<T>)
            ar.putDouble(static_cast<double>(v));
        else if constexpr (std::is_signed_v<T>)
            ar.putI64(static_cast<std::int64_t>(v));
        else
            ar.putU64(static_cast<std::uint64_t>(v));
    }

    static T
    load(ArchiveReader &ar)
    {
        if constexpr (std::is_same_v<T, float>)
            return ar.getFloat();
        else if constexpr (std::is_floating_point_v<T>)
            return static_cast<T>(ar.getDouble());
        else if constexpr (std::is_signed_v<T>)
            return static_cast<T>(ar.getI64());
        else
            return static_cast<T>(ar.getU64());
    }
};

} // namespace stonne

#endif // STONNE_CHECKPOINT_ARCHIVE_HPP
