#include "checkpoint/checkpoint.hpp"

#include <algorithm>
#include <utility>

#include "engine/stonne_api.hpp"

namespace stonne {

void
saveTensor(ArchiveWriter &ar, const Tensor &t)
{
    ar.putIndices(t.shape());
    ar.putFloats(t.data(), static_cast<std::size_t>(t.size()));
}

Tensor
loadTensor(ArchiveReader &ar)
{
    const std::vector<index_t> shape = ar.getIndices();
    const std::vector<float> data = ar.getFloats();
    Tensor t(shape);
    if (t.size() != static_cast<index_t>(data.size()))
        ar.fail("tensor payload holds " + std::to_string(data.size()) +
                " elements, its shape wants " + std::to_string(t.size()));
    std::copy(data.begin(), data.end(), t.data());
    return t;
}

void
saveSimulationResult(ArchiveWriter &ar, const SimulationResult &r)
{
    ar.putString(r.layer_name);
    ar.putString(r.accelerator);
    ar.putU64(r.cycles);
    ar.putDouble(r.time_ms);
    ar.putDouble(r.wall_seconds);
    ar.putDouble(r.sim_cycles_per_second);
    ar.putU64(r.macs);
    ar.putU64(r.skipped_macs);
    ar.putU64(r.mem_accesses);
    ar.putDouble(r.ms_utilization);
    ar.putDouble(r.energy.gb_uj);
    ar.putDouble(r.energy.dn_uj);
    ar.putDouble(r.energy.mn_uj);
    ar.putDouble(r.energy.rn_uj);
    ar.putDouble(r.energy.dram_uj);
    ar.putDouble(r.energy.static_uj);
    ar.putDouble(r.area.gb_um2);
    ar.putDouble(r.area.dn_um2);
    ar.putDouble(r.area.mn_um2);
    ar.putDouble(r.area.rn_um2);
    ar.putString(r.trace_path);
    ar.putString(r.checkpoint_path);
    ar.putU64(r.restored_from_cycle);
    ar.putBool(r.dse.enabled);
    ar.putU64(r.dse.space_size);
    ar.putU64(r.dse.evaluated);
    ar.putU64(r.dse.cache_hits);
    ar.putU64(r.dse.simulations_run);
    ar.putDouble(r.dse.rank_correlation);
    ar.putString(r.dse.chosen_tile);
    ar.putU64(r.dse.chosen_cycles);
    ar.putU64(r.dse.greedy_cycles);
    ar.putI64(r.dse.cycles_saved_vs_greedy);
}

SimulationResult
loadSimulationResult(ArchiveReader &ar)
{
    SimulationResult r;
    r.layer_name = ar.getString();
    r.accelerator = ar.getString();
    r.cycles = ar.getU64();
    r.time_ms = ar.getDouble();
    r.wall_seconds = ar.getDouble();
    r.sim_cycles_per_second = ar.getDouble();
    r.macs = ar.getU64();
    r.skipped_macs = ar.getU64();
    r.mem_accesses = ar.getU64();
    r.ms_utilization = ar.getDouble();
    r.energy.gb_uj = ar.getDouble();
    r.energy.dn_uj = ar.getDouble();
    r.energy.mn_uj = ar.getDouble();
    r.energy.rn_uj = ar.getDouble();
    r.energy.dram_uj = ar.getDouble();
    r.energy.static_uj = ar.getDouble();
    r.area.gb_um2 = ar.getDouble();
    r.area.dn_um2 = ar.getDouble();
    r.area.mn_um2 = ar.getDouble();
    r.area.rn_um2 = ar.getDouble();
    r.trace_path = ar.getString();
    r.checkpoint_path = ar.getString();
    r.restored_from_cycle = ar.getU64();
    r.dse.enabled = ar.getBool();
    r.dse.space_size = ar.getU64();
    r.dse.evaluated = ar.getU64();
    r.dse.cache_hits = ar.getU64();
    r.dse.simulations_run = ar.getU64();
    r.dse.rank_correlation = ar.getDouble();
    r.dse.chosen_tile = ar.getString();
    r.dse.chosen_cycles = ar.getU64();
    r.dse.greedy_cycles = ar.getU64();
    r.dse.cycles_saved_vs_greedy = ar.getI64();
    return r;
}

namespace {

/** Open `path` and read the "meta" section: (kind, config text). */
std::pair<std::uint32_t, std::string>
readMeta(const std::string &path)
{
    ArchiveReader r(path);
    r.enterSection("meta");
    const std::uint32_t kind = r.getU32();
    std::string cfg_text = r.getString();
    r.leaveSection();
    if (kind != kCheckpointKindEngine && kind != kCheckpointKindModelRun &&
        kind != kCheckpointKindServiceJob)
        r.fail("unknown checkpoint kind " + std::to_string(kind));
    return {kind, std::move(cfg_text)};
}

} // namespace

std::string
checkpointConfigText(const std::string &path)
{
    return readMeta(path).second;
}

bool
checkpointHasRunnerSection(const std::string &path)
{
    return readMeta(path).first == kCheckpointKindModelRun;
}

} // namespace stonne
