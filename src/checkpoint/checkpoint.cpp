#include "checkpoint/checkpoint.hpp"

#include <algorithm>
#include <utility>

namespace stonne {

void
saveTensor(ArchiveWriter &ar, const Tensor &t)
{
    ar.putIndices(t.shape());
    ar.putFloats(t.data(), static_cast<std::size_t>(t.size()));
}

Tensor
loadTensor(ArchiveReader &ar)
{
    const std::vector<index_t> shape = ar.getIndices();
    const std::vector<float> data = ar.getFloats();
    Tensor t(shape);
    if (t.size() != static_cast<index_t>(data.size()))
        ar.fail("tensor payload holds " + std::to_string(data.size()) +
                " elements, its shape wants " + std::to_string(t.size()));
    std::copy(data.begin(), data.end(), t.data());
    return t;
}

namespace {

/** Open `path` and read the "meta" section: (kind, config text). */
std::pair<std::uint32_t, std::string>
readMeta(const std::string &path)
{
    ArchiveReader r(path);
    r.enterSection("meta");
    const std::uint32_t kind = r.getU32();
    std::string cfg_text = r.getString();
    r.leaveSection();
    if (kind != kCheckpointKindEngine && kind != kCheckpointKindModelRun)
        r.fail("unknown checkpoint kind " + std::to_string(kind));
    return {kind, std::move(cfg_text)};
}

} // namespace

std::string
checkpointConfigText(const std::string &path)
{
    return readMeta(path).second;
}

bool
checkpointHasRunnerSection(const std::string &path)
{
    return readMeta(path).first == kCheckpointKindModelRun;
}

} // namespace stonne
