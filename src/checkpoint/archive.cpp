#include "checkpoint/archive.hpp"

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace stonne {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'N', 'E', 'C', 'K', 'P', 'T'};

const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    const auto &table = crcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

// --- ArchiveWriter ------------------------------------------------------

void
ArchiveWriter::putU8(std::uint8_t v)
{
    buf_.push_back(v);
}

void
ArchiveWriter::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ArchiveWriter::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ArchiveWriter::putI64(std::int64_t v)
{
    putU64(static_cast<std::uint64_t>(v));
}

void
ArchiveWriter::putDouble(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
ArchiveWriter::putFloat(float v)
{
    std::uint32_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "float must be 32-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    putU32(bits);
}

void
ArchiveWriter::putString(const std::string &s)
{
    putU64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
ArchiveWriter::putCounts(const std::vector<count_t> &v)
{
    putU64(v.size());
    for (count_t x : v)
        putU64(x);
}

void
ArchiveWriter::putIndices(const std::vector<index_t> &v)
{
    putU64(v.size());
    for (index_t x : v)
        putI64(x);
}

void
ArchiveWriter::putFloats(const float *data, std::size_t n)
{
    putU64(n);
    for (std::size_t i = 0; i < n; ++i)
        putFloat(data[i]);
}

void
ArchiveWriter::putFloats(const std::vector<float> &v)
{
    putFloats(v.data(), v.size());
}

void
ArchiveWriter::beginSection(const std::string &name)
{
    putString(name);
    open_sections_.push_back(buf_.size());
    putU64(0); // length, patched by endSection()
}

void
ArchiveWriter::endSection()
{
    if (open_sections_.empty())
        throw CheckpointError("endSection() with no open section");
    const std::size_t at = open_sections_.back();
    open_sections_.pop_back();
    const std::uint64_t len =
        static_cast<std::uint64_t>(buf_.size() - (at + 8));
    for (int i = 0; i < 8; ++i)
        buf_[at + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(len >> (8 * i));
}

void
ArchiveWriter::writeFile(const std::string &path) const
{
    if (!open_sections_.empty())
        throw CheckpointError("writeFile('" + path +
                              "') with an unclosed section");

    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw CheckpointError("cannot open '" + tmp +
                                  "' for writing");
        os.write(kMagic, sizeof(kMagic));
        ArchiveWriter frame;
        frame.putU32(kVersion);
        frame.putU64(buf_.size());
        os.write(reinterpret_cast<const char *>(frame.buf_.data()),
                 static_cast<std::streamsize>(frame.buf_.size()));
        if (!buf_.empty())
            os.write(reinterpret_cast<const char *>(buf_.data()),
                     static_cast<std::streamsize>(buf_.size()));
        ArchiveWriter tail;
        tail.putU32(crc32(buf_.data(), buf_.size()));
        os.write(reinterpret_cast<const char *>(tail.buf_.data()),
                 static_cast<std::streamsize>(tail.buf_.size()));
        os.flush();
        if (!os)
            throw CheckpointError("short write to '" + tmp + "'");
    }

    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        throw CheckpointError("cannot rename '" + tmp + "' over '" +
                              path + "': " + ec.message());
}

// --- ArchiveReader ------------------------------------------------------

ArchiveReader::ArchiveReader(const std::string &path) : origin_(path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw CheckpointError("cannot open '" + path + "' for reading");
    std::vector<std::uint8_t> raw(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());

    const std::size_t header = sizeof(kMagic) + 4 + 8;
    if (raw.size() < header + 4)
        throw CheckpointError("'" + path + "' is truncated: " +
                              std::to_string(raw.size()) +
                              " bytes is smaller than the minimal frame");
    if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0)
        throw CheckpointError("'" + path +
                              "' is not a STONNE checkpoint (bad magic)");

    auto rd_u32 = [&raw](std::size_t at) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(raw[at + i]) << (8 * i);
        return v;
    };
    auto rd_u64 = [&raw](std::size_t at) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(raw[at + i]) << (8 * i);
        return v;
    };

    const std::uint32_t version = rd_u32(sizeof(kMagic));
    if (version != ArchiveWriter::kVersion)
        throw CheckpointError(
            "'" + path + "' has format version " +
            std::to_string(version) + ", this build reads version " +
            std::to_string(ArchiveWriter::kVersion));

    const std::uint64_t payload_size = rd_u64(sizeof(kMagic) + 4);
    if (raw.size() != header + payload_size + 4)
        throw CheckpointError(
            "'" + path + "' is truncated or padded: header promises " +
            std::to_string(payload_size) + " payload bytes, file holds " +
            std::to_string(raw.size() - header - 4));

    const std::uint32_t stored_crc =
        rd_u32(header + static_cast<std::size_t>(payload_size));
    const std::uint32_t actual_crc =
        crc32(raw.data() + header, static_cast<std::size_t>(payload_size));
    if (stored_crc != actual_crc)
        throw CheckpointError("'" + path + "' payload CRC mismatch: "
                              "the snapshot is corrupted");

    buf_.assign(raw.begin() + static_cast<std::ptrdiff_t>(header),
                raw.end() - 4);
}

ArchiveReader::ArchiveReader(std::vector<std::uint8_t> payload,
                             std::string origin)
    : buf_(std::move(payload)), origin_(std::move(origin))
{
}

void
ArchiveReader::fail(const std::string &msg) const
{
    std::string where = "'" + origin_ + "' at offset " +
                        std::to_string(pos_);
    if (!open_sections_.empty())
        where += " in section '" + open_sections_.back().first + "'";
    throw CheckpointError(where + ": " + msg);
}

void
ArchiveReader::need(std::size_t n, const char *what)
{
    if (pos_ + n > buf_.size())
        fail(std::string("payload ends mid-") + what + " (need " +
             std::to_string(n) + " bytes, " +
             std::to_string(buf_.size() - pos_) + " left)");
}

std::uint8_t
ArchiveReader::getU8()
{
    need(1, "u8");
    return buf_[pos_++];
}

std::uint32_t
ArchiveReader::getU32()
{
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
ArchiveReader::getU64()
{
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

std::int64_t
ArchiveReader::getI64()
{
    return static_cast<std::int64_t>(getU64());
}

double
ArchiveReader::getDouble()
{
    const std::uint64_t bits = getU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

float
ArchiveReader::getFloat()
{
    const std::uint32_t bits = getU32();
    float v = 0.0f;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ArchiveReader::getString()
{
    const std::uint64_t n = getU64();
    need(static_cast<std::size_t>(n), "string");
    std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return s;
}

std::vector<count_t>
ArchiveReader::getCounts()
{
    const std::uint64_t n = getU64();
    need(static_cast<std::size_t>(n) * 8, "count vector");
    std::vector<count_t> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = getU64();
    return v;
}

std::vector<index_t>
ArchiveReader::getIndices()
{
    const std::uint64_t n = getU64();
    need(static_cast<std::size_t>(n) * 8, "index vector");
    std::vector<index_t> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = getI64();
    return v;
}

std::vector<float>
ArchiveReader::getFloats()
{
    const std::uint64_t n = getU64();
    need(static_cast<std::size_t>(n) * 4, "float vector");
    std::vector<float> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = getFloat();
    return v;
}

void
ArchiveReader::enterSection(const std::string &name)
{
    const std::string found = getString();
    if (found != name)
        fail("expected section '" + name + "', found '" + found + "'");
    const std::uint64_t len = getU64();
    need(static_cast<std::size_t>(len), "section");
    open_sections_.emplace_back(name,
                                pos_ + static_cast<std::size_t>(len));
}

void
ArchiveReader::leaveSection()
{
    if (open_sections_.empty())
        fail("leaveSection() with no open section");
    const auto [name, end] = open_sections_.back();
    if (pos_ != end)
        fail("section '" + name + "' size mismatch: " +
             (pos_ < end ? std::to_string(end - pos_) + " bytes unread"
                         : "read past its end"));
    open_sections_.pop_back();
}

void
ArchiveReader::abandonSection()
{
    if (open_sections_.empty())
        fail("abandonSection() with no open section");
    pos_ = open_sections_.back().second;
    open_sections_.pop_back();
}

} // namespace stonne
