/**
 * @file
 * Interface implemented by every unit whose state survives a checkpoint.
 *
 * A Checkpointable serializes its *persistent* cross-operation state —
 * counters it owns, cursors, RNG streams, recorded events — into one
 * archive section and restores it bit-exactly. Configuration-derived
 * state (sizes, bandwidths, table pointers) is NOT serialized: a restore
 * target is always freshly constructed from the same HardwareConfig,
 * which Accelerator::restore() verifies before any section is read.
 */

#ifndef STONNE_CHECKPOINT_CHECKPOINTABLE_HPP
#define STONNE_CHECKPOINT_CHECKPOINTABLE_HPP

namespace stonne {

class ArchiveWriter;
class ArchiveReader;

/** Serializable simulation state (see file comment for the contract). */
class Checkpointable
{
  public:
    virtual ~Checkpointable() = default;

    /** Append this unit's persistent state to the archive. */
    virtual void saveState(ArchiveWriter &ar) const = 0;

    /**
     * Restore the state saved by saveState() from an equally
     * configured unit. Errors are reported via ArchiveReader::fail().
     */
    virtual void loadState(ArchiveReader &ar) = 0;
};

} // namespace stonne

#endif // STONNE_CHECKPOINT_CHECKPOINTABLE_HPP
