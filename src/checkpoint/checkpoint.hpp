/**
 * @file
 * Checkpoint-file helpers shared by the API, the model runner and the
 * CLI: tensor serialization and header peeking.
 *
 * File layout (inside the archive framing of archive.hpp):
 *
 *   section "meta"     — checkpoint kind + full HardwareConfig text,
 *                        readable without restoring anything
 *   section "stonne"   — API-level state (cumulative cycles)
 *   section "config"   — config text again (Accelerator self-check)
 *   section "stats"    — StatsRegistry counters
 *   section "watchdog" | "gb" | "dram" | "dn" | "mn" | "rn"
 *   section "controller" — memory-controller phase
 *   section "faults"   — presence flag + fault-injector RNG/stuck map
 *   section "trace"    — presence flag + tracer clock/window/events
 *   [section "runner"] — ModelRunner checkpoints only: layer cursor,
 *                        live tensors, per-layer records
 */

#ifndef STONNE_CHECKPOINT_CHECKPOINT_HPP
#define STONNE_CHECKPOINT_CHECKPOINT_HPP

#include <string>

#include "checkpoint/archive.hpp"
#include "tensor/tensor.hpp"

namespace stonne {

struct SimulationResult;

/** Checkpoint kinds stored in the "meta" section. */
constexpr std::uint32_t kCheckpointKindEngine = 1;     //!< Stonne only
constexpr std::uint32_t kCheckpointKindModelRun = 2;   //!< + "runner"
constexpr std::uint32_t kCheckpointKindServiceJob = 3; //!< + "service_job"
/** MulticoreRunner snapshot: "multicore" cursor + one section per core
 *  + the shared-DRAM arbiter ledger. */
constexpr std::uint32_t kCheckpointKindMulticoreRun = 4;

/** Serialize a tensor (shape + raw float payload). */
void saveTensor(ArchiveWriter &ar, const Tensor &t);

/** Deserialize a tensor written by saveTensor(). */
Tensor loadTensor(ArchiveReader &ar);

/**
 * Serialize one SimulationResult at full fidelity: a run restored from
 * a snapshot must report byte-identically to the uninterrupted one.
 * Shared by the ModelRunner's layer-boundary snapshots and the service
 * daemon's per-job snapshots.
 */
void saveSimulationResult(ArchiveWriter &ar, const SimulationResult &r);

/** Deserialize a saveSimulationResult() record. */
SimulationResult loadSimulationResult(ArchiveReader &ar);

/**
 * Read the HardwareConfig text embedded in a checkpoint file without
 * restoring anything — the CLI `resume` command uses it to construct
 * the instance the snapshot belongs to.
 */
std::string checkpointConfigText(const std::string &path);

/**
 * Whether the checkpoint carries a "runner" section (a full-model
 * ModelRunner snapshot) in addition to the engine state.
 */
bool checkpointHasRunnerSection(const std::string &path);

} // namespace stonne

#endif // STONNE_CHECKPOINT_CHECKPOINT_HPP
