/**
 * @file
 * Activity-counter registry used by every simulated hardware component.
 *
 * STONNE's output module reports two artifacts: a JSON summary and a
 * "counter file" with per-component activity counts (multiplications, adder
 * firings, link traversals, SRAM accesses, ...). The table-based energy
 * model consumes those counts. This registry is the in-memory form of the
 * counter file: a flat map of hierarchical counter names to counts, grouped
 * by architectural component so energy can be broken down into GB / DN /
 * MN / RN as in Figure 5b of the paper.
 */

#ifndef STONNE_COMMON_STATS_HPP
#define STONNE_COMMON_STATS_HPP

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "checkpoint/checkpointable.hpp"
#include "common/types.hpp"

namespace stonne {

/**
 * Architectural component groups used for energy breakdowns.
 * Matches the breakdown of Figure 5b: Global Buffer, Distribution
 * Network, Multiplier Network, Reduction Network (+ DRAM, not plotted).
 */
enum class StatGroup {
    GlobalBuffer,
    DistributionNetwork,
    MultiplierNetwork,
    ReductionNetwork,
    Dram,
    Other,
};

/** Name of a stat group as used in reports. */
const char *statGroupName(StatGroup g);

/**
 * What a counter measures, which decides how the tracer aggregates it:
 * activity counts (ops, hops, accesses) feed the `util.<GROUP>`
 * utilization gauges; occupancy integrals (queue-occupancy or busy
 * cycles summed over time) feed the `occ.<GROUP>` gauges instead, so a
 * large backlog integral cannot masquerade as compute utilization.
 */
enum class StatKind {
    Activity,
    Occupancy,
};

/** One named activity counter. */
struct StatCounter {
    std::string name;   //!< hierarchical name, e.g. "mn.mult_ops"
    StatGroup group;    //!< component group for energy breakdowns
    count_t value = 0;
    StatKind kind = StatKind::Activity;
};

/**
 * Registry of activity counters for one accelerator instance.
 *
 * Components obtain counters at construction time and bump them with
 * add(); lookups by name are only used by tests and the output module.
 */
class StatsRegistry : public Checkpointable
{
  public:
    /**
     * Get (creating if needed) the counter with the given name/group.
     * The returned reference stays valid for the registry's lifetime:
     * counters live in a deque so later registrations never move them.
     *
     * Components must call this once at construction and cache the
     * returned handle — never per cycle: the lookup hashes the name
     * string and belongs nowhere near a hot loop.
     */
    StatCounter &counter(const std::string &name, StatGroup group,
                         StatKind kind = StatKind::Activity);

    /** Value of a counter, 0 when it has never been registered. */
    count_t value(const std::string &name) const;

    /** Sum of all counters in a group. */
    count_t groupTotal(StatGroup g) const;

    /** All counters in registration order. */
    const std::deque<StatCounter> &counters() const { return counters_; }

    /** Snapshot of all counter values in registration order. */
    std::vector<count_t> snapshot() const;

    /**
     * Registry holding this registry's counters minus an earlier
     * snapshot — the activity of one operation. Counters registered
     * after the snapshot keep their full value.
     */
    StatsRegistry delta(const std::vector<count_t> &before) const;

    /** Reset every counter to zero (keeps registrations). */
    void reset();

    /** Zero-state: no counters registered at all. */
    void clear();

    /** Serialize every counter (name, group, kind, value) in order. */
    void saveState(ArchiveWriter &ar) const override;

    /**
     * Restore counter values. Archived counters are matched
     * positionally against already-registered ones (a name mismatch is
     * an error naming both sides); archived counters beyond the
     * registered set are registered in archive order, so the
     * registration order — which snapshot()/delta() and the tracer's
     * sample series depend on — is reproduced exactly.
     */
    void loadState(ArchiveReader &ar) override;

  private:
    std::deque<StatCounter> counters_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace stonne

#endif // STONNE_COMMON_STATS_HPP
