/**
 * @file
 * Hardware configuration of a simulated accelerator instance.
 *
 * This is the in-memory form of the `stonne_hw.cfg` file from the paper:
 * it selects one implementation for each of the three on-chip network
 * fabrics (DN / MN / RN), the memory controller, and sizes the memory
 * hierarchy. Presets reproduce the Table IV compositions (TPU-like,
 * MAERI-like, SIGMA-like) plus the SNAPEA extension of use case 2.
 */

#ifndef STONNE_COMMON_CONFIG_HPP
#define STONNE_COMMON_CONFIG_HPP

#include <string>

#include "common/types.hpp"
#include "faults/fault_config.hpp"

namespace stonne {

/** Distribution network implementations (Section IV-A.1). */
enum class DnType {
    Tree,         //!< MAERI-style binary distribution tree
    Benes,        //!< SIGMA-style non-blocking Benes network
    PointToPoint, //!< systolic-array injection links (TPU)
};

/** Multiplier network implementations (Section IV-A.2). */
enum class MnType {
    Linear,   //!< forwarding links between neighbours (MAERI, TPU)
    Disabled, //!< no forwarding links, pure GEMM (SIGMA, SpArch)
};

/** Reduction network implementations (Section IV-A.3). */
enum class RnType {
    Art,       //!< augmented reduction tree, 3:1 adders (MAERI)
    ArtAcc,    //!< ART with accumulation buffer at the collection point
    Fan,       //!< forwarding adder network, 2:1 adders (SIGMA)
    Linear,    //!< linear reduction (TPU, Eyeriss, ShiDianNao)
};

/** Memory controller implementations (Section IV-B). */
enum class ControllerType {
    Dense,  //!< mRNA-style fixed-tile orchestration
    Sparse, //!< CSR/bitmap GEMM with variable cluster sizes
    Snapea, //!< dense + sign-sorted weights + early negative cut-off
};

/** Loop-order dataflow implemented by the memory controllers. */
enum class Dataflow {
    OutputStationary,
    WeightStationary,
    InputStationary,
};

/** Sparse matrix encoding accepted by the sparse controller. */
enum class SparseFormat {
    Csr,
    Bitmap,
};

/**
 * Delivery/drain engine driving the per-cycle loops (src/engine).
 * Event mode skips steady-state spans where every unit's next-active
 * cycle is known in closed form; Tick mode keeps the original
 * tick-everything loops. Both are bit-identical — the knob exists so
 * parity can be tested against the reference path.
 */
enum class EngineType {
    Event, //!< wakeup-scheduled engine with closed-form idle skipping
    Tick,  //!< reference per-cycle loops (pre-event engine)
};

/**
 * Model-to-cores mapping strategy of a multi-core composition
 * (src/multicore). Structural: a cached single-core result can never
 * answer a multi-core request.
 */
enum class PartitionStrategy {
    Pipeline, //!< contiguous layer stages, one stage per core
    KSplit,   //!< K/N-split tensor parallelism, all cores per layer
};

const char *dnTypeName(DnType t);
const char *mnTypeName(MnType t);
const char *rnTypeName(RnType t);
const char *controllerTypeName(ControllerType t);
const char *dataflowName(Dataflow d);
const char *engineTypeName(EngineType t);
const char *partitionStrategyName(PartitionStrategy p);

/** Full description of one simulated accelerator instance. */
struct HardwareConfig {
    std::string name = "custom";

    DnType dn_type = DnType::Tree;
    MnType mn_type = MnType::Linear;
    RnType rn_type = RnType::ArtAcc;
    ControllerType controller_type = ControllerType::Dense;
    Dataflow dataflow = Dataflow::OutputStationary;
    SparseFormat sparse_format = SparseFormat::Csr;

    /** Number of multiplier switches (processing elements). */
    index_t ms_size = 256;

    /**
     * Elements per cycle the Global Buffer can feed into the DN
     * (read ports) and absorb from the RN (write ports).
     */
    index_t dn_bandwidth = 128;
    index_t rn_bandwidth = 128;

    /** Per-switch FIFO capacity, in elements. */
    index_t fifo_capacity = 8;

    /** Accumulation buffer entries for the ART+ACC collection point. */
    index_t accumulator_size = 256;

    /** Global Buffer capacity in KiB (paper use cases: 108 KB). */
    index_t gb_size_kib = 108;

    /** Off-chip DRAM bandwidth, GB/s aggregated over modules. */
    double dram_bandwidth_gbps = 512.0;

    /** DRAM access latency in cycles. */
    index_t dram_latency_cycles = 100;

    /** Clock frequency in GHz (timing reports only). */
    double clock_ghz = 1.0;

    /** Numeric format of DNN parameters in simulated memory. */
    DataType data_type = DataType::FP8;

    /**
     * Accelerator cores composed behind the shared DRAM
     * (src/multicore). 1 keeps the single-accelerator path; N > 1
     * instantiates N identical accelerators whose off-chip traffic
     * contends through the shared-DRAM arbiter. Structural.
     */
    index_t cores = 1;

    /**
     * Independent DRAM channels of the shared memory system. The
     * aggregate `dram_bandwidth_gbps` is split evenly across channels
     * and cores are striped over them (core % channels), so fewer
     * channels than cores means arbitrated contention. Structural.
     */
    index_t dram_channels = 1;

    /**
     * Mapping strategy of a multi-core run: `partition =
     * PIPELINE|KSPLIT`. Pipeline assigns contiguous layer stages to
     * cores (MAC-balanced) and streams activations between stages
     * through the shared DRAM; KSplit shards each offloaded layer's
     * output channels (Conv K axis / Linear output features) across
     * all cores. Structural.
     */
    PartitionStrategy partition = PartitionStrategy::Pipeline;

    /** Optional energy-table file (empty = per-datatype defaults). */
    std::string energy_table_path;

    /** Optional area-table file (empty = per-datatype defaults). */
    std::string area_table_path;

    /**
     * Progress-watchdog window: consecutive zero-progress cycles before
     * the engine aborts with a DeadlockError state snapshot.
     */
    index_t watchdog_cycles = 100000;

    /**
     * Fast-forward execution: skip steady-state streaming regions with
     * closed-form bulkAdvance() arithmetic instead of per-cycle
     * iteration. Bit-identical to the per-cycle path (same cycles,
     * counters, outputs); automatically disabled while a fault
     * injector is attached. `fast_forward = on|off`, default on.
     */
    bool fast_forward = true;

    /**
     * Delivery/drain engine selection: `engine = EVENT|TICK`, default
     * EVENT. The event engine advances watchdog, tracer samples and
     * occupancy counters in exact closed form across idle-skipped
     * spans, so both settings produce bit-identical cycles, counters,
     * outputs and traces; TICK keeps the reference per-cycle loops
     * in-tree for direct parity testing. Execution policy, normalized
     * away by structuralText().
     */
    EngineType engine_type = EngineType::Event;

    /**
     * Cycle-level tracing (src/trace): when on, every RunOperation
     * records controller phase spans, sampled per-unit activity
     * series and fault/watchdog instants, written to `trace_file` as
     * Chrome trace-event JSON (Perfetto / chrome://tracing).
     */
    bool trace = false;

    /** Output path of the trace JSON (required when trace = ON). */
    std::string trace_file = "stonne_trace.json";

    /** Cycles between counter samples in the trace time-series. */
    index_t trace_sample_cycles = 1000;

    /**
     * Periodic checkpointing (src/checkpoint): when on, the API writes
     * a versioned, CRC-guarded snapshot of the full persistent
     * simulation state to `checkpoint_file` at the first operation
     * boundary after every `checkpoint_interval_cycles` simulated
     * cycles. A restored run continues bit-identically to the
     * uninterrupted one, in both exact and fast-forward modes.
     */
    bool checkpoint = false;

    /** Output path of the snapshot (required when checkpoint = ON). */
    std::string checkpoint_file = "stonne.ckpt";

    /** Minimum simulated cycles between periodic snapshots. */
    index_t checkpoint_interval_cycles = 1000000;

    /** Fault-injection subsystem configuration (`fault_*` keys). */
    FaultConfig faults;

    /**
     * Design-space auto-tuning (src/dse): when on, the ModelRunner
     * tunes every dense-controller operation's tile before running it
     * — enumerate the legal tile space, rank it with the analytical
     * model, simulate the top `dse_top_k` candidates (results served
     * from `dse_cache_file` when already known) and run the layer with
     * the fastest tile instead of the greedy mapper's choice.
     */
    bool autotune = false;

    /** Candidates the tuner evaluates cycle-level per layer. */
    index_t dse_top_k = 8;

    /**
     * Content-addressed result-cache file the tuner persists simulated
     * outcomes to ("" keeps the cache in memory only).
     */
    std::string dse_cache_file = "stonne_dse.cache";

    /**
     * Hardware x mapping co-search (src/explore): marks a saved
     * config as an exploration setup, so toConfigText() round-trips
     * the search (the `explore` CLI command / service request sweeps
     * the structural axes in `explore_axes` crossed with the mapping
     * tile space, ranks the full space with the analytical
     * cycle/energy/area models, and cycle-simulates only the
     * predicted Pareto frontier — top `explore_top_k` per objective
     * plus the predicted non-dominated set). All three keys are
     * execution policy, normalized away by structuralText() — the
     * result cache keys each *variant's* own structural text, never
     * the search knobs.
     */
    bool explore = false;

    /**
     * Comma-separated structural axes of the co-search. Each axis is a
     * name (`ms_size`, `dn_bandwidth`, `rn_bandwidth`,
     * `accumulator_size`, `fabric`) with an optional power-of-two
     * range `name=lo:hi`; `fabric` toggles the dense tree fabric
     * against the SIGMA-style sparse one and takes no range.
     */
    std::string explore_axes =
        "ms_size,dn_bandwidth,rn_bandwidth,accumulator_size";

    /** Variants simulated cycle-level per objective (>= 1). */
    index_t explore_top_k = 4;

    /**
     * Simulation-service knobs (src/service). These configure the
     * daemon wrapped around the simulator, not the simulated hardware:
     * all of them are execution policy, normalized away by
     * structuralText().
     */

    /**
     * Bound of the service's admission queue: jobs waiting for a
     * worker beyond the ones already running. A submission arriving
     * with the queue full is rejected with a structured reason —
     * backpressure instead of unbounded growth.
     */
    index_t service_queue_depth = 64;

    /** Service worker threads (0 picks the hardware concurrency). */
    index_t service_workers = 0;

    /**
     * Per-operation simulated-cycle budget enforced by the progress
     * watchdog: a job whose operation observes more cycles than this
     * aborts with BudgetExceededError and is reported as `timeout`.
     * 0 leaves operations unbounded.
     */
    index_t job_budget_cycles = 0;

    /**
     * Per-job wall-clock budget in milliseconds, enforced by the
     * service's robustness envelope across all attempts of a job.
     * 0 leaves jobs unbounded.
     */
    index_t job_budget_wall_ms = 0;

    /**
     * Retries after a job's first failed attempt (DeadlockError or
     * CheckpointError): bounded exponential backoff between attempts,
     * and the final attempt runs degraded (fast_forward OFF, watchdog
     * budget x4) exactly like the recovering sweep runner. 0 disables
     * retrying.
     */
    index_t job_retries = 2;

    /** Validate the composition, throwing FatalError on conflicts. */
    void validate() const;

    /** TPU-like OS systolic array (Table IV column 1). */
    static HardwareConfig tpuLike(index_t pes = 256);

    /** MAERI-like flexible dense accelerator (Table IV column 2). */
    static HardwareConfig maeriLike(index_t ms = 256, index_t bw = 128);

    /** SIGMA-like flexible sparse accelerator (Table IV column 3). */
    static HardwareConfig sigmaLike(index_t ms = 256, index_t bw = 128);

    /** SNAPEA extension of the dense pipeline (use case 2). */
    static HardwareConfig snapeaLike(index_t ms = 64, index_t bw = 64);

    /**
     * ShiDianNao-like output-stationary array (8x8 MACs in the
     * original): the same systolic composition as the TPU at a
     * vision-sensor scale.
     */
    static HardwareConfig shiDianNaoLike(index_t pes = 64);

    /**
     * Flexible dense accelerator with the plain ART (no accumulation
     * buffer): psums from folded dot products round-trip through the
     * GB (the ART+DIST collection style of Section IV-A.3).
     */
    static HardwareConfig flexibleArtDist(index_t ms = 256,
                                          index_t bw = 128);

    /**
     * Parse a `stonne_hw.cfg`-style key = value configuration string.
     * Unknown and duplicate keys are rejected with a `origin:line`
     * diagnostic; @param origin names the source in error messages
     * (a file path, or "<string>" for in-memory text).
     */
    static HardwareConfig parse(const std::string &text,
                                const std::string &origin = "<string>");

    /** Load and parse a configuration file from disk. */
    static HardwareConfig parseFile(const std::string &path);

    /** Serialize back to key = value form. */
    std::string toConfigText() const;

    /**
     * Configuration text with the execution-policy knobs normalized
     * away: fast-forward mode, watchdog budget, trace/checkpoint
     * destinations and the dse tuning knobs may all legitimately
     * differ between two runs of the *same* simulated hardware
     * (fast-forward and exact execution are bit-identical; the
     * recovering sweep runner's degraded retries and the dse result
     * cache rely on exactly that), but everything architectural must
     * match exactly. Checkpoint restores compare snapshots with this,
     * and the dse cache keys simulation outcomes on it.
     */
    std::string structuralText() const;
};

} // namespace stonne

#endif // STONNE_COMMON_CONFIG_HPP
