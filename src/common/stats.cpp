#include "common/stats.hpp"

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"

namespace stonne {

const char *
statGroupName(StatGroup g)
{
    switch (g) {
      case StatGroup::GlobalBuffer:        return "GB";
      case StatGroup::DistributionNetwork: return "DN";
      case StatGroup::MultiplierNetwork:   return "MN";
      case StatGroup::ReductionNetwork:    return "RN";
      case StatGroup::Dram:                return "DRAM";
      case StatGroup::Other:               return "OTHER";
    }
    return "?";
}

StatCounter &
StatsRegistry::counter(const std::string &name, StatGroup group,
                       StatKind kind)
{
    auto it = index_.find(name);
    if (it != index_.end()) {
        StatCounter &c = counters_[it->second];
        panicIf(c.group != group,
                "stat counter ", name, " re-registered in another group");
        panicIf(c.kind != kind,
                "stat counter ", name, " re-registered with another kind");
        return c;
    }
    index_[name] = counters_.size();
    counters_.push_back(StatCounter{name, group, 0, kind});
    return counters_.back();
}

count_t
StatsRegistry::value(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? 0 : counters_[it->second].value;
}

count_t
StatsRegistry::groupTotal(StatGroup g) const
{
    count_t total = 0;
    for (const auto &c : counters_)
        if (c.group == g)
            total += c.value;
    return total;
}

std::vector<count_t>
StatsRegistry::snapshot() const
{
    std::vector<count_t> v;
    v.reserve(counters_.size());
    for (const auto &c : counters_)
        v.push_back(c.value);
    return v;
}

StatsRegistry
StatsRegistry::delta(const std::vector<count_t> &before) const
{
    StatsRegistry d;
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        const count_t prev = i < before.size() ? before[i] : 0;
        panicIf(counters_[i].value < prev,
                "stat counter ", counters_[i].name, " went backwards");
        d.counter(counters_[i].name, counters_[i].group,
                  counters_[i].kind).value = counters_[i].value - prev;
    }
    return d;
}

void
StatsRegistry::reset()
{
    for (auto &c : counters_)
        c.value = 0;
}

void
StatsRegistry::clear()
{
    counters_.clear();
    index_.clear();
}

void
StatsRegistry::saveState(ArchiveWriter &ar) const
{
    ar.putU64(counters_.size());
    for (const StatCounter &c : counters_) {
        ar.putString(c.name);
        ar.putU32(static_cast<std::uint32_t>(c.group));
        ar.putU32(static_cast<std::uint32_t>(c.kind));
        ar.putU64(c.value);
    }
}

void
StatsRegistry::loadState(ArchiveReader &ar)
{
    const std::uint64_t n = ar.getU64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::string name = ar.getString();
        const auto group = static_cast<StatGroup>(ar.getU32());
        const auto kind = static_cast<StatKind>(ar.getU32());
        const count_t value = ar.getU64();
        if (i < counters_.size()) {
            StatCounter &c = counters_[static_cast<std::size_t>(i)];
            if (c.name != name)
                ar.fail("counter #" + std::to_string(i) +
                        " is '" + name + "' in the snapshot but '" +
                        c.name + "' in this instance — the registration "
                        "orders diverged");
            if (c.group != group || c.kind != kind)
                ar.fail("counter '" + name +
                        "' changed group/kind since the snapshot");
            c.value = value;
        } else {
            counter(name, group, kind).value = value;
        }
    }
}

} // namespace stonne
