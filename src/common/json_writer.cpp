#include "common/json_writer.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hpp"

namespace stonne {

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeInt(std::int64_t i)
{
    JsonValue v;
    v.kind_ = Kind::Int;
    v.int_ = i;
    return v;
}

JsonValue
JsonValue::makeUint(std::uint64_t i)
{
    JsonValue v;
    v.kind_ = Kind::Uint;
    v.uint_ = i;
    return v;
}

JsonValue
JsonValue::makeDouble(double d)
{
    JsonValue v;
    v.kind_ = Kind::Double;
    v.double_ = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        throw JsonParseError("value is not a string");
    return string_;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        throw JsonParseError("value is not a boolean");
    return bool_;
}

std::int64_t
JsonValue::asInt64() const
{
    switch (kind_) {
      case Kind::Int:
        return int_;
      case Kind::Uint:
        if (uint_ > static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max()))
            throw JsonParseError("number does not fit a signed 64-bit "
                                 "integer");
        return static_cast<std::int64_t>(uint_);
      case Kind::Double: {
        const double d = double_;
        if (d != std::trunc(d) || d < -9.2233720368547758e18 ||
            d > 9.2233720368547758e18)
            throw JsonParseError("number is not an integer");
        return static_cast<std::int64_t>(d);
      }
      default:
        throw JsonParseError("value is not a number");
    }
}

std::uint64_t
JsonValue::asUint64() const
{
    switch (kind_) {
      case Kind::Uint:
        return uint_;
      case Kind::Int:
        if (int_ < 0)
            throw JsonParseError("number is negative");
        return static_cast<std::uint64_t>(int_);
      case Kind::Double: {
        const double d = double_;
        if (d != std::trunc(d) || d < 0.0 || d > 1.8446744073709552e19)
            throw JsonParseError("number is not an unsigned integer");
        return static_cast<std::uint64_t>(d);
      }
      default:
        throw JsonParseError("value is not a number");
    }
}

double
JsonValue::asDouble() const
{
    switch (kind_) {
      case Kind::Int:
        return static_cast<double>(int_);
      case Kind::Uint:
        return static_cast<double>(uint_);
      case Kind::Double:
        return double_;
      default:
        throw JsonParseError("value is not a number");
    }
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    panicIf(kind_ != Kind::Object, "operator[] on non-object json value");
    for (auto &m : members_)
        if (m.first == key)
            return m.second;
    members_.emplace_back(key, JsonValue());
    return members_.back().second;
}

JsonValue &
JsonValue::append(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    panicIf(kind_ != Kind::Array, "append on non-array json value");
    array_.push_back(std::move(v));
    return array_.back();
}

void JsonValue::set(const std::string &k, std::int64_t v)
{ (*this)[k] = makeInt(v); }
void JsonValue::set(const std::string &k, std::uint64_t v)
{ (*this)[k] = makeUint(v); }
void JsonValue::set(const std::string &k, double v)
{ (*this)[k] = makeDouble(v); }
void JsonValue::set(const std::string &k, const std::string &v)
{ (*this)[k] = makeString(v); }
void JsonValue::set(const std::string &k, const char *v)
{ (*this)[k] = makeString(v); }
void JsonValue::set(const std::string &k, bool v)
{ (*this)[k] = makeBool(v); }

void
JsonValue::escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default: {
            const auto uc = static_cast<unsigned char>(c);
            if (uc < 0x20) {
                // Remaining control characters are invalid raw inside
                // a JSON string (RFC 8259 §7).
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
                out += buf;
            } else {
                out += c;
            }
            break;
          }
        }
    }
    out += '"';
}

void
JsonValue::dumpInto(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    const std::string pad_close(static_cast<std::size_t>(indent * depth), ' ');

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
      }
      case Kind::Uint: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uint_));
        out += buf;
        break;
      }
      case Kind::Double: {
        char buf[64];
        if (std::isfinite(double_))
            std::snprintf(buf, sizeof(buf), "%.6g", double_);
        else
            std::snprintf(buf, sizeof(buf), "null");
        out += buf;
        break;
      }
      case Kind::String:
        escapeInto(out, string_);
        break;
      case Kind::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < array_.size(); ++i) {
            out += pad;
            array_[i].dumpInto(out, indent, depth + 1);
            if (i + 1 < array_.size())
                out += ',';
            out += '\n';
        }
        out += pad_close + "]";
        break;
      case Kind::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            out += pad;
            escapeInto(out, members_[i].first);
            out += ": ";
            members_[i].second.dumpInto(out, indent, depth + 1);
            if (i + 1 < members_.size())
                out += ',';
            out += '\n';
        }
        out += pad_close + "}";
        break;
    }
}

void
JsonValue::dumpCompactInto(std::string &out) const
{
    switch (kind_) {
      case Kind::Array: {
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0)
                out += ',';
            array_[i].dumpCompactInto(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i > 0)
                out += ',';
            escapeInto(out, members_[i].first);
            out += ':';
            members_[i].second.dumpCompactInto(out);
        }
        out += '}';
        break;
      }
      default:
        // Scalars render identically in both forms.
        dumpInto(out, 0, 0);
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpInto(out, indent, 0);
    return out;
}

std::string
JsonValue::dumpLine() const
{
    std::string out;
    dumpCompactInto(out);
    return out;
}

// --- strict parser ----------------------------------------------------

namespace {

/** Recursive-descent RFC 8259 parser over a byte string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue parseDocument()
    {
        skipWs();
        JsonValue v = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    [[noreturn]] void fail(const std::string &msg) const
    {
        throw JsonParseError(msg + " at byte " + std::to_string(pos_));
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos_;
        }
    }

    char peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeLiteral(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting deeper than 64 levels");
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        switch (peek()) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"':
            return JsonValue::makeString(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue::makeBool(true);
            fail("invalid literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue::makeBool(false);
            fail("invalid literal");
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue();
            fail("invalid literal");
          default:
            return parseNumber();
        }
    }

    JsonValue parseObject(int depth)
    {
        expect('{');
        JsonValue obj = JsonValue::makeObject();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected a string object key");
            std::string key = parseString();
            if (obj.find(key) != nullptr)
                fail("duplicate object key '" + key + "'");
            skipWs();
            expect(':');
            skipWs();
            obj[key] = parseValue(depth + 1);
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    JsonValue parseArray(int depth)
    {
        expect('[');
        JsonValue arr = JsonValue::makeArray();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            skipWs();
            arr.append(parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (c < 0x20)
                fail("raw control character inside a string");
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_; // consume the backslash
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned cp = parseHex4();
                // Surrogate pairs combine into one code point.
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    if (!consumeLiteral("\\u"))
                        fail("unpaired surrogate");
                    const unsigned lo = parseHex4();
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    unsigned parseHex4()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return v;
    }

    static void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        bool negative = false;
        if (peek() == '-') {
            negative = true;
            ++pos_;
        }
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("invalid number");
        // No leading zeros (RFC 8259 section 6).
        if (peek() == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            fail("leading zero in number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        bool is_integer = true;
        if (peek() == '.') {
            is_integer = false;
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("expected digits after decimal point");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            is_integer = false;
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("expected digits in exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        const std::string tok = text_.substr(start, pos_ - start);
        if (is_integer) {
            errno = 0;
            if (negative) {
                const long long v = std::strtoll(tok.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return JsonValue::makeInt(v);
            } else {
                const unsigned long long v =
                    std::strtoull(tok.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return JsonValue::makeUint(v);
            }
            // Out-of-range integers degrade to double like most
            // parsers do.
        }
        errno = 0;
        const double d = std::strtod(tok.c_str(), nullptr);
        if (errno == ERANGE && (d == 0.0 || std::isinf(d)))
            fail("number out of range");
        return JsonValue::makeDouble(d);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

} // namespace stonne
