#include "common/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "common/logging.hpp"

namespace stonne {

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeInt(std::int64_t i)
{
    JsonValue v;
    v.kind_ = Kind::Int;
    v.int_ = i;
    return v;
}

JsonValue
JsonValue::makeUint(std::uint64_t i)
{
    JsonValue v;
    v.kind_ = Kind::Uint;
    v.uint_ = i;
    return v;
}

JsonValue
JsonValue::makeDouble(double d)
{
    JsonValue v;
    v.kind_ = Kind::Double;
    v.double_ = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    panicIf(kind_ != Kind::Object, "operator[] on non-object json value");
    for (auto &m : members_)
        if (m.first == key)
            return m.second;
    members_.emplace_back(key, JsonValue());
    return members_.back().second;
}

JsonValue &
JsonValue::append(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    panicIf(kind_ != Kind::Array, "append on non-array json value");
    array_.push_back(std::move(v));
    return array_.back();
}

void JsonValue::set(const std::string &k, std::int64_t v)
{ (*this)[k] = makeInt(v); }
void JsonValue::set(const std::string &k, std::uint64_t v)
{ (*this)[k] = makeUint(v); }
void JsonValue::set(const std::string &k, double v)
{ (*this)[k] = makeDouble(v); }
void JsonValue::set(const std::string &k, const std::string &v)
{ (*this)[k] = makeString(v); }
void JsonValue::set(const std::string &k, const char *v)
{ (*this)[k] = makeString(v); }
void JsonValue::set(const std::string &k, bool v)
{ (*this)[k] = makeBool(v); }

void
JsonValue::escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default: {
            const auto uc = static_cast<unsigned char>(c);
            if (uc < 0x20) {
                // Remaining control characters are invalid raw inside
                // a JSON string (RFC 8259 §7).
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
                out += buf;
            } else {
                out += c;
            }
            break;
          }
        }
    }
    out += '"';
}

void
JsonValue::dumpInto(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    const std::string pad_close(static_cast<std::size_t>(indent * depth), ' ');

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
      }
      case Kind::Uint: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uint_));
        out += buf;
        break;
      }
      case Kind::Double: {
        char buf[64];
        if (std::isfinite(double_))
            std::snprintf(buf, sizeof(buf), "%.6g", double_);
        else
            std::snprintf(buf, sizeof(buf), "null");
        out += buf;
        break;
      }
      case Kind::String:
        escapeInto(out, string_);
        break;
      case Kind::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < array_.size(); ++i) {
            out += pad;
            array_[i].dumpInto(out, indent, depth + 1);
            if (i + 1 < array_.size())
                out += ',';
            out += '\n';
        }
        out += pad_close + "]";
        break;
      case Kind::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            out += pad;
            escapeInto(out, members_[i].first);
            out += ": ";
            members_[i].second.dumpInto(out, indent, depth + 1);
            if (i + 1 < members_.size())
                out += ',';
            out += '\n';
        }
        out += pad_close + "}";
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpInto(out, indent, 0);
    return out;
}

} // namespace stonne
