/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * fatal()  — the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments); throws FatalError.
 * panic()  — something happened that should never happen regardless of
 *            user input (a simulator bug); throws PanicError.
 * warn()   — functionality may not behave exactly as intended.
 * inform() — normal operating messages.
 *
 * Both error functions throw instead of calling exit()/abort() so that the
 * test suite can assert on misconfiguration handling.
 */

#ifndef STONNE_COMMON_LOGGING_HPP
#define STONNE_COMMON_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace stonne {

/** Error thrown by fatal(): a user-level configuration problem. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg) {}
};

/** Error thrown by panic(): an internal simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg) {}
};

namespace detail {

/** Rendered SimContext scope stack, " [k=v, ...]" or "" (sim_context.cpp). */
std::string simContextSuffix();

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    format(os, rest...);
}

} // namespace detail

/**
 * Report a user error and abort the current simulation via exception.
 * Any active SimContext scopes (cycle, layer, unit) are appended.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::format(os, args...);
    throw FatalError(os.str() + detail::simContextSuffix());
}

/**
 * Report an internal invariant violation via exception.
 * Any active SimContext scopes (cycle, layer, unit) are appended.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::format(os, args...);
    throw PanicError(os.str() + detail::simContextSuffix());
}

/** Check an internal invariant; panic with a message when it fails. */
template <typename... Args>
void
panicIf(bool cond, const Args &...args)
{
    if (cond)
        panic(args...);
}

/** Check a user-facing precondition; fatal with a message when it fails. */
template <typename... Args>
void
fatalIf(bool cond, const Args &...args)
{
    if (cond)
        fatal(args...);
}

/** Print a warning to stderr (does not stop the simulation). */
void warnMessage(const std::string &msg);

/** Print an informational message to stderr. */
void informMessage(const std::string &msg);

/** Enable or disable inform()/warn() output (quiet test runs). */
void setVerbose(bool verbose);

/** Whether inform()/warn() currently print. */
bool verboseEnabled();

template <typename... Args>
void
warn(const Args &...args)
{
    std::ostringstream os;
    detail::format(os, args...);
    warnMessage(os.str());
}

template <typename... Args>
void
inform(const Args &...args)
{
    std::ostringstream os;
    detail::format(os, args...);
    informMessage(os.str());
}

} // namespace stonne

#endif // STONNE_COMMON_LOGGING_HPP
