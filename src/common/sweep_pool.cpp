#include "common/sweep_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace stonne {

SweepRunner::SweepRunner(std::size_t threads)
    : threads_(threads)
{
    if (threads_ == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw > 0 ? hw : 1;
    }
}

void
SweepRunner::run(const std::vector<std::function<void()>> &jobs) const
{
    if (jobs.empty())
        return;

    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(jobs.size());

    auto worker = [&]() {
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            try {
                jobs[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    const std::size_t n = std::min(threads_, jobs.size());
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
}

} // namespace stonne
