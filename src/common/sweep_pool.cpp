#include "common/sweep_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <utility>

namespace stonne {

namespace {

std::size_t
resolveThreads(std::size_t threads)
{
    if (threads != 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

WorkerPool::WorkerPool(std::size_t threads, bool start_workers)
    : thread_count_(resolveThreads(threads))
{
    if (start_workers)
        start();
}

WorkerPool::~WorkerPool()
{
    shutdown();
}

void
WorkerPool::start()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stopping_)
        return;
    started_ = true;
    workers_.reserve(thread_count_);
    for (std::size_t t = 0; t < thread_count_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

void
WorkerPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            throw std::runtime_error("WorkerPool: submit after shutdown");
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

std::size_t
WorkerPool::pending() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

std::size_t
WorkerPool::running() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
}

std::uint64_t
WorkerPool::tasksRun() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_run_;
}

std::uint64_t
WorkerPool::tasksFailed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_failed_;
}

void
WorkerPool::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && running_ == 0; });
}

void
WorkerPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

void
WorkerPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        bool failed = false;
        try {
            task();
        } catch (...) {
            // The last line of defense: a task that leaks any
            // exception must never take the worker (and with it the
            // daemon) down. Errors the caller cares about are captured
            // inside the task closure itself.
            failed = true;
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --running_;
            ++tasks_run_;
            if (failed)
                ++tasks_failed_;
            if (queue_.empty() && running_ == 0)
                idle_cv_.notify_all();
        }
    }
}

SweepRunner::SweepRunner(std::size_t threads)
    : threads_(resolveThreads(threads))
{
}

void
SweepRunner::run(const std::vector<std::function<void()>> &jobs) const
{
    if (jobs.empty())
        return;

    std::vector<std::exception_ptr> errors(jobs.size());
    const std::size_t n = std::min(threads_, jobs.size());

    if (n <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            try {
                jobs[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    } else {
        WorkerPool pool(n);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&jobs, &errors, i] {
                try {
                    jobs[i]();
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.drain();
        pool.shutdown();
    }

    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
}

} // namespace stonne
