#include "common/logging.hpp"

#include <cstdio>

namespace stonne {

namespace {
bool verbose_flag = false;
} // namespace

void
setVerbose(bool verbose)
{
    verbose_flag = verbose;
}

bool
verboseEnabled()
{
    return verbose_flag;
}

void
warnMessage(const std::string &msg)
{
    if (verbose_flag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informMessage(const std::string &msg)
{
    if (verbose_flag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace stonne
