#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.hpp"
#include "explore/axes.hpp"

namespace stonne {

const char *
dnTypeName(DnType t)
{
    switch (t) {
      case DnType::Tree:         return "TREE";
      case DnType::Benes:        return "BENES";
      case DnType::PointToPoint: return "POP";
    }
    return "?";
}

const char *
mnTypeName(MnType t)
{
    switch (t) {
      case MnType::Linear:   return "LINEAR";
      case MnType::Disabled: return "DISABLED";
    }
    return "?";
}

const char *
rnTypeName(RnType t)
{
    switch (t) {
      case RnType::Art:    return "ART";
      case RnType::ArtAcc: return "ART_ACC";
      case RnType::Fan:    return "FAN";
      case RnType::Linear: return "LINEAR";
    }
    return "?";
}

const char *
controllerTypeName(ControllerType t)
{
    switch (t) {
      case ControllerType::Dense:  return "DENSE";
      case ControllerType::Sparse: return "SPARSE";
      case ControllerType::Snapea: return "SNAPEA";
    }
    return "?";
}

const char *
dataflowName(Dataflow d)
{
    switch (d) {
      case Dataflow::OutputStationary: return "OS";
      case Dataflow::WeightStationary: return "WS";
      case Dataflow::InputStationary:  return "IS";
    }
    return "?";
}

const char *
engineTypeName(EngineType t)
{
    switch (t) {
      case EngineType::Event: return "EVENT";
      case EngineType::Tick:  return "TICK";
    }
    return "?";
}

const char *
partitionStrategyName(PartitionStrategy p)
{
    switch (p) {
      case PartitionStrategy::Pipeline: return "PIPELINE";
      case PartitionStrategy::KSplit:   return "KSPLIT";
    }
    return "?";
}

namespace {

bool
isPow2(index_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::string
upper(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return s;
}

} // namespace

void
HardwareConfig::validate() const
{
    fatalIf(!isPow2(ms_size), "ms_size must be a power of two, got ",
            ms_size);
    // A zero or negative fabric bandwidth would wedge the delivery and
    // drain loops mid-simulation with a context-free panic; reject it
    // here with the config named so the bad knob is obvious.
    fatalIf(dn_bandwidth <= 0,
            "config '", name, "': dn_bandwidth must be positive, got ",
            dn_bandwidth,
            " (the distribution network could never deliver an element)");
    fatalIf(dn_bandwidth > ms_size,
            "config '", name, "': dn_bandwidth must lie in [1, ms_size], "
            "got ", dn_bandwidth);
    fatalIf(rn_bandwidth <= 0,
            "config '", name, "': rn_bandwidth must be positive, got ",
            rn_bandwidth,
            " (the reduction network could never drain an output)");
    fatalIf(rn_bandwidth > ms_size,
            "config '", name, "': rn_bandwidth must lie in [1, ms_size], "
            "got ", rn_bandwidth);
    fatalIf(fifo_capacity <= 0, "fifo_capacity must be positive");
    fatalIf(gb_size_kib <= 0, "gb_size_kib must be positive");
    fatalIf(dram_bandwidth_gbps <= 0, "dram bandwidth must be positive");
    fatalIf(clock_ghz <= 0, "clock frequency must be positive");
    fatalIf(watchdog_cycles <= 0, "watchdog_cycles must be positive");
    fatalIf(trace_sample_cycles <= 0,
            "trace_sample_cycles must be positive, got ",
            trace_sample_cycles);
    fatalIf(trace && trace_file.empty(),
            "config '", name, "': trace = ON requires a trace_file");
    fatalIf(checkpoint && checkpoint_file.empty(),
            "config '", name, "': checkpoint = ON requires a "
            "checkpoint_file");
    fatalIf(checkpoint_interval_cycles <= 0,
            "checkpoint_interval_cycles must be positive, got ",
            checkpoint_interval_cycles);
    fatalIf(dse_top_k <= 0, "dse_top_k must be positive, got ",
            dse_top_k);
    fatalIf(service_queue_depth <= 0,
            "service_queue_depth must be positive, got ",
            service_queue_depth);
    fatalIf(service_workers < 0, "service_workers must be >= 0, got ",
            service_workers);
    fatalIf(job_budget_cycles < 0,
            "job_budget_cycles must be >= 0 (0 = unlimited), got ",
            job_budget_cycles);
    fatalIf(job_budget_wall_ms < 0,
            "job_budget_wall_ms must be >= 0 (0 = unlimited), got ",
            job_budget_wall_ms);
    fatalIf(job_retries < 0, "job_retries must be >= 0, got ",
            job_retries);
    fatalIf(cores <= 0, "config '", name,
            "': cores must be positive, got ", cores);
    fatalIf(dram_channels <= 0, "config '", name,
            "': dram_channels must be positive, got ", dram_channels);
    fatalIf(dram_channels > cores, "config '", name,
            "': dram_channels must lie in [1, cores]; ", dram_channels,
            " channels cannot all be reached by ", cores,
            " statically striped core(s)");
    // K-split shards a layer's output channels, which only the dense
    // controller's explicit tiling executes deterministically; the
    // sparse controller's cluster sizes and SNAPEA's sign-sorted
    // early exit both depend on the whole-K value distribution.
    fatalIf(cores > 1 && partition == PartitionStrategy::KSplit &&
            controller_type != ControllerType::Dense,
            "config '", name, "': partition = KSPLIT shards the dense "
            "controller's K axis; it requires controller = DENSE");
    // Only the dense controller consumes explicit tiles (the sparse
    // controller sizes clusters dynamically and SNAPEA's convolution
    // path maps whole filters), so there is nothing to tune elsewhere.
    fatalIf(autotune && controller_type != ControllerType::Dense,
            "config '", name, "': autotune tunes the dense controller's "
            "tile; it requires controller = DENSE");
    fatalIf(explore_top_k <= 0, "explore_top_k must be positive, got ",
            explore_top_k);
    // The co-search enumerates the dense controller's tile space as
    // its mapping dimension (the fabric axis *derives* sparse variants
    // from a dense base; a sparse or SNAPEA base has no tile space to
    // cross with the hardware axes).
    fatalIf(explore && controller_type != ControllerType::Dense,
            "config '", name, "': explore crosses hardware axes with "
            "the dense controller's tile space; it requires controller "
            "= DENSE");
    fatalIf(explore && cores > 1,
            "config '", name, "': explore evaluates single-accelerator "
            "variants; it requires cores = 1");
    // The axes string is validated wherever the config comes from
    // (file keys get a file:line diagnostic at parse; programmatic
    // configs are caught here).
    explore::parseAxesSpec(explore_axes, "config '" + name + "'", 0);
    faults.validate();
    fatalIf(faults.core >= cores, "config '", name,
            "': fault_core = ", faults.core,
            " targets a core outside the composition (cores = ", cores,
            ")");

    // Controller / substrate compatibility (Section IV-B: "the configured
    // memory controller must always be compatible with the hardware
    // substrate selected to be modelled").
    const bool sparse = controller_type == ControllerType::Sparse;
    fatalIf(sparse && dn_type == DnType::PointToPoint,
            "a sparse controller cannot drive a systolic point-to-point DN");
    fatalIf(sparse && rn_type == RnType::Linear,
            "a sparse controller needs a cluster-capable RN (ART or FAN)");
    fatalIf(dn_type == DnType::PointToPoint && rn_type != RnType::Linear,
            "the systolic point-to-point DN pairs with a linear RN");
    fatalIf(controller_type == ControllerType::Snapea &&
            dn_type == DnType::PointToPoint,
            "the SNAPEA controller extends the flexible dense pipeline");
}

HardwareConfig
HardwareConfig::tpuLike(index_t pes)
{
    HardwareConfig c;
    c.name = "TPU";
    c.dn_type = DnType::PointToPoint;
    c.mn_type = MnType::Linear;
    c.rn_type = RnType::Linear;
    c.controller_type = ControllerType::Dense;
    c.dataflow = Dataflow::OutputStationary;
    c.ms_size = pes;
    // A systolic array requires full bandwidth along its edges.
    c.dn_bandwidth = pes;
    c.rn_bandwidth = pes;
    return c;
}

HardwareConfig
HardwareConfig::maeriLike(index_t ms, index_t bw)
{
    HardwareConfig c;
    c.name = "MAERI";
    c.dn_type = DnType::Tree;
    c.mn_type = MnType::Linear;
    c.rn_type = RnType::ArtAcc;
    c.controller_type = ControllerType::Dense;
    c.dataflow = Dataflow::OutputStationary;
    c.ms_size = ms;
    c.dn_bandwidth = bw;
    c.rn_bandwidth = bw;
    return c;
}

HardwareConfig
HardwareConfig::sigmaLike(index_t ms, index_t bw)
{
    HardwareConfig c;
    c.name = "SIGMA";
    c.dn_type = DnType::Benes;
    c.mn_type = MnType::Disabled;
    c.rn_type = RnType::Fan;
    c.controller_type = ControllerType::Sparse;
    c.dataflow = Dataflow::WeightStationary;
    c.ms_size = ms;
    c.dn_bandwidth = bw;
    c.rn_bandwidth = bw;
    return c;
}

HardwareConfig
HardwareConfig::snapeaLike(index_t ms, index_t bw)
{
    HardwareConfig c = maeriLike(ms, bw);
    c.name = "SNAPEA";
    c.controller_type = ControllerType::Snapea;
    return c;
}

HardwareConfig
HardwareConfig::shiDianNaoLike(index_t pes)
{
    HardwareConfig c = tpuLike(pes);
    c.name = "ShiDianNao";
    return c;
}

HardwareConfig
HardwareConfig::flexibleArtDist(index_t ms, index_t bw)
{
    HardwareConfig c = maeriLike(ms, bw);
    c.name = "MAERI-DIST";
    c.rn_type = RnType::Art;
    return c;
}

HardwareConfig
HardwareConfig::parse(const std::string &text, const std::string &origin)
{
    HardwareConfig c;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    // First-occurrence line of each key, for duplicate diagnostics.
    // Aliases (MS_SIZE / NUM_MS, CONTROLLER / MEM_CONTROLLER) are
    // canonicalized so a value cannot be set twice through two names.
    std::map<std::string, int> seen;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty() || line[0] == '[')
            continue;
        std::size_t eq = line.find('=');
        fatalIf(eq == std::string::npos,
                origin, ":", lineno, ": config line is not key = value: '",
                line, "'");
        std::string key = upper(trim(line.substr(0, eq)));
        std::string val = trim(line.substr(eq + 1));
        std::string uval = upper(val);

        std::string canonical = key;
        if (canonical == "NUM_MS")
            canonical = "MS_SIZE";
        else if (canonical == "MEM_CONTROLLER")
            canonical = "CONTROLLER";
        const auto [it, inserted] = seen.emplace(canonical, lineno);
        fatalIf(!inserted, origin, ":", lineno, ": duplicate config key '",
                key, "' (first set at line ", it->second, ")");

        // Both numeric parsers demand full consumption of the value:
        // std::stoll/stod stop at the first bad character, so without
        // the check 'MS_SIZE = 8x' silently configures 8 multipliers
        // and 'dram_bandwidth_gbps = 1.5GB' parses as 1.5.
        auto as_int = [&]() -> index_t {
            long long v = 0;
            std::size_t used = 0;
            try {
                v = std::stoll(val, &used);
            } catch (const std::exception &) {
                fatal(origin, ":", lineno, ": config key ", key,
                      " expects an integer, got '", val, "'");
            }
            fatalIf(used != val.size(),
                    origin, ":", lineno, ": config key ", key,
                    " expects an integer, got '", val,
                    "' (trailing characters after the number)");
            return static_cast<index_t>(v);
        };
        auto as_double = [&]() -> double {
            double v = 0.0;
            std::size_t used = 0;
            try {
                v = std::stod(val, &used);
            } catch (const std::exception &) {
                fatal(origin, ":", lineno, ": config key ", key,
                      " expects a number, got '", val, "'");
            }
            fatalIf(used != val.size(),
                    origin, ":", lineno, ": config key ", key,
                    " expects a number, got '", val,
                    "' (trailing characters after the number)");
            return v;
        };
        auto as_flag = [&]() -> bool {
            if (uval == "ON" || uval == "TRUE" || uval == "1")
                return true;
            if (uval == "OFF" || uval == "FALSE" || uval == "0")
                return false;
            fatal(origin, ":", lineno, ": config key ", key,
                  " expects ON/OFF, got '", val, "'");
        };

        if (key == "NAME") {
            c.name = val;
        } else if (key == "DN_TYPE") {
            if (uval == "TREE") c.dn_type = DnType::Tree;
            else if (uval == "BENES") c.dn_type = DnType::Benes;
            else if (uval == "POP" || uval == "POINT_TO_POINT")
                c.dn_type = DnType::PointToPoint;
            else fatal(origin, ":", lineno, ": unknown DN_TYPE '", val,
                       "'");
        } else if (key == "MN_TYPE") {
            if (uval == "LINEAR") c.mn_type = MnType::Linear;
            else if (uval == "DISABLED") c.mn_type = MnType::Disabled;
            else fatal(origin, ":", lineno, ": unknown MN_TYPE '", val,
                       "'");
        } else if (key == "RN_TYPE") {
            if (uval == "ART") c.rn_type = RnType::Art;
            else if (uval == "ART_ACC") c.rn_type = RnType::ArtAcc;
            else if (uval == "FAN") c.rn_type = RnType::Fan;
            else if (uval == "LINEAR") c.rn_type = RnType::Linear;
            else fatal(origin, ":", lineno, ": unknown RN_TYPE '", val,
                       "'");
        } else if (key == "CONTROLLER" || key == "MEM_CONTROLLER") {
            if (uval == "DENSE") c.controller_type = ControllerType::Dense;
            else if (uval == "SPARSE")
                c.controller_type = ControllerType::Sparse;
            else if (uval == "SNAPEA")
                c.controller_type = ControllerType::Snapea;
            else fatal(origin, ":", lineno, ": unknown CONTROLLER '", val,
                       "'");
        } else if (key == "DATAFLOW") {
            if (uval == "OS") c.dataflow = Dataflow::OutputStationary;
            else if (uval == "WS") c.dataflow = Dataflow::WeightStationary;
            else if (uval == "IS") c.dataflow = Dataflow::InputStationary;
            else fatal(origin, ":", lineno, ": unknown DATAFLOW '", val,
                       "'");
        } else if (key == "SPARSE_FORMAT") {
            if (uval == "CSR") c.sparse_format = SparseFormat::Csr;
            else if (uval == "BITMAP") c.sparse_format = SparseFormat::Bitmap;
            else fatal(origin, ":", lineno, ": unknown SPARSE_FORMAT '", val,
                       "'");
        } else if (key == "MS_SIZE" || key == "NUM_MS") {
            c.ms_size = as_int();
        } else if (key == "DN_BANDWIDTH") {
            c.dn_bandwidth = as_int();
        } else if (key == "RN_BANDWIDTH") {
            c.rn_bandwidth = as_int();
        } else if (key == "FIFO_CAPACITY") {
            c.fifo_capacity = as_int();
        } else if (key == "ACCUMULATOR_SIZE") {
            c.accumulator_size = as_int();
        } else if (key == "GB_SIZE_KIB") {
            c.gb_size_kib = as_int();
        } else if (key == "DRAM_BANDWIDTH_GBPS") {
            c.dram_bandwidth_gbps = as_double();
        } else if (key == "DRAM_LATENCY_CYCLES") {
            c.dram_latency_cycles = as_int();
        } else if (key == "CLOCK_GHZ") {
            c.clock_ghz = as_double();
        } else if (key == "ENERGY_TABLE") {
            c.energy_table_path = val;
        } else if (key == "AREA_TABLE") {
            c.area_table_path = val;
        } else if (key == "DATA_TYPE") {
            if (uval == "FP8") c.data_type = DataType::FP8;
            else if (uval == "FP16") c.data_type = DataType::FP16;
            else if (uval == "INT8") c.data_type = DataType::INT8;
            else if (uval == "FP32") c.data_type = DataType::FP32;
            else fatal(origin, ":", lineno, ": unknown DATA_TYPE '", val,
                       "'");
        } else if (key == "CORES") {
            c.cores = as_int();
        } else if (key == "DRAM_CHANNELS") {
            c.dram_channels = as_int();
        } else if (key == "PARTITION") {
            if (uval == "PIPELINE")
                c.partition = PartitionStrategy::Pipeline;
            else if (uval == "KSPLIT")
                c.partition = PartitionStrategy::KSplit;
            else fatal(origin, ":", lineno, ": unknown PARTITION '", val,
                       "' (expected PIPELINE or KSPLIT)");
        } else if (key == "WATCHDOG_CYCLES") {
            c.watchdog_cycles = as_int();
        } else if (key == "FAST_FORWARD") {
            c.fast_forward = as_flag();
        } else if (key == "ENGINE") {
            if (uval == "EVENT") c.engine_type = EngineType::Event;
            else if (uval == "TICK") c.engine_type = EngineType::Tick;
            else fatal(origin, ":", lineno, ": unknown ENGINE '", val,
                       "'");
        } else if (key == "TRACE") {
            c.trace = as_flag();
        } else if (key == "TRACE_FILE") {
            c.trace_file = val;
        } else if (key == "TRACE_SAMPLE_CYCLES") {
            c.trace_sample_cycles = as_int();
        } else if (key == "CHECKPOINT") {
            c.checkpoint = as_flag();
        } else if (key == "CHECKPOINT_FILE") {
            c.checkpoint_file = val;
        } else if (key == "CHECKPOINT_INTERVAL_CYCLES") {
            c.checkpoint_interval_cycles = as_int();
        } else if (key == "AUTOTUNE") {
            c.autotune = as_flag();
        } else if (key == "DSE_TOP_K") {
            c.dse_top_k = as_int();
        } else if (key == "DSE_CACHE_FILE") {
            c.dse_cache_file = val;
        } else if (key == "EXPLORE") {
            c.explore = as_flag();
        } else if (key == "EXPLORE_AXES") {
            // Full syntax check at the defining line, so a malformed
            // axis list names its file:line, not a later explore run.
            explore::parseAxesSpec(val, origin, lineno);
            c.explore_axes = val;
        } else if (key == "EXPLORE_TOP_K") {
            c.explore_top_k = as_int();
        } else if (key == "SERVICE_QUEUE_DEPTH") {
            c.service_queue_depth = as_int();
        } else if (key == "SERVICE_WORKERS") {
            c.service_workers = as_int();
        } else if (key == "JOB_BUDGET_CYCLES") {
            c.job_budget_cycles = as_int();
        } else if (key == "JOB_BUDGET_WALL_MS") {
            c.job_budget_wall_ms = as_int();
        } else if (key == "JOB_RETRIES") {
            c.job_retries = as_int();
        } else if (key == "FAULTS") {
            c.faults.enabled = as_flag();
        } else if (key == "FAULT_SEED") {
            c.faults.seed = static_cast<std::uint64_t>(as_int());
        } else if (key == "FAULT_STUCK_MULTIPLIER_RATE") {
            c.faults.stuck_multiplier_rate = as_double();
        } else if (key == "FAULT_FLIT_DROP_RATE") {
            c.faults.flit_drop_rate = as_double();
        } else if (key == "FAULT_FLIT_CORRUPT_RATE") {
            c.faults.flit_corrupt_rate = as_double();
        } else if (key == "FAULT_DRAM_BITFLIP_RATE") {
            c.faults.dram_bitflip_rate = as_double();
        } else if (key == "FAULT_CORE") {
            c.faults.core = static_cast<int>(as_int());
        } else {
            fatal(origin, ":", lineno, ": unknown config key '", key, "'");
        }
    }
    c.validate();
    return c;
}

HardwareConfig
HardwareConfig::parseFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open hardware configuration file '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str(), path);
}

std::string
HardwareConfig::toConfigText() const
{
    std::ostringstream os;
    os << "name = " << name << "\n"
       << "dn_type = " << dnTypeName(dn_type) << "\n"
       << "mn_type = " << mnTypeName(mn_type) << "\n"
       << "rn_type = " << rnTypeName(rn_type) << "\n"
       << "controller = " << controllerTypeName(controller_type) << "\n"
       << "dataflow = " << dataflowName(dataflow) << "\n"
       << "sparse_format = "
       << (sparse_format == SparseFormat::Csr ? "CSR" : "BITMAP") << "\n"
       << "ms_size = " << ms_size << "\n"
       << "dn_bandwidth = " << dn_bandwidth << "\n"
       << "rn_bandwidth = " << rn_bandwidth << "\n"
       << "fifo_capacity = " << fifo_capacity << "\n"
       << "accumulator_size = " << accumulator_size << "\n"
       << "gb_size_kib = " << gb_size_kib << "\n"
       << "dram_bandwidth_gbps = " << dram_bandwidth_gbps << "\n"
       << "dram_latency_cycles = " << dram_latency_cycles << "\n"
       << "clock_ghz = " << clock_ghz << "\n"
       << "data_type = " << dataTypeName(data_type) << "\n"
       << "watchdog_cycles = " << watchdog_cycles << "\n"
       << "fast_forward = " << (fast_forward ? "ON" : "OFF") << "\n";
    if (!energy_table_path.empty())
        os << "energy_table = " << energy_table_path << "\n";
    if (!area_table_path.empty())
        os << "area_table = " << area_table_path << "\n";
    if (trace) {
        os << "trace = ON\n"
           << "trace_file = " << trace_file << "\n"
           << "trace_sample_cycles = " << trace_sample_cycles << "\n";
    }
    if (checkpoint) {
        os << "checkpoint = ON\n"
           << "checkpoint_file = " << checkpoint_file << "\n"
           << "checkpoint_interval_cycles = " << checkpoint_interval_cycles
           << "\n";
    }
    if (autotune) {
        os << "autotune = ON\n"
           << "dse_top_k = " << dse_top_k << "\n";
        if (!dse_cache_file.empty())
            os << "dse_cache_file = " << dse_cache_file << "\n";
    }
    if (explore) {
        os << "explore = ON\n"
           << "explore_axes = " << explore_axes << "\n"
           << "explore_top_k = " << explore_top_k << "\n";
    }
    // Multi-core composition keys are structural but emitted only when
    // they differ from the single-core defaults, keeping pre-existing
    // config texts (and the snapshots and cache keys embedding them)
    // byte-stable.
    const HardwareConfig defaults;
    if (cores != defaults.cores)
        os << "cores = " << cores << "\n";
    if (dram_channels != defaults.dram_channels)
        os << "dram_channels = " << dram_channels << "\n";
    if (partition != defaults.partition)
        os << "partition = " << partitionStrategyName(partition) << "\n";
    // Policy knobs below are likewise emitted only on divergence.
    if (engine_type != defaults.engine_type)
        os << "engine = " << engineTypeName(engine_type) << "\n";
    if (service_queue_depth != defaults.service_queue_depth)
        os << "service_queue_depth = " << service_queue_depth << "\n";
    if (service_workers != defaults.service_workers)
        os << "service_workers = " << service_workers << "\n";
    if (job_budget_cycles != defaults.job_budget_cycles)
        os << "job_budget_cycles = " << job_budget_cycles << "\n";
    if (job_budget_wall_ms != defaults.job_budget_wall_ms)
        os << "job_budget_wall_ms = " << job_budget_wall_ms << "\n";
    if (job_retries != defaults.job_retries)
        os << "job_retries = " << job_retries << "\n";
    if (faults.enabled)
        os << faults.toConfigText();
    return os.str();
}

std::string
HardwareConfig::structuralText() const
{
    HardwareConfig c = *this;
    c.fast_forward = true;
    c.engine_type = EngineType::Event;
    c.watchdog_cycles = 1;
    c.checkpoint = false;
    c.checkpoint_file.clear();
    c.checkpoint_interval_cycles = 1;
    c.trace_file.clear();
    c.autotune = false;
    c.dse_top_k = 1;
    c.dse_cache_file.clear();
    const HardwareConfig defaults;
    c.explore = false;
    c.explore_axes = defaults.explore_axes;
    c.explore_top_k = defaults.explore_top_k;
    c.service_queue_depth = defaults.service_queue_depth;
    c.service_workers = defaults.service_workers;
    c.job_budget_cycles = defaults.job_budget_cycles;
    c.job_budget_wall_ms = defaults.job_budget_wall_ms;
    c.job_retries = defaults.job_retries;
    return c.toConfigText();
}

} // namespace stonne
