#include "common/sim_context.hpp"

namespace stonne {

namespace {

using Frame = std::pair<std::string, std::string>;

std::vector<Frame> &
stack()
{
    thread_local std::vector<Frame> frames;
    return frames;
}

} // namespace

void
SimContext::push(std::string key, std::string value)
{
    stack().emplace_back(std::move(key), std::move(value));
}

void
SimContext::pop()
{
    auto &s = stack();
    if (!s.empty())
        s.pop_back();
}

void
SimContext::set(const std::string &key, std::string value)
{
    auto &s = stack();
    for (auto it = s.rbegin(); it != s.rend(); ++it) {
        if (it->first == key) {
            it->second = std::move(value);
            return;
        }
    }
    s.emplace_back(key, std::move(value));
}

std::size_t
SimContext::depth()
{
    return stack().size();
}

void
SimContext::clear()
{
    stack().clear();
}

std::string
SimContext::describe()
{
    const auto &s = stack();
    std::string out;
    for (const Frame &f : s) {
        if (!out.empty())
            out += ", ";
        out += f.first;
        out += '=';
        out += f.second;
    }
    return out;
}

std::string
SimContext::suffix()
{
    const std::string body = describe();
    return body.empty() ? std::string() : " [" + body + "]";
}

namespace detail {

// Bridge used by logging.hpp so fatal()/panic() can attach the context
// without including this header everywhere.
std::string
simContextSuffix()
{
    return SimContext::suffix();
}

} // namespace detail

} // namespace stonne
