/**
 * @file
 * Deterministic random number generation for synthetic weights and inputs.
 *
 * Every experiment in this reproduction is seeded so that test and bench
 * results are exactly reproducible across runs and machines.
 */

#ifndef STONNE_COMMON_RNG_HPP
#define STONNE_COMMON_RNG_HPP

#include <cstdint>
#include <random>

namespace stonne {

/** Thin deterministic wrapper around std::mt19937_64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x570AA1u) : gen_(seed) {}

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo = -1.0f, float hi = 1.0f)
    {
        std::uniform_real_distribution<float> d(lo, hi);
        return d(gen_);
    }

    /** Gaussian float. */
    float
    normal(float mean = 0.0f, float stddev = 1.0f)
    {
        std::normal_distribution<float> d(mean, stddev);
        return d(gen_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    integer(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        return d(gen_);
    }

    /** Bernoulli draw. */
    bool
    chance(double p)
    {
        std::bernoulli_distribution d(p);
        return d(gen_);
    }

    std::mt19937_64 &engine() { return gen_; }
    const std::mt19937_64 &engine() const { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace stonne

#endif // STONNE_COMMON_RNG_HPP
