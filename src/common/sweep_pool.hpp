/**
 * @file
 * Worker pool and thread-pooled runner for independent simulation jobs.
 *
 * Simulation points are embarrassingly parallel: every point owns its
 * Stonne instance (and therefore its StatsRegistry, watchdog and RNG
 * streams), the SimContext error scopes are thread-local, and logging
 * keeps no mutable global state — so points can run concurrently with
 * no sharing at all.
 *
 * Two layers live here:
 *
 *  - WorkerPool: persistent threads draining a FIFO task queue. Tasks
 *    are fire-and-forget closures; a task that throws never takes its
 *    worker down (the pool catches everything, counts the failure and
 *    keeps serving). The simulation service (src/service) runs its job
 *    envelopes on one of these for the lifetime of the daemon.
 *
 *  - SweepRunner: the batch façade the benchmarks and the design-space
 *    explorer use. It executes a list of closures over a temporary
 *    pool, preserves submission order in the results, and rethrows the
 *    first failure (lowest job index) after the pool drains.
 *
 * Lives in the library (not bench/) because the design-space explorer
 * (src/dse) evaluates its top-K mapping candidates over the same pool
 * the benchmark sweeps use.
 */

#ifndef STONNE_COMMON_SWEEP_POOL_HPP
#define STONNE_COMMON_SWEEP_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stonne {

/**
 * Fixed set of persistent worker threads over a FIFO task queue.
 *
 * Exception safety is the contract: a submitted task that throws —
 * anything, std::exception or not — is caught at the worker loop,
 * counted in tasksFailed(), and the worker moves on to the next task.
 * Callers that need the error must capture it inside their closure
 * (see SweepRunner::run); the pool-level catch is the last line of
 * defense that keeps a long-running daemon alive.
 */
class WorkerPool
{
  public:
    /**
     * @param threads pool size; 0 picks the hardware concurrency
     *        (at least 1).
     * @param start_workers spawn the threads immediately; pass false
     *        and call start() later to stage tasks while the pool is
     *        paused (admission tests rely on this).
     */
    explicit WorkerPool(std::size_t threads = 0, bool start_workers = true);

    /** Drains the queue and joins the workers (shutdown()). */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    std::size_t threadCount() const { return thread_count_; }

    /** Spawn the worker threads; no-op if already started. */
    void start();

    /**
     * Enqueue a task. Throws std::runtime_error if the pool has been
     * shut down.
     */
    void submit(std::function<void()> task);

    /** Tasks queued and not yet claimed by a worker. */
    std::size_t pending() const;

    /** Tasks currently executing on a worker. */
    std::size_t running() const;

    /** Block until the queue is empty and no task is executing. */
    void drain();

    /**
     * Stop accepting work, run everything already queued, join the
     * workers. Idempotent; called by the destructor.
     */
    void shutdown();

    /** Tasks completed (including failed ones). */
    std::uint64_t tasksRun() const;

    /** Tasks that terminated by throwing. */
    std::uint64_t tasksFailed() const;

  private:
    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable work_cv_; //!< workers: queue non-empty/stop
    std::condition_variable idle_cv_; //!< drain(): queue empty & idle
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t thread_count_;
    std::size_t running_ = 0;
    std::uint64_t tasks_run_ = 0;
    std::uint64_t tasks_failed_ = 0;
    bool started_ = false;
    bool stopping_ = false;
};

/** Batch runner executing independent simulation points over a pool. */
class SweepRunner
{
  public:
    /**
     * @param threads pool size; 0 picks the hardware concurrency
     *        (at least 1).
     */
    explicit SweepRunner(std::size_t threads = 0);

    std::size_t threadCount() const { return threads_; }

    /**
     * Run every job over the pool and block until all complete. Jobs
     * are claimed in submission order; a job that throws does not stop
     * the others, and the first exception (lowest job index) is
     * rethrown once the pool has drained.
     */
    void run(const std::vector<std::function<void()>> &jobs) const;

  private:
    std::size_t threads_;
};

} // namespace stonne

#endif // STONNE_COMMON_SWEEP_POOL_HPP
