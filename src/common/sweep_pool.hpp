/**
 * @file
 * Thread-pooled runner for independent simulation jobs.
 *
 * Simulation points are embarrassingly parallel: every point owns its
 * Stonne instance (and therefore its StatsRegistry, watchdog and RNG
 * streams), the SimContext error scopes are thread-local, and logging
 * keeps no mutable global state — so points can run concurrently with
 * no sharing at all. The runner executes a list of closures over a
 * fixed pool, preserves submission order in the results, and rethrows
 * the first failure after the pool drains.
 *
 * Lives in the library (not bench/) because the design-space explorer
 * (src/dse) evaluates its top-K mapping candidates over the same pool
 * the benchmark sweeps use.
 */

#ifndef STONNE_COMMON_SWEEP_POOL_HPP
#define STONNE_COMMON_SWEEP_POOL_HPP

#include <cstddef>
#include <functional>
#include <vector>

namespace stonne {

/** Fixed-size thread pool running independent simulation points. */
class SweepRunner
{
  public:
    /**
     * @param threads pool size; 0 picks the hardware concurrency
     *        (at least 1).
     */
    explicit SweepRunner(std::size_t threads = 0);

    std::size_t threadCount() const { return threads_; }

    /**
     * Run every job over the pool and block until all complete. Jobs
     * are claimed in submission order; a job that throws does not stop
     * the others, and the first exception (lowest job index) is
     * rethrown once the pool has drained.
     */
    void run(const std::vector<std::function<void()>> &jobs) const;

  private:
    std::size_t threads_;
};

} // namespace stonne

#endif // STONNE_COMMON_SWEEP_POOL_HPP
