/**
 * @file
 * Minimal JSON value tree: the emitter behind the output module's
 * stats summary files, plus a strict RFC 8259 parser for the line-
 * delimited request protocol of the simulation service (src/service).
 *
 * Supports nested objects, arrays, string/number/bool values, and
 * stable insertion order.
 */

#ifndef STONNE_COMMON_JSON_WRITER_HPP
#define STONNE_COMMON_JSON_WRITER_HPP

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace stonne {

/**
 * Thrown by JsonValue::parse on malformed input. The message carries
 * the byte offset of the problem so a protocol error response can
 * point at the defect.
 */
class JsonParseError : public std::runtime_error
{
  public:
    explicit JsonParseError(const std::string &msg)
        : std::runtime_error("json: " + msg)
    {
    }
};

/** A JSON value tree with insertion-ordered object members. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

    JsonValue() : kind_(Kind::Null) {}

    static JsonValue makeBool(bool b);
    static JsonValue makeInt(std::int64_t v);
    static JsonValue makeUint(std::uint64_t v);
    static JsonValue makeDouble(double v);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray();
    static JsonValue makeObject();

    /**
     * Strict parse of one JSON document (RFC 8259: objects, arrays,
     * strings with escapes, numbers, true/false/null). Trailing
     * non-whitespace, unterminated constructs, raw control characters
     * in strings and nesting deeper than 64 levels all throw
     * JsonParseError. Duplicate object keys throw, so a consumer can
     * trust member lookups to be unambiguous.
     */
    static JsonValue parse(const std::string &text);

    Kind kind() const { return kind_; }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isString() const { return kind_ == Kind::String; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint ||
               kind_ == Kind::Double;
    }

    // --- checked readers (throw JsonParseError on a kind mismatch) ----

    const std::string &asString() const;
    bool asBool() const;
    /** Any numeric kind, range-checked into the target type. */
    std::int64_t asInt64() const;
    std::uint64_t asUint64() const;
    double asDouble() const;

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Object members in insertion order (empty for non-objects). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const
    {
        return members_;
    }

    /** Array elements (empty for non-arrays). */
    const std::vector<JsonValue> &items() const { return array_; }

    /** Object member access, creating the member when absent. */
    JsonValue &operator[](const std::string &key);

    /** Append to an array value. */
    JsonValue &append(JsonValue v);

    /** Serialize with 2-space indentation. */
    std::string dump(int indent = 2) const;

    /** Compact single-line serialization (the NDJSON protocol form). */
    std::string dumpLine() const;

    // Convenience setters keeping call sites terse.
    void set(const std::string &k, std::int64_t v);
    void set(const std::string &k, std::uint64_t v);
    void set(const std::string &k, double v);
    void set(const std::string &k, const std::string &v);
    void set(const std::string &k, const char *v);
    void set(const std::string &k, bool v);

  private:
    void dumpInto(std::string &out, int indent, int depth) const;
    void dumpCompactInto(std::string &out) const;
    static void escapeInto(std::string &out, const std::string &s);

    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace stonne

#endif // STONNE_COMMON_JSON_WRITER_HPP
