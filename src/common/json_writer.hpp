/**
 * @file
 * Minimal JSON emitter for the output module's stats summary file.
 *
 * Supports exactly what the output module needs: nested objects, arrays,
 * string/number/bool values, and stable insertion order. No parsing.
 */

#ifndef STONNE_COMMON_JSON_WRITER_HPP
#define STONNE_COMMON_JSON_WRITER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace stonne {

/** A JSON value tree with insertion-ordered object members. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

    JsonValue() : kind_(Kind::Null) {}

    static JsonValue makeBool(bool b);
    static JsonValue makeInt(std::int64_t v);
    static JsonValue makeUint(std::uint64_t v);
    static JsonValue makeDouble(double v);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray();
    static JsonValue makeObject();

    Kind kind() const { return kind_; }

    /** Object member access, creating the member when absent. */
    JsonValue &operator[](const std::string &key);

    /** Append to an array value. */
    JsonValue &append(JsonValue v);

    /** Serialize with 2-space indentation. */
    std::string dump(int indent = 2) const;

    // Convenience setters keeping call sites terse.
    void set(const std::string &k, std::int64_t v);
    void set(const std::string &k, std::uint64_t v);
    void set(const std::string &k, double v);
    void set(const std::string &k, const std::string &v);
    void set(const std::string &k, const char *v);
    void set(const std::string &k, bool v);

  private:
    void dumpInto(std::string &out, int indent, int depth) const;
    static void escapeInto(std::string &out, const std::string &s);

    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace stonne

#endif // STONNE_COMMON_JSON_WRITER_HPP
