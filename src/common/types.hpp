/**
 * @file
 * Fundamental scalar types and enums shared by every STONNE module.
 */

#ifndef STONNE_COMMON_TYPES_HPP
#define STONNE_COMMON_TYPES_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace stonne {

/** Signed index type used for tensor shapes and loop bounds. */
using index_t = std::int64_t;

/** Unsigned counter type for cycles and activity counts. */
using count_t = std::uint64_t;

/** Cycle timestamp. */
using cycle_t = std::uint64_t;

/**
 * Numeric format used to represent DNN parameters in the simulated
 * hardware. Only affects the energy/area tables and the per-element byte
 * width; computation is carried out in float throughout so the simulator
 * output is bit-comparable against the CPU reference.
 */
enum class DataType {
    FP8,
    FP16,
    INT8,
    FP32,
};

/** Bytes occupied by one element of the given type in simulated memory. */
inline index_t
bytesPerElement(DataType t)
{
    switch (t) {
      case DataType::FP8:
      case DataType::INT8:
        return 1;
      case DataType::FP16:
        return 2;
      case DataType::FP32:
        return 4;
    }
    return 4;
}

/** Human-readable name of a data type. */
inline const char *
dataTypeName(DataType t)
{
    switch (t) {
      case DataType::FP8:  return "FP8";
      case DataType::FP16: return "FP16";
      case DataType::INT8: return "INT8";
      case DataType::FP32: return "FP32";
    }
    return "?";
}

/**
 * Reduction operation performed by a reduction network. SUM implements
 * dot products; MAX lets pooling layers map onto the same fabric, as the
 * paper notes flexible accelerators can do without SIMD add-ons.
 */
enum class ReduceOp {
    Sum,
    Max,
};

/** Apply a reduce op to two floats. */
inline float
applyReduce(ReduceOp op, float a, float b)
{
    return op == ReduceOp::Sum ? a + b : (a > b ? a : b);
}

/** Identity element of a reduce op. */
inline float
reduceIdentity(ReduceOp op)
{
    return op == ReduceOp::Sum ? 0.0f : -3.4e38f;
}

} // namespace stonne

#endif // STONNE_COMMON_TYPES_HPP
