#include "common/watchdog.hpp"

#include <sstream>

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"
#include "common/sim_context.hpp"

namespace stonne {

Watchdog::Watchdog(cycle_t limit)
    : limit_(limit)
{
    fatalIf(limit == 0, "watchdog_cycles must be positive");
}

void
Watchdog::setLimit(cycle_t limit)
{
    fatalIf(limit == 0, "watchdog_cycles must be positive");
    limit_ = limit;
}

void
Watchdog::addSource(std::string name, SnapshotFn dump)
{
    sources_.emplace_back(std::move(name), std::move(dump));
}

void
Watchdog::checkBudgets(bool check_wall)
{
    if (cycle_budget_ != 0 && cycles_ > cycle_budget_) {
        std::ostringstream msg;
        msg << "simulated-cycle budget exhausted: " << cycles_
            << " cycles observed, budget " << cycle_budget_
            << SimContext::suffix();
        throw BudgetExceededError(BudgetExceededError::Kind::Cycles,
                                  msg.str());
    }
    if (check_wall && wall_deadline_ &&
        std::chrono::steady_clock::now() > *wall_deadline_) {
        std::ostringstream msg;
        msg << "wall-clock budget exhausted at simulated cycle "
            << cycles_ << SimContext::suffix();
        throw BudgetExceededError(BudgetExceededError::Kind::WallClock,
                                  msg.str());
    }
}

void
Watchdog::tick(count_t progress)
{
    ++cycles_;
    if (cycle_budget_ != 0 || wall_deadline_)
        checkBudgets((cycles_ & 8191) == 0);
    if (progress > 0) {
        stall_ = 0;
        return;
    }
    if (++stall_ >= limit_)
        fire();
}

void
Watchdog::bulkTick(cycle_t cycles, count_t progress_per_cycle)
{
    if (cycles == 0)
        return;
    cycles_ += cycles;
    if (cycle_budget_ != 0 || wall_deadline_)
        checkBudgets(true);
    if (progress_per_cycle > 0) {
        stall_ = 0;
        return;
    }
    stall_ += cycles;
    if (stall_ >= limit_)
        fire();
}

std::string
Watchdog::snapshotReport() const
{
    std::ostringstream os;
    for (const auto &[name, dump] : sources_) {
        os << "--- " << name << " ---\n";
        dump(os);
    }
    return os.str();
}

void
Watchdog::fire()
{
    std::ostringstream msg;
    msg << "no forward progress for " << stall_
        << " consecutive cycles (watchdog_cycles = " << limit_
        << ", cycle " << cycles_ << ")" << SimContext::suffix();
    std::string report = snapshotReport();
    stall_ = 0;
    throw DeadlockError(msg.str(),
                        report.empty() ? "(no snapshot sources registered)\n"
                                       : std::move(report));
}

void
Watchdog::reset()
{
    cycles_ = 0;
    stall_ = 0;
}

// The limit is deliberately not serialized: a restore target may run
// with a different `watchdog_cycles` budget (the recovering sweep
// runner widens it on degraded retries) and the configured value must
// win over the snapshot's.
void
Watchdog::saveState(ArchiveWriter &ar) const
{
    ar.putU64(cycles_);
    ar.putU64(stall_);
}

void
Watchdog::loadState(ArchiveReader &ar)
{
    cycles_ = ar.getU64();
    stall_ = ar.getU64();
}

} // namespace stonne
