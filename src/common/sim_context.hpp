/**
 * @file
 * Structured error context for simulation diagnostics.
 *
 * A thread-local stack of key/value scopes (cycle, layer name, unit id,
 * controller phase, ...) that fatal(), panic() and the progress watchdog
 * automatically attach to their messages. A context-free "push on a full
 * fifo" becomes "push on a full fifo [layer=conv1, unit=dn_tree,
 * phase=input-delivery]" without every call site having to thread the
 * information through by hand.
 *
 * Usage:
 *   SimScope scope("layer", layer.name);   // popped on scope exit
 *   SimContext::set("cycle", cycle);       // mutate innermost frame
 */

#ifndef STONNE_COMMON_SIM_CONTEXT_HPP
#define STONNE_COMMON_SIM_CONTEXT_HPP

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace stonne {

/** Thread-local stack of diagnostic key/value frames. */
class SimContext
{
  public:
    /** Push a frame; prefer the RAII SimScope over calling this. */
    static void push(std::string key, std::string value);

    /** Pop the innermost frame (no-op on an empty stack). */
    static void pop();

    /**
     * Update the innermost frame with the given key anywhere in the
     * stack, or push a new frame when the key is absent. Used for
     * values that change while a scope is open (the cycle count).
     */
    static void set(const std::string &key, std::string value);

    template <typename T>
    static void
    set(const std::string &key, const T &value)
    {
        std::ostringstream os;
        os << value;
        set(key, os.str());
    }

    /** Number of frames currently on this thread's stack. */
    static std::size_t depth();

    /** Remove every frame (test isolation). */
    static void clear();

    /**
     * Render the stack as "key=value, key=value" outermost first;
     * empty string when no frame is active.
     */
    static std::string describe();

    /**
     * Rendering wrapped as " [ ... ]" for direct appending to an error
     * message; empty string when no frame is active.
     */
    static std::string suffix();
};

/** RAII frame: pushes on construction, pops on destruction. */
class SimScope
{
  public:
    SimScope(std::string key, std::string value)
    {
        SimContext::push(std::move(key), std::move(value));
    }

    template <typename T>
    SimScope(std::string key, const T &value)
    {
        std::ostringstream os;
        os << value;
        SimContext::push(std::move(key), os.str());
    }

    ~SimScope() { SimContext::pop(); }

    SimScope(const SimScope &) = delete;
    SimScope &operator=(const SimScope &) = delete;
};

} // namespace stonne

#endif // STONNE_COMMON_SIM_CONTEXT_HPP
