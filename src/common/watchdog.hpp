/**
 * @file
 * Progress watchdog and deadlock diagnosis.
 *
 * A controller or network bug that wedges a cycle loop (a delivery that
 * never completes, a drain that never makes progress) used to hang the
 * simulation forever. The watchdog observes a per-cycle progress signal
 * (packages moved, MACs fired, GB grants); when no progress occurs for
 * `limit` consecutive cycles it aborts with a DeadlockError whose report
 * dumps the registered state of every hardware unit — FIFO occupancies,
 * network issue state, controller phase — so the stall site is
 * immediately visible instead of requiring a debugger.
 *
 * The limit comes from the `watchdog_cycles` configuration key.
 */

#ifndef STONNE_COMMON_WATCHDOG_HPP
#define STONNE_COMMON_WATCHDOG_HPP

#include <chrono>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/checkpointable.hpp"
#include "common/types.hpp"

namespace stonne {

/**
 * Thrown when the watchdog detects no forward progress for the
 * configured window. The what() string names the stall; report() holds
 * the full unit/FIFO state snapshot taken at the moment of the stall.
 */
class DeadlockError : public std::runtime_error
{
  public:
    DeadlockError(const std::string &msg, std::string report)
        : std::runtime_error("deadlock: " + msg), report_(std::move(report))
    {
    }

    /** Multi-line snapshot of every registered unit's state. */
    const std::string &report() const { return report_; }

  private:
    std::string report_;
};

/**
 * Thrown when a simulation exceeds an externally imposed budget — the
 * simulated-cycle ceiling (`job_budget_cycles`) or a wall-clock
 * deadline the service's robustness envelope arms per job. Unlike a
 * DeadlockError the run *was* making progress, so a retry under a
 * different execution policy cannot help: callers treat this as a
 * terminal timeout, not a retryable fault.
 */
class BudgetExceededError : public std::runtime_error
{
  public:
    enum class Kind { Cycles, WallClock };

    BudgetExceededError(Kind kind, const std::string &msg)
        : std::runtime_error("budget: " + msg), kind_(kind)
    {
    }

    Kind budgetKind() const { return kind_; }

  private:
    Kind kind_;
};

/** Monitors per-cycle progress and fires DeadlockError on a stall. */
class Watchdog : public Checkpointable
{
  public:
    /** Dumps one component's state into the deadlock report. */
    using SnapshotFn = std::function<void(std::ostream &)>;

    /** @param limit consecutive zero-progress cycles before firing */
    explicit Watchdog(cycle_t limit);

    /** Zero-progress window size. */
    cycle_t limit() const { return limit_; }
    void setLimit(cycle_t limit);

    /**
     * Register a component state dump for the deadlock report.
     * @param name heading printed above the dump
     */
    void addSource(std::string name, SnapshotFn dump);

    /**
     * Record one simulated cycle with `progress` forward-progress
     * events (packages delivered, GB grants, MACs fired). Throws
     * DeadlockError once `limit` consecutive cycles pass without any.
     */
    void tick(count_t progress);

    /**
     * Record `cycles` consecutive simulated cycles that each made
     * `progress_per_cycle` forward-progress events — the closed-form
     * equivalent of calling tick(progress_per_cycle) `cycles` times.
     * Used by the fast-forward engine to skip steady-state regions
     * without losing the watchdog's cycle accounting.
     */
    void bulkTick(cycle_t cycles, count_t progress_per_cycle);

    /**
     * Arm a simulated-cycle ceiling: tick()/bulkTick() throw
     * BudgetExceededError once the cycles observed for the current
     * operation pass `budget` (0 disarms). The budget is a bound, not
     * an exact stop — a fast-forward bulk region may overshoot it
     * before the check fires. A disarmed budget adds no observable
     * behavior, keeping budget-free runs bit-identical.
     */
    void setCycleBudget(cycle_t budget) { cycle_budget_ = budget; }
    cycle_t cycleBudget() const { return cycle_budget_; }

    /**
     * Arm a host wall-clock deadline, checked every 8192 ticks and on
     * every bulk region so the cost stays off the per-cycle hot path;
     * std::nullopt disarms. Crossing it throws BudgetExceededError.
     */
    void setWallDeadline(
        std::optional<std::chrono::steady_clock::time_point> deadline)
    {
        wall_deadline_ = deadline;
    }

    /** Cycles observed since construction/reset. */
    cycle_t cyclesObserved() const { return cycles_; }

    /** Current consecutive zero-progress cycle count. */
    cycle_t stallCycles() const { return stall_; }

    /** Render the registered component dumps (the deadlock report). */
    std::string snapshotReport() const;

    /** Clear the stall window and cycle count (new operation). */
    void reset();

    /** Serialize cycle/stall counts (the limit stays config-owned). */
    void saveState(ArchiveWriter &ar) const override;
    void loadState(ArchiveReader &ar) override;

  private:
    [[noreturn]] void fire();
    void checkBudgets(bool check_wall);

    cycle_t limit_;
    cycle_t cycles_ = 0;
    cycle_t stall_ = 0;
    cycle_t cycle_budget_ = 0; //!< 0 = unlimited
    std::optional<std::chrono::steady_clock::time_point> wall_deadline_;
    std::vector<std::pair<std::string, SnapshotFn>> sources_;
};

} // namespace stonne

#endif // STONNE_COMMON_WATCHDOG_HPP
