/**
 * @file
 * Full-model runner: drives complete DNN inference through the STONNE
 * API, layer by layer (the execution flow of Figure 2b).
 *
 * Compute-intensive operations (convolutions, linear layers, the GEMMs
 * inside self-attention, optionally max pooling) are offloaded to the
 * simulated accelerator; everything else (ReLU, softmax, layer norm,
 * residual adds, reshapes) runs natively, exactly as the paper's
 * modified PyTorch does. runNative() is the pure-CPU reference path used
 * for functional validation.
 */

#ifndef STONNE_FRONTEND_RUNNER_HPP
#define STONNE_FRONTEND_RUNNER_HPP

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "dse/tuner.hpp"
#include "engine/stonne_api.hpp"
#include "frontend/dnn_layer.hpp"
#include "frontend/layer_exec.hpp"

namespace stonne {

/** Runs a DnnModel on a simulated accelerator instance. */
class ModelRunner
{
  public:
    /**
     * @param model the network (must outlive the runner)
     * @param cfg hardware configuration of the simulated accelerator
     */
    ModelRunner(const DnnModel &model, const HardwareConfig &cfg);

    /** Simulated inference: offloads to the accelerator. */
    Tensor run(const Tensor &input);

    /**
     * Resume a simulated inference from a ModelRunner checkpoint
     * written by a previous (possibly killed) run with
     * `checkpoint = ON`. The runner must wrap the same model and a
     * structurally identical configuration; the forward pass continues
     * from the recorded layer boundary and completes bit-identically
     * to the uninterrupted run. Throws CheckpointError on mismatch,
     * corruption, or an engine-only snapshot.
     */
    Tensor resume(const std::string &path);

    /** Native CPU inference (the functional golden path). */
    Tensor runNative(const Tensor &input) const;

    /** Path of the last snapshot run() wrote ("" if none yet). */
    const std::string &lastCheckpointPath() const
    {
        return last_checkpoint_path_;
    }

    /** Per-operation records of the last run(). */
    const std::vector<LayerRunRecord> &records() const { return records_; }

    /** Aggregated simulation result of the last run(). */
    SimulationResult total() const;

    /** Sparse-controller filter scheduling policy (use case 3). */
    void setSchedulingPolicy(SchedulingPolicy policy,
                             std::uint64_t seed = 1);

    /** SNAPEA early cut-off (use case 2); applied only to ReLU-gated
     *  convolutions. */
    void setSnapeaEarlyExit(bool enabled) { snapea_early_exit_ = enabled; }

    /** Offload max pooling when the composition supports it. */
    void setOffloadPooling(bool enabled) { offload_pooling_ = enabled; }

    Stonne &stonne() { return stonne_; }

  private:
    /**
     * Forward-pass cursor: everything the layer loop needs to continue
     * from an arbitrary layer boundary. A checkpoint is exactly one of
     * these (plus the engine state and the per-layer records).
     */
    struct ForwardState {
        std::size_t next_layer = 0;
        Tensor input; //!< model input (layers can re-read it)
        Tensor cur;   //!< output of layer next_layer - 1
        std::map<int, Tensor> saved; //!< save_output skip-link tensors
    };

    Tensor forward(ForwardState st, bool simulate,
                   std::vector<LayerRunRecord> *records) const;

    /** Write a layer-boundary snapshot when the interval elapsed. */
    void maybeCheckpoint(const ForwardState &st,
                         const std::vector<LayerRunRecord> &records) const;

    const DnnModel &model_;
    mutable Stonne stonne_;
    /** Mapping auto-tuner, present only with `autotune = ON`. */
    mutable std::unique_ptr<dse::AutoTuner> tuner_;
    std::vector<LayerRunRecord> records_;
    bool snapea_early_exit_ = true;
    bool offload_pooling_ = true;

    mutable cycle_t last_ckpt_cycles_ = 0;
    mutable std::string last_checkpoint_path_;
};

} // namespace stonne

#endif // STONNE_FRONTEND_RUNNER_HPP
