/**
 * @file
 * Full-model runner: drives complete DNN inference through the STONNE
 * API, layer by layer (the execution flow of Figure 2b).
 *
 * Compute-intensive operations (convolutions, linear layers, the GEMMs
 * inside self-attention, optionally max pooling) are offloaded to the
 * simulated accelerator; everything else (ReLU, softmax, layer norm,
 * residual adds, reshapes) runs natively, exactly as the paper's
 * modified PyTorch does. runNative() is the pure-CPU reference path used
 * for functional validation.
 */

#ifndef STONNE_FRONTEND_RUNNER_HPP
#define STONNE_FRONTEND_RUNNER_HPP

#include <vector>

#include "engine/stonne_api.hpp"
#include "frontend/dnn_layer.hpp"

namespace stonne {

/** Record of one operation executed during a simulated inference. */
struct LayerRunRecord {
    std::string name;
    OpType op;
    bool offloaded = false;
    SimulationResult sim; //!< valid when offloaded
};

/** Runs a DnnModel on a simulated accelerator instance. */
class ModelRunner
{
  public:
    /**
     * @param model the network (must outlive the runner)
     * @param cfg hardware configuration of the simulated accelerator
     */
    ModelRunner(const DnnModel &model, const HardwareConfig &cfg);

    /** Simulated inference: offloads to the accelerator. */
    Tensor run(const Tensor &input);

    /** Native CPU inference (the functional golden path). */
    Tensor runNative(const Tensor &input) const;

    /** Per-operation records of the last run(). */
    const std::vector<LayerRunRecord> &records() const { return records_; }

    /** Aggregated simulation result of the last run(). */
    SimulationResult total() const;

    /** Sparse-controller filter scheduling policy (use case 3). */
    void setSchedulingPolicy(SchedulingPolicy policy,
                             std::uint64_t seed = 1);

    /** SNAPEA early cut-off (use case 2); applied only to ReLU-gated
     *  convolutions. */
    void setSnapeaEarlyExit(bool enabled) { snapea_early_exit_ = enabled; }

    /** Offload max pooling when the composition supports it. */
    void setOffloadPooling(bool enabled) { offload_pooling_ = enabled; }

    Stonne &stonne() { return stonne_; }

  private:
    Tensor forward(const Tensor &input, bool simulate,
                   std::vector<LayerRunRecord> *records) const;

    const DnnModel &model_;
    mutable Stonne stonne_;
    std::vector<LayerRunRecord> records_;
    bool snapea_early_exit_ = true;
    bool offload_pooling_ = true;
};

} // namespace stonne

#endif // STONNE_FRONTEND_RUNNER_HPP
