/**
 * @file
 * SNAPEA prior-simulation pass — use case 2's front-end extension.
 *
 * The paper adds a function to the input module that statically reorders
 * weights by sign (building the index table the new memory controller
 * consumes) before simulation starts. The table itself lives with the
 * controller (SnapeaReorderTable); this pass adds the front-end side:
 * building tables for whole models and estimating how much computation
 * the exact-mode cut-off will save for a given input.
 */

#ifndef STONNE_FRONTEND_SNAPEA_PASS_HPP
#define STONNE_FRONTEND_SNAPEA_PASS_HPP

#include <vector>

#include "controller/snapea_controller.hpp"
#include "frontend/dnn_layer.hpp"

namespace stonne {

/** Per-convolution-layer outcome of the SNAPEA pass. */
struct SnapeaLayerEstimate {
    std::string layer;
    count_t total_macs = 0;
    count_t skippable_macs = 0;

    double
    cutFraction() const
    {
        return total_macs > 0
            ? static_cast<double>(skippable_macs) /
              static_cast<double>(total_macs)
            : 0.0;
    }
};

/** Build reorder tables for every convolution layer of a model. */
std::vector<SnapeaReorderTable> buildSnapeaTables(const DnnModel &model);

/**
 * Walk one convolution with the exact-mode cut rule and report how many
 * MACs it would skip for the given input (an upper bound on SNAPEA's
 * savings at infinite granularity; the controller checks per fold).
 */
SnapeaLayerEstimate estimateCutSavings(const LayerSpec &layer,
                                       const Tensor &input,
                                       const Tensor &weights,
                                       const Tensor &bias,
                                       const SnapeaReorderTable &table);

} // namespace stonne

#endif // STONNE_FRONTEND_SNAPEA_PASS_HPP
