#include "frontend/model_zoo.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "frontend/model_builder.hpp"
#include "tensor/prune.hpp"

namespace stonne {

namespace {

/** Per-scale construction parameters. */
struct ScaleParams {
    index_t img;      //!< input spatial size
    index_t ch_div;   //!< channel divisor
    index_t fc_div;   //!< fully-connected width divisor
    index_t classes;  //!< classifier width
    index_t seq;      //!< BERT sequence length
    index_t hidden;   //!< BERT hidden size
    index_t heads;    //!< BERT attention heads
    index_t blocks;   //!< BERT encoder blocks
    index_t ff;       //!< BERT feed-forward width
    index_t resnet_depth; //!< bottleneck blocks per ResNet stage
    /** Input batch N (vision models; BERT's rank-2 input has none). */
    index_t batch = 1;
};

ScaleParams
scaleParams(ModelScale scale)
{
    switch (scale) {
      case ModelScale::Tiny:
        return {32, 8, 32, 10, 16, 32, 2, 1, 64, 1};
      case ModelScale::Bench:
        return {56, 2, 8, 100, 48, 128, 4, 2, 256, 2};
      case ModelScale::Full:
        return {224, 1, 1, 1000, 128, 768, 12, 12, 3072, 3};
    }
    return {56, 2, 8, 100, 48, 128, 4, 2, 256, 2};
}

/** Incremental graph builder with shape tracking and weight synthesis. */
index_t
ch(index_t v, index_t divisor)
{
    return std::max<index_t>(1, v / divisor);
}

// ---------------------------------------------------------------------
// The seven model builders.
// ---------------------------------------------------------------------

DnnModel
buildAlexNet(const ScaleParams &p, std::uint64_t seed)
{
    ModelBuilder b("Alexnet", modelSparsity(ModelId::AlexNet), seed);
    b.setInput(3, p.img, p.img, p.batch);
    b.conv("conv1", ch(64, p.ch_div), 11, 4, 2);
    b.relu();
    b.maybeMaxPool(3, 2);
    b.conv("conv2", ch(192, p.ch_div), 5, 1, 2);
    b.relu();
    b.maybeMaxPool(3, 2);
    b.conv("conv3", ch(384, p.ch_div), 3, 1, 1);
    b.relu();
    b.conv("conv4", ch(256, p.ch_div), 3, 1, 1);
    b.relu();
    b.conv("conv5", ch(256, p.ch_div), 3, 1, 1);
    b.relu();
    b.maybeMaxPool(3, 2);
    b.flatten();
    b.linear("fc6", ch(4096, p.fc_div));
    b.relu();
    b.linear("fc7", ch(4096, p.fc_div));
    b.relu();
    b.linear("fc8", p.classes);
    b.logSoftmax();
    return b.finish();
}

DnnModel
buildVgg16(const ScaleParams &p, std::uint64_t seed)
{
    ModelBuilder b("VGG-16", modelSparsity(ModelId::Vgg16), seed);
    b.setInput(3, p.img, p.img, p.batch);
    const index_t widths[5] = {ch(64, p.ch_div), ch(128, p.ch_div),
                               ch(256, p.ch_div), ch(512, p.ch_div),
                               ch(512, p.ch_div)};
    const index_t depth[5] = {2, 2, 3, 3, 3};
    int idx = 0;
    for (int stage = 0; stage < 5; ++stage) {
        for (index_t d = 0; d < depth[stage]; ++d) {
            b.conv("conv" + std::to_string(++idx), widths[stage], 3, 1, 1);
            b.relu();
        }
        b.maybeMaxPool(2, 2);
    }
    b.flatten();
    b.linear("fc1", ch(4096, p.fc_div));
    b.relu();
    b.linear("fc2", ch(4096, p.fc_div));
    b.relu();
    b.linear("fc3", p.classes);
    b.logSoftmax();
    return b.finish();
}

DnnModel
buildResNet50(const ScaleParams &p, std::uint64_t seed)
{
    ModelBuilder b("Resnets-50", modelSparsity(ModelId::ResNet50), seed);
    b.setInput(3, p.img, p.img, p.batch);
    b.conv("conv1", ch(64, p.ch_div), 7, 2, 3);
    b.relu();
    b.maybeMaxPool(2, 2);

    const index_t widths[4] = {ch(64, p.ch_div), ch(128, p.ch_div),
                               ch(256, p.ch_div), ch(512, p.ch_div)};
    int block_id = 0;
    for (int stage = 0; stage < 4; ++stage) {
        const index_t w = widths[stage];
        for (index_t d = 0; d < p.resnet_depth; ++d) {
            const index_t stride =
                (stage > 0 && d == 0 && b.spatialX() > 1) ? 2 : 1;
            const int saved = b.last();
            const std::string tag = "res" + std::to_string(++block_id);
            b.conv(tag + "_a", w, 1, 1, 0);
            b.relu();
            b.conv(tag + "_b", w, 3, stride, 1);
            b.relu();
            const int main_out = b.conv(tag + "_c", w * 4, 1, 1, 0);
            // Projection shortcut when shape changes.
            if (stride != 1 || b.channels() != w * 4 ||
                b.shapeOf(saved)[1] != w * 4) {
                b.conv(tag + "_proj", w * 4, 1, stride, 0, 1, saved);
                b.addResidual(main_out);
            } else {
                b.addResidual(saved);
            }
            b.relu();
        }
    }
    b.globalAvgPool();
    b.flatten();
    b.linear("fc", p.classes);
    b.logSoftmax();
    return b.finish();
}

DnnModel
buildMobileNetV1(const ScaleParams &p, std::uint64_t seed,
                 index_t blocks_limit, const char *name, double sparsity,
                 bool with_head)
{
    ModelBuilder b(name, sparsity, seed);
    b.setInput(3, p.img, p.img, p.batch);
    b.conv("conv0", ch(32, p.ch_div), 3, 2, 1);
    b.relu();

    struct Block { index_t out; index_t stride; };
    const Block plan[13] = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
        {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
        {512, 1}, {1024, 2}, {1024, 1},
    };
    const index_t nblocks =
        std::min<index_t>(blocks_limit, 13);
    for (index_t i = 0; i < nblocks; ++i) {
        const index_t c = b.channels();
        const index_t stride =
            (plan[i].stride == 2 && b.spatialX() > 1) ? 2 : 1;
        const std::string tag = "dw" + std::to_string(i + 1);
        // Factorized convolution: depthwise then pointwise.
        b.conv(tag + "_dw", c, 3, stride, 1, /*groups=*/c);
        b.relu();
        b.conv(tag + "_pw", ch(plan[i].out, p.ch_div), 1, 1, 0);
        b.relu();
    }
    if (with_head) {
        b.globalAvgPool();
        b.flatten();
        b.linear("fc", p.classes);
        b.logSoftmax();
    }
    return b.finish();
}

DnnModel
buildSqueezeNet(const ScaleParams &p, std::uint64_t seed)
{
    ModelBuilder b("Squeezenet", modelSparsity(ModelId::SqueezeNet), seed);
    b.setInput(3, p.img, p.img, p.batch);
    b.conv("conv1", ch(64, p.ch_div), 3, 2, 0);
    b.relu();
    b.maybeMaxPool(3, 2);

    auto fire = [&](int id, index_t squeeze, index_t expand) {
        const std::string tag = "fire" + std::to_string(id);
        b.conv(tag + "_s1", ch(squeeze, p.ch_div), 1, 1, 0);
        const int s_out = b.relu();
        b.conv(tag + "_e1", ch(expand, p.ch_div), 1, 1, 0);
        const int e1_out = b.relu();
        b.conv(tag + "_e3", ch(expand, p.ch_div), 3, 1, 1, 1, s_out);
        b.relu();
        b.concat(e1_out);
    };

    fire(2, 16, 64);
    fire(3, 16, 64);
    b.maybeMaxPool(3, 2);
    fire(4, 32, 128);
    fire(5, 32, 128);
    b.maybeMaxPool(3, 2);
    fire(6, 48, 192);
    fire(7, 48, 192);
    fire(8, 64, 256);
    fire(9, 64, 256);
    b.conv("conv10", p.classes, 1, 1, 0);
    b.relu();
    b.globalAvgPool();
    b.flatten();
    b.logSoftmax();
    return b.finish();
}

DnnModel
buildSsdMobileNet(const ScaleParams &p, std::uint64_t seed)
{
    // MobileNet backbone (first 11 factorized blocks) + SSD extra
    // feature layers and a detection head.
    ModelBuilder b("SSD-Mobilenets", modelSparsity(ModelId::SsdMobileNet),
              seed + 1);
    b.setInput(3, p.img, p.img, p.batch);
    b.conv("conv0", ch(32, p.ch_div), 3, 2, 1);
    b.relu();
    struct Block { index_t out; index_t stride; };
    const Block plan[11] = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
        {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
    };
    for (index_t i = 0; i < 11; ++i) {
        const index_t c = b.channels();
        const index_t stride =
            (plan[i].stride == 2 && b.spatialX() > 1) ? 2 : 1;
        const std::string tag = "dw" + std::to_string(i + 1);
        b.conv(tag + "_dw", c, 3, stride, 1, c);
        b.relu();
        b.conv(tag + "_pw", ch(plan[i].out, p.ch_div), 1, 1, 0);
        b.relu();
    }
    // Extra feature layers.
    b.conv("extra1_1", ch(256, p.ch_div), 1, 1, 0);
    b.relu();
    b.conv("extra1_2", ch(512, p.ch_div), 3,
           b.spatialX() > 1 ? 2 : 1, 1);
    b.relu();
    b.conv("extra2_1", ch(128, p.ch_div), 1, 1, 0);
    b.relu();
    b.conv("extra2_2", ch(256, p.ch_div), 3,
           b.spatialX() > 1 ? 2 : 1, 1);
    b.relu();
    // Detection head: class scores per anchor, then a linear regressor.
    b.conv("head_cls", ch(6 * 21, p.ch_div), 3, 1, 1);
    b.relu();
    b.flatten();
    b.linear("box_fc", p.classes);
    b.logSoftmax();
    return b.finish();
}

DnnModel
buildBert(const ScaleParams &p, std::uint64_t seed)
{
    ModelBuilder b("BERT", modelSparsity(ModelId::Bert), seed);
    b.setInput2d(p.seq, p.hidden);

    for (index_t blk = 0; blk < p.blocks; ++blk) {
        const std::string tag = "enc" + std::to_string(blk + 1);
        const int block_in = b.last();
        b.attention(tag + "_attn", p.heads);
        b.addResidual(block_in);
        b.layerNorm();
        const int attn_out = b.last();
        b.linear(tag + "_ff1", p.ff);
        b.relu();
        b.linear(tag + "_ff2", p.hidden);
        b.addResidual(attn_out);
        b.layerNorm();
    }
    b.linear("classifier", p.classes);
    b.logSoftmax();
    return b.finish();
}

} // namespace

std::vector<ModelId>
allModels()
{
    return {ModelId::MobileNetV1, ModelId::SqueezeNet, ModelId::AlexNet,
            ModelId::ResNet50, ModelId::Vgg16, ModelId::SsdMobileNet,
            ModelId::Bert};
}

std::vector<ModelId>
cnnModels()
{
    return {ModelId::AlexNet, ModelId::SqueezeNet, ModelId::Vgg16,
            ModelId::ResNet50};
}

const char *
modelName(ModelId id)
{
    switch (id) {
      case ModelId::MobileNetV1:  return "Mobilenets-V1";
      case ModelId::SqueezeNet:   return "Squeezenet";
      case ModelId::AlexNet:      return "Alexnet";
      case ModelId::ResNet50:     return "Resnets-50";
      case ModelId::Vgg16:        return "VGG-16";
      case ModelId::SsdMobileNet: return "SSD-Mobilenets";
      case ModelId::Bert:         return "BERT";
    }
    return "?";
}

const char *
modelShortName(ModelId id)
{
    switch (id) {
      case ModelId::MobileNetV1:  return "M";
      case ModelId::SqueezeNet:   return "S";
      case ModelId::AlexNet:      return "A";
      case ModelId::ResNet50:     return "R";
      case ModelId::Vgg16:        return "V";
      case ModelId::SsdMobileNet: return "S-M";
      case ModelId::Bert:         return "B";
    }
    return "?";
}

double
modelSparsity(ModelId id)
{
    // Table I average weight sparsity after unstructured pruning.
    switch (id) {
      case ModelId::MobileNetV1:  return 0.75;
      case ModelId::SqueezeNet:   return 0.70;
      case ModelId::AlexNet:      return 0.78;
      case ModelId::ResNet50:     return 0.89;
      case ModelId::Vgg16:        return 0.90;
      case ModelId::SsdMobileNet: return 0.75;
      case ModelId::Bert:         return 0.60;
    }
    return 0.0;
}

DnnModel
buildModel(ModelId id, ModelScale scale, std::uint64_t seed, index_t batch)
{
    fatalIf(batch <= 0, "model batch must be positive, got ", batch);
    fatalIf(batch > 1 && id == ModelId::Bert,
            "BERT's (seq, hidden) input carries no batch axis");
    ScaleParams p = scaleParams(scale);
    p.batch = batch;
    switch (id) {
      case ModelId::MobileNetV1:
        return buildMobileNetV1(p, seed, 13, "Mobilenets-V1",
                                modelSparsity(id), true);
      case ModelId::SqueezeNet:
        return buildSqueezeNet(p, seed);
      case ModelId::AlexNet:
        return buildAlexNet(p, seed);
      case ModelId::ResNet50:
        return buildResNet50(p, seed);
      case ModelId::Vgg16:
        return buildVgg16(p, seed);
      case ModelId::SsdMobileNet:
        return buildSsdMobileNet(p, seed);
      case ModelId::Bert:
        return buildBert(p, seed);
    }
    fatal("unknown model id");
}

Tensor
makeModelInput(ModelId id, ModelScale scale, std::uint64_t seed,
               index_t batch)
{
    fatalIf(batch <= 0, "input batch must be positive, got ", batch);
    const ScaleParams p = scaleParams(scale);
    Rng rng(seed);
    if (id == ModelId::Bert) {
        fatalIf(batch > 1,
                "BERT's (seq, hidden) input carries no batch axis");
        Tensor t({p.seq, p.hidden});
        t.fillUniform(rng, -1.0f, 1.0f);
        return t;
    }
    Tensor t({batch, 3, p.img, p.img});
    t.fillUniform(rng, 0.0f, 1.0f);
    return t;
}

} // namespace stonne
