#include "frontend/runner.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "checkpoint/checkpoint.hpp"
#include "common/logging.hpp"
#include "tensor/reference.hpp"

namespace stonne {

namespace {

/** Channel-wise concatenation of two (N, C, X, Y) tensors. */
Tensor
concatChannels(const Tensor &a, const Tensor &b)
{
    fatalIf(a.rank() != 4 || b.rank() != 4 || a.dim(0) != b.dim(0) ||
            a.dim(2) != b.dim(2) || a.dim(3) != b.dim(3),
            "concat shape mismatch");
    Tensor out({a.dim(0), a.dim(1) + b.dim(1), a.dim(2), a.dim(3)});
    for (index_t n = 0; n < a.dim(0); ++n) {
        for (index_t c = 0; c < a.dim(1); ++c)
            for (index_t x = 0; x < a.dim(2); ++x)
                for (index_t y = 0; y < a.dim(3); ++y)
                    out.at(n, c, x, y) = a.at(n, c, x, y);
        for (index_t c = 0; c < b.dim(1); ++c)
            for (index_t x = 0; x < a.dim(2); ++x)
                for (index_t y = 0; y < a.dim(3); ++y)
                    out.at(n, a.dim(1) + c, x, y) = b.at(n, c, x, y);
    }
    return out;
}

/** Column slice [c0, c0 + w) of a rank-2 tensor. */
Tensor
sliceCols(const Tensor &t, index_t c0, index_t w)
{
    Tensor out({t.dim(0), w});
    for (index_t i = 0; i < t.dim(0); ++i)
        for (index_t j = 0; j < w; ++j)
            out.at(i, j) = t.at(i, c0 + j);
    return out;
}

/** Transposed column slice: (w x rows) from columns [c0, c0 + w). */
Tensor
sliceColsT(const Tensor &t, index_t c0, index_t w)
{
    Tensor out({w, t.dim(0)});
    for (index_t i = 0; i < t.dim(0); ++i)
        for (index_t j = 0; j < w; ++j)
            out.at(j, i) = t.at(i, c0 + j);
    return out;
}

} // namespace

ModelRunner::ModelRunner(const DnnModel &model, const HardwareConfig &cfg)
    : model_(model), stonne_(cfg)
{
    // The runner writes its own layer-boundary snapshots (carrying the
    // forward-pass cursor); the engine's per-operation auto-checkpoint
    // would race it to the same file with a resume-blind snapshot.
    stonne_.setAutoCheckpoint(false);

    if (cfg.autotune) {
        dse::TuneOptions opts;
        opts.top_k = cfg.dse_top_k;
        opts.cache_file = cfg.dse_cache_file;
        tuner_ = std::make_unique<dse::AutoTuner>(cfg, opts);
    }
}

void
ModelRunner::setSchedulingPolicy(SchedulingPolicy policy, std::uint64_t seed)
{
    stonne_.setSchedulingPolicy(policy, seed);
}

Tensor
ModelRunner::run(const Tensor &input)
{
    records_.clear();
    last_checkpoint_path_.clear();
    last_ckpt_cycles_ = stonne_.totalCycles();
    ForwardState st;
    st.input = input;
    st.cur = input;
    return forward(std::move(st), true, &records_);
}

Tensor
ModelRunner::resume(const std::string &path)
{
    ArchiveReader ar(path);
    stonne_.loadCheckpointFrom(ar);
    if (ar.atEnd())
        ar.fail("the snapshot carries engine state only, not a model "
                "run; it cannot resume a forward pass");
    ar.enterSection("runner");
    const std::string model_name = ar.getString();
    if (model_name != model_.name)
        ar.fail("the snapshot belongs to model '" + model_name +
                "', this runner wraps '" + model_.name + "'");
    ForwardState st;
    st.next_layer = static_cast<std::size_t>(ar.getU64());
    st.input = loadTensor(ar);
    st.cur = loadTensor(ar);
    const std::uint64_t n_saved = ar.getU64();
    for (std::uint64_t i = 0; i < n_saved; ++i) {
        const int idx = static_cast<int>(ar.getI64());
        st.saved.emplace(idx, loadTensor(ar));
    }
    records_.clear();
    const std::uint64_t n_records = ar.getU64();
    records_.reserve(n_records);
    for (std::uint64_t i = 0; i < n_records; ++i) {
        LayerRunRecord r;
        r.name = ar.getString();
        r.op = static_cast<OpType>(ar.getU32());
        r.offloaded = ar.getBool();
        r.sim = loadSimulationResult(ar);
        records_.push_back(std::move(r));
    }
    ar.leaveSection();

    last_checkpoint_path_ = path;
    last_ckpt_cycles_ = stonne_.totalCycles();
    return forward(std::move(st), true, &records_);
}

Tensor
ModelRunner::runNative(const Tensor &input) const
{
    ForwardState st;
    st.input = input;
    st.cur = input;
    return forward(std::move(st), false, nullptr);
}

void
ModelRunner::maybeCheckpoint(const ForwardState &st,
                             const std::vector<LayerRunRecord> &records)
    const
{
    const HardwareConfig &cfg = stonne_.config();
    if (!cfg.checkpoint)
        return;
    if (stonne_.totalCycles() - last_ckpt_cycles_ <
        static_cast<cycle_t>(cfg.checkpoint_interval_cycles))
        return;

    ArchiveWriter ar;
    stonne_.saveCheckpointTo(ar, kCheckpointKindModelRun);
    ar.beginSection("runner");
    ar.putString(model_.name);
    ar.putU64(st.next_layer);
    saveTensor(ar, st.input);
    saveTensor(ar, st.cur);
    ar.putU64(st.saved.size());
    for (const auto &[idx, t] : st.saved) {
        ar.putI64(idx);
        saveTensor(ar, t);
    }
    ar.putU64(records.size());
    for (const LayerRunRecord &r : records) {
        ar.putString(r.name);
        ar.putU32(static_cast<std::uint32_t>(r.op));
        ar.putBool(r.offloaded);
        saveSimulationResult(ar, r.sim);
    }
    ar.endSection();
    ar.writeFile(cfg.checkpoint_file);

    last_ckpt_cycles_ = stonne_.totalCycles();
    last_checkpoint_path_ = cfg.checkpoint_file;
}

SimulationResult
ModelRunner::total() const
{
    SimulationResult t;
    t.layer_name = model_.name;
    t.accelerator = stonne_.config().name;
    bool first = true;
    for (const LayerRunRecord &r : records_) {
        if (!r.offloaded)
            continue;
        if (first) {
            t = r.sim;
            t.layer_name = model_.name;
            first = false;
        } else {
            t.merge(r.sim);
        }
    }
    if (t.checkpoint_path.empty())
        t.checkpoint_path = last_checkpoint_path_;
    return t;
}

Tensor
ModelRunner::forward(ForwardState st, bool simulate,
                     std::vector<LayerRunRecord> *records) const
{
    std::map<int, Tensor> &saved = st.saved;
    Tensor &cur = st.cur;

    auto record_sim = [&](const std::string &name, OpType op,
                          const SimulationResult &sim) {
        if (records) {
            LayerRunRecord r;
            r.name = name;
            r.op = op;
            r.offloaded = true;
            r.sim = sim;
            records->push_back(std::move(r));
        }
    };
    auto record_native = [&](const std::string &name, OpType op) {
        if (records) {
            LayerRunRecord r;
            r.name = name;
            r.op = op;
            records->push_back(std::move(r));
        }
    };

    // With `autotune = ON`, every dense operation's tile is searched
    // before the operation runs; the tuning summary is stamped onto the
    // operation's own SimulationResult so total() aggregates it.
    std::optional<DseSummary> pending_dse;
    auto tune_tile = [&](const LayerSpec &spec) -> std::optional<Tile> {
        if (!tuner_)
            return std::nullopt;
        const dse::TuneReport rep = tuner_->tuneLayer(spec);
        pending_dse = rep.summary();
        return rep.best;
    };
    auto stamp_dse = [&](SimulationResult sim) {
        if (pending_dse) {
            sim.dse = *pending_dse;
            pending_dse.reset();
        }
        return sim;
    };

    auto run_linear = [&](const Tensor &in, const Tensor &w,
                          const Tensor &bias, const std::string &name) {
        if (!simulate)
            return ref::linear(in, w, bias);
        const LayerSpec spec =
            LayerSpec::linear(name, in.dim(0), in.dim(1), w.dim(0));
        stonne_.configureLinear(spec, tune_tile(spec));
        stonne_.configureData(in, w, bias);
        const SimulationResult sim = stamp_dse(stonne_.runOperation());
        record_sim(name, OpType::Linear, sim);
        return stonne_.output();
    };

    auto run_gemm = [&](const Tensor &a, const Tensor &b,
                        const std::string &name) {
        if (!simulate)
            return ref::gemm(a, b);
        const LayerSpec spec = LayerSpec::gemmLayer(
            name, a.dim(0), b.dim(1), a.dim(1));
        stonne_.configureDmm(spec, tune_tile(spec));
        stonne_.configureData(b, a);
        const SimulationResult sim = stamp_dse(stonne_.runOperation());
        record_sim(name, OpType::SelfAttention, sim);
        return stonne_.output();
    };

    auto resolve = [&](int idx) -> const Tensor & {
        if (idx == DnnLayer::kFromModelInput)
            return st.input;
        return saved.at(idx);
    };

    for (std::size_t i = st.next_layer; i < model_.layers.size(); ++i) {
        const DnnLayer &l = model_.layers[i];
        const Tensor &in = l.input_from == -1 ? cur
                                              : resolve(l.input_from);

        switch (l.op) {
          case OpType::Conv2d: {
            if (simulate) {
                const bool relu_next =
                    i + 1 < model_.layers.size() &&
                    model_.layers[i + 1].op == OpType::ReLU;
                stonne_.setSnapeaEarlyExit(snapea_early_exit_ &&
                                           relu_next);
                stonne_.configureConv(l.spec, tune_tile(l.spec));
                stonne_.configureData(in, l.weights, l.bias);
                const SimulationResult sim =
                    stamp_dse(stonne_.runOperation());
                record_sim(l.name, l.op, sim);
                cur = stonne_.output();
            } else {
                cur = ref::conv2d(in, l.weights, l.bias, l.spec.conv);
            }
            break;
          }
          case OpType::Linear:
            cur = run_linear(in, l.weights, l.bias, l.name);
            break;
          case OpType::MaxPool2d: {
            const bool offload = simulate && offload_pooling_ &&
                stonne_.accelerator().supportsMaxPool();
            if (offload) {
                stonne_.configureMaxPool(l.spec);
                stonne_.configureData(in, Tensor());
                const SimulationResult sim = stonne_.runOperation();
                record_sim(l.name, l.op, sim);
                cur = stonne_.output();
            } else {
                record_native(l.name, l.op);
                cur = ref::maxPool2d(in, l.spec.pool_window,
                                     l.spec.pool_stride);
            }
            break;
          }
          case OpType::GlobalAvgPool:
            record_native(l.name, l.op);
            cur = ref::globalAvgPool(in);
            break;
          case OpType::ReLU:
            record_native(l.name, l.op);
            cur = ref::relu(in);
            break;
          case OpType::AddResidual:
            record_native(l.name, l.op);
            cur = ref::add(in, resolve(l.operand_from));
            break;
          case OpType::Concat:
            record_native(l.name, l.op);
            cur = concatChannels(in, resolve(l.operand_from));
            break;
          case OpType::Flatten:
            record_native(l.name, l.op);
            cur = in.reshaped({in.dim(0),
                               in.size() / std::max<index_t>(1, in.dim(0))});
            break;
          case OpType::Softmax:
            record_native(l.name, l.op);
            cur = ref::softmax(in);
            break;
          case OpType::LogSoftmax:
            record_native(l.name, l.op);
            cur = ref::logSoftmax(in);
            break;
          case OpType::LayerNorm:
            record_native(l.name, l.op);
            cur = ref::layerNorm(in);
            break;
          case OpType::SelfAttention: {
            const AttentionSpec &a = l.attention;
            const Tensor q = run_linear(in, l.weights, l.bias,
                                        l.name + ".q");
            const Tensor k = run_linear(in, l.extra_weights[0],
                                        l.extra_bias[0], l.name + ".k");
            const Tensor v = run_linear(in, l.extra_weights[1],
                                        l.extra_bias[1], l.name + ".v");
            const index_t dk = a.headDim();
            const float scale =
                1.0f / std::sqrt(static_cast<float>(dk));
            Tensor ctx({a.seq_len, a.d_model});
            for (index_t h = 0; h < a.heads; ++h) {
                const Tensor qh = sliceCols(q, h * dk, dk);
                const Tensor kht = sliceColsT(k, h * dk, dk);
                Tensor scores = run_gemm(
                    qh, kht,
                    l.name + ".scores.h" + std::to_string(h));
                for (index_t e = 0; e < scores.size(); ++e)
                    scores.at(e) *= scale;
                const Tensor probs = ref::softmax(scores);
                const Tensor vh = sliceCols(v, h * dk, dk);
                const Tensor ctx_h = run_gemm(
                    probs, vh, l.name + ".ctx.h" + std::to_string(h));
                for (index_t s = 0; s < a.seq_len; ++s)
                    for (index_t d = 0; d < dk; ++d)
                        ctx.at(s, h * dk + d) = ctx_h.at(s, d);
            }
            cur = run_linear(ctx, l.extra_weights[2], l.extra_bias[2],
                             l.name + ".out");
            break;
          }
        }

        if (l.save_output)
            saved[static_cast<int>(i)] = cur;

        // Layer boundaries are the quiescent points of the engine (the
        // controllers run whole operations synchronously), so this is
        // where a snapshot can capture a resumable cursor.
        st.next_layer = i + 1;
        if (simulate && records)
            maybeCheckpoint(st, *records);
    }
    return cur;
}

} // namespace stonne
