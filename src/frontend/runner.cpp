#include "frontend/runner.hpp"

#include <cmath>
#include <map>

#include "common/logging.hpp"
#include "tensor/reference.hpp"

namespace stonne {

namespace {

/** Channel-wise concatenation of two (N, C, X, Y) tensors. */
Tensor
concatChannels(const Tensor &a, const Tensor &b)
{
    fatalIf(a.rank() != 4 || b.rank() != 4 || a.dim(0) != b.dim(0) ||
            a.dim(2) != b.dim(2) || a.dim(3) != b.dim(3),
            "concat shape mismatch");
    Tensor out({a.dim(0), a.dim(1) + b.dim(1), a.dim(2), a.dim(3)});
    for (index_t n = 0; n < a.dim(0); ++n) {
        for (index_t c = 0; c < a.dim(1); ++c)
            for (index_t x = 0; x < a.dim(2); ++x)
                for (index_t y = 0; y < a.dim(3); ++y)
                    out.at(n, c, x, y) = a.at(n, c, x, y);
        for (index_t c = 0; c < b.dim(1); ++c)
            for (index_t x = 0; x < a.dim(2); ++x)
                for (index_t y = 0; y < a.dim(3); ++y)
                    out.at(n, a.dim(1) + c, x, y) = b.at(n, c, x, y);
    }
    return out;
}

/** Column slice [c0, c0 + w) of a rank-2 tensor. */
Tensor
sliceCols(const Tensor &t, index_t c0, index_t w)
{
    Tensor out({t.dim(0), w});
    for (index_t i = 0; i < t.dim(0); ++i)
        for (index_t j = 0; j < w; ++j)
            out.at(i, j) = t.at(i, c0 + j);
    return out;
}

/** Transposed column slice: (w x rows) from columns [c0, c0 + w). */
Tensor
sliceColsT(const Tensor &t, index_t c0, index_t w)
{
    Tensor out({w, t.dim(0)});
    for (index_t i = 0; i < t.dim(0); ++i)
        for (index_t j = 0; j < w; ++j)
            out.at(j, i) = t.at(i, c0 + j);
    return out;
}

} // namespace

ModelRunner::ModelRunner(const DnnModel &model, const HardwareConfig &cfg)
    : model_(model), stonne_(cfg)
{
}

void
ModelRunner::setSchedulingPolicy(SchedulingPolicy policy, std::uint64_t seed)
{
    stonne_.setSchedulingPolicy(policy, seed);
}

Tensor
ModelRunner::run(const Tensor &input)
{
    records_.clear();
    return forward(input, true, &records_);
}

Tensor
ModelRunner::runNative(const Tensor &input) const
{
    return forward(input, false, nullptr);
}

SimulationResult
ModelRunner::total() const
{
    SimulationResult t;
    t.layer_name = model_.name;
    t.accelerator = stonne_.config().name;
    bool first = true;
    for (const LayerRunRecord &r : records_) {
        if (!r.offloaded)
            continue;
        if (first) {
            t = r.sim;
            t.layer_name = model_.name;
            first = false;
        } else {
            t.merge(r.sim);
        }
    }
    return t;
}

Tensor
ModelRunner::forward(const Tensor &input, bool simulate,
                     std::vector<LayerRunRecord> *records) const
{
    std::map<int, Tensor> saved;
    Tensor cur = input;

    auto record_sim = [&](const std::string &name, OpType op,
                          const SimulationResult &sim) {
        if (records) {
            LayerRunRecord r;
            r.name = name;
            r.op = op;
            r.offloaded = true;
            r.sim = sim;
            records->push_back(std::move(r));
        }
    };
    auto record_native = [&](const std::string &name, OpType op) {
        if (records) {
            LayerRunRecord r;
            r.name = name;
            r.op = op;
            records->push_back(std::move(r));
        }
    };

    auto run_linear = [&](const Tensor &in, const Tensor &w,
                          const Tensor &bias, const std::string &name) {
        if (!simulate)
            return ref::linear(in, w, bias);
        const LayerSpec spec =
            LayerSpec::linear(name, in.dim(0), in.dim(1), w.dim(0));
        stonne_.configureLinear(spec);
        stonne_.configureData(in, w, bias);
        const SimulationResult sim = stonne_.runOperation();
        record_sim(name, OpType::Linear, sim);
        return stonne_.output();
    };

    auto run_gemm = [&](const Tensor &a, const Tensor &b,
                        const std::string &name) {
        if (!simulate)
            return ref::gemm(a, b);
        const LayerSpec spec = LayerSpec::gemmLayer(
            name, a.dim(0), b.dim(1), a.dim(1));
        stonne_.configureDmm(spec);
        stonne_.configureData(b, a);
        const SimulationResult sim = stonne_.runOperation();
        record_sim(name, OpType::SelfAttention, sim);
        return stonne_.output();
    };

    auto resolve = [&](int idx) -> const Tensor & {
        if (idx == DnnLayer::kFromModelInput)
            return input;
        return saved.at(idx);
    };

    for (std::size_t i = 0; i < model_.layers.size(); ++i) {
        const DnnLayer &l = model_.layers[i];
        const Tensor &in = l.input_from == -1 ? cur
                                              : resolve(l.input_from);

        switch (l.op) {
          case OpType::Conv2d: {
            if (simulate) {
                const bool relu_next =
                    i + 1 < model_.layers.size() &&
                    model_.layers[i + 1].op == OpType::ReLU;
                stonne_.setSnapeaEarlyExit(snapea_early_exit_ &&
                                           relu_next);
                stonne_.configureConv(l.spec);
                stonne_.configureData(in, l.weights, l.bias);
                const SimulationResult sim = stonne_.runOperation();
                record_sim(l.name, l.op, sim);
                cur = stonne_.output();
            } else {
                cur = ref::conv2d(in, l.weights, l.bias, l.spec.conv);
            }
            break;
          }
          case OpType::Linear:
            cur = run_linear(in, l.weights, l.bias, l.name);
            break;
          case OpType::MaxPool2d: {
            const bool offload = simulate && offload_pooling_ &&
                stonne_.accelerator().supportsMaxPool();
            if (offload) {
                stonne_.configureMaxPool(l.spec);
                stonne_.configureData(in, Tensor());
                const SimulationResult sim = stonne_.runOperation();
                record_sim(l.name, l.op, sim);
                cur = stonne_.output();
            } else {
                record_native(l.name, l.op);
                cur = ref::maxPool2d(in, l.spec.pool_window,
                                     l.spec.pool_stride);
            }
            break;
          }
          case OpType::GlobalAvgPool:
            record_native(l.name, l.op);
            cur = ref::globalAvgPool(in);
            break;
          case OpType::ReLU:
            record_native(l.name, l.op);
            cur = ref::relu(in);
            break;
          case OpType::AddResidual:
            record_native(l.name, l.op);
            cur = ref::add(in, resolve(l.operand_from));
            break;
          case OpType::Concat:
            record_native(l.name, l.op);
            cur = concatChannels(in, resolve(l.operand_from));
            break;
          case OpType::Flatten:
            record_native(l.name, l.op);
            cur = in.reshaped({in.dim(0),
                               in.size() / std::max<index_t>(1, in.dim(0))});
            break;
          case OpType::Softmax:
            record_native(l.name, l.op);
            cur = ref::softmax(in);
            break;
          case OpType::LogSoftmax:
            record_native(l.name, l.op);
            cur = ref::logSoftmax(in);
            break;
          case OpType::LayerNorm:
            record_native(l.name, l.op);
            cur = ref::layerNorm(in);
            break;
          case OpType::SelfAttention: {
            const AttentionSpec &a = l.attention;
            const Tensor q = run_linear(in, l.weights, l.bias,
                                        l.name + ".q");
            const Tensor k = run_linear(in, l.extra_weights[0],
                                        l.extra_bias[0], l.name + ".k");
            const Tensor v = run_linear(in, l.extra_weights[1],
                                        l.extra_bias[1], l.name + ".v");
            const index_t dk = a.headDim();
            const float scale =
                1.0f / std::sqrt(static_cast<float>(dk));
            Tensor ctx({a.seq_len, a.d_model});
            for (index_t h = 0; h < a.heads; ++h) {
                const Tensor qh = sliceCols(q, h * dk, dk);
                const Tensor kht = sliceColsT(k, h * dk, dk);
                Tensor scores = run_gemm(
                    qh, kht,
                    l.name + ".scores.h" + std::to_string(h));
                for (index_t e = 0; e < scores.size(); ++e)
                    scores.at(e) *= scale;
                const Tensor probs = ref::softmax(scores);
                const Tensor vh = sliceCols(v, h * dk, dk);
                const Tensor ctx_h = run_gemm(
                    probs, vh, l.name + ".ctx.h" + std::to_string(h));
                for (index_t s = 0; s < a.seq_len; ++s)
                    for (index_t d = 0; d < dk; ++d)
                        ctx.at(s, h * dk + d) = ctx_h.at(s, d);
            }
            cur = run_linear(ctx, l.extra_weights[2], l.extra_bias[2],
                             l.name + ".out");
            break;
          }
        }

        if (l.save_output)
            saved[static_cast<int>(i)] = cur;
    }
    return cur;
}

} // namespace stonne
