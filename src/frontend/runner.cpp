#include "frontend/runner.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "checkpoint/checkpoint.hpp"
#include "common/logging.hpp"
#include "tensor/reference.hpp"

namespace stonne {

ModelRunner::ModelRunner(const DnnModel &model, const HardwareConfig &cfg)
    : model_(model), stonne_(cfg)
{
    // The runner writes its own layer-boundary snapshots (carrying the
    // forward-pass cursor); the engine's per-operation auto-checkpoint
    // would race it to the same file with a resume-blind snapshot.
    stonne_.setAutoCheckpoint(false);

    if (cfg.autotune) {
        dse::TuneOptions opts;
        opts.top_k = cfg.dse_top_k;
        opts.cache_file = cfg.dse_cache_file;
        tuner_ = std::make_unique<dse::AutoTuner>(cfg, opts);
    }
}

void
ModelRunner::setSchedulingPolicy(SchedulingPolicy policy, std::uint64_t seed)
{
    stonne_.setSchedulingPolicy(policy, seed);
}

Tensor
ModelRunner::run(const Tensor &input)
{
    records_.clear();
    last_checkpoint_path_.clear();
    last_ckpt_cycles_ = stonne_.totalCycles();
    ForwardState st;
    st.input = input;
    st.cur = input;
    return forward(std::move(st), true, &records_);
}

Tensor
ModelRunner::resume(const std::string &path)
{
    ArchiveReader ar(path);
    stonne_.loadCheckpointFrom(ar);
    if (ar.atEnd())
        ar.fail("the snapshot carries engine state only, not a model "
                "run; it cannot resume a forward pass");
    ar.enterSection("runner");
    const std::string model_name = ar.getString();
    if (model_name != model_.name)
        ar.fail("the snapshot belongs to model '" + model_name +
                "', this runner wraps '" + model_.name + "'");
    ForwardState st;
    st.next_layer = static_cast<std::size_t>(ar.getU64());
    st.input = loadTensor(ar);
    st.cur = loadTensor(ar);
    const std::uint64_t n_saved = ar.getU64();
    for (std::uint64_t i = 0; i < n_saved; ++i) {
        const int idx = static_cast<int>(ar.getI64());
        st.saved.emplace(idx, loadTensor(ar));
    }
    records_.clear();
    const std::uint64_t n_records = ar.getU64();
    records_.reserve(n_records);
    for (std::uint64_t i = 0; i < n_records; ++i) {
        LayerRunRecord r;
        r.name = ar.getString();
        r.op = static_cast<OpType>(ar.getU32());
        r.offloaded = ar.getBool();
        r.sim = loadSimulationResult(ar);
        records_.push_back(std::move(r));
    }
    ar.leaveSection();

    last_checkpoint_path_ = path;
    last_ckpt_cycles_ = stonne_.totalCycles();
    return forward(std::move(st), true, &records_);
}

Tensor
ModelRunner::runNative(const Tensor &input) const
{
    ForwardState st;
    st.input = input;
    st.cur = input;
    return forward(std::move(st), false, nullptr);
}

void
ModelRunner::maybeCheckpoint(const ForwardState &st,
                             const std::vector<LayerRunRecord> &records)
    const
{
    const HardwareConfig &cfg = stonne_.config();
    if (!cfg.checkpoint)
        return;
    if (stonne_.totalCycles() - last_ckpt_cycles_ <
        static_cast<cycle_t>(cfg.checkpoint_interval_cycles))
        return;

    ArchiveWriter ar;
    stonne_.saveCheckpointTo(ar, kCheckpointKindModelRun);
    ar.beginSection("runner");
    ar.putString(model_.name);
    ar.putU64(st.next_layer);
    saveTensor(ar, st.input);
    saveTensor(ar, st.cur);
    ar.putU64(st.saved.size());
    for (const auto &[idx, t] : st.saved) {
        ar.putI64(idx);
        saveTensor(ar, t);
    }
    ar.putU64(records.size());
    for (const LayerRunRecord &r : records) {
        ar.putString(r.name);
        ar.putU32(static_cast<std::uint32_t>(r.op));
        ar.putBool(r.offloaded);
        saveSimulationResult(ar, r.sim);
    }
    ar.endSection();
    ar.writeFile(cfg.checkpoint_file);

    last_ckpt_cycles_ = stonne_.totalCycles();
    last_checkpoint_path_ = cfg.checkpoint_file;
}

SimulationResult
ModelRunner::total() const
{
    SimulationResult t;
    t.layer_name = model_.name;
    t.accelerator = stonne_.config().name;
    bool first = true;
    for (const LayerRunRecord &r : records_) {
        if (!r.offloaded)
            continue;
        if (first) {
            t = r.sim;
            t.layer_name = model_.name;
            first = false;
        } else {
            t.merge(r.sim);
        }
    }
    if (t.checkpoint_path.empty())
        t.checkpoint_path = last_checkpoint_path_;
    return t;
}

Tensor
ModelRunner::forward(ForwardState st, bool simulate,
                     std::vector<LayerRunRecord> *records) const
{
    LayerExecOptions opts;
    opts.simulate = simulate;
    opts.snapea_early_exit = snapea_early_exit_;
    opts.offload_pooling = offload_pooling_;
    LayerExecutor exec(model_, stonne_, tuner_.get(), opts, records);

    for (std::size_t i = st.next_layer; i < model_.layers.size(); ++i) {
        st.cur = exec.runLayer(i, st.cur, st.input, st.saved);

        if (model_.layers[i].save_output)
            st.saved[static_cast<int>(i)] = st.cur;

        // Layer boundaries are the quiescent points of the engine (the
        // controllers run whole operations synchronously), so this is
        // where a snapshot can capture a resumable cursor.
        st.next_layer = i + 1;
        if (simulate && records)
            maybeCheckpoint(st, *records);
    }
    return st.cur;
}

} // namespace stonne
