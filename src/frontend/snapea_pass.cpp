#include "frontend/snapea_pass.hpp"

#include "common/logging.hpp"

namespace stonne {

std::vector<SnapeaReorderTable>
buildSnapeaTables(const DnnModel &model)
{
    std::vector<SnapeaReorderTable> tables;
    for (const DnnLayer &l : model.layers)
        if (l.op == OpType::Conv2d)
            tables.push_back(SnapeaReorderTable::build(l.weights));
    return tables;
}

SnapeaLayerEstimate
estimateCutSavings(const LayerSpec &layer, const Tensor &input,
                   const Tensor &weights, const Tensor &bias,
                   const SnapeaReorderTable &table)
{
    fatalIf(layer.kind != LayerKind::Convolution,
            "SNAPEA estimates apply to convolutions");
    const Conv2dShape &c = layer.conv;
    const index_t cg = c.cPerGroup();
    const index_t kg = c.kPerGroup();
    const index_t window = c.R * c.S * cg;
    const index_t xo = c.outX(), yo = c.outY();

    SnapeaLayerEstimate est;
    est.layer = layer.name;

    for (index_t n = 0; n < c.N; ++n) {
        for (index_t ko = 0; ko < c.K; ++ko) {
            const index_t g = ko / kg;
            const auto &ord = table.order[static_cast<std::size_t>(ko)];
            const auto stream = static_cast<index_t>(ord.size());
            const index_t first_neg =
                table.first_negative[static_cast<std::size_t>(ko)];
            const float *w = weights.data() + ko * window;
            for (index_t ox = 0; ox < xo; ++ox) {
                for (index_t oy = 0; oy < yo; ++oy) {
                    est.total_macs += static_cast<count_t>(stream);
                    float psum = bias.empty() ? 0.0f : bias.at(ko);
                    for (index_t e = 0; e < stream; ++e) {
                        if (e >= first_neg && psum <= 0.0f) {
                            est.skippable_macs +=
                                static_cast<count_t>(stream - e);
                            break;
                        }
                        const index_t we =
                            ord[static_cast<std::size_t>(e)];
                        const index_t ch = we / (c.R * c.S);
                        const index_t rem = we % (c.R * c.S);
                        const index_t r = rem / c.S;
                        const index_t s = rem % c.S;
                        const index_t ix = ox * c.stride + r - c.padding;
                        const index_t iy = oy * c.stride + s - c.padding;
                        float x = 0.0f;
                        if (ix >= 0 && ix < c.X && iy >= 0 && iy < c.Y)
                            x = input.at(n, g * cg + ch, ix, iy);
                        psum += w[we] * x;
                    }
                }
            }
        }
    }
    return est;
}

} // namespace stonne
