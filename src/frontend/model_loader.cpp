#include "frontend/model_loader.hpp"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/logging.hpp"
#include "frontend/model_builder.hpp"

namespace stonne {

namespace {

/** Parsed `key=value` arguments of one statement. */
class Args
{
  public:
    Args(std::istringstream &in, int lineno) : lineno_(lineno)
    {
        std::string tok;
        while (in >> tok) {
            const std::size_t eq = tok.find('=');
            fatalIf(eq == std::string::npos || eq == 0,
                    "model line ", lineno, ": expected key=value, got '",
                    tok, "'");
            kv_[tok.substr(0, eq)] = tok.substr(eq + 1);
        }
    }

    index_t
    integer(const std::string &key, index_t fallback) const
    {
        auto it = kv_.find(key);
        if (it == kv_.end())
            return fallback;
        try {
            return static_cast<index_t>(std::stoll(it->second));
        } catch (const std::exception &) {
            fatal("model line ", lineno_, ": key '", key,
                  "' expects an integer, got '", it->second, "'");
        }
    }

    index_t
    required(const std::string &key) const
    {
        fatalIf(kv_.find(key) == kv_.end(), "model line ", lineno_,
                ": missing required key '", key, "'");
        return integer(key, 0);
    }

    std::string
    text(const std::string &key, const std::string &fallback = "") const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? fallback : it->second;
    }

  private:
    std::map<std::string, std::string> kv_;
    int lineno_;
};

} // namespace

DnnModel
loadModelFromText(const std::string &text, std::uint64_t default_seed)
{
    std::istringstream in(text);
    std::string line;
    int lineno = 0;

    std::string model_name = "model";
    double sparsity = 0.0;
    std::uint64_t seed = default_seed;
    std::unique_ptr<ModelBuilder> b;
    std::map<std::string, int> labels;
    bool has_input = false;

    auto resolve = [&](const std::string &label, int lno) -> int {
        if (label == "input")
            return DnnLayer::kFromModelInput;
        auto it = labels.find(label);
        fatalIf(it == labels.end(), "model line ", lno,
                ": unknown label '", label, "'");
        return it->second;
    };
    auto builder = [&]() -> ModelBuilder & {
        fatalIf(!b, "model line ", lineno,
                ": an 'input' statement must come first");
        return *b;
    };
    auto maybe_save = [&](const Args &args, int layer_idx) {
        const std::string label = args.text("save");
        if (!label.empty()) {
            builder().markSaved(layer_idx);
            labels[label] = layer_idx;
        }
    };

    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        std::string op;
        if (!(ls >> op))
            continue;

        if (op == "model") {
            ls >> model_name;
        } else if (op == "sparsity") {
            fatalIf(!(ls >> sparsity) || sparsity < 0.0 || sparsity >= 1.0,
                    "model line ", lineno,
                    ": sparsity expects a ratio in [0, 1)");
            fatalIf(b != nullptr, "model line ", lineno,
                    ": sparsity must precede the input statement");
        } else if (op == "seed") {
            fatalIf(!(ls >> seed), "model line ", lineno,
                    ": seed expects an integer");
            fatalIf(b != nullptr, "model line ", lineno,
                    ": seed must precede the input statement");
        } else if (op == "input") {
            index_t c = 0, x = 0, y = 0;
            fatalIf(!(ls >> c >> x >> y), "model line ", lineno,
                    ": input expects <channels> <X> <Y>");
            b = std::make_unique<ModelBuilder>(model_name, sparsity,
                                               seed);
            b->setInput(c, x, y);
            has_input = true;
        } else if (op == "input2d") {
            index_t rows = 0, feats = 0;
            fatalIf(!(ls >> rows >> feats), "model line ", lineno,
                    ": input2d expects <rows> <features>");
            b = std::make_unique<ModelBuilder>(model_name, sparsity,
                                               seed);
            b->setInput2d(rows, feats);
            has_input = true;
        } else if (op == "conv") {
            const Args args(ls, lineno);
            const std::string from = args.text("from");
            const int idx = builder().conv(
                args.text("name", "conv"), args.required("out"),
                args.required("kernel"), args.integer("stride", 1),
                args.integer("pad", 0), args.integer("groups", 1),
                from.empty() ? -1 : resolve(from, lineno));
            maybe_save(args, idx);
        } else if (op == "linear") {
            const Args args(ls, lineno);
            const int idx = builder().linear(args.text("name", "linear"),
                                             args.required("out"));
            maybe_save(args, idx);
        } else if (op == "attention") {
            const Args args(ls, lineno);
            const int idx = builder().attention(
                args.text("name", "attention"), args.required("heads"));
            maybe_save(args, idx);
        } else if (op == "maxpool") {
            const Args args(ls, lineno);
            const int idx = builder().maybeMaxPool(
                args.required("window"), args.required("stride"));
            maybe_save(args, idx);
        } else if (op == "relu" || op == "gap" || op == "flatten" ||
                   op == "softmax" || op == "logsoftmax" ||
                   op == "layernorm") {
            const Args args(ls, lineno);
            int idx = -1;
            if (op == "relu")
                idx = builder().relu();
            else if (op == "gap")
                idx = builder().globalAvgPool();
            else if (op == "flatten")
                idx = builder().flatten();
            else if (op == "softmax")
                idx = builder().softmax();
            else if (op == "logsoftmax")
                idx = builder().logSoftmax();
            else
                idx = builder().layerNorm();
            maybe_save(args, idx);
        } else if (op == "add" || op == "concat") {
            const Args args(ls, lineno);
            const std::string with = args.text("with");
            fatalIf(with.empty(), "model line ", lineno, ": '", op,
                    "' requires with=<label>");
            const int operand = resolve(with, lineno);
            const int idx = op == "add"
                ? builder().addResidual(operand)
                : builder().concat(operand);
            maybe_save(args, idx);
        } else {
            fatal("model line ", lineno, ": unknown op '", op, "'");
        }
    }

    fatalIf(!has_input, "model description has no input statement");
    fatalIf(b->last() < 0, "model description has no layers");
    return b->finish();
}

DnnModel
loadModelFromFile(const std::string &path, std::uint64_t default_seed)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open model description '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return loadModelFromText(ss.str(), default_seed);
}

} // namespace stonne
