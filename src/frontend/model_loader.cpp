#include "frontend/model_loader.hpp"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/logging.hpp"
#include "frontend/model_builder.hpp"

namespace stonne {

namespace {

/** Parsed `key=value` arguments of one statement. */
class Args
{
  public:
    Args(std::istringstream &in, const std::string &origin, int lineno)
        : origin_(origin), lineno_(lineno)
    {
        std::string tok;
        while (in >> tok) {
            const std::size_t eq = tok.find('=');
            fatalIf(eq == std::string::npos || eq == 0,
                    origin_, ":", lineno, ": expected key=value, got '",
                    tok, "'");
            const std::string key = tok.substr(0, eq);
            const auto [it, inserted] =
                kv_.emplace(key, tok.substr(eq + 1));
            fatalIf(!inserted, origin_, ":", lineno,
                    ": duplicate key '", key, "'");
        }
    }

    index_t
    integer(const std::string &key, index_t fallback) const
    {
        auto it = kv_.find(key);
        if (it == kv_.end())
            return fallback;
        // std::stoll stops at the first bad character, so without the
        // full-consumption check 'out=16x' silently configures 16.
        long long v = 0;
        std::size_t used = 0;
        try {
            v = std::stoll(it->second, &used);
        } catch (const std::exception &) {
            fatal(origin_, ":", lineno_, ": key '", key,
                  "' expects an integer, got '", it->second, "'");
        }
        fatalIf(used != it->second.size(), origin_, ":", lineno_,
                ": key '", key, "' expects an integer, got '", it->second,
                "' (trailing characters after the number)");
        return static_cast<index_t>(v);
    }

    index_t
    required(const std::string &key) const
    {
        fatalIf(kv_.find(key) == kv_.end(), origin_, ":", lineno_,
                ": missing required key '", key, "'");
        return integer(key, 0);
    }

    std::string
    text(const std::string &key, const std::string &fallback = "") const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? fallback : it->second;
    }

  private:
    std::map<std::string, std::string> kv_;
    const std::string &origin_;
    int lineno_;
};

} // namespace

DnnModel
loadModelFromText(const std::string &text, std::uint64_t default_seed,
                  const std::string &origin)
{
    std::istringstream in(text);
    std::string line;
    int lineno = 0;

    std::string model_name = "model";
    double sparsity = 0.0;
    std::uint64_t seed = default_seed;
    std::unique_ptr<ModelBuilder> b;
    std::map<std::string, int> labels;
    bool has_input = false;

    auto resolve = [&](const std::string &label, int lno) -> int {
        if (label == "input")
            return DnnLayer::kFromModelInput;
        auto it = labels.find(label);
        fatalIf(it == labels.end(), origin, ":", lno,
                ": unknown label '", label, "'");
        return it->second;
    };
    auto builder = [&]() -> ModelBuilder & {
        fatalIf(!b, origin, ":", lineno,
                ": an 'input' statement must come first");
        return *b;
    };
    // Positional statements must consume the whole line: without this,
    // 'input 3 32 32 junk' and 'seed 5x' misparse silently.
    auto expect_end = [&](std::istringstream &ls, const char *stmt) {
        std::string extra;
        fatalIf(static_cast<bool>(ls >> extra), origin, ":", lineno,
                ": trailing characters after the ", stmt,
                " statement: '", extra, "'");
    };
    auto maybe_save = [&](const Args &args, int layer_idx) {
        const std::string label = args.text("save");
        if (!label.empty()) {
            builder().markSaved(layer_idx);
            labels[label] = layer_idx;
        }
    };

    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        std::string op;
        if (!(ls >> op))
            continue;

        if (op == "model") {
            fatalIf(!(ls >> model_name), origin, ":", lineno,
                    ": model expects a name");
            expect_end(ls, "model");
        } else if (op == "sparsity") {
            fatalIf(!(ls >> sparsity) || sparsity < 0.0 || sparsity >= 1.0,
                    origin, ":", lineno,
                    ": sparsity expects a ratio in [0, 1)");
            expect_end(ls, "sparsity");
            fatalIf(b != nullptr, origin, ":", lineno,
                    ": sparsity must precede the input statement");
        } else if (op == "seed") {
            fatalIf(!(ls >> seed), origin, ":", lineno,
                    ": seed expects an integer");
            expect_end(ls, "seed");
            fatalIf(b != nullptr, origin, ":", lineno,
                    ": seed must precede the input statement");
        } else if (op == "input") {
            index_t c = 0, x = 0, y = 0;
            fatalIf(!(ls >> c >> x >> y), origin, ":", lineno,
                    ": input expects <channels> <X> <Y> [batch]");
            index_t n = 1;
            if (ls >> n)
                fatalIf(n <= 0, origin, ":", lineno,
                        ": input batch must be positive, got ", n);
            else
                ls.clear();
            expect_end(ls, "input");
            fatalIf(c <= 0 || x <= 0 || y <= 0, origin, ":", lineno,
                    ": input dimensions must be positive, got ", c, " ",
                    x, " ", y);
            b = std::make_unique<ModelBuilder>(model_name, sparsity,
                                               seed);
            b->setInput(c, x, y, n);
            has_input = true;
        } else if (op == "input2d") {
            index_t rows = 0, feats = 0;
            fatalIf(!(ls >> rows >> feats), origin, ":", lineno,
                    ": input2d expects <rows> <features>");
            expect_end(ls, "input2d");
            fatalIf(rows <= 0 || feats <= 0, origin, ":", lineno,
                    ": input2d dimensions must be positive, got ", rows,
                    " ", feats);
            b = std::make_unique<ModelBuilder>(model_name, sparsity,
                                               seed);
            b->setInput2d(rows, feats);
            has_input = true;
        } else if (op == "conv") {
            const Args args(ls, origin, lineno);
            const std::string from = args.text("from");
            const int idx = builder().conv(
                args.text("name", "conv"), args.required("out"),
                args.required("kernel"), args.integer("stride", 1),
                args.integer("pad", 0), args.integer("groups", 1),
                from.empty() ? -1 : resolve(from, lineno));
            maybe_save(args, idx);
        } else if (op == "linear") {
            const Args args(ls, origin, lineno);
            const int idx = builder().linear(args.text("name", "linear"),
                                             args.required("out"));
            maybe_save(args, idx);
        } else if (op == "attention") {
            const Args args(ls, origin, lineno);
            const int idx = builder().attention(
                args.text("name", "attention"), args.required("heads"));
            maybe_save(args, idx);
        } else if (op == "maxpool") {
            const Args args(ls, origin, lineno);
            const int idx = builder().maybeMaxPool(
                args.required("window"), args.required("stride"));
            maybe_save(args, idx);
        } else if (op == "relu" || op == "gap" || op == "flatten" ||
                   op == "softmax" || op == "logsoftmax" ||
                   op == "layernorm") {
            const Args args(ls, origin, lineno);
            int idx = -1;
            if (op == "relu")
                idx = builder().relu();
            else if (op == "gap")
                idx = builder().globalAvgPool();
            else if (op == "flatten")
                idx = builder().flatten();
            else if (op == "softmax")
                idx = builder().softmax();
            else if (op == "logsoftmax")
                idx = builder().logSoftmax();
            else
                idx = builder().layerNorm();
            maybe_save(args, idx);
        } else if (op == "add" || op == "concat") {
            const Args args(ls, origin, lineno);
            const std::string with = args.text("with");
            fatalIf(with.empty(), origin, ":", lineno, ": '", op,
                    "' requires with=<label>");
            const int operand = resolve(with, lineno);
            const int idx = op == "add"
                ? builder().addResidual(operand)
                : builder().concat(operand);
            maybe_save(args, idx);
        } else {
            fatal(origin, ":", lineno, ": unknown op '", op, "'");
        }
    }

    fatalIf(!has_input, origin,
            ": model description has no input statement");
    fatalIf(b->last() < 0, origin, ": model description has no layers");
    return b->finish();
}

DnnModel
loadModelFromFile(const std::string &path, std::uint64_t default_seed)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open model description '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    fatalIf(!in.good() && !in.eof(),
            "error reading model description '", path, "'");
    return loadModelFromText(ss.str(), default_seed, path);
}

} // namespace stonne
