/**
 * @file
 * Text-format model loader — the second front-end.
 *
 * The paper connects STONNE to both PyTorch and Caffe; this loader
 * plays the Caffe role: a declarative, prototxt-inspired line format
 * describing a network, from which a runnable DnnModel is built (with
 * synthetic weights pruned to the declared sparsity). One op per line:
 *
 *   model my_net
 *   sparsity 0.7
 *   seed 11
 *   input 3 32 32              # channels X Y   (or: input2d rows feats)
 *   conv name=c1 out=16 kernel=3 stride=2 pad=1
 *   relu save=s1
 *   conv name=e3 out=16 kernel=3 pad=1 from=s1
 *   relu
 *   concat with=s1
 *   maxpool window=2 stride=2
 *   gap
 *   flatten
 *   linear name=fc out=10
 *   logsoftmax
 *
 * `save=<label>` names a layer's output; `from=`/`with=` reference a
 * label (or the literal `input`). `attention name=a heads=4` builds a
 * BERT-style self-attention block; `add with=<label>` a residual.
 * `#` starts a comment. Unknown ops or dangling labels are fatal().
 */

#ifndef STONNE_FRONTEND_MODEL_LOADER_HPP
#define STONNE_FRONTEND_MODEL_LOADER_HPP

#include <string>

#include "frontend/dnn_layer.hpp"

namespace stonne {

/**
 * Build a model from an in-memory description. Malformed statements —
 * trailing junk after a number (`seed 5x`), truncated argument lists,
 * non-numeric values — are rejected with a `origin:line` diagnostic;
 * @param origin names the source in error messages (a file path, or
 * "<string>" for in-memory text).
 */
DnnModel loadModelFromText(const std::string &text,
                           std::uint64_t default_seed = 7,
                           const std::string &origin = "<string>");

/** Build a model from a description file on disk. */
DnnModel loadModelFromFile(const std::string &path,
                           std::uint64_t default_seed = 7);

} // namespace stonne

#endif // STONNE_FRONTEND_MODEL_LOADER_HPP
