/**
 * @file
 * Mini DL-framework layer graph — the PyTorch stand-in (Input Module).
 *
 * The paper connects STONNE to PyTorch/Caffe so complete, unmodified DNN
 * models can run with the compute-intensive operations offloaded to the
 * simulated accelerator and the rest executed natively. This header
 * defines the equivalent self-contained graph representation: a mostly
 * sequential list of operations with explicit routing for residual
 * connections (ResNet), channel concatenation (SqueezeNet fire modules)
 * and self-attention (BERT).
 */

#ifndef STONNE_FRONTEND_DNN_LAYER_HPP
#define STONNE_FRONTEND_DNN_LAYER_HPP

#include <string>
#include <vector>

#include "controller/layer.hpp"
#include "tensor/tensor.hpp"

namespace stonne {

/** Operations a model graph can contain. */
enum class OpType {
    Conv2d,        //!< offloaded (ConfigureCONV)
    Linear,        //!< offloaded (ConfigureLinear)
    MaxPool2d,     //!< offloaded when the composition supports it
    GlobalAvgPool, //!< native
    ReLU,          //!< native
    AddResidual,   //!< native; adds a saved earlier output
    Concat,        //!< native; channel-concatenates a saved output
    Flatten,       //!< native reshape
    Softmax,       //!< native
    LogSoftmax,    //!< native
    LayerNorm,     //!< native
    SelfAttention, //!< composite; its GEMMs are offloaded (ConfigureDMM)
};

const char *opTypeName(OpType t);

/** Self-attention block parameters (BERT encoder). */
struct AttentionSpec {
    index_t seq_len = 1;
    index_t d_model = 1;
    index_t heads = 1;

    index_t headDim() const { return d_model / heads; }
};

/** One node of the model graph. */
struct DnnLayer {
    /** Sentinel for input_from / operand_from: the model's input. */
    static constexpr int kFromModelInput = -2;

    std::string name;
    OpType op = OpType::ReLU;

    /** Accelerator-facing spec for Conv2d / Linear / MaxPool2d. */
    LayerSpec spec;

    /** Attention parameters for SelfAttention. */
    AttentionSpec attention;

    /** Primary parameters (conv filters, linear weights, Wq). */
    Tensor weights;
    Tensor bias;

    /** Extra parameter sets (SelfAttention: Wk, Wv, Wo + biases). */
    std::vector<Tensor> extra_weights;
    std::vector<Tensor> extra_bias;

    /**
     * Input routing: -1 takes the previous layer's output,
     * kFromModelInput takes the model input, any other value the saved
     * output of the layer with that index.
     */
    int input_from = -1;

    /** For AddResidual / Concat: index of the saved second operand
     *  (or kFromModelInput). */
    int operand_from = -1;

    /** Whether later layers reference this layer's output. */
    bool save_output = false;
};

/** A complete model: a named graph plus its pruning metadata. */
struct DnnModel {
    std::string name;
    double target_weight_sparsity = 0.0;
    std::vector<DnnLayer> layers;

    /** Measured sparsity across all conv/linear/attention weights. */
    double measuredWeightSparsity() const;

    /** Total dense MACs of the offloadable layers. */
    index_t totalMacs() const;

    /** Count of layers that would be offloaded to an accelerator. */
    index_t offloadableLayers() const;
};

} // namespace stonne

#endif // STONNE_FRONTEND_DNN_LAYER_HPP
