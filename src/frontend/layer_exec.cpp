#include "frontend/layer_exec.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "tensor/reference.hpp"

namespace stonne {

namespace {

/** Channel-wise concatenation of two (N, C, X, Y) tensors. */
Tensor
concatChannels(const Tensor &a, const Tensor &b)
{
    fatalIf(a.rank() != 4 || b.rank() != 4 || a.dim(0) != b.dim(0) ||
            a.dim(2) != b.dim(2) || a.dim(3) != b.dim(3),
            "concat shape mismatch");
    Tensor out({a.dim(0), a.dim(1) + b.dim(1), a.dim(2), a.dim(3)});
    for (index_t n = 0; n < a.dim(0); ++n) {
        for (index_t c = 0; c < a.dim(1); ++c)
            for (index_t x = 0; x < a.dim(2); ++x)
                for (index_t y = 0; y < a.dim(3); ++y)
                    out.at(n, c, x, y) = a.at(n, c, x, y);
        for (index_t c = 0; c < b.dim(1); ++c)
            for (index_t x = 0; x < a.dim(2); ++x)
                for (index_t y = 0; y < a.dim(3); ++y)
                    out.at(n, a.dim(1) + c, x, y) = b.at(n, c, x, y);
    }
    return out;
}

/** Column slice [c0, c0 + w) of a rank-2 tensor. */
Tensor
sliceCols(const Tensor &t, index_t c0, index_t w)
{
    Tensor out({t.dim(0), w});
    for (index_t i = 0; i < t.dim(0); ++i)
        for (index_t j = 0; j < w; ++j)
            out.at(i, j) = t.at(i, c0 + j);
    return out;
}

/** Transposed column slice: (w x rows) from columns [c0, c0 + w). */
Tensor
sliceColsT(const Tensor &t, index_t c0, index_t w)
{
    Tensor out({w, t.dim(0)});
    for (index_t i = 0; i < t.dim(0); ++i)
        for (index_t j = 0; j < w; ++j)
            out.at(j, i) = t.at(i, c0 + j);
    return out;
}

} // namespace

LayerExecutor::LayerExecutor(const DnnModel &model, Stonne &stonne,
                             dse::AutoTuner *tuner,
                             const LayerExecOptions &opts,
                             std::vector<LayerRunRecord> *records)
    : model_(model), stonne_(stonne), tuner_(tuner), opts_(opts),
      records_(records)
{
}

const Tensor &
LayerExecutor::resolve(int idx, const Tensor &model_input,
                       const std::map<int, Tensor> &saved) const
{
    if (idx == DnnLayer::kFromModelInput)
        return model_input;
    return saved.at(idx);
}

void
LayerExecutor::recordSim(const std::string &name, OpType op,
                         const SimulationResult &sim)
{
    if (records_) {
        LayerRunRecord r;
        r.name = name;
        r.op = op;
        r.offloaded = true;
        r.sim = sim;
        records_->push_back(std::move(r));
    }
}

void
LayerExecutor::recordNative(const std::string &name, OpType op)
{
    if (records_) {
        LayerRunRecord r;
        r.name = name;
        r.op = op;
        records_->push_back(std::move(r));
    }
}

// With `autotune = ON`, every dense operation's tile is searched before
// the operation runs; the tuning summary is stamped onto the operation's
// own SimulationResult so aggregation picks it up.
std::optional<Tile>
LayerExecutor::tuneTile(const LayerSpec &spec)
{
    if (!tuner_)
        return std::nullopt;
    const dse::TuneReport rep = tuner_->tuneLayer(spec);
    pending_dse_ = rep.summary();
    return rep.best;
}

SimulationResult
LayerExecutor::stampDse(SimulationResult sim)
{
    if (pending_dse_) {
        sim.dse = *pending_dse_;
        pending_dse_.reset();
    }
    return sim;
}

Tensor
LayerExecutor::runLinear(const Tensor &in, const Tensor &w,
                         const Tensor &bias, const std::string &name)
{
    if (!opts_.simulate)
        return ref::linear(in, w, bias);
    const LayerSpec spec =
        LayerSpec::linear(name, in.dim(0), in.dim(1), w.dim(0));
    stonne_.configureLinear(spec, tuneTile(spec));
    stonne_.configureData(in, w, bias);
    const SimulationResult sim = stampDse(stonne_.runOperation());
    recordSim(name, OpType::Linear, sim);
    return stonne_.output();
}

Tensor
LayerExecutor::runGemm(const Tensor &a, const Tensor &b,
                       const std::string &name)
{
    if (!opts_.simulate)
        return ref::gemm(a, b);
    const LayerSpec spec =
        LayerSpec::gemmLayer(name, a.dim(0), b.dim(1), a.dim(1));
    stonne_.configureDmm(spec, tuneTile(spec));
    stonne_.configureData(b, a);
    const SimulationResult sim = stampDse(stonne_.runOperation());
    recordSim(name, OpType::SelfAttention, sim);
    return stonne_.output();
}

Tensor
LayerExecutor::runLayer(std::size_t i, const Tensor &cur,
                        const Tensor &model_input,
                        const std::map<int, Tensor> &saved)
{
    const DnnLayer &l = model_.layers[i];
    const Tensor &in = l.input_from == -1
        ? cur
        : resolve(l.input_from, model_input, saved);

    switch (l.op) {
      case OpType::Conv2d: {
        if (opts_.simulate) {
            const bool relu_next =
                i + 1 < model_.layers.size() &&
                model_.layers[i + 1].op == OpType::ReLU;
            stonne_.setSnapeaEarlyExit(opts_.snapea_early_exit &&
                                       relu_next);
            stonne_.configureConv(l.spec, tuneTile(l.spec));
            stonne_.configureData(in, l.weights, l.bias);
            const SimulationResult sim =
                stampDse(stonne_.runOperation());
            recordSim(l.name, l.op, sim);
            return stonne_.output();
        }
        return ref::conv2d(in, l.weights, l.bias, l.spec.conv);
      }
      case OpType::Linear:
        return runLinear(in, l.weights, l.bias, l.name);
      case OpType::MaxPool2d: {
        const bool offload = opts_.simulate && opts_.offload_pooling &&
            stonne_.accelerator().supportsMaxPool();
        if (offload) {
            stonne_.configureMaxPool(l.spec);
            stonne_.configureData(in, Tensor());
            const SimulationResult sim = stonne_.runOperation();
            recordSim(l.name, l.op, sim);
            return stonne_.output();
        }
        recordNative(l.name, l.op);
        return ref::maxPool2d(in, l.spec.pool_window, l.spec.pool_stride);
      }
      case OpType::GlobalAvgPool:
        recordNative(l.name, l.op);
        return ref::globalAvgPool(in);
      case OpType::ReLU:
        recordNative(l.name, l.op);
        return ref::relu(in);
      case OpType::AddResidual:
        recordNative(l.name, l.op);
        return ref::add(in, resolve(l.operand_from, model_input, saved));
      case OpType::Concat:
        recordNative(l.name, l.op);
        return concatChannels(in,
                              resolve(l.operand_from, model_input, saved));
      case OpType::Flatten:
        recordNative(l.name, l.op);
        return in.reshaped({in.dim(0),
                            in.size() / std::max<index_t>(1, in.dim(0))});
      case OpType::Softmax:
        recordNative(l.name, l.op);
        return ref::softmax(in);
      case OpType::LogSoftmax:
        recordNative(l.name, l.op);
        return ref::logSoftmax(in);
      case OpType::LayerNorm:
        recordNative(l.name, l.op);
        return ref::layerNorm(in);
      case OpType::SelfAttention: {
        const AttentionSpec &a = l.attention;
        const Tensor q = runLinear(in, l.weights, l.bias, l.name + ".q");
        const Tensor k = runLinear(in, l.extra_weights[0],
                                   l.extra_bias[0], l.name + ".k");
        const Tensor v = runLinear(in, l.extra_weights[1],
                                   l.extra_bias[1], l.name + ".v");
        const index_t dk = a.headDim();
        const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
        Tensor ctx({a.seq_len, a.d_model});
        for (index_t h = 0; h < a.heads; ++h) {
            const Tensor qh = sliceCols(q, h * dk, dk);
            const Tensor kht = sliceColsT(k, h * dk, dk);
            Tensor scores = runGemm(
                qh, kht, l.name + ".scores.h" + std::to_string(h));
            for (index_t e = 0; e < scores.size(); ++e)
                scores.at(e) *= scale;
            const Tensor probs = ref::softmax(scores);
            const Tensor vh = sliceCols(v, h * dk, dk);
            const Tensor ctx_h = runGemm(
                probs, vh, l.name + ".ctx.h" + std::to_string(h));
            for (index_t s = 0; s < a.seq_len; ++s)
                for (index_t d = 0; d < dk; ++d)
                    ctx.at(s, h * dk + d) = ctx_h.at(s, d);
        }
        return runLinear(ctx, l.extra_weights[2], l.extra_bias[2],
                         l.name + ".out");
      }
    }
    panic("unhandled layer op in LayerExecutor");
}

} // namespace stonne
