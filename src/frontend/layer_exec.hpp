/**
 * @file
 * Single-layer executor: runs one DnnLayer of a model on one simulated
 * accelerator instance (or natively for the CPU reference path).
 *
 * Extracted from ModelRunner::forward so the single-core runner and the
 * multi-core runner share one execution path per layer: ModelRunner
 * iterates layers on one Stonne instance; MulticoreRunner gives every
 * core its own executor and schedules layers across them. Anything that
 * changes how a layer is lowered onto the accelerator belongs here, not
 * in either runner.
 */

#ifndef STONNE_FRONTEND_LAYER_EXEC_HPP
#define STONNE_FRONTEND_LAYER_EXEC_HPP

#include <map>
#include <optional>
#include <vector>

#include "dse/tuner.hpp"
#include "engine/stonne_api.hpp"
#include "frontend/dnn_layer.hpp"

namespace stonne {

/** Record of one operation executed during a simulated inference. */
struct LayerRunRecord {
    std::string name;
    OpType op;
    bool offloaded = false;
    SimulationResult sim; //!< valid when offloaded
};

/** How the executor lowers layers (mirrors the ModelRunner knobs). */
struct LayerExecOptions {
    bool simulate = true;          //!< offload to the accelerator
    bool snapea_early_exit = true; //!< SNAPEA cut-off for ReLU-gated convs
    bool offload_pooling = true;   //!< max pool on the accelerator
};

/**
 * Executes individual layers of one model on one Stonne instance.
 *
 * Stateless across layers except for the pending auto-tuner summary
 * (stamped onto the next operation's SimulationResult), so a fresh
 * executor per forward pass behaves identically to a shared one.
 */
class LayerExecutor
{
  public:
    /**
     * @param model the network (must outlive the executor; consulted
     *              for the ReLU-follows-conv SNAPEA peek)
     * @param stonne the accelerator instance layers are offloaded to
     * @param tuner optional mapping auto-tuner (nullptr = fixed tiles)
     * @param opts lowering knobs
     * @param records per-operation record sink (nullptr = don't record)
     */
    LayerExecutor(const DnnModel &model, Stonne &stonne,
                  dse::AutoTuner *tuner, const LayerExecOptions &opts,
                  std::vector<LayerRunRecord> *records);

    /**
     * Run layer `i`. `cur` is the previous layer's output,
     * `model_input` the forward pass input, `saved` the save_output
     * skip-link tensors; the layer's own input_from/operand_from
     * references are resolved against these. Returns the layer output.
     */
    Tensor runLayer(std::size_t i, const Tensor &cur,
                    const Tensor &model_input,
                    const std::map<int, Tensor> &saved);

  private:
    const Tensor &resolve(int idx, const Tensor &model_input,
                          const std::map<int, Tensor> &saved) const;

    void recordSim(const std::string &name, OpType op,
                   const SimulationResult &sim);
    void recordNative(const std::string &name, OpType op);

    std::optional<Tile> tuneTile(const LayerSpec &spec);
    SimulationResult stampDse(SimulationResult sim);

    Tensor runLinear(const Tensor &in, const Tensor &w, const Tensor &bias,
                     const std::string &name);
    Tensor runGemm(const Tensor &a, const Tensor &b,
                   const std::string &name);

    const DnnModel &model_;
    Stonne &stonne_;
    dse::AutoTuner *tuner_;
    LayerExecOptions opts_;
    std::vector<LayerRunRecord> *records_;
    /** Tuning summary awaiting its operation's SimulationResult. */
    std::optional<DseSummary> pending_dse_;
};

} // namespace stonne

#endif // STONNE_FRONTEND_LAYER_EXEC_HPP
