#include "frontend/dnn_layer.hpp"

namespace stonne {

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::Conv2d:        return "Conv2d";
      case OpType::Linear:        return "Linear";
      case OpType::MaxPool2d:     return "MaxPool2d";
      case OpType::GlobalAvgPool: return "GlobalAvgPool";
      case OpType::ReLU:          return "ReLU";
      case OpType::AddResidual:   return "AddResidual";
      case OpType::Concat:        return "Concat";
      case OpType::Flatten:       return "Flatten";
      case OpType::Softmax:       return "Softmax";
      case OpType::LogSoftmax:    return "LogSoftmax";
      case OpType::LayerNorm:     return "LayerNorm";
      case OpType::SelfAttention: return "SelfAttention";
    }
    return "?";
}

double
DnnModel::measuredWeightSparsity() const
{
    index_t zeros = 0, total = 0;
    auto tally = [&](const Tensor &t) {
        total += t.size();
        zeros += t.size() - t.nnz();
    };
    for (const DnnLayer &l : layers) {
        if (l.op != OpType::Conv2d && l.op != OpType::Linear &&
            l.op != OpType::SelfAttention)
            continue;
        if (!l.weights.empty())
            tally(l.weights);
        for (const Tensor &w : l.extra_weights)
            tally(w);
    }
    return total > 0
        ? static_cast<double>(zeros) / static_cast<double>(total)
        : 0.0;
}

index_t
DnnModel::totalMacs() const
{
    index_t macs = 0;
    for (const DnnLayer &l : layers) {
        switch (l.op) {
          case OpType::Conv2d:
          case OpType::Linear:
            macs += l.spec.macs();
            break;
          case OpType::SelfAttention: {
            const AttentionSpec &a = l.attention;
            // QKV + output projections plus the two score GEMMs.
            macs += 4 * a.seq_len * a.d_model * a.d_model;
            macs += 2 * a.seq_len * a.seq_len * a.d_model;
            break;
          }
          default:
            break;
        }
    }
    return macs;
}

index_t
DnnModel::offloadableLayers() const
{
    index_t n = 0;
    for (const DnnLayer &l : layers)
        if (l.op == OpType::Conv2d || l.op == OpType::Linear ||
            l.op == OpType::SelfAttention || l.op == OpType::MaxPool2d)
            ++n;
    return n;
}

} // namespace stonne
