/**
 * @file
 * Model zoo: the seven contemporary DNN models of Table I.
 *
 * Image classification: MobileNets-V1 (M), SqueezeNet (S), AlexNet (A),
 * ResNets-50 (R), VGG-16 (V). Object detection: SSD-MobileNets (S-M).
 * Language processing: BERT (B). Weights are synthetic (deterministic
 * seeds) and magnitude-pruned to the Table I sparsity ratios with
 * per-filter jitter, reproducing the non-uniform filter-size
 * distributions real pruned models exhibit (Figs 1c, 7, 9).
 *
 * Substitution note (see DESIGN.md): the paper runs the full-resolution
 * trained models (a 5-day experiment in the artifact); here the zoo
 * offers three scales — Full keeps the published shapes, Bench shrinks
 * spatial dimensions and channel counts so every experiment regenerates
 * in minutes while keeping layer types, topology and sparsity intact,
 * and Tiny is for unit tests.
 */

#ifndef STONNE_FRONTEND_MODEL_ZOO_HPP
#define STONNE_FRONTEND_MODEL_ZOO_HPP

#include <vector>

#include "common/rng.hpp"
#include "frontend/dnn_layer.hpp"

namespace stonne {

/** The seven Table I models. */
enum class ModelId {
    MobileNetV1,
    SqueezeNet,
    AlexNet,
    ResNet50,
    Vgg16,
    SsdMobileNet,
    Bert,
};

/** Model construction scale (see file comment). */
enum class ModelScale {
    Tiny,  //!< unit-test size
    Bench, //!< benchmark size: minutes instead of days
    Full,  //!< published layer shapes
};

/** All seven models in Table I order. */
std::vector<ModelId> allModels();

/** The four purely convolutional models of use case 2 (A, S, V, R). */
std::vector<ModelId> cnnModels();

/** Long name, e.g. "Mobilenets-V1". */
const char *modelName(ModelId id);

/** Table I short key: M, S, A, R, V, S-M, B. */
const char *modelShortName(ModelId id);

/** Table I target weight sparsity ratio. */
double modelSparsity(ModelId id);

/**
 * Build a model with pruned synthetic weights. `batch` sets the input
 * batch N of the vision models (every conv layer becomes batch-aware);
 * BERT's rank-2 (seq, hidden) input carries no batch axis, so batch > 1
 * is rejected there.
 */
DnnModel buildModel(ModelId id, ModelScale scale, std::uint64_t seed = 7,
                    index_t batch = 1);

/**
 * A deterministic input sample: (batch, C, X, Y) in [0, 1] for the
 * vision models (non-negative, as SNAPEA requires), (seq, hidden) for
 * BERT.
 */
Tensor makeModelInput(ModelId id, ModelScale scale, std::uint64_t seed = 11,
                      index_t batch = 1);

} // namespace stonne

#endif // STONNE_FRONTEND_MODEL_ZOO_HPP
