#include "frontend/model_builder.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "tensor/prune.hpp"

namespace stonne {

ModelBuilder::ModelBuilder(std::string name, double sparsity, std::uint64_t seed)
    : sparsity_(sparsity), rng_(seed)
{
    model_.name = std::move(name);
    model_.target_weight_sparsity = sparsity;
}

void
ModelBuilder::setInput(index_t c, index_t x, index_t y, index_t n)
{
    panicIf(n <= 0, "input batch must be positive");
    input_shape_ = {n, c, x, y};
}

void
ModelBuilder::setInput2d(index_t rows, index_t features)
{
    input_shape_ = {rows, features};
}

int
ModelBuilder::last() const
{
    return static_cast<int>(model_.layers.size()) - 1;
}

const std::vector<index_t> &
ModelBuilder::shapeOf(int idx) const
{
    if (idx == DnnLayer::kFromModelInput)
        return input_shape_;
    if (idx < 0)
        return model_.layers.empty()
            ? input_shape_
            : shapes_[shapes_.size() - 1];
    return shapes_[static_cast<std::size_t>(idx)];
}

int
ModelBuilder::conv(const std::string &name, index_t k_out, index_t kernel,
     index_t stride, index_t pad, index_t groups,
     int input_from)
{
    if (input_from < -1)
        input_from = DnnLayer::kFromModelInput;
    const auto &in = shapeOf(input_from);
    panicIf(in.size() != 4, "conv needs a rank-4 input shape");
    Conv2dShape s;
    s.R = kernel;
    s.S = kernel;
    s.C = in[1];
    s.K = k_out;
    s.G = groups;
    s.N = in[0];
    s.X = in[2];
    s.Y = in[3];
    s.stride = stride;
    s.padding = pad;
    s.validate();

    DnnLayer l;
    l.name = name;
    l.op = OpType::Conv2d;
    l.spec = LayerSpec::convolution(name, s);
    l.input_from = input_from;
    l.weights = Tensor({k_out, s.cPerGroup(), kernel, kernel});
    const float he = std::sqrt(
        2.0f / static_cast<float>(s.cPerGroup() * kernel * kernel));
    l.weights.fillNormal(rng_, 0.0f, he);
    pruneFiltersWithJitter(l.weights, sparsity_, 0.15, rng_);
    // Conv biases lean negative: trained CNNs produce mostly
    // negative pre-activations (the ReLU sparsity SNAPEA exploits).
    l.bias = Tensor({k_out});
    l.bias.fillUniform(rng_, -0.45f, 0.05f);
    return push(std::move(l), {in[0], k_out, s.outX(), s.outY()});
}

int
ModelBuilder::relu()
{
    DnnLayer l;
    l.name = "relu";
    l.op = OpType::ReLU;
    return push(std::move(l), shapeOf(-1));
}

/** Insert a max pool only when the feature map is large enough. */
int
ModelBuilder::maybeMaxPool(index_t w, index_t s)
{
    const auto &in = shapeOf(-1);
    if (in[2] < w || in[3] < w)
        return last();
    Conv2dShape cs;
    cs.C = in[1];
    cs.K = in[1];
    cs.N = in[0];
    cs.X = in[2];
    cs.Y = in[3];
    DnnLayer l;
    l.name = "maxpool";
    l.op = OpType::MaxPool2d;
    l.spec = LayerSpec::maxPool("maxpool", cs, w, s);
    const index_t xo = (in[2] - w) / s + 1;
    const index_t yo = (in[3] - w) / s + 1;
    return push(std::move(l), {in[0], in[1], xo, yo});
}

int
ModelBuilder::globalAvgPool()
{
    const auto &in = shapeOf(-1);
    DnnLayer l;
    l.name = "gap";
    l.op = OpType::GlobalAvgPool;
    return push(std::move(l), {in[0], in[1], 1, 1});
}

int
ModelBuilder::flatten()
{
    const auto &in = shapeOf(-1);
    panicIf(in.size() != 4, "flatten needs a rank-4 input shape");
    DnnLayer l;
    l.name = "flatten";
    l.op = OpType::Flatten;
    return push(std::move(l), {in[0], in[1] * in[2] * in[3]});
}

int
ModelBuilder::linear(const std::string &name, index_t out)
{
    const auto &in = shapeOf(-1);
    panicIf(in.size() != 2, "linear needs a rank-2 input shape");
    DnnLayer l;
    l.name = name;
    l.op = OpType::Linear;
    l.spec = LayerSpec::linear(name, in[0], in[1], out);
    l.weights = Tensor({out, in[1]});
    const float he = std::sqrt(2.0f / static_cast<float>(in[1]));
    l.weights.fillNormal(rng_, 0.0f, he);
    pruneFiltersWithJitter(l.weights, sparsity_, 0.15, rng_);
    l.bias = Tensor({out});
    l.bias.fillUniform(rng_, -0.05f, 0.05f);
    return push(std::move(l), {in[0], out});
}

int
ModelBuilder::attention(const std::string &name, index_t heads)
{
    const auto &in = shapeOf(-1);
    panicIf(in.size() != 2, "attention needs a rank-2 input shape");
    const index_t hidden = in[1];
    fatalIf(hidden % heads != 0, "hidden size not divisible by heads");

    DnnLayer l;
    l.name = name;
    l.op = OpType::SelfAttention;
    l.attention = AttentionSpec{in[0], hidden, heads};
    const float he = std::sqrt(2.0f / static_cast<float>(hidden));
    auto make_w = [&]() {
        Tensor w({hidden, hidden});
        w.fillNormal(rng_, 0.0f, he);
        pruneFiltersWithJitter(w, sparsity_, 0.15, rng_);
        return w;
    };
    auto make_b = [&]() {
        Tensor b({hidden});
        b.fillUniform(rng_, -0.05f, 0.05f);
        return b;
    };
    l.weights = make_w();                 // Wq
    l.bias = make_b();
    l.extra_weights = {make_w(), make_w(), make_w()}; // Wk, Wv, Wo
    l.extra_bias = {make_b(), make_b(), make_b()};
    return push(std::move(l), in);
}

int
ModelBuilder::addResidual(int operand)
{
    if (operand < 0)
        operand = DnnLayer::kFromModelInput;
    markSaved(operand);
    DnnLayer l;
    l.name = "add";
    l.op = OpType::AddResidual;
    l.operand_from = operand;
    return push(std::move(l), shapeOf(-1));
}

int
ModelBuilder::concat(int operand)
{
    if (operand < 0)
        operand = DnnLayer::kFromModelInput;
    markSaved(operand);
    const auto &a = shapeOf(-1);
    const auto &b = shapeOf(operand);
    panicIf(a.size() != 4 || b.size() != 4 || a[2] != b[2] ||
            a[3] != b[3],
            "concat needs matching spatial dims");
    DnnLayer l;
    l.name = "concat";
    l.op = OpType::Concat;
    l.operand_from = operand;
    return push(std::move(l), {a[0], a[1] + b[1], a[2], a[3]});
}

int
ModelBuilder::softmax()
{
    DnnLayer l;
    l.name = "softmax";
    l.op = OpType::Softmax;
    return push(std::move(l), shapeOf(-1));
}

int
ModelBuilder::logSoftmax()
{
    DnnLayer l;
    l.name = "log_softmax";
    l.op = OpType::LogSoftmax;
    return push(std::move(l), shapeOf(-1));
}

int
ModelBuilder::layerNorm()
{
    DnnLayer l;
    l.name = "layer_norm";
    l.op = OpType::LayerNorm;
    return push(std::move(l), shapeOf(-1));
}

void
ModelBuilder::markSaved(int idx)
{
    if (idx == DnnLayer::kFromModelInput)
        return; // the model input is always available
    panicIf(idx < 0 || idx > last(), "saved layer index out of range");
    model_.layers[static_cast<std::size_t>(idx)].save_output = true;
}

DnnModel
ModelBuilder::finish()
{
    // Layers referenced by input_from must also be saved.
    for (const DnnLayer &l : model_.layers)
        if (l.input_from >= 0)
            model_.layers[static_cast<std::size_t>(l.input_from)]
                .save_output = true;
    return std::move(model_);
}

int
ModelBuilder::push(DnnLayer l, std::vector<index_t> out_shape)
{
    model_.layers.push_back(std::move(l));
    shapes_.push_back(std::move(out_shape));
    return last();
}

} // namespace stonne
