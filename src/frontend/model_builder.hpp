/**
 * @file
 * Incremental DNN graph builder with shape tracking and synthetic
 * weight generation.
 *
 * Used by the model zoo (the seven Table I networks) and by the
 * text-format model loader (the Caffe-style second front-end). Each
 * call appends one layer, checks shapes, synthesizes He-initialized
 * weights and prunes them to the model's target sparsity with
 * per-filter jitter.
 */

#ifndef STONNE_FRONTEND_MODEL_BUILDER_HPP
#define STONNE_FRONTEND_MODEL_BUILDER_HPP

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "frontend/dnn_layer.hpp"

namespace stonne {

/** Builds a DnnModel layer by layer. */
class ModelBuilder
{
  public:
    ModelBuilder(std::string name, double sparsity, std::uint64_t seed);

    /** Set an (n, c, x, y) image input (n = batch, default 1). */
    void setInput(index_t c, index_t x, index_t y, index_t n = 1);

    /** Set a rank-2 (rows, features) input (sequence models). */
    void setInput2d(index_t rows, index_t features);

    /** Index of the last appended layer (-1 when empty). */
    int last() const;

    /** Output shape of a layer (-1 = previous, kFromModelInput = input). */
    const std::vector<index_t> &shapeOf(int idx) const;

    index_t spatialX() const { return shapeOf(-1)[2]; }
    index_t channels() const { return shapeOf(-1)[1]; }

    int conv(const std::string &name, index_t k_out, index_t kernel,
             index_t stride, index_t pad, index_t groups = 1,
             int input_from = -1);
    int relu();

    /** Max pool, skipped when the map is smaller than the window. */
    int maybeMaxPool(index_t w, index_t s);

    int globalAvgPool();
    int flatten();
    int linear(const std::string &name, index_t out);
    int attention(const std::string &name, index_t heads);
    int addResidual(int operand);
    int concat(int operand);
    int softmax();
    int logSoftmax();
    int layerNorm();

    /** Mark a layer's output as needed later. */
    void markSaved(int idx);

    /** Finalize (marks input_from references saved). */
    DnnModel finish();

  private:
    int push(DnnLayer l, std::vector<index_t> out_shape);

    DnnModel model_;
    double sparsity_;
    Rng rng_;
    std::vector<index_t> input_shape_;
    std::vector<std::vector<index_t>> shapes_;
};

} // namespace stonne

#endif // STONNE_FRONTEND_MODEL_BUILDER_HPP
