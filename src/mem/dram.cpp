#include "mem/dram.hpp"

#include <cmath>

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"

namespace stonne {

Dram::Dram(double bandwidth_gbps, double clock_ghz, index_t latency_cycles,
           StatsRegistry &stats)
    : bytes_per_cycle_(bandwidth_gbps / clock_ghz),
      latency_cycles_(latency_cycles),
      bytes_(&stats.counter("dram.bytes", StatGroup::Dram)),
      accesses_(&stats.counter("dram.accesses", StatGroup::Dram)),
      stall_cycles_(&stats.counter("dram.stall_cycles", StatGroup::Dram,
                                   StatKind::Occupancy))
{
    fatalIf(bandwidth_gbps <= 0, "dram bandwidth must be positive");
    fatalIf(clock_ghz <= 0, "clock must be positive");
    fatalIf(latency_cycles < 0, "dram latency must be non-negative");
}

cycle_t
Dram::transferCycles(index_t bytes)
{
    if (bytes <= 0)
        return 0;
    bulkAdvance(bytes, 1);
    const auto serialization = static_cast<cycle_t>(
        std::ceil(static_cast<double>(bytes) / bytes_per_cycle_));
    return static_cast<cycle_t>(latency_cycles_) + serialization;
}

void
Dram::bulkAdvance(index_t bytes, count_t n_accesses)
{
    panicIf(bytes < 0, "negative bulk dram traffic of ", bytes, " bytes");
    bytes_->value += static_cast<count_t>(bytes);
    accesses_->value += n_accesses;
}

cycle_t
Dram::stagingStall(index_t bytes, cycle_t compute_cycles)
{
    const cycle_t transfer = transferCycles(bytes);
    const cycle_t stall =
        transfer > compute_cycles ? transfer - compute_cycles : 0;
    stall_cycles_->value += stall;
    return stall;
}

cycle_t
Dram::streamingStall(index_t bytes, cycle_t compute_cycles)
{
    const cycle_t transfer = transferCycles(bytes);
    const auto lat = static_cast<cycle_t>(latency_cycles_);
    const cycle_t serialization = transfer > lat ? transfer - lat : 0;
    const cycle_t stall = serialization > compute_cycles
        ? serialization - compute_cycles : 0;
    stall_cycles_->value += stall;
    return stall;
}

void
Dram::saveState(ArchiveWriter &ar) const
{
    ar.putDouble(bytes_per_cycle_);
    ar.putI64(latency_cycles_);
}

void
Dram::loadState(ArchiveReader &ar)
{
    const double bpc = ar.getDouble();
    const index_t lat = ar.getI64();
    if (bpc != bytes_per_cycle_ || lat != latency_cycles_)
        ar.fail("DRAM snapshot was taken with a different memory "
                "configuration (" + std::to_string(bpc) + " B/cycle, "
                "latency " + std::to_string(lat) + ")");
}

} // namespace stonne
