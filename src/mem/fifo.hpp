/**
 * @file
 * Bounded FIFO with activity accounting.
 *
 * Every switch in the simulated fabrics buffers data in small FIFOs; the
 * output module reports FIFO activity counts, and back-pressure (a full
 * downstream FIFO) is what creates the pipeline stalls the analytical
 * models miss.
 *
 * Each FIFO carries its unit name so capacity violations report *which*
 * buffer overflowed and at what occupancy, and so watchdog deadlock
 * snapshots can name every queue (see describe()).
 */

#ifndef STONNE_MEM_FIFO_HPP
#define STONNE_MEM_FIFO_HPP

#include <deque>
#include <sstream>
#include <string>

#include "checkpoint/archive.hpp"
#include "checkpoint/checkpointable.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace stonne {

/** Bounded FIFO of T with push/pop counters and high-water tracking. */
template <typename T>
class Fifo : public Checkpointable
{
  public:
    /**
     * @param capacity maximum occupancy in elements
     * @param name unit name used in panic messages and state dumps
     */
    explicit Fifo(index_t capacity = 8, std::string name = "fifo")
        : capacity_(capacity), name_(std::move(name))
    {
        fatalIf(capacity <= 0, "fifo '", name_,
                "' capacity must be positive, got ", capacity);
    }

    bool full() const
    {
        return static_cast<index_t>(q_.size()) >= capacity_;
    }

    bool empty() const { return q_.empty(); }

    index_t size() const { return static_cast<index_t>(q_.size()); }

    index_t capacity() const { return capacity_; }

    const std::string &name() const { return name_; }

    /** Push; panics when full (callers must check full() first). */
    void
    push(T v)
    {
        panicIf(full(), "push on a full fifo '", name_, "' (occupancy ",
                size(), "/", capacity_, ")");
        q_.push_back(std::move(v));
        ++pushes_;
        if (static_cast<index_t>(q_.size()) > high_water_)
            high_water_ = static_cast<index_t>(q_.size());
    }

    /** Pop the head; panics when empty. */
    T
    pop()
    {
        panicIf(empty(), "pop on an empty fifo '", name_, "' (capacity ",
                capacity_, ")");
        T v = std::move(q_.front());
        q_.pop_front();
        ++pops_;
        return v;
    }

    /** Peek the head without consuming it. */
    const T &
    front() const
    {
        panicIf(empty(), "front on an empty fifo '", name_, "' (capacity ",
                capacity_, ")");
        return q_.front();
    }

    count_t pushes() const { return pushes_; }
    count_t pops() const { return pops_; }
    index_t highWater() const { return high_water_; }

    /** One-line state summary for watchdog deadlock snapshots. */
    std::string
    describe() const
    {
        std::ostringstream os;
        os << name_ << ": occupancy " << size() << "/" << capacity_
           << ", pushes " << pushes_ << ", pops " << pops_
           << ", high-water " << high_water_;
        return os.str();
    }

    void
    clear()
    {
        q_.clear();
    }

    /**
     * Serialize occupancy, counters and queued elements. Elements go
     * through FifoElementIo<T>, specialized for each payload type a
     * checkpointed FIFO carries (float and DataPackage ship with the
     * engine).
     */
    void
    saveState(ArchiveWriter &ar) const override
    {
        ar.putU64(pushes_);
        ar.putU64(pops_);
        ar.putI64(high_water_);
        ar.putU64(q_.size());
        for (const T &v : q_)
            FifoElementIo<T>::save(ar, v);
    }

    void
    loadState(ArchiveReader &ar) override
    {
        pushes_ = ar.getU64();
        pops_ = ar.getU64();
        high_water_ = ar.getI64();
        const std::uint64_t n = ar.getU64();
        if (static_cast<index_t>(n) > capacity_)
            ar.fail("fifo '" + name_ + "' snapshot occupancy " +
                    std::to_string(n) + " exceeds capacity " +
                    std::to_string(capacity_));
        q_.clear();
        for (std::uint64_t i = 0; i < n; ++i)
            q_.push_back(FifoElementIo<T>::load(ar));
    }

  private:
    index_t capacity_;
    std::string name_;
    std::deque<T> q_;
    count_t pushes_ = 0;
    count_t pops_ = 0;
    index_t high_water_ = 0;
};

} // namespace stonne

#endif // STONNE_MEM_FIFO_HPP
