/**
 * @file
 * Bounded FIFO with activity accounting.
 *
 * Every switch in the simulated fabrics buffers data in small FIFOs; the
 * output module reports FIFO activity counts, and back-pressure (a full
 * downstream FIFO) is what creates the pipeline stalls the analytical
 * models miss.
 */

#ifndef STONNE_MEM_FIFO_HPP
#define STONNE_MEM_FIFO_HPP

#include <deque>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace stonne {

/** Bounded FIFO of T with push/pop counters and high-water tracking. */
template <typename T>
class Fifo
{
  public:
    explicit Fifo(index_t capacity = 8) : capacity_(capacity)
    {
        fatalIf(capacity <= 0, "fifo capacity must be positive");
    }

    bool full() const
    {
        return static_cast<index_t>(q_.size()) >= capacity_;
    }

    bool empty() const { return q_.empty(); }

    index_t size() const { return static_cast<index_t>(q_.size()); }

    index_t capacity() const { return capacity_; }

    /** Push; panics when full (callers must check full() first). */
    void
    push(T v)
    {
        panicIf(full(), "push on a full fifo");
        q_.push_back(std::move(v));
        ++pushes_;
        if (static_cast<index_t>(q_.size()) > high_water_)
            high_water_ = static_cast<index_t>(q_.size());
    }

    /** Pop the head; panics when empty. */
    T
    pop()
    {
        panicIf(empty(), "pop on an empty fifo");
        T v = std::move(q_.front());
        q_.pop_front();
        ++pops_;
        return v;
    }

    /** Peek the head without consuming it. */
    const T &
    front() const
    {
        panicIf(empty(), "front on an empty fifo");
        return q_.front();
    }

    count_t pushes() const { return pushes_; }
    count_t pops() const { return pops_; }
    index_t highWater() const { return high_water_; }

    void
    clear()
    {
        q_.clear();
    }

  private:
    index_t capacity_;
    std::deque<T> q_;
    count_t pushes_ = 0;
    count_t pops_ = 0;
    index_t high_water_ = 0;
};

} // namespace stonne

#endif // STONNE_MEM_FIFO_HPP
