#include "mem/global_buffer.hpp"

#include <ostream>

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"

namespace stonne {

GlobalBuffer::GlobalBuffer(index_t size_kib, index_t read_bandwidth,
                           index_t write_bandwidth,
                           index_t bytes_per_element, StatsRegistry &stats,
                           std::string name)
    : name_(std::move(name)),
      capacity_elements_(size_kib * 1024 / bytes_per_element),
      read_bandwidth_(read_bandwidth),
      write_bandwidth_(write_bandwidth),
      reads_(&stats.counter("gb.reads", StatGroup::GlobalBuffer)),
      writes_(&stats.counter("gb.writes", StatGroup::GlobalBuffer)),
      write_queue_occ_(&stats.counter("gb.write_queue_occ",
                                      StatGroup::GlobalBuffer,
                                      StatKind::Occupancy))
{
    fatalIf(size_kib <= 0, "global buffer '", name_,
            "' size must be positive");
    fatalIf(read_bandwidth <= 0 || write_bandwidth <= 0,
            "global buffer '", name_, "' bandwidth must be positive");
}

void
GlobalBuffer::nextCycle()
{
    reads_left_ = read_bandwidth_;
    writes_left_ = write_bandwidth_;
}

void
GlobalBuffer::read()
{
    panicIf(reads_left_ <= 0, "read on '", name_,
            "' beyond per-cycle bandwidth (", read_bandwidth_,
            " reads/cycle, 0 left)");
    --reads_left_;
    ++reads_->value;
}

void
GlobalBuffer::write()
{
    panicIf(writes_left_ <= 0, "write on '", name_,
            "' beyond per-cycle bandwidth (", write_bandwidth_,
            " writes/cycle, 0 left)");
    --writes_left_;
    ++writes_->value;
}

index_t
GlobalBuffer::readBulk(index_t n)
{
    panicIf(n < 0, "negative bulk read of ", n, " on '", name_, "'");
    const index_t granted = n < reads_left_ ? n : reads_left_;
    reads_left_ -= granted;
    reads_->value += static_cast<count_t>(granted);
    return granted;
}

index_t
GlobalBuffer::writeBulk(index_t n)
{
    panicIf(n < 0, "negative bulk write of ", n, " on '", name_, "'");
    const index_t granted = n < writes_left_ ? n : writes_left_;
    writes_left_ -= granted;
    writes_->value += static_cast<count_t>(granted);
    return granted;
}

void
GlobalBuffer::bulkAdvance(cycle_t n_cycles, index_t n_reads,
                          index_t n_writes)
{
    panicIf(n_reads < 0 || n_writes < 0, "negative bulk advance of ",
            n_reads, " reads / ", n_writes, " writes on '", name_, "'");
    panicIf(static_cast<count_t>(n_reads)
                > n_cycles * static_cast<count_t>(read_bandwidth_),
            "bulk advance on '", name_, "' exceeds read bandwidth: ",
            n_reads, " reads in ", n_cycles, " cycles at ",
            read_bandwidth_, " reads/cycle");
    panicIf(static_cast<count_t>(n_writes)
                > n_cycles * static_cast<count_t>(write_bandwidth_),
            "bulk advance on '", name_, "' exceeds write bandwidth: ",
            n_writes, " writes in ", n_cycles, " cycles at ",
            write_bandwidth_, " writes/cycle");
    reads_->value += static_cast<count_t>(n_reads);
    writes_->value += static_cast<count_t>(n_writes);
}

void
GlobalBuffer::accountDrainBacklog(index_t count)
{
    panicIf(count < 0, "negative drain backlog of ", count, " on '",
            name_, "'");
    if (count <= 0)
        return;
    const count_t n = static_cast<count_t>(
        (count + write_bandwidth_ - 1) / write_bandwidth_);
    write_queue_occ_->value +=
        n * static_cast<count_t>(count) -
        static_cast<count_t>(write_bandwidth_) * (n * (n - 1) / 2);
}

void
GlobalBuffer::dumpState(std::ostream &os) const
{
    os << name_ << ": capacity " << capacity_elements_
       << " elements, read budget " << reads_left_ << "/" << read_bandwidth_
       << ", write budget " << writes_left_ << "/" << write_bandwidth_
       << ", total reads " << reads_->value << ", total writes "
       << writes_->value << "\n";
}

void
GlobalBuffer::saveState(ArchiveWriter &ar) const
{
    ar.putI64(reads_left_);
    ar.putI64(writes_left_);
}

void
GlobalBuffer::loadState(ArchiveReader &ar)
{
    reads_left_ = ar.getI64();
    writes_left_ = ar.getI64();
    if (reads_left_ < 0 || reads_left_ > read_bandwidth_ ||
        writes_left_ < 0 || writes_left_ > write_bandwidth_)
        ar.fail("'" + name_ + "' snapshot budgets " +
                std::to_string(reads_left_) + "/" +
                std::to_string(writes_left_) +
                " exceed the configured bandwidths");
}

} // namespace stonne
