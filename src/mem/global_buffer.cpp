#include "mem/global_buffer.hpp"

#include "common/logging.hpp"

namespace stonne {

GlobalBuffer::GlobalBuffer(index_t size_kib, index_t read_bandwidth,
                           index_t write_bandwidth,
                           index_t bytes_per_element, StatsRegistry &stats)
    : capacity_elements_(size_kib * 1024 / bytes_per_element),
      read_bandwidth_(read_bandwidth),
      write_bandwidth_(write_bandwidth),
      reads_(&stats.counter("gb.reads", StatGroup::GlobalBuffer)),
      writes_(&stats.counter("gb.writes", StatGroup::GlobalBuffer))
{
    fatalIf(size_kib <= 0, "global buffer size must be positive");
    fatalIf(read_bandwidth <= 0 || write_bandwidth <= 0,
            "global buffer bandwidth must be positive");
}

void
GlobalBuffer::nextCycle()
{
    reads_left_ = read_bandwidth_;
    writes_left_ = write_bandwidth_;
}

void
GlobalBuffer::read()
{
    panicIf(reads_left_ <= 0, "GB read beyond per-cycle bandwidth");
    --reads_left_;
    ++reads_->value;
}

void
GlobalBuffer::write()
{
    panicIf(writes_left_ <= 0, "GB write beyond per-cycle bandwidth");
    --writes_left_;
    ++writes_->value;
}

index_t
GlobalBuffer::readBulk(index_t n)
{
    panicIf(n < 0, "negative GB bulk read");
    const index_t granted = n < reads_left_ ? n : reads_left_;
    reads_left_ -= granted;
    reads_->value += static_cast<count_t>(granted);
    return granted;
}

index_t
GlobalBuffer::writeBulk(index_t n)
{
    panicIf(n < 0, "negative GB bulk write");
    const index_t granted = n < writes_left_ ? n : writes_left_;
    writes_left_ -= granted;
    writes_->value += static_cast<count_t>(granted);
    return granted;
}

} // namespace stonne
