/**
 * @file
 * On-chip Global Buffer (GB) model.
 *
 * The GB is the on-chip SRAM every accelerator in the paper shares. It is
 * modelled at element granularity: per cycle it can serve up to
 * `read_bandwidth` element reads into the distribution network and absorb
 * up to `write_bandwidth` element writes from the reduction network. All
 * accesses are counted for the energy model; capacity determines how much
 * of a layer tile must be staged from DRAM (double buffering).
 */

#ifndef STONNE_MEM_GLOBAL_BUFFER_HPP
#define STONNE_MEM_GLOBAL_BUFFER_HPP

#include <iosfwd>
#include <string>

#include "checkpoint/checkpointable.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace stonne {

/** Per-cycle bandwidth-limited SRAM with access accounting. */
class GlobalBuffer : public Checkpointable
{
  public:
    /**
     * @param size_kib capacity in KiB
     * @param read_bandwidth element reads per cycle
     * @param write_bandwidth element writes per cycle
     * @param bytes_per_element storage width of one element
     * @param stats registry receiving access counters
     * @param name unit name used in panic messages and state dumps
     */
    GlobalBuffer(index_t size_kib, index_t read_bandwidth,
                 index_t write_bandwidth, index_t bytes_per_element,
                 StatsRegistry &stats, std::string name = "global_buffer");

    const std::string &name() const { return name_; }

    /** Begin a new cycle: replenish the per-cycle bandwidth budgets. */
    void nextCycle();

    /** Whether another read can issue this cycle. */
    bool canRead() const { return reads_left_ > 0; }

    /** Whether another write can issue this cycle. */
    bool canWrite() const { return writes_left_ > 0; }

    /** Consume one read slot and count the access. */
    void read();

    /** Consume one write slot and count the access. */
    void write();

    /** Read slots remaining this cycle. */
    index_t readsLeft() const { return reads_left_; }

    /** Write slots remaining this cycle. */
    index_t writesLeft() const { return writes_left_; }

    /** Consume up to n read slots; returns how many were granted. */
    index_t readBulk(index_t n);

    /** Consume up to n write slots; returns how many were granted. */
    index_t writeBulk(index_t n);

    /**
     * Fast-forward `n_cycles` cycles of steady-state streaming in which
     * `n_reads` read grants and `n_writes` write grants were issued in
     * total — the closed-form equivalent of n_cycles iterations of
     * nextCycle() + readBulk()/writeBulk(). Access counters advance
     * exactly as the per-cycle path would; the per-cycle budgets are
     * left untouched (every consumer re-arms them with nextCycle()
     * before the next grant, and the fast-forward engine executes the
     * final, possibly partial, cycle through the exact path).
     */
    void bulkAdvance(cycle_t n_cycles, index_t n_reads, index_t n_writes);

    /**
     * Account the write-queue occupancy of draining `count` outputs at
     * write_bandwidth absorbed per cycle: the pending backlog summed
     * over the drain's cycles, in closed form. Accounted once per
     * drain — not per cycle — so exact and fast-forwarded runs see
     * identical counter evolution.
     */
    void accountDrainBacklog(index_t count);

    /** Capacity in elements. */
    index_t capacityElements() const { return capacity_elements_; }

    index_t readBandwidth() const { return read_bandwidth_; }
    index_t writeBandwidth() const { return write_bandwidth_; }

    count_t totalReads() const { return reads_->value; }
    count_t totalWrites() const { return writes_->value; }

    /** Bandwidth-budget state for watchdog deadlock snapshots. */
    void dumpState(std::ostream &os) const;

    /** Serialize the per-cycle bandwidth budgets. */
    void saveState(ArchiveWriter &ar) const override;
    void loadState(ArchiveReader &ar) override;

  private:
    std::string name_;
    index_t capacity_elements_;
    index_t read_bandwidth_;
    index_t write_bandwidth_;
    index_t reads_left_ = 0;
    index_t writes_left_ = 0;
    StatCounter *reads_;
    StatCounter *writes_;
    StatCounter *write_queue_occ_;
};

} // namespace stonne

#endif // STONNE_MEM_GLOBAL_BUFFER_HPP
