/**
 * @file
 * Off-chip DRAM model with double-buffered prefetch.
 *
 * Substitutes DRAMsim3 from the paper: a bandwidth + fixed-latency model.
 * The memory controllers stage tiles into the Global Buffer with double
 * buffering, so a transfer for iteration i+1 overlaps the compute of
 * iteration i; compute only stalls when the transfer takes longer than
 * the overlapped compute, which is the behaviour the paper's HBM2
 * configuration (2 x 256 GB/s) was chosen to avoid.
 */

#ifndef STONNE_MEM_DRAM_HPP
#define STONNE_MEM_DRAM_HPP

#include "checkpoint/checkpointable.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace stonne {

/** Bandwidth/latency DRAM with double-buffered tile prefetch timing. */
class Dram : public Checkpointable
{
  public:
    /**
     * @param bandwidth_gbps aggregate bandwidth across modules
     * @param clock_ghz accelerator clock (converts GB/s to bytes/cycle)
     * @param latency_cycles fixed access latency
     * @param stats registry receiving traffic counters
     */
    Dram(double bandwidth_gbps, double clock_ghz, index_t latency_cycles,
         StatsRegistry &stats);

    /** Bytes the DRAM can deliver per accelerator cycle. */
    double bytesPerCycle() const { return bytes_per_cycle_; }

    /**
     * Cycles to transfer `bytes` (latency + serialization).
     * Counts the traffic.
     */
    cycle_t transferCycles(index_t bytes);

    /**
     * Account `bytes` of traffic across `n_accesses` transfers without
     * computing a duration — the counter side of transferCycles(),
     * exposed for the fast-forward engine so skipped regions keep the
     * DRAM traffic counters exact.
     */
    void bulkAdvance(index_t bytes, count_t n_accesses);

    /**
     * Double-buffer staging: given that the previous compute chunk took
     * `compute_cycles`, return the extra stall cycles the next tile's
     * transfer adds (0 when fully hidden). Includes the access latency:
     * use for isolated transfers.
     */
    cycle_t stagingStall(index_t bytes, cycle_t compute_cycles);

    /**
     * Streaming staging: like stagingStall but for a continuous
     * prefetch stream of consecutive tiles, where the access latency is
     * pipelined away and only serialization bandwidth can stall.
     */
    cycle_t streamingStall(index_t bytes, cycle_t compute_cycles);

    count_t bytesTransferred() const { return bytes_->value; }

    /** Staging stall cycles accumulated so far (dram.stall_cycles). */
    count_t stallCycles() const { return stall_cycles_->value; }

    /**
     * The DRAM model is stateless between calls — transfers complete
     * within the issuing operation and the traffic counters live in
     * the StatsRegistry — so its section holds only the derived
     * per-cycle bandwidth as a configuration cross-check.
     */
    void saveState(ArchiveWriter &ar) const override;
    void loadState(ArchiveReader &ar) override;

  private:
    double bytes_per_cycle_;
    index_t latency_cycles_;
    StatCounter *bytes_;
    StatCounter *accesses_;
    StatCounter *stall_cycles_;
};

} // namespace stonne

#endif // STONNE_MEM_DRAM_HPP
