/**
 * @file
 * Event/wakeup delivery engine: exact simulation without idle ticking.
 *
 * The paper's Figure-4 engine advances every configured Unit through a
 * virtual cycle() call each clock. For the streaming phases that
 * dominate simulated time — GB→DN delivery and RN→GB drain — that
 * per-cycle loop is pure overhead: in steady state every cycle moves
 * exactly min(fabric, buffer) elements and no unit does anything that
 * cannot be expressed in closed form. This engine replaces the
 * tick-everything loop with a wakeup scheduler:
 *
 *  - units report a nextActiveCycle() (kIdle when they hold no queued
 *    work, no in-flight contents and no pending injections),
 *  - the engine keeps a small per-stream wakeup record, and
 *  - cycles in which every scheduled unit is idle or retires at the
 *    next edge are skipped in one closed-form span: counters via
 *    bulkAdvance(), the watchdog via bulkTick() (clamped so a
 *    simulated-cycle budget still aborts on the same cycle with the
 *    same message), and tracer sample windows via steadyBegin()/
 *    steadyEnd() interpolation — so cycles, counters, outputs, traces
 *    and deadlock detection stay bit-identical to exact per-cycle
 *    stepping.
 *
 * The remainder of every span runs through a devirtualized exact loop:
 * one switch on the DN topology tag selects a template instantiation
 * whose inner per-cycle calls are non-virtual (gemmini-style single
 * dispatch), replacing three virtual calls per simulated cycle.
 *
 * `engine = TICK` routes both entry points through the original
 * delivery.hpp loops so the parity suite can compare the two engines
 * directly; the wakeup bookkeeping advances identically in both modes,
 * keeping checkpoints mode-independent.
 */

#ifndef STONNE_ENGINE_EVENT_ENGINE_HPP
#define STONNE_ENGINE_EVENT_ENGINE_HPP

#include "checkpoint/checkpointable.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "common/watchdog.hpp"
#include "faults/fault_injector.hpp"
#include "mem/global_buffer.hpp"
#include "network/unit.hpp"
#include "trace/trace.hpp"

namespace stonne {

/** Wakeup-scheduled delivery/drain engine (see file comment). */
class EventEngine : public Checkpointable
{
  public:
    /** Streams the engine schedules independently. */
    enum Stream : std::size_t {
        Delivery = 0, //!< GB read ports → DN → multiplier switches
        Drain = 1,    //!< RN collection point → GB write ports
        kStreams = 2,
    };

    EventEngine(EngineType mode, Watchdog *watchdog = nullptr,
                FaultInjector *faults = nullptr, Tracer *trace = nullptr)
        : mode_(mode), watchdog_(watchdog), faults_(faults), trace_(trace)
    {
    }

    EngineType mode() const { return mode_; }

    /**
     * Stream `count` same-kind, same-fanout elements from the GB
     * through the DN — the scheduler-owned replacement for
     * deliverElements(). With `fast_forward` set (and no faults) the
     * skipped span is recorded on the tracer's fast-forward track
     * exactly like the legacy path; without it the span is skipped
     * silently, byte-identical to exact per-cycle stepping. A fault
     * injector pins the whole delivery to the exact loop (dropFlits()
     * consumes the seeded RNG stream once per cycle).
     *
     * @return the number of cycles the delivery occupied.
     */
    cycle_t deliver(DistributionNetwork &dn, GlobalBuffer &gb,
                    index_t count, index_t fanout, PackageKind kind,
                    bool fast_forward);

    /**
     * Drain `count` finished outputs through the GB write ports — the
     * scheduler-owned replacement for drainOutputs(). Draining makes
     * no RNG draws, so the steady span is skipped even with a fault
     * injector attached.
     *
     * @return the number of cycles the drain occupied.
     */
    cycle_t drain(GlobalBuffer &gb, index_t count, bool fast_forward);

    /** Engine clock: total cycles scheduled across both streams. */
    cycle_t now() const { return now_; }

    /** Cycle the stream last completed a span at (wakeup record). */
    cycle_t lastActive(Stream s) const { return next_active_[s]; }

    /**
     * Pin deliver/drain to exact per-cycle stepping while `*flag` is
     * true (nullptr reopens the gate). The multicore composition
     * closes the gate on a core whose span overlaps a sibling core in
     * simulated time: idle stretches may only be skipped when every
     * core is in steady state. Because skipped and exact spans are
     * bit-identical (cycles, counters, outputs, trace samples), the
     * gate trades speed for conservatism, never results — per-core
     * fast-forward parity holds with the gate open or closed.
     */
    void setSkipInhibit(const bool *flag) { skip_inhibit_ = flag; }

    /**
     * Permanently drop this engine out of the composition's all-cores-
     * busy check: detaches the skip-inhibit gate (a quarantined core
     * never runs again, so its siblings must not step exactly on its
     * account) and marks the engine so the runner's reports can tell a
     * benched core from an idle one.
     */
    void quarantine()
    {
        skip_inhibit_ = nullptr;
        quarantined_ = true;
    }
    bool quarantined() const { return quarantined_; }

    /**
     * Cycles stepped exactly because the inhibit gate was closed.
     * Observability only: not serialized, not a StatCounter.
     */
    cycle_t gatedCycles() const { return gated_cycles_; }

    void reset();

    /**
     * Serialize the wakeup bookkeeping (engine clock + per-stream
     * last-active cycles). Advanced identically under both engine
     * modes — span lengths are equal by the parity invariant — so a
     * snapshot taken under one mode restores under the other.
     */
    void saveState(ArchiveWriter &ar) const override;
    void loadState(ArchiveReader &ar) override;

  private:
    /**
     * Whether a closed-form skip may cover a unit reporting `wake`:
     * kIdle (nothing in flight) and 0 (in-flight contents retire at
     * the next clock edge, which the span's closed form models) are
     * skippable; any other wakeup pins the engine to exact stepping.
     */
    static bool
    skipAllowed(cycle_t wake)
    {
        return wake == Unit::kIdle || wake == 0;
    }

    /**
     * Clamp a steady-state skip so an armed simulated-cycle budget
     * still aborts on the very cycle the exact loop would: the span is
     * cut at budget + 1 observed cycles, counters and trace advance
     * for exactly that many cycles, and bulkTick() throws with the
     * identical cycles-observed figure.
     */
    cycle_t clampToBudget(cycle_t skip) const;

    /** Advance the engine clock and the stream's wakeup record. */
    void
    noteSpan(Stream s, cycle_t cycles)
    {
        now_ += cycles;
        next_active_[s] = now_;
    }

    bool
    skipInhibited() const
    {
        return skip_inhibit_ != nullptr && *skip_inhibit_;
    }

    EngineType mode_;
    Watchdog *watchdog_;
    FaultInjector *faults_;
    Tracer *trace_;

    const bool *skip_inhibit_ = nullptr;
    bool quarantined_ = false;
    cycle_t gated_cycles_ = 0;

    cycle_t now_ = 0;
    cycle_t next_active_[kStreams] = {0, 0};
};

} // namespace stonne

#endif // STONNE_ENGINE_EVENT_ENGINE_HPP
