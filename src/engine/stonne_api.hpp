/**
 * @file
 * The STONNE API: the coarse-grained instruction set of Table III.
 *
 * This is the interface a DL framework (the paper plugs into PyTorch and
 * Caffe; this reproduction's front-end lives in src/frontend) uses to
 * drive the simulated accelerator:
 *
 *   CreateInstance    -> Stonne::Stonne(config)
 *   ConfigureCONV     -> configureConv()
 *   ConfigureLinear   -> configureLinear()
 *   ConfigureDMM      -> configureDmm()
 *   ConfigureSpMM     -> configureSpmm()
 *   ConfigureMaxPool  -> configureMaxPool()
 *   ConfigureData     -> configureData()
 *   RunOperation      -> runOperation()
 *
 * runOperation() executes the configured operation cycle by cycle and
 * returns a SimulationResult with performance, utilization, activity,
 * energy and area figures (the Output Module's summary).
 */

#ifndef STONNE_ENGINE_STONNE_API_HPP
#define STONNE_ENGINE_STONNE_API_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "checkpoint/checkpoint.hpp"
#include "controller/scheduler.hpp"
#include "controller/tile.hpp"
#include "dse/dse_stats.hpp"
#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"
#include "engine/accelerator.hpp"
#include "tensor/sparse.hpp"

namespace stonne {

/** Summary of one RunOperation (the Output Module's JSON content). */
struct SimulationResult {
    std::string layer_name;
    std::string accelerator;
    cycle_t cycles = 0;
    double time_ms = 0.0;
    /** Host wall-clock time the simulation itself took. */
    double wall_seconds = 0.0;
    /** Simulator throughput: cycles / wall_seconds (0 when untimed). */
    double sim_cycles_per_second = 0.0;
    count_t macs = 0;
    count_t skipped_macs = 0;
    count_t mem_accesses = 0;
    double ms_utilization = 0.0;
    EnergyBreakdown energy;
    AreaBreakdown area;

    /** Path of the cycle-level trace file, empty when `trace = OFF`. */
    std::string trace_path;

    /** Path of the last snapshot written, empty when `checkpoint = OFF`. */
    std::string checkpoint_path;

    /**
     * Cycle the simulation resumed from when it was restored from a
     * snapshot; 0 for an uninterrupted run.
     */
    cycle_t restored_from_cycle = 0;

    /**
     * Design-space exploration summary when the operation's tile was
     * auto-tuned (`autotune = ON` or the CLI `tune` command);
     * `dse.enabled` is false for untuned operations.
     */
    DseSummary dse;

    /** Sum another layer's result (whole-model aggregation). */
    void merge(const SimulationResult &o);
};

/** One simulated accelerator instance plus its instruction set. */
class Stonne
{
  public:
    /** CreateInstance from an in-memory configuration. */
    explicit Stonne(const HardwareConfig &cfg);

    /** CreateInstance from a stonne_hw.cfg file. */
    explicit Stonne(const std::string &cfg_path);

    ~Stonne();
    Stonne(const Stonne &) = delete;
    Stonne &operator=(const Stonne &) = delete;

    // --- Configure* instructions -------------------------------------

    /** ConfigureCONV: next op is a convolution (optional explicit tile). */
    void configureConv(const LayerSpec &layer,
                       std::optional<Tile> tile = std::nullopt);

    /** ConfigureLinear: next op is a fully-connected layer. */
    void configureLinear(const LayerSpec &layer,
                         std::optional<Tile> tile = std::nullopt);

    /** ConfigureDMM: next op is a dense matrix multiplication. */
    void configureDmm(const LayerSpec &layer,
                      std::optional<Tile> tile = std::nullopt);

    /** ConfigureSpMM: next op is a sparse matrix multiplication. */
    void configureSpmm(const LayerSpec &layer);

    /** ConfigureMaxPool: next op is a max-pooling layer. */
    void configureMaxPool(const LayerSpec &layer);

    /**
     * ConfigureData: bind operand tensors. For CONV: input (N,C,X,Y),
     * weights (K,C/G,R,S), bias (K) or empty. For Linear: input (N,C),
     * weights (K,C), bias. For DMM/SpMM: input = B (K,N),
     * weights = A (M,K), bias empty. For MaxPool: input only.
     */
    void configureData(Tensor input, Tensor weights, Tensor bias = Tensor());

    /** RunOperation: simulate the configured op and report statistics. */
    SimulationResult runOperation();

    // --- Options ------------------------------------------------------

    /** Static filter scheduling for the sparse controller (use case 3). */
    void setSchedulingPolicy(SchedulingPolicy policy, std::uint64_t seed = 1);

    /** Enable/disable SNAPEA's early negative cut-off (use case 2). */
    void setSnapeaEarlyExit(bool enabled) { snapea_early_exit_ = enabled; }

    /** Exploit zero streaming operands in the sparse controller. */
    void setSkipZeroActivations(bool enabled) { skip_zero_b_ = enabled; }

    // --- Inspection ---------------------------------------------------

    /** Output tensor of the last runOperation. */
    const Tensor &output() const { return output_; }

    /**
     * Write the Output Module's two report files for the last
     * operation: `<prefix>.json` (summary) and `<prefix>.counters`
     * (per-component activity counts).
     */
    void writeReports(const std::string &prefix) const;

    /** Result of the last runOperation (empty before the first). */
    const SimulationResult &lastResult() const { return last_result_; }

    const HardwareConfig &config() const { return accel_->config(); }
    Accelerator &accelerator() { return *accel_; }
    const StatsRegistry &stats() const { return accel_->stats(); }

    /** Cumulative cycles across all operations run on this instance. */
    cycle_t totalCycles() const { return total_cycles_; }

    // --- Checkpoint / restore -----------------------------------------

    /**
     * Write a full snapshot of this instance (cumulative cycles plus
     * the accelerator's persistent microarchitectural state) to
     * `path`, atomically: the archive lands in `<path>.tmp` and is
     * renamed into place only after the CRC-sealed frame is complete.
     */
    void saveCheckpoint(const std::string &path) const;

    /**
     * Restore a saveCheckpoint() snapshot into this freshly created
     * instance. The instance must have been built from a structurally
     * identical configuration (checkpointConfigText() recovers the
     * embedded one); throws CheckpointError on mismatch or corruption.
     */
    void loadCheckpoint(const std::string &path);

    /** Append this instance's snapshot sections to an open archive. */
    void saveCheckpointTo(ArchiveWriter &ar,
                          std::uint32_t kind = kCheckpointKindEngine) const;

    /** Restore from an open archive (counterpart of saveCheckpointTo). */
    void loadCheckpointFrom(ArchiveReader &ar);

    /** Cycle this instance resumed from (0 if never restored). */
    cycle_t restoredFromCycle() const { return restored_from_cycle_; }

    /**
     * Enable/disable the periodic `checkpoint = ON` snapshots written
     * after operations. The ModelRunner turns these off and writes its
     * own layer-boundary snapshots carrying the forward-pass state.
     */
    void setAutoCheckpoint(bool enabled) { auto_checkpoint_ = enabled; }

  private:
    SimulationResult runOperationImpl();
    /** Write the periodic snapshot when the interval has elapsed. */
    void maybeAutoCheckpoint(SimulationResult &r);
    SimulationResult finishOperation(const ControllerResult &cr,
                                     const std::vector<count_t> &before);

    std::unique_ptr<Accelerator> accel_;
    EnergyModel energy_model_;
    AreaModel area_model_;

    bool op_pending_ = false;
    bool data_bound_ = false;
    LayerSpec layer_;
    std::optional<Tile> tile_;
    Tensor input_;
    Tensor weights_;
    Tensor bias_;
    Tensor output_;

    SimulationResult last_result_;
    SchedulingPolicy policy_ = SchedulingPolicy::None;
    std::uint64_t policy_seed_ = 1;
    bool snapea_early_exit_ = true;
    bool skip_zero_b_ = false;
    cycle_t total_cycles_ = 0;

    cycle_t restored_from_cycle_ = 0;
    cycle_t last_checkpoint_cycle_ = 0;
    bool auto_checkpoint_ = true;
};

} // namespace stonne

#endif // STONNE_ENGINE_STONNE_API_HPP
