#include "engine/workload.hpp"

#include "common/logging.hpp"
#include "tensor/prune.hpp"

namespace stonne {

std::vector<NamedLayer>
fig1Layers()
{
    std::vector<NamedLayer> layers;

    auto conv = [](index_t r, index_t c, index_t k, index_t xy,
                   index_t g, index_t pad) {
        Conv2dShape s;
        s.R = r;
        s.S = r;
        s.C = c;
        s.K = k;
        s.G = g;
        s.X = xy;
        s.Y = xy;
        s.padding = pad;
        return s;
    };

    // Squeezenet: squeeze (1x1 bottleneck) and expand (3x3) convs.
    layers.push_back({"S-SC", LayerSpec::convolution(
        "squeeze", conv(1, 64, 16, 13, 1, 0))});
    layers.push_back({"S-EC", LayerSpec::convolution(
        "expand", conv(3, 16, 64, 13, 1, 1))});
    // Mobilenets: factorized (depthwise) conv and the classifier.
    layers.push_back({"M-FC", LayerSpec::convolution(
        "factorized", conv(3, 128, 128, 14, 128, 1))});
    layers.push_back({"M-L", LayerSpec::linear("m_fc", 1, 512, 100)});
    // Resnets-50: regular 3x3 conv and the classifier.
    layers.push_back({"R-C", LayerSpec::convolution(
        "res_conv", conv(3, 64, 64, 14, 1, 1))});
    layers.push_back({"R-L", LayerSpec::linear("r_fc", 1, 1024, 100)});
    // BERT: a transformer score GEMM and a feed-forward linear.
    layers.push_back({"B-TR", LayerSpec::gemmLayer("attn", 48, 48, 128)});
    layers.push_back({"B-L", LayerSpec::linear("b_ff", 48, 128, 256)});
    return layers;
}

LayerData
makeLayerData(const LayerSpec &layer, double sparsity, std::uint64_t seed,
              double jitter)
{
    Rng rng(seed);
    LayerData d;
    switch (layer.kind) {
      case LayerKind::Convolution: {
        const Conv2dShape &c = layer.conv;
        d.input = Tensor({c.N, c.C, c.X, c.Y});
        d.weights = Tensor({c.K, c.cPerGroup(), c.R, c.S});
        d.bias = Tensor({c.K});
        break;
      }
      case LayerKind::Linear: {
        const GemmDims g = layer.gemm;
        d.input = Tensor({g.n, g.k});
        d.weights = Tensor({g.m, g.k});
        d.bias = Tensor({g.m});
        break;
      }
      case LayerKind::Gemm:
      case LayerKind::SparseGemm: {
        const GemmDims g = layer.gemm;
        d.input = Tensor({g.k, g.n});   // B operand
        d.weights = Tensor({g.m, g.k}); // A operand
        break;
      }
      case LayerKind::MaxPool: {
        const Conv2dShape &c = layer.conv;
        d.input = Tensor({c.N, c.C, c.X, c.Y});
        break;
      }
    }
    d.input.fillUniform(rng, 0.0f, 1.0f);
    if (!d.weights.empty()) {
        d.weights.fillNormal(rng, 0.0f, 0.2f);
        if (sparsity > 0.0)
            pruneFiltersWithJitter(d.weights, sparsity, jitter, rng);
    }
    if (!d.bias.empty())
        d.bias.fillUniform(rng, -0.05f, 0.05f);
    return d;
}

SimulationResult
runLayer(Stonne &st, const LayerSpec &layer, const LayerData &data,
         std::optional<Tile> tile)
{
    switch (layer.kind) {
      case LayerKind::Convolution:
        st.configureConv(layer, tile);
        break;
      case LayerKind::Linear:
        st.configureLinear(layer, tile);
        break;
      case LayerKind::Gemm:
        st.configureDmm(layer, tile);
        break;
      case LayerKind::SparseGemm:
        st.configureSpmm(layer);
        break;
      case LayerKind::MaxPool:
        st.configureMaxPool(layer);
        break;
    }
    st.configureData(data.input, data.weights, data.bias);
    return st.runOperation();
}

} // namespace stonne
