#include "engine/stonne_api.hpp"

#include <algorithm>
#include <chrono>

#include "common/logging.hpp"
#include "common/sim_context.hpp"
#include "engine/output_module.hpp"
#include "faults/fault_injector.hpp"
#include "tensor/im2col.hpp"

namespace stonne {

void
SimulationResult::merge(const SimulationResult &o)
{
    const double weighted =
        ms_utilization * static_cast<double>(cycles) +
        o.ms_utilization * static_cast<double>(o.cycles);
    cycles += o.cycles;
    time_ms += o.time_ms;
    wall_seconds += o.wall_seconds;
    // An event-engine operation can finish inside one clock tick, so
    // the summed wall time may still be 0.0; clamp the denominator to
    // one nanosecond so the throughput stays a finite JSON number.
    sim_cycles_per_second = cycles > 0
        ? static_cast<double>(cycles) / std::max(wall_seconds, 1e-9)
        : 0.0;
    macs += o.macs;
    skipped_macs += o.skipped_macs;
    mem_accesses += o.mem_accesses;
    ms_utilization =
        cycles > 0 ? weighted / static_cast<double>(cycles) : 0.0;
    energy.gb_uj += o.energy.gb_uj;
    energy.dn_uj += o.energy.dn_uj;
    energy.mn_uj += o.energy.mn_uj;
    energy.rn_uj += o.energy.rn_uj;
    energy.dram_uj += o.energy.dram_uj;
    energy.static_uj += o.energy.static_uj;
    if (trace_path.empty())
        trace_path = o.trace_path;
    if (checkpoint_path.empty())
        checkpoint_path = o.checkpoint_path;
    restored_from_cycle = std::max(restored_from_cycle,
                                   o.restored_from_cycle);
    dse.merge(o.dse);
}

Stonne::Stonne(const HardwareConfig &cfg)
    : accel_(std::make_unique<Accelerator>(cfg)),
      energy_model_(cfg,
                    cfg.energy_table_path.empty()
                        ? EnergyTable::forDataType(cfg.data_type)
                        : EnergyTable::parseFile(cfg.energy_table_path)),
      area_model_(cfg,
                  cfg.area_table_path.empty()
                      ? AreaTable::forDataType(cfg.data_type)
                      : AreaTable::parseFile(cfg.area_table_path))
{
}

Stonne::Stonne(const std::string &cfg_path)
    : Stonne(HardwareConfig::parseFile(cfg_path))
{
}

Stonne::~Stonne() = default;

void
Stonne::configureConv(const LayerSpec &layer, std::optional<Tile> tile)
{
    fatalIf(layer.kind != LayerKind::Convolution,
            "ConfigureCONV expects a convolution layer spec");
    layer.validate();
    layer_ = layer;
    tile_ = tile;
    op_pending_ = true;
    data_bound_ = false;
}

void
Stonne::configureLinear(const LayerSpec &layer, std::optional<Tile> tile)
{
    fatalIf(layer.kind != LayerKind::Linear,
            "ConfigureLinear expects a linear layer spec");
    layer.validate();
    layer_ = layer;
    tile_ = tile;
    op_pending_ = true;
    data_bound_ = false;
}

void
Stonne::configureDmm(const LayerSpec &layer, std::optional<Tile> tile)
{
    fatalIf(layer.kind != LayerKind::Gemm,
            "ConfigureDMM expects a GEMM layer spec");
    layer.validate();
    layer_ = layer;
    tile_ = tile;
    op_pending_ = true;
    data_bound_ = false;
}

void
Stonne::configureSpmm(const LayerSpec &layer)
{
    fatalIf(layer.kind != LayerKind::SparseGemm,
            "ConfigureSpMM expects a sparse GEMM layer spec");
    fatalIf(accel_->config().controller_type != ControllerType::Sparse,
            "ConfigureSpMM needs a sparse-controller composition");
    layer.validate();
    layer_ = layer;
    tile_.reset();
    op_pending_ = true;
    data_bound_ = false;
}

void
Stonne::configureMaxPool(const LayerSpec &layer)
{
    fatalIf(layer.kind != LayerKind::MaxPool,
            "ConfigureMaxPool expects a max-pooling layer spec");
    fatalIf(!accel_->supportsMaxPool(),
            "this composition cannot map max pooling; run it natively");
    layer.validate();
    layer_ = layer;
    tile_.reset();
    op_pending_ = true;
    data_bound_ = false;
}

void
Stonne::configureData(Tensor input, Tensor weights, Tensor bias)
{
    fatalIf(!op_pending_,
            "ConfigureData issued before any Configure* instruction");
    input_ = std::move(input);
    weights_ = std::move(weights);
    bias_ = std::move(bias);
    data_bound_ = true;
}

void
Stonne::setSchedulingPolicy(SchedulingPolicy policy, std::uint64_t seed)
{
    policy_ = policy;
    policy_seed_ = seed;
}

SimulationResult
Stonne::finishOperation(const ControllerResult &cr,
                        const std::vector<count_t> &before)
{
    SimulationResult r;
    r.layer_name = layer_.name;
    r.accelerator = accel_->config().name;
    r.cycles = cr.cycles;
    r.time_ms = static_cast<double>(cr.cycles) /
        (accel_->config().clock_ghz * 1e6);
    r.macs = cr.macs;
    r.skipped_macs = cr.skipped_macs;
    r.mem_accesses = cr.mem_accesses;
    r.ms_utilization = cr.ms_utilization;
    const StatsRegistry delta = accel_->stats().delta(before);
    r.energy = energy_model_.compute(delta, cr.cycles);
    r.area = area_model_.compute();
    total_cycles_ += cr.cycles;
    op_pending_ = false;
    data_bound_ = false;
    last_result_ = r;
    return r;
}

void
Stonne::writeReports(const std::string &prefix) const
{
    OutputModule::writeFile(
        prefix + ".json",
        OutputModule::summary(config(), last_result_).dump() + "\n");
    OutputModule::writeFile(prefix + ".counters",
                            OutputModule::counterFile(stats()));
}

void
Stonne::saveCheckpointTo(ArchiveWriter &ar, std::uint32_t kind) const
{
    ar.beginSection("meta");
    ar.putU32(kind);
    ar.putString(accel_->config().toConfigText());
    ar.endSection();
    ar.beginSection("stonne");
    ar.putU64(total_cycles_);
    ar.endSection();
    accel_->checkpoint(ar);
}

void
Stonne::loadCheckpointFrom(ArchiveReader &ar)
{
    ar.enterSection("meta");
    ar.getU32(); // kind — the file-level entry points dispatch on it
    ar.getString();
    ar.leaveSection();
    ar.enterSection("stonne");
    total_cycles_ = ar.getU64();
    ar.leaveSection();
    accel_->restore(ar);
    restored_from_cycle_ = total_cycles_;
    last_checkpoint_cycle_ = total_cycles_;
}

void
Stonne::saveCheckpoint(const std::string &path) const
{
    ArchiveWriter ar;
    saveCheckpointTo(ar, kCheckpointKindEngine);
    ar.writeFile(path);
}

void
Stonne::loadCheckpoint(const std::string &path)
{
    ArchiveReader ar(path);
    loadCheckpointFrom(ar);
    if (!ar.atEnd())
        ar.fail("the snapshot carries a full model-run state; resume it "
                "through the ModelRunner, not the engine API");
}

void
Stonne::maybeAutoCheckpoint(SimulationResult &r)
{
    const HardwareConfig &cfg = accel_->config();
    r.restored_from_cycle = restored_from_cycle_;
    if (cfg.checkpoint && auto_checkpoint_ &&
        total_cycles_ - last_checkpoint_cycle_ >=
            static_cast<cycle_t>(cfg.checkpoint_interval_cycles)) {
        saveCheckpoint(cfg.checkpoint_file);
        last_checkpoint_cycle_ = total_cycles_;
        r.checkpoint_path = cfg.checkpoint_file;
    }
    last_result_ = r;
}

SimulationResult
Stonne::runOperation()
{
    // A deadlock abort still yields a post-mortem trace: the cycles up
    // to the stall, a "deadlock" instant event, and the flush — the
    // cycle-level counterpart of the watchdog's state report.
    try {
        SimulationResult r = runOperationImpl();
        maybeAutoCheckpoint(r);
        return r;
    } catch (const DeadlockError &) {
        if (Tracer *t = accel_->tracer()) {
            t->instant("deadlock", 0);
            t->flush();
        }
        throw;
    }
}

SimulationResult
Stonne::runOperationImpl()
{
    fatalIf(!op_pending_, "RunOperation issued with no configured op");
    fatalIf(!data_bound_, "RunOperation issued before ConfigureData");

    const auto wall_start = std::chrono::steady_clock::now();
    const HardwareConfig &cfg = accel_->config();

    // Error context for everything below: a fatal/panic/DeadlockError
    // raised anywhere inside this operation names the accelerator and
    // the layer it was simulating.
    SimScope accel_scope("accelerator", cfg.name);
    SimScope layer_scope("layer", layer_.name);

    // The stall budget is per operation, not per process lifetime.
    accel_->watchdog().reset();

    // Memory/interconnect faults strike the operands as they stage
    // on-chip: DRAM bit flips on everything staged, in-flight flit
    // corruption on the streamed (non-stationary) operand.
    FaultInjector *faults = accel_->faults();
    if (faults != nullptr && faults->active()) {
        faults->corruptTensor(input_, FaultSite::DramStaging);
        faults->corruptTensor(weights_, FaultSite::DramStaging);
        faults->corruptTensor(input_, FaultSite::FlitPayload);
    }

    const std::vector<count_t> before = accel_->stats().snapshot();
    ControllerResult cr;

    switch (layer_.kind) {
      case LayerKind::Convolution: {
        const Conv2dShape &c = layer_.conv;
        output_ = Tensor({c.N, c.K, c.outX(), c.outY()});
        if (cfg.controller_type == ControllerType::Dense) {
            const Tile tile = tile_ ? *tile_ :
                accel_->denseController().mapper().generateTile(layer_);
            cr = accel_->denseController().runConvolution(
                layer_, tile, input_, weights_, bias_, output_);
        } else if (cfg.controller_type == ControllerType::Snapea) {
            const SnapeaReorderTable table =
                SnapeaReorderTable::build(weights_);
            cr = accel_->snapeaController().runConvolution(
                layer_, input_, weights_, bias_, table,
                snapea_early_exit_, output_);
        } else {
            // Sparse composition: lower the convolution to one SpMM
            // through im2col (Section IV-B). Grouped convolutions
            // become a block-diagonal stationary matrix — off-group
            // weights are zeros, and zeros are free on a sparse
            // accelerator, so all groups share the array.
            const index_t window = c.R * c.S * c.cPerGroup();
            const index_t kg = c.kPerGroup();
            const GemmDims gd = layer_.gemmView();

            Tensor a({c.K, c.G * window});
            Tensor b({c.G * window, gd.n});
            for (index_t g = 0; g < c.G; ++g) {
                const Tensor ag = filtersToMatrix(weights_, c, g);
                for (index_t k = 0; k < kg; ++k)
                    for (index_t e = 0; e < window; ++e)
                        a.at(g * kg + k, g * window + e) = ag.at(k, e);
                const Tensor bg = im2col(input_, c, g);
                for (index_t e = 0; e < window; ++e)
                    for (index_t j = 0; j < gd.n; ++j)
                        b.at(g * window + e, j) = bg.at(e, j);
            }
            Tensor out({c.K, gd.n});
            cr = accel_->sparseController().runSpMMDense(
                a, b, out, policy_, skip_zero_b_, policy_seed_);
            if (!bias_.empty())
                for (index_t k = 0; k < c.K; ++k)
                    for (index_t j = 0; j < gd.n; ++j)
                        out.at(k, j) += bias_.at(k);
            // Scatter back per group (col2im consumes per-group rows).
            for (index_t g = 0; g < c.G; ++g) {
                Tensor og({kg, gd.n});
                for (index_t k = 0; k < kg; ++k)
                    for (index_t j = 0; j < gd.n; ++j)
                        og.at(k, j) = out.at(g * kg + k, j);
                col2im(og, c, g, output_);
            }
        }
        break;
      }
      case LayerKind::Linear: {
        const GemmDims g = layer_.gemm;
        output_ = Tensor({g.n, g.m});
        if (cfg.controller_type == ControllerType::Sparse) {
            // Stationary sparse weights, streamed transposed inputs.
            Tensor b({g.k, g.n});
            for (index_t i = 0; i < g.n; ++i)
                for (index_t j = 0; j < g.k; ++j)
                    b.at(j, i) = input_.at(i, j);
            Tensor out({g.m, g.n});
            cr = accel_->sparseController().runSpMMDense(
                weights_, b, out, policy_, skip_zero_b_, policy_seed_);
            for (index_t i = 0; i < g.n; ++i)
                for (index_t j = 0; j < g.m; ++j)
                    output_.at(i, j) = out.at(j, i) +
                        (bias_.empty() ? 0.0f : bias_.at(j));
        } else if (cfg.controller_type == ControllerType::Snapea) {
            // SNAPEA applies to ReLU-gated convolutions; linear layers
            // run through the same pipeline without the cut-off, as a
            // 1x1 convolution over a (1, K, 1, N) activation map.
            Conv2dShape shape;
            shape.C = g.k;
            shape.K = g.m;
            shape.Y = g.n;
            Tensor in({g.k, g.n});
            for (index_t i = 0; i < g.n; ++i)
                for (index_t j = 0; j < g.k; ++j)
                    in.at(j, i) = input_.at(i, j);
            const Tensor in4 = in.reshaped({1, g.k, 1, g.n});
            const Tensor w4 = weights_.reshaped({g.m, g.k, 1, 1});
            Tensor out({1, g.m, 1, g.n});
            const LayerSpec as_conv =
                LayerSpec::convolution(layer_.name + ".as_conv", shape);
            const SnapeaReorderTable table = SnapeaReorderTable::build(w4);
            cr = accel_->snapeaController().runConvolution(
                as_conv, in4, w4, bias_, table, false, out);
            for (index_t i = 0; i < g.n; ++i)
                for (index_t j = 0; j < g.m; ++j)
                    output_.at(i, j) = out.at(0, j, 0, i);
        } else {
            const Tile tile = tile_ ? *tile_ :
                accel_->denseController().mapper().generateTile(layer_);
            cr = accel_->denseController().runLinear(
                layer_, tile, input_, weights_, bias_, output_);
        }
        break;
      }
      case LayerKind::Gemm: {
        const GemmDims g = layer_.gemm;
        output_ = Tensor({g.m, g.n});
        if (cfg.controller_type == ControllerType::Sparse) {
            cr = accel_->sparseController().runSpMMDense(
                weights_, input_, output_, policy_, skip_zero_b_,
                policy_seed_);
        } else {
            fatalIf(cfg.controller_type == ControllerType::Snapea,
                    "ConfigureDMM is not defined for the SNAPEA "
                    "composition");
            const Tile tile = tile_ ? *tile_ :
                accel_->denseController().mapper().generateTile(layer_);
            cr = accel_->denseController().runGemm(layer_, tile, weights_,
                                                   input_, output_);
        }
        break;
      }
      case LayerKind::SparseGemm: {
        const GemmDims g = layer_.gemm;
        output_ = Tensor({g.m, g.n});
        cr = accel_->sparseController().runSpMMDense(
            weights_, input_, output_, policy_, skip_zero_b_,
            policy_seed_);
        break;
      }
      case LayerKind::MaxPool: {
        const Conv2dShape &c = layer_.conv;
        const index_t xo = (c.X - layer_.pool_window) / layer_.pool_stride
            + 1;
        const index_t yo = (c.Y - layer_.pool_window) / layer_.pool_stride
            + 1;
        output_ = Tensor({c.N, c.C, xo, yo});
        cr = accel_->denseController().runMaxPool(layer_, input_, output_);
        break;
      }
    }

    // Stuck-at-zero compute: under the output-stationary mapping output
    // element i accumulates at multiplier switch i mod ms_size, so a
    // stuck switch zeroes its output slice.
    if (faults != nullptr && faults->active())
        faults->applyStuckMultipliers(output_);

    SimulationResult r = finishOperation(cr, before);
    // Integer nanoseconds from the monotonic clock, not a truncated
    // double: a sub-microsecond event-engine run must still measure a
    // nonzero wall time, and the clamped denominator keeps the
    // throughput finite even on a clock whose tick it undercuts
    // (inf/0 here used to poison the JSON summary downstream).
    const auto wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    r.wall_seconds = static_cast<double>(wall_ns) * 1e-9;
    r.sim_cycles_per_second =
        static_cast<double>(r.cycles) / std::max(r.wall_seconds, 1e-9);
    if (Tracer *t = accel_->tracer()) {
        t->flush();
        r.trace_path = t->filePath();
    }
    last_result_ = r;
    return r;
}

} // namespace stonne
