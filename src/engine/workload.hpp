/**
 * @file
 * Shared synthetic-workload construction: named layer sets, operand
 * generation and one-call layer execution through the STONNE API.
 *
 * Lives in the library so the benchmark binaries (bench/), the
 * design-space explorer (src/dse) and the tests all build their
 * workloads through one construction path: the tuner's candidate
 * evaluations run exactly the simulation the benchmarks time.
 *
 * The eight Figure 1 layers (S-SC, S-EC, M-FC, M-L, R-C, R-L, B-TR,
 * B-L) are the representative layer types of Squeezenet, Mobilenets,
 * Resnets-50 and BERT, at the Bench scale of the model zoo.
 */

#ifndef STONNE_ENGINE_WORKLOAD_HPP
#define STONNE_ENGINE_WORKLOAD_HPP

#include <optional>
#include <string>
#include <vector>

#include "controller/layer.hpp"
#include "controller/tile.hpp"
#include "engine/stonne_api.hpp"
#include "tensor/tensor.hpp"

namespace stonne {

/** A layer with its paper tag (e.g. "S-SC"). */
struct NamedLayer {
    std::string tag;
    LayerSpec spec;
};

/** The eight Figure 1 layers at Bench scale. */
std::vector<NamedLayer> fig1Layers();

/** Operand bundle for one layer. */
struct LayerData {
    Tensor input;
    Tensor weights;
    Tensor bias;
};

/**
 * Deterministic synthetic operands for a layer, with the weights
 * magnitude-pruned to `sparsity` (0 keeps them dense). `jitter` spreads
 * the per-filter density as real pruned networks do (Fig 7b).
 */
LayerData makeLayerData(const LayerSpec &layer, double sparsity,
                        std::uint64_t seed, double jitter = 0.15);

/**
 * Run one layer on an accelerator instance via the STONNE API,
 * dispatching on the layer kind. An explicit `tile` overrides the
 * greedy mapper's choice for the dense-controller kinds that take one
 * (Convolution, Linear, Gemm); it is ignored for the rest.
 */
SimulationResult runLayer(Stonne &st, const LayerSpec &layer,
                          const LayerData &data,
                          std::optional<Tile> tile = std::nullopt);

} // namespace stonne

#endif // STONNE_ENGINE_WORKLOAD_HPP
