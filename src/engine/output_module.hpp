/**
 * @file
 * Output module: simulation statistics reporting (Section III).
 *
 * After each simulated layer STONNE reports two artifacts:
 *  1. a JSON summary of the statistics (performance, utilization,
 *     energy, area) for user scripts, and
 *  2. a *counter file* in a customized line format with the activity
 *     count of each architectural component, the input of the
 *     table-based energy model.
 */

#ifndef STONNE_ENGINE_OUTPUT_MODULE_HPP
#define STONNE_ENGINE_OUTPUT_MODULE_HPP

#include <string>
#include <vector>

#include "common/json_writer.hpp"
#include "common/stats.hpp"
#include "engine/stonne_api.hpp"
#include "frontend/runner.hpp"

namespace stonne {

/** Builds the JSON summary and the counter file. */
class OutputModule
{
  public:
    /** JSON summary of one simulated operation. */
    static JsonValue summary(const HardwareConfig &cfg,
                             const SimulationResult &result);

    /**
     * JSON report of one full-model inference: per-layer records (with
     * where each op ran) plus the aggregated totals.
     */
    static JsonValue modelReport(const std::string &model_name,
                                 const HardwareConfig &cfg,
                                 const std::vector<LayerRunRecord> &records,
                                 const SimulationResult &total);

    /** JSON summary plus the full counter dump. */
    static JsonValue summaryWithCounters(const HardwareConfig &cfg,
                                         const SimulationResult &result,
                                         const StatsRegistry &stats);

    /** Counter file: one `group component count` line per counter. */
    static std::string counterFile(const StatsRegistry &stats);

    /** Write text content to a file (fatal on I/O errors). */
    static void writeFile(const std::string &path,
                          const std::string &content);
};

} // namespace stonne

#endif // STONNE_ENGINE_OUTPUT_MODULE_HPP
