#include "engine/accelerator.hpp"

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"
#include "network/dn_benes.hpp"
#include "network/dn_popn.hpp"
#include "network/dn_tree.hpp"
#include "network/rn_fan.hpp"
#include "network/rn_linear.hpp"
#include "network/rn_tree.hpp"

namespace stonne {

Accelerator::Accelerator(const HardwareConfig &cfg)
    : cfg_(cfg)
{
    cfg_.validate();

    watchdog_ = std::make_unique<Watchdog>(cfg_.watchdog_cycles);
    // The per-operation simulated-cycle ceiling of the service's
    // robustness envelope; 0 (the default) leaves runs unbounded.
    watchdog_->setCycleBudget(
        static_cast<cycle_t>(cfg_.job_budget_cycles));
    // A standalone accelerator is core 0 of a one-core composition:
    // when fault_core routes the injector to some other core, this
    // instance stays injector-free (MulticoreRunner clears faults.core
    // in the per-core configs it builds, so routing happens exactly
    // once, at whichever layer owns the composition).
    if (cfg_.faults.enabled && cfg_.faults.core <= 0)
        faults_ = std::make_unique<FaultInjector>(cfg_.faults,
                                                  cfg_.ms_size, stats_);
    if (cfg_.trace)
        trace_ = std::make_unique<Tracer>(
            stats_, static_cast<cycle_t>(cfg_.trace_sample_cycles),
            cfg_.trace_file, cfg_.name);

    engine_ = std::make_unique<EventEngine>(cfg_.engine_type,
                                            watchdog_.get(), faults_.get(),
                                            trace_.get());

    gb_ = std::make_unique<GlobalBuffer>(
        cfg_.gb_size_kib, cfg_.dn_bandwidth, cfg_.rn_bandwidth,
        bytesPerElement(cfg_.data_type), stats_);
    dram_ = std::make_unique<Dram>(cfg_.dram_bandwidth_gbps, cfg_.clock_ghz,
                                   cfg_.dram_latency_cycles, stats_);

    switch (cfg_.dn_type) {
      case DnType::Tree:
        dn_ = std::make_unique<TreeDistributionNetwork>(
            cfg_.ms_size, cfg_.dn_bandwidth, stats_);
        break;
      case DnType::Benes:
        dn_ = std::make_unique<BenesDistributionNetwork>(
            cfg_.ms_size, cfg_.dn_bandwidth, stats_);
        break;
      case DnType::PointToPoint:
        dn_ = std::make_unique<PointToPointNetwork>(
            cfg_.ms_size, cfg_.dn_bandwidth, stats_);
        break;
    }

    mn_ = std::make_unique<MultiplierArray>(cfg_.ms_size, cfg_.mn_type,
                                            stats_);

    switch (cfg_.rn_type) {
      case RnType::Art:
        rn_ = std::make_unique<ArtReductionNetwork>(
            cfg_.ms_size, false, cfg_.accumulator_size, stats_);
        break;
      case RnType::ArtAcc:
        rn_ = std::make_unique<ArtReductionNetwork>(
            cfg_.ms_size, true, cfg_.accumulator_size, stats_);
        break;
      case RnType::Fan:
        rn_ = std::make_unique<FanReductionNetwork>(cfg_.ms_size, stats_);
        break;
      case RnType::Linear:
        rn_ = std::make_unique<LinearReductionNetwork>(cfg_.ms_size,
                                                       stats_);
        break;
    }

    switch (cfg_.controller_type) {
      case ControllerType::Dense:
        dense_ = std::make_unique<DenseController>(
            cfg_, *engine_, *dn_, *mn_, *rn_, *gb_, *dram_,
            watchdog_.get(), faults_.get(), trace_.get());
        break;
      case ControllerType::Sparse:
        sparse_ = std::make_unique<SparseController>(
            cfg_, *engine_, *dn_, *mn_, *rn_, *gb_, *dram_,
            watchdog_.get(), faults_.get(), trace_.get());
        break;
      case ControllerType::Snapea:
        snapea_ = std::make_unique<SnapeaController>(
            cfg_, *engine_, *dn_, *mn_, *rn_, *gb_, *dram_,
            watchdog_.get(), faults_.get(), trace_.get());
        break;
    }

    registerSnapshotSources();
}

const std::string &
Accelerator::controllerPhase() const
{
    static const std::string kNone = "(no controller)";
    if (dense_)
        return dense_->phase();
    if (sparse_)
        return sparse_->phase();
    if (snapea_)
        return snapea_->phase();
    return kNone;
}

void
Accelerator::registerSnapshotSources()
{
    watchdog_->addSource("controller", [this](std::ostream &os) {
        os << controllerTypeName(cfg_.controller_type)
           << " controller: phase '" << controllerPhase() << "'\n";
    });
    watchdog_->addSource("global_buffer", [this](std::ostream &os) {
        gb_->dumpState(os);
    });
    watchdog_->addSource("distribution_network",
                         [this](std::ostream &os) { dn_->dumpState(os); });
    watchdog_->addSource("multiplier_network",
                         [this](std::ostream &os) { mn_->dumpState(os); });
    watchdog_->addSource("reduction_network",
                         [this](std::ostream &os) { rn_->dumpState(os); });
    if (faults_) {
        watchdog_->addSource("fault_injector", [this](std::ostream &os) {
            os << faults_->describe() << "\n";
        });
    }
}

Accelerator::~Accelerator() = default;

DenseController &
Accelerator::denseController()
{
    fatalIf(!dense_, "this composition uses a ",
            controllerTypeName(cfg_.controller_type),
            " controller, not the dense controller");
    return *dense_;
}

SparseController &
Accelerator::sparseController()
{
    fatalIf(!sparse_, "this composition uses a ",
            controllerTypeName(cfg_.controller_type),
            " controller, not the sparse controller");
    return *sparse_;
}

SnapeaController &
Accelerator::snapeaController()
{
    fatalIf(!snapea_, "this composition uses a ",
            controllerTypeName(cfg_.controller_type),
            " controller, not the SNAPEA controller");
    return *snapea_;
}

bool
Accelerator::supportsMaxPool() const
{
    return cfg_.controller_type == ControllerType::Dense &&
           cfg_.dn_type != DnType::PointToPoint;
}

void
Accelerator::cycle()
{
    dn_->cycle();
    mn_->cycle();
    rn_->cycle();
    gb_->nextCycle();
}

void
Accelerator::reset()
{
    dn_->reset();
    mn_->reset();
    rn_->reset();
    stats_.reset();
    watchdog_->reset();
    engine_->reset();
}

void
Accelerator::checkpoint(ArchiveWriter &ar) const
{
    ar.beginSection("config");
    ar.putString(cfg_.toConfigText());
    ar.endSection();

    const auto save = [&ar](const char *name, const Checkpointable &c) {
        ar.beginSection(name);
        c.saveState(ar);
        ar.endSection();
    };
    save("stats", stats_);
    save("watchdog", *watchdog_);
    save("gb", *gb_);
    save("dram", *dram_);
    save("dn", *dn_);
    save("mn", *mn_);
    save("rn", *rn_);

    ar.beginSection("controller");
    if (dense_)
        dense_->saveState(ar);
    else if (sparse_)
        sparse_->saveState(ar);
    else if (snapea_)
        snapea_->saveState(ar);
    ar.endSection();

    ar.beginSection("faults");
    ar.putBool(faults_ != nullptr);
    if (faults_)
        faults_->saveState(ar);
    ar.endSection();

    ar.beginSection("trace");
    ar.putBool(trace_ != nullptr);
    if (trace_)
        trace_->saveState(ar);
    ar.endSection();

    ar.beginSection("engine");
    engine_->saveState(ar);
    ar.endSection();
}

void
Accelerator::restore(ArchiveReader &ar)
{
    ar.enterSection("config");
    const std::string snap_text = ar.getString();
    ar.leaveSection();
    const HardwareConfig snap_cfg =
        HardwareConfig::parse(snap_text, "<checkpoint>");
    // Snapshots restore across differing execution-policy knobs
    // (fast-forward, watchdog, trace/checkpoint destinations, dse
    // tuning) but never across architectural changes.
    if (snap_cfg.structuralText() != cfg_.structuralText())
        ar.fail("the snapshot was taken on accelerator '" +
                snap_cfg.name + "' whose hardware configuration differs "
                "from this instance ('" + cfg_.name +
                "'); restore requires a structurally identical build");

    const auto load = [&ar](const char *name, Checkpointable &c) {
        ar.enterSection(name);
        c.loadState(ar);
        ar.leaveSection();
    };
    load("stats", stats_);
    load("watchdog", *watchdog_);
    load("gb", *gb_);
    load("dram", *dram_);
    load("dn", *dn_);
    load("mn", *mn_);
    load("rn", *rn_);

    ar.enterSection("controller");
    if (dense_)
        dense_->loadState(ar);
    else if (sparse_)
        sparse_->loadState(ar);
    else if (snapea_)
        snapea_->loadState(ar);
    ar.leaveSection();

    ar.enterSection("faults");
    const bool snap_faults = ar.getBool();
    if (snap_faults != (faults_ != nullptr))
        ar.fail(snap_faults
                    ? "the snapshot carries fault-injector state but "
                      "faults are disabled in this configuration"
                    : "this configuration injects faults but the "
                      "snapshot carries no fault-injector state");
    if (faults_)
        faults_->loadState(ar);
    ar.leaveSection();

    ar.enterSection("trace");
    const bool snap_trace = ar.getBool();
    if (snap_trace != (trace_ != nullptr))
        ar.fail(snap_trace
                    ? "the snapshot carries tracer state but tracing is "
                      "disabled in this configuration"
                    : "this configuration traces but the snapshot "
                      "carries no tracer state");
    if (trace_)
        trace_->loadState(ar);
    ar.leaveSection();

    ar.enterSection("engine");
    engine_->loadState(ar);
    ar.leaveSection();
}

} // namespace stonne
