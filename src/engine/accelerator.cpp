#include "engine/accelerator.hpp"

#include "common/logging.hpp"
#include "network/dn_benes.hpp"
#include "network/dn_popn.hpp"
#include "network/dn_tree.hpp"
#include "network/rn_fan.hpp"
#include "network/rn_linear.hpp"
#include "network/rn_tree.hpp"

namespace stonne {

Accelerator::Accelerator(const HardwareConfig &cfg)
    : cfg_(cfg)
{
    cfg_.validate();

    watchdog_ = std::make_unique<Watchdog>(cfg_.watchdog_cycles);
    if (cfg_.faults.enabled)
        faults_ = std::make_unique<FaultInjector>(cfg_.faults,
                                                  cfg_.ms_size, stats_);
    if (cfg_.trace)
        trace_ = std::make_unique<Tracer>(
            stats_, static_cast<cycle_t>(cfg_.trace_sample_cycles),
            cfg_.trace_file, cfg_.name);

    gb_ = std::make_unique<GlobalBuffer>(
        cfg_.gb_size_kib, cfg_.dn_bandwidth, cfg_.rn_bandwidth,
        bytesPerElement(cfg_.data_type), stats_);
    dram_ = std::make_unique<Dram>(cfg_.dram_bandwidth_gbps, cfg_.clock_ghz,
                                   cfg_.dram_latency_cycles, stats_);

    switch (cfg_.dn_type) {
      case DnType::Tree:
        dn_ = std::make_unique<TreeDistributionNetwork>(
            cfg_.ms_size, cfg_.dn_bandwidth, stats_);
        break;
      case DnType::Benes:
        dn_ = std::make_unique<BenesDistributionNetwork>(
            cfg_.ms_size, cfg_.dn_bandwidth, stats_);
        break;
      case DnType::PointToPoint:
        dn_ = std::make_unique<PointToPointNetwork>(
            cfg_.ms_size, cfg_.dn_bandwidth, stats_);
        break;
    }

    mn_ = std::make_unique<MultiplierArray>(cfg_.ms_size, cfg_.mn_type,
                                            stats_);

    switch (cfg_.rn_type) {
      case RnType::Art:
        rn_ = std::make_unique<ArtReductionNetwork>(
            cfg_.ms_size, false, cfg_.accumulator_size, stats_);
        break;
      case RnType::ArtAcc:
        rn_ = std::make_unique<ArtReductionNetwork>(
            cfg_.ms_size, true, cfg_.accumulator_size, stats_);
        break;
      case RnType::Fan:
        rn_ = std::make_unique<FanReductionNetwork>(cfg_.ms_size, stats_);
        break;
      case RnType::Linear:
        rn_ = std::make_unique<LinearReductionNetwork>(cfg_.ms_size,
                                                       stats_);
        break;
    }

    switch (cfg_.controller_type) {
      case ControllerType::Dense:
        dense_ = std::make_unique<DenseController>(
            cfg_, *dn_, *mn_, *rn_, *gb_, *dram_, watchdog_.get(),
            faults_.get(), trace_.get());
        break;
      case ControllerType::Sparse:
        sparse_ = std::make_unique<SparseController>(
            cfg_, *dn_, *mn_, *rn_, *gb_, *dram_, watchdog_.get(),
            faults_.get(), trace_.get());
        break;
      case ControllerType::Snapea:
        snapea_ = std::make_unique<SnapeaController>(
            cfg_, *dn_, *mn_, *rn_, *gb_, *dram_, watchdog_.get(),
            faults_.get(), trace_.get());
        break;
    }

    registerSnapshotSources();
}

const std::string &
Accelerator::controllerPhase() const
{
    static const std::string kNone = "(no controller)";
    if (dense_)
        return dense_->phase();
    if (sparse_)
        return sparse_->phase();
    if (snapea_)
        return snapea_->phase();
    return kNone;
}

void
Accelerator::registerSnapshotSources()
{
    watchdog_->addSource("controller", [this](std::ostream &os) {
        os << controllerTypeName(cfg_.controller_type)
           << " controller: phase '" << controllerPhase() << "'\n";
    });
    watchdog_->addSource("global_buffer", [this](std::ostream &os) {
        gb_->dumpState(os);
    });
    watchdog_->addSource("distribution_network",
                         [this](std::ostream &os) { dn_->dumpState(os); });
    watchdog_->addSource("multiplier_network",
                         [this](std::ostream &os) { mn_->dumpState(os); });
    watchdog_->addSource("reduction_network",
                         [this](std::ostream &os) { rn_->dumpState(os); });
    if (faults_) {
        watchdog_->addSource("fault_injector", [this](std::ostream &os) {
            os << faults_->describe() << "\n";
        });
    }
}

Accelerator::~Accelerator() = default;

DenseController &
Accelerator::denseController()
{
    fatalIf(!dense_, "this composition uses a ",
            controllerTypeName(cfg_.controller_type),
            " controller, not the dense controller");
    return *dense_;
}

SparseController &
Accelerator::sparseController()
{
    fatalIf(!sparse_, "this composition uses a ",
            controllerTypeName(cfg_.controller_type),
            " controller, not the sparse controller");
    return *sparse_;
}

SnapeaController &
Accelerator::snapeaController()
{
    fatalIf(!snapea_, "this composition uses a ",
            controllerTypeName(cfg_.controller_type),
            " controller, not the SNAPEA controller");
    return *snapea_;
}

bool
Accelerator::supportsMaxPool() const
{
    return cfg_.controller_type == ControllerType::Dense &&
           cfg_.dn_type != DnType::PointToPoint;
}

void
Accelerator::cycle()
{
    dn_->cycle();
    mn_->cycle();
    rn_->cycle();
    gb_->nextCycle();
}

void
Accelerator::reset()
{
    dn_->reset();
    mn_->reset();
    rn_->reset();
    stats_.reset();
    watchdog_->reset();
}

} // namespace stonne
