#include "engine/output_module.hpp"

#include <fstream>
#include <sstream>

#include "common/logging.hpp"

namespace stonne {

JsonValue
OutputModule::summary(const HardwareConfig &cfg,
                      const SimulationResult &result)
{
    JsonValue j = JsonValue::makeObject();
    j.set("layer", result.layer_name);
    j.set("accelerator", result.accelerator);
    if (!result.trace_path.empty())
        j.set("trace_path", result.trace_path);
    if (!result.checkpoint_path.empty())
        j.set("checkpoint_path", result.checkpoint_path);
    if (result.restored_from_cycle > 0)
        j.set("restored_from_cycle",
              static_cast<std::uint64_t>(result.restored_from_cycle));

    JsonValue hw = JsonValue::makeObject();
    hw.set("dn_type", dnTypeName(cfg.dn_type));
    hw.set("mn_type", mnTypeName(cfg.mn_type));
    hw.set("rn_type", rnTypeName(cfg.rn_type));
    hw.set("controller", controllerTypeName(cfg.controller_type));
    hw.set("ms_size", cfg.ms_size);
    hw.set("dn_bandwidth", cfg.dn_bandwidth);
    hw.set("rn_bandwidth", cfg.rn_bandwidth);
    hw.set("gb_size_kib", cfg.gb_size_kib);
    hw.set("data_type", dataTypeName(cfg.data_type));
    j["hardware"] = hw;

    JsonValue perf = JsonValue::makeObject();
    perf.set("cycles", static_cast<std::uint64_t>(result.cycles));
    perf.set("time_ms", result.time_ms);
    perf.set("macs", static_cast<std::uint64_t>(result.macs));
    perf.set("skipped_macs",
             static_cast<std::uint64_t>(result.skipped_macs));
    perf.set("mem_accesses",
             static_cast<std::uint64_t>(result.mem_accesses));
    perf.set("ms_utilization", result.ms_utilization);
    perf.set("wall_seconds", result.wall_seconds);
    perf.set("sim_cycles_per_second", result.sim_cycles_per_second);
    j["performance"] = perf;

    JsonValue energy = JsonValue::makeObject();
    energy.set("gb_uj", result.energy.gb_uj);
    energy.set("dn_uj", result.energy.dn_uj);
    energy.set("mn_uj", result.energy.mn_uj);
    energy.set("rn_uj", result.energy.rn_uj);
    energy.set("dram_uj", result.energy.dram_uj);
    energy.set("static_uj", result.energy.static_uj);
    energy.set("total_uj", result.energy.total());
    j["energy"] = energy;

    JsonValue area = JsonValue::makeObject();
    area.set("gb_um2", result.area.gb_um2);
    area.set("dn_um2", result.area.dn_um2);
    area.set("mn_um2", result.area.mn_um2);
    area.set("rn_um2", result.area.rn_um2);
    area.set("total_um2", result.area.total());
    j["area"] = area;

    if (result.dse.enabled) {
        JsonValue dse = JsonValue::makeObject();
        dse.set("space_size", result.dse.space_size);
        dse.set("candidates_evaluated", result.dse.evaluated);
        dse.set("cache_hits", result.dse.cache_hits);
        dse.set("simulations_run", result.dse.simulations_run);
        dse.set("rank_correlation", result.dse.rank_correlation);
        dse.set("chosen_tile", result.dse.chosen_tile);
        dse.set("chosen_cycles", result.dse.chosen_cycles);
        dse.set("greedy_cycles", result.dse.greedy_cycles);
        dse.set("cycles_saved_vs_greedy",
                static_cast<double>(result.dse.cycles_saved_vs_greedy));
        j["dse"] = dse;
    }

    return j;
}

JsonValue
OutputModule::modelReport(const std::string &model_name,
                          const HardwareConfig &cfg,
                          const std::vector<LayerRunRecord> &records,
                          const SimulationResult &total)
{
    JsonValue j = JsonValue::makeObject();
    j.set("model", model_name);
    j.set("accelerator", cfg.name);

    JsonValue layers = JsonValue::makeArray();
    for (const LayerRunRecord &r : records) {
        JsonValue l = JsonValue::makeObject();
        l.set("name", r.name);
        l.set("op", opTypeName(r.op));
        l.set("where", r.offloaded ? "accelerator" : "native");
        if (r.offloaded) {
            l.set("cycles", static_cast<std::uint64_t>(r.sim.cycles));
            l.set("macs", static_cast<std::uint64_t>(r.sim.macs));
            l.set("ms_utilization", r.sim.ms_utilization);
            l.set("energy_uj", r.sim.energy.total());
            l.set("area_um2", r.sim.area.total());
        }
        layers.append(std::move(l));
    }
    j["layers"] = layers;
    j["total"] = summary(cfg, total);
    return j;
}

JsonValue
OutputModule::summaryWithCounters(const HardwareConfig &cfg,
                                  const SimulationResult &result,
                                  const StatsRegistry &stats)
{
    JsonValue j = summary(cfg, result);
    JsonValue counters = JsonValue::makeObject();
    for (const StatCounter &c : stats.counters())
        counters.set(c.name, static_cast<std::uint64_t>(c.value));
    j["counters"] = counters;
    return j;
}

std::string
OutputModule::counterFile(const StatsRegistry &stats)
{
    std::ostringstream os;
    for (const StatCounter &c : stats.counters())
        os << statGroupName(c.group) << ' ' << c.name << ' ' << c.value
           << '\n';
    return os.str();
}

void
OutputModule::writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open output file '", path, "'");
    out << content;
    fatalIf(!out.good(), "error writing output file '", path, "'");
}

} // namespace stonne
