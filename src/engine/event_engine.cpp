#include "engine/event_engine.hpp"

#include <algorithm>

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"
#include "controller/delivery.hpp"
#include "network/dn_benes.hpp"
#include "network/dn_popn.hpp"
#include "network/dn_tree.hpp"

namespace stonne {

namespace {

/**
 * Exact per-cycle delivery tail, devirtualized: instantiated once per
 * concrete DN topology so cycle()/injectBulk() resolve statically
 * (every concrete DN is final). The loop body replicates
 * deliverElements()'s exact loop statement for statement — the parity
 * suite holds the two engines to bit-identical behaviour.
 */
template <class Dn>
cycle_t
deliverTail(Dn &dn, GlobalBuffer &gb, index_t remaining, index_t fanout,
            PackageKind kind, Watchdog *watchdog, FaultInjector *faults,
            Tracer *trace)
{
    cycle_t cycles = 0;
    while (remaining > 0) {
        gb.nextCycle();
        dn.Dn::cycle();
        const index_t want = std::min(remaining, dn.bandwidth());
        const index_t granted = gb.readBulk(want);
        index_t sent = dn.Dn::injectBulk(granted, fanout, kind);
        index_t dropped = 0;
        if (faults != nullptr && sent > 0) {
            dropped = faults->dropFlits(sent);
            sent -= dropped;
        }
        // The trace clock advances before the watchdog may abort the
        // cycle, so a deadlock post-mortem trace includes every
        // stalled cycle; the cycle's counter activity already landed.
        if (trace != nullptr) {
            trace->tick();
            if (dropped > 0)
                trace->instant("flit_drop",
                               static_cast<count_t>(dropped));
        }
        if (watchdog != nullptr)
            watchdog->tick(static_cast<count_t>(sent));
        else if (sent <= 0)
            panic("delivery through '", dn.name(),
                  "' made no progress in a cycle");
        remaining -= sent;
        ++cycles;
    }
    return cycles;
}

} // namespace

cycle_t
EventEngine::clampToBudget(cycle_t skip) const
{
    if (watchdog_ == nullptr)
        return skip;
    const cycle_t budget = watchdog_->cycleBudget();
    if (budget == 0)
        return skip;
    const cycle_t seen = watchdog_->cyclesObserved();
    // Already past the ceiling: the exact loop's first tick throws,
    // so take no skip and let the tail reproduce that abort.
    if (seen > budget)
        return 0;
    return std::min(skip, budget + 1 - seen);
}

cycle_t
EventEngine::deliver(DistributionNetwork &dn, GlobalBuffer &gb,
                     index_t count, index_t fanout, PackageKind kind,
                     bool fast_forward)
{
    if (mode_ == EngineType::Tick) {
        const cycle_t cycles =
            deliverElements(dn, gb, count, fanout, kind, watchdog_,
                            faults_, fast_forward, trace_);
        noteSpan(Delivery, cycles);
        return cycles;
    }

    if (count < 0)
        panic("delivery of ", count, " elements through '", dn.name(),
              "': count must not be negative");
    if (fanout <= 0)
        panic("delivery through '", dn.name(),
              "' with non-positive fanout ", fanout,
              " (destination range is empty)");
    if (dn.bandwidth() <= 0)
        panic("delivery through '", dn.name(),
              "' with non-positive bandwidth ", dn.bandwidth(),
              " (should have been rejected by HardwareConfig::validate)");

    // Backlog integral up front, in closed form — identical counter
    // evolution on every path (see deliverElements()).
    dn.accountBacklog(count,
                      std::min(dn.bandwidth(), gb.readBandwidth()));

    cycle_t cycles = 0;
    index_t remaining = count;

    if (remaining > 0 && skipInhibited()) {
        // Multicore contention gate closed: a sibling core overlaps
        // this span in simulated time, so the whole delivery is
        // stepped exactly below. Count the cycles the gate cost.
        const index_t grant =
            std::min(dn.bandwidth(), gb.readBandwidth());
        gated_cycles_ +=
            static_cast<cycle_t>((remaining + grant - 1) / grant);
    } else if (faults_ == nullptr && remaining > 0) {
        const index_t grant =
            std::min(dn.bandwidth(), gb.readBandwidth());
        const cycle_t total =
            static_cast<cycle_t>((remaining + grant - 1) / grant);
        if (total > 1 && fast_forward) {
            // Legacy fast-forward span, replicated byte for byte:
            // the region is recorded on the tracer's fast-forward
            // track and the watchdog advances before the trace
            // bracket closes.
            const cycle_t skip = total - 1;
            const index_t moved = static_cast<index_t>(skip) * grant;
            if (trace_ != nullptr)
                trace_->bulkBegin();
            gb.bulkAdvance(skip, moved, 0);
            dn.bulkAdvance(skip, moved, fanout, kind);
            if (watchdog_ != nullptr)
                watchdog_->bulkTick(skip, static_cast<count_t>(grant));
            if (trace_ != nullptr)
                trace_->bulkEnd(skip, "ff.delivery");
            remaining -= moved;
            cycles += skip;
        } else if (total > 1 && skipAllowed(dn.nextActiveCycle())) {
            // Exact steady skip: no span event is recorded, counters
            // and trace samples land exactly where per-cycle stepping
            // puts them, and the skip is clamped so a cycle-budget
            // abort fires on the same cycle with the same state. The
            // tracer advances before the watchdog may throw — the
            // order the exact loop commits each cycle in.
            const cycle_t skip = clampToBudget(total - 1);
            if (skip > 0) {
                const index_t moved =
                    static_cast<index_t>(skip) * grant;
                if (trace_ != nullptr)
                    trace_->steadyBegin();
                gb.bulkAdvance(skip, moved, 0);
                dn.bulkAdvance(skip, moved, fanout, kind);
                if (trace_ != nullptr)
                    trace_->steadyEnd(skip);
                if (watchdog_ != nullptr)
                    watchdog_->bulkTick(skip,
                                        static_cast<count_t>(grant));
                remaining -= moved;
                cycles += skip;
            }
        }
    }

    switch (dn.kind()) {
      case DnKind::Tree:
        cycles += deliverTail(static_cast<TreeDistributionNetwork &>(dn),
                              gb, remaining, fanout, kind, watchdog_,
                              faults_, trace_);
        break;
      case DnKind::Benes:
        cycles += deliverTail(static_cast<BenesDistributionNetwork &>(dn),
                              gb, remaining, fanout, kind, watchdog_,
                              faults_, trace_);
        break;
      case DnKind::PointToPoint:
        cycles += deliverTail(static_cast<PointToPointNetwork &>(dn), gb,
                              remaining, fanout, kind, watchdog_, faults_,
                              trace_);
        break;
    }
    noteSpan(Delivery, cycles);
    return cycles;
}

cycle_t
EventEngine::drain(GlobalBuffer &gb, index_t count, bool fast_forward)
{
    if (mode_ == EngineType::Tick) {
        const cycle_t cycles =
            drainOutputs(gb, count, watchdog_, fast_forward, trace_);
        noteSpan(Drain, cycles);
        return cycles;
    }

    if (count < 0)
        panic("drain of ", count, " outputs through '", gb.name(),
              "': count must not be negative");

    gb.accountDrainBacklog(count);

    cycle_t cycles = 0;
    index_t remaining = count;

    if (remaining > 0 && skipInhibited()) {
        // See deliver(): the gate pins the drain to the exact loop.
        const index_t grant = gb.writeBandwidth();
        gated_cycles_ +=
            static_cast<cycle_t>((remaining + grant - 1) / grant);
    } else if (remaining > 0) {
        const index_t grant = gb.writeBandwidth();
        const cycle_t total =
            static_cast<cycle_t>((remaining + grant - 1) / grant);
        if (total > 1 && fast_forward) {
            // Legacy fast-forward drain span, byte for byte.
            const cycle_t skip = total - 1;
            const index_t drained = static_cast<index_t>(skip) * grant;
            if (trace_ != nullptr)
                trace_->bulkBegin();
            gb.bulkAdvance(skip, 0, drained);
            if (watchdog_ != nullptr)
                watchdog_->bulkTick(skip, static_cast<count_t>(grant));
            if (trace_ != nullptr)
                trace_->bulkEnd(skip, "ff.drain");
            remaining -= drained;
            cycles += skip;
        } else if (total > 1) {
            // Exact steady skip. Draining draws nothing from the
            // fault injector's RNG stream, so the skip stays legal
            // with faults attached — the exact loop would make the
            // identical per-cycle progress.
            const cycle_t skip = clampToBudget(total - 1);
            if (skip > 0) {
                const index_t drained =
                    static_cast<index_t>(skip) * grant;
                if (trace_ != nullptr)
                    trace_->steadyBegin();
                gb.bulkAdvance(skip, 0, drained);
                if (trace_ != nullptr)
                    trace_->steadyEnd(skip);
                if (watchdog_ != nullptr)
                    watchdog_->bulkTick(skip,
                                        static_cast<count_t>(grant));
                remaining -= drained;
                cycles += skip;
            }
        }
    }

    while (remaining > 0) {
        gb.nextCycle();
        const index_t granted = gb.writeBulk(remaining);
        if (trace_ != nullptr)
            trace_->tick();
        if (watchdog_ != nullptr)
            watchdog_->tick(static_cast<count_t>(granted));
        else if (granted <= 0)
            panic("drain through '", gb.name(),
                  "' made no progress in a cycle");
        remaining -= granted;
        ++cycles;
    }
    noteSpan(Drain, cycles);
    return cycles;
}

void
EventEngine::reset()
{
    now_ = 0;
    for (std::size_t s = 0; s < kStreams; ++s)
        next_active_[s] = 0;
}

void
EventEngine::saveState(ArchiveWriter &ar) const
{
    ar.putU64(now_);
    for (std::size_t s = 0; s < kStreams; ++s)
        ar.putU64(next_active_[s]);
}

void
EventEngine::loadState(ArchiveReader &ar)
{
    now_ = ar.getU64();
    for (std::size_t s = 0; s < kStreams; ++s)
        next_active_[s] = ar.getU64();
}

} // namespace stonne
