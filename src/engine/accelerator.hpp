/**
 * @file
 * Accelerator: the top class of the simulation engine (Figure 4).
 *
 * Builds the configured microarchitecture — one distribution network,
 * one multiplier network, one reduction network, the Global Buffer, the
 * DRAM model and the memory controller — from the hardware configuration
 * (the Configuration Unit role), owns them, and exposes them to the
 * STONNE API. Iterating every component's cycle() emulates the
 * cycle-by-cycle microarchitectural behaviour.
 */

#ifndef STONNE_ENGINE_ACCELERATOR_HPP
#define STONNE_ENGINE_ACCELERATOR_HPP

#include <memory>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/watchdog.hpp"
#include "controller/dense_controller.hpp"
#include "faults/fault_injector.hpp"
#include "controller/snapea_controller.hpp"
#include "controller/sparse_controller.hpp"
#include "engine/event_engine.hpp"
#include "mem/dram.hpp"
#include "mem/global_buffer.hpp"
#include "network/mn_array.hpp"
#include "network/unit.hpp"
#include "trace/trace.hpp"

namespace stonne {

/** Composes and owns one simulated accelerator instance. */
class Accelerator : public Unit
{
  public:
    explicit Accelerator(const HardwareConfig &cfg);
    ~Accelerator() override;

    Accelerator(const Accelerator &) = delete;
    Accelerator &operator=(const Accelerator &) = delete;

    const HardwareConfig &config() const { return cfg_; }
    StatsRegistry &stats() { return stats_; }
    const StatsRegistry &stats() const { return stats_; }

    DistributionNetwork &dn() { return *dn_; }
    MultiplierArray &mn() { return *mn_; }
    ReductionNetwork &rn() { return *rn_; }
    GlobalBuffer &gb() { return *gb_; }
    Dram &dram() { return *dram_; }

    /** The dense controller (valid for Dense compositions). */
    DenseController &denseController();

    /** The sparse controller (valid for Sparse compositions). */
    SparseController &sparseController();

    /** The SNAPEA controller (valid for Snapea compositions). */
    SnapeaController &snapeaController();

    /** Whether ConfigureMaxPool can map onto this composition. */
    bool supportsMaxPool() const;

    /**
     * Progress watchdog shared by every delivery/drain loop. Snapshot
     * sources for the GB, fabrics, controller phase and fault census
     * are registered at construction, so a DeadlockError thrown from
     * any loop names the state of every unit.
     */
    Watchdog &watchdog() { return *watchdog_; }

    /** Fault injector, or nullptr when faults are disabled. */
    FaultInjector *faults() { return faults_.get(); }

    /** Cycle-level tracer, or nullptr when `trace = OFF`. */
    Tracer *tracer() { return trace_.get(); }

    /** Delivery/drain engine every controller streams through. */
    EventEngine &engine() { return *engine_; }

    /** Current memory-controller phase ("idle" between operations). */
    const std::string &controllerPhase() const;

    void cycle() override;
    void reset() override;
    std::string name() const override { return "accelerator"; }

    /**
     * Serialize the complete persistent microarchitectural state into
     * fixed-order archive sections: the configuration text, the stats
     * registry, the watchdog, GB, DRAM, the three fabrics, the active
     * memory controller, and (when present) the fault injector's RNG
     * stream and the tracer's clock/window/events.
     */
    void checkpoint(ArchiveWriter &ar) const;

    /**
     * Restore a checkpoint() snapshot into this freshly constructed
     * instance. The embedded configuration must match this instance's
     * structurally (execution-policy knobs — fast_forward, the
     * watchdog budget, checkpoint/trace file paths — may differ);
     * a mismatch throws CheckpointError before any state is touched.
     */
    void restore(ArchiveReader &ar);

    /** Unit interface: forwarded to checkpoint()/restore(). */
    void saveState(ArchiveWriter &ar) const override { checkpoint(ar); }
    void loadState(ArchiveReader &ar) override { restore(ar); }

  private:
    /** Attach the per-unit snapshot sources to the watchdog. */
    void registerSnapshotSources();

    HardwareConfig cfg_;
    StatsRegistry stats_;
    std::unique_ptr<Watchdog> watchdog_;
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<Tracer> trace_;
    std::unique_ptr<EventEngine> engine_;
    std::unique_ptr<GlobalBuffer> gb_;
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<DistributionNetwork> dn_;
    std::unique_ptr<MultiplierArray> mn_;
    std::unique_ptr<ReductionNetwork> rn_;
    std::unique_ptr<DenseController> dense_;
    std::unique_ptr<SparseController> sparse_;
    std::unique_ptr<SnapeaController> snapea_;
};

} // namespace stonne

#endif // STONNE_ENGINE_ACCELERATOR_HPP
