/**
 * @file
 * Cycle-level execution tracer emitting Chrome trace-event JSON.
 *
 * STONNE's aggregate counters say *how much* each unit worked; this
 * subsystem says *when*. It records three kinds of events on one
 * monotone cycle clock:
 *
 *  - controller phase spans ("input streaming", "output drain", ...)
 *    as duration ("X") events on the phase track,
 *  - sampled per-counter activity deltas and per-group utilization
 *    gauges as counter ("C") events, one sample every
 *    `trace_sample_cycles` cycles plus a final tail sample, so the
 *    deltas of every series telescope to the aggregate counter value,
 *  - watchdog/fault occurrences (dropped flits, deadlocks) as instant
 *    ("i") events.
 *
 * The output is a standard Trace Event Format JSON object (loadable in
 * Perfetto or chrome://tracing) written through the JsonValue emitter;
 * timestamps are cycles, not microseconds.
 *
 * Fast-forward integration: a closed-form bulkAdvance() region is
 * bracketed by bulkBegin()/bulkEnd(), which records the region as one
 * span on the fast-forward track carrying its counter deltas as args
 * and interpolates the sample boundaries inside the region. Steady
 * state means every counter advances by a constant per-cycle delta, so
 * the integer interpolation is exact and sample cycle-stamps and
 * values are bit-identical between exact and fast-forward runs; only
 * the fast-forward track itself differs (parity tests filter it).
 *
 * The trace clock advances inside the delivery/drain streaming loops
 * and the controllers' closed-form stalls. Controllers overlap
 * delivery and drain (`cycles += max(dl, drain)`), so the trace clock
 * counts *streaming execution* cycles and can exceed the reported
 * latency; `performance.cycles` stays the authoritative figure.
 */

#ifndef STONNE_TRACE_TRACE_HPP
#define STONNE_TRACE_TRACE_HPP

#include <string>
#include <utility>
#include <vector>

#include "checkpoint/checkpointable.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace stonne {

class JsonValue;

/** One recorded trace event, pre-serialization. */
struct TraceEvent {
    enum class Kind {
        Span,    //!< "X" duration event (phase or fast-forward region)
        Counter, //!< "C" event carrying a windowed activity delta
        Gauge,   //!< "C" event carrying a per-cycle utilization value
        Instant, //!< "i" event (fault/watchdog occurrence)
    };

    Kind kind = Kind::Instant;
    std::string name;
    cycle_t ts = 0;
    cycle_t dur = 0;     //!< Span only
    index_t track = 0;   //!< tid the event renders on
    count_t value = 0;   //!< Counter delta / Instant payload
    double dvalue = 0.0; //!< Gauge value
    /** Fast-forward span only: per-counter deltas of the region. */
    std::vector<std::pair<std::string, count_t>> args;
};

/**
 * Records one accelerator's execution timeline and writes it as
 * Chrome trace-event JSON. Owned by the Accelerator when `trace = ON`;
 * every recording entry point is a no-op-cheap call guarded by the
 * caller's null check, so `trace = OFF` costs one branch per site.
 */
class Tracer : public Checkpointable
{
  public:
    /** tid of controller phase spans. */
    static constexpr index_t kPhaseTrack = 1;
    /** tid of fast-forwarded region spans (differs between modes). */
    static constexpr index_t kFastForwardTrack = 2;
    /** tid of fault/watchdog instant events. */
    static constexpr index_t kEventTrack = 3;

    /**
     * @param stats registry sampled for the counter time-series; may
     *        still be acquiring counters (units register lazily)
     * @param sample_cycles distance between counter samples, > 0
     * @param file_path where flush() writes the JSON
     * @param process_name accelerator name shown as the Perfetto
     *        process label
     */
    Tracer(const StatsRegistry &stats, cycle_t sample_cycles,
           std::string file_path, std::string process_name);

    const std::string &filePath() const { return path_; }

    /** Current trace-clock value (streaming-execution cycles). */
    cycle_t now() const { return now_; }

    /** All events recorded so far (tests introspect these). */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Advance the clock one cycle (exact per-cycle loops). */
    void tick();

    /**
     * Advance the clock `cycles` cycles for a closed-form region whose
     * counter activity landed at the region start (DRAM stalls,
     * pipeline fills, the systolic inner run). Sample boundaries
     * inside the region are emitted against the current counter
     * values; both execution modes call this identically.
     */
    void advance(cycle_t cycles);

    /** Mark the start of a fast-forwarded bulkAdvance() region. */
    void bulkBegin();

    /**
     * Close a fast-forwarded region of `cycles` cycles: one span on
     * the fast-forward track carries the region's counter deltas, and
     * the sample boundaries inside it are exactly interpolated (in
     * steady state every delta is divisible by the cycle count).
     */
    void bulkEnd(cycle_t cycles, const char *what);

    /** Mark the start of an event-engine steady-state skipped span. */
    void steadyBegin();

    /**
     * Close an event-engine steady span of `cycles` cycles: sample
     * boundaries inside it are exactly interpolated like bulkEnd(),
     * but no fast-forward span is recorded — the event stream stays
     * byte-identical to `cycles` exact tick() calls (exact mode
     * records no region spans either).
     */
    void steadyEnd(cycle_t cycles);

    /** Controller phase change: closes the open span, opens the next. */
    void setPhase(const std::string &name);

    /** Record an instant event (dropped flits, deadlock, ...). */
    void instant(const std::string &name, count_t value);

    /**
     * Emit the tail counter sample, close any open phase span and
     * write the accumulated trace to filePath(). Idempotent per
     * operation: later operations append and a later flush rewrites
     * the whole file.
     */
    void flush();

    /**
     * Write the timelines of several cores' tracers into one Chrome
     * trace file at `path`: core c's tracks render as tids
     * [c*16 + 1, c*16 + 3] with "core<c> ..." thread names, and its
     * counter/gauge series are prefixed "core<c>." (counter events
     * carry no tid, so the name is the only namespace). Each tracer is
     * finalized (tail sample, open phase closed) exactly like flush().
     * With one core the event stream matches that core's own flush()
     * output byte for byte, except the file path.
     */
    static void writeMerged(const std::vector<Tracer *> &cores,
                            const std::string &path);

    /**
     * Serialize the full recording state: the monotone clock, the
     * sample window (so the next sample lands on the same cycle it
     * would have without the interruption), the open phase span, the
     * bulk-region bracket and every recorded event — a restored run's
     * flush() writes a byte-identical trace file.
     */
    void saveState(ArchiveWriter &ar) const override;
    void loadState(ArchiveReader &ar) override;

  private:
    void record(TraceEvent ev);
    void emitSample(cycle_t ts, const std::vector<count_t> &values);
    void interpolateSamples(const std::vector<count_t> &post,
                            cycle_t cycles);
    /** Emit the tail sample and close the open phase span (flush(),
     *  minus the file write — writeMerged() finalizes cores the same
     *  way before serializing them into one file). */
    void finalizeRecording();
    void appendThreadMetasTo(JsonValue &list, index_t tid_base,
                             const std::string &label_prefix) const;
    void appendEventsTo(JsonValue &list, index_t tid_base,
                        const std::string &counter_prefix) const;
    JsonValue toJson() const;

    const StatsRegistry &stats_;
    cycle_t sample_cycles_;
    std::string path_;
    std::string process_name_;

    cycle_t now_ = 0;
    cycle_t next_sample_;
    cycle_t last_sample_ts_ = 0;
    std::vector<count_t> last_sample_;

    bool in_bulk_ = false;
    std::vector<count_t> bulk_pre_;

    std::string phase_ = "idle";
    cycle_t phase_start_ = 0;

    bool overflow_warned_ = false;
    std::vector<TraceEvent> events_;
};

} // namespace stonne

#endif // STONNE_TRACE_TRACE_HPP
