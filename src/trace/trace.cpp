#include "trace/trace.hpp"

#include <fstream>

#include "checkpoint/archive.hpp"
#include "common/json_writer.hpp"
#include "common/logging.hpp"

namespace stonne {

namespace {

/**
 * Backstop against runaway traces on very long untraced-by-design
 * runs: past this many events the tracer keeps its clock (cycle
 * accounting must stay exact) but stops recording.
 */
constexpr std::size_t kMaxEvents = 10'000'000;

/**
 * Value of a counter `k` cycles into a region of `cycles` cycles whose
 * value moved from `pre` to `post`. Exact whenever the delta divides
 * the region length — always true for fast-forwarded steady state, so
 * exact and fast-forward runs sample identical values.
 */
count_t
interpolate(count_t pre, count_t post, cycle_t cycles, cycle_t k)
{
    const count_t d = post - pre;
    if (cycles == 0 || d == 0)
        return post;
    const count_t q = d / cycles;
    const count_t r = d % cycles;
    // The remainder part cannot use r * k directly (overflow for very
    // long regions); long double keeps it monotone and r == 0 — the
    // parity-relevant case — never reaches it.
    const count_t frac = r == 0
        ? 0
        : static_cast<count_t>(static_cast<long double>(r) *
                               static_cast<long double>(k) /
                               static_cast<long double>(cycles));
    return pre + q * static_cast<count_t>(k) + frac;
}

} // namespace

Tracer::Tracer(const StatsRegistry &stats, cycle_t sample_cycles,
               std::string file_path, std::string process_name)
    : stats_(stats), sample_cycles_(sample_cycles),
      path_(std::move(file_path)), process_name_(std::move(process_name)),
      next_sample_(sample_cycles)
{
    fatalIf(sample_cycles_ == 0, "trace_sample_cycles must be positive");
    fatalIf(path_.empty(), "tracing is enabled but trace_file is empty");
}

void
Tracer::record(TraceEvent ev)
{
    if (events_.size() >= kMaxEvents) {
        if (!overflow_warned_) {
            warn("trace '", path_, "' reached ", kMaxEvents,
                 " events; later events are dropped (raise "
                 "trace_sample_cycles to thin the sample series)");
            overflow_warned_ = true;
        }
        return;
    }
    events_.push_back(std::move(ev));
}

void
Tracer::emitSample(cycle_t ts, const std::vector<count_t> &values)
{
    const auto &counters = stats_.counters();
    count_t util_delta[6] = {};
    count_t occ_delta[6] = {};
    for (std::size_t i = 0; i < values.size(); ++i) {
        const count_t prev =
            i < last_sample_.size() ? last_sample_[i] : 0;
        // Counters are monotone within an operation; a reset between
        // operations restarts the series from zero.
        const count_t d = values[i] >= prev ? values[i] - prev : values[i];
        if (d == 0)
            continue;
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::Counter;
        ev.name = counters[i].name;
        ev.ts = ts;
        ev.value = d;
        record(std::move(ev));
        const auto g = static_cast<std::size_t>(counters[i].group);
        if (counters[i].kind == StatKind::Occupancy)
            occ_delta[g] += d;
        else
            util_delta[g] += d;
    }
    const cycle_t window =
        ts > last_sample_ts_ ? ts - last_sample_ts_ : 1;
    for (std::size_t g = 0; g < 6; ++g) {
        // Activity counters give the utilization gauge; occupancy
        // integrals (queue/busy cycles) give the occupancy gauge —
        // mixing them would let a deep backlog read as compute.
        if (util_delta[g] != 0) {
            TraceEvent ev;
            ev.kind = TraceEvent::Kind::Gauge;
            ev.name = std::string("util.") +
                statGroupName(static_cast<StatGroup>(g));
            ev.ts = ts;
            ev.dvalue = static_cast<double>(util_delta[g]) /
                static_cast<double>(window);
            record(std::move(ev));
        }
        if (occ_delta[g] != 0) {
            TraceEvent ev;
            ev.kind = TraceEvent::Kind::Gauge;
            ev.name = std::string("occ.") +
                statGroupName(static_cast<StatGroup>(g));
            ev.ts = ts;
            ev.dvalue = static_cast<double>(occ_delta[g]) /
                static_cast<double>(window);
            record(std::move(ev));
        }
    }
    last_sample_ = values;
    last_sample_ts_ = ts;
}

void
Tracer::tick()
{
    ++now_;
    if (now_ == next_sample_) {
        emitSample(now_, stats_.snapshot());
        next_sample_ += sample_cycles_;
    }
}

void
Tracer::advance(cycle_t cycles)
{
    if (cycles == 0)
        return;
    const std::vector<count_t> post = stats_.snapshot();
    const cycle_t end = now_ + cycles;
    while (next_sample_ <= end) {
        emitSample(next_sample_, post);
        next_sample_ += sample_cycles_;
    }
    now_ = end;
}

void
Tracer::bulkBegin()
{
    panicIf(in_bulk_, "trace bulkBegin inside an open bulk region");
    in_bulk_ = true;
    bulk_pre_ = stats_.snapshot();
}

void
Tracer::bulkEnd(cycle_t cycles, const char *what)
{
    panicIf(!in_bulk_, "trace bulkEnd without bulkBegin");
    in_bulk_ = false;
    const std::vector<count_t> post = stats_.snapshot();

    TraceEvent span;
    span.kind = TraceEvent::Kind::Span;
    span.name = what;
    span.ts = now_;
    span.dur = cycles;
    span.track = kFastForwardTrack;
    for (std::size_t i = 0; i < post.size(); ++i) {
        const count_t pre = i < bulk_pre_.size() ? bulk_pre_[i] : 0;
        if (post[i] != pre)
            span.args.emplace_back(stats_.counters()[i].name,
                                   post[i] - pre);
    }
    record(std::move(span));

    interpolateSamples(post, cycles);
}

void
Tracer::steadyBegin()
{
    panicIf(in_bulk_, "trace steadyBegin inside an open bulk region");
    in_bulk_ = true;
    bulk_pre_ = stats_.snapshot();
}

void
Tracer::steadyEnd(cycle_t cycles)
{
    panicIf(!in_bulk_, "trace steadyEnd without steadyBegin");
    in_bulk_ = false;
    interpolateSamples(stats_.snapshot(), cycles);
}

void
Tracer::interpolateSamples(const std::vector<count_t> &post,
                           cycle_t cycles)
{
    const cycle_t start = now_;
    const cycle_t end = now_ + cycles;
    std::vector<count_t> at(post.size());
    while (next_sample_ <= end) {
        const cycle_t k = next_sample_ - start;
        for (std::size_t i = 0; i < post.size(); ++i) {
            const count_t pre = i < bulk_pre_.size() ? bulk_pre_[i] : 0;
            at[i] = interpolate(pre, post[i], cycles, k);
        }
        emitSample(next_sample_, at);
        next_sample_ += sample_cycles_;
    }
    now_ = end;
}

void
Tracer::setPhase(const std::string &name)
{
    if (name == phase_)
        return;
    if (phase_ != "idle" && now_ > phase_start_) {
        TraceEvent span;
        span.kind = TraceEvent::Kind::Span;
        span.name = phase_;
        span.ts = phase_start_;
        span.dur = now_ - phase_start_;
        span.track = kPhaseTrack;
        record(std::move(span));
    }
    phase_ = name;
    phase_start_ = now_;
}

void
Tracer::instant(const std::string &name, count_t value)
{
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Instant;
    ev.name = name;
    ev.ts = now_;
    ev.track = kEventTrack;
    ev.value = value;
    record(std::move(ev));
}

void
Tracer::finalizeRecording()
{
    setPhase("idle");
    emitSample(now_, stats_.snapshot());
}

void
Tracer::flush()
{
    finalizeRecording();

    const std::string text = toJson().dump() + "\n";
    std::ofstream out(path_);
    fatalIf(!out, "cannot open trace file '", path_, "'");
    out << text;
    fatalIf(!out.good(), "error writing trace file '", path_, "'");
}

namespace {

/** Shared root envelope of single-core and merged trace files. */
JsonValue
makeTraceRoot(JsonValue list, cycle_t sample_cycles)
{
    JsonValue root = JsonValue::makeObject();
    root["traceEvents"] = list;
    root.set("displayTimeUnit", "ns");
    JsonValue other = JsonValue::makeObject();
    other.set("tool", "stonne");
    other.set("clock_unit", "cycle");
    other.set("sample_cycles", static_cast<std::uint64_t>(sample_cycles));
    root["otherData"] = other;
    return root;
}

} // namespace

void
Tracer::appendThreadMetasTo(JsonValue &list, index_t tid_base,
                            const std::string &label_prefix) const
{
    auto meta = [&list, tid_base, &label_prefix](index_t tid,
                                                 const char *label) {
        JsonValue m = JsonValue::makeObject();
        m.set("name", "thread_name");
        m.set("ph", "M");
        m.set("pid", std::int64_t{0});
        m.set("tid", static_cast<std::int64_t>(tid_base + tid));
        JsonValue args = JsonValue::makeObject();
        args.set("name", label_prefix + label);
        m["args"] = args;
        list.append(std::move(m));
    };
    meta(kPhaseTrack, "controller phases");
    meta(kFastForwardTrack, "fast-forward regions");
    meta(kEventTrack, "faults & watchdog");
}

void
Tracer::appendEventsTo(JsonValue &list, index_t tid_base,
                       const std::string &counter_prefix) const
{
    for (const TraceEvent &ev : events_) {
        JsonValue e = JsonValue::makeObject();
        const bool named_series = ev.kind == TraceEvent::Kind::Counter ||
            ev.kind == TraceEvent::Kind::Gauge;
        e.set("name", named_series ? counter_prefix + ev.name : ev.name);
        e.set("pid", std::int64_t{0});
        e.set("ts", static_cast<std::uint64_t>(ev.ts));
        switch (ev.kind) {
          case TraceEvent::Kind::Span: {
            e.set("ph", "X");
            e.set("cat", ev.track == kFastForwardTrack
                             ? "fastforward" : "phase");
            e.set("tid", static_cast<std::int64_t>(tid_base + ev.track));
            e.set("dur", static_cast<std::uint64_t>(ev.dur));
            if (!ev.args.empty()) {
                JsonValue args = JsonValue::makeObject();
                for (const auto &[name, delta] : ev.args)
                    args.set(name, static_cast<std::uint64_t>(delta));
                e["args"] = args;
            }
            break;
          }
          case TraceEvent::Kind::Counter: {
            e.set("ph", "C");
            e.set("cat", "counter");
            JsonValue args = JsonValue::makeObject();
            args.set("delta", static_cast<std::uint64_t>(ev.value));
            e["args"] = args;
            break;
          }
          case TraceEvent::Kind::Gauge: {
            e.set("ph", "C");
            e.set("cat", "counter");
            JsonValue args = JsonValue::makeObject();
            args.set("per_cycle", ev.dvalue);
            e["args"] = args;
            break;
          }
          case TraceEvent::Kind::Instant: {
            e.set("ph", "i");
            e.set("cat", "event");
            e.set("tid", static_cast<std::int64_t>(tid_base + ev.track));
            e.set("s", "g");
            JsonValue args = JsonValue::makeObject();
            args.set("value", static_cast<std::uint64_t>(ev.value));
            e["args"] = args;
            break;
          }
        }
        list.append(std::move(e));
    }
}

JsonValue
Tracer::toJson() const
{
    JsonValue list = JsonValue::makeArray();
    {
        JsonValue m = JsonValue::makeObject();
        m.set("name", "process_name");
        m.set("ph", "M");
        m.set("pid", std::int64_t{0});
        JsonValue args = JsonValue::makeObject();
        args.set("name", process_name_);
        m["args"] = args;
        list.append(std::move(m));
    }
    appendThreadMetasTo(list, 0, "");
    appendEventsTo(list, 0, "");
    return makeTraceRoot(std::move(list), sample_cycles_);
}

void
Tracer::writeMerged(const std::vector<Tracer *> &cores,
                    const std::string &path)
{
    fatalIf(cores.empty(), "merged trace needs at least one core");
    for (Tracer *t : cores)
        t->finalizeRecording();

    JsonValue list = JsonValue::makeArray();
    {
        JsonValue m = JsonValue::makeObject();
        m.set("name", "process_name");
        m.set("ph", "M");
        m.set("pid", std::int64_t{0});
        JsonValue args = JsonValue::makeObject();
        std::string pname = cores[0]->process_name_;
        if (cores.size() > 1)
            pname += " x" + std::to_string(cores.size());
        args.set("name", pname);
        m["args"] = args;
        list.append(std::move(m));
    }
    // tid namespace: 16 ids per core keeps the per-core track constants
    // intact (track + core * 16) with room for future tracks.
    for (std::size_t c = 0; c < cores.size(); ++c)
        cores[c]->appendThreadMetasTo(
            list, static_cast<index_t>(c) * 16,
            cores.size() > 1 ? "core" + std::to_string(c) + " " : "");
    for (std::size_t c = 0; c < cores.size(); ++c)
        cores[c]->appendEventsTo(
            list, static_cast<index_t>(c) * 16,
            cores.size() > 1 ? "core" + std::to_string(c) + "." : "");

    const std::string text =
        makeTraceRoot(std::move(list), cores[0]->sample_cycles_).dump() +
        "\n";
    std::ofstream out(path);
    fatalIf(!out, "cannot open trace file '", path, "'");
    out << text;
    fatalIf(!out.good(), "error writing trace file '", path, "'");
}

void
Tracer::saveState(ArchiveWriter &ar) const
{
    ar.putU64(now_);
    ar.putU64(next_sample_);
    ar.putU64(last_sample_ts_);
    ar.putCounts(last_sample_);
    ar.putBool(in_bulk_);
    ar.putCounts(bulk_pre_);
    ar.putString(phase_);
    ar.putU64(phase_start_);
    ar.putBool(overflow_warned_);

    ar.putU64(events_.size());
    for (const TraceEvent &ev : events_) {
        ar.putU32(static_cast<std::uint32_t>(ev.kind));
        ar.putString(ev.name);
        ar.putU64(ev.ts);
        ar.putU64(ev.dur);
        ar.putI64(ev.track);
        ar.putU64(ev.value);
        ar.putDouble(ev.dvalue);
        ar.putU64(ev.args.size());
        for (const auto &[name, value] : ev.args) {
            ar.putString(name);
            ar.putU64(value);
        }
    }
}

void
Tracer::loadState(ArchiveReader &ar)
{
    now_ = ar.getU64();
    next_sample_ = ar.getU64();
    last_sample_ts_ = ar.getU64();
    last_sample_ = ar.getCounts();
    in_bulk_ = ar.getBool();
    bulk_pre_ = ar.getCounts();
    phase_ = ar.getString();
    phase_start_ = ar.getU64();
    overflow_warned_ = ar.getBool();

    const std::uint64_t n = ar.getU64();
    events_.clear();
    events_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceEvent ev;
        ev.kind = static_cast<TraceEvent::Kind>(ar.getU32());
        ev.name = ar.getString();
        ev.ts = ar.getU64();
        ev.dur = ar.getU64();
        ev.track = ar.getI64();
        ev.value = ar.getU64();
        ev.dvalue = ar.getDouble();
        const std::uint64_t n_args = ar.getU64();
        ev.args.reserve(static_cast<std::size_t>(n_args));
        for (std::uint64_t a = 0; a < n_args; ++a) {
            std::string name = ar.getString();
            const count_t value = ar.getU64();
            ev.args.emplace_back(std::move(name), value);
        }
        events_.push_back(std::move(ev));
    }
}

} // namespace stonne
