#include "controller/scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "common/logging.hpp"

namespace stonne {

const char *
schedulingPolicyName(SchedulingPolicy p)
{
    switch (p) {
      case SchedulingPolicy::None:         return "NS";
      case SchedulingPolicy::Random:       return "RDM";
      case SchedulingPolicy::LargestFirst: return "LFF";
    }
    return "?";
}

std::vector<SparseRound>
packRounds(const std::vector<index_t> &row_nnz, index_t ms_size,
           SchedulingPolicy policy, std::uint64_t seed)
{
    fatalIf(ms_size <= 0, "packRounds needs a positive array size");
    const auto rows = static_cast<index_t>(row_nnz.size());

    // Scheduled visiting order of the filters. Fully pruned filters
    // (zero non-zeros) never occupy switches and are dropped here; the
    // controller emits their all-zero outputs directly.
    std::vector<index_t> order;
    order.reserve(static_cast<std::size_t>(rows));
    for (index_t r = 0; r < rows; ++r)
        if (row_nnz[static_cast<std::size_t>(r)] > 0)
            order.push_back(r);

    switch (policy) {
      case SchedulingPolicy::None:
        break;
      case SchedulingPolicy::Random: {
        std::mt19937_64 gen(seed);
        std::shuffle(order.begin(), order.end(), gen);
        break;
      }
      case SchedulingPolicy::LargestFirst:
        std::stable_sort(order.begin(), order.end(),
                         [&](index_t a, index_t b) {
                             return row_nnz[static_cast<std::size_t>(a)] >
                                    row_nnz[static_cast<std::size_t>(b)];
                         });
        break;
    }

    const bool fill_search = policy == SchedulingPolicy::LargestFirst;

    std::vector<SparseRound> rounds;
    std::vector<bool> used(order.size(), false);
    std::size_t cursor = 0;

    while (cursor < order.size()) {
        if (used[cursor]) {
            ++cursor;
            continue;
        }
        SparseRound round;
        index_t capacity = ms_size;

        // A filter larger than the whole array folds: dedicate full
        // rounds to ms_size-wide chunks; the final partial chunk opens
        // a round that can still host other filters.
        const index_t head = order[cursor];
        index_t head_nnz = row_nnz[static_cast<std::size_t>(head)];
        index_t offset = 0;
        while (head_nnz - offset > ms_size) {
            SparseRound full;
            full.segments.push_back(
                SparseSegment{head, offset, ms_size, false});
            full.nnz = ms_size;
            rounds.push_back(std::move(full));
            offset += ms_size;
        }
        round.segments.push_back(SparseSegment{
            head, offset, head_nnz - offset, true});
        if (offset == 0)
            ++round.whole_filters;
        capacity -= head_nnz - offset;
        round.nnz += head_nnz - offset;
        used[cursor] = true;

        // Fill the remaining switches.
        for (std::size_t i = cursor + 1;
             i < order.size() && capacity > 0; ++i) {
            if (used[i])
                continue;
            const index_t r = order[i];
            const index_t nnz = row_nnz[static_cast<std::size_t>(r)];
            if (nnz <= capacity) {
                round.segments.push_back(SparseSegment{r, 0, nnz, true});
                round.nnz += nnz;
                ++round.whole_filters;
                capacity -= nnz;
                used[i] = true;
            } else if (!fill_search) {
                // NS / RDM close the round at the first misfit.
                break;
            }
        }
        rounds.push_back(std::move(round));
    }
    return rounds;
}

double
averageFiltersPerRound(const std::vector<SparseRound> &rounds)
{
    if (rounds.empty())
        return 0.0;
    count_t whole = 0;
    for (const auto &r : rounds)
        whole += static_cast<count_t>(r.whole_filters);
    return static_cast<double>(whole) / static_cast<double>(rounds.size());
}

} // namespace stonne
