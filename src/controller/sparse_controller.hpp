/**
 * @file
 * Sparse memory controller (Section IV-B) — SIGMA-style SpMM.
 *
 * Runs GEMM operations over compressed (CSR or bitmap) stationary MK
 * matrices. Unlike the dense controller's fixed tiles, cluster sizes here
 * follow the *actual* distribution of non-zeros: filters are packed into
 * mapping rounds (see scheduler.hpp), the Benes network loads the
 * stationary non-zeros and multicasts the streaming KN operands, and the
 * FAN reduces each variable-size cluster. This data dependence is exactly
 * what Figure 1c shows analytical models cannot capture.
 */

#ifndef STONNE_CONTROLLER_SPARSE_CONTROLLER_HPP
#define STONNE_CONTROLLER_SPARSE_CONTROLLER_HPP

#include <string>

#include "common/config.hpp"
#include "controller/result.hpp"
#include "controller/scheduler.hpp"
#include "mem/dram.hpp"
#include "mem/global_buffer.hpp"
#include "network/mn_array.hpp"
#include "network/unit.hpp"
#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"

namespace stonne {

class EventEngine;
class Watchdog;
class FaultInjector;
class Tracer;

/** SIGMA-style sparse memory controller. */
class SparseController : public Checkpointable
{
  public:
    /**
     * @param engine the delivery/drain engine every streaming phase
     *        goes through (owned by the Accelerator) — the single
     *        place components are ticked from
     * @param watchdog optional progress watchdog ticked by the delivery
     *        and drain loops (owned by the Accelerator)
     * @param faults optional fault injector applied to the flit stream
     * @param trace optional cycle-level tracer (owned by the
     *        Accelerator when `trace = ON`)
     */
    SparseController(const HardwareConfig &cfg, EventEngine &engine,
                     DistributionNetwork &dn, MultiplierArray &mn,
                     ReductionNetwork &rn, GlobalBuffer &gb, Dram &dram,
                     Watchdog *watchdog = nullptr,
                     FaultInjector *faults = nullptr,
                     Tracer *trace = nullptr);

    /**
     * Run a sparse-dense GEMM: c(M x N) = a(M x K, CSR) * b(K x N).
     *
     * @param policy static filter scheduling policy (use case 3)
     * @param skip_zero_activations also exploit sparsity in b (skip
     *        multiplications whose streaming operand is exactly zero)
     * @param seed RNG seed for the Random policy
     */
    ControllerResult runSpMM(const CsrMatrix &a, const Tensor &b, Tensor &c,
                             SchedulingPolicy policy = SchedulingPolicy::None,
                             bool skip_zero_activations = false,
                             std::uint64_t seed = 1);

    /** Bitmap-format front door: converts and runs the CSR path. */
    ControllerResult runSpMM(const BitmapMatrix &a, const Tensor &b,
                             Tensor &c,
                             SchedulingPolicy policy = SchedulingPolicy::None,
                             bool skip_zero_activations = false,
                             std::uint64_t seed = 1);

    /** Dense front door: compresses a dense MK operand first. */
    ControllerResult runSpMMDense(const Tensor &a, const Tensor &b,
                                  Tensor &c,
                                  SchedulingPolicy policy =
                                      SchedulingPolicy::None,
                                  bool skip_zero_activations = false,
                                  std::uint64_t seed = 1);

    /** Rounds the last runSpMM call executed (inspection / Fig 7). */
    const std::vector<SparseRound> &lastRounds() const { return rounds_; }

    /** Current execution phase, exposed in watchdog deadlock reports. */
    const std::string &phase() const { return phase_; }

    /**
     * Serialize the controller phase. The per-operation round plan
     * (lastRounds()) is rebuilt by the next runSpMM call and is not
     * part of the snapshot.
     */
    void saveState(ArchiveWriter &ar) const override
    {
        ar.putString(phase_);
    }

    void loadState(ArchiveReader &ar) override { phase_ = ar.getString(); }

  private:
    /** Change phase: watchdog reports see it, the tracer spans it. */
    void setPhase(const char *phase);

    HardwareConfig cfg_;
    EventEngine &engine_;
    DistributionNetwork &dn_;
    MultiplierArray &mn_;
    ReductionNetwork &rn_;
    GlobalBuffer &gb_;
    Dram &dram_;
    Watchdog *wd_;
    FaultInjector *faults_;
    Tracer *trace_;
    std::vector<SparseRound> rounds_;
    std::string phase_ = "idle";
};

} // namespace stonne

#endif // STONNE_CONTROLLER_SPARSE_CONTROLLER_HPP
