/**
 * @file
 * Result of one operation executed by a memory controller.
 */

#ifndef STONNE_CONTROLLER_RESULT_HPP
#define STONNE_CONTROLLER_RESULT_HPP

#include "common/types.hpp"

namespace stonne {

/** Timing and activity summary of one accelerated operation. */
struct ControllerResult {
    cycle_t cycles = 0;          //!< total clock cycles
    count_t macs = 0;            //!< multiply-accumulates performed
    count_t skipped_macs = 0;    //!< MACs avoided (sparsity / SNAPEA)
    count_t mem_accesses = 0;    //!< GB reads + writes of this operation
    double ms_utilization = 0.0; //!< time-weighted multiplier occupancy

    /** Merge another operation's result into this one (sequential). */
    void
    merge(const ControllerResult &o)
    {
        const double weighted = ms_utilization * static_cast<double>(cycles) +
            o.ms_utilization * static_cast<double>(o.cycles);
        cycles += o.cycles;
        macs += o.macs;
        skipped_macs += o.skipped_macs;
        mem_accesses += o.mem_accesses;
        ms_utilization =
            cycles > 0 ? weighted / static_cast<double>(cycles) : 0.0;
    }
};

} // namespace stonne

#endif // STONNE_CONTROLLER_RESULT_HPP
