/**
 * @file
 * Static filter scheduling for sparse accelerators (use case 3).
 *
 * When filters are pruned, their non-zero sizes vary wildly (Fig 7b);
 * the order in which the sparse controller maps them onto the multiplier
 * switches determines how many fit per round and thus the compute
 * utilization. The paper studies three static policies:
 *  - NS  (No Scheduling): natural order, close the round at the first
 *    filter that does not fit.
 *  - RDM (Random): shuffled order, same packing rule.
 *  - LFF (Largest Filter First): always pick the largest remaining
 *    filter that fits, then fill the leftover switches with as many
 *    filters as possible in descending size order.
 *
 * Filters larger than the array fold across consecutive rounds.
 */

#ifndef STONNE_CONTROLLER_SCHEDULER_HPP
#define STONNE_CONTROLLER_SCHEDULER_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace stonne {

/** Static filter scheduling policies of use case 3. */
enum class SchedulingPolicy {
    None,         //!< NS: natural order
    Random,       //!< RDM: shuffled order
    LargestFirst, //!< LFF: descending size with gap filling
};

const char *schedulingPolicyName(SchedulingPolicy p);

/** One contiguous chunk of a filter's non-zeros mapped in a round. */
struct SparseSegment {
    index_t row = 0;    //!< filter (CSR row) index
    index_t begin = 0;  //!< offset into the row's non-zeros
    index_t len = 0;    //!< non-zeros mapped in this round
    bool last = false;  //!< whether this chunk completes the filter
};

/** One mapping round: the segments sharing the array simultaneously. */
struct SparseRound {
    std::vector<SparseSegment> segments;
    index_t nnz = 0;          //!< multiplier switches occupied
    index_t whole_filters = 0; //!< filters entirely mapped this round
};

/**
 * Pack filters (given their nnz sizes) into mapping rounds.
 *
 * @param row_nnz per-filter non-zero count, natural order
 * @param ms_size multiplier switches available
 * @param policy scheduling policy deciding order and gap filling
 * @param seed RNG seed for the Random policy
 */
std::vector<SparseRound> packRounds(const std::vector<index_t> &row_nnz,
                                    index_t ms_size, SchedulingPolicy policy,
                                    std::uint64_t seed = 1);

/**
 * Average number of *whole* filters simultaneously mapped per round
 * (the Figure 7a metric).
 */
double averageFiltersPerRound(const std::vector<SparseRound> &rounds);

} // namespace stonne

#endif // STONNE_CONTROLLER_SCHEDULER_HPP
