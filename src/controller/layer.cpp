#include "controller/layer.hpp"

#include "common/logging.hpp"

namespace stonne {

const char *
layerKindName(LayerKind k)
{
    switch (k) {
      case LayerKind::Convolution: return "CONV";
      case LayerKind::Linear:      return "LINEAR";
      case LayerKind::Gemm:        return "GEMM";
      case LayerKind::SparseGemm:  return "SPGEMM";
      case LayerKind::MaxPool:     return "MAXPOOL";
    }
    return "?";
}

LayerSpec
LayerSpec::convolution(std::string name, Conv2dShape shape)
{
    shape.validate();
    LayerSpec l;
    l.name = std::move(name);
    l.kind = LayerKind::Convolution;
    l.conv = shape;
    return l;
}

LayerSpec
LayerSpec::linear(std::string name, index_t batch, index_t in, index_t out)
{
    fatalIf(batch <= 0 || in <= 0 || out <= 0,
            "linear layer dims must be positive");
    LayerSpec l;
    l.name = std::move(name);
    l.kind = LayerKind::Linear;
    l.gemm = GemmDims{out, batch, in};
    return l;
}

LayerSpec
LayerSpec::gemmLayer(std::string name, index_t m, index_t n, index_t k)
{
    fatalIf(m <= 0 || n <= 0 || k <= 0, "GEMM dims must be positive");
    LayerSpec l;
    l.name = std::move(name);
    l.kind = LayerKind::Gemm;
    l.gemm = GemmDims{m, n, k};
    return l;
}

LayerSpec
LayerSpec::sparseGemm(std::string name, index_t m, index_t n, index_t k)
{
    LayerSpec l = gemmLayer(std::move(name), m, n, k);
    l.kind = LayerKind::SparseGemm;
    return l;
}

LayerSpec
LayerSpec::maxPool(std::string name, Conv2dShape input_shape, index_t window,
                   index_t stride)
{
    fatalIf(window <= 0 || stride <= 0,
            "pool window/stride must be positive");
    LayerSpec l;
    l.name = std::move(name);
    l.kind = LayerKind::MaxPool;
    l.conv = input_shape;
    l.pool_window = window;
    l.pool_stride = stride;
    return l;
}

GemmDims
LayerSpec::gemmView() const
{
    switch (kind) {
      case LayerKind::Convolution:
        return GemmDims{
            conv.kPerGroup(),
            conv.N * conv.outX() * conv.outY(),
            conv.R * conv.S * conv.cPerGroup(),
        };
      case LayerKind::MaxPool: {
        const index_t xo = (conv.X - pool_window) / pool_stride + 1;
        const index_t yo = (conv.Y - pool_window) / pool_stride + 1;
        return GemmDims{
            conv.C,
            conv.N * xo * yo,
            pool_window * pool_window,
        };
      }
      case LayerKind::Linear:
      case LayerKind::Gemm:
      case LayerKind::SparseGemm:
        return gemm;
    }
    return gemm;
}

index_t
LayerSpec::macs() const
{
    if (kind == LayerKind::Convolution)
        return conv.macs();
    const GemmDims g = gemmView();
    if (kind == LayerKind::MaxPool)
        return g.m * g.n * g.k; // comparator operations
    return g.m * g.n * g.k;
}

void
LayerSpec::validate() const
{
    switch (kind) {
      case LayerKind::Convolution:
        conv.validate();
        break;
      case LayerKind::MaxPool:
        conv.validate();
        fatalIf(pool_window <= 0 || pool_stride <= 0,
                "pool window/stride must be positive");
        fatalIf(conv.X < pool_window || conv.Y < pool_window,
                "pool window larger than input");
        break;
      case LayerKind::Linear:
      case LayerKind::Gemm:
      case LayerKind::SparseGemm:
        fatalIf(gemm.m <= 0 || gemm.n <= 0 || gemm.k <= 0,
                "GEMM dims must be positive");
        break;
    }
}

} // namespace stonne
