/**
 * @file
 * Tile: the fixed compute partition the dense controller orchestrates.
 *
 * The paper defines Tile(T_R, T_S, T_C, T_G, T_K, T_N, T_X', T_Y') where
 * T_R x T_S x T_C is the slice of the filter mapped to one cluster (the
 * dot-product / virtual-neuron size) and T_G x T_K x T_N x T_X' x T_Y' is
 * the number of clusters mapped simultaneously. When the cluster is
 * smaller than the filter, folding iterates the cluster over the filter
 * and psums accumulate at inter-step boundaries (Section IV-B).
 */

#ifndef STONNE_CONTROLLER_TILE_HPP
#define STONNE_CONTROLLER_TILE_HPP

#include <string>

#include "controller/layer.hpp"

namespace stonne {

/** Fixed tile partition for the dense memory controller. */
struct Tile {
    index_t t_r = 1;  //!< filter rows per cluster
    index_t t_s = 1;  //!< filter columns per cluster
    index_t t_c = 1;  //!< channels per cluster
    index_t t_g = 1;  //!< groups in parallel
    index_t t_k = 1;  //!< filters in parallel
    index_t t_n = 1;  //!< batch elements in parallel
    index_t t_x = 1;  //!< output rows in parallel (T_X')
    index_t t_y = 1;  //!< output columns in parallel (T_Y')

    /** Cluster (virtual neuron) size: the mapped dot-product length. */
    index_t vnSize() const { return t_r * t_s * t_c; }

    /** Clusters mapped simultaneously. */
    index_t numVns() const { return t_g * t_k * t_n * t_x * t_y; }

    /** Multiplier switches the tile occupies. */
    index_t usedMs() const { return vnSize() * numVns(); }

    /** Folding steps needed to cover a window of `window` elements. */
    index_t
    folds(index_t window) const
    {
        const index_t vn = vnSize();
        return (window + vn - 1) / vn;
    }

    /** Validate against a layer and an array size (FatalError on abuse). */
    void validate(const LayerSpec &layer, index_t ms_size) const;

    std::string toString() const;
};

} // namespace stonne

#endif // STONNE_CONTROLLER_TILE_HPP
