/**
 * @file
 * Tile: the fixed compute partition the dense controller orchestrates.
 *
 * The paper defines Tile(T_R, T_S, T_C, T_G, T_K, T_N, T_X', T_Y') where
 * T_R x T_S x T_C is the slice of the filter mapped to one cluster (the
 * dot-product / virtual-neuron size) and T_G x T_K x T_N x T_X' x T_Y' is
 * the number of clusters mapped simultaneously. When the cluster is
 * smaller than the filter, folding iterates the cluster over the filter
 * and psums accumulate at inter-step boundaries (Section IV-B).
 */

#ifndef STONNE_CONTROLLER_TILE_HPP
#define STONNE_CONTROLLER_TILE_HPP

#include <cstddef>
#include <functional>
#include <string>

#include "controller/layer.hpp"

namespace stonne {

/** Fixed tile partition for the dense memory controller. */
struct Tile {
    index_t t_r = 1;  //!< filter rows per cluster
    index_t t_s = 1;  //!< filter columns per cluster
    index_t t_c = 1;  //!< channels per cluster
    index_t t_g = 1;  //!< groups in parallel
    index_t t_k = 1;  //!< filters in parallel
    index_t t_n = 1;  //!< batch elements in parallel
    index_t t_x = 1;  //!< output rows in parallel (T_X')
    index_t t_y = 1;  //!< output columns in parallel (T_Y')

    /** Cluster (virtual neuron) size: the mapped dot-product length. */
    index_t vnSize() const { return t_r * t_s * t_c; }

    /** Clusters mapped simultaneously. */
    index_t numVns() const { return t_g * t_k * t_n * t_x * t_y; }

    /** Multiplier switches the tile occupies. */
    index_t usedMs() const { return vnSize() * numVns(); }

    /** Folding steps needed to cover a window of `window` elements. */
    index_t
    folds(index_t window) const
    {
        const index_t vn = vnSize();
        return (window + vn - 1) / vn;
    }

    /** Validate against a layer and an array size (FatalError on abuse). */
    void validate(const LayerSpec &layer, index_t ms_size) const;

    std::string toString() const;

    /**
     * Canonical key form: the eight dimensions in declaration order,
     * 'x'-separated ("1x1x64x1x4x1x1x1"). Stable across builds and
     * platforms — two tiles compare equal iff their canonical forms are
     * byte-identical, which makes this the tile component of
     * content-addressed cache keys (src/dse).
     */
    std::string canonical() const;

    /** Dimension-wise equality (the same partition of the array). */
    bool operator==(const Tile &o) const = default;
};

} // namespace stonne

/**
 * Stable hash over the eight dimensions (FNV-1a, 64-bit folded to
 * size_t): deterministic across runs and platforms, unlike the
 * implementation-defined std::hash<integral> — cache keys and test
 * expectations may depend on it.
 */
template <>
struct std::hash<stonne::Tile> {
    std::size_t
    operator()(const stonne::Tile &t) const noexcept
    {
        std::uint64_t h = 1469598103934665603ull; // FNV offset basis
        const auto mix = [&h](stonne::index_t v) {
            auto u = static_cast<std::uint64_t>(v);
            for (int byte = 0; byte < 8; ++byte) {
                h ^= (u >> (byte * 8)) & 0xffu;
                h *= 1099511628211ull; // FNV prime
            }
        };
        mix(t.t_r);
        mix(t.t_s);
        mix(t.t_c);
        mix(t.t_g);
        mix(t.t_k);
        mix(t.t_n);
        mix(t.t_x);
        mix(t.t_y);
        return static_cast<std::size_t>(h);
    }
};

#endif // STONNE_CONTROLLER_TILE_HPP
