#include "controller/sparse_controller.hpp"

#include <algorithm>
#include <vector>

#include "common/logging.hpp"
#include "engine/event_engine.hpp"
#include "network/dn_benes.hpp"

namespace stonne {

SparseController::SparseController(const HardwareConfig &cfg,
                                   EventEngine &engine,
                                   DistributionNetwork &dn,
                                   MultiplierArray &mn, ReductionNetwork &rn,
                                   GlobalBuffer &gb, Dram &dram,
                                   Watchdog *watchdog, FaultInjector *faults,
                                   Tracer *trace)
    : cfg_(cfg), engine_(engine), dn_(dn), mn_(mn), rn_(rn), gb_(gb),
      dram_(dram), wd_(watchdog), faults_(faults), trace_(trace)
{
    cfg_.validate();
    fatalIf(cfg_.controller_type != ControllerType::Sparse,
            "sparse controller instantiated for a ",
            controllerTypeName(cfg_.controller_type), " configuration");
    fatalIf(!rn.supportsVariableClusters(),
            "the sparse controller needs a cluster-capable RN");
}

void
SparseController::setPhase(const char *phase)
{
    phase_ = phase;
    if (trace_ != nullptr)
        trace_->setPhase(phase_);
}

ControllerResult
SparseController::runSpMM(const CsrMatrix &a, const Tensor &b, Tensor &c,
                          SchedulingPolicy policy,
                          bool skip_zero_activations, std::uint64_t seed)
{
    fatalIf(b.rank() != 2 || b.dim(0) != a.cols,
            "SpMM operand B shape mismatch");
    fatalIf(c.rank() != 2 || c.dim(0) != a.rows || c.dim(1) != b.dim(1),
            "SpMM output shape mismatch");

    const index_t n = b.dim(1);
    const index_t bpe = bytesPerElement(cfg_.data_type);

    ControllerResult res;
    const count_t mem0 = gb_.totalReads() + gb_.totalWrites();
    const count_t mult0 = mn_.multOps();

    rounds_ = packRounds(rowNnzSizes(a), cfg_.ms_size, policy, seed);

    // Stage the compressed stationary operand and the first streaming
    // slice: traffic accounted, cycles hidden by the double-buffered
    // prefetch as in the paper's HBM2 configuration.
    (void)dram_.transferCycles(
        std::min(a.storageBytes(bpe) + b.size() * bpe,
                 gb_.capacityElements() * bpe));

    // Pipeline fill: one traversal of the DN plus the deepest reduction.
    index_t dn_levels = 1;
    if (auto *benes = dynamic_cast<BenesDistributionNetwork *>(&dn_))
        dn_levels = benes->levels();
    const cycle_t fill = static_cast<cycle_t>(dn_levels) +
        static_cast<cycle_t>(rn_.latency(cfg_.ms_size)) + 1;
    res.cycles += fill;
    setPhase("pipeline fill");
    if (trace_ != nullptr)
        trace_->advance(fill);

    // Fault injection consumes a seeded RNG stream per cycle, so any
    // attached injector forces the exact per-cycle loops.
    const bool ff = cfg_.fast_forward && faults_ == nullptr;

    std::vector<index_t> union_k;
    union_k.reserve(static_cast<std::size_t>(cfg_.ms_size));
    for (const SparseRound &round : rounds_) {
        // Stationary non-zeros enter through the Benes (unicast).
        setPhase("stationary nnz load");
        res.cycles += engine_.deliver(dn_, gb_, round.nnz, 1,
                                      PackageKind::Weight, ff);

        // Streaming operands: the union of column indices the mapped
        // segments need; shared indices are multicast.
        union_k.clear();
        index_t completions = 0;
        for (const SparseSegment &seg : round.segments) {
            const index_t base =
                a.row_ptr[static_cast<std::size_t>(seg.row)] + seg.begin;
            for (index_t i = 0; i < seg.len; ++i)
                union_k.push_back(
                    a.col_idx[static_cast<std::size_t>(base + i)]);
            if (seg.last)
                ++completions;
        }
        std::sort(union_k.begin(), union_k.end());
        union_k.erase(std::unique(union_k.begin(), union_k.end()),
                      union_k.end());

        for (index_t j = 0; j < n; ++j) {
            index_t needed = static_cast<index_t>(union_k.size());
            index_t fired = round.nnz;
            if (skip_zero_activations) {
                // Column j of B, strided by n — raw access keeps the
                // per-operand zero scan off the at() bounds checks.
                const float *bcol = b.data() + j;
                needed = 0;
                for (index_t k : union_k)
                    if (bcol[k * n] != 0.0f)
                        ++needed;
                fired = 0;
                for (const SparseSegment &seg : round.segments) {
                    const index_t base =
                        a.row_ptr[static_cast<std::size_t>(seg.row)] +
                        seg.begin;
                    for (index_t i = 0; i < seg.len; ++i) {
                        const index_t k = a.col_idx[
                            static_cast<std::size_t>(base + i)];
                        if (bcol[k * n] != 0.0f)
                            ++fired;
                    }
                }
                res.skipped_macs +=
                    static_cast<count_t>(round.nnz - fired);
            }

            setPhase("streaming operand multicast");
            const cycle_t dl = engine_.deliver(dn_, gb_, needed, 1,
                                               PackageKind::Input, ff);
            setPhase("output drain");
            const cycle_t drain = engine_.drain(gb_, completions, ff);

            mn_.fireMultipliers(std::min(fired, cfg_.ms_size));
            res.macs += static_cast<count_t>(fired);
            for (const SparseSegment &seg : round.segments)
                rn_.reduceCluster(std::max<index_t>(1, seg.len));
            rn_.accumulate(
                static_cast<index_t>(round.segments.size()) - completions);

            res.cycles += std::max<cycle_t>({1, dl, drain});
        }
    }

    // Functional results in canonical CSR order (bit-exact against the
    // reference SpMM); fully pruned rows emit zeros directly. Raw
    // pointers keep the at() bounds checks out of the innermost MAC.
    setPhase("functional reduce");
    const float *bd = b.data();
    float *cd = c.data();
    for (index_t r = 0; r < a.rows; ++r) {
        const index_t p0 = a.row_ptr[static_cast<std::size_t>(r)];
        const index_t p1 = a.row_ptr[static_cast<std::size_t>(r + 1)];
        float *crow = cd + r * n;
        for (index_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (index_t p = p0; p < p1; ++p) {
                acc += a.values[static_cast<std::size_t>(p)] *
                       bd[a.col_idx[static_cast<std::size_t>(p)] * n + j];
            }
            crow[j] = acc;
        }
    }

    res.mem_accesses = gb_.totalReads() + gb_.totalWrites() - mem0;
    res.ms_utilization = res.cycles > 0
        ? static_cast<double>(mn_.multOps() - mult0) /
          (static_cast<double>(cfg_.ms_size) *
           static_cast<double>(res.cycles))
        : 0.0;
    setPhase("idle");
    return res;
}

ControllerResult
SparseController::runSpMM(const BitmapMatrix &a, const Tensor &b, Tensor &c,
                          SchedulingPolicy policy,
                          bool skip_zero_activations, std::uint64_t seed)
{
    // The bitmap front door shares the CSR datapath: presence bits are
    // decoded into (row, col) coordinates at the memory controller.
    return runSpMM(CsrMatrix::fromDense(a.toDense()), b, c, policy,
                   skip_zero_activations, seed);
}

ControllerResult
SparseController::runSpMMDense(const Tensor &a, const Tensor &b, Tensor &c,
                               SchedulingPolicy policy,
                               bool skip_zero_activations,
                               std::uint64_t seed)
{
    fatalIf(a.rank() != 2, "SpMM dense operand must be rank-2");
    if (cfg_.sparse_format == SparseFormat::Bitmap)
        return runSpMM(BitmapMatrix::fromDense(a), b, c, policy,
                       skip_zero_activations, seed);
    return runSpMM(CsrMatrix::fromDense(a), b, c, policy,
                   skip_zero_activations, seed);
}

} // namespace stonne
